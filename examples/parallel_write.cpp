// Figure 4 of the paper, as runnable code.
//
// (a) WRITE: collectively create the dataset, define it, write a partitioned
//     array with ncmpi_put_vara_all, and close.
// (b) READ: collectively open, inquire, read with ncmpi_get_vars_all, close.
//
// Eight thread-backed ranks cooperate on one netCDF file; afterwards the
// main thread verifies the result through the *serial* library, proving the
// format is the unchanged classic netCDF format.
#include <cstdio>
#include <numeric>
#include <vector>

#include "netcdf/dataset.hpp"
#include "pnetcdf/dataset.hpp"
#include "simmpi/runtime.hpp"

int main() {
  pfs::FileSystem fs;
  const int nprocs = 8;
  const std::uint64_t kZ = 16, kY = 8, kX = 8;

  simmpi::Run(nprocs, [&](simmpi::Comm& comm) {
    // ---- Figure 4(a): WRITE ----
    // 1. collectively create the dataset (note the communicator + info
    //    arguments added to the serial signature).
    auto ds =
        pnetcdf::Dataset::Create(comm, fs, "fig4.nc", simmpi::NullInfo())
            .value();
    // 2. collectively define dimensions, variables, attributes.
    const int zd = ds.DefDim("z", kZ).value();
    const int yd = ds.DefDim("y", kY).value();
    const int xd = ds.DefDim("x", kX).value();
    const int var =
        ds.DefVar("field", ncformat::NcType::kFloat, {zd, yd, xd}).value();
    (void)ds.PutAttText(pnetcdf::kGlobal, "history", "figure 4 example");
    (void)ds.EndDef();

    // 3. access the data collectively: a Z-partition, each rank owns a slab.
    const std::uint64_t zper = kZ / static_cast<std::uint64_t>(comm.size());
    const std::uint64_t start[] = {
        zper * static_cast<std::uint64_t>(comm.rank()), 0, 0};
    const std::uint64_t count[] = {zper, kY, kX};
    std::vector<float> slab(zper * kY * kX);
    std::iota(slab.begin(), slab.end(),
              static_cast<float>(comm.rank()) * 1000.0f);
    (void)ds.PutVaraAll<float>(var, start, count, slab);
    // 4. collectively close.
    (void)ds.Close();

    // ---- Figure 4(b): READ ----
    auto rd =
        pnetcdf::Dataset::Open(comm, fs, "fig4.nc", false, simmpi::NullInfo())
            .value();
    // Inquiry works on the local cached header: no communication.
    const int rv = rd.VarId("field").value();
    // Strided collective read: every other X element of this rank's slab.
    const std::uint64_t rstart[] = {
        zper * static_cast<std::uint64_t>(comm.rank()), 0, 0};
    const std::uint64_t rcount[] = {zper, kY, kX / 2};
    const std::uint64_t rstride[] = {1, 1, 2};
    std::vector<float> strided(zper * kY * kX / 2);
    (void)rd.GetVarsAll<float>(rv, rstart, rcount, rstride, strided);
    if (comm.rank() == 0)
      std::printf("rank 0 strided read begins with %.0f %.0f %.0f ...\n",
                  strided[0], strided[1], strided[2]);
    (void)rd.Close();
  });

  // Serial cross-check: the parallel file is ordinary classic netCDF.
  auto ds = netcdf::Dataset::Open(fs, "fig4.nc", false).value();
  std::vector<float> all(kZ * kY * kX);
  (void)ds.GetVar<float>(ds.VarId("field").value(), all);
  bool ok = true;
  const std::uint64_t zper = kZ / nprocs;
  for (std::uint64_t z = 0; z < kZ && ok; ++z)
    for (std::uint64_t i = 0; i < kY * kX && ok; ++i)
      ok = all[z * kY * kX + i] ==
           static_cast<float>(z / zper) * 1000.0f +
               static_cast<float>((z % zper) * kY * kX + i);
  std::printf("serial verification of the collectively written file: %s\n",
              ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
