// Quickstart: the serial netCDF lifecycle from paper §3.2.
//
// "A typical sequence of operations to write a new netCDF dataset is to
// create the dataset; define the dimensions, variables, and attributes;
// write variable data; and close the dataset."
//
// This example writes a small 2-D temperature field with attributes to a
// *real* file on disk (examples/quickstart.nc is byte-valid classic netCDF),
// reopens it, and prints what it finds.
#include <cstdio>
#include <vector>

#include "netcdf/dataset.hpp"

int main() {
  pfs::FileSystem fs;

  // The file's bytes will live in ./quickstart.nc on the host file system.
  if (!fs.CreateOnDisk("quickstart.nc", "quickstart.nc").ok()) {
    std::fprintf(stderr, "cannot create quickstart.nc\n");
    return 1;
  }

  // ---- write ----
  {
    netcdf::CreateOptions opts;
    opts.clobber = true;
    auto ds = netcdf::Dataset::Create(fs, "quickstart.nc", opts).value();

    const int lat = ds.DefDim("lat", 4).value();
    const int lon = ds.DefDim("lon", 6).value();
    const int temp =
        ds.DefVar("temperature", ncformat::NcType::kDouble, {lat, lon}).value();

    (void)ds.PutAttText(netcdf::kGlobal, "title", "PnetCDF repro quickstart");
    (void)ds.PutAttText(temp, "units", "kelvin");
    const double vr[] = {180.0, 330.0};
    (void)ds.PutAttValues<double>(temp, "valid_range",
                                  ncformat::NcType::kDouble, vr);

    if (auto s = ds.EndDef(); !s.ok()) {
      std::fprintf(stderr, "enddef: %s\n", s.message().c_str());
      return 1;
    }

    std::vector<double> field(4 * 6);
    for (std::size_t i = 0; i < field.size(); ++i)
      field[i] = 273.15 + static_cast<double>(i) * 0.5;
    if (auto s = ds.PutVar<double>(temp, field); !s.ok()) {
      std::fprintf(stderr, "put: %s\n", s.message().c_str());
      return 1;
    }
    (void)ds.Close();
    std::printf("wrote quickstart.nc (%d dims, %d vars)\n", ds.ndims(),
                ds.nvars());
  }

  // ---- read ----
  {
    auto ds = netcdf::Dataset::Open(fs, "quickstart.nc", false).value();
    std::printf("title: %s\n",
                ds.GetAtt(netcdf::kGlobal, "title").value().AsText().c_str());
    const int temp = ds.VarId("temperature").value();
    std::printf("temperature units: %s\n",
                ds.GetAtt(temp, "units").value().AsText().c_str());

    // Read a subarray: row 2, columns 1..4.
    const std::uint64_t start[] = {2, 1};
    const std::uint64_t count[] = {1, 4};
    std::vector<double> row(4);
    (void)ds.GetVara<double>(temp, start, count, row);
    std::printf("temperature[2][1..4] =");
    for (double v : row) std::printf(" %.2f", v);
    std::printf("\n");
    (void)ds.Close();
  }
  return 0;
}
