// A miniature FLASH run writing a checkpoint through PnetCDF (§5.2).
//
// Sixteen thread-backed ranks each hold 8 AMR blocks of 8^3 cells with 4
// guard cells; the checkpoint (all 24 unknowns + AMR tree metadata) is
// written collectively to a single netCDF file, which is then validated
// serially — the paper's FLASH I/O benchmark as an application example.
#include <cstdio>

#include "flash/flash.hpp"
#include "simmpi/runtime.hpp"

int main() {
  pfs::FileSystem fs;
  const int nprocs = 16;

  flashio::FlashConfig cfg;     // 8x8x8 blocks, 4 guard cells, 24 unknowns
  cfg.blocks_per_proc = 8;      // a small run; the benchmark uses 80

  auto result = simmpi::Run(nprocs, [&](simmpi::Comm& comm) {
    flashio::FlashData data(cfg, comm.rank());
    auto st = flashio::WriteFlashPnetcdf(comm, fs, "flash_chk_0001.nc", data,
                                         flashio::FileKind::kCheckpoint,
                                         simmpi::NullInfo());
    if (!st.ok() && comm.rank() == 0)
      std::fprintf(stderr, "checkpoint failed: %s\n", st.message().c_str());
  });

  const std::uint64_t total =
      flashio::BytesPerProc(cfg, flashio::FileKind::kCheckpoint) * nprocs;
  std::printf("checkpoint: %.1f MB from %d ranks in %.1f ms virtual time "
              "(%.1f MB/s aggregate)\n",
              static_cast<double>(total) / (1 << 20), nprocs,
              result.max_time_ns / 1e6,
              static_cast<double>(total) / result.max_time_ns * 1e3);

  auto st = flashio::ValidateFlashPnetcdf(fs, "flash_chk_0001.nc", cfg, nprocs,
                                          flashio::FileKind::kCheckpoint);
  std::printf("serial validation: %s\n", st.ok() ? "OK" : st.message().c_str());
  return st.ok() ? 0 : 1;
}
