// Climate-style record variables: the workload the paper's introduction
// motivates ("atmospheric science applications ... use netCDF to store ...
// single-point observations, time series, regularly spaced grids").
//
// A surface-pressure field on a lat/lon grid is appended one time step at a
// time along the UNLIMITED dimension, collectively, by a latitude-partitioned
// process group; a scalar per-step timestamp goes into a second record
// variable, showing the interleaved record layout of Figure 1 at work.
#include <cmath>
#include <cstdio>
#include <vector>

#include "netcdf/dataset.hpp"
#include "pnetcdf/dataset.hpp"
#include "simmpi/runtime.hpp"

int main() {
  pfs::FileSystem fs;
  const int nprocs = 4;
  const std::uint64_t kLat = 32, kLon = 64, kSteps = 10;

  simmpi::Run(nprocs, [&](simmpi::Comm& comm) {
    auto ds =
        pnetcdf::Dataset::Create(comm, fs, "climate.nc", simmpi::NullInfo())
            .value();
    const int time = ds.DefDim("time", pnetcdf::kUnlimited).value();
    const int lat = ds.DefDim("lat", kLat).value();
    const int lon = ds.DefDim("lon", kLon).value();
    const int pres =
        ds.DefVar("pressure", ncformat::NcType::kFloat, {time, lat, lon})
            .value();
    const int when =
        ds.DefVar("timestamp", ncformat::NcType::kDouble, {time}).value();
    (void)ds.PutAttText(pres, "units", "hPa");
    (void)ds.PutAttText(when, "units", "hours since 2003-11-15 00:00");
    (void)ds.EndDef();

    const std::uint64_t lat_per = kLat / static_cast<std::uint64_t>(comm.size());
    const std::uint64_t lat0 = lat_per * static_cast<std::uint64_t>(comm.rank());
    std::vector<float> field(lat_per * kLon);

    for (std::uint64_t step = 0; step < kSteps; ++step) {
      // Synthesize this step's local patch.
      for (std::uint64_t i = 0; i < lat_per; ++i)
        for (std::uint64_t j = 0; j < kLon; ++j)
          field[i * kLon + j] = static_cast<float>(
              1013.25 +
              8.0 * std::sin(0.1 * static_cast<double>(step) +
                             0.2 * static_cast<double>(lat0 + i)) +
              3.0 * std::cos(0.3 * static_cast<double>(j)));

      // Appending records: the record dimension grows on collective write.
      const std::uint64_t start[] = {step, lat0, 0};
      const std::uint64_t count[] = {1, lat_per, kLon};
      (void)ds.PutVaraAll<float>(pres, start, count, field);

      const std::uint64_t ts[] = {step};
      const std::uint64_t tc[] = {1};
      const double hours = static_cast<double>(step) * 6.0;
      (void)ds.PutVaraAll<double>(when, ts, tc, {&hours, 1});
    }
    if (comm.rank() == 0)
      std::printf("appended %llu records collectively (numrecs=%llu)\n",
                  static_cast<unsigned long long>(kSteps),
                  static_cast<unsigned long long>(ds.numrecs()));
    (void)ds.Close();
  });

  // Read a time series at one grid point through the serial library.
  auto ds = netcdf::Dataset::Open(fs, "climate.nc", false).value();
  const int pres = ds.VarId("pressure").value();
  std::printf("pressure time series at (lat 5, lon 7):\n ");
  for (std::uint64_t t = 0; t < kSteps; ++t) {
    float v = 0;
    const std::uint64_t idx[] = {t, 5, 7};
    (void)ds.GetVar1<float>(pres, idx, v);
    std::printf(" %.1f", v);
  }
  std::printf("\n");
  double t0 = 0, t9 = 0;
  const int when = ds.VarId("timestamp").value();
  const std::uint64_t i0[] = {0}, i9[] = {kSteps - 1};
  (void)ds.GetVar1<double>(when, i0, t0);
  (void)ds.GetVar1<double>(when, i9, t9);
  std::printf("timestamps span %.0f..%.0f hours over %llu records\n", t0, t9,
              static_cast<unsigned long long>(ds.numrecs()));
  return 0;
}
