// A C-style PnetCDF program, as ported from the production library.
//
// Everything below the simmpi::Run launcher is the flat ncmpi_* interface —
// integer handles, error-code returns, MPI_Offset vectors — including the
// nonblocking iput/wait_all pair. This is the porting surface for existing
// PnetCDF applications (paper §4: "ncmpi_"-prefixed C functions).
#include <cstdio>
#include <vector>

#include "pnetcdf/ncmpi.hpp"
#include "simmpi/runtime.hpp"

using namespace pnetcdf::capi;

#define CHECK(call)                                            \
  do {                                                         \
    const int _err = (call);                                   \
    if (_err != NC_NOERR) {                                    \
      std::fprintf(stderr, "%s failed: %s\n", #call,           \
                   ncmpi_strerror(_err));                      \
      return;                                                  \
    }                                                          \
  } while (0)

int main() {
  pfs::FileSystem fs;
  const int nprocs = 4;

  simmpi::Run(nprocs, [&](simmpi::Comm& comm) {
    int ncid, dim_t, dim_cell, var_u, var_p;

    CHECK(ncmpi_create(comm, fs, "cstyle.nc", NC_CLOBBER | NC_64BIT_OFFSET,
                       simmpi::NullInfo(), &ncid));
    CHECK(ncmpi_def_dim(ncid, "time", NC_UNLIMITED, &dim_t));
    CHECK(ncmpi_def_dim(ncid, "cell", 64, &dim_cell));
    const int dims[] = {dim_t, dim_cell};
    CHECK(ncmpi_def_var(ncid, "u", NC_DOUBLE, 2, dims, &var_u));
    CHECK(ncmpi_def_var(ncid, "p", NC_FLOAT, 2, dims, &var_p));
    CHECK(ncmpi_put_att_text(ncid, NC_GLOBAL, "source", 12, "ncmpi C port"));
    CHECK(ncmpi_enddef(ncid));

    // Three time steps; each rank owns a contiguous cell range. The two
    // variables are posted as nonblocking puts and complete together.
    const MPI_Offset cells_per = 64 / nprocs;
    for (MPI_Offset step = 0; step < 3; ++step) {
      const MPI_Offset start[] = {step, cells_per * comm.rank()};
      const MPI_Offset count[] = {1, cells_per};
      std::vector<double> u(static_cast<std::size_t>(cells_per));
      std::vector<float> p(static_cast<std::size_t>(cells_per));
      for (MPI_Offset i = 0; i < cells_per; ++i) {
        u[static_cast<std::size_t>(i)] =
            static_cast<double>(step * 1000 + comm.rank() * 100 + i);
        p[static_cast<std::size_t>(i)] =
            static_cast<float>(step) + 0.25f * static_cast<float>(comm.rank());
      }
      int reqs[2], sts[2];
      CHECK(ncmpi_iput_vara_double(ncid, var_u, start, count, u.data(),
                                   &reqs[0]));
      CHECK(ncmpi_iput_vara_float(ncid, var_p, start, count, p.data(),
                                  &reqs[1]));
      CHECK(ncmpi_wait_all(ncid, 2, reqs, sts));
    }

    // Inquiry + a verification read.
    MPI_Offset nrecs = 0;
    CHECK(ncmpi_inq_dimlen(ncid, dim_t, &nrecs));
    const MPI_Offset start[] = {2, cells_per * comm.rank()};
    const MPI_Offset count[] = {1, 2};
    double check[2];
    CHECK(ncmpi_get_vara_double_all(ncid, var_u, start, count, check));
    if (comm.rank() == 0)
      std::printf("wrote %lld records; u[2][0..1] on rank 0 = %.0f %.0f\n",
                  nrecs, check[0], check[1]);
    CHECK(ncmpi_close(ncid));
  });
  return 0;
}
