// MPI-IO hints and the flexible API (paper §4.1/§4.2.2).
//
// The same strided collective write is issued under different hint settings
// — two-phase collective buffering on/off, data sieving on/off, varying
// cb_nodes — and the resulting request traffic at the (simulated) I/O
// servers plus the virtual completion time are printed, making the effect of
// each optimization visible. The user buffer is noncontiguous in memory and
// described with an MPI datatype through the flexible API.
#include <cstdio>
#include <vector>

#include "pnetcdf/dataset.hpp"
#include "simmpi/runtime.hpp"

namespace {

struct Outcome {
  std::uint64_t write_requests = 0;
  std::uint64_t bytes_written = 0;
  double time_ms = 0;
};

Outcome RunWith(const simmpi::Info& info) {
  pfs::FileSystem fs;
  const int nprocs = 8;
  const std::uint64_t kZ = 64, kY = 64, kX = 64;
  Outcome out;

  auto result = simmpi::Run(nprocs, [&](simmpi::Comm& comm) {
    auto ds = pnetcdf::Dataset::Create(comm, fs, "tuned.nc", info).value();
    const int zd = ds.DefDim("z", kZ).value();
    const int yd = ds.DefDim("y", kY).value();
    const int xd = ds.DefDim("x", kX).value();
    const int v =
        ds.DefVar("u", ncformat::NcType::kDouble, {zd, yd, xd}).value();
    (void)ds.EndDef();

    // Y-partition: maximally interleaved in the file. The local buffer has
    // a one-plane halo on the Y faces, described by a subarray datatype.
    const std::uint64_t yper = kY / static_cast<std::uint64_t>(comm.size());
    const std::uint64_t msizes[] = {kZ, yper + 2, kX};
    const std::uint64_t msub[] = {kZ, yper, kX};
    const std::uint64_t mstart[] = {0, 1, 0};
    auto buftype = simmpi::Datatype::Subarray(msizes, msub, mstart,
                                              simmpi::DoubleType())
                       .value();
    std::vector<double> local(kZ * (yper + 2) * kX, 1.0);

    const std::uint64_t start[] = {
        0, yper * static_cast<std::uint64_t>(comm.rank()), 0};
    const std::uint64_t count[] = {kZ, yper, kX};
    (void)ds.PutVaraAllFlex(v, start, count, local.data(), 1, buftype);
    (void)ds.Close();
  });

  out.write_requests = fs.stats().write_requests;
  out.bytes_written = fs.stats().bytes_written;
  out.time_ms = result.max_time_ns / 1e6;
  return out;
}

}  // namespace

int main() {
  struct NamedInfo {
    const char* label;
    simmpi::Info info;
  };
  std::vector<NamedInfo> settings;

  settings.push_back({"defaults (two-phase collective I/O)", {}});
  {
    simmpi::Info i;
    i.Set("cb_nodes", "2");
    settings.push_back({"cb_nodes=2 (fewer aggregators)", i});
  }
  {
    simmpi::Info i;
    i.Set("cb_buffer_size", "1048576");
    settings.push_back({"cb_buffer_size=1MB (smaller windows)", i});
  }
  {
    simmpi::Info i;
    i.Set("romio_cb_write", "disable");  // independent + data sieving
    settings.push_back({"romio_cb_write=disable (sieved independent)", i});
  }
  {
    simmpi::Info i;
    i.Set("romio_cb_write", "disable");
    i.Set("romio_ds_write", "disable");  // fully naive
    settings.push_back({"cb+ds disabled (naive per-segment writes)", i});
  }
  {
    simmpi::Info i;
    i.Set("nc_header_align_size", "8192");
    settings.push_back({"nc_header_align_size=8192 (PnetCDF-level hint)", i});
  }

  std::printf("%-48s %10s %12s %12s\n", "hint setting", "requests",
              "bytes", "time(ms)");
  for (auto& s : settings) {
    const Outcome o = RunWith(s.info);
    std::printf("%-48s %10llu %12llu %12.2f\n", s.label,
                static_cast<unsigned long long>(o.write_requests),
                static_cast<unsigned long long>(o.bytes_written), o.time_ms);
  }
  std::printf("\nFewer, larger requests <=> faster completion: the ordering "
              "above is the paper's\nmotivation for building PnetCDF on "
              "MPI-IO's collective machinery.\n");
  return 0;
}
