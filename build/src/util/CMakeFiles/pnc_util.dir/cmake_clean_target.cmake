file(REMOVE_RECURSE
  "libpnc_util.a"
)
