# Empty compiler generated dependencies file for pnc_util.
# This may be replaced when dependencies are built.
