file(REMOVE_RECURSE
  "CMakeFiles/pnc_util.dir/status.cpp.o"
  "CMakeFiles/pnc_util.dir/status.cpp.o.d"
  "CMakeFiles/pnc_util.dir/xdr.cpp.o"
  "CMakeFiles/pnc_util.dir/xdr.cpp.o.d"
  "libpnc_util.a"
  "libpnc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
