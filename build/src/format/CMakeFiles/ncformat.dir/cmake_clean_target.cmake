file(REMOVE_RECURSE
  "libncformat.a"
)
