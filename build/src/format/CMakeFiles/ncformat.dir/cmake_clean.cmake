file(REMOVE_RECURSE
  "CMakeFiles/ncformat.dir/header.cpp.o"
  "CMakeFiles/ncformat.dir/header.cpp.o.d"
  "CMakeFiles/ncformat.dir/layout.cpp.o"
  "CMakeFiles/ncformat.dir/layout.cpp.o.d"
  "libncformat.a"
  "libncformat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncformat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
