# Empty dependencies file for ncformat.
# This may be replaced when dependencies are built.
