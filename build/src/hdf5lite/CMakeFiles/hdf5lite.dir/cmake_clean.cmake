file(REMOVE_RECURSE
  "CMakeFiles/hdf5lite.dir/h5file.cpp.o"
  "CMakeFiles/hdf5lite.dir/h5file.cpp.o.d"
  "libhdf5lite.a"
  "libhdf5lite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdf5lite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
