file(REMOVE_RECURSE
  "libhdf5lite.a"
)
