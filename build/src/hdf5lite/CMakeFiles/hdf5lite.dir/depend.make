# Empty dependencies file for hdf5lite.
# This may be replaced when dependencies are built.
