# CMake generated Testfile for 
# Source directory: /root/repo/src/hdf5lite
# Build directory: /root/repo/build/src/hdf5lite
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
