file(REMOVE_RECURSE
  "CMakeFiles/ncks.dir/ncks_main.cpp.o"
  "CMakeFiles/ncks.dir/ncks_main.cpp.o.d"
  "ncks"
  "ncks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
