# Empty dependencies file for ncks.
# This may be replaced when dependencies are built.
