# Empty dependencies file for ncmpidiff.
# This may be replaced when dependencies are built.
