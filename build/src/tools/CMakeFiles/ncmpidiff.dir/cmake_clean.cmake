file(REMOVE_RECURSE
  "CMakeFiles/ncmpidiff.dir/ncmpidiff_main.cpp.o"
  "CMakeFiles/ncmpidiff.dir/ncmpidiff_main.cpp.o.d"
  "ncmpidiff"
  "ncmpidiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncmpidiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
