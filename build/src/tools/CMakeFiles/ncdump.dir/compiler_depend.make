# Empty compiler generated dependencies file for ncdump.
# This may be replaced when dependencies are built.
