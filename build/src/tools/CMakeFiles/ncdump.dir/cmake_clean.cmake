file(REMOVE_RECURSE
  "CMakeFiles/ncdump.dir/ncdump_main.cpp.o"
  "CMakeFiles/ncdump.dir/ncdump_main.cpp.o.d"
  "ncdump"
  "ncdump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncdump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
