file(REMOVE_RECURSE
  "libnctools.a"
)
