# Empty compiler generated dependencies file for nctools.
# This may be replaced when dependencies are built.
