file(REMOVE_RECURSE
  "CMakeFiles/nctools.dir/cdl.cpp.o"
  "CMakeFiles/nctools.dir/cdl.cpp.o.d"
  "CMakeFiles/nctools.dir/compare.cpp.o"
  "CMakeFiles/nctools.dir/compare.cpp.o.d"
  "CMakeFiles/nctools.dir/subset.cpp.o"
  "CMakeFiles/nctools.dir/subset.cpp.o.d"
  "libnctools.a"
  "libnctools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nctools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
