# Empty dependencies file for ncgen.
# This may be replaced when dependencies are built.
