file(REMOVE_RECURSE
  "CMakeFiles/ncgen.dir/ncgen_main.cpp.o"
  "CMakeFiles/ncgen.dir/ncgen_main.cpp.o.d"
  "ncgen"
  "ncgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
