# Empty compiler generated dependencies file for nccopy.
# This may be replaced when dependencies are built.
