file(REMOVE_RECURSE
  "CMakeFiles/nccopy.dir/nccopy_main.cpp.o"
  "CMakeFiles/nccopy.dir/nccopy_main.cpp.o.d"
  "nccopy"
  "nccopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nccopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
