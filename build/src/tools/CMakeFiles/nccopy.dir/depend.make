# Empty dependencies file for nccopy.
# This may be replaced when dependencies are built.
