file(REMOVE_RECURSE
  "CMakeFiles/netcdf.dir/buffered_file.cpp.o"
  "CMakeFiles/netcdf.dir/buffered_file.cpp.o.d"
  "CMakeFiles/netcdf.dir/dataset.cpp.o"
  "CMakeFiles/netcdf.dir/dataset.cpp.o.d"
  "CMakeFiles/netcdf.dir/ncapi.cpp.o"
  "CMakeFiles/netcdf.dir/ncapi.cpp.o.d"
  "libnetcdf.a"
  "libnetcdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
