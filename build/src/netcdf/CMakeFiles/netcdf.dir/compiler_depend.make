# Empty compiler generated dependencies file for netcdf.
# This may be replaced when dependencies are built.
