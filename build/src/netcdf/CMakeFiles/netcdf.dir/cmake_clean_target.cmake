file(REMOVE_RECURSE
  "libnetcdf.a"
)
