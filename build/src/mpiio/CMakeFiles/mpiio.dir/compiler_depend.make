# Empty compiler generated dependencies file for mpiio.
# This may be replaced when dependencies are built.
