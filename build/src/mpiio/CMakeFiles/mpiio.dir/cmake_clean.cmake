file(REMOVE_RECURSE
  "CMakeFiles/mpiio.dir/file.cpp.o"
  "CMakeFiles/mpiio.dir/file.cpp.o.d"
  "CMakeFiles/mpiio.dir/twophase.cpp.o"
  "CMakeFiles/mpiio.dir/twophase.cpp.o.d"
  "CMakeFiles/mpiio.dir/view.cpp.o"
  "CMakeFiles/mpiio.dir/view.cpp.o.d"
  "libmpiio.a"
  "libmpiio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpiio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
