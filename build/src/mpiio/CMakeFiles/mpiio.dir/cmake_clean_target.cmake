file(REMOVE_RECURSE
  "libmpiio.a"
)
