file(REMOVE_RECURSE
  "CMakeFiles/flashio.dir/flash.cpp.o"
  "CMakeFiles/flashio.dir/flash.cpp.o.d"
  "libflashio.a"
  "libflashio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
