# Empty dependencies file for flashio.
# This may be replaced when dependencies are built.
