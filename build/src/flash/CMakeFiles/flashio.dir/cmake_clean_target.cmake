file(REMOVE_RECURSE
  "libflashio.a"
)
