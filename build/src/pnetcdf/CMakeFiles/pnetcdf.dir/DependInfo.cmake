
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pnetcdf/dataset.cpp" "src/pnetcdf/CMakeFiles/pnetcdf.dir/dataset.cpp.o" "gcc" "src/pnetcdf/CMakeFiles/pnetcdf.dir/dataset.cpp.o.d"
  "/root/repo/src/pnetcdf/ncmpi.cpp" "src/pnetcdf/CMakeFiles/pnetcdf.dir/ncmpi.cpp.o" "gcc" "src/pnetcdf/CMakeFiles/pnetcdf.dir/ncmpi.cpp.o.d"
  "/root/repo/src/pnetcdf/nfmpi.cpp" "src/pnetcdf/CMakeFiles/pnetcdf.dir/nfmpi.cpp.o" "gcc" "src/pnetcdf/CMakeFiles/pnetcdf.dir/nfmpi.cpp.o.d"
  "/root/repo/src/pnetcdf/nonblocking.cpp" "src/pnetcdf/CMakeFiles/pnetcdf.dir/nonblocking.cpp.o" "gcc" "src/pnetcdf/CMakeFiles/pnetcdf.dir/nonblocking.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/format/CMakeFiles/ncformat.dir/DependInfo.cmake"
  "/root/repo/build/src/mpiio/CMakeFiles/mpiio.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/simpfs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pnc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
