file(REMOVE_RECURSE
  "CMakeFiles/pnetcdf.dir/dataset.cpp.o"
  "CMakeFiles/pnetcdf.dir/dataset.cpp.o.d"
  "CMakeFiles/pnetcdf.dir/ncmpi.cpp.o"
  "CMakeFiles/pnetcdf.dir/ncmpi.cpp.o.d"
  "CMakeFiles/pnetcdf.dir/nfmpi.cpp.o"
  "CMakeFiles/pnetcdf.dir/nfmpi.cpp.o.d"
  "CMakeFiles/pnetcdf.dir/nonblocking.cpp.o"
  "CMakeFiles/pnetcdf.dir/nonblocking.cpp.o.d"
  "libpnetcdf.a"
  "libpnetcdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnetcdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
