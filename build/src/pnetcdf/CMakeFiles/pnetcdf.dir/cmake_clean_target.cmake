file(REMOVE_RECURSE
  "libpnetcdf.a"
)
