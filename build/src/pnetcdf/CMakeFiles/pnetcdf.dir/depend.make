# Empty dependencies file for pnetcdf.
# This may be replaced when dependencies are built.
