file(REMOVE_RECURSE
  "CMakeFiles/simpfs.dir/pfs.cpp.o"
  "CMakeFiles/simpfs.dir/pfs.cpp.o.d"
  "libsimpfs.a"
  "libsimpfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simpfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
