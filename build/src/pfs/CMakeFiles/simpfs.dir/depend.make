# Empty dependencies file for simpfs.
# This may be replaced when dependencies are built.
