file(REMOVE_RECURSE
  "libsimpfs.a"
)
