# Empty dependencies file for simmpi.
# This may be replaced when dependencies are built.
