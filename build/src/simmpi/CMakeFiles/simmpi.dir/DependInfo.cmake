
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simmpi/comm.cpp" "src/simmpi/CMakeFiles/simmpi.dir/comm.cpp.o" "gcc" "src/simmpi/CMakeFiles/simmpi.dir/comm.cpp.o.d"
  "/root/repo/src/simmpi/datatype.cpp" "src/simmpi/CMakeFiles/simmpi.dir/datatype.cpp.o" "gcc" "src/simmpi/CMakeFiles/simmpi.dir/datatype.cpp.o.d"
  "/root/repo/src/simmpi/runtime.cpp" "src/simmpi/CMakeFiles/simmpi.dir/runtime.cpp.o" "gcc" "src/simmpi/CMakeFiles/simmpi.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pnc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
