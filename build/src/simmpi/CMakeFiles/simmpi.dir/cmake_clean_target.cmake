file(REMOVE_RECURSE
  "libsimmpi.a"
)
