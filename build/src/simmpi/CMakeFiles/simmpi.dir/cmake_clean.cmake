file(REMOVE_RECURSE
  "CMakeFiles/simmpi.dir/comm.cpp.o"
  "CMakeFiles/simmpi.dir/comm.cpp.o.d"
  "CMakeFiles/simmpi.dir/datatype.cpp.o"
  "CMakeFiles/simmpi.dir/datatype.cpp.o.d"
  "CMakeFiles/simmpi.dir/runtime.cpp.o"
  "CMakeFiles/simmpi.dir/runtime.cpp.o.d"
  "libsimmpi.a"
  "libsimmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
