# Empty dependencies file for bench_ablation_sieving.
# This may be replaced when dependencies are built.
