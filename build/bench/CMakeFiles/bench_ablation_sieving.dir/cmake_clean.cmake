file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sieving.dir/bench_ablation_sieving.cpp.o"
  "CMakeFiles/bench_ablation_sieving.dir/bench_ablation_sieving.cpp.o.d"
  "bench_ablation_sieving"
  "bench_ablation_sieving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sieving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
