file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_collective.dir/bench_ablation_collective.cpp.o"
  "CMakeFiles/bench_ablation_collective.dir/bench_ablation_collective.cpp.o.d"
  "bench_ablation_collective"
  "bench_ablation_collective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
