# Empty dependencies file for bench_ablation_collective.
# This may be replaced when dependencies are built.
