# Empty compiler generated dependencies file for bench_ablation_twophase.
# This may be replaced when dependencies are built.
