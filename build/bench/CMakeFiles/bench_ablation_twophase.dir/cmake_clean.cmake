file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_twophase.dir/bench_ablation_twophase.cpp.o"
  "CMakeFiles/bench_ablation_twophase.dir/bench_ablation_twophase.cpp.o.d"
  "bench_ablation_twophase"
  "bench_ablation_twophase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_twophase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
