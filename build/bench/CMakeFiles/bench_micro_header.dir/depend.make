# Empty dependencies file for bench_micro_header.
# This may be replaced when dependencies are built.
