file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_header.dir/bench_micro_header.cpp.o"
  "CMakeFiles/bench_micro_header.dir/bench_micro_header.cpp.o.d"
  "bench_micro_header"
  "bench_micro_header.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_header.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
