file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_flashio.dir/bench_fig7_flashio.cpp.o"
  "CMakeFiles/bench_fig7_flashio.dir/bench_fig7_flashio.cpp.o.d"
  "bench_fig7_flashio"
  "bench_fig7_flashio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_flashio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
