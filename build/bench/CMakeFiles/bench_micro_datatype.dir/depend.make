# Empty dependencies file for bench_micro_datatype.
# This may be replaced when dependencies are built.
