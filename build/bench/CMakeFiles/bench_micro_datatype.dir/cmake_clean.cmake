file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_datatype.dir/bench_micro_datatype.cpp.o"
  "CMakeFiles/bench_micro_datatype.dir/bench_micro_datatype.cpp.o.d"
  "bench_micro_datatype"
  "bench_micro_datatype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_datatype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
