# Empty dependencies file for bench_ablation_header.
# This may be replaced when dependencies are built.
