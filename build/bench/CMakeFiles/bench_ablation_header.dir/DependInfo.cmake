
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_header.cpp" "bench/CMakeFiles/bench_ablation_header.dir/bench_ablation_header.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_header.dir/bench_ablation_header.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pnetcdf/CMakeFiles/pnetcdf.dir/DependInfo.cmake"
  "/root/repo/build/src/hdf5lite/CMakeFiles/hdf5lite.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/ncformat.dir/DependInfo.cmake"
  "/root/repo/build/src/mpiio/CMakeFiles/mpiio.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/simpfs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pnc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
