file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_header.dir/bench_ablation_header.cpp.o"
  "CMakeFiles/bench_ablation_header.dir/bench_ablation_header.cpp.o.d"
  "bench_ablation_header"
  "bench_ablation_header.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_header.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
