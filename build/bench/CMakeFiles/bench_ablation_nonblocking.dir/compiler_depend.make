# Empty compiler generated dependencies file for bench_ablation_nonblocking.
# This may be replaced when dependencies are built.
