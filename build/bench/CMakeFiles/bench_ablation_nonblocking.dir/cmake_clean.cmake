file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nonblocking.dir/bench_ablation_nonblocking.cpp.o"
  "CMakeFiles/bench_ablation_nonblocking.dir/bench_ablation_nonblocking.cpp.o.d"
  "bench_ablation_nonblocking"
  "bench_ablation_nonblocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nonblocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
