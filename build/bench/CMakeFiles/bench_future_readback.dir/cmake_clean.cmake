file(REMOVE_RECURSE
  "CMakeFiles/bench_future_readback.dir/bench_future_readback.cpp.o"
  "CMakeFiles/bench_future_readback.dir/bench_future_readback.cpp.o.d"
  "bench_future_readback"
  "bench_future_readback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_future_readback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
