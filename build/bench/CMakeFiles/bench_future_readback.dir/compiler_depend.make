# Empty compiler generated dependencies file for bench_future_readback.
# This may be replaced when dependencies are built.
