# Empty compiler generated dependencies file for bench_ablation_servers.
# This may be replaced when dependencies are built.
