file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_servers.dir/bench_ablation_servers.cpp.o"
  "CMakeFiles/bench_ablation_servers.dir/bench_ablation_servers.cpp.o.d"
  "bench_ablation_servers"
  "bench_ablation_servers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
