file(REMOVE_RECURSE
  "CMakeFiles/hdf5lite_test.dir/hdf5lite_test.cpp.o"
  "CMakeFiles/hdf5lite_test.dir/hdf5lite_test.cpp.o.d"
  "hdf5lite_test"
  "hdf5lite_test.pdb"
  "hdf5lite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdf5lite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
