# Empty compiler generated dependencies file for hdf5lite_test.
# This may be replaced when dependencies are built.
