# Empty compiler generated dependencies file for netcdf_serial_test.
# This may be replaced when dependencies are built.
