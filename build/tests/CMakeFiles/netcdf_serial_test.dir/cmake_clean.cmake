file(REMOVE_RECURSE
  "CMakeFiles/netcdf_serial_test.dir/netcdf_serial_test.cpp.o"
  "CMakeFiles/netcdf_serial_test.dir/netcdf_serial_test.cpp.o.d"
  "netcdf_serial_test"
  "netcdf_serial_test.pdb"
  "netcdf_serial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcdf_serial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
