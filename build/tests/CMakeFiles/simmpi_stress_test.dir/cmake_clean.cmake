file(REMOVE_RECURSE
  "CMakeFiles/simmpi_stress_test.dir/simmpi_stress_test.cpp.o"
  "CMakeFiles/simmpi_stress_test.dir/simmpi_stress_test.cpp.o.d"
  "simmpi_stress_test"
  "simmpi_stress_test.pdb"
  "simmpi_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simmpi_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
