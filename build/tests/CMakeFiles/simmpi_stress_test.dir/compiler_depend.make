# Empty compiler generated dependencies file for simmpi_stress_test.
# This may be replaced when dependencies are built.
