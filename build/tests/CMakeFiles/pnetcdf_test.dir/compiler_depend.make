# Empty compiler generated dependencies file for pnetcdf_test.
# This may be replaced when dependencies are built.
