file(REMOVE_RECURSE
  "CMakeFiles/pnetcdf_test.dir/pnetcdf_test.cpp.o"
  "CMakeFiles/pnetcdf_test.dir/pnetcdf_test.cpp.o.d"
  "pnetcdf_test"
  "pnetcdf_test.pdb"
  "pnetcdf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnetcdf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
