# Empty compiler generated dependencies file for nc_capi_test.
# This may be replaced when dependencies are built.
