file(REMOVE_RECURSE
  "CMakeFiles/nc_capi_test.dir/nc_capi_test.cpp.o"
  "CMakeFiles/nc_capi_test.dir/nc_capi_test.cpp.o.d"
  "nc_capi_test"
  "nc_capi_test.pdb"
  "nc_capi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nc_capi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
