file(REMOVE_RECURSE
  "CMakeFiles/format_golden_test.dir/format_golden_test.cpp.o"
  "CMakeFiles/format_golden_test.dir/format_golden_test.cpp.o.d"
  "format_golden_test"
  "format_golden_test.pdb"
  "format_golden_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_golden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
