file(REMOVE_RECURSE
  "CMakeFiles/nfmpi_test.dir/nfmpi_test.cpp.o"
  "CMakeFiles/nfmpi_test.dir/nfmpi_test.cpp.o.d"
  "nfmpi_test"
  "nfmpi_test.pdb"
  "nfmpi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfmpi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
