# Empty dependencies file for nfmpi_test.
# This may be replaced when dependencies are built.
