# Empty dependencies file for xdr_test.
# This may be replaced when dependencies are built.
