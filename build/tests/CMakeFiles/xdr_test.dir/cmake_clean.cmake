file(REMOVE_RECURSE
  "CMakeFiles/xdr_test.dir/xdr_test.cpp.o"
  "CMakeFiles/xdr_test.dir/xdr_test.cpp.o.d"
  "xdr_test"
  "xdr_test.pdb"
  "xdr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
