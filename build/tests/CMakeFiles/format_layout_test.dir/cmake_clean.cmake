file(REMOVE_RECURSE
  "CMakeFiles/format_layout_test.dir/format_layout_test.cpp.o"
  "CMakeFiles/format_layout_test.dir/format_layout_test.cpp.o.d"
  "format_layout_test"
  "format_layout_test.pdb"
  "format_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
