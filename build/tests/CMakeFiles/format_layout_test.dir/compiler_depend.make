# Empty compiler generated dependencies file for format_layout_test.
# This may be replaced when dependencies are built.
