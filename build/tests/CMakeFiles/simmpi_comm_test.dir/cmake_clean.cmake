file(REMOVE_RECURSE
  "CMakeFiles/simmpi_comm_test.dir/simmpi_comm_test.cpp.o"
  "CMakeFiles/simmpi_comm_test.dir/simmpi_comm_test.cpp.o.d"
  "simmpi_comm_test"
  "simmpi_comm_test.pdb"
  "simmpi_comm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simmpi_comm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
