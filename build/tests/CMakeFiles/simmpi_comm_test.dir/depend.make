# Empty dependencies file for simmpi_comm_test.
# This may be replaced when dependencies are built.
