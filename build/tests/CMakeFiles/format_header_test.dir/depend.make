# Empty dependencies file for format_header_test.
# This may be replaced when dependencies are built.
