file(REMOVE_RECURSE
  "CMakeFiles/format_header_test.dir/format_header_test.cpp.o"
  "CMakeFiles/format_header_test.dir/format_header_test.cpp.o.d"
  "format_header_test"
  "format_header_test.pdb"
  "format_header_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_header_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
