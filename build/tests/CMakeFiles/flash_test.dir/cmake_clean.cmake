file(REMOVE_RECURSE
  "CMakeFiles/flash_test.dir/flash_test.cpp.o"
  "CMakeFiles/flash_test.dir/flash_test.cpp.o.d"
  "flash_test"
  "flash_test.pdb"
  "flash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
