file(REMOVE_RECURSE
  "CMakeFiles/format_convert_test.dir/format_convert_test.cpp.o"
  "CMakeFiles/format_convert_test.dir/format_convert_test.cpp.o.d"
  "format_convert_test"
  "format_convert_test.pdb"
  "format_convert_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_convert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
