# Empty compiler generated dependencies file for format_convert_test.
# This may be replaced when dependencies are built.
