file(REMOVE_RECURSE
  "CMakeFiles/tools_subset_test.dir/tools_subset_test.cpp.o"
  "CMakeFiles/tools_subset_test.dir/tools_subset_test.cpp.o.d"
  "tools_subset_test"
  "tools_subset_test.pdb"
  "tools_subset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tools_subset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
