# Empty compiler generated dependencies file for tools_subset_test.
# This may be replaced when dependencies are built.
