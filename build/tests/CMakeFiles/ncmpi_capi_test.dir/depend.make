# Empty dependencies file for ncmpi_capi_test.
# This may be replaced when dependencies are built.
