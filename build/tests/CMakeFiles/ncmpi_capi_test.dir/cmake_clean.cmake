file(REMOVE_RECURSE
  "CMakeFiles/ncmpi_capi_test.dir/ncmpi_capi_test.cpp.o"
  "CMakeFiles/ncmpi_capi_test.dir/ncmpi_capi_test.cpp.o.d"
  "ncmpi_capi_test"
  "ncmpi_capi_test.pdb"
  "ncmpi_capi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncmpi_capi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
