file(REMOVE_RECURSE
  "CMakeFiles/paper_shape_test.dir/paper_shape_test.cpp.o"
  "CMakeFiles/paper_shape_test.dir/paper_shape_test.cpp.o.d"
  "paper_shape_test"
  "paper_shape_test.pdb"
  "paper_shape_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
