# Empty dependencies file for mpiio_sweep_test.
# This may be replaced when dependencies are built.
