file(REMOVE_RECURSE
  "CMakeFiles/mpiio_sweep_test.dir/mpiio_sweep_test.cpp.o"
  "CMakeFiles/mpiio_sweep_test.dir/mpiio_sweep_test.cpp.o.d"
  "mpiio_sweep_test"
  "mpiio_sweep_test.pdb"
  "mpiio_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpiio_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
