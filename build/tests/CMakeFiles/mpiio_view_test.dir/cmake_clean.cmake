file(REMOVE_RECURSE
  "CMakeFiles/mpiio_view_test.dir/mpiio_view_test.cpp.o"
  "CMakeFiles/mpiio_view_test.dir/mpiio_view_test.cpp.o.d"
  "mpiio_view_test"
  "mpiio_view_test.pdb"
  "mpiio_view_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpiio_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
