# Empty dependencies file for mpiio_view_test.
# This may be replaced when dependencies are built.
