# Empty dependencies file for parallel_serial_equiv_test.
# This may be replaced when dependencies are built.
