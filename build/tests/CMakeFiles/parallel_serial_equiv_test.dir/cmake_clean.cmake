file(REMOVE_RECURSE
  "CMakeFiles/parallel_serial_equiv_test.dir/parallel_serial_equiv_test.cpp.o"
  "CMakeFiles/parallel_serial_equiv_test.dir/parallel_serial_equiv_test.cpp.o.d"
  "parallel_serial_equiv_test"
  "parallel_serial_equiv_test.pdb"
  "parallel_serial_equiv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_serial_equiv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
