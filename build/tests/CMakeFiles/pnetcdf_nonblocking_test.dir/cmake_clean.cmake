file(REMOVE_RECURSE
  "CMakeFiles/pnetcdf_nonblocking_test.dir/pnetcdf_nonblocking_test.cpp.o"
  "CMakeFiles/pnetcdf_nonblocking_test.dir/pnetcdf_nonblocking_test.cpp.o.d"
  "pnetcdf_nonblocking_test"
  "pnetcdf_nonblocking_test.pdb"
  "pnetcdf_nonblocking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnetcdf_nonblocking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
