# Empty compiler generated dependencies file for cdl_test.
# This may be replaced when dependencies are built.
