file(REMOVE_RECURSE
  "CMakeFiles/cdl_test.dir/cdl_test.cpp.o"
  "CMakeFiles/cdl_test.dir/cdl_test.cpp.o.d"
  "cdl_test"
  "cdl_test.pdb"
  "cdl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
