file(REMOVE_RECURSE
  "CMakeFiles/mpiio_io_test.dir/mpiio_io_test.cpp.o"
  "CMakeFiles/mpiio_io_test.dir/mpiio_io_test.cpp.o.d"
  "mpiio_io_test"
  "mpiio_io_test.pdb"
  "mpiio_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpiio_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
