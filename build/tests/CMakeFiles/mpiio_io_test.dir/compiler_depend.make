# Empty compiler generated dependencies file for mpiio_io_test.
# This may be replaced when dependencies are built.
