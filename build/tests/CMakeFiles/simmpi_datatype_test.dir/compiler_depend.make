# Empty compiler generated dependencies file for simmpi_datatype_test.
# This may be replaced when dependencies are built.
