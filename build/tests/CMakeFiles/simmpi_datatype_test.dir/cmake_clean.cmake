file(REMOVE_RECURSE
  "CMakeFiles/simmpi_datatype_test.dir/simmpi_datatype_test.cpp.o"
  "CMakeFiles/simmpi_datatype_test.dir/simmpi_datatype_test.cpp.o.d"
  "simmpi_datatype_test"
  "simmpi_datatype_test.pdb"
  "simmpi_datatype_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simmpi_datatype_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
