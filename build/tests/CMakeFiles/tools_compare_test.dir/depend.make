# Empty dependencies file for tools_compare_test.
# This may be replaced when dependencies are built.
