file(REMOVE_RECURSE
  "CMakeFiles/tools_compare_test.dir/tools_compare_test.cpp.o"
  "CMakeFiles/tools_compare_test.dir/tools_compare_test.cpp.o.d"
  "tools_compare_test"
  "tools_compare_test.pdb"
  "tools_compare_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tools_compare_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
