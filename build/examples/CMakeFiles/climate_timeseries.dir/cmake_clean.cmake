file(REMOVE_RECURSE
  "CMakeFiles/climate_timeseries.dir/climate_timeseries.cpp.o"
  "CMakeFiles/climate_timeseries.dir/climate_timeseries.cpp.o.d"
  "climate_timeseries"
  "climate_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climate_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
