# Empty dependencies file for climate_timeseries.
# This may be replaced when dependencies are built.
