file(REMOVE_RECURSE
  "CMakeFiles/flash_checkpoint.dir/flash_checkpoint.cpp.o"
  "CMakeFiles/flash_checkpoint.dir/flash_checkpoint.cpp.o.d"
  "flash_checkpoint"
  "flash_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flash_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
