# Empty compiler generated dependencies file for flash_checkpoint.
# This may be replaced when dependencies are built.
