file(REMOVE_RECURSE
  "CMakeFiles/parallel_write.dir/parallel_write.cpp.o"
  "CMakeFiles/parallel_write.dir/parallel_write.cpp.o.d"
  "parallel_write"
  "parallel_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
