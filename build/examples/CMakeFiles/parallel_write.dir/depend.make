# Empty dependencies file for parallel_write.
# This may be replaced when dependencies are built.
