# Empty compiler generated dependencies file for hints_tuning.
# This may be replaced when dependencies are built.
