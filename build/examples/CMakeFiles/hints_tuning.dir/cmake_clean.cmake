file(REMOVE_RECURSE
  "CMakeFiles/hints_tuning.dir/hints_tuning.cpp.o"
  "CMakeFiles/hints_tuning.dir/hints_tuning.cpp.o.d"
  "hints_tuning"
  "hints_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hints_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
