file(REMOVE_RECURSE
  "CMakeFiles/ncmpi_c_style.dir/ncmpi_c_style.cpp.o"
  "CMakeFiles/ncmpi_c_style.dir/ncmpi_c_style.cpp.o.d"
  "ncmpi_c_style"
  "ncmpi_c_style.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncmpi_c_style.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
