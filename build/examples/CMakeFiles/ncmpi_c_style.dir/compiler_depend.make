# Empty compiler generated dependencies file for ncmpi_c_style.
# This may be replaced when dependencies are built.
