// Header-corruption fuzz sweep: flip every byte of a valid file's header
// region, one at a time, and require every open path — the serial library,
// the parallel (PnetCDF) open on all ranks, and the ncdump tool entry — to
// either succeed (the byte was not load-bearing) or fail with a clean error.
// Nothing may crash, hang, or leak; under the sanitizer preset this test
// also proves the decoders never touch memory they do not own.
#include <gtest/gtest.h>

#include "netcdf/dataset.hpp"
#include "pnetcdf/dataset.hpp"
#include "simmpi/runtime.hpp"
#include "test_support.hpp"
#include "tools/cdl.hpp"

namespace {

using pnc_test::ByteAt;
using pnc_test::CorruptByte;
using pnc_test::MakeValidFile;

std::uint64_t HeaderBytes(pfs::FileSystem& fs, const std::string& path) {
  auto ds = netcdf::Dataset::Open(fs, path, false).value();
  return ds.header().data_begin();
}

TEST(HeaderFuzz, SerialOpenNeverCrashes) {
  pfs::FileSystem fs;
  MakeValidFile(fs, "f.nc");
  const std::uint64_t hdr = HeaderBytes(fs, "f.nc");
  ASSERT_GT(hdr, 0u);
  for (std::uint64_t off = 0; off < hdr; ++off) {
    const std::byte orig = ByteAt(fs, "f.nc", off);
    CorruptByte(fs, "f.nc", off, orig ^ std::byte{0xFF});
    auto r = netcdf::Dataset::Open(fs, "f.nc", false);
    if (r.ok()) {
      // The flipped byte was not structurally load-bearing (e.g. padding or
      // a name character); the dataset must still be fully usable.
      EXPECT_GE(r.value().nvars(), 0);
    } else {
      EXPECT_LT(r.status().raw(), 0) << "offset " << off;
    }
    CorruptByte(fs, "f.nc", off, orig);  // restore for the next position
  }
  // After restoring everything the file opens cleanly again.
  EXPECT_TRUE(netcdf::Dataset::Open(fs, "f.nc", false).ok());
}

TEST(HeaderFuzz, ParallelOpenAgreesOnEveryRank) {
  pfs::FileSystem fs;
  MakeValidFile(fs, "f.nc");
  const std::uint64_t hdr = HeaderBytes(fs, "f.nc");
  for (std::uint64_t off = 0; off < hdr; ++off) {
    const std::byte orig = ByteAt(fs, "f.nc", off);
    CorruptByte(fs, "f.nc", off, orig ^ std::byte{0xFF});
    simmpi::Run(3, [&](simmpi::Comm& c) {
      auto r = pnetcdf::Dataset::Open(c, fs, "f.nc", false, simmpi::NullInfo());
      // Whatever the verdict, it is the same on every rank: the root decodes
      // and broadcasts, so no rank can diverge (and nobody hangs).
      int verdict = r.ok() ? 0 : r.status().raw();
      const int min = c.AllreduceMin(verdict);
      const int max = c.AllreduceMax(verdict);
      EXPECT_EQ(min, max) << "offset " << off;
    });
    CorruptByte(fs, "f.nc", off, orig);
  }
}

TEST(HeaderFuzz, NcdumpEntryNeverCrashes) {
  pfs::FileSystem fs;
  MakeValidFile(fs, "f.nc");
  const std::uint64_t hdr = HeaderBytes(fs, "f.nc");
  for (std::uint64_t off = 0; off < hdr; ++off) {
    const std::byte orig = ByteAt(fs, "f.nc", off);
    CorruptByte(fs, "f.nc", off, orig ^ std::byte{0xFF});
    // The ncdump tool path: open, then render CDL (header + data walk). A
    // flipped byte can yield a structurally valid header describing a
    // gigantic variable (e.g. a corrupted dim length); dumping its data is
    // merely slow, not a robustness failure, so bound the walk.
    auto r = netcdf::Dataset::Open(fs, "f.nc", false);
    if (r.ok()) {
      bool small = true;
      for (const auto& v : r.value().header().vars)
        if (v.vsize > 1u << 20) small = false;
      auto cdl = nctools::DumpCdl(r.value(), "f", /*with_data=*/small);
      if (cdl.ok()) {
        EXPECT_FALSE(cdl.value().empty());
      }
    } else {
      EXPECT_LT(r.status().raw(), 0);
    }
    CorruptByte(fs, "f.nc", off, orig);
  }
}

}  // namespace
