// The simmpi hang watchdog: a rank blocked in Recv with no matching message
// for longer than CostModel::hang_timeout_ms must dump the per-rank blocked
// state and abort the process instead of deadlocking the test run forever.
#include <gtest/gtest.h>

#include <cstdlib>

#include "simmpi/runtime.hpp"

namespace {

TEST(Watchdog, AbortsInsteadOfDeadlocking) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  simmpi::CostModel cm;
  cm.hang_timeout_ms = 200.0;  // real milliseconds, keep the death test quick
  EXPECT_DEATH(
      {
        simmpi::Run(
            2,
            [](simmpi::Comm& c) {
              // Rank 0 waits for a message rank 1 never sends: a classic
              // mismatched-communication deadlock, reduced to its essence.
              if (c.rank() == 0) (void)c.Recv(/*src=*/1, /*tag=*/7);
            },
            cm);
      },
      "hang watchdog");
}

TEST(Watchdog, EnvOverrideWins) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        // The env var overrides the model's setting — here it re-enables a
        // watchdog the config disabled.
        setenv("PNC_HANG_TIMEOUT_MS", "150", 1);
        simmpi::CostModel cm;
        cm.hang_timeout_ms = 0.0;  // config says "disabled"...
        simmpi::Run(
            2,
            [](simmpi::Comm& c) {
              if (c.rank() == 0) (void)c.Recv(/*src=*/1, /*tag=*/3);
            },
            cm);
      },
      "hang watchdog");
}

TEST(Watchdog, QuietWhenMessagesFlow) {
  // A normal exchange under a short timeout must not trip the watchdog.
  simmpi::CostModel cm;
  cm.hang_timeout_ms = 2'000.0;
  simmpi::Run(
      2,
      [](simmpi::Comm& c) {
        const std::byte ping{0x7E};
        if (c.rank() == 1) {
          c.Send(/*dst=*/0, /*tag=*/1, pnc::ConstByteSpan(&ping, 1));
        } else {
          const std::vector<std::byte> got = c.Recv(/*src=*/1, /*tag=*/1);
          ASSERT_EQ(got.size(), 1u);
          EXPECT_EQ(got[0], ping);
        }
      },
      cm);
}

}  // namespace
