// Unit tests for the XDR-style big-endian codec.
#include "util/xdr.hpp"

#include "util/bytes.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pnc::xdr {
namespace {

TEST(ByteSwap, Scalars) {
  EXPECT_EQ(ByteSwap<std::uint16_t>(0x1234), 0x3412);
  EXPECT_EQ(ByteSwap<std::uint32_t>(0x12345678u), 0x78563412u);
  EXPECT_EQ(ByteSwap<std::uint64_t>(0x0102030405060708ull),
            0x0807060504030201ull);
  EXPECT_EQ(ByteSwap<std::uint8_t>(0xAB), 0xAB);
}

TEST(ByteSwap, FloatRoundTrip) {
  const float f = 3.14159f;
  EXPECT_EQ(ByteSwap(ByteSwap(f)), f);
  const double d = -2.718281828459045;
  EXPECT_EQ(ByteSwap(ByteSwap(d)), d);
}

TEST(Encoder, ScalarLayoutIsBigEndian) {
  std::vector<std::byte> out;
  Encoder enc(out);
  enc.PutI32(0x0A0B0C0D);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], std::byte{0x0A});
  EXPECT_EQ(out[1], std::byte{0x0B});
  EXPECT_EQ(out[2], std::byte{0x0C});
  EXPECT_EQ(out[3], std::byte{0x0D});
}

TEST(Encoder, NamePadsToFourBytes) {
  std::vector<std::byte> out;
  Encoder enc(out);
  enc.PutName("abcde");  // 4 len + 5 chars + 3 pad
  EXPECT_EQ(out.size(), 12u);
  EXPECT_EQ(out[3], std::byte{5});
  EXPECT_EQ(out[4], std::byte{'a'});
  EXPECT_EQ(out[11], std::byte{0});
}

TEST(Decoder, RoundTripAllScalars) {
  std::vector<std::byte> out;
  Encoder enc(out);
  enc.PutI32(-42);
  enc.PutI64(-1234567890123LL);
  enc.PutU32(0xDEADBEEFu);
  enc.PutF32(1.5f);
  enc.PutF64(-0.125);
  enc.PutName("hello");

  Decoder dec(out);
  std::int32_t i32;
  std::int64_t i64;
  std::uint32_t u32;
  float f32;
  double f64;
  std::string name;
  ASSERT_TRUE(dec.GetI32(i32).ok());
  ASSERT_TRUE(dec.GetI64(i64).ok());
  ASSERT_TRUE(dec.GetU32(u32).ok());
  ASSERT_TRUE(dec.GetF32(f32).ok());
  ASSERT_TRUE(dec.GetF64(f64).ok());
  ASSERT_TRUE(dec.GetName(name).ok());
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(i64, -1234567890123LL);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(f32, 1.5f);
  EXPECT_EQ(f64, -0.125);
  EXPECT_EQ(name, "hello");
  EXPECT_EQ(dec.remaining(), 0u);
}

TEST(Decoder, TruncationReported) {
  std::vector<std::byte> out;
  Encoder enc(out);
  enc.PutI32(7);
  Decoder dec(pnc::ConstByteSpan(out.data(), 2));
  std::int32_t v;
  EXPECT_EQ(dec.GetI32(v).code(), Err::kTrunc);
}

TEST(Decoder, NameTruncationReported) {
  std::vector<std::byte> out;
  Encoder enc(out);
  enc.PutU32(100);  // claims 100 chars, none present
  Decoder dec(out);
  std::string s;
  EXPECT_EQ(dec.GetName(s).code(), Err::kTrunc);
}

TEST(RoundUp4, Values) {
  EXPECT_EQ(RoundUp4(0), 0u);
  EXPECT_EQ(RoundUp4(1), 4u);
  EXPECT_EQ(RoundUp4(4), 4u);
  EXPECT_EQ(RoundUp4(5), 8u);
  EXPECT_EQ(RoundUp4(0xFFFFFFFFull), 0x100000000ull);
}

TEST(ArrayCodec, RoundTripTyped) {
  const std::vector<std::int16_t> shorts{-1, 0, 32767, -32768, 12345};
  std::vector<std::byte> wire(shorts.size() * 2);
  EncodeArray<std::int16_t>(shorts, wire.data());
  // Big-endian: first value -1 = 0xFFFF.
  EXPECT_EQ(wire[0], std::byte{0xFF});
  EXPECT_EQ(wire[1], std::byte{0xFF});
  std::vector<std::int16_t> back(shorts.size());
  DecodeArray<std::int16_t>(wire.data(), std::span<std::int16_t>(back));
  EXPECT_EQ(back, shorts);
}

TEST(ArrayCodec, DoubleKnownBytes) {
  const double v = 1.0;  // 0x3FF0000000000000
  std::vector<std::byte> wire(8);
  EncodeArray<double>(std::span<const double>(&v, 1), wire.data());
  EXPECT_EQ(wire[0], std::byte{0x3F});
  EXPECT_EQ(wire[1], std::byte{0xF0});
  EXPECT_EQ(wire[7], std::byte{0x00});
}

}  // namespace
}  // namespace pnc::xdr
