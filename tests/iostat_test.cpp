// Counter correctness for the iostat subsystem.
//
// Two workloads with hand-computed expectations:
//   1. A 4-rank contiguous two-phase write (2 I/O servers, 256 KiB stripes,
//      one 256 KiB block per rank): exact bytes at every layer, exact
//      exchange-message count, and both amplification ratios exactly 1.0.
//   2. A 1-rank strided independent read (64 x 64 B segments spaced 4 KiB):
//      sieving ON coalesces the whole range into one request with
//      amplification 258112/4096; sieving OFF issues 64 exact requests with
//      amplification 1.0.
// Plus registry basics and JSON / Chrome-trace round trips.
#include "iostat/iostat.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "iostat/report.hpp"
#include "iostat/trace.hpp"
#include "mpiio/file.hpp"
#include "simmpi/runtime.hpp"

namespace {

using iostat::Ctr;
using iostat::Registry;
using simmpi::Comm;

std::uint64_t Sum(const iostat::Report& rep, Ctr c) { return rep[c].sum; }

class IostatTest : public ::testing::Test {
 protected:
  void SetUp() override {
#if !PNC_IOSTAT_ENABLED
    GTEST_SKIP() << "instrumentation compiled out (PNC_IOSTAT=OFF)";
#endif
    Registry::Get().Reset();
    Registry::Get().SetCountersEnabled(true);
    Registry::Get().SetSpansEnabled(true);
  }
  void TearDown() override {
    Registry::Get().SetSpansEnabled(false);
    Registry::Get().Reset();
  }
};

TEST_F(IostatTest, RegistryBindsRanksAndSumsCounters) {
  simmpi::Run(3, [&](Comm& c) {
    for (int i = 0; i <= c.rank(); ++i) PNC_IOSTAT_ADD(kNcDataCalls, 10);
  });
  const auto rep = iostat::BuildReport();
  EXPECT_EQ(rep.nranks, 3);
  EXPECT_EQ(Sum(rep, Ctr::kNcDataCalls), 60u);
  EXPECT_EQ(rep[Ctr::kNcDataCalls].min, 10u);
  EXPECT_EQ(rep[Ctr::kNcDataCalls].max, 30u);
  EXPECT_DOUBLE_EQ(rep[Ctr::kNcDataCalls].mean, 20.0);
}

TEST_F(IostatTest, DisabledCountersRecordNothing) {
  Registry::Get().SetCountersEnabled(false);
  PNC_IOSTAT_ADD(kPfsReadOps, 5);
  Registry::Get().SetCountersEnabled(true);
  EXPECT_EQ(Sum(iostat::BuildReport(), Ctr::kPfsReadOps), 0u);
}

// ------------------------------------------------- 4-rank two-phase write

TEST_F(IostatTest, FourRankTwoPhaseWriteExactCounters) {
  constexpr std::uint64_t kBlock = 256 << 10;
  pfs::Config cfg;
  cfg.num_servers = 2;  // -> cb_nodes defaults to 2 aggregators
  cfg.stripe_size = kBlock;
  pfs::FileSystem fs(cfg);

  simmpi::Run(4, [&](Comm& c) {
    auto f = mpiio::File::Open(c, fs, "tp.dat", mpiio::kCreate | mpiio::kRdWr,
                               simmpi::NullInfo())
                 .value();
    // Counters start after open: no namespace traffic in the expectations.
    c.Barrier();
    if (c.rank() == 0) Registry::Get().Reset();
    c.Barrier();
    PNC_IOSTAT_BIND_RANK(c.rank());  // Reset dropped the bound-rank count
    std::vector<std::byte> mine(kBlock, std::byte{0x5A});
    ASSERT_TRUE(f.WriteAtAll(static_cast<std::uint64_t>(c.rank()) * kBlock,
                             mine.data(), kBlock, simmpi::ByteType())
                    .ok());
    ASSERT_TRUE(f.Close().ok());
  });

  const auto rep = iostat::BuildReport();
  EXPECT_EQ(rep.nranks, 4);

  // Every rank made one collective write of one 256 KiB block.
  EXPECT_EQ(Sum(rep, Ctr::kMpiioCollWrites), 4u);
  EXPECT_EQ(Sum(rep, Ctr::kMpiioCollPayloadBytes), 4 * kBlock);

  // Domains: [0,512K) -> aggregator rank 0, [512K,1M) -> aggregator rank 2.
  // Ranks 1 and 3 each ship one message to a remote aggregator; ranks 0 and
  // 2 deliver to themselves (not counted).
  EXPECT_EQ(Sum(rep, Ctr::kMpiioExchangeMsgs), 2u);

  // Each aggregator writes its full 512 KiB domain in one round with no
  // holes: exactly 1 MiB at the file, no read-modify-write amplification.
  EXPECT_EQ(Sum(rep, Ctr::kMpiioAggBytes), 4 * kBlock);
  EXPECT_EQ(Sum(rep, Ctr::kMpiioBytesWritten), 4 * kBlock);
  EXPECT_EQ(Sum(rep, Ctr::kMpiioBytesRead), 0u);
  EXPECT_EQ(Sum(rep, Ctr::kPfsBytesWritten), 4 * kBlock);
  // Two aggregator writes, each of a fully stripe-aligned span.
  EXPECT_EQ(Sum(rep, Ctr::kPfsWriteOps), 2u);

  // Contiguous access through the collective path: both ratios exact.
  EXPECT_DOUBLE_EQ(rep.twophase_amplification, 1.0);
  EXPECT_DOUBLE_EQ(rep.sieve_amplification, 1.0);

  // Both phases consumed virtual time, and the layers reconcile.
  EXPECT_GT(Sum(rep, Ctr::kMpiioExchangeNs), 0u);
  EXPECT_GT(Sum(rep, Ctr::kMpiioIoPhaseNs), 0u);
  EXPECT_LE(Sum(rep, Ctr::kMpiioBytesWritten), Sum(rep, Ctr::kPfsBytesWritten));

  // Spans landed on aggregator timelines with the right categories.
  bool saw_exchange = false, saw_io = false;
  for (int r = 0; r < rep.nranks; ++r) {
    for (const auto& s : Registry::Get().SpansOfRank(r)) {
      if (std::strcmp(s.name, "exchange") == 0) saw_exchange = true;
      if (std::strcmp(s.name, "io") == 0) saw_io = true;
      EXPECT_GE(s.end_ns, s.start_ns);
    }
  }
  EXPECT_TRUE(saw_exchange);
  EXPECT_TRUE(saw_io);
}

// ------------------------------------------- strided independent read

class StridedRead {
 public:
  static constexpr std::uint64_t kSegs = 64;
  static constexpr std::uint64_t kSegLen = 64;
  static constexpr std::uint64_t kStride = 4096;
  static constexpr std::uint64_t kWanted = kSegs * kSegLen;  // 4096
  static constexpr std::uint64_t kSpan =
      (kSegs - 1) * kStride + kSegLen;  // 258112

  static void Run(pfs::FileSystem& fs, bool ds_read) {
    simmpi::Run(1, [&](Comm& c) {
      simmpi::Info info;
      info.Set("romio_ds_read", ds_read ? "enable" : "disable");
      auto f = mpiio::File::Open(c, fs, "strided.dat",
                                 mpiio::kCreate | mpiio::kRdWr, info)
                   .value();
      std::vector<std::byte> file_img(kSpan, std::byte{0x7});
      ASSERT_TRUE(
          f.WriteAt(0, file_img.data(), kSpan, simmpi::ByteType()).ok());

      Registry::Get().Reset();
      std::vector<std::uint64_t> lens(kSegs, kSegLen), offs(kSegs);
      for (std::uint64_t i = 0; i < kSegs; ++i) offs[i] = i * kStride;
      auto filetype =
          simmpi::Datatype::Hindexed(lens, offs, simmpi::ByteType());
      ASSERT_TRUE(f.SetViewLocal(0, simmpi::ByteType(), filetype).ok());
      std::vector<std::byte> out(kWanted);
      ASSERT_TRUE(f.ReadAt(0, out.data(), kWanted, simmpi::ByteType()).ok());
      for (const auto& b : out) EXPECT_EQ(b, std::byte{0x7});
      f.ClearView();
      ASSERT_TRUE(f.Close().ok());
    });
  }
};

TEST_F(IostatTest, StridedReadWithSievingAmplifies) {
  pfs::FileSystem fs;
  StridedRead::Run(fs, /*ds_read=*/true);
  const auto rep = iostat::BuildReport();

  // One covering window: a single file request spanning the whole range.
  EXPECT_EQ(Sum(rep, Ctr::kMpiioIndepReads), 1u);
  EXPECT_EQ(Sum(rep, Ctr::kPfsReadOps), 1u);
  EXPECT_EQ(Sum(rep, Ctr::kMpiioSieveBytesWanted), StridedRead::kWanted);
  EXPECT_EQ(Sum(rep, Ctr::kMpiioSieveBytesFile), StridedRead::kSpan);
  EXPECT_EQ(Sum(rep, Ctr::kMpiioBytesRead), StridedRead::kSpan);
  EXPECT_DOUBLE_EQ(rep.sieve_amplification,
                   static_cast<double>(StridedRead::kSpan) /
                       static_cast<double>(StridedRead::kWanted));
  EXPECT_GT(rep.sieve_amplification, 1.0);
}

TEST_F(IostatTest, StridedReadWithoutSievingIsPureOps) {
  pfs::FileSystem fs;
  StridedRead::Run(fs, /*ds_read=*/false);
  const auto rep = iostat::BuildReport();

  // One file request per segment, no extra bytes moved.
  EXPECT_EQ(Sum(rep, Ctr::kMpiioIndepReads), 1u);
  EXPECT_EQ(Sum(rep, Ctr::kPfsReadOps), StridedRead::kSegs);
  EXPECT_EQ(Sum(rep, Ctr::kMpiioBytesRead), StridedRead::kWanted);
  EXPECT_EQ(Sum(rep, Ctr::kPfsBytesRead), StridedRead::kWanted);
  EXPECT_DOUBLE_EQ(rep.sieve_amplification, 1.0);
}

// ----------------------------------------------------- exporters

TEST_F(IostatTest, JsonRoundTripPreservesCountersAndDerived) {
  PNC_IOSTAT_ADD(kPfsBytesWritten, 12345);
  PNC_IOSTAT_ADD(kMpiioSieveBytesWanted, 100);
  PNC_IOSTAT_ADD(kMpiioSieveBytesFile, 250);
  const auto rep = iostat::BuildReport();
  const std::string json = iostat::ToJson(rep);
  EXPECT_NE(json.find("\"schema\":\"pnc-iostat-v1\""), std::string::npos);

  auto parsed = iostat::ParseReportJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const auto& back = parsed.value();
  EXPECT_EQ(back.nranks, rep.nranks);
  EXPECT_EQ(back[Ctr::kPfsBytesWritten].sum, 12345u);
  EXPECT_DOUBLE_EQ(back.sieve_amplification, 2.5);
}

TEST_F(IostatTest, ParseFindsReportEmbeddedInBenchRecord) {
  PNC_IOSTAT_ADD(kNcDataCalls, 7);
  const std::string line = "{\"schema\":\"pnc-bench-v1\",\"bench\":\"x\","
                           "\"config\":{\"nprocs\":4},\"iostat\":" +
                           iostat::ToJson(iostat::BuildReport()) + "}";
  auto parsed = iostat::ParseReportJson(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value()[Ctr::kNcDataCalls].sum, 7u);
}

TEST_F(IostatTest, ParseRejectsGarbage) {
  EXPECT_FALSE(iostat::ParseReportJson("not json at all").ok());
  EXPECT_FALSE(iostat::ParseReportJson("{}").ok());
}

TEST_F(IostatTest, ChromeTraceHasPerRankTracks) {
  simmpi::Run(2, [&](Comm& c) {
    const double t0 = c.clock().now();
    c.clock().Advance(1000.0);
    PNC_IOSTAT_SPAN("mpiio", "exchange", t0, c.clock().now());
  });
  const std::string trace = iostat::ToChromeTrace();
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(trace.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(trace.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"exchange\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
}

TEST_F(IostatTest, PrettyPrintShowsLayerSections) {
  const std::string text = iostat::PrettyPrint(iostat::BuildReport());
  EXPECT_NE(text.find("[pfs]"), std::string::npos);
  EXPECT_NE(text.find("[mpiio]"), std::string::npos);
  EXPECT_NE(text.find("[nc]"), std::string::npos);
  EXPECT_NE(text.find("[mpi]"), std::string::npos);
  EXPECT_NE(text.find("sieve_amplification"), std::string::npos);
}

}  // namespace
