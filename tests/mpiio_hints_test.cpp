// Hints::Parse hardening: buffer sizes clamp into the documented
// [kMinBufferSize, kMaxBufferSize] range (negative values must not wrap into
// huge unsigned sizes), retry counts clamp into [0, kMaxRetries], and
// unknown keys pass through untouched for higher layers. Tenant/QoS keys
// (pnc_tenant, pnc_qos_weight, pnc_qos_deadline_ns, pnc_qos_cap_bytes) parse
// checked and clamped, and ResolveTenant merges hints over the environment
// identity field by field.
#include <gtest/gtest.h>

#include "mpiio/hints.hpp"
#include "simmpi/info.hpp"

namespace {

using mpiio::Hints;

TEST(HintsParse, DefaultsWithNullInfo) {
  const Hints h = Hints::Parse(simmpi::NullInfo(), 4, 2);
  EXPECT_EQ(h.cb_buffer_size, 4ULL << 20);
  EXPECT_EQ(h.cb_nodes, 2);  // min(comm_size, num_io_servers)
  EXPECT_TRUE(h.cb_read);
  EXPECT_TRUE(h.cb_write);
  EXPECT_TRUE(h.ds_read);
  EXPECT_TRUE(h.ds_write);
  EXPECT_EQ(h.retry_max, 4);
}

TEST(HintsParse, ZeroBufferSizesClampToMinimum) {
  simmpi::Info info;
  info.Set("cb_buffer_size", "0");
  info.Set("ind_rd_buffer_size", "0");
  info.Set("ind_wr_buffer_size", "0");
  const Hints h = Hints::Parse(info, 4, 2);
  EXPECT_EQ(h.cb_buffer_size, Hints::kMinBufferSize);
  EXPECT_EQ(h.ind_rd_buffer_size, Hints::kMinBufferSize);
  EXPECT_EQ(h.ind_wr_buffer_size, Hints::kMinBufferSize);
}

TEST(HintsParse, NegativeBufferSizesClampToMinimumNotWrap) {
  simmpi::Info info;
  info.Set("cb_buffer_size", "-1");
  info.Set("ind_rd_buffer_size", "-4194304");
  info.Set("ind_wr_buffer_size", "-9223372036854775808");  // INT64_MIN
  const Hints h = Hints::Parse(info, 4, 2);
  EXPECT_EQ(h.cb_buffer_size, Hints::kMinBufferSize);
  EXPECT_EQ(h.ind_rd_buffer_size, Hints::kMinBufferSize);
  EXPECT_EQ(h.ind_wr_buffer_size, Hints::kMinBufferSize);
}

TEST(HintsParse, AbsurdBufferSizesClampToMaximum) {
  simmpi::Info info;
  info.Set("cb_buffer_size", "9223372036854775807");  // INT64_MAX
  info.Set("ind_rd_buffer_size", "1099511627776");    // 1 TiB
  const Hints h = Hints::Parse(info, 4, 2);
  EXPECT_EQ(h.cb_buffer_size, Hints::kMaxBufferSize);
  EXPECT_EQ(h.ind_rd_buffer_size, Hints::kMaxBufferSize);
}

TEST(HintsParse, BoundaryBufferSizesPassUnclamped) {
  simmpi::Info info;
  info.Set("cb_buffer_size", std::to_string(Hints::kMinBufferSize));
  info.Set("ind_rd_buffer_size", std::to_string(Hints::kMaxBufferSize));
  info.Set("ind_wr_buffer_size", "65536");
  const Hints h = Hints::Parse(info, 4, 2);
  EXPECT_EQ(h.cb_buffer_size, Hints::kMinBufferSize);
  EXPECT_EQ(h.ind_rd_buffer_size, Hints::kMaxBufferSize);
  EXPECT_EQ(h.ind_wr_buffer_size, 65536u);
}

TEST(HintsParse, NegativeRetrySettingsClampToZero) {
  simmpi::Info info;
  info.Set("pnc_retry_max", "-7");
  info.Set("pnc_retry_backoff_ns", "-1000000");
  const Hints h = Hints::Parse(info, 4, 2);
  EXPECT_EQ(h.retry_max, 0);
  EXPECT_EQ(h.retry_backoff_ns, 0.0);
}

TEST(HintsParse, HugeRetryCountClampsToMaxRetries) {
  simmpi::Info info;
  info.Set("pnc_retry_max", "999999999");
  const Hints h = Hints::Parse(info, 4, 2);
  EXPECT_EQ(h.retry_max, Hints::kMaxRetries);
}

TEST(HintsParse, CbNodesClampsToCommSize) {
  simmpi::Info info;
  info.Set("cb_nodes", "64");
  EXPECT_EQ(Hints::Parse(info, 4, 2).cb_nodes, 4);
  info.Set("cb_nodes", "-3");
  EXPECT_EQ(Hints::Parse(info, 4, 2).cb_nodes, 1);
}

TEST(HintsParse, MalformedIntFallsBackToDefault) {
  simmpi::Info info;
  info.Set("cb_buffer_size", "not-a-number");
  const Hints h = Hints::Parse(info, 4, 2);
  EXPECT_EQ(h.cb_buffer_size, 4ULL << 20);
}

TEST(HintsParse, TenantQosDefaults) {
  const Hints h = Hints::Parse(simmpi::NullInfo(), 4, 2);
  EXPECT_TRUE(h.tenant.empty());
  EXPECT_EQ(h.qos_weight, 1.0);
  EXPECT_EQ(h.qos_deadline_ns, 0.0);
  EXPECT_EQ(h.qos_cap_bytes, 0u);
}

TEST(HintsParse, TenantQosKeysParse) {
  simmpi::Info info;
  info.Set("pnc_tenant", "climate");
  info.Set("pnc_qos_weight", "0.5");
  info.Set("pnc_qos_deadline_ns", "2.5e9");
  info.Set("pnc_qos_cap_bytes", "1048576");
  const Hints h = Hints::Parse(info, 4, 2);
  EXPECT_EQ(h.tenant, "climate");
  EXPECT_DOUBLE_EQ(h.qos_weight, 0.5);
  EXPECT_DOUBLE_EQ(h.qos_deadline_ns, 2.5e9);
  EXPECT_EQ(h.qos_cap_bytes, 1048576u);
}

TEST(HintsParse, QosWeightClampsToDocumentedRange) {
  simmpi::Info info;
  info.Set("pnc_qos_weight", "1e9");
  EXPECT_DOUBLE_EQ(Hints::Parse(info, 4, 2).qos_weight,
                   pfs::TenantClass::kMaxWeight);
  info.Set("pnc_qos_weight", "0");
  EXPECT_DOUBLE_EQ(Hints::Parse(info, 4, 2).qos_weight,
                   pfs::TenantClass::kMinWeight);
  info.Set("pnc_qos_weight", "-3.5");
  EXPECT_DOUBLE_EQ(Hints::Parse(info, 4, 2).qos_weight,
                   pfs::TenantClass::kMinWeight);
}

TEST(HintsParse, QosDeadlineAndCapClampAtZero) {
  simmpi::Info info;
  info.Set("pnc_qos_deadline_ns", "-1e6");
  info.Set("pnc_qos_cap_bytes", "-4096");
  const Hints h = Hints::Parse(info, 4, 2);
  EXPECT_EQ(h.qos_deadline_ns, 0.0);
  EXPECT_EQ(h.qos_cap_bytes, 0u);
}

TEST(HintsParse, MalformedQosValuesFallBackToDefaults) {
  simmpi::Info info;
  info.Set("pnc_qos_weight", "heavy");
  info.Set("pnc_qos_weight", "2.0x");  // trailing junk is not a number
  info.Set("pnc_qos_deadline_ns", "soon");
  const Hints h = Hints::Parse(info, 4, 2);
  EXPECT_DOUBLE_EQ(h.qos_weight, 1.0);
  EXPECT_EQ(h.qos_deadline_ns, 0.0);
}

TEST(HintsResolveTenant, HintsOverrideEnvironmentFieldByField) {
  // The env minted a full identity; the Info only overrides the weight, so
  // name/deadline/cap must survive from the environment value.
  pfs::TenantClass env;
  env.name = "from-env";
  env.weight = 4.0;
  env.deadline_ns = 7e9;
  env.max_outstanding_bytes = 512;
  simmpi::Info info;
  info.Set("pnc_qos_weight", "2.0");
  const Hints h = Hints::Parse(info, 4, 2);
  const pfs::TenantClass r = h.ResolveTenant(info, env);
  EXPECT_EQ(r.name, "from-env");
  EXPECT_DOUBLE_EQ(r.weight, 2.0);
  EXPECT_DOUBLE_EQ(r.deadline_ns, 7e9);
  EXPECT_EQ(r.max_outstanding_bytes, 512u);
}

TEST(HintsResolveTenant, HintNameReplacesEnvName) {
  pfs::TenantClass env;
  env.name = "from-env";
  simmpi::Info info;
  info.Set("pnc_tenant", "from-hint");
  info.Set("pnc_qos_deadline_ns", "1e6");
  const Hints h = Hints::Parse(info, 4, 2);
  const pfs::TenantClass r = h.ResolveTenant(info, env);
  EXPECT_EQ(r.name, "from-hint");
  EXPECT_DOUBLE_EQ(r.deadline_ns, 1e6);
  EXPECT_DOUBLE_EQ(r.weight, 1.0);  // untouched default
}

TEST(HintsResolveTenant, NoHintsPreserveEnvIdentity) {
  pfs::TenantClass env;
  env.name = "solo";
  env.weight = 0.25;
  const Hints h = Hints::Parse(simmpi::NullInfo(), 4, 2);
  const pfs::TenantClass r = h.ResolveTenant(simmpi::NullInfo(), env);
  EXPECT_EQ(r.name, "solo");
  EXPECT_DOUBLE_EQ(r.weight, 0.25);
}

TEST(HintsParse, UnknownKeysPassThroughUntouched) {
  simmpi::Info info;
  info.Set("nc_header_align_size", "1024");     // PnetCDF-level hint
  info.Set("my_custom_future_hint", "whatever");
  info.Set("cb_buffer_size", "8192");
  (void)Hints::Parse(info, 4, 2);
  // Parse must not consume or mutate anything: all keys remain readable.
  EXPECT_EQ(info.entries().size(), 3u);
  EXPECT_EQ(info.Get("nc_header_align_size").value_or(""), "1024");
  EXPECT_EQ(info.Get("my_custom_future_hint").value_or(""), "whatever");
  EXPECT_EQ(info.Get("cb_buffer_size").value_or(""), "8192");
}

}  // namespace
