// Tests for the hdf5lite baseline library: file format round trips,
// collective dataset lifecycle, hyperslab selections with guard cells, and
// the structural overhead properties the paper attributes to HDF5.
#include "hdf5lite/h5file.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "simmpi/runtime.hpp"

namespace hdf5lite {
namespace {

using simmpi::Comm;

TEST(Lifecycle, CreateWriteReadBack) {
  pfs::FileSystem fs;
  simmpi::Run(4, [&](Comm& c) {
    auto f = File::Create(c, fs, "a.h5l", simmpi::NullInfo()).value();
    const std::uint64_t dims[] = {8, 4};
    auto ds = f.CreateDataset("temps", NcType::kDouble, dims).value();
    // Each rank writes 2 rows.
    const std::uint64_t st[] = {2 * static_cast<std::uint64_t>(c.rank()), 0};
    const std::uint64_t ct[] = {2, 4};
    std::vector<double> mine(8);
    std::iota(mine.begin(), mine.end(), 10.0 * c.rank());
    ASSERT_TRUE(ds.Write(st, ct, mine.data()).ok());
    ASSERT_TRUE(ds.Close().ok());
    ASSERT_TRUE(f.Close().ok());

    // Reopen and read everything back.
    auto f2 = File::Open(c, fs, "a.h5l", false, simmpi::NullInfo()).value();
    auto ds2 = f2.OpenDataset("temps").value();
    EXPECT_EQ(ds2.type(), NcType::kDouble);
    EXPECT_EQ(ds2.dims(), (std::vector<std::uint64_t>{8, 4}));
    std::vector<double> back(8);
    ASSERT_TRUE(ds2.Read(st, ct, back.data()).ok());
    EXPECT_EQ(back, mine);
    ASSERT_TRUE(ds2.Close().ok());
    ASSERT_TRUE(f2.Close().ok());
  });
}

TEST(Namespace, MultipleDatasetsListedInOrder) {
  pfs::FileSystem fs;
  simmpi::Run(2, [&](Comm& c) {
    auto f = File::Create(c, fs, "multi.h5l", simmpi::NullInfo()).value();
    const std::uint64_t dims[] = {4};
    for (const char* n : {"dens", "pres", "velx"}) {
      auto ds = f.CreateDataset(n, NcType::kFloat, dims).value();
      ASSERT_TRUE(ds.Close().ok());
    }
    auto names = f.ListDatasets().value();
    EXPECT_EQ(names, (std::vector<std::string>{"dens", "pres", "velx"}));
    // Duplicate creation rejected on all ranks.
    EXPECT_EQ(f.CreateDataset("dens", NcType::kFloat, dims).status().code(),
              pnc::Err::kNameInUse);
    // Missing dataset rejected on all ranks.
    EXPECT_EQ(f.OpenDataset("nope").status().code(), pnc::Err::kNotVar);
    ASSERT_TRUE(f.Close().ok());
  });
}

TEST(Hyperslab, GuardCellsExcluded) {
  // FLASH-style: memory is (nz+2g, ny+2g, nx+2g) with the interior at
  // offset g; only the interior lands in the file.
  pfs::FileSystem fs;
  simmpi::Run(1, [&](Comm& c) {
    auto f = File::Create(c, fs, "gc.h5l", simmpi::NullInfo()).value();
    const std::uint64_t g = 2, n = 4;
    const std::uint64_t dims[] = {n, n, n};
    auto ds = f.CreateDataset("u", NcType::kInt, dims).value();

    const std::uint64_t mdim = n + 2 * g;
    std::vector<std::int32_t> mem(mdim * mdim * mdim, -1);
    for (std::uint64_t z = 0; z < n; ++z)
      for (std::uint64_t y = 0; y < n; ++y)
        for (std::uint64_t x = 0; x < n; ++x)
          mem[((z + g) * mdim + y + g) * mdim + x + g] =
              static_cast<std::int32_t>((z * n + y) * n + x);

    const std::uint64_t st[] = {0, 0, 0};
    const std::uint64_t ct[] = {n, n, n};
    const std::uint64_t mdims[] = {mdim, mdim, mdim};
    const std::uint64_t mst[] = {g, g, g};
    ASSERT_TRUE(ds.Write(st, ct, mem.data(), mdims, mst).ok());

    std::vector<std::int32_t> flat(n * n * n);
    ASSERT_TRUE(ds.Read(st, ct, flat.data()).ok());
    for (std::size_t i = 0; i < flat.size(); ++i)
      EXPECT_EQ(flat[i], static_cast<std::int32_t>(i));

    // Read back into a guarded buffer: guards must stay untouched.
    std::vector<std::int32_t> mem2(mdim * mdim * mdim, -9);
    ASSERT_TRUE(ds.Read(st, ct, mem2.data(), mdims, mst).ok());
    EXPECT_EQ(mem2[0], -9);
    EXPECT_EQ(mem2[((g)*mdim + g) * mdim + g], 0);
    ASSERT_TRUE(ds.Close().ok());
    ASSERT_TRUE(f.Close().ok());
  });
}

TEST(Hyperslab, BoundsChecked) {
  pfs::FileSystem fs;
  simmpi::Run(1, [&](Comm& c) {
    auto f = File::Create(c, fs, "b.h5l", simmpi::NullInfo()).value();
    const std::uint64_t dims[] = {4, 4};
    auto ds = f.CreateDataset("d", NcType::kInt, dims).value();
    std::vector<std::int32_t> buf(16);
    const std::uint64_t st[] = {2, 0};
    const std::uint64_t ct[] = {3, 4};
    EXPECT_EQ(ds.Write(st, ct, buf.data()).code(), pnc::Err::kEdge);
    EXPECT_EQ(f.CreateDataset("r0", NcType::kInt, {}).status().code(),
              pnc::Err::kInvalidArg);
    ASSERT_TRUE(f.Close().ok());
  });
}

TEST(Parallel, DisjointBlockWritesCompose) {
  // The FLASH checkpoint pattern: dataset (nblocks, nz, ny, nx); rank r owns
  // a contiguous block range.
  pfs::FileSystem fs;
  const int nprocs = 4;
  const std::uint64_t bpp = 3, n = 4;
  simmpi::Run(nprocs, [&](Comm& c) {
    auto f = File::Create(c, fs, "fl.h5l", simmpi::NullInfo()).value();
    const std::uint64_t dims[] = {bpp * nprocs, n, n, n};
    auto ds = f.CreateDataset("dens", NcType::kDouble, dims).value();
    const std::uint64_t st[] = {bpp * static_cast<std::uint64_t>(c.rank()), 0,
                                0, 0};
    const std::uint64_t ct[] = {bpp, n, n, n};
    std::vector<double> mine(bpp * n * n * n);
    std::iota(mine.begin(), mine.end(),
              1000.0 * static_cast<double>(c.rank()));
    ASSERT_TRUE(ds.Write(st, ct, mine.data()).ok());
    ASSERT_TRUE(ds.Close().ok());
    ASSERT_TRUE(f.Close().ok());
  });
  // Serial verification.
  simmpi::Run(1, [&](Comm& c) {
    auto f = File::Open(c, fs, "fl.h5l", false, simmpi::NullInfo()).value();
    auto ds = f.OpenDataset("dens").value();
    const std::uint64_t st[] = {0, 0, 0, 0};
    const std::uint64_t ct[] = {bpp * nprocs, n, n, n};
    std::vector<double> all(bpp * nprocs * n * n * n);
    ASSERT_TRUE(ds.Read(st, ct, all.data()).ok());
    const std::uint64_t per = bpp * n * n * n;
    for (std::uint64_t r = 0; r < nprocs; ++r)
      for (std::uint64_t i = 0; i < per; ++i)
        EXPECT_EQ(all[r * per + i], 1000.0 * static_cast<double>(r) +
                                        static_cast<double>(i));
    ASSERT_TRUE(ds.Close().ok());
    ASSERT_TRUE(f.Close().ok());
  });
}

TEST(Overhead, PerDatasetCollectivesCostMoreThanPnetcdfStyle) {
  // Structural property: creating N datasets costs N root header writes +
  // N broadcasts + N barriers; the virtual clock must grow superlinearly
  // with dataset count relative to a single create.
  pfs::FileSystem fs;
  double t1 = 0.0, t8 = 0.0;
  for (const int nds : {1, 8}) {
    fs.ResetTime();
    auto res = simmpi::Run(8, [&](Comm& c) {
      auto f = File::Create(c, fs,
                            "ov" + std::to_string(nds) + ".h5l",
                            simmpi::NullInfo())
                   .value();
      const std::uint64_t dims[] = {16};
      for (int i = 0; i < nds; ++i) {
        auto ds =
            f.CreateDataset("v" + std::to_string(i), NcType::kInt, dims)
                .value();
        ASSERT_TRUE(ds.Close().ok());
      }
      ASSERT_TRUE(f.Close().ok());
    });
    (nds == 1 ? t1 : t8) = res.max_time_ns;
  }
  EXPECT_GT(t8, 2.0 * t1);
}

TEST(Overhead, WriteTouchesMetadata) {
  // Every write bumps the object header's modification count on disk.
  pfs::FileSystem fs;
  simmpi::Run(2, [&](Comm& c) {
    auto f = File::Create(c, fs, "meta.h5l", simmpi::NullInfo()).value();
    const std::uint64_t dims[] = {8};
    auto ds = f.CreateDataset("v", NcType::kInt, dims).value();
    c.Barrier();
    const auto before = fs.stats().write_requests;
    c.Barrier();  // no rank may write until every rank captured `before`
    const std::uint64_t st[] = {4 * static_cast<std::uint64_t>(c.rank())};
    const std::uint64_t ct[] = {4};
    std::vector<std::int32_t> d{1, 2, 3, 4};
    ASSERT_TRUE(ds.Write(st, ct, d.data()).ok());
    c.Barrier();
    // 2 data writes (one per rank) + at least 1 metadata write from rank 0.
    if (c.rank() == 0) EXPECT_GT(fs.stats().write_requests, before + 2);
    ASSERT_TRUE(ds.Close().ok());
    ASSERT_TRUE(f.Close().ok());
  });
}

TEST(Format, OpenRejectsGarbage) {
  pfs::FileSystem fs;
  {
    auto f = fs.Create("junk", false).value();
    std::vector<std::byte> j(256, std::byte{0x11});
    f.HarnessWrite(0, j, 0.0);
  }
  simmpi::Run(2, [&](Comm& c) {
    auto r = File::Open(c, fs, "junk", false, simmpi::NullInfo());
    EXPECT_FALSE(r.ok());
  });
}

}  // namespace
}  // namespace hdf5lite
