// Tests for MPI derived datatypes: construction, flattening, pack/unpack.
#include "simmpi/datatype.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace simmpi {
namespace {

using pnc::Extent;

std::vector<std::byte> Iota(std::size_t n) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::byte>(i & 0xFF);
  return v;
}

TEST(Primitives, SizesAndNames) {
  EXPECT_EQ(ByteType().size(), 1u);
  EXPECT_EQ(ShortType().size(), 2u);
  EXPECT_EQ(IntType().size(), 4u);
  EXPECT_EQ(FloatType().size(), 4u);
  EXPECT_EQ(DoubleType().size(), 8u);
  EXPECT_EQ(LongLongType().size(), 8u);
  EXPECT_TRUE(DoubleType().is_contiguous());
  EXPECT_EQ(PrimName(Prim::kDouble), "double");
}

TEST(Contiguous, CollapsesToSingleRun) {
  auto t = Datatype::Contiguous(10, DoubleType());
  EXPECT_EQ(t.size(), 80u);
  EXPECT_EQ(t.extent(), 80u);
  EXPECT_TRUE(t.is_contiguous());
  ASSERT_EQ(t.Flatten().size(), 1u);
  EXPECT_EQ(t.Flatten()[0], (Extent{0, 80}));
}

TEST(Vector, RunsAndExtent) {
  // 3 blocks of 2 ints, stride 5 ints.
  auto t = Datatype::Vector(3, 2, 5, IntType());
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.extent(), (2ull * 5 + 2) * 4);
  ASSERT_EQ(t.Flatten().size(), 3u);
  EXPECT_EQ(t.Flatten()[0], (Extent{0, 8}));
  EXPECT_EQ(t.Flatten()[1], (Extent{20, 8}));
  EXPECT_EQ(t.Flatten()[2], (Extent{40, 8}));
  EXPECT_FALSE(t.is_contiguous());
}

TEST(Vector, UnitStrideCoalesces) {
  auto t = Datatype::Vector(4, 1, 1, DoubleType());
  EXPECT_TRUE(t.is_contiguous());
  EXPECT_EQ(t.Flatten().size(), 1u);
}

TEST(Hvector, ByteStride) {
  auto t = Datatype::Hvector(2, 3, 100, ByteType());
  ASSERT_EQ(t.Flatten().size(), 2u);
  EXPECT_EQ(t.Flatten()[1], (Extent{100, 3}));
  EXPECT_EQ(t.extent(), 103u);
}

TEST(Indexed, DisplacementsInElements) {
  const std::uint64_t blocklens[] = {2, 1};
  const std::uint64_t displs[] = {0, 4};
  auto t = Datatype::Indexed(blocklens, displs, IntType());
  EXPECT_EQ(t.size(), 12u);
  ASSERT_EQ(t.Flatten().size(), 2u);
  EXPECT_EQ(t.Flatten()[1], (Extent{16, 4}));
}

TEST(Hindexed, AdjacentBlocksCoalesce) {
  const std::uint64_t blocklens[] = {4, 4};
  const std::uint64_t displs[] = {0, 4};
  auto t = Datatype::Hindexed(blocklens, displs, ByteType());
  EXPECT_TRUE(t.is_contiguous());
  EXPECT_EQ(t.size(), 8u);
}

TEST(Subarray, TwoDimensional) {
  // 4x6 array of ints, select rows 1..2, cols 2..4.
  const std::uint64_t sizes[] = {4, 6};
  const std::uint64_t subsizes[] = {2, 3};
  const std::uint64_t starts[] = {1, 2};
  auto r = Datatype::Subarray(sizes, subsizes, starts, IntType());
  ASSERT_TRUE(r.ok());
  const auto& t = r.value();
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.extent(), 4u * 6 * 4);
  ASSERT_EQ(t.Flatten().size(), 2u);
  EXPECT_EQ(t.Flatten()[0], (Extent{(1 * 6 + 2) * 4, 12}));
  EXPECT_EQ(t.Flatten()[1], (Extent{(2 * 6 + 2) * 4, 12}));
}

TEST(Subarray, FullSelectionIsContiguous) {
  const std::uint64_t sizes[] = {3, 5, 7};
  const std::uint64_t starts[] = {0, 0, 0};
  auto r = Datatype::Subarray(sizes, sizes, starts, DoubleType());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().is_contiguous());
  EXPECT_EQ(r.value().size(), 3u * 5 * 7 * 8);
}

TEST(Subarray, WholeRowsCoalesceAcrossMiddleDim) {
  // Selecting all of the last two dims => one run per outermost index.
  const std::uint64_t sizes[] = {4, 5, 6};
  const std::uint64_t subsizes[] = {2, 5, 6};
  const std::uint64_t starts[] = {1, 0, 0};
  auto r = Datatype::Subarray(sizes, subsizes, starts, ByteType());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().Flatten().size(), 1u);  // rows 1,2 contiguous
  EXPECT_EQ(r.value().Flatten()[0], (Extent{30, 60}));
}

TEST(Subarray, BoundsChecked) {
  const std::uint64_t sizes[] = {4};
  const std::uint64_t subsizes[] = {3};
  const std::uint64_t starts[] = {2};
  auto r = Datatype::Subarray(sizes, subsizes, starts, IntType());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), pnc::Err::kInvalidArg);
}

TEST(Subarray, RankMismatchRejected) {
  const std::uint64_t sizes[] = {4, 4};
  const std::uint64_t subsizes[] = {2};
  const std::uint64_t starts[] = {0, 0};
  EXPECT_FALSE(Datatype::Subarray(sizes, subsizes, starts, IntType()).ok());
}

TEST(PackUnpack, VectorRoundTrip) {
  auto t = Datatype::Vector(3, 2, 4, ByteType());  // extent 10, size 6
  auto base = Iota(32);
  std::vector<std::byte> packed(t.size() * 2);
  t.Pack(base.data(), 2, packed.data());
  // First instance runs at 0..1, 4..5, 8..9; second at 10.., offsets +10.
  EXPECT_EQ(packed[0], base[0]);
  EXPECT_EQ(packed[2], base[4]);
  EXPECT_EQ(packed[4], base[8]);
  EXPECT_EQ(packed[6], base[10]);

  std::vector<std::byte> restored(32, std::byte{0xEE});
  t.Unpack(packed.data(), 2, restored.data());
  for (std::uint64_t inst = 0; inst < 2; ++inst) {
    for (auto off : {0, 1, 4, 5, 8, 9}) {
      const auto i = inst * 10 + static_cast<std::uint64_t>(off);
      EXPECT_EQ(restored[i], base[i]) << i;
    }
  }
}

TEST(PackUnpack, SubarrayIdentityProperty) {
  const std::uint64_t sizes[] = {5, 4, 3};
  const std::uint64_t subsizes[] = {2, 2, 2};
  const std::uint64_t starts[] = {1, 1, 1};
  auto t = Datatype::Subarray(sizes, subsizes, starts, IntType()).value();
  auto base = Iota(5 * 4 * 3 * 4);
  std::vector<std::byte> packed(t.size());
  t.Pack(base.data(), 1, packed.data());
  std::vector<std::byte> out(base.size(), std::byte{0});
  t.Unpack(packed.data(), 1, out.data());
  std::vector<std::byte> repacked(t.size());
  t.Pack(out.data(), 1, repacked.data());
  EXPECT_EQ(packed, repacked);  // pack . unpack . pack == pack
}

TEST(Composition, VectorOfSubarray) {
  const std::uint64_t sizes[] = {2, 4};
  const std::uint64_t subsizes[] = {1, 2};
  const std::uint64_t starts[] = {0, 1};
  auto inner = Datatype::Subarray(sizes, subsizes, starts, ByteType()).value();
  auto outer = Datatype::Contiguous(3, inner);
  EXPECT_EQ(outer.size(), 6u);
  EXPECT_EQ(outer.extent(), 24u);
  ASSERT_EQ(outer.Flatten().size(), 3u);
  EXPECT_EQ(outer.Flatten()[1], (Extent{9, 2}));
}

TEST(TypeOf, MapsCppTypes) {
  EXPECT_EQ(TypeOf<double>().prim(), Prim::kDouble);
  EXPECT_EQ(TypeOf<float>().prim(), Prim::kFloat);
  EXPECT_EQ(TypeOf<int>().prim(), Prim::kInt);
  EXPECT_EQ(TypeOf<short>().prim(), Prim::kShort);
  EXPECT_EQ(TypeOf<char>().prim(), Prim::kChar);
  EXPECT_EQ(TypeOf<long long>().prim(), Prim::kLongLong);
}

TEST(CountElems, DerivedTypes) {
  auto t = Datatype::Vector(3, 2, 5, IntType());
  EXPECT_EQ(t.count_elems(), 6u);
}

}  // namespace
}  // namespace simmpi
