// Tests for the simulated parallel file system: data correctness of the
// stores, namespace operations, and the virtual-time service model.
#include "pfs/pfs.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "util/rng.hpp"

namespace pfs {
namespace {

std::vector<std::byte> Pattern(std::size_t n, std::uint64_t seed) {
  pnc::SplitMix64 rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.Next() & 0xFF);
  return v;
}

TEST(MemStore, WriteReadRoundTrip) {
  MemStore s;
  auto data = Pattern(10000, 1);
  s.Write(123, data);
  EXPECT_EQ(s.size(), 123u + 10000u);
  std::vector<std::byte> out(10000);
  s.Read(123, out);
  EXPECT_EQ(out, data);
}

TEST(MemStore, HolesReadAsZero) {
  MemStore s;
  s.Write(100 << 20, Pattern(16, 2));  // write far out: chunks are sparse
  std::vector<std::byte> out(64, std::byte{0xAA});
  s.Read(0, out);
  for (auto b : out) EXPECT_EQ(b, std::byte{0});
}

TEST(MemStore, CrossChunkBoundary) {
  MemStore s;
  const std::uint64_t off = (4ULL << 20) - 100;  // straddles a 4 MiB chunk
  auto data = Pattern(300, 3);
  s.Write(off, data);
  std::vector<std::byte> out(300);
  s.Read(off, out);
  EXPECT_EQ(out, data);
}

TEST(MemStore, TruncateZeroesTail) {
  MemStore s;
  s.Write(0, Pattern(1000, 4));
  s.Truncate(100);
  EXPECT_EQ(s.size(), 100u);
  std::vector<std::byte> out(1000);
  s.Read(0, out);
  for (std::size_t i = 100; i < 1000; ++i)
    EXPECT_EQ(out[i], std::byte{0}) << i;
}

TEST(FileStore, RealFileRoundTrip) {
  auto r = FileStore::Open("/tmp/pnc_filestore_test.bin", /*truncate=*/true);
  ASSERT_TRUE(r.ok());
  auto store = std::move(r).value();
  auto data = Pattern(5000, 5);
  store->Write(17, data);
  std::vector<std::byte> out(5000);
  store->Read(17, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(store->size(), 5017u);
  store->Truncate(100);
  EXPECT_EQ(store->size(), 100u);
}

TEST(FileSystem, NamespaceSemantics) {
  FileSystem fs;
  EXPECT_FALSE(fs.Exists("a.nc"));
  ASSERT_TRUE(fs.Create("a.nc", /*exclusive=*/true).ok());
  EXPECT_TRUE(fs.Exists("a.nc"));
  EXPECT_FALSE(fs.Create("a.nc", /*exclusive=*/true).ok());  // EEXIST
  EXPECT_TRUE(fs.Create("a.nc", /*exclusive=*/false).ok());  // clobber
  EXPECT_TRUE(fs.Open("a.nc").ok());
  EXPECT_FALSE(fs.Open("missing.nc").ok());
  EXPECT_TRUE(fs.Remove("a.nc").ok());
  EXPECT_FALSE(fs.Exists("a.nc"));
  EXPECT_FALSE(fs.Remove("a.nc").ok());
}

TEST(FileSystem, CreateTruncatesExisting) {
  FileSystem fs;
  auto f = fs.Create("t.nc", false).value();
  f.HarnessWrite(0, Pattern(100, 6), 0.0);
  EXPECT_EQ(f.size(), 100u);
  auto f2 = fs.Create("t.nc", false).value();
  EXPECT_EQ(f2.size(), 0u);
}

TEST(FileSystem, StatsAccumulate) {
  FileSystem fs;
  auto f = fs.Create("s.nc", false).value();
  f.HarnessWrite(0, Pattern(1000, 7), 0.0);
  std::vector<std::byte> out(500);
  f.HarnessRead(0, out, 0.0);
  auto st = fs.stats();
  EXPECT_EQ(st.bytes_written, 1000u);
  EXPECT_EQ(st.bytes_read, 500u);
  EXPECT_EQ(st.write_requests, 1u);
  EXPECT_EQ(st.read_requests, 1u);
  fs.ResetStats();
  EXPECT_EQ(fs.stats().bytes_written, 0u);
}

// ---- virtual-time model properties ----

Config FastConfig() {
  Config c;
  c.num_servers = 4;
  c.stripe_size = 1024;
  c.client_read_ns_per_byte = 0.0;
  c.client_write_ns_per_byte = 0.0;
  c.client_request_ns = 0.0;
  c.server_read_ns_per_byte = 1.0;
  c.server_write_ns_per_byte = 1.0;
  c.server_request_ns = 1000.0;
  return c;
}

TEST(TimeModel, PerRequestLatencyDominatesSmallRequests) {
  FileSystem fs(FastConfig());
  auto f = fs.Create("t", false).value();
  // 100 x 16-byte requests to the same server region vs 1 x 1600-byte one.
  double t_small = 0.0;
  for (int i = 0; i < 100; ++i)
    t_small = f.HarnessWrite(static_cast<std::uint64_t>(i) * 16,
                      Pattern(16, 8), t_small);
  fs.ResetTime();
  const double t_big = f.HarnessWrite(0, Pattern(1600, 9), 0.0);
  EXPECT_GT(t_small, 10.0 * t_big);
}

TEST(TimeModel, StripingSpreadsLoadAcrossServers) {
  // A request covering all stripes should finish ~nservers times faster than
  // the same bytes confined to a single server's stripes.
  Config cfg = FastConfig();
  FileSystem fs(cfg);
  auto f = fs.Create("t", false).value();
  const std::uint64_t n = 4 * 1024;  // exactly one stripe per server
  const double striped = f.HarnessWrite(0, Pattern(n, 10), 0.0);
  fs.ResetTime();
  // Four separate writes into stripes 0, 4, 8, 12 — all map to server 0.
  double same_server = 0.0;
  double t = 0.0;
  for (int i = 0; i < 4; ++i) {
    t = f.HarnessWrite(static_cast<std::uint64_t>(i) * 4 * 1024, Pattern(1024, 11), t);
    same_server = t;
  }
  EXPECT_GT(same_server, 2.0 * striped);
}

TEST(TimeModel, ConcurrentClientsContendForServers) {
  // Two clients writing disjoint ranges at the same virtual time: the second
  // completion must reflect queueing behind the first on shared servers.
  Config cfg = FastConfig();
  cfg.num_servers = 1;
  FileSystem fs(cfg);
  auto f = fs.Create("t", false).value();
  const double a = f.HarnessWrite(0, Pattern(1000, 12), 0.0);
  const double b = f.HarnessWrite(10000, Pattern(1000, 13), 0.0);
  EXPECT_GE(b, a + 1000.0);  // serialized on the single server
}

TEST(TimeModel, ReadsAndWritesUseDifferentRates) {
  Config cfg = FastConfig();
  cfg.server_read_ns_per_byte = 1.0;
  cfg.server_write_ns_per_byte = 10.0;
  FileSystem fs(cfg);
  auto f = fs.Create("t", false).value();
  auto data = Pattern(100000, 14);
  const double w = f.HarnessWrite(0, data, 0.0);
  fs.ResetTime();
  std::vector<std::byte> out(100000);
  const double r = f.HarnessRead(0, out, 0.0);
  EXPECT_GT(w, 5.0 * r);
}

TEST(TimeModel, CompletionMonotoneInStartTime) {
  FileSystem fs(FastConfig());
  auto f = fs.Create("t", false).value();
  auto data = Pattern(4096, 15);
  const double t1 = f.HarnessWrite(0, data, 0.0);
  fs.ResetTime();
  const double t2 = f.HarnessWrite(0, data, 5e6);
  EXPECT_GT(t2, t1);
  EXPECT_GE(t2, 5e6);
}

TEST(TimeModel, DataIntegrityUnderConcurrentDisjointWrites) {
  FileSystem fs(FastConfig());
  auto f = fs.Create("t", false).value();
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&f, i] {
      auto data = Pattern(10000, 100 + static_cast<std::uint64_t>(i));
      f.HarnessWrite(static_cast<std::uint64_t>(i) * 10000, data, 0.0);
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < 8; ++i) {
    std::vector<std::byte> out(10000);
    f.HarnessRead(static_cast<std::uint64_t>(i) * 10000, out, 0.0);
    EXPECT_EQ(out, Pattern(10000, 100 + static_cast<std::uint64_t>(i))) << i;
  }
}

}  // namespace
}  // namespace pfs
