// End-to-end data integrity: the chunk-checksum layer (format/sums.hpp)
// must make silent data corruption impossible through every read path.
//
// The invariant under test, everywhere: a read API either returns the bytes
// that were written (possibly after healing a transient flip) or it returns
// kDataCorrupt — it NEVER returns wrong bytes with an OK status. The matrix
// crosses serial and 4-rank access, independent / two-phase-collective /
// data-sieving read paths, transient read-side flips (bitflip_read_prob)
// and sticky at-rest damage, plus the offline scrub (ncverify --data
// semantics via nctools::VerifyFile), the --repair re-baseline, and the
// PNC_SUMS=0 determinism guard.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "format/header.hpp"
#include "format/sums.hpp"
#include "iostat/events.hpp"
#include "iostat/iostat.hpp"
#include "iostat/report.hpp"
#include "netcdf/dataset.hpp"
#include "pnetcdf/dataset.hpp"
#include "simmpi/runtime.hpp"
#include "test_support.hpp"
#include "tools/verify.hpp"

namespace {

using ncformat::NcType;
using simmpi::Comm;

/// RAII environment override; restores the previous value on scope exit.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = ::getenv(name)) old_ = old;
    if (value)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~EnvGuard() {
    if (old_)
      ::setenv(name_, old_->c_str(), 1);
    else
      ::unsetenv(name_);
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
  std::optional<std::string> old_;
};

/// Decode `path`'s header through the harness (fault-free) read path.
ncformat::Header HeaderOf(pfs::FileSystem& fs, const std::string& path) {
  auto f = fs.Open(path).value();
  std::vector<std::byte> bytes(std::min<std::uint64_t>(f.size(), 64 * 1024));
  f.HarnessRead(0, bytes, 0.0);
  auto h = ncformat::Header::Decode(bytes);
  EXPECT_TRUE(h.ok()) << h.status().message();
  return std::move(h).value();
}

/// First data byte of `path` = the lowest variable begin offset.
std::uint64_t DataBegin(pfs::FileSystem& fs, const std::string& path) {
  const ncformat::Header h = HeaderOf(fs, path);
  std::uint64_t db = 0;
  bool first = true;
  for (const auto& v : h.vars) {
    if (first || v.begin < db) db = v.begin;
    first = false;
  }
  EXPECT_FALSE(first) << "no variables in " << path;
  return db;
}

/// Whole primary file via the harness path (never fault-injected).
std::vector<std::byte> FileBytes(pfs::FileSystem& fs,
                                 const std::string& path) {
  auto f = fs.Open(path).value();
  std::vector<std::byte> b(f.size());
  if (!b.empty()) f.HarnessRead(0, b, 0.0);
  return b;
}

/// Flip every bit of the byte at `offset` (guaranteed to change it).
void FlipByteAt(pfs::FileSystem& fs, const std::string& path,
                std::uint64_t offset) {
  const std::byte old = pnc_test::ByteAt(fs, path, offset);
  pnc_test::CorruptByte(fs, path, offset, old ^ std::byte{0xFF});
}

// --------------------------------------------------------- serial fixture

constexpr std::uint64_t kSerialElems = 256 * 1024;  // 256 KiB = 4 sum chunks

signed char PatternAt(std::uint64_t i) {
  return static_cast<signed char>((i * 31 + 7) % 251 - 125);
}

/// One byte variable "d" of `n` elements filled with PatternAt.
void MakePatternFile(pfs::FileSystem& fs, const std::string& path,
                     std::uint64_t n = kSerialElems) {
  auto ds = netcdf::Dataset::Create(fs, path).value();
  const int x = ds.DefDim("x", n).value();
  const int v = ds.DefVar("d", NcType::kByte, {x}).value();
  ASSERT_TRUE(ds.EndDef().ok());
  std::vector<signed char> vals(n);
  for (std::uint64_t i = 0; i < n; ++i) vals[i] = PatternAt(i);
  ASSERT_TRUE(ds.PutVar<signed char>(v, vals).ok());
  ASSERT_TRUE(ds.Close().ok());
}

// ----------------------------------------------- serial read-side bitflips

// The core invariant swept over flip probabilities and seeds: every full
// read either comes back byte-perfect (the flip healed, or never landed in
// a read) or fails with kDataCorrupt. An OK status with wrong bytes is the
// one outcome that must never occur.
TEST(Integrity, SerialBitflipReadNeverSilent) {
  std::uint64_t total_flips = 0;
  int healed_or_clean = 0, corrupt = 0;
  for (const double p : {1e-3, 0.05, 0.5}) {
    for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
      pfs::FileSystem fs;
      MakePatternFile(fs, "b.nc");
      auto ds = netcdf::Dataset::Open(fs, "b.nc", false).value();
      pfs::FaultPolicy pol;
      pol.bitflip_read_prob = p;
      pol.seed = 0x17E6ull + seed * 0x9E3779B97F4A7C15ull;
      SCOPED_TRACE("p=" + std::to_string(p) +
                   " " + pnc_test::DescribePolicy(pol));
      fs.SetFaultPolicy(pol);
      fs.ResetStats();

      std::vector<signed char> got(kSerialElems);
      const pnc::Status rs =
          ds.GetVar<signed char>(ds.VarId("d").value(), got);
      total_flips += fs.stats().bitflips;
      fs.SetFaultPolicy({});
      if (rs.ok()) {
        for (std::uint64_t i = 0; i < kSerialElems; ++i)
          ASSERT_EQ(got[i], PatternAt(i)) << "silent corruption at " << i;
        EXPECT_TRUE(ds.Close().ok());
        ++healed_or_clean;
      } else {
        EXPECT_EQ(rs.code(), pnc::Err::kDataCorrupt) << rs.message();
        // Sticky: the session cannot be closed as if it were healthy.
        EXPECT_EQ(ds.Close().code(), pnc::Err::kDataCorrupt);
        ++corrupt;
      }
    }
  }
  // The sweep actually exercised the hazard, and verification absorbed at
  // least some of it (p=1e-3 cases are virtually always flip-free or
  // healed; p=0.5 re-reads may keep flipping and surface kDataCorrupt).
  EXPECT_GT(total_flips, 0u);
  EXPECT_GT(healed_or_clean, 0);
}

// A transient read-side flip on intact media must HEAL: the chunk re-read
// sees clean bytes, the caller gets a byte-perfect buffer and an OK status.
TEST(Integrity, SerialBitflipReadHeals) {
  bool healed = false;
  for (std::uint64_t seed = 1; seed <= 16 && !healed; ++seed) {
    pfs::FileSystem fs;
    MakePatternFile(fs, "h.nc");
    auto ds = netcdf::Dataset::Open(fs, "h.nc", false).value();
    pfs::FaultPolicy pol;
    pol.bitflip_read_prob = 0.5;
    pol.seed = seed;
    SCOPED_TRACE(pnc_test::DescribePolicy(pol));
    fs.SetFaultPolicy(pol);
    fs.ResetStats();
    std::vector<signed char> got(kSerialElems);
    const pnc::Status rs = ds.GetVar<signed char>(ds.VarId("d").value(), got);
    const std::uint64_t flips = fs.stats().bitflips;
    fs.SetFaultPolicy({});
    if (rs.ok() && flips > 0) {
      for (std::uint64_t i = 0; i < kSerialElems; ++i)
        ASSERT_EQ(got[i], PatternAt(i)) << "healed read still wrong at " << i;
      EXPECT_TRUE(ds.Close().ok());
      healed = true;
    }
  }
  EXPECT_TRUE(healed) << "no seed produced a healed flip";
}

// ------------------------------------------------- serial at-rest damage

// A byte corrupted on the medium between sessions keeps mismatching every
// re-read; the read must surface kDataCorrupt — silently returning the
// damaged buffer is the pre-integrity-layer behaviour this PR removes.
TEST(Integrity, SerialAtRestCorruptionSurfacesStickyError) {
  pfs::FileSystem fs;
  MakePatternFile(fs, "a.nc");
  const std::uint64_t db = DataBegin(fs, "a.nc");
  FlipByteAt(fs, "a.nc", db + 1000);

  auto ds = netcdf::Dataset::Open(fs, "a.nc", false).value();
  std::vector<signed char> got(kSerialElems);
  const pnc::Status rs = ds.GetVar<signed char>(ds.VarId("d").value(), got);
  EXPECT_EQ(rs.code(), pnc::Err::kDataCorrupt) << rs.message();
  EXPECT_EQ(ds.Close().code(), pnc::Err::kDataCorrupt);
}

// The pfs corrupt_at_rest schedule (persisted decay triggered by reads)
// drives the same surface: heal re-reads see the same damage — and may
// decay further — so the read must fail, and the offline scrub must then
// find the chunk.
TEST(Integrity, SerialAtRestDecayDetectedThenScrubbed) {
  // The decay byte is uniform over each request, and the buffered block
  // read spans the header and the zero-fill tail past EOF too — sweep
  // seeds until a flip lands inside a data chunk. Every intermediate
  // outcome still has to satisfy the no-silent-corruption invariant.
  bool surfaced = false;
  for (std::uint64_t seed = 1; seed <= 24 && !surfaced; ++seed) {
    pfs::FileSystem fs;
    MakePatternFile(fs, "r.nc");
    auto ds = netcdf::Dataset::Open(fs, "r.nc", false).value();
    pfs::FaultPolicy pol;
    pol.corrupt_at_rest = 1.0;
    pol.seed = seed;
    SCOPED_TRACE(pnc_test::DescribePolicy(pol));
    fs.SetFaultPolicy(pol);
    fs.ResetStats();
    std::vector<signed char> got(kSerialElems);
    const pnc::Status rs = ds.GetVar<signed char>(ds.VarId("d").value(), got);
    fs.SetFaultPolicy({});
    EXPECT_GE(fs.stats().at_rest_corruptions, 1u);
    if (rs.ok()) {
      // Decay missed the data chunks (header bytes or past-EOF fill):
      // the returned buffer must still be byte-perfect.
      for (std::uint64_t i = 0; i < kSerialElems; ++i)
        ASSERT_EQ(got[i], PatternAt(i)) << "silent corruption at " << i;
      (void)ds.Close();
      continue;
    }
    EXPECT_EQ(rs.code(), pnc::Err::kDataCorrupt) << rs.message();
    EXPECT_EQ(ds.Close().code(), pnc::Err::kDataCorrupt);

    // The damage is on the medium now; the offline scrub must find it.
    auto v = nctools::VerifyFile(fs, "r.nc", {.repair = false, .data = true});
    ASSERT_TRUE(v.ok()) << v.status().message();
    ASSERT_TRUE(v.value().scrub.has_value());
    EXPECT_TRUE(v.value().scrub->trusted);
    EXPECT_GE(v.value().scrub->corrupt, 1u);
    surfaced = true;
  }
  EXPECT_TRUE(surfaced) << "no seed decayed a data chunk";
}

// --------------------------------------------- 4-rank read-path matrix

constexpr int kRanks = 4;
constexpr std::uint64_t kRows = 256, kCols = 256;

signed char Cell(std::uint64_t r, std::uint64_t c) {
  return static_cast<signed char>((r * 31 + c * 7) % 251 - 125);
}

/// 256x256 byte grid "d", each rank writing its row band, fault-free.
void CreateGrid(pfs::FileSystem& fs) {
  simmpi::Run(kRanks, [&](Comm& c) {
    auto ds =
        pnetcdf::Dataset::Create(c, fs, "g.nc", simmpi::NullInfo()).value();
    const int y = ds.DefDim("y", kRows).value();
    const int x = ds.DefDim("x", kCols).value();
    const int v = ds.DefVar("d", NcType::kByte, {y, x}).value();
    ASSERT_TRUE(ds.EndDef().ok());
    const std::uint64_t band = kRows / kRanks;
    const std::uint64_t r0 = band * static_cast<std::uint64_t>(c.rank());
    std::vector<signed char> mine(band * kCols);
    for (std::uint64_t i = 0; i < band; ++i)
      for (std::uint64_t j = 0; j < kCols; ++j)
        mine[i * kCols + j] = Cell(r0 + i, j);
    const std::uint64_t st[] = {r0, 0};
    const std::uint64_t ct[] = {band, kCols};
    ASSERT_TRUE(ds.PutVaraAll<signed char>(v, st, ct, mine).ok());
    ASSERT_TRUE(ds.Close().ok());
  });
}

enum class ReadMode { kCollective, kIndependent, kSieved };

const char* ModeName(ReadMode m) {
  switch (m) {
    case ReadMode::kCollective: return "collective(two-phase)";
    case ReadMode::kIndependent: return "independent(contiguous)";
    case ReadMode::kSieved: return "independent(sieved column)";
  }
  return "?";
}

// Every parallel read path — two-phase collective, contiguous independent,
// and data-sieving strided — under transient read-side flips on a 4-rank
// read-only open (the verify-armed parallel mode): per rank, OK means
// byte-perfect, anything else is kDataCorrupt.
TEST(Integrity, ParallelBitflipMatrixNeverSilent) {
  std::uint64_t total_flips = 0;
  for (const ReadMode mode :
       {ReadMode::kCollective, ReadMode::kIndependent, ReadMode::kSieved}) {
    for (const double p : {1e-3, 0.05}) {
      pfs::FileSystem fs;
      CreateGrid(fs);
      simmpi::Run(kRanks, [&](Comm& c) {
        simmpi::Info info;
        if (mode == ReadMode::kCollective)
          info.Set("cb_buffer_size", "8192");  // many aggregator windows
        auto ds =
            pnetcdf::Dataset::Open(c, fs, "g.nc", false, info).value();
        pfs::FaultPolicy pol;
        pol.bitflip_read_prob = p;
        SCOPED_TRACE(std::string(ModeName(mode)) + " " +
                     pnc_test::DescribePolicy(pol));
        if (c.rank() == 0) {
          fs.SetFaultPolicy(pol);
          fs.ResetStats();
        }
        c.Barrier();

        const int v = ds.VarId("d").value();
        const std::uint64_t band = kRows / kRanks;
        const std::uint64_t r0 = band * static_cast<std::uint64_t>(c.rank());
        pnc::Status rs;
        std::vector<signed char> got;
        // (row, col) of got[i] for the correctness check below.
        std::vector<std::pair<std::uint64_t, std::uint64_t>> where;
        if (mode == ReadMode::kCollective) {
          got.resize(band * kCols);
          const std::uint64_t st[] = {r0, 0};
          const std::uint64_t ct[] = {band, kCols};
          rs = ds.GetVaraAll<signed char>(v, st, ct, got);
          for (std::uint64_t i = 0; i < band; ++i)
            for (std::uint64_t j = 0; j < kCols; ++j)
              where.emplace_back(r0 + i, j);
        } else if (mode == ReadMode::kIndependent) {
          ASSERT_TRUE(ds.BeginIndepData().ok());
          got.resize(band * kCols);
          const std::uint64_t st[] = {r0, 0};
          const std::uint64_t ct[] = {band, kCols};
          rs = ds.GetVara<signed char>(v, st, ct, got);
          ASSERT_TRUE(ds.EndIndepData().ok());
          for (std::uint64_t i = 0; i < band; ++i)
            for (std::uint64_t j = 0; j < kCols; ++j)
              where.emplace_back(r0 + i, j);
        } else {
          // Column band: kRows segments of 64 B spaced kCols apart — the
          // shape the data-sieving path coalesces into one big read.
          ASSERT_TRUE(ds.BeginIndepData().ok());
          const std::uint64_t cband = kCols / kRanks;
          const std::uint64_t c0 = cband * static_cast<std::uint64_t>(c.rank());
          got.resize(kRows * cband);
          const std::uint64_t st[] = {0, c0};
          const std::uint64_t ct[] = {kRows, cband};
          rs = ds.GetVara<signed char>(v, st, ct, got);
          ASSERT_TRUE(ds.EndIndepData().ok());
          for (std::uint64_t i = 0; i < kRows; ++i)
            for (std::uint64_t j = 0; j < cband; ++j)
              where.emplace_back(i, c0 + j);
        }

        if (rs.ok()) {
          for (std::size_t i = 0; i < got.size(); ++i)
            ASSERT_EQ(got[i], Cell(where[i].first, where[i].second))
                << "silent corruption, rank " << c.rank() << " elem " << i;
        } else {
          EXPECT_EQ(rs.code(), pnc::Err::kDataCorrupt) << rs.message();
        }
        c.Barrier();
        if (c.rank() == 0) fs.SetFaultPolicy({});
        c.Barrier();
        const pnc::Status cs = ds.Close();
        if (rs.ok())
          EXPECT_TRUE(cs.ok()) << cs.message();
        else
          EXPECT_EQ(cs.code(), pnc::Err::kDataCorrupt);
      });
      total_flips += fs.stats().bitflips;
    }
  }
  EXPECT_GT(total_flips, 0u);  // the matrix really injected flips
}

// At-rest damage under a 4-rank collective read of the full grid: no rank
// may return OK with wrong bytes, and at least one rank must report
// kDataCorrupt (the damage cannot heal, so it may not vanish either).
TEST(Integrity, ParallelAtRestCorruptionSurfaces) {
  pfs::FileSystem fs;
  CreateGrid(fs);
  const std::uint64_t db = DataBegin(fs, "g.nc");
  FlipByteAt(fs, "g.nc", db + 12345);

  simmpi::Run(kRanks, [&](Comm& c) {
    auto ds =
        pnetcdf::Dataset::Open(c, fs, "g.nc", false, simmpi::NullInfo())
            .value();
    const int v = ds.VarId("d").value();
    std::vector<signed char> got(kRows * kCols);
    const std::uint64_t st[] = {0, 0};
    const std::uint64_t ct[] = {kRows, kCols};
    const pnc::Status rs = ds.GetVaraAll<signed char>(v, st, ct, got);
    if (rs.ok()) {
      for (std::uint64_t r = 0; r < kRows; ++r)
        for (std::uint64_t cc = 0; cc < kCols; ++cc)
          ASSERT_EQ(got[r * kCols + cc], Cell(r, cc))
              << "silent corruption on rank " << c.rank();
    } else {
      EXPECT_EQ(rs.code(), pnc::Err::kDataCorrupt) << rs.message();
    }
    // Somebody saw it: the min raw status across ranks is kDataCorrupt.
    EXPECT_EQ(c.AllreduceMin(rs.raw()),
              pnc::Status(pnc::Err::kDataCorrupt, "").raw());
    (void)ds.Close();
  });
}

// ------------------------------------------------------- offline scrub

// ncverify --data semantics, API level: every injected at-rest corruption
// — first data byte, chunk interior, both sides of a chunk boundary, last
// byte — is detected and attributed to the right chunk. 100% detection.
TEST(Integrity, ScrubDetectsEveryInjectedCorruption) {
  EnvGuard chunk("PNC_SUM_CHUNK", "4096");
  constexpr std::uint64_t kN = 16 * 1024;  // 4 chunks of 4 KiB
  const std::uint64_t offsets[] = {0, 4095, 4096, 8191, 12288, kN - 1};
  for (const std::uint64_t off : offsets) {
    SCOPED_TRACE("corrupt data byte " + std::to_string(off));
    pfs::FileSystem fs;
    MakePatternFile(fs, "s.nc", kN);
    const std::uint64_t db = DataBegin(fs, "s.nc");
    FlipByteAt(fs, "s.nc", db + off);

    auto v = nctools::VerifyFile(fs, "s.nc", {.repair = false, .data = true});
    ASSERT_TRUE(v.ok()) << v.status().message();
    ASSERT_TRUE(v.value().scrub.has_value());
    const ncformat::ScrubReport& s = *v.value().scrub;
    EXPECT_TRUE(s.trusted);
    EXPECT_EQ(s.corrupt, 1u);
    EXPECT_EQ(s.unsummed, 0u);
    ASSERT_EQ(s.corrupt_chunks.size(), 1u);
    EXPECT_EQ(s.corrupt_chunks[0], off / 4096);
  }

  // Multiple damaged chunks in one file: all of them reported.
  pfs::FileSystem fs;
  MakePatternFile(fs, "s.nc", kN);
  const std::uint64_t db = DataBegin(fs, "s.nc");
  for (const std::uint64_t off : {100ull, 9000ull, 14000ull})
    FlipByteAt(fs, "s.nc", db + off);
  auto v = nctools::VerifyFile(fs, "s.nc", {.repair = false, .data = true});
  ASSERT_TRUE(v.ok()) << v.status().message();
  ASSERT_TRUE(v.value().scrub.has_value());
  EXPECT_EQ(v.value().scrub->corrupt, 3u);
}

// --repair --data re-baselines: the rebuilt sidecar covers every chunk and
// a follow-up scrub is clean (the operator vouched for the current bytes).
TEST(Integrity, ScrubRepairRebuildsBaseline) {
  EnvGuard chunk("PNC_SUM_CHUNK", "4096");
  constexpr std::uint64_t kN = 16 * 1024;
  pfs::FileSystem fs;
  MakePatternFile(fs, "t.nc", kN);
  const std::uint64_t db = DataBegin(fs, "t.nc");
  FlipByteAt(fs, "t.nc", db + 5000);

  auto first = nctools::VerifyFile(fs, "t.nc", {.repair = false, .data = true});
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().scrub->corrupt, 1u);

  auto rebuilt =
      nctools::VerifyFile(fs, "t.nc", {.repair = true, .data = true});
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().message();
  EXPECT_TRUE(rebuilt.value().sums_rebuilt);

  auto after = nctools::VerifyFile(fs, "t.nc", {.repair = false, .data = true});
  ASSERT_TRUE(after.ok());
  const ncformat::ScrubReport& s = *after.value().scrub;
  EXPECT_TRUE(s.trusted);
  EXPECT_EQ(s.corrupt, 0u);
  EXPECT_EQ(s.unsummed, 0u);
  EXPECT_EQ(s.clean, 4u);
}

// A missing sidecar degrades to honest "unsummed" coverage, never to a
// false corruption verdict (and never to a false clean one).
TEST(Integrity, ScrubWithoutSidecarReportsUnsummed) {
  pfs::FileSystem fs;
  MakePatternFile(fs, "u.nc");
  ASSERT_TRUE(fs.Remove(ncformat::SumsPath("u.nc")).ok());
  auto v = nctools::VerifyFile(fs, "u.nc", {.repair = false, .data = true});
  ASSERT_TRUE(v.ok()) << v.status().message();
  ASSERT_TRUE(v.value().scrub.has_value());
  const ncformat::ScrubReport& s = *v.value().scrub;
  EXPECT_FALSE(s.trusted);
  EXPECT_EQ(s.corrupt, 0u);
  EXPECT_EQ(s.clean, 0u);
  EXPECT_GT(s.unsummed, 0u);
}

// ------------------------------------------------- determinism guard

// PNC_SUMS=0 switches the whole subsystem off: no sidecar exists, and the
// primary file is bit-identical to one written with checksums on — the
// integrity layer never perturbs the netCDF bytes themselves.
TEST(Integrity, SumsOffIsBitIdenticalAndSidecarFree) {
  std::vector<std::byte> with, without;
  {
    pfs::FileSystem fs;
    MakePatternFile(fs, "d.nc");
    EXPECT_TRUE(fs.Exists(ncformat::SumsPath("d.nc")));
    with = FileBytes(fs, "d.nc");
  }
  {
    EnvGuard off("PNC_SUMS", "0");
    pfs::FileSystem fs;
    MakePatternFile(fs, "d.nc");
    EXPECT_FALSE(fs.Exists(ncformat::SumsPath("d.nc")));
    without = FileBytes(fs, "d.nc");
  }
  EXPECT_EQ(with, without);
}

TEST(Integrity, ParallelSumsOffIsBitIdenticalAndSidecarFree) {
  std::vector<std::byte> with, without;
  {
    pfs::FileSystem fs;
    CreateGrid(fs);
    EXPECT_TRUE(fs.Exists(ncformat::SumsPath("g.nc")));
    with = FileBytes(fs, "g.nc");
  }
  {
    EnvGuard off("PNC_SUMS", "0");
    pfs::FileSystem fs;
    CreateGrid(fs);
    EXPECT_FALSE(fs.Exists(ncformat::SumsPath("g.nc")));
    without = FileBytes(fs, "g.nc");
  }
  EXPECT_EQ(with, without);
}

// ------------------------------------- telemetry: counters + black box

// The verification counters and the flight-recorder data_corrupt event (the
// record ncstat --blackbox resolves by name) fire on a sticky corrupt read.
TEST(Integrity, IostatCountersAndBlackboxEvent) {
#if !PNC_IOSTAT_ENABLED
  GTEST_SKIP() << "instrumentation compiled out (PNC_IOSTAT=OFF)";
#else
  iostat::Registry::Get().Reset();
  iostat::Registry::Get().SetCountersEnabled(true);

  pfs::FileSystem fs;
  MakePatternFile(fs, "c.nc", 64 * 1024);
  const std::uint64_t db = DataBegin(fs, "c.nc");
  FlipByteAt(fs, "c.nc", db + 5);

  simmpi::Run(1, [&](Comm& c) {
    auto ds =
        pnetcdf::Dataset::Open(c, fs, "c.nc", false, simmpi::NullInfo())
            .value();
    const int v = ds.VarId("d").value();
    std::vector<signed char> got(64 * 1024);
    const std::uint64_t st[] = {0};
    const std::uint64_t ct[] = {64 * 1024};
    EXPECT_EQ(ds.GetVaraAll<signed char>(v, st, ct, got).code(),
              pnc::Err::kDataCorrupt);
    EXPECT_EQ(ds.Close().code(), pnc::Err::kDataCorrupt);
  });

  const auto rep = iostat::BuildReport();
  EXPECT_GT(rep[iostat::Ctr::kNcSumChunksVerified].sum, 0u);
  EXPECT_GT(rep[iostat::Ctr::kNcSumMismatch].sum, 0u);
  bool saw_event = false;
  for (const auto& e : iostat::FlightRecorder::Get().CollectRank(0))
    saw_event |= e.kind == iostat::Ev::kDataCorrupt;
  EXPECT_TRUE(saw_event) << "no data_corrupt flight-recorder event";
  // The wire name resolves (the ncstat --blackbox filter contract).
  iostat::Ev kind;
  EXPECT_TRUE(iostat::EvFromName("data_corrupt", &kind));
  EXPECT_EQ(kind, iostat::Ev::kDataCorrupt);

  iostat::Registry::Get().SetCountersEnabled(false);
  iostat::Registry::Get().Reset();
#endif
}

// Healed transient flips are counted too: find a seed where the read both
// hit flips and healed, then demand the heal-retry counter moved.
TEST(Integrity, IostatCountsHealedRetries) {
#if !PNC_IOSTAT_ENABLED
  GTEST_SKIP() << "instrumentation compiled out (PNC_IOSTAT=OFF)";
#else
  bool healed = false;
  for (std::uint64_t seed = 1; seed <= 16 && !healed; ++seed) {
    iostat::Registry::Get().Reset();
    iostat::Registry::Get().SetCountersEnabled(true);
    pfs::FileSystem fs;
    MakePatternFile(fs, "hh.nc", 64 * 1024);
    simmpi::Run(1, [&](Comm& c) {
      auto ds =
          pnetcdf::Dataset::Open(c, fs, "hh.nc", false, simmpi::NullInfo())
              .value();
      pfs::FaultPolicy pol;
      pol.bitflip_read_prob = 0.5;
      pol.seed = seed;
      fs.SetFaultPolicy(pol);
      fs.ResetStats();
      const int v = ds.VarId("d").value();
      std::vector<signed char> got(64 * 1024);
      const std::uint64_t st[] = {0};
      const std::uint64_t ct[] = {64 * 1024};
      const pnc::Status rs = ds.GetVaraAll<signed char>(v, st, ct, got);
      fs.SetFaultPolicy({});
      if (rs.ok() && fs.stats().bitflips > 0) {
        const auto rep = iostat::BuildReport();
        EXPECT_GT(rep[iostat::Ctr::kNcSumHealedRetries].sum, 0u);
        healed = true;
      }
      (void)ds.Close();
    });
    iostat::Registry::Get().SetCountersEnabled(false);
    iostat::Registry::Get().Reset();
  }
  EXPECT_TRUE(healed) << "no seed produced a healed flip";
#endif
}

}  // namespace
