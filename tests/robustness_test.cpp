// Failure injection and robustness: corrupted files are rejected gracefully
// (on every rank), truncation is detected, oversized/garbage metadata cannot
// crash the readers, and the buffered I/O layer stays coherent.
#include <gtest/gtest.h>

#include "format/header_io.hpp"
#include "hdf5lite/h5file.hpp"
#include "netcdf/buffered_file.hpp"
#include "netcdf/dataset.hpp"
#include "pnetcdf/dataset.hpp"
#include "simmpi/runtime.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace {

using ncformat::NcType;
using pnc_test::CorruptByte;
using pnc_test::MakeValidFile;

TEST(Corruption, BadMagicRejectedBySerialOpen) {
  pfs::FileSystem fs;
  MakeValidFile(fs, "f.nc");
  pnc_test::DropJournal(fs, "f.nc");  // corruption sans journal: must reject
  CorruptByte(fs, "f.nc", 0, std::byte{'X'});
  auto r = netcdf::Dataset::Open(fs, "f.nc", false);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), pnc::Err::kNotNc);
}

TEST(Corruption, BadVersionRejected) {
  pfs::FileSystem fs;
  MakeValidFile(fs, "f.nc");
  pnc_test::DropJournal(fs, "f.nc");  // corruption sans journal: must reject
  CorruptByte(fs, "f.nc", 3, std::byte{9});
  EXPECT_FALSE(netcdf::Dataset::Open(fs, "f.nc", false).ok());
}

TEST(Corruption, GarbageListTagRejected) {
  pfs::FileSystem fs;
  MakeValidFile(fs, "f.nc");
  pnc_test::DropJournal(fs, "f.nc");  // corruption sans journal: must reject
  // The dim_list tag lives at offset 8; stomp it with a bogus tag value.
  CorruptByte(fs, "f.nc", 11, std::byte{0x77});
  EXPECT_FALSE(netcdf::Dataset::Open(fs, "f.nc", false).ok());
}

TEST(Corruption, ParallelOpenFailsOnAllRanks) {
  pfs::FileSystem fs;
  MakeValidFile(fs, "f.nc");
  pnc_test::DropJournal(fs, "f.nc");  // corruption sans journal: must reject
  CorruptByte(fs, "f.nc", 0, std::byte{0});
  simmpi::Run(4, [&](simmpi::Comm& c) {
    auto r = pnetcdf::Dataset::Open(c, fs, "f.nc", false, simmpi::NullInfo());
    EXPECT_FALSE(r.ok());
    // Every rank gets the same (broadcast) verdict — nobody hangs.
    EXPECT_EQ(r.status().code(), pnc::Err::kNotNc);
  });
}

TEST(Corruption, TruncatedFileDetected) {
  pfs::FileSystem fs;
  MakeValidFile(fs, "f.nc");
  pnc_test::DropJournal(fs, "f.nc");  // corruption sans journal: must reject
  auto f = fs.Open(fs.Open("f.nc").value().path()).value();
  f.Truncate(10);  // keep the magic, cut the rest of the header
  auto r = netcdf::Dataset::Open(fs, "f.nc", false);
  ASSERT_FALSE(r.ok());
}

TEST(Corruption, InsaneCountsRejectedNotAllocated) {
  // A header claiming 2^31-ish dims must fail cleanly, not OOM: the name
  // decode hits the buffer bound first.
  pfs::FileSystem fs;
  auto f = fs.Create("evil.nc", false).value();
  std::vector<std::byte> evil;
  pnc::xdr::Encoder enc(evil);
  enc.PutU8('C');
  enc.PutU8('D');
  enc.PutU8('F');
  enc.PutU8(1);
  enc.PutU32(0);           // numrecs
  enc.PutI32(0x0A);        // dim tag
  enc.PutI32(0x7FFFFFFF);  // preposterous count
  f.HarnessWrite(0, evil, 0.0);
  auto r = netcdf::Dataset::Open(fs, "evil.nc", false);
  ASSERT_FALSE(r.ok());
}

TEST(Corruption, Hdf5liteBadSuperblock) {
  pfs::FileSystem fs;
  simmpi::Run(2, [&](simmpi::Comm& c) {
    auto f = hdf5lite::File::Create(c, fs, "x.h5l", simmpi::NullInfo()).value();
    const std::uint64_t dims[] = {4};
    auto ds = f.CreateDataset("d", NcType::kInt, dims).value();
    ASSERT_TRUE(ds.Close().ok());
    ASSERT_TRUE(f.Close().ok());
  });
  CorruptByte(fs, "x.h5l", 0, std::byte{0});
  simmpi::Run(2, [&](simmpi::Comm& c) {
    EXPECT_FALSE(
        hdf5lite::File::Open(c, fs, "x.h5l", false, simmpi::NullInfo()).ok());
  });
}

TEST(HeaderIo, GrowingPrefixReadConverges) {
  // A header larger than the initial 8 KiB probe must still decode.
  pfs::FileSystem fs;
  auto ds = netcdf::Dataset::Create(fs, "big.nc").value();
  const int x = ds.DefDim("x", 2).value();
  for (int v = 0; v < 600; ++v)
    (void)ds.DefVar("variable_with_a_long_name_" + std::to_string(v),
                    NcType::kInt, {x});
  ASSERT_TRUE(ds.EndDef().ok());
  ASSERT_TRUE(ds.Close().ok());
  ASSERT_GT(ds.header().EncodedSize(), 8u * 1024);

  auto rd = netcdf::Dataset::Open(fs, "big.nc", false);
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ(rd.value().nvars(), 600);

  // And through the parallel open path (root reads + broadcast).
  simmpi::Run(3, [&](simmpi::Comm& c) {
    auto p = pnetcdf::Dataset::Open(c, fs, "big.nc", false, simmpi::NullInfo());
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p.value().nvars(), 600);
  });
}

TEST(BufferedFile, CoherentAcrossFlushBoundaries) {
  pfs::FileSystem fs;
  auto file = fs.Create("b.dat", false).value();
  simmpi::VirtualClock clock;
  netcdf::BufferedFile io(file, &clock, /*buffer_size=*/4096);

  pnc::SplitMix64 rng(99);
  std::vector<std::byte> ref(20000);
  for (auto& b : ref) b = static_cast<std::byte>(rng.Next());

  // Write in odd-sized slices that straddle block boundaries.
  std::size_t pos = 0;
  while (pos < ref.size()) {
    const std::size_t n = std::min<std::size_t>(37 + pos % 991, ref.size() - pos);
    ASSERT_TRUE(io.WriteAt(pos, pnc::ConstByteSpan(ref.data() + pos, n)).ok());
    pos += n;
  }
  // Read back through the same buffered handle in different odd slices.
  std::vector<std::byte> got(ref.size());
  pos = 0;
  while (pos < got.size()) {
    const std::size_t n = std::min<std::size_t>(53 + pos % 613, got.size() - pos);
    ASSERT_TRUE(io.ReadAt(pos, pnc::ByteSpan(got.data() + pos, n)).ok());
    pos += n;
  }
  EXPECT_EQ(got, ref);

  // After Flush, an unbuffered reader sees everything.
  ASSERT_TRUE(io.Flush().ok());
  std::vector<std::byte> raw(ref.size());
  auto f2 = fs.Open("b.dat").value();
  f2.HarnessRead(0, raw, 0.0);
  EXPECT_EQ(raw, ref);
}

TEST(BufferedFile, LargeRequestsChunkedAtBufferSize) {
  pfs::FileSystem fs;
  auto file = fs.Create("c.dat", false).value();
  simmpi::VirtualClock clock;
  netcdf::BufferedFile io(file, &clock, /*buffer_size=*/4096);
  std::vector<std::byte> big(64 * 1024, std::byte{0x5C});
  fs.ResetStats();
  ASSERT_TRUE(io.WriteAt(0, big).ok());
  // 64 KiB at 4 KiB per request = 16 requests: the serial library's
  // user-space buffering granularity (its Figure 6 handicap).
  EXPECT_EQ(fs.stats().write_requests, 16u);
}

TEST(BufferedFile, ReadModifyWriteWithinBlock) {
  pfs::FileSystem fs;
  auto file = fs.Create("d.dat", false).value();
  {
    std::vector<std::byte> bg(8192, std::byte{0xAB});
    file.HarnessWrite(0, bg, 0.0);
  }
  simmpi::VirtualClock clock;
  netcdf::BufferedFile io(file, &clock, 4096);
  const std::byte patch[] = {std::byte{1}, std::byte{2}, std::byte{3}};
  ASSERT_TRUE(io.WriteAt(100, pnc::ConstByteSpan(patch, 3)).ok());
  ASSERT_TRUE(io.Flush().ok());
  std::vector<std::byte> out(8192);
  file.HarnessRead(0, out, 0.0);
  EXPECT_EQ(out[99], std::byte{0xAB});
  EXPECT_EQ(out[100], std::byte{1});
  EXPECT_EQ(out[102], std::byte{3});
  EXPECT_EQ(out[103], std::byte{0xAB});
}

TEST(Discard, TimingPreservedWithoutStorage) {
  // discard_data must not change completion times, only storage.
  pfs::Config a, b;
  b.discard_data = true;
  pfs::FileSystem fs_a(a), fs_b(b);
  auto fa = fs_a.Create("t", false).value();
  auto fb = fs_b.Create("t", false).value();
  std::vector<std::byte> data(1 << 20, std::byte{7});
  const double ta = fa.HarnessWrite(12345, data, 0.0);
  const double tb = fb.HarnessWrite(12345, data, 0.0);
  EXPECT_DOUBLE_EQ(ta, tb);
  EXPECT_EQ(fa.size(), fb.size());
  EXPECT_EQ(fs_b.stats().bytes_written, data.size());
}

}  // namespace
