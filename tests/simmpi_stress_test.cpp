// Stress and fuzz tests for the simmpi substrate: randomized point-to-point
// traffic, mixed collective sequences, datatype pack/unpack against a naive
// reference implementation, and clock monotonicity under load.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "simmpi/datatype.hpp"
#include "simmpi/runtime.hpp"
#include "util/rng.hpp"

namespace simmpi {
namespace {

TEST(Stress, RandomPairwiseTrafficDrainsCompletely) {
  // Every rank sends a deterministic number of messages to every other rank
  // with random sizes/tags, then receives exactly what it is owed, in any
  // arrival order. Nothing may be lost, duplicated, or corrupted.
  const int kProcs = 6, kPerPair = 25;
  simmpi::Run(kProcs, [&](Comm& c) {
    pnc::SplitMix64 rng(7000 + static_cast<std::uint64_t>(c.rank()));
    // Send phase: to each peer, kPerPair messages tagged by sequence.
    for (int peer = 0; peer < c.size(); ++peer) {
      if (peer == c.rank()) continue;
      for (int m = 0; m < kPerPair; ++m) {
        std::vector<std::byte> payload(rng.Below(2048));
        // Header: sender, sequence — payload content derived from both.
        payload.resize(std::max<std::size_t>(payload.size(), 8));
        payload[0] = static_cast<std::byte>(c.rank());
        payload[1] = static_cast<std::byte>(m);
        for (std::size_t i = 2; i < payload.size(); ++i)
          payload[i] = static_cast<std::byte>((c.rank() * 31 + m * 7 + i) & 0xFF);
        c.Send(peer, m, payload);
      }
    }
    // Receive phase: from anyone, any tag, until the books balance.
    std::vector<std::vector<bool>> seen(
        static_cast<std::size_t>(c.size()),
        std::vector<bool>(kPerPair, false));
    const int expect = (c.size() - 1) * kPerPair;
    for (int r = 0; r < expect; ++r) {
      int src = -1, tag = -1;
      auto msg = c.Recv(kAnySource, kAnyTag, &src, &tag);
      ASSERT_GE(msg.size(), 8u);
      const int sender = static_cast<int>(msg[0]);
      const int seq = static_cast<int>(msg[1]);
      EXPECT_EQ(sender, src);
      EXPECT_EQ(seq, tag);
      EXPECT_FALSE(seen[static_cast<std::size_t>(src)][static_cast<std::size_t>(seq)]);
      seen[static_cast<std::size_t>(src)][static_cast<std::size_t>(seq)] = true;
      for (std::size_t i = 2; i < msg.size(); ++i)
        ASSERT_EQ(msg[i],
                  static_cast<std::byte>((src * 31 + seq * 7 + i) & 0xFF));
    }
  });
}

TEST(Stress, MixedCollectiveSequences) {
  // A long deterministic script of interleaved collectives; every rank runs
  // the same sequence (as MPI requires) and all results must agree.
  simmpi::Run(5, [&](Comm& c) {
    pnc::SplitMix64 rng(42);  // same seed on every rank: same script
    long long acc = c.rank();
    for (int step = 0; step < 60; ++step) {
      switch (rng.Below(5)) {
        case 0:
          c.Barrier();
          break;
        case 1: {
          long long v = acc;
          c.BcastValue(v, static_cast<int>(rng.Below(5)));
          acc += v & 0xFF;
          break;
        }
        case 2:
          acc += c.AllreduceSum(static_cast<long long>(c.rank() + step));
          break;
        case 3: {
          auto all = c.Allgather(pnc::ConstByteSpan(
              reinterpret_cast<const std::byte*>(&acc), sizeof(acc)));
          long long sum = 0;
          for (const auto& g : all) {
            long long v;
            std::memcpy(&v, g.data(), sizeof(v));
            sum += v & 0xFFFF;
          }
          acc = sum;
          break;
        }
        case 4: {
          std::vector<std::vector<std::byte>> send(
              static_cast<std::size_t>(c.size()));
          for (auto& s : send)
            s.assign(static_cast<std::size_t>(1 + rng.Below(64)),
                     static_cast<std::byte>(acc & 0xFF));
          auto recv = c.Alltoall(std::move(send));
          for (const auto& r : recv) acc += static_cast<long long>(r.size());
          break;
        }
      }
    }
    // acc evolved identically on every rank only where the script is
    // rank-independent; verify global agreement of a derived value instead:
    const long long lead = c.AllreduceMax(acc);
    const long long trail = c.AllreduceMin(acc);
    // All ranks completed the same 60-step script without deadlock and the
    // spread is finite (sanity, not equality — acc mixes rank values).
    EXPECT_GE(lead, trail);
  });
}

TEST(Stress, ClocksAreMonotoneUnderLoad) {
  simmpi::Run(4, [&](Comm& c) {
    double last = c.clock().now();
    for (int i = 0; i < 200; ++i) {
      if (i % 3 == 0) c.Barrier();
      if (i % 7 == 0) (void)c.AllreduceSum(i);
      if (c.rank() == 0 && i % 5 == 1) c.Send(1, 0, std::vector<std::byte>(64));
      if (c.rank() == 1 && i % 5 == 1) (void)c.Recv(0, 0);
      const double now = c.clock().now();
      ASSERT_GE(now, last);
      last = now;
    }
  });
}

// Datatype fuzz: random compositions packed/unpacked against a naive
// per-byte reference walk of the flattened runs.
class DatatypeFuzzP : public ::testing::TestWithParam<std::uint64_t> {};

Datatype RandomType(pnc::SplitMix64& rng, int depth) {
  const Datatype bases[] = {ByteType(), ShortType(), IntType(), DoubleType()};
  Datatype t = bases[rng.Below(4)];
  const int layers = 1 + static_cast<int>(rng.Below(depth));
  for (int l = 0; l < layers; ++l) {
    switch (rng.Below(4)) {
      case 0:
        t = Datatype::Contiguous(1 + rng.Below(4), t);
        break;
      case 1: {
        const std::uint64_t blocklen = 1 + rng.Below(3);
        const std::uint64_t stride = blocklen + rng.Below(4);
        t = Datatype::Vector(1 + rng.Below(4), blocklen, stride, t);
        break;
      }
      case 2: {
        std::vector<std::uint64_t> lens, offs;
        std::uint64_t cursor = 0;
        const auto n = 1 + rng.Below(4);
        for (std::uint64_t i = 0; i < n; ++i) {
          lens.push_back(1 + rng.Below(3));
          offs.push_back(cursor);
          cursor += (lens.back() + rng.Below(3)) * t.extent();
        }
        t = Datatype::Hindexed(
            lens, std::vector<std::uint64_t>(offs.begin(), offs.end()), t);
        break;
      }
      case 3: {
        std::vector<std::uint64_t> sizes, subs, starts;
        for (int d = 0; d < 2; ++d) {
          const std::uint64_t size = 2 + rng.Below(4);
          const std::uint64_t sub = 1 + rng.Below(size);
          sizes.push_back(size);
          subs.push_back(sub);
          starts.push_back(rng.Below(size - sub + 1));
        }
        t = Datatype::Subarray(sizes, subs, starts, t).value();
        break;
      }
    }
    if (t.size() > 1 << 16) break;  // keep the fuzz bounded
  }
  return t;
}

TEST_P(DatatypeFuzzP, PackMatchesFlattenedReference) {
  pnc::SplitMix64 rng(GetParam());
  Datatype t = RandomType(rng, 3);
  const std::uint64_t count = 1 + rng.Below(3);

  std::vector<std::byte> base(t.extent() * count);
  for (auto& b : base) b = static_cast<std::byte>(rng.Next() & 0xFF);

  // Library pack.
  std::vector<std::byte> packed(t.size() * count);
  t.Pack(base.data(), count, packed.data());

  // Reference: walk the flattened runs instance by instance.
  std::vector<std::byte> ref(t.size() * count);
  std::size_t w = 0;
  for (std::uint64_t inst = 0; inst < count; ++inst) {
    for (const auto& run : t.Flatten()) {
      for (std::uint64_t i = 0; i < run.len; ++i)
        ref[w++] = base[inst * t.extent() + run.offset + i];
    }
  }
  ASSERT_EQ(packed, ref);

  // Unpack into a fresh buffer and re-pack: must be a fixed point.
  std::vector<std::byte> scatter(base.size(), std::byte{0});
  t.Unpack(packed.data(), count, scatter.data());
  std::vector<std::byte> repacked(packed.size());
  t.Pack(scatter.data(), count, repacked.data());
  EXPECT_EQ(repacked, packed);

  // Size/flatten consistency.
  std::uint64_t flat_bytes = 0;
  for (const auto& run : t.Flatten()) flat_bytes += run.len;
  EXPECT_EQ(flat_bytes, t.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatatypeFuzzP,
                         ::testing::Range<std::uint64_t>(1, 49));

}  // namespace
}  // namespace simmpi
