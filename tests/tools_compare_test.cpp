// Tests for dataset comparison (ncmpidiff) and copying (nccopy).
#include "tools/compare.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace nctools {
namespace {

using ncformat::NcType;

netcdf::Dataset MakeBase(pfs::FileSystem& fs, const std::string& path) {
  auto ds = netcdf::Dataset::Create(fs, path).value();
  const int t = ds.DefDim("time", netcdf::kUnlimited).value();
  const int x = ds.DefDim("x", 4).value();
  const int v = ds.DefVar("series", NcType::kFloat, {t, x}).value();
  const int c = ds.DefVar("label", NcType::kChar, {x}).value();
  EXPECT_TRUE(ds.PutAttText(netcdf::kGlobal, "title", "base").ok());
  EXPECT_TRUE(ds.PutAttText(v, "units", "K").ok());
  EXPECT_TRUE(ds.EndDef().ok());
  std::vector<float> sv(2 * 4);
  std::iota(sv.begin(), sv.end(), 0.0f);
  EXPECT_TRUE(ds.PutVar<float>(v, sv).ok());
  const std::string s = "abcd";
  EXPECT_TRUE(ds.PutVar<char>(c, {s.data(), 4}).ok());
  return ds;
}

TEST(Compare, IdenticalFilesAreEqual) {
  pfs::FileSystem fs;
  auto a = MakeBase(fs, "a.nc");
  auto b = MakeBase(fs, "b.nc");
  auto r = CompareDatasets(a, b).value();
  EXPECT_TRUE(r.equal) << r.differences.front();
  EXPECT_TRUE(r.differences.empty());
}

TEST(Compare, DataDifferenceLocated) {
  pfs::FileSystem fs;
  auto a = MakeBase(fs, "a.nc");
  auto b = MakeBase(fs, "b.nc");
  const std::uint64_t idx[] = {1, 2};
  ASSERT_TRUE(b.PutVar1<float>(b.VarId("series").value(), idx, 99.0f).ok());
  auto r = CompareDatasets(a, b).value();
  ASSERT_FALSE(r.equal);
  ASSERT_EQ(r.differences.size(), 1u);
  EXPECT_NE(r.differences[0].find("series"), std::string::npos);
  EXPECT_NE(r.differences[0].find("index 6"), std::string::npos);
}

TEST(Compare, ToleranceAbsorbsSmallDeltas) {
  pfs::FileSystem fs;
  auto a = MakeBase(fs, "a.nc");
  auto b = MakeBase(fs, "b.nc");
  const std::uint64_t idx[] = {0, 0};
  ASSERT_TRUE(b.PutVar1<float>(b.VarId("series").value(), idx, 0.0005f).ok());
  DiffOptions strict;
  EXPECT_FALSE(CompareDatasets(a, b, strict).value().equal);
  DiffOptions loose;
  loose.tolerance = 0.001;
  EXPECT_TRUE(CompareDatasets(a, b, loose).value().equal);
}

TEST(Compare, SchemaDifferencesReported) {
  pfs::FileSystem fs;
  auto a = MakeBase(fs, "a.nc");
  auto ds = netcdf::Dataset::Create(fs, "c.nc").value();
  (void)ds.DefDim("time", netcdf::kUnlimited);
  (void)ds.DefDim("x", 5);                               // length differs
  (void)ds.DefVar("series", NcType::kDouble,             // type differs
                  {0, 1});
  (void)ds.PutAttText(netcdf::kGlobal, "title", "other");  // value differs
  ASSERT_TRUE(ds.EndDef().ok());
  DiffOptions header_only;
  header_only.compare_data = false;
  auto r = CompareDatasets(a, ds, header_only).value();
  ASSERT_FALSE(r.equal);
  // x length, title value, series type, label missing.
  EXPECT_GE(r.differences.size(), 4u);
}

TEST(Compare, TextDataCompared) {
  pfs::FileSystem fs;
  auto a = MakeBase(fs, "a.nc");
  auto b = MakeBase(fs, "b.nc");
  const std::string s = "abXd";
  ASSERT_TRUE(b.PutVar<char>(b.VarId("label").value(), {s.data(), 4}).ok());
  auto r = CompareDatasets(a, b).value();
  ASSERT_FALSE(r.equal);
  EXPECT_NE(r.differences[0].find("label"), std::string::npos);
}

TEST(Copy, PreservesEverything) {
  pfs::FileSystem fs;
  auto a = MakeBase(fs, "src.nc");
  ASSERT_TRUE(a.Close().ok());
  ASSERT_TRUE(CopyDataset(fs, "src.nc", "dst.nc").ok());
  auto src = netcdf::Dataset::Open(fs, "src.nc", false).value();
  auto dst = netcdf::Dataset::Open(fs, "dst.nc", false).value();
  auto r = CompareDatasets(src, dst).value();
  EXPECT_TRUE(r.equal) << r.differences.front();
}

TEST(Copy, ConvertsBetweenCdfVersions) {
  pfs::FileSystem fs;
  auto a = MakeBase(fs, "src.nc");  // CDF-2 by default
  ASSERT_TRUE(a.Close().ok());
  CopyOptions v1;
  v1.use_cdf2 = false;
  ASSERT_TRUE(CopyDataset(fs, "src.nc", "v1.nc", v1).ok());
  auto out = netcdf::Dataset::Open(fs, "v1.nc", false).value();
  EXPECT_EQ(out.header().version, 1);
  auto src = netcdf::Dataset::Open(fs, "src.nc", false).value();
  EXPECT_TRUE(CompareDatasets(src, out).value().equal);
}

TEST(Copy, MissingSourceFails) {
  pfs::FileSystem fs;
  EXPECT_FALSE(CopyDataset(fs, "nope.nc", "out.nc").ok());
}

}  // namespace
}  // namespace nctools
