// Tests for the FLASH I/O benchmark module: data generation, guard-cell
// handling, both backends producing correct files, and cross-backend
// equivalence of the written values.
#include "flash/flash.hpp"

#include <gtest/gtest.h>

#include "netcdf/dataset.hpp"
#include "simmpi/runtime.hpp"

namespace flashio {
namespace {

using simmpi::Comm;

FlashConfig TinyConfig() {
  FlashConfig cfg;
  cfg.nxb = cfg.nyb = cfg.nzb = 4;
  cfg.nguard = 2;
  cfg.blocks_per_proc = 3;
  cfg.nvar = 5;
  cfg.nplot = 2;
  return cfg;
}

TEST(FlashData, GuardCellsHoldSentinel) {
  FlashConfig cfg = TinyConfig();
  FlashData data(cfg, /*rank=*/1);
  std::vector<double> u;
  data.FillUnk(0, u);
  EXPECT_EQ(u.size(), 3u * 8 * 8 * 8);
  EXPECT_EQ(u[0], -1.0);  // corner guard cell
  // First interior cell of block 0.
  const std::uint64_t g = 2, gd = 8;
  EXPECT_GT(u[(g * gd + g) * gd + g], 0.0);
}

TEST(FlashData, PlotPackExcludesGuards) {
  FlashConfig cfg = TinyConfig();
  FlashData data(cfg, 0);
  auto packed = data.PackPlotVar(1);
  EXPECT_EQ(packed.size(), 3u * 4 * 4 * 4);
  for (float v : packed) EXPECT_GE(v, 0.0f);  // no sentinel leaked
}

TEST(FlashData, CornerPackUsesGuardNeighbours) {
  FlashConfig cfg = TinyConfig();
  FlashData data(cfg, 0);
  auto corners = data.PackCornerVar(0);
  EXPECT_EQ(corners.size(), 3u * 5 * 5 * 5);
  // Interior corner (1,1,1) of block 0: average of 8 interior cells, all
  // positive — and boundary corner (0,0,0) mixes guard sentinels (-1), so
  // they must differ.
  EXPECT_NE(corners[0], corners[(1 * 5 + 1) * 5 + 1]);
}

TEST(FlashData, BytesPerProcMatchesPaperScale) {
  // Paper §5.2: 8x8x8 checkpoint ~8 MB/proc, 16x16x16 ~60 MB/proc;
  // plotfiles ~1 MB and ~6 MB.
  FlashConfig cfg8;
  EXPECT_NEAR(static_cast<double>(BytesPerProc(cfg8, FileKind::kCheckpoint)),
              8.0 * (1 << 20), 1.5 * (1 << 20));
  EXPECT_NEAR(static_cast<double>(BytesPerProc(cfg8, FileKind::kPlotfile)),
              1.0 * (1 << 20), 0.4 * (1 << 20));
  FlashConfig cfg16;
  cfg16.nxb = cfg16.nyb = cfg16.nzb = 16;
  EXPECT_NEAR(static_cast<double>(BytesPerProc(cfg16, FileKind::kCheckpoint)),
              60.0 * (1 << 20), 4.0 * (1 << 20));
  EXPECT_NEAR(static_cast<double>(BytesPerProc(cfg16, FileKind::kPlotfile)),
              6.0 * (1 << 20), 1.0 * (1 << 20));
}

class FlashKindP : public ::testing::TestWithParam<FileKind> {};

TEST_P(FlashKindP, PnetcdfFileValidates) {
  FlashConfig cfg = TinyConfig();
  pfs::FileSystem fs;
  const int nprocs = 4;
  simmpi::Run(nprocs, [&](Comm& c) {
    FlashData data(cfg, c.rank());
    ASSERT_TRUE(WriteFlashPnetcdf(c, fs, "flash.nc", data, GetParam(),
                                  simmpi::NullInfo())
                    .ok());
  });
  EXPECT_TRUE(
      ValidateFlashPnetcdf(fs, "flash.nc", cfg, nprocs, GetParam()).ok());
}

TEST_P(FlashKindP, BackendsWriteIdenticalValues) {
  FlashConfig cfg = TinyConfig();
  pfs::FileSystem fs;
  const int nprocs = 2;
  simmpi::Run(nprocs, [&](Comm& c) {
    FlashData data(cfg, c.rank());
    ASSERT_TRUE(WriteFlashPnetcdf(c, fs, "f.nc", data, GetParam(),
                                  simmpi::NullInfo())
                    .ok());
    ASSERT_TRUE(WriteFlashHdf5lite(c, fs, "f.h5l", data, GetParam(),
                                   simmpi::NullInfo())
                    .ok());
  });

  // Compare variable 0 element-by-element across the two formats.
  auto nc = netcdf::Dataset::Open(fs, "f.nc", false).value();
  const bool ckpt = GetParam() == FileKind::kCheckpoint;
  const char* vname = ckpt ? "var01" : "plot01";
  const int vid = nc.VarId(vname).value();
  const auto shape = nc.header().VarShape(vid);
  const std::uint64_t n = pnc::ShapeProduct(shape);
  std::vector<double> from_nc(n);
  ASSERT_TRUE(nc.GetVar<double>(vid, from_nc).ok());

  simmpi::Run(1, [&](Comm& c) {
    auto h5 = hdf5lite::File::Open(c, fs, "f.h5l", false, simmpi::NullInfo())
                  .value();
    auto ds = h5.OpenDataset(vname).value();
    EXPECT_EQ(ds.dims(), shape);
    std::vector<std::uint64_t> start(shape.size(), 0);
    if (ckpt) {
      std::vector<double> from_h5(n);
      ASSERT_TRUE(ds.Read(start, shape, from_h5.data()).ok());
      EXPECT_EQ(from_h5, from_nc);
    } else {
      std::vector<float> from_h5(n);
      ASSERT_TRUE(ds.Read(start, shape, from_h5.data()).ok());
      for (std::uint64_t i = 0; i < n; ++i)
        EXPECT_EQ(static_cast<double>(from_h5[i]), from_nc[i]) << i;
    }
    ASSERT_TRUE(ds.Close().ok());
    ASSERT_TRUE(h5.Close().ok());
  });
}

INSTANTIATE_TEST_SUITE_P(Kinds, FlashKindP,
                         ::testing::Values(FileKind::kCheckpoint,
                                           FileKind::kPlotfile,
                                           FileKind::kPlotfileCorners),
                         [](const auto& info) {
                           switch (info.param) {
                             case FileKind::kCheckpoint: return "checkpoint";
                             case FileKind::kPlotfile: return "plotfile";
                             case FileKind::kPlotfileCorners: return "corners";
                           }
                           return "?";
                         });

TEST(FlashPerf, PnetcdfBeatsHdf5liteOnPlotfiles) {
  // The paper's headline: "PnetCDF ... outperforms parallel HDF5 in every
  // case, more than doubling the overall I/O rate in many" — most visible
  // on the small plotfiles where per-dataset overhead dominates.
  FlashConfig cfg;  // full 8x8x8 configuration
  cfg.blocks_per_proc = 20;  // trimmed for test runtime
  pfs::Config pcfg;
  pcfg.num_servers = 2;  // ASCI Frost had a 2-node I/O system
  double t_pnc = 0, t_h5 = 0;
  for (const bool use_pnc : {true, false}) {
    pfs::FileSystem fs(pcfg);
    auto res = simmpi::Run(4, [&](Comm& c) {
      FlashData data(cfg, c.rank());
      if (use_pnc) {
        ASSERT_TRUE(WriteFlashPnetcdf(c, fs, "p.nc", data,
                                      FileKind::kPlotfile, simmpi::NullInfo())
                        .ok());
      } else {
        ASSERT_TRUE(WriteFlashHdf5lite(c, fs, "p.h5l", data,
                                       FileKind::kPlotfile, simmpi::NullInfo())
                        .ok());
      }
    });
    (use_pnc ? t_pnc : t_h5) = res.max_time_ns;
  }
  EXPECT_LT(t_pnc, t_h5);
}

TEST(FlashRestart, CheckpointRoundTripsThroughParallelRead) {
  // Write a checkpoint, then restart: collectively read the unknowns back
  // into guarded storage and compare interiors with the generator; guard
  // cells must remain at the sentinel for the halo exchange to fill.
  FlashConfig cfg = TinyConfig();
  pfs::FileSystem fs;
  simmpi::Run(3, [&](Comm& c) {
    FlashData data(cfg, c.rank());
    ASSERT_TRUE(WriteFlashPnetcdf(c, fs, "chk.nc", data,
                                  FileKind::kCheckpoint, simmpi::NullInfo())
                    .ok());

    auto ds = pnetcdf::Dataset::Open(c, fs, "chk.nc", false,
                                     simmpi::NullInfo())
                  .value();
    std::vector<double> restored, expected;
    for (int v = 0; v < cfg.nvar; ++v) {
      ASSERT_TRUE(RestartReadUnk(c, ds, cfg, v, restored).ok());
      data.FillUnk(v, expected);
      ASSERT_EQ(restored, expected) << "var " << v << " rank " << c.rank();
    }
    ASSERT_TRUE(ds.Close().ok());
  });
}

}  // namespace
}  // namespace flashio
