// Tests for access validation and the access-region generator: the mapping
// from (start, count, stride) to file byte extents, including record
// variable interleaving (Figure 1 of the paper).
#include "format/layout.hpp"

#include <gtest/gtest.h>

namespace ncformat {
namespace {

Header Make3D() {
  Header h;
  h.dims = {{"z", 4}, {"y", 3}, {"x", 5}};
  h.vars.resize(1);
  h.vars[0] = {"tt", {0, 1, 2}, {}, NcType::kDouble, 0, 0};
  EXPECT_TRUE(h.ComputeLayout().ok());
  return h;
}

Header MakeRec() {
  Header h;
  h.dims = {{"t", kUnlimitedLen}, {"x", 5}};
  h.vars.resize(2);
  h.vars[0] = {"a", {0, 1}, {}, NcType::kInt, 0, 0};     // 20 B/record
  h.vars[1] = {"b", {0}, {}, NcType::kDouble, 0, 0};     // 8 B/record
  h.numrecs = 4;
  EXPECT_TRUE(h.ComputeLayout().ok());
  return h;
}

std::vector<pnc::Extent> Regions(const Header& h, int varid,
                                 std::vector<std::uint64_t> start,
                                 std::vector<std::uint64_t> count,
                                 std::vector<std::uint64_t> stride = {}) {
  std::vector<pnc::Extent> out;
  AccessRegions(h, varid, start, count, stride, out);
  return out;
}

TEST(Validate, RankMismatch) {
  Header h = Make3D();
  const std::uint64_t s2[] = {0, 0};
  const std::uint64_t c2[] = {1, 1};
  EXPECT_EQ(ValidateAccess(h, 0, s2, c2, {}, AccessKind::kRead).code(),
            pnc::Err::kInvalidArg);
}

TEST(Validate, StartBeyondBound) {
  Header h = Make3D();
  const std::uint64_t s[] = {4, 0, 0};
  const std::uint64_t c[] = {1, 1, 1};
  EXPECT_EQ(ValidateAccess(h, 0, s, c, {}, AccessKind::kRead).code(),
            pnc::Err::kInvalidCoords);
}

TEST(Validate, EdgeOverrun) {
  Header h = Make3D();
  const std::uint64_t s[] = {2, 0, 0};
  const std::uint64_t c[] = {3, 1, 1};
  EXPECT_EQ(ValidateAccess(h, 0, s, c, {}, AccessKind::kRead).code(),
            pnc::Err::kEdge);
}

TEST(Validate, StrideOverrunAndZero) {
  Header h = Make3D();
  const std::uint64_t s[] = {0, 0, 0};
  const std::uint64_t c[] = {2, 1, 1};
  const std::uint64_t bad[] = {4, 1, 1};  // 0 + 1*4 = 4 > 3 max index
  EXPECT_EQ(ValidateAccess(h, 0, s, c, bad, AccessKind::kRead).code(),
            pnc::Err::kEdge);
  const std::uint64_t zero[] = {1, 1, 0};
  EXPECT_EQ(ValidateAccess(h, 0, s, c, zero, AccessKind::kRead).code(),
            pnc::Err::kStride);
}

TEST(Validate, RecordWritesMayGrow) {
  Header h = MakeRec();
  const std::uint64_t s[] = {10, 0};
  const std::uint64_t c[] = {5, 5};
  EXPECT_TRUE(ValidateAccess(h, 0, s, c, {}, AccessKind::kWrite).ok());
  EXPECT_EQ(ValidateAccess(h, 0, s, c, {}, AccessKind::kRead).code(),
            pnc::Err::kInvalidCoords);
}

TEST(Validate, BadVarid) {
  Header h = Make3D();
  EXPECT_EQ(ValidateAccess(h, 7, {}, {}, {}, AccessKind::kRead).code(),
            pnc::Err::kNotVar);
}

TEST(Regions, WholeArrayIsOneExtent) {
  Header h = Make3D();
  auto r = Regions(h, 0, {0, 0, 0}, {4, 3, 5});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].offset, h.vars[0].begin);
  EXPECT_EQ(r[0].len, 4u * 3 * 5 * 8);
}

TEST(Regions, SingleElement) {
  Header h = Make3D();
  auto r = Regions(h, 0, {1, 2, 3}, {1, 1, 1});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].offset, h.vars[0].begin + ((1 * 3 + 2) * 5 + 3) * 8);
  EXPECT_EQ(r[0].len, 8u);
}

TEST(Regions, RowSubarrayCoalesces) {
  Header h = Make3D();
  // Full rows of x for one (z,y) pair per region; contiguous y rows merge.
  auto r = Regions(h, 0, {1, 0, 0}, {2, 3, 5});
  ASSERT_EQ(r.size(), 1u);  // two full z-slabs are contiguous
  EXPECT_EQ(r[0].offset, h.vars[0].begin + 1u * 3 * 5 * 8);
  EXPECT_EQ(r[0].len, 2u * 3 * 5 * 8);
}

TEST(Regions, PartialRowsStayApart) {
  Header h = Make3D();
  auto r = Regions(h, 0, {0, 0, 1}, {1, 3, 2});
  ASSERT_EQ(r.size(), 3u);
  for (std::uint64_t y = 0; y < 3; ++y) {
    EXPECT_EQ(r[y].offset, h.vars[0].begin + (y * 5 + 1) * 8);
    EXPECT_EQ(r[y].len, 16u);
  }
}

TEST(Regions, StridedInnermostSplitsPerElement) {
  Header h = Make3D();
  auto r = Regions(h, 0, {0, 0, 0}, {1, 1, 3}, {1, 1, 2});
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[1].offset, h.vars[0].begin + 2 * 8);
  EXPECT_EQ(r[2].offset, h.vars[0].begin + 4 * 8);
}

TEST(Regions, StridedOuterDim) {
  Header h = Make3D();
  auto r = Regions(h, 0, {0, 0, 0}, {2, 1, 5}, {2, 1, 1});
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].offset, h.vars[0].begin);
  EXPECT_EQ(r[1].offset, h.vars[0].begin + 2u * 3 * 5 * 8);
}

TEST(Regions, RecordVarInterleaving) {
  Header h = MakeRec();
  // Records of var a: begin_a + r * recsize, 20 bytes each.
  auto r = Regions(h, 0, {0, 0}, {3, 5});
  ASSERT_EQ(r.size(), 3u);
  for (std::uint64_t rec = 0; rec < 3; ++rec) {
    EXPECT_EQ(r[rec].offset, h.vars[0].begin + rec * h.recsize());
    EXPECT_EQ(r[rec].len, 20u);
  }
}

TEST(Regions, RecordScalarVar) {
  Header h = MakeRec();
  auto r = Regions(h, 1, {1}, {2});
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].offset, h.vars[1].begin + 1 * h.recsize());
  EXPECT_EQ(r[1].offset, h.vars[1].begin + 2 * h.recsize());
  EXPECT_EQ(r[0].len, 8u);
}

TEST(Regions, SoleRecordVarRecordsCoalesce) {
  Header h;
  h.dims = {{"t", kUnlimitedLen}, {"x", 5}};
  h.vars.resize(1);
  h.vars[0] = {"only", {0, 1}, {}, NcType::kDouble, 0, 0};
  h.numrecs = 3;
  ASSERT_TRUE(h.ComputeLayout().ok());
  // recsize == 40 == per-record bytes, so consecutive records are adjacent.
  auto r = Regions(h, 0, {0, 0}, {3, 5});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].len, 120u);
}

TEST(Regions, StridedRecords) {
  Header h = MakeRec();
  auto r = Regions(h, 0, {0, 0}, {2, 5}, {3, 1});
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[1].offset, h.vars[0].begin + 3 * h.recsize());
}

TEST(Regions, ScalarVariable) {
  Header h;
  h.vars.resize(1);
  h.vars[0] = {"s", {}, {}, NcType::kFloat, 0, 0};
  ASSERT_TRUE(h.ComputeLayout().ok());
  auto r = Regions(h, 0, {}, {});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].len, 4u);
}

TEST(Regions, ZeroCountProducesNothing) {
  Header h = Make3D();
  EXPECT_TRUE(Regions(h, 0, {0, 0, 0}, {0, 3, 5}).empty());
}

TEST(Regions, TotalBytesMatchElementCount) {
  Header h = Make3D();
  const std::vector<std::uint64_t> start{1, 0, 2};
  const std::vector<std::uint64_t> count{2, 2, 2};
  const std::vector<std::uint64_t> stride{2, 2, 2};
  auto r = Regions(h, 0, start, count, stride);
  std::uint64_t total = 0;
  for (const auto& e : r) total += e.len;
  EXPECT_EQ(total, AccessElems(count) * 8);
  // Extents must be sorted and non-overlapping.
  for (std::size_t i = 1; i < r.size(); ++i)
    EXPECT_GE(r[i].offset, r[i - 1].end());
}

}  // namespace
}  // namespace ncformat
