// Tests for memory<->external type conversion: identity paths, widening and
// narrowing conversions, NC_ERANGE semantics, and the char/number wall.
#include "format/convert.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ncformat {
namespace {

template <typename T>
std::vector<T> RoundTrip(const std::vector<T>& in, NcType ext,
                         pnc::Status* to_status = nullptr,
                         pnc::Status* from_status = nullptr) {
  std::vector<std::byte> wire(in.size() * TypeSize(ext));
  auto s1 = ToExternal<T>(std::span<const T>(in), ext, wire.data());
  std::vector<T> out(in.size());
  auto s2 = FromExternal<T>(wire.data(), ext, std::span<T>(out));
  if (to_status) *to_status = s1;
  if (from_status) *from_status = s2;
  return out;
}

TEST(Identity, AllTypes) {
  EXPECT_EQ(RoundTrip<double>({1.5, -2.25, 0.0}, NcType::kDouble),
            (std::vector<double>{1.5, -2.25, 0.0}));
  EXPECT_EQ(RoundTrip<float>({3.5f, -1e30f}, NcType::kFloat),
            (std::vector<float>{3.5f, -1e30f}));
  EXPECT_EQ(RoundTrip<std::int32_t>({1, -2, 2147483647}, NcType::kInt),
            (std::vector<std::int32_t>{1, -2, 2147483647}));
  EXPECT_EQ(RoundTrip<std::int16_t>({-32768, 32767}, NcType::kShort),
            (std::vector<std::int16_t>{-32768, 32767}));
  EXPECT_EQ(RoundTrip<signed char>({-127, 100}, NcType::kByte),
            (std::vector<signed char>{-127, 100}));
  EXPECT_EQ(RoundTrip<char>({'h', 'i'}, NcType::kChar),
            (std::vector<char>{'h', 'i'}));
}

TEST(Widening, IntToDoubleExact) {
  EXPECT_EQ(RoundTrip<std::int32_t>({123456789, -42}, NcType::kDouble),
            (std::vector<std::int32_t>{123456789, -42}));
}

TEST(Widening, ShortToFloatExact) {
  EXPECT_EQ(RoundTrip<std::int16_t>({-12345, 31000}, NcType::kFloat),
            (std::vector<std::int16_t>{-12345, 31000}));
}

TEST(Narrowing, DoubleToShortInRange) {
  pnc::Status to, from;
  auto out = RoundTrip<double>({100.0, -200.0}, NcType::kShort, &to, &from);
  EXPECT_TRUE(to.ok());
  EXPECT_EQ(out, (std::vector<double>{100.0, -200.0}));
}

TEST(Narrowing, TruncatesFraction) {
  std::vector<std::byte> wire(4);
  const double v = 3.75;
  ASSERT_TRUE(ToExternal<double>({&v, 1}, NcType::kInt, wire.data()).ok());
  std::int32_t back;
  ASSERT_TRUE(
      FromExternal<std::int32_t>(wire.data(), NcType::kInt, {&back, 1}).ok());
  EXPECT_EQ(back, 3);
}

TEST(Range, OverflowReportedButConversionCompletes) {
  const std::vector<double> vals{1e10, 5.0};
  std::vector<std::byte> wire(vals.size() * 2);
  auto s = ToExternal<double>(std::span<const double>(vals), NcType::kShort,
                              wire.data());
  EXPECT_EQ(s.code(), pnc::Err::kRange);
  // Second value still converted correctly.
  std::vector<std::int16_t> back(2);
  ASSERT_TRUE(FromExternal<std::int16_t>(wire.data(), NcType::kShort,
                                         std::span<std::int16_t>(back))
                  .ok());
  EXPECT_EQ(back[1], 5);
}

TEST(Range, NanToIntegerIsRangeError) {
  const double v = std::nan("");
  std::vector<std::byte> wire(4);
  EXPECT_EQ(ToExternal<double>({&v, 1}, NcType::kInt, wire.data()).code(),
            pnc::Err::kRange);
}

TEST(Range, NanToFloatPropagates) {
  const double v = std::nan("");
  std::vector<std::byte> wire(4);
  EXPECT_TRUE(ToExternal<double>({&v, 1}, NcType::kFloat, wire.data()).ok());
  float back;
  ASSERT_TRUE(FromExternal<float>(wire.data(), NcType::kFloat, {&back, 1}).ok());
  EXPECT_TRUE(std::isnan(back));
}

TEST(Range, ReadSideOverflowReported) {
  // A large int stored externally, read back as signed char.
  const std::int32_t v = 100000;
  std::vector<std::byte> wire(4);
  ASSERT_TRUE(ToExternal<std::int32_t>({&v, 1}, NcType::kInt, wire.data()).ok());
  signed char back;
  EXPECT_EQ(
      FromExternal<signed char>(wire.data(), NcType::kInt, {&back, 1}).code(),
      pnc::Err::kRange);
}

TEST(CharWall, NumericToCharRejected) {
  const std::int32_t v = 65;
  std::vector<std::byte> wire(4);
  EXPECT_EQ(ToExternal<std::int32_t>({&v, 1}, NcType::kChar, wire.data()).code(),
            pnc::Err::kBadType);
  std::int32_t back;
  EXPECT_EQ(
      FromExternal<std::int32_t>(wire.data(), NcType::kChar, {&back, 1}).code(),
      pnc::Err::kBadType);
}

TEST(CharWall, CharToNumericRejected) {
  const char c = 'x';
  std::vector<std::byte> wire(8);
  EXPECT_EQ(ToExternal<char>({&c, 1}, NcType::kDouble, wire.data()).code(),
            pnc::Err::kBadType);
}

TEST(Wire, ExternalBytesAreBigEndian) {
  const std::int32_t v = 0x01020304;
  std::vector<std::byte> wire(4);
  ASSERT_TRUE(ToExternal<std::int32_t>({&v, 1}, NcType::kInt, wire.data()).ok());
  EXPECT_EQ(wire[0], std::byte{0x01});
  EXPECT_EQ(wire[3], std::byte{0x04});
  // And via a converting path too.
  const double d = 1.0;
  std::vector<std::byte> w2(4);
  ASSERT_TRUE(ToExternal<double>({&d, 1}, NcType::kFloat, w2.data()).ok());
  EXPECT_EQ(w2[0], std::byte{0x3F});  // 1.0f = 0x3F800000
  EXPECT_EQ(w2[1], std::byte{0x80});
}

TEST(LongLong, RoundTripThroughDouble) {
  EXPECT_EQ(RoundTrip<long long>({1LL << 40, -5}, NcType::kDouble),
            (std::vector<long long>{1LL << 40, -5}));
}

TEST(LongLong, OverflowIntoIntReported) {
  const long long v = 1LL << 40;
  std::vector<std::byte> wire(4);
  EXPECT_EQ(ToExternal<long long>({&v, 1}, NcType::kInt, wire.data()).code(),
            pnc::Err::kRange);
}

}  // namespace
}  // namespace ncformat
