// Tests for the nfmpi_* Fortran-flavor interface: dimension-order reversal
// and 1-based starts against the same file seen through the C-order APIs.
#include "pnetcdf/nfmpi.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "netcdf/dataset.hpp"
#include "simmpi/runtime.hpp"

namespace pnetcdf::fapi {
namespace {

using simmpi::Comm;

TEST(Nfmpi, FortranOrderMatchesCOrderOnDisk) {
  // A Fortran program declaring A(nx, ny) column-major and writing it with
  // nfmpi (dims given fastest-first, starts 1-based) must produce the same
  // file as a C program declaring a row-major [ny][nx] array.
  pfs::FileSystem fs;
  const MPI_Offset kNx = 4, kNy = 3;
  simmpi::Run(1, [&](Comm& c) {
    int ncid;
    ASSERT_EQ(nfmpi_create(c, fs, "f.nc", NF_CLOBBER, simmpi::NullInfo(),
                           ncid),
              NF_NOERR);
    int dx, dy, vid;
    ASSERT_EQ(nfmpi_def_dim(ncid, "x", kNx, dx), NF_NOERR);
    ASSERT_EQ(nfmpi_def_dim(ncid, "y", kNy, dy), NF_NOERR);
    // Fortran dimid order: (x, y) with x fastest.
    const int dims[] = {dx, dy};
    ASSERT_EQ(nfmpi_def_var(ncid, "a", NF_INT, 2, dims, vid), NF_NOERR);
    ASSERT_EQ(nfmpi_enddef(ncid), NF_NOERR);

    // Column-major A(x, y): A(x,y) = 10*y + x, stored x-fastest.
    std::vector<int> a(static_cast<std::size_t>(kNx * kNy));
    for (MPI_Offset y = 0; y < kNy; ++y)
      for (MPI_Offset x = 0; x < kNx; ++x)
        a[static_cast<std::size_t>(y * kNx + x)] =
            static_cast<int>(10 * y + x);
    const MPI_Offset start[] = {1, 1};  // 1-based, Fortran order (x, y)
    const MPI_Offset count[] = {kNx, kNy};
    ASSERT_EQ(nfmpi_put_vara_int_all(ncid, vid, start, count, a.data()),
              NF_NOERR);
    ASSERT_EQ(nfmpi_close(ncid), NF_NOERR);
  });

  // Serial (C-order) view: var a has shape (y, x) and value 10*y + x.
  auto ds = netcdf::Dataset::Open(fs, "f.nc", false).value();
  const auto& v = ds.header().vars[0];
  EXPECT_EQ(ds.header().dims[static_cast<std::size_t>(v.dimids[0])].name, "y");
  EXPECT_EQ(ds.header().dims[static_cast<std::size_t>(v.dimids[1])].name, "x");
  std::vector<std::int32_t> c_order(static_cast<std::size_t>(kNx * kNy));
  ASSERT_TRUE(ds.GetVar<std::int32_t>(0, c_order).ok());
  for (MPI_Offset y = 0; y < kNy; ++y)
    for (MPI_Offset x = 0; x < kNx; ++x)
      EXPECT_EQ(c_order[static_cast<std::size_t>(y * kNx + x)], 10 * y + x);
}

TEST(Nfmpi, OneBasedSubarrayAcrossRanks) {
  pfs::FileSystem fs;
  const MPI_Offset kNx = 8, kNy = 4;
  simmpi::Run(4, [&](Comm& c) {
    int ncid;
    ASSERT_EQ(nfmpi_create(c, fs, "s.nc", NF_CLOBBER, simmpi::NullInfo(),
                           ncid),
              NF_NOERR);
    int dx, dy, vid;
    ASSERT_EQ(nfmpi_def_dim(ncid, "x", kNx, dx), NF_NOERR);
    ASSERT_EQ(nfmpi_def_dim(ncid, "y", kNy, dy), NF_NOERR);
    const int dims[] = {dx, dy};
    ASSERT_EQ(nfmpi_def_var(ncid, "u", NF_DOUBLE, 2, dims, vid), NF_NOERR);
    ASSERT_EQ(nfmpi_enddef(ncid), NF_NOERR);

    // Each rank owns one y row (Fortran: A(:, my_y)).
    const MPI_Offset start[] = {1, c.rank() + 1};
    const MPI_Offset count[] = {kNx, 1};
    std::vector<double> row(static_cast<std::size_t>(kNx));
    std::iota(row.begin(), row.end(), 100.0 * c.rank());
    ASSERT_EQ(nfmpi_put_vara_double_all(ncid, vid, start, count, row.data()),
              NF_NOERR);

    std::vector<double> back(static_cast<std::size_t>(kNx), -1);
    ASSERT_EQ(nfmpi_get_vara_double_all(ncid, vid, start, count, back.data()),
              NF_NOERR);
    EXPECT_EQ(back, row);
    ASSERT_EQ(nfmpi_close(ncid), NF_NOERR);
  });

  auto ds = netcdf::Dataset::Open(fs, "s.nc", false).value();
  std::vector<double> all(static_cast<std::size_t>(kNx * kNy));
  ASSERT_TRUE(ds.GetVar<double>(0, all).ok());
  // C view: shape (y, x); row y belongs to rank y.
  for (MPI_Offset y = 0; y < kNy; ++y)
    for (MPI_Offset x = 0; x < kNx; ++x)
      EXPECT_EQ(all[static_cast<std::size_t>(y * kNx + x)],
                100.0 * static_cast<double>(y) + static_cast<double>(x));
}

TEST(Nfmpi, UnlimitedDimensionIsLastInFortranOrder) {
  pfs::FileSystem fs;
  simmpi::Run(2, [&](Comm& c) {
    int ncid;
    ASSERT_EQ(nfmpi_create(c, fs, "r.nc", NF_CLOBBER, simmpi::NullInfo(),
                           ncid),
              NF_NOERR);
    int dx, dt, vid;
    ASSERT_EQ(nfmpi_def_dim(ncid, "x", 4, dx), NF_NOERR);
    ASSERT_EQ(nfmpi_def_dim(ncid, "t", NF_UNLIMITED, dt), NF_NOERR);
    // Fortran: A(x, t) — the unlimited dimension comes LAST, and after
    // reversal it is the most significant C dimension, as the format needs.
    const int dims[] = {dx, dt};
    ASSERT_EQ(nfmpi_def_var(ncid, "a", NF_REAL, 2, dims, vid), NF_NOERR);
    ASSERT_EQ(nfmpi_enddef(ncid), NF_NOERR);

    // Write record 1 (Fortran t = 1) split across ranks.
    const MPI_Offset start[] = {2 * c.rank() + 1, 1};
    const MPI_Offset count[] = {2, 1};
    const float vals[] = {static_cast<float>(c.rank()) + 0.5f,
                          static_cast<float>(c.rank()) + 0.75f};
    ASSERT_EQ(nfmpi_put_vara_real_all(ncid, vid, start, count, vals),
              NF_NOERR);
    ASSERT_EQ(nfmpi_close(ncid), NF_NOERR);
  });
  auto ds = netcdf::Dataset::Open(fs, "r.nc", false).value();
  EXPECT_EQ(ds.numrecs(), 1u);
  EXPECT_TRUE(ds.header().IsRecordVar(0));
}

TEST(Nfmpi, InquiryAndText) {
  pfs::FileSystem fs;
  simmpi::Run(1, [&](Comm& c) {
    int ncid;
    ASSERT_EQ(nfmpi_create(c, fs, "i.nc", NF_CLOBBER, simmpi::NullInfo(),
                           ncid),
              NF_NOERR);
    int dx, vid;
    ASSERT_EQ(nfmpi_def_dim(ncid, "x", 7, dx), NF_NOERR);
    const int dims[] = {dx};
    ASSERT_EQ(nfmpi_def_var(ncid, "v", NF_INT, 1, dims, vid), NF_NOERR);
    ASSERT_EQ(nfmpi_put_att_text(ncid, vid, "units", 2, "mm"), NF_NOERR);
    ASSERT_EQ(nfmpi_enddef(ncid), NF_NOERR);
    int found = -1;
    ASSERT_EQ(nfmpi_inq_varid(ncid, "v", found), NF_NOERR);
    EXPECT_EQ(found, vid);
    MPI_Offset len = 0;
    ASSERT_EQ(nfmpi_inq_dimlen(ncid, dx, len), NF_NOERR);
    EXPECT_EQ(len, 7);
    char units[8] = {0};
    ASSERT_EQ(nfmpi_get_att_text(ncid, vid, "units", units), NF_NOERR);
    EXPECT_STREQ(units, "mm");
    ASSERT_EQ(nfmpi_close(ncid), NF_NOERR);
  });
}

}  // namespace
}  // namespace pnetcdf::fapi
