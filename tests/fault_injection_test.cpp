// Fault-injection matrix: scripted storage faults crossed with every access
// mode. Transient schedules over independent and collective I/O must be
// absorbed by retry-with-backoff; permanent faults must surface as the SAME
// error on every rank of a collective (error agreement) without tearing file
// contents; short transfers must converge; bit flips must be counted; and
// the pfs::Stats counters must match the injected schedule exactly.
#include <gtest/gtest.h>

#include <numeric>

#include "mpiio/file.hpp"
#include "netcdf/buffered_file.hpp"
#include "netcdf/dataset.hpp"
#include "pnetcdf/dataset.hpp"
#include "simmpi/runtime.hpp"
#include "test_support.hpp"

namespace {

using ncformat::NcType;
using simmpi::Comm;

constexpr int kRanks = 4;
// One signed-char element per byte; large enough that a small cb_buffer_size
// splits the collective into many aggregator window writes.
constexpr std::uint64_t kElems = 64 * 1024;

/// Collectively create "m.nc" with a byte variable of kElems elements, all
/// set to `fill` — fault-free (the policy is armed afterwards).
void CreateMatrixFile(pfs::FileSystem& fs, signed char fill) {
  simmpi::Run(kRanks, [&](Comm& c) {
    auto ds =
        pnetcdf::Dataset::Create(c, fs, "m.nc", simmpi::NullInfo()).value();
    const int x = ds.DefDim("x", kElems).value();
    const int v = ds.DefVar("d", NcType::kByte, {x}).value();
    ASSERT_TRUE(ds.EndDef().ok());
    const std::uint64_t share = kElems / kRanks;
    const std::uint64_t st[] = {share * static_cast<std::uint64_t>(c.rank())};
    const std::uint64_t ct[] = {share};
    std::vector<signed char> mine(share, fill);
    ASSERT_TRUE(ds.PutVaraAll<signed char>(v, st, ct, mine).ok());
    ASSERT_TRUE(ds.Close().ok());
  });
}

/// Serial, fault-free verification that every element equals `want`.
void ExpectAllElems(pfs::FileSystem& fs, signed char want) {
  fs.SetFaultPolicy(pfs::FaultPolicy{});
  auto rd = netcdf::Dataset::Open(fs, "m.nc", false).value();
  std::vector<signed char> all(kElems);
  ASSERT_TRUE(rd.GetVar<signed char>(rd.VarId("d").value(), all).ok());
  for (std::uint64_t i = 0; i < kElems; ++i)
    ASSERT_EQ(all[i], want) << "element " << i;
}

// --- transient faults: retries succeed, counters match the schedule ------

TEST(FaultMatrix, TransientCollectiveWriteSucceedsAfterRetries) {
  pfs::FileSystem fs;
  CreateMatrixFile(fs, 1);
  simmpi::Run(kRanks, [&](Comm& c) {
    auto ds =
        pnetcdf::Dataset::Open(c, fs, "m.nc", true, simmpi::NullInfo()).value();
    // Arm the schedule only after every rank finished opening: the first
    // four faultable ops fail transiently, everything after succeeds.
    pfs::FaultPolicy pol;
    pol.transient_ops = {0, 1, 2, 3};
    SCOPED_TRACE(pnc_test::DescribePolicy(pol));
    if (c.rank() == 0) {
      fs.SetFaultPolicy(pol);
      fs.ResetStats();
    }
    c.Barrier();

    const int v = ds.VarId("d").value();
    const std::uint64_t share = kElems / kRanks;
    const std::uint64_t st[] = {share * static_cast<std::uint64_t>(c.rank())};
    const std::uint64_t ct[] = {share};
    std::vector<signed char> mine(share, 2);
    const pnc::Status ws = ds.PutVaraAll<signed char>(v, st, ct, mine);
    // The collective returns the identical (ok) status on every rank.
    EXPECT_EQ(c.AllreduceMin(ws.raw()), 0);
    EXPECT_EQ(c.AllreduceMax(ws.raw()), 0);
    ASSERT_TRUE(ds.Close().ok());
  });

  // Every scheduled fault happened, and each triggered exactly one retry.
  const pfs::Stats st = fs.stats();
  EXPECT_EQ(st.transient_faults, 4u);
  EXPECT_EQ(st.read_retries + st.write_retries, 4u);
  EXPECT_EQ(st.permanent_faults, 0u);
  ExpectAllElems(fs, 2);
}

TEST(FaultMatrix, TransientIndependentWriteSucceedsAfterRetries) {
  pfs::FileSystem fs;
  CreateMatrixFile(fs, 1);
  simmpi::Run(kRanks, [&](Comm& c) {
    auto ds =
        pnetcdf::Dataset::Open(c, fs, "m.nc", true, simmpi::NullInfo()).value();
    ASSERT_TRUE(ds.BeginIndepData().ok());
    pfs::FaultPolicy pol;
    pol.transient_ops = {0, 1, 2, 3};
    SCOPED_TRACE(pnc_test::DescribePolicy(pol));
    if (c.rank() == 0) {
      fs.SetFaultPolicy(pol);
      fs.ResetStats();
    }
    c.Barrier();

    const int v = ds.VarId("d").value();
    const std::uint64_t share = kElems / kRanks;
    const std::uint64_t st[] = {share * static_cast<std::uint64_t>(c.rank())};
    const std::uint64_t ct[] = {share};
    std::vector<signed char> mine(share, 3);
    EXPECT_TRUE(ds.PutVara<signed char>(v, st, ct, mine).ok());
    ASSERT_TRUE(ds.EndIndepData().ok());
    ASSERT_TRUE(ds.Close().ok());
  });
  const pfs::Stats st = fs.stats();
  EXPECT_EQ(st.transient_faults, 4u);
  EXPECT_EQ(st.read_retries + st.write_retries, 4u);
  ExpectAllElems(fs, 3);
}

TEST(FaultMatrix, TransientCollectiveReadSucceedsAfterRetries) {
  pfs::FileSystem fs;
  CreateMatrixFile(fs, 5);
  simmpi::Run(kRanks, [&](Comm& c) {
    auto ds = pnetcdf::Dataset::Open(c, fs, "m.nc", false, simmpi::NullInfo())
                  .value();
    pfs::FaultPolicy pol;
    pol.transient_ops = {0, 1, 2, 3};
    SCOPED_TRACE(pnc_test::DescribePolicy(pol));
    if (c.rank() == 0) {
      fs.SetFaultPolicy(pol);
      fs.ResetStats();
    }
    c.Barrier();

    const int v = ds.VarId("d").value();
    const std::uint64_t share = kElems / kRanks;
    const std::uint64_t st[] = {share * static_cast<std::uint64_t>(c.rank())};
    const std::uint64_t ct[] = {share};
    std::vector<signed char> got(share, 0);
    const pnc::Status rs = ds.GetVaraAll<signed char>(v, st, ct, got);
    EXPECT_EQ(c.AllreduceMin(rs.raw()), 0);
    EXPECT_EQ(c.AllreduceMax(rs.raw()), 0);
    for (auto b : got) EXPECT_EQ(b, 5);
    ASSERT_TRUE(ds.Close().ok());
  });
  const pfs::Stats st = fs.stats();
  EXPECT_EQ(st.transient_faults, 4u);
  EXPECT_EQ(st.read_retries + st.write_retries, 4u);
}

// --- permanent faults: identical error on all ranks, no torn data --------

TEST(FaultMatrix, PermanentCollectiveWriteFailsIdenticallyNoTorn) {
  pfs::FileSystem fs;
  CreateMatrixFile(fs, 1);
  simmpi::Run(kRanks, [&](Comm& c) {
    // A tiny collective-buffering window splits the 64 KiB region into many
    // aggregator window writes, so the fault lands mid-collective.
    simmpi::Info info;
    info.Set("cb_buffer_size", "4096");
    auto ds = pnetcdf::Dataset::Open(c, fs, "m.nc", true, info).value();
    pfs::FaultPolicy pol;
    pol.permanent_from = 2;  // a couple of window writes land, then none
    SCOPED_TRACE(pnc_test::DescribePolicy(pol));
    if (c.rank() == 0) {
      fs.SetFaultPolicy(pol);
      fs.ResetStats();
    }
    c.Barrier();

    const int v = ds.VarId("d").value();
    const std::uint64_t share = kElems / kRanks;
    const std::uint64_t st[] = {share * static_cast<std::uint64_t>(c.rank())};
    const std::uint64_t ct[] = {share};
    std::vector<signed char> mine(share, 2);
    const pnc::Status ws = ds.PutVaraAll<signed char>(v, st, ct, mine);
    // Error agreement: every rank sees the failure, and the SAME failure.
    EXPECT_FALSE(ws.ok());
    EXPECT_EQ(ws.code(), pnc::Err::kIo);
    EXPECT_EQ(c.AllreduceMin(ws.raw()), c.AllreduceMax(ws.raw()));
    if (c.rank() == 0) fs.SetFaultPolicy(pfs::FaultPolicy{});
    c.Barrier();
    ASSERT_TRUE(ds.Close().ok());
  });
  EXPECT_GE(fs.stats().permanent_faults, 1u);

  // No silently torn bytes: a faulted write stores nothing, so every element
  // is either the old value (1) or the new value (2) — never garbage.
  fs.SetFaultPolicy(pfs::FaultPolicy{});
  auto rd = netcdf::Dataset::Open(fs, "m.nc", false).value();
  std::vector<signed char> all(kElems);
  ASSERT_TRUE(rd.GetVar<signed char>(rd.VarId("d").value(), all).ok());
  std::uint64_t news = 0;
  for (std::uint64_t i = 0; i < kElems; ++i) {
    ASSERT_TRUE(all[i] == 1 || all[i] == 2) << "torn element " << i;
    news += all[i] == 2;
  }
  // The two pre-fault window writes landed; the rest stayed old — the
  // partial failure really was mid-collective, not before or after it.
  EXPECT_GT(news, 0u);
  EXPECT_LT(news, kElems);
}

TEST(FaultMatrix, PermanentIndependentWriteReportsError) {
  pfs::FileSystem fs;
  CreateMatrixFile(fs, 1);
  simmpi::Run(kRanks, [&](Comm& c) {
    auto ds =
        pnetcdf::Dataset::Open(c, fs, "m.nc", true, simmpi::NullInfo()).value();
    ASSERT_TRUE(ds.BeginIndepData().ok());
    pfs::FaultPolicy pol;
    pol.permanent_from = 0;  // everything fails
    SCOPED_TRACE(pnc_test::DescribePolicy(pol));
    if (c.rank() == 0) {
      fs.SetFaultPolicy(pol);
    }
    c.Barrier();

    const int v = ds.VarId("d").value();
    const std::uint64_t share = kElems / kRanks;
    const std::uint64_t st[] = {share * static_cast<std::uint64_t>(c.rank())};
    const std::uint64_t ct[] = {share};
    std::vector<signed char> mine(share, 2);
    const pnc::Status ws = ds.PutVara<signed char>(v, st, ct, mine);
    EXPECT_EQ(ws.code(), pnc::Err::kIo);
    c.Barrier();  // every rank's write has returned before the policy clears
    if (c.rank() == 0) fs.SetFaultPolicy(pfs::FaultPolicy{});
    c.Barrier();
    ASSERT_TRUE(ds.EndIndepData().ok());
    ASSERT_TRUE(ds.Close().ok());
  });
  ExpectAllElems(fs, 1);  // nothing was stored
}

// --- outage windows: backoff walks the clock past the outage -------------

TEST(FaultMatrix, OutageWindowCrossedByBackoff) {
  pfs::FileSystem fs;
  simmpi::Run(1, [&](Comm& c) {
    auto f = mpiio::File::Open(c, fs, "o.dat", mpiio::kCreate | mpiio::kRdWr,
                               simmpi::NullInfo())
                 .value();
    pfs::FaultPolicy pol;
    // Server 0 (owner of offset 0) is down until t = 2.5 ms of virtual
    // time; exponential backoff must carry the retry past the window.
    pol.outages.push_back({0, 0.0, 2.5e6});
    SCOPED_TRACE(pnc_test::DescribePolicy(pol));
    fs.SetFaultPolicy(pol);
    fs.ResetStats();

    std::vector<std::byte> data(1024, std::byte{0x42});
    ASSERT_TRUE(f.WriteAt(0, data.data(), data.size(), simmpi::ByteType()).ok());
    EXPECT_GE(fs.stats().write_retries, 1u);
    EXPECT_GE(c.clock().now(), 2.5e6);  // the backoff was charged
    ASSERT_TRUE(f.Close().ok());
  });
  fs.SetFaultPolicy(pfs::FaultPolicy{});
  auto f = fs.Open("o.dat").value();
  std::vector<std::byte> back(1024);
  f.HarnessRead(0, back, 0.0);
  for (auto b : back) ASSERT_EQ(b, std::byte{0x42});
}

// --- short transfers: resumed from the transferred count -----------------

TEST(FaultMatrix, ShortWritesConverge) {
  pfs::FileSystem fs;
  simmpi::Run(1, [&](Comm& c) {
    auto f = mpiio::File::Open(c, fs, "s.dat", mpiio::kCreate | mpiio::kRdWr,
                               simmpi::NullInfo())
                 .value();
    pfs::FaultPolicy pol;
    pol.short_write_prob = 1.0;  // every write ≥ 2 bytes transfers only half
    SCOPED_TRACE(pnc_test::DescribePolicy(pol));
    fs.SetFaultPolicy(pol);
    fs.ResetStats();

    std::vector<std::byte> data(4096);
    for (std::size_t i = 0; i < data.size(); ++i)
      data[i] = static_cast<std::byte>(i * 37);
    ASSERT_TRUE(f.WriteAt(0, data.data(), data.size(), simmpi::ByteType()).ok());
    // 4096 → 2048 → … → 2: twelve halvings, each counted, then a final
    // 1-byte write that cannot be shortened.
    EXPECT_EQ(fs.stats().short_writes, 12u);
    ASSERT_TRUE(f.Close().ok());

    fs.SetFaultPolicy(pfs::FaultPolicy{});
    auto raw = fs.Open("s.dat").value();
    std::vector<std::byte> back(4096);
    raw.HarnessRead(0, back, 0.0);
    EXPECT_EQ(back, data);
  });
}

// --- silent corruption: flipped bit is delivered and counted -------------

TEST(FaultMatrix, BitflipReadIsSilentAndCounted) {
  pfs::FileSystem fs;
  auto f = fs.Create("b.dat", false).value();
  std::vector<std::byte> data(256, std::byte{0});
  f.HarnessWrite(0, data, 0.0);

  pfs::FaultPolicy pol;
  pol.bitflip_read_prob = 1.0;
  SCOPED_TRACE(pnc_test::DescribePolicy(pol));
  fs.SetFaultPolicy(pol);
  fs.ResetStats();

  std::vector<std::byte> got(256, std::byte{0xEE});
  const pfs::IoResult r = f.TryRead(0, got, 0.0);
  ASSERT_TRUE(r.status.ok());  // silent: the status cannot reveal it
  ASSERT_EQ(r.transferred, 256u);
  int flipped_bits = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    unsigned diff = static_cast<unsigned>(got[i]);
    while (diff != 0) {
      flipped_bits += static_cast<int>(diff & 1u);
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped_bits, 1);
  EXPECT_EQ(fs.stats().bitflips, 1u);
}

// --- BufferedFile (serial library): failed flush keeps the data ----------

TEST(FaultMatrix, BufferedFileFailedFlushStaysDirtyThenRetries) {
  pfs::FileSystem fs;
  auto file = fs.Create("bf.dat", false).value();
  simmpi::VirtualClock clock;
  netcdf::BufferedFile io(file, &clock, /*buffer_size=*/4096);

  const std::byte payload[] = {std::byte{7}, std::byte{8}, std::byte{9}};
  ASSERT_TRUE(io.WriteAt(10, pnc::ConstByteSpan(payload, 3)).ok());

  pfs::FaultPolicy pol;
  pol.permanent_from = 0;
  SCOPED_TRACE(pnc_test::DescribePolicy(pol));
  fs.SetFaultPolicy(pol);
  const pnc::Status bad = io.Flush();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), pnc::Err::kIo);

  // The block stayed dirty: once the storage heals, a second Flush lands
  // the same bytes.
  fs.SetFaultPolicy(pfs::FaultPolicy{});
  ASSERT_TRUE(io.Flush().ok());
  std::byte back[3];
  file.HarnessRead(10, pnc::ByteSpan(back, 3), 0.0);
  EXPECT_EQ(back[0], std::byte{7});
  EXPECT_EQ(back[1], std::byte{8});
  EXPECT_EQ(back[2], std::byte{9});
}

}  // namespace
