// Tests for the ncmpi_* C-style interface: the Figure 4 sequence through
// flat functions and int handles, the typed data-access matrix, attribute
// conversion paths, inquiry, and error-code conventions.
#include "pnetcdf/ncmpi.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "netcdf/dataset.hpp"
#include "simmpi/runtime.hpp"

namespace pnetcdf::capi {
namespace {

using simmpi::Comm;

TEST(CApi, Figure4SequenceThroughFlatFunctions) {
  pfs::FileSystem fs;
  simmpi::Run(4, [&](Comm& c) {
    int ncid = -1;
    ASSERT_EQ(ncmpi_create(c, fs, "capi.nc", NC_CLOBBER | NC_64BIT_OFFSET,
                           simmpi::NullInfo(), &ncid),
              NC_NOERR);
    int zd, xd, vid;
    ASSERT_EQ(ncmpi_def_dim(ncid, "z", 8, &zd), NC_NOERR);
    ASSERT_EQ(ncmpi_def_dim(ncid, "x", 4, &xd), NC_NOERR);
    const int dims[] = {zd, xd};
    ASSERT_EQ(ncmpi_def_var(ncid, "tt", NC_DOUBLE, 2, dims, &vid), NC_NOERR);
    ASSERT_EQ(ncmpi_put_att_text(ncid, NC_GLOBAL, "title", 4, "capi"),
              NC_NOERR);
    ASSERT_EQ(ncmpi_enddef(ncid), NC_NOERR);

    const MPI_Offset start[] = {2 * c.rank(), 0};
    const MPI_Offset count[] = {2, 4};
    std::vector<double> mine(8);
    std::iota(mine.begin(), mine.end(), 10.0 * c.rank());
    ASSERT_EQ(ncmpi_put_vara_double_all(ncid, vid, start, count, mine.data()),
              NC_NOERR);
    ASSERT_EQ(ncmpi_close(ncid), NC_NOERR);

    // Reopen read-only, inquire, strided collective read.
    ASSERT_EQ(ncmpi_open(c, fs, "capi.nc", NC_NOWRITE, simmpi::NullInfo(),
                         &ncid),
              NC_NOERR);
    int ndims, nvars, ngatts, unlim;
    ASSERT_EQ(ncmpi_inq(ncid, &ndims, &nvars, &ngatts, &unlim), NC_NOERR);
    EXPECT_EQ(ndims, 2);
    EXPECT_EQ(nvars, 1);
    EXPECT_EQ(ngatts, 1);
    EXPECT_EQ(unlim, -1);
    char title[16] = {0};
    ASSERT_EQ(ncmpi_get_att_text(ncid, NC_GLOBAL, "title", title), NC_NOERR);
    EXPECT_STREQ(title, "capi");
    int rvid = -1;
    ASSERT_EQ(ncmpi_inq_varid(ncid, "tt", &rvid), NC_NOERR);
    const MPI_Offset stride[] = {1, 2};
    const MPI_Offset rcount[] = {2, 2};
    std::vector<double> back(4);
    ASSERT_EQ(ncmpi_get_vars_double_all(ncid, rvid, start, rcount, stride,
                                        back.data()),
              NC_NOERR);
    EXPECT_EQ(back[0], 10.0 * c.rank());
    EXPECT_EQ(back[1], 10.0 * c.rank() + 2);
    ASSERT_EQ(ncmpi_close(ncid), NC_NOERR);
  });
}

TEST(CApi, TypedMatrixAndConversion) {
  pfs::FileSystem fs;
  simmpi::Run(2, [&](Comm& c) {
    int ncid;
    ASSERT_EQ(ncmpi_create(c, fs, "types.nc", NC_CLOBBER, simmpi::NullInfo(),
                           &ncid),
              NC_NOERR);
    int xd;
    ASSERT_EQ(ncmpi_def_dim(ncid, "x", 4, &xd), NC_NOERR);
    int v_short, v_float;
    ASSERT_EQ(ncmpi_def_var(ncid, "s", NC_SHORT, 1, &xd, &v_short), NC_NOERR);
    ASSERT_EQ(ncmpi_def_var(ncid, "f", NC_FLOAT, 1, &xd, &v_float), NC_NOERR);
    ASSERT_EQ(ncmpi_enddef(ncid), NC_NOERR);

    // Write shorts through the int entry point, floats through double.
    const MPI_Offset st[] = {2 * c.rank()};
    const MPI_Offset ct[] = {2};
    const int iv[] = {10 * c.rank(), 10 * c.rank() + 1};
    ASSERT_EQ(ncmpi_put_vara_int_all(ncid, v_short, st, ct, iv), NC_NOERR);
    const double dv[] = {0.5 + c.rank(), 1.5 + c.rank()};
    ASSERT_EQ(ncmpi_put_vara_double_all(ncid, v_float, st, ct, dv), NC_NOERR);

    // Whole-variable collective reads through other types.
    std::vector<long long> sll(4);
    ASSERT_EQ(ncmpi_get_var_longlong_all(ncid, v_short, sll.data()), NC_NOERR);
    EXPECT_EQ(sll, (std::vector<long long>{0, 1, 10, 11}));
    std::vector<float> ff(4);
    ASSERT_EQ(ncmpi_get_var_float_all(ncid, v_float, ff.data()), NC_NOERR);
    EXPECT_EQ(ff[2], 1.5f);
    ASSERT_EQ(ncmpi_close(ncid), NC_NOERR);
  });
}

TEST(CApi, Var1AndIndependentMode) {
  pfs::FileSystem fs;
  simmpi::Run(2, [&](Comm& c) {
    int ncid;
    ASSERT_EQ(ncmpi_create(c, fs, "v1.nc", NC_CLOBBER, simmpi::NullInfo(),
                           &ncid),
              NC_NOERR);
    int xd, vid;
    ASSERT_EQ(ncmpi_def_dim(ncid, "x", 4, &xd), NC_NOERR);
    ASSERT_EQ(ncmpi_def_var(ncid, "a", NC_INT, 1, &xd, &vid), NC_NOERR);
    ASSERT_EQ(ncmpi_enddef(ncid), NC_NOERR);

    ASSERT_EQ(ncmpi_begin_indep_data(ncid), NC_NOERR);
    const MPI_Offset idx[] = {c.rank()};
    const int val = 100 + c.rank();
    ASSERT_EQ(ncmpi_put_var1_int(ncid, vid, idx, &val), NC_NOERR);
    int got = 0;
    ASSERT_EQ(ncmpi_get_var1_int(ncid, vid, idx, &got), NC_NOERR);
    EXPECT_EQ(got, val);
    ASSERT_EQ(ncmpi_end_indep_data(ncid), NC_NOERR);
    ASSERT_EQ(ncmpi_close(ncid), NC_NOERR);
  });
}

TEST(CApi, NumericAttributeConversion) {
  pfs::FileSystem fs;
  simmpi::Run(2, [&](Comm& c) {
    int ncid;
    ASSERT_EQ(ncmpi_create(c, fs, "att.nc", NC_CLOBBER, simmpi::NullInfo(),
                           &ncid),
              NC_NOERR);
    // Store doubles as a FLOAT attribute; read them back as ints.
    const double vals[] = {1.0, 2.0, 3.0};
    ASSERT_EQ(
        ncmpi_put_att_double(ncid, NC_GLOBAL, "levels", NC_FLOAT, 3, vals),
        NC_NOERR);
    int xtype = 0;
    MPI_Offset len = 0;
    ASSERT_EQ(ncmpi_inq_att(ncid, NC_GLOBAL, "levels", &xtype, &len),
              NC_NOERR);
    EXPECT_EQ(xtype, NC_FLOAT);
    EXPECT_EQ(len, 3);
    int iv[3] = {0, 0, 0};
    ASSERT_EQ(ncmpi_get_att_int(ncid, NC_GLOBAL, "levels", iv), NC_NOERR);
    EXPECT_EQ(iv[2], 3);
    ASSERT_EQ(ncmpi_enddef(ncid), NC_NOERR);
    ASSERT_EQ(ncmpi_close(ncid), NC_NOERR);
  });
}

TEST(CApi, InquiryDetails) {
  pfs::FileSystem fs;
  simmpi::Run(1, [&](Comm& c) {
    int ncid;
    ASSERT_EQ(ncmpi_create(c, fs, "inq.nc", NC_CLOBBER, simmpi::NullInfo(),
                           &ncid),
              NC_NOERR);
    int td, xd, v1, v2;
    ASSERT_EQ(ncmpi_def_dim(ncid, "t", NC_UNLIMITED, &td), NC_NOERR);
    ASSERT_EQ(ncmpi_def_dim(ncid, "x", 6, &xd), NC_NOERR);
    const int dims[] = {td, xd};
    ASSERT_EQ(ncmpi_def_var(ncid, "r", NC_FLOAT, 2, dims, &v1), NC_NOERR);
    ASSERT_EQ(ncmpi_def_var(ncid, "s", NC_DOUBLE, 2, dims, &v2), NC_NOERR);
    ASSERT_EQ(ncmpi_put_att_text(ncid, v1, "units", 1, "K"), NC_NOERR);
    ASSERT_EQ(ncmpi_enddef(ncid), NC_NOERR);

    char name[64];
    int xtype, ndims, vdims[4], natts;
    ASSERT_EQ(ncmpi_inq_var(ncid, v1, name, &xtype, &ndims, vdims, &natts),
              NC_NOERR);
    EXPECT_STREQ(name, "r");
    EXPECT_EQ(xtype, NC_FLOAT);
    EXPECT_EQ(ndims, 2);
    EXPECT_EQ(vdims[0], td);
    EXPECT_EQ(natts, 1);

    MPI_Offset len = -1;
    ASSERT_EQ(ncmpi_inq_dim(ncid, xd, name, &len), NC_NOERR);
    EXPECT_STREQ(name, "x");
    EXPECT_EQ(len, 6);

    int nrec = 0;
    ASSERT_EQ(ncmpi_inq_num_rec_vars(ncid, &nrec), NC_NOERR);
    EXPECT_EQ(nrec, 2);
    MPI_Offset recsize = 0;
    ASSERT_EQ(ncmpi_inq_recsize(ncid, &recsize), NC_NOERR);
    EXPECT_EQ(recsize, 6 * 4 + 6 * 8);
    ASSERT_EQ(ncmpi_close(ncid), NC_NOERR);
  });
}

TEST(CApi, ErrorConventions) {
  pfs::FileSystem fs;
  simmpi::Run(1, [&](Comm& c) {
    // Operations on a bad ncid.
    EXPECT_NE(ncmpi_enddef(12345), NC_NOERR);
    EXPECT_NE(ncmpi_close(12345), NC_NOERR);
    // Error strings exist and differ from "no error".
    EXPECT_STREQ(ncmpi_strerror(NC_NOERR), "No error");
    EXPECT_NE(std::string(ncmpi_strerror(static_cast<int>(pnc::Err::kEdge))),
              "No error");
    // Missing file propagates a real code.
    int ncid;
    EXPECT_NE(ncmpi_open(c, fs, "absent.nc", NC_NOWRITE, simmpi::NullInfo(),
                         &ncid),
              NC_NOERR);
    // NC_NOCLOBBER honored.
    ASSERT_EQ(ncmpi_create(c, fs, "dup.nc", NC_CLOBBER, simmpi::NullInfo(),
                           &ncid),
              NC_NOERR);
    ASSERT_EQ(ncmpi_close(ncid), NC_NOERR);
    EXPECT_EQ(ncmpi_create(c, fs, "dup.nc", NC_NOCLOBBER, simmpi::NullInfo(),
                           &ncid),
              static_cast<int>(pnc::Err::kExists));
  });
}

TEST(CApi, CdfVersionFlag) {
  pfs::FileSystem fs;
  simmpi::Run(1, [&](Comm& c) {
    int ncid;
    ASSERT_EQ(ncmpi_create(c, fs, "v1fmt.nc", NC_CLOBBER, simmpi::NullInfo(),
                           &ncid),
              NC_NOERR);
    ASSERT_EQ(ncmpi_enddef(ncid), NC_NOERR);
    ASSERT_EQ(ncmpi_close(ncid), NC_NOERR);
    ASSERT_EQ(ncmpi_create(c, fs, "v2fmt.nc", NC_CLOBBER | NC_64BIT_OFFSET,
                           simmpi::NullInfo(), &ncid),
              NC_NOERR);
    ASSERT_EQ(ncmpi_enddef(ncid), NC_NOERR);
    ASSERT_EQ(ncmpi_close(ncid), NC_NOERR);
  });
  // Check the version bytes through the serial reader.
  auto v1 = netcdf::Dataset::Open(fs, "v1fmt.nc", false).value();
  EXPECT_EQ(v1.header().version, 1);
  auto v2 = netcdf::Dataset::Open(fs, "v2fmt.nc", false).value();
  EXPECT_EQ(v2.header().version, 2);
}

TEST(CApi, TextVariableRoundTrip) {
  pfs::FileSystem fs;
  simmpi::Run(1, [&](Comm& c) {
    int ncid;
    ASSERT_EQ(ncmpi_create(c, fs, "txt.nc", NC_CLOBBER, simmpi::NullInfo(),
                           &ncid),
              NC_NOERR);
    int xd, vid;
    ASSERT_EQ(ncmpi_def_dim(ncid, "len", 5, &xd), NC_NOERR);
    ASSERT_EQ(ncmpi_def_var(ncid, "tag", NC_CHAR, 1, &xd, &vid), NC_NOERR);
    ASSERT_EQ(ncmpi_enddef(ncid), NC_NOERR);
    ASSERT_EQ(ncmpi_put_var_text_all(ncid, vid, "hello"), NC_NOERR);
    char buf[6] = {0};
    ASSERT_EQ(ncmpi_get_var_text_all(ncid, vid, buf), NC_NOERR);
    EXPECT_STREQ(buf, "hello");
    ASSERT_EQ(ncmpi_close(ncid), NC_NOERR);
  });
}

TEST(CApi, NonblockingIputIgetWaitAll) {
  pfs::FileSystem fs;
  simmpi::Run(2, [&](Comm& c) {
    int ncid;
    ASSERT_EQ(ncmpi_create(c, fs, "nb.nc", NC_CLOBBER, simmpi::NullInfo(),
                           &ncid),
              NC_NOERR);
    int xd;
    ASSERT_EQ(ncmpi_def_dim(ncid, "x", 8, &xd), NC_NOERR);
    int v1, v2;
    ASSERT_EQ(ncmpi_def_var(ncid, "a", NC_DOUBLE, 1, &xd, &v1), NC_NOERR);
    ASSERT_EQ(ncmpi_def_var(ncid, "b", NC_INT, 1, &xd, &v2), NC_NOERR);
    ASSERT_EQ(ncmpi_enddef(ncid), NC_NOERR);

    const MPI_Offset st[] = {4 * c.rank()};
    const MPI_Offset ct[] = {4};
    const double dv[] = {1.0 + c.rank(), 2.0, 3.0, 4.0};
    const int iv[] = {10 + c.rank(), 20, 30, 40};
    int reqs[2] = {-1, -1};
    ASSERT_EQ(ncmpi_iput_vara_double(ncid, v1, st, ct, dv, &reqs[0]),
              NC_NOERR);
    ASSERT_EQ(ncmpi_iput_vara_int(ncid, v2, st, ct, iv, &reqs[1]), NC_NOERR);
    int sts[2] = {-1, -1};
    ASSERT_EQ(ncmpi_wait_all(ncid, 2, reqs, sts), NC_NOERR);
    EXPECT_EQ(sts[0], NC_NOERR);
    EXPECT_EQ(sts[1], NC_NOERR);

    // Read back through nonblocking gets.
    double back_d[4] = {0, 0, 0, 0};
    int back_i[4] = {0, 0, 0, 0};
    ASSERT_EQ(ncmpi_iget_vara_double(ncid, v1, st, ct, back_d, &reqs[0]),
              NC_NOERR);
    ASSERT_EQ(ncmpi_iget_vara_int(ncid, v2, st, ct, back_i, &reqs[1]),
              NC_NOERR);
    ASSERT_EQ(ncmpi_wait_all(ncid, 2, reqs, sts), NC_NOERR);
    EXPECT_EQ(back_d[0], 1.0 + c.rank());
    EXPECT_EQ(back_i[0], 10 + c.rank());
    ASSERT_EQ(ncmpi_close(ncid), NC_NOERR);
  });
}

}  // namespace
}  // namespace pnetcdf::capi
