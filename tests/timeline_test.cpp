// Time-resolved telemetry (iostat/timeline.hpp + iostat/health.hpp).
//
// Five areas, mirroring DESIGN.md and the observability contract:
//   1. Histogram p99 upper bounds: the power-of-two bucket bound the
//      timeline reports for a tenant's wait distribution, hand-computed.
//   2. Serialization: a populated timeline embedded in the iostat report
//      round-trips through ToJson -> ParseReportJson bit-exactly enough to
//      compare every cell, rule verdict, and header field.
//   3. The gate: with PNC_IOSTAT_TIMELINE off (the default) a run's iostat
//      report is byte-identical to the same run with the timeline on minus
//      the "timeline" section, and virtual completion times match exactly —
//      recording never advances clocks or perturbs counters.
//   4. Online SLO health: the qos_test tenant storm replayed with a p99
//      wait rule on the light tenant emits an slo_violation flight event
//      mid-run under FCFS and none under WFQ, and the sealed verdict in the
//      snapshot agrees with the online emission.
//   5. Coarsening: samples spread over a horizon far beyond the bucket cap
//      widen cells instead of growing cell count, preserving byte totals.
#include "iostat/timeline.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "iostat/events.hpp"
#include "iostat/health.hpp"
#include "iostat/iostat.hpp"
#include "iostat/report.hpp"
#include "pfs/pfs.hpp"
#include "pfs/sched.hpp"
#include "pnetcdf/dataset.hpp"
#include "simmpi/runtime.hpp"

namespace {

using iostat::FlightRecorder;
using iostat::SloRule;
using iostat::TimelineRegistry;
using iostat::TimelineSummary;
using iostat::TlTrack;

class TimelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
#if !PNC_IOSTAT_ENABLED
    GTEST_SKIP() << "instrumentation compiled out (PNC_IOSTAT=OFF)";
#endif
    iostat::Registry::Get().Reset();  // also resets the timeline registry
    iostat::Registry::Get().SetCountersEnabled(true);
    TimelineRegistry::Get().SetEnabled(true);
    TimelineRegistry::Get().SetSloRules({});
  }
  void TearDown() override {
    TimelineRegistry::Get().SetEnabled(false);
    TimelineRegistry::Get().SetSloRules(iostat::SloRulesFromEnv());
    FlightRecorder::Get().SetEnabled(false);
    iostat::Registry::Get().Reset();
  }
};

// ------------------------------------------------ p99 upper bound

TEST_F(TimelineTest, HistP99UpperBoundIsPowerOfTwoBucketEdgeClampedToMax) {
  iostat::PatternHist h{};
  // Empty histogram: no samples, bound is 0.
  EXPECT_EQ(iostat::HistP99UpperBound(h), 0u);

  // 100 samples of 5 ns land in bucket [4,7]; p99 bound is the bucket's
  // upper edge clamped to the observed max.
  for (int i = 0; i < 100; ++i) h.Add(5);
  EXPECT_EQ(iostat::HistP99UpperBound(h), 5u);

  // A single outlier among 101 samples is within the top 1% (100/101 =
  // 99.01% of the mass is already below it), so the bound stays at the
  // cheap bucket's edge.
  h.Add(1000);
  EXPECT_EQ(iostat::HistP99UpperBound(h), 7u);

  // A second outlier pushes the cheap mass below 99% (100/102): the bound
  // must now cover the outlier bucket [512,1023], clamped to the observed
  // max of 1000.
  h.Add(1000);
  EXPECT_EQ(iostat::HistP99UpperBound(h), 1000u);

  // Many outliers land the p99 in their bucket even before clamping.
  for (int i = 0; i < 50; ++i) h.Add(900);
  const std::uint64_t ub = iostat::HistP99UpperBound(h);
  EXPECT_GE(ub, 900u);
  EXPECT_LE(ub, 1023u);
}

// ------------------------------------------------ serialization

TEST_F(TimelineTest, ReportJsonRoundTripPreservesEveryCellAndVerdict) {
  TimelineRegistry& reg = TimelineRegistry::Get();
  reg.SetSloRules({SloRule{SloRule::Kind::kMissRate, "miss", "light",
                           0.0, 1}});

  // Two servers, two tenants, several cells apart; one deadline miss.
  const double ms = 1e6;
  reg.RecordPfsGrant(0, "light", 4096, 0.5 * ms, 0.9 * ms, 1, 1000.0, false);
  reg.RecordPfsGrant(1, "heavy", 65536, 0.2 * ms, 2.5 * ms, 3, 2e6, true);
  reg.RecordPfsGrant(0, "heavy", 1024, 5.1 * ms, 5.4 * ms, 2, 0.0, false);
  reg.RecordMark(TlTrack::kRetries, 1.1 * ms, 1.0);
  reg.RecordMark(TlTrack::kStragglerWaitNs, 3.3 * ms, 4.5e5);

  iostat::Report rep = iostat::BuildReport();
  ASSERT_TRUE(rep.timeline.present);
  const std::string json = iostat::ToJson(rep);
  ASSERT_NE(json.find("\"timeline\""), std::string::npos);
  ASSERT_NE(json.find("pnc-timeline-v1"), std::string::npos);

  auto back = iostat::ParseReportJson(json);
  ASSERT_TRUE(back.ok()) << back.status().message();
  const TimelineSummary& a = rep.timeline;
  const TimelineSummary& b = back.value().timeline;

  EXPECT_TRUE(b.present);
  EXPECT_DOUBLE_EQ(a.cell_ns, b.cell_ns);
  EXPECT_DOUBLE_EQ(a.horizon_ns, b.horizon_ns);

  ASSERT_EQ(a.servers.size(), b.servers.size());
  for (std::size_t i = 0; i < a.servers.size(); ++i) {
    EXPECT_EQ(a.servers[i].bucket, b.servers[i].bucket);
    EXPECT_EQ(a.servers[i].server, b.servers[i].server);
    EXPECT_DOUBLE_EQ(a.servers[i].bytes, b.servers[i].bytes);
    EXPECT_DOUBLE_EQ(a.servers[i].busy_ns, b.servers[i].busy_ns);
    EXPECT_EQ(a.servers[i].grants, b.servers[i].grants);
    EXPECT_EQ(a.servers[i].depth_max, b.servers[i].depth_max);
  }
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    EXPECT_EQ(a.tenants[i].bucket, b.tenants[i].bucket);
    EXPECT_EQ(a.tenants[i].tenant, b.tenants[i].tenant);
    EXPECT_DOUBLE_EQ(a.tenants[i].bytes, b.tenants[i].bytes);
    EXPECT_DOUBLE_EQ(a.tenants[i].wait_ns, b.tenants[i].wait_ns);
    EXPECT_EQ(a.tenants[i].grants, b.tenants[i].grants);
    EXPECT_EQ(a.tenants[i].misses, b.tenants[i].misses);
    EXPECT_EQ(a.tenants[i].p99_wait_ns, b.tenants[i].p99_wait_ns);
  }
  ASSERT_EQ(a.tracks.size(), b.tracks.size());
  for (std::size_t i = 0; i < a.tracks.size(); ++i) {
    EXPECT_EQ(a.tracks[i].track, b.tracks[i].track);
    EXPECT_EQ(a.tracks[i].bucket, b.tracks[i].bucket);
    EXPECT_DOUBLE_EQ(a.tracks[i].value, b.tracks[i].value);
  }

  // Health verdicts ride inside the timeline section: the "heavy" miss does
  // not trip a rule scoped to "light", and the scoped rule's identity and
  // counts survive the round trip.
  ASSERT_EQ(a.health.rules.size(), 1u);
  ASSERT_EQ(b.health.rules.size(), 1u);
  EXPECT_EQ(b.health.rules[0].rule.id, "miss");
  EXPECT_EQ(b.health.rules[0].rule.tenant, "light");
  EXPECT_EQ(a.health.total_violations, b.health.total_violations);
  EXPECT_EQ(a.health.rules[0].violations, b.health.rules[0].violations);
  EXPECT_EQ(b.health.total_violations, 0u);

  // Rendering is smoke-checked here (exact text is a tool concern): both
  // the timeline sparklines and the health table must mention our data.
  const std::string tl = iostat::RenderTimeline(a);
  EXPECT_NE(tl.find("s0"), std::string::npos);
  EXPECT_NE(tl.find("heavy"), std::string::npos);
  const std::string hp = iostat::RenderHealth(a.health);
  EXPECT_NE(hp.find("miss"), std::string::npos);
}

// ------------------------------------------------ the gate

/// A deterministic single-rank pnetcdf workload: one rank, one server, a
/// record variable written twice plus an attribute rewrite forcing a
/// header move. Single-rank runs have no cross-thread scheduling at the
/// pfs mutex, so every virtual time — and therefore every iostat counter —
/// is exactly reproducible.
double RunDeterministicWorkload(std::string* report_json) {
  pfs::FileSystem fs;
  double end_ns = 0.0;
  simmpi::Run(1, [&](simmpi::Comm& c) {
    auto r = pnetcdf::Dataset::Create(c, fs, "gate.nc", simmpi::Info());
    ASSERT_TRUE(r.ok());
    auto ds = std::move(r).value();
    const auto t = ds.DefDim("time", pnetcdf::kUnlimited);
    const auto x = ds.DefDim("x", 16);
    const auto v =
        ds.DefVar("v", ncformat::NcType::kInt, {t.value(), x.value()});
    ASSERT_TRUE(ds.EndDef().ok());
    std::vector<std::int32_t> data(16);
    for (int i = 0; i < 16; ++i) data[static_cast<std::size_t>(i)] = i;
    const std::uint64_t start[] = {0, 0};
    const std::uint64_t count[] = {1, 16};
    ASSERT_TRUE(ds.PutVaraAll<std::int32_t>(v.value(), start, count, data).ok());
    const std::uint64_t start2[] = {1, 0};
    ASSERT_TRUE(
        ds.PutVaraAll<std::int32_t>(v.value(), start2, count, data).ok());
    ASSERT_TRUE(ds.Close().ok());
    end_ns = c.clock().now();
  });
  *report_json = iostat::ToJson(iostat::BuildReport());
  return end_ns;
}

TEST_F(TimelineTest, GateOffReportIsByteIdenticalModuloTimelineSection) {
  // Off first: the report must not even contain the key.
  TimelineRegistry::Get().SetEnabled(false);
  std::string off_json;
  const double off_end = RunDeterministicWorkload(&off_json);
  ASSERT_FALSE(off_json.empty());
  EXPECT_EQ(off_json.find("\"timeline\""), std::string::npos);

  // Same workload with the timeline on.
  iostat::Registry::Get().Reset();
  iostat::Registry::Get().SetCountersEnabled(true);
  TimelineRegistry::Get().SetEnabled(true);
  std::string on_json;
  const double on_end = RunDeterministicWorkload(&on_json);

  // Recording must not advance virtual time: completion matches exactly.
  EXPECT_EQ(off_end, on_end);

  // Excising the ,"timeline":{...} object from the on-report must yield the
  // off-report byte for byte — the timeline adds a section, it never
  // perturbs what was already there.
  const std::size_t key = on_json.find(",\"timeline\":{");
  ASSERT_NE(key, std::string::npos);
  std::size_t i = on_json.find('{', key);
  int depth = 0;
  for (; i < on_json.size(); ++i) {
    if (on_json[i] == '{') ++depth;
    if (on_json[i] == '}' && --depth == 0) break;
  }
  ASSERT_LT(i, on_json.size());
  const std::string excised =
      on_json.substr(0, key) + on_json.substr(i + 1);
  EXPECT_EQ(excised, off_json);
}

// ------------------------------------------------ online SLO health

struct StormTelemetry {
  std::vector<iostat::Event> violations;
  iostat::HealthStatus health;
  double light_p99_wait_ns = 0.0;
};

/// The qos_test tenant storm, watched: 20 x 64 KiB writes from a heavy
/// tenant at weight 1/16 swamp one 4 KiB read from a light tenant holding a
/// 20 ms deadline, all submitted at t=0 under `policy`. A p99-wait SLO rule
/// (50 ms) guards the light tenant while the storm runs: FCFS starves the
/// read for ~226 ms, WFQ paces it down to ~11 ms, so the rule cleanly
/// separates the disciplines.
StormTelemetry RunWatchedStorm(const pfs::QosPolicy& policy) {
  iostat::Registry::Get().Reset();
  iostat::Registry::Get().SetCountersEnabled(true);
  TimelineRegistry& reg = TimelineRegistry::Get();
  reg.SetEnabled(true);
  reg.SetSloRules(
      {SloRule{SloRule::Kind::kP99WaitNs, "light-wait", "light", 5e7, 1}});
  FlightRecorder::Get().SetEnabled(true);

  pfs::FileSystem fs;
  const int heavy = fs.RegisterTenant({"heavy", 1.0 / 16.0, 0.0, 0});
  const int light = fs.RegisterTenant({"light", 1.0, 20e6, 0});
  fs.SetQosPolicy(policy);

  auto fh = fs.Create("storm.dat", false).value();
  fh.SetTenant(heavy);
  auto fl = fs.Create("steady.dat", false).value();
  fl.SetTenant(light);

  std::vector<std::byte> buf(64 << 10, std::byte{2});
  for (int i = 0; i < 20; ++i)
    fh.HarnessWrite(0, pnc::ConstByteSpan(buf.data(), buf.size()), 0.0);
  fl.HarnessRead(0, pnc::ByteSpan(buf.data(), 4096), 0.0);

  StormTelemetry out;
  const auto snap = fs.TenantUsageSnapshot();
  out.light_p99_wait_ns = pfs::WaitPercentile(
      snap[static_cast<std::size_t>(light)].ctr.wait_samples, 99.0);
  // Snapshot seals the tail buckets (emitting any still-pending online
  // violations) and re-evaluates the whole horizon for the verdict.
  out.health = reg.Snapshot().health;
  for (const auto& rank_events : FlightRecorder::Get().Collect())
    for (const iostat::Event& e : rank_events)
      if (e.kind == iostat::Ev::kSloViolation) out.violations.push_back(e);
  return out;
}

TEST_F(TimelineTest, StormTripsP99WaitSloUnderFcfsAndNotUnderWfq) {
  const StormTelemetry fcfs = RunWatchedStorm(pfs::QosPolicy{});

  // Starved behind the storm: wait blows through the 50 ms rule, the run
  // emits slo_violation flight events while still in flight, and the
  // sealed verdict agrees.
  EXPECT_GT(fcfs.light_p99_wait_ns, 1e8);
  ASSERT_FALSE(fcfs.violations.empty());
  for (const iostat::Event& e : fcfs.violations) {
    EXPECT_STREQ(e.detail, "light-wait");  // rule id rides in the detail
    EXPECT_GE(e.t_ns, 0.0);
    EXPECT_GT(e.d_ns, 0.0);  // episode spans at least one bucket
  }
  EXPECT_TRUE(fcfs.health.evaluated);
  EXPECT_GT(fcfs.health.total_violations, 0u);
  ASSERT_EQ(fcfs.health.rules.size(), 1u);
  EXPECT_GE(fcfs.health.rules[0].first_violation_ns, 0.0);
  EXPECT_GT(fcfs.health.rules[0].worst, 5e7);

  // WFQ pacing collapses the light tenant's wait below the rule: no events,
  // clean verdict.
  pfs::QosPolicy wfq;
  wfq.discipline = pfs::QosDiscipline::kWfq;
  const StormTelemetry paced = RunWatchedStorm(wfq);
  EXPECT_LT(paced.light_p99_wait_ns * 5, fcfs.light_p99_wait_ns);
  EXPECT_TRUE(paced.violations.empty());
  EXPECT_TRUE(paced.health.evaluated);
  EXPECT_EQ(paced.health.total_violations, 0u);
}

// ------------------------------------------------ coarsening

TEST_F(TimelineTest, CoarseningWidensCellsAndPreservesTotalsOverLongHorizon) {
  TimelineRegistry& reg = TimelineRegistry::Get();

  // 8192 grants of 1 KiB spread one per base cell: twice the kMaxCells cap,
  // so the registry must coarsen (it can never hold 8192 server cells).
  const double cell = static_cast<double>(TimelineRegistry::kBaseCellNs);
  const int n = 2 * static_cast<int>(TimelineRegistry::kMaxCells);
  for (int i = 0; i < n; ++i) {
    const double t = (static_cast<double>(i) + 0.25) * cell;
    reg.RecordPfsGrant(0, "t", 1024, t, t + 1000.0, 1, 0.0, false);
  }
  TimelineSummary s = reg.Snapshot();
  ASSERT_TRUE(s.present);
  EXPECT_GT(s.cell_ns, cell);  // cells widened...
  EXPECT_LE(s.servers.size(), TimelineRegistry::kMaxCells);  // ...not more

  double total_bytes = 0.0;
  std::uint64_t total_grants = 0;
  for (const auto& c : s.servers) {
    total_bytes += c.bytes;
    total_grants += c.grants;
  }
  EXPECT_DOUBLE_EQ(total_bytes, static_cast<double>(n) * 1024.0);
  EXPECT_EQ(total_grants, static_cast<std::uint64_t>(n));

  // A very sparse, very long horizon coarsens by bucket range too: one
  // early and one extremely late sample must not leave cell_ns at base
  // (the bucket index cap bounds the health sweep).
  reg.Reset();
  reg.RecordPfsGrant(0, "t", 1, 0.0, 10.0, 1, 0.0, false);
  const double far =
      cell * static_cast<double>(TimelineRegistry::kMaxBuckets) * 4.0;
  reg.RecordPfsGrant(0, "t", 1, far, far + 10.0, 1, 0.0, false);
  s = reg.Snapshot();
  EXPECT_GE(s.cell_ns * static_cast<double>(TimelineRegistry::kMaxBuckets),
            s.horizon_ns);
}

}  // namespace
