// Tests for ncks-style subsetting: variable selection, dimension windows,
// record trimming, metadata preservation, and error cases.
#include "tools/subset.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace nctools {
namespace {

using ncformat::NcType;

void MakeSource(pfs::FileSystem& fs) {
  auto ds = netcdf::Dataset::Create(fs, "src.nc").value();
  const int t = ds.DefDim("time", netcdf::kUnlimited).value();
  const int y = ds.DefDim("y", 4).value();
  const int x = ds.DefDim("x", 6).value();
  const int temp = ds.DefVar("temp", NcType::kDouble, {t, y, x}).value();
  const int elev = ds.DefVar("elev", NcType::kInt, {y, x}).value();
  const int mask = ds.DefVar("mask", NcType::kByte, {y, x}).value();
  ASSERT_TRUE(ds.PutAttText(netcdf::kGlobal, "title", "subset source").ok());
  ASSERT_TRUE(ds.PutAttText(temp, "units", "K").ok());
  ASSERT_TRUE(ds.EndDef().ok());

  std::vector<double> tv(3 * 4 * 6);
  std::iota(tv.begin(), tv.end(), 0.0);  // value == linear index
  ASSERT_TRUE(ds.PutVar<double>(temp, tv).ok());
  std::vector<std::int32_t> ev(24);
  std::iota(ev.begin(), ev.end(), 100);
  ASSERT_TRUE(ds.PutVar<std::int32_t>(elev, ev).ok());
  std::vector<signed char> mv(24, 1);
  ASSERT_TRUE(ds.PutVar<signed char>(mask, mv).ok());
  ASSERT_TRUE(ds.Close().ok());
}

TEST(Subset, VariableSelection) {
  pfs::FileSystem fs;
  MakeSource(fs);
  SubsetOptions opts;
  opts.variables = {"elev"};
  ASSERT_TRUE(ExtractSubset(fs, "src.nc", "out.nc", opts).ok());
  auto out = netcdf::Dataset::Open(fs, "out.nc", false).value();
  EXPECT_EQ(out.nvars(), 1);
  EXPECT_TRUE(out.VarId("elev").ok());
  EXPECT_FALSE(out.VarId("temp").ok());
  // Global attributes and dimensions survive.
  EXPECT_EQ(out.GetAtt(netcdf::kGlobal, "title").value().AsText(),
            "subset source");
  EXPECT_EQ(out.ndims(), 3);
  std::vector<std::int32_t> ev(24);
  ASSERT_TRUE(out.GetVar<std::int32_t>(out.VarId("elev").value(), ev).ok());
  EXPECT_EQ(ev[5], 105);
}

TEST(Subset, DimensionWindow) {
  pfs::FileSystem fs;
  MakeSource(fs);
  SubsetOptions opts;
  opts.ranges.push_back({"y", 1, 2});   // keep rows 1..2
  opts.ranges.push_back({"x", 2, 4});   // keep cols 2..4
  ASSERT_TRUE(ExtractSubset(fs, "src.nc", "out.nc", opts).ok());
  auto out = netcdf::Dataset::Open(fs, "out.nc", false).value();
  EXPECT_EQ(out.header().dims[static_cast<std::size_t>(
                                  out.DimId("y").value())].len, 2u);
  EXPECT_EQ(out.header().dims[static_cast<std::size_t>(
                                  out.DimId("x").value())].len, 3u);
  // temp(0, 1, 2) of the source is temp(0, 0, 0) of the subset: index
  // (0*4 + 1)*6 + 2 = 8.
  double v = -1;
  const std::uint64_t idx[] = {0, 0, 0};
  ASSERT_TRUE(out.GetVar1<double>(out.VarId("temp").value(), idx, v).ok());
  EXPECT_EQ(v, 8.0);
}

TEST(Subset, RecordWindowKeepsUnlimited) {
  pfs::FileSystem fs;
  MakeSource(fs);
  SubsetOptions opts;
  opts.variables = {"temp"};
  opts.ranges.push_back({"time", 1, 2});
  ASSERT_TRUE(ExtractSubset(fs, "src.nc", "out.nc", opts).ok());
  auto out = netcdf::Dataset::Open(fs, "out.nc", false).value();
  EXPECT_EQ(out.unlimdim(), out.DimId("time").value());
  EXPECT_EQ(out.numrecs(), 2u);
  // Record 0 of the subset is record 1 of the source: first value 24.
  double v = -1;
  const std::uint64_t idx[] = {0, 0, 0};
  ASSERT_TRUE(out.GetVar1<double>(out.VarId("temp").value(), idx, v).ok());
  EXPECT_EQ(v, 24.0);
}

TEST(Subset, Errors) {
  pfs::FileSystem fs;
  MakeSource(fs);
  SubsetOptions bad_dim;
  bad_dim.ranges.push_back({"nope", 0, 1});
  EXPECT_EQ(ExtractSubset(fs, "src.nc", "o.nc", bad_dim).code(),
            pnc::Err::kBadDim);
  SubsetOptions bad_range;
  bad_range.ranges.push_back({"y", 2, 9});
  EXPECT_EQ(ExtractSubset(fs, "src.nc", "o.nc", bad_range).code(),
            pnc::Err::kInvalidCoords);
  SubsetOptions bad_var;
  bad_var.variables = {"ghost"};
  EXPECT_EQ(ExtractSubset(fs, "src.nc", "o.nc", bad_var).code(),
            pnc::Err::kNotVar);
}

TEST(Subset, IdentityIsLossless) {
  pfs::FileSystem fs;
  MakeSource(fs);
  ASSERT_TRUE(ExtractSubset(fs, "src.nc", "copy.nc", {}).ok());
  auto a = netcdf::Dataset::Open(fs, "src.nc", false).value();
  auto b = netcdf::Dataset::Open(fs, "copy.nc", false).value();
  // Same schema + data (byte-level may differ only if layout differed; it
  // must not, so compare semantically via the diff engine).
  EXPECT_EQ(a.header(), b.header());
}

}  // namespace
}  // namespace nctools
