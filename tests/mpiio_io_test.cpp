// Tests for MPI-IO over the simulated PFS: collective open, independent I/O
// with data sieving, and two-phase collective I/O — verified for data
// correctness against plain reads, across process counts and patterns.
#include "mpiio/file.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "simmpi/runtime.hpp"
#include "util/rng.hpp"

namespace mpiio {
namespace {

using simmpi::Comm;
using simmpi::Datatype;

std::vector<std::byte> Pattern(std::size_t n, std::uint64_t seed) {
  pnc::SplitMix64 rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.Next() & 0xFF);
  return v;
}

TEST(Open, CollectiveCreateAndErrorAgreement) {
  pfs::FileSystem fs;
  simmpi::Run(4, [&](Comm& c) {
    auto f = File::Open(c, fs, "f.dat", kCreate | kRdWr, simmpi::NullInfo());
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.value().Close().ok());
    // Opening a missing file fails identically on every rank.
    auto bad = File::Open(c, fs, "missing", kRdOnly, simmpi::NullInfo());
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), pnc::Err::kNotNc);
  });
  EXPECT_TRUE(fs.Exists("f.dat"));
}

TEST(Open, ExclusiveCreateFailsIfExists) {
  pfs::FileSystem fs;
  (void)fs.Create("already", false);
  simmpi::Run(2, [&](Comm& c) {
    auto f = File::Open(c, fs, "already", kCreate | kExcl | kRdWr,
                        simmpi::NullInfo());
    EXPECT_EQ(f.status().code(), pnc::Err::kExists);
  });
}

TEST(Independent, ContiguousWriteRead) {
  pfs::FileSystem fs;
  simmpi::Run(2, [&](Comm& c) {
    auto f =
        File::Open(c, fs, "c.dat", kCreate | kRdWr, simmpi::NullInfo()).value();
    auto mine = Pattern(1000, 77 + static_cast<std::uint64_t>(c.rank()));
    // Each rank writes its own 1000-byte region.
    ASSERT_TRUE(f.WriteAt(static_cast<std::uint64_t>(c.rank()) * 1000,
                          mine.data(), 1000, simmpi::ByteType())
                    .ok());
    f.comm().Barrier();
    // Cross-read the other rank's region.
    std::vector<std::byte> other(1000);
    const int peer = 1 - c.rank();
    ASSERT_TRUE(f.ReadAt(static_cast<std::uint64_t>(peer) * 1000, other.data(),
                         1000, simmpi::ByteType())
                    .ok());
    EXPECT_EQ(other, Pattern(1000, 77 + static_cast<std::uint64_t>(peer)));
    ASSERT_TRUE(f.Close().ok());
  });
}

// Write a strided pattern through a view, then verify byte-exactly with a
// whole-file read. Exercises data sieving read-modify-write.
TEST(Independent, StridedViewWithSieving) {
  pfs::FileSystem fs;
  simmpi::Run(1, [&](Comm& c) {
    auto f =
        File::Open(c, fs, "s.dat", kCreate | kRdWr, simmpi::NullInfo()).value();
    // Pre-fill 4 KiB with a known background.
    auto bg = Pattern(4096, 1);
    ASSERT_TRUE(f.WriteAt(0, bg.data(), 4096, simmpi::ByteType()).ok());
    // View: every other 8-byte block.
    auto ft = Datatype::Hvector(256, 8, 16, simmpi::ByteType());
    ASSERT_TRUE(f.SetView(0, simmpi::ByteType(), ft).ok());
    auto data = Pattern(2048, 2);
    ASSERT_TRUE(f.WriteAt(0, data.data(), 2048, simmpi::ByteType()).ok());
    f.ClearView();
    std::vector<std::byte> all(4096);
    ASSERT_TRUE(f.ReadAt(0, all.data(), 4096, simmpi::ByteType()).ok());
    for (std::size_t i = 0; i < 4096; ++i) {
      const bool in_data = (i % 16) < 8;
      const std::byte expect =
          in_data ? data[(i / 16) * 8 + i % 16] : bg[i];
      EXPECT_EQ(all[i], expect) << i;
    }
    // Read back through the view as well.
    ASSERT_TRUE(f.SetView(0, simmpi::ByteType(), ft).ok());
    std::vector<std::byte> back(2048);
    ASSERT_TRUE(f.ReadAt(0, back.data(), 2048, simmpi::ByteType()).ok());
    EXPECT_EQ(back, data);
  });
}

TEST(Independent, SievingMatchesNaivePath) {
  // Same noncontiguous write with sieving enabled vs disabled must produce
  // identical bytes (only the request pattern differs).
  for (const bool sieve : {true, false}) {
    pfs::FileSystem fs;
    simmpi::Run(1, [&](Comm& c) {
      simmpi::Info info;
      info.Set("romio_ds_write", sieve ? "enable" : "disable");
      info.Set("romio_ds_read", sieve ? "enable" : "disable");
      auto f = File::Open(c, fs, "n.dat", kCreate | kRdWr, info).value();
      auto ft = Datatype::Hvector(100, 24, 56, simmpi::ByteType());
      ASSERT_TRUE(f.SetView(128, simmpi::ByteType(), ft).ok());
      auto data = Pattern(2400, 3);
      ASSERT_TRUE(f.WriteAt(0, data.data(), 2400, simmpi::ByteType()).ok());
      std::vector<std::byte> back(2400);
      ASSERT_TRUE(f.ReadAt(0, back.data(), 2400, simmpi::ByteType()).ok());
      EXPECT_EQ(back, data);
    });
    // The sieved path must issue far fewer requests.
    const auto reqs = fs.stats().write_requests;
    if (sieve) {
      EXPECT_LT(reqs, 20u);
    } else {
      EXPECT_GE(reqs, 100u);
    }
  }
}

TEST(Independent, NoncontiguousMemoryDatatype) {
  pfs::FileSystem fs;
  simmpi::Run(1, [&](Comm& c) {
    auto f =
        File::Open(c, fs, "m.dat", kCreate | kRdWr, simmpi::NullInfo()).value();
    // Memory: every other int of a 20-int buffer.
    std::vector<std::int32_t> mem(20);
    std::iota(mem.begin(), mem.end(), 0);
    auto mt = Datatype::Vector(10, 1, 2, simmpi::IntType());
    ASSERT_TRUE(f.WriteAt(0, mem.data(), 1, mt).ok());
    std::vector<std::int32_t> file(10);
    ASSERT_TRUE(f.ReadAt(0, file.data(), 10, simmpi::IntType()).ok());
    for (int i = 0; i < 10; ++i) EXPECT_EQ(file[static_cast<std::size_t>(i)], 2 * i);
    // Scatter back into a strided buffer.
    std::vector<std::int32_t> back(20, -1);
    ASSERT_TRUE(f.ReadAt(0, back.data(), 1, mt).ok());
    for (int i = 0; i < 10; ++i) EXPECT_EQ(back[static_cast<std::size_t>(2 * i)], 2 * i);
  });
}

class TwoPhaseP : public ::testing::TestWithParam<int> {};

TEST_P(TwoPhaseP, InterleavedCollectiveWriteRead) {
  const int nprocs = GetParam();
  pfs::FileSystem fs;
  const std::uint64_t rows = 64, cols = 64;
  simmpi::Run(nprocs, [&](Comm& c) {
    auto f = File::Open(c, fs, "tp.dat", kCreate | kRdWr, simmpi::NullInfo())
                 .value();
    // Column partition of a rows x cols int array: maximally interleaved.
    const std::uint64_t my_cols = cols / static_cast<std::uint64_t>(c.size());
    const std::uint64_t sizes[] = {rows, cols};
    const std::uint64_t sub[] = {rows, my_cols};
    const std::uint64_t starts[] = {0, my_cols * static_cast<std::uint64_t>(c.rank())};
    auto ft = Datatype::Subarray(sizes, sub, starts, simmpi::IntType()).value();
    ASSERT_TRUE(f.SetView(0, simmpi::IntType(), ft).ok());

    std::vector<std::int32_t> mine(rows * my_cols);
    for (std::uint64_t i = 0; i < mine.size(); ++i)
      mine[i] = static_cast<std::int32_t>(
          1000000 * static_cast<std::uint64_t>(c.rank()) + i);
    ASSERT_TRUE(
        f.WriteAtAll(0, mine.data(), mine.size(), simmpi::IntType()).ok());

    // Collective read back through the same views.
    std::vector<std::int32_t> back(mine.size(), -1);
    ASSERT_TRUE(
        f.ReadAtAll(0, back.data(), back.size(), simmpi::IntType()).ok());
    EXPECT_EQ(back, mine);
    ASSERT_TRUE(f.Close().ok());
  });

  // Global verification with a flat read: element (r, c) was written by rank
  // c / my_cols with local index r * my_cols + c % my_cols.
  auto file = fs.Open("tp.dat").value();
  std::vector<std::int32_t> all(rows * cols);
  file.HarnessRead(0, pnc::ByteSpan(reinterpret_cast<std::byte*>(all.data()),
                             all.size() * 4),
            0.0);
  const std::uint64_t my_cols = cols / static_cast<std::uint64_t>(nprocs);
  for (std::uint64_t r = 0; r < rows; ++r) {
    for (std::uint64_t cc = 0; cc < cols; ++cc) {
      const auto owner = cc / my_cols;
      const auto local = r * my_cols + cc % my_cols;
      EXPECT_EQ(all[r * cols + cc],
                static_cast<std::int32_t>(1000000 * owner + local));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Procs, TwoPhaseP, ::testing::Values(1, 2, 4, 8, 16));

TEST(TwoPhase, CollectiveMatchesIndependent) {
  // The same access pattern via collective and via independent I/O must
  // produce identical file bytes.
  std::vector<std::byte> coll_bytes, indep_bytes;
  for (const bool collective : {true, false}) {
    pfs::FileSystem fs;
    simmpi::Run(4, [&](Comm& c) {
      simmpi::Info info;
      if (!collective) {
        info.Set("romio_cb_write", "disable");
        info.Set("romio_cb_read", "disable");
      }
      auto f = File::Open(c, fs, "x.dat", kCreate | kRdWr, info).value();
      auto ft = Datatype::Hvector(32, 16,
                                  16 * static_cast<std::uint64_t>(c.size()),
                                  simmpi::ByteType());
      ASSERT_TRUE(
          f.SetView(static_cast<std::uint64_t>(c.rank()) * 16,
                    simmpi::ByteType(), ft)
              .ok());
      auto data = Pattern(512, 40 + static_cast<std::uint64_t>(c.rank()));
      ASSERT_TRUE(
          f.WriteAtAll(0, data.data(), data.size(), simmpi::ByteType()).ok());
      ASSERT_TRUE(f.Close().ok());
    });
    auto file = fs.Open("x.dat").value();
    std::vector<std::byte> bytes(file.size());
    file.HarnessRead(0, bytes, 0.0);
    (collective ? coll_bytes : indep_bytes) = std::move(bytes);
  }
  EXPECT_EQ(coll_bytes, indep_bytes);
  EXPECT_FALSE(coll_bytes.empty());
}

TEST(TwoPhase, WriteWithHolesPreservesBackground) {
  pfs::FileSystem fs;
  // Background fill first.
  {
    auto f = fs.Create("h.dat", false).value();
    f.HarnessWrite(0, Pattern(8192, 9), 0.0);
  }
  simmpi::Run(2, [&](Comm& c) {
    auto f = File::Open(c, fs, "h.dat", kRdWr, simmpi::NullInfo()).value();
    // Each rank writes 16-byte pieces with large gaps (holes for RMW).
    auto ft = Datatype::Hvector(16, 16, 512, simmpi::ByteType());
    ASSERT_TRUE(f.SetView(static_cast<std::uint64_t>(c.rank()) * 256,
                          simmpi::ByteType(), ft)
                    .ok());
    auto data = Pattern(256, 50 + static_cast<std::uint64_t>(c.rank()));
    ASSERT_TRUE(
        f.WriteAtAll(0, data.data(), data.size(), simmpi::ByteType()).ok());
    ASSERT_TRUE(f.Close().ok());
  });
  auto file = fs.Open("h.dat").value();
  std::vector<std::byte> all(8192);
  file.HarnessRead(0, all, 0.0);
  auto bg = Pattern(8192, 9);
  auto d0 = Pattern(256, 50);
  auto d1 = Pattern(256, 51);
  for (std::size_t i = 0; i < 8192; ++i) {
    const std::size_t block = i / 512;
    const std::size_t in_block = i % 512;
    std::byte expect = bg[i];
    if (in_block < 16) expect = d0[block * 16 + in_block];
    else if (in_block >= 256 && in_block < 272)
      expect = d1[block * 16 + (in_block - 256)];
    EXPECT_EQ(all[i], expect) << i;
  }
}

TEST(TwoPhase, UnevenParticipation) {
  // Some ranks contribute nothing; the collective must still complete and
  // write the contributors' data.
  pfs::FileSystem fs;
  simmpi::Run(4, [&](Comm& c) {
    auto f = File::Open(c, fs, "u.dat", kCreate | kRdWr, simmpi::NullInfo())
                 .value();
    std::vector<std::byte> data;
    if (c.rank() < 2) data = Pattern(300, 60 + static_cast<std::uint64_t>(c.rank()));
    ASSERT_TRUE(f.WriteAtAll(static_cast<std::uint64_t>(c.rank()) * 300,
                             data.data(), data.size(), simmpi::ByteType())
                    .ok());
    ASSERT_TRUE(f.Close().ok());
  });
  auto file = fs.Open("u.dat").value();
  ASSERT_EQ(file.size(), 600u);
  std::vector<std::byte> all(600);
  file.HarnessRead(0, all, 0.0);
  auto d0 = Pattern(300, 60);
  auto d1 = Pattern(300, 61);
  EXPECT_TRUE(std::equal(all.begin(), all.begin() + 300, d0.begin()));
  EXPECT_TRUE(std::equal(all.begin() + 300, all.end(), d1.begin()));
}

TEST(TwoPhase, ZeroByteCollectiveCompletes) {
  pfs::FileSystem fs;
  simmpi::Run(3, [&](Comm& c) {
    auto f = File::Open(c, fs, "z.dat", kCreate | kRdWr, simmpi::NullInfo())
                 .value();
    ASSERT_TRUE(f.WriteAtAll(0, nullptr, 0, simmpi::ByteType()).ok());
    ASSERT_TRUE(f.ReadAtAll(0, nullptr, 0, simmpi::ByteType()).ok());
    ASSERT_TRUE(f.Close().ok());
  });
}

TEST(TwoPhase, ReducesRequestCountVsIndependent) {
  // The whole point of two-phase I/O: many interleaved small pieces become
  // few large contiguous requests.
  std::uint64_t reqs_collective = 0, reqs_independent = 0;
  for (const bool collective : {true, false}) {
    pfs::FileSystem fs;
    simmpi::Run(8, [&](Comm& c) {
      simmpi::Info info;
      info.Set("romio_cb_write", collective ? "enable" : "disable");
      info.Set("romio_ds_write", "disable");
      auto f = File::Open(c, fs, "r.dat", kCreate | kRdWr, info).value();
      auto ft = Datatype::Hvector(128, 8, 64, simmpi::ByteType());
      ASSERT_TRUE(f.SetView(static_cast<std::uint64_t>(c.rank()) * 8,
                            simmpi::ByteType(), ft)
                      .ok());
      auto data = Pattern(1024, 70);
      ASSERT_TRUE(
          f.WriteAtAll(0, data.data(), data.size(), simmpi::ByteType()).ok());
      ASSERT_TRUE(f.Close().ok());
    });
    (collective ? reqs_collective : reqs_independent) =
        fs.stats().write_requests;
  }
  EXPECT_LT(reqs_collective * 10, reqs_independent);
}

TEST(Hints, ParsedAndClamped) {
  simmpi::Info info;
  info.Set("cb_buffer_size", "1048576");
  info.Set("cb_nodes", "64");
  info.Set("romio_cb_read", "disable");
  info.Set("ind_rd_buffer_size", "1");  // clamped up
  auto h = Hints::Parse(info, /*comm_size=*/8, /*num_io_servers=*/12);
  EXPECT_EQ(h.cb_buffer_size, 1048576u);
  EXPECT_EQ(h.cb_nodes, 8);  // clamped to comm size
  EXPECT_FALSE(h.cb_read);
  EXPECT_TRUE(h.cb_write);
  EXPECT_GE(h.ind_rd_buffer_size, 4096u);
  auto d = Hints::Parse(simmpi::NullInfo(), 32, 12);
  EXPECT_EQ(d.cb_nodes, 12);  // default: one aggregator per I/O server
}

TEST(FileOps, SetSizeAndGetSize) {
  pfs::FileSystem fs;
  simmpi::Run(2, [&](Comm& c) {
    auto f = File::Open(c, fs, "sz.dat", kCreate | kRdWr, simmpi::NullInfo())
                 .value();
    ASSERT_TRUE(f.SetSize(12345).ok());
    EXPECT_EQ(f.GetSize().value(), 12345u);
    ASSERT_TRUE(f.Sync().ok());
    ASSERT_TRUE(f.Close().ok());
    EXPECT_FALSE(f.Sync().ok());  // closed handle rejects operations
  });
}

}  // namespace
}  // namespace mpiio
