// The strongest interoperability property in the repository: for randomized
// schemas and data, a dataset written through the PARALLEL library (with the
// writes partitioned across ranks, through two-phase collective I/O, type
// conversion, record interleaving — the whole stack) must be BYTE-IDENTICAL
// to the same dataset written through the SERIAL library by one process.
//
// "our parallel netCDF design retains the original netCDF file format" (§4)
// is tested here literally, not structurally.
#include <gtest/gtest.h>

#include "netcdf/dataset.hpp"
#include "pnetcdf/dataset.hpp"
#include "simmpi/runtime.hpp"
#include "util/rng.hpp"

namespace {

using ncformat::NcType;

struct Schema {
  struct VarSpec {
    std::string name;
    NcType type;
    std::vector<std::int32_t> dimids;
  };
  std::vector<ncformat::Dim> dims;
  std::vector<VarSpec> vars;
  std::uint64_t nrecs = 0;
};

Schema RandomSchema(pnc::SplitMix64& rng) {
  Schema s;
  const bool unlimited = rng.Below(2) == 1;
  const int ndims = 2 + static_cast<int>(rng.Below(2));  // 2..3 fixed dims
  if (unlimited) s.dims.push_back({"time", ncformat::kUnlimitedLen});
  for (int d = 0; d < ndims; ++d)
    s.dims.push_back({"dim" + std::to_string(d),
                      4 * (1 + rng.Below(3))});  // 4, 8, or 12
  const int nvars = 1 + static_cast<int>(rng.Below(4));
  for (int v = 0; v < nvars; ++v) {
    Schema::VarSpec var;
    var.name = "v" + std::to_string(v);
    // Numeric types only; char follows a different value model.
    const NcType types[] = {NcType::kByte, NcType::kShort, NcType::kInt,
                            NcType::kFloat, NcType::kDouble};
    var.type = types[rng.Below(5)];
    const bool record = unlimited && rng.Below(2) == 1;
    if (record) var.dimids.push_back(0);
    const int extra = 1 + static_cast<int>(rng.Below(2));
    for (int d = 0; d < extra; ++d)
      var.dimids.push_back(static_cast<std::int32_t>(
          (unlimited ? 1 : 0) + rng.Below(static_cast<std::uint64_t>(ndims))));
    s.vars.push_back(std::move(var));
  }
  s.nrecs = unlimited ? 1 + rng.Below(4) : 0;
  return s;
}

/// Deterministic value for element i of variable v — both writers use this.
double ValueAt(int v, std::uint64_t i) {
  return static_cast<double>((v + 1) * 7 + static_cast<double>(i % 97));
}

template <typename DS>
void Define(DS& ds, const Schema& s) {
  for (const auto& d : s.dims) ASSERT_TRUE(ds.DefDim(d.name, d.len).ok());
  for (const auto& v : s.vars)
    ASSERT_TRUE(ds.DefVar(v.name, v.type, v.dimids).ok());
  ASSERT_TRUE(ds.PutAttText(-1, "writer", "equiv-test").ok());
  ASSERT_TRUE(ds.EndDef().ok());
}

std::vector<std::byte> Bytes(pfs::FileSystem& fs, const std::string& path) {
  auto f = fs.Open(path).value();
  std::vector<std::byte> out(f.size());
  f.HarnessRead(0, out, 0.0);
  return out;
}

class EquivP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquivP, ParallelFileEqualsSerialFile) {
  pnc::SplitMix64 rng(GetParam());
  const Schema schema = RandomSchema(rng);
  const int nprocs = 1 << rng.Below(3);  // 1, 2, or 4

  pfs::FileSystem fs;

  // ---- serial reference ----
  {
    auto ds = netcdf::Dataset::Create(fs, "serial.nc").value();
    Define(ds, schema);
    for (std::size_t v = 0; v < schema.vars.size(); ++v) {
      auto shape = ds.header().VarShape(static_cast<int>(v));
      if (ds.header().IsRecordVar(static_cast<int>(v)))
        shape[0] = schema.nrecs;
      const std::uint64_t n = pnc::ShapeProduct(shape);
      std::vector<double> vals(n);
      for (std::uint64_t i = 0; i < n; ++i)
        vals[i] = ValueAt(static_cast<int>(v), i);
      std::vector<std::uint64_t> start(shape.size(), 0);
      ASSERT_TRUE(ds.PutVara<double>(static_cast<int>(v), start, shape, vals)
                      .ok());
    }
    ASSERT_TRUE(ds.Close().ok());
  }

  // ---- parallel writer: same schema, writes partitioned over the first
  //      dimension (block for fixed vars, record-by-record round-robin for
  //      record vars) ----
  simmpi::Run(nprocs, [&](simmpi::Comm& c) {
    auto ds = pnetcdf::Dataset::Create(c, fs, "parallel.nc",
                                       simmpi::NullInfo())
                  .value();
    Define(ds, schema);
    for (std::size_t v = 0; v < schema.vars.size(); ++v) {
      auto shape = ds.header().VarShape(static_cast<int>(v));
      const bool rec = ds.header().IsRecordVar(static_cast<int>(v));
      if (rec) shape[0] = schema.nrecs;
      if (shape.empty()) continue;
      std::uint64_t inner = 1;
      for (std::size_t d = 1; d < shape.size(); ++d) inner *= shape[d];

      // Slab partition of dimension 0, remainder to the last rank; some
      // ranks may hold nothing — the collective still completes.
      const std::uint64_t d0 = shape[0];
      const std::uint64_t per =
          (d0 + static_cast<std::uint64_t>(c.size()) - 1) /
          static_cast<std::uint64_t>(c.size());
      const std::uint64_t lo =
          std::min(d0, per * static_cast<std::uint64_t>(c.rank()));
      const std::uint64_t hi = std::min(d0, lo + per);

      std::vector<std::uint64_t> start(shape.size(), 0), count = shape;
      start[0] = lo;
      count[0] = hi - lo;
      std::vector<double> vals(count[0] * inner);
      for (std::uint64_t i = 0; i < vals.size(); ++i)
        vals[i] = ValueAt(static_cast<int>(v), lo * inner + i);
      ASSERT_TRUE(ds.PutVaraAll<double>(static_cast<int>(v), start, count,
                                        vals)
                      .ok());
    }
    ASSERT_TRUE(ds.Close().ok());
  });

  // ---- the property ----
  const auto a = Bytes(fs, "serial.nc");
  const auto b = Bytes(fs, "parallel.nc");
  ASSERT_EQ(a.size(), b.size()) << "file sizes differ (seed " << GetParam()
                                << ", nprocs " << nprocs << ")";
  EXPECT_EQ(a, b) << "file bytes differ (seed " << GetParam() << ", nprocs "
                  << nprocs << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivP, ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
