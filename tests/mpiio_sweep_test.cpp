// Property sweeps over the MPI-IO tuning space: any combination of
// aggregator count, collective buffer size, sieving switches, and process
// count must produce byte-identical files for the same logical writes —
// hints tune performance, never semantics.
#include <gtest/gtest.h>

#include "mpiio/file.hpp"
#include "simmpi/runtime.hpp"
#include "util/rng.hpp"

namespace mpiio {
namespace {

using simmpi::Comm;
using simmpi::Datatype;

std::vector<std::byte> Pattern(std::size_t n, std::uint64_t seed) {
  pnc::SplitMix64 rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.Next() & 0xFF);
  return v;
}

/// One fixed logical workload: every rank writes an interleaved block-cyclic
/// pattern plus a contiguous tail region. Returns the resulting file bytes.
std::vector<std::byte> RunWorkload(int nprocs, const simmpi::Info& info) {
  pfs::FileSystem fs;
  simmpi::Run(nprocs, [&](Comm& c) {
    auto f = File::Open(c, fs, "w.dat", kCreate | kRdWr, info).value();
    // Phase 1: block-cyclic interleave, 48-byte blocks.
    auto ft = Datatype::Hvector(
        64, 48, 48 * static_cast<std::uint64_t>(c.size()), simmpi::ByteType());
    ASSERT_TRUE(f.SetView(static_cast<std::uint64_t>(c.rank()) * 48,
                          simmpi::ByteType(), ft)
                    .ok());
    auto data = Pattern(64 * 48, 1000 + static_cast<std::uint64_t>(c.rank()));
    ASSERT_TRUE(
        f.WriteAtAll(0, data.data(), data.size(), simmpi::ByteType()).ok());
    // Phase 2: contiguous tail per rank after the interleaved region.
    f.ClearView();
    const std::uint64_t base = 48ull * 64 * static_cast<std::uint64_t>(c.size());
    auto tail = Pattern(1000, 2000 + static_cast<std::uint64_t>(c.rank()));
    ASSERT_TRUE(f.WriteAtAll(base + 1000ull * static_cast<std::uint64_t>(c.rank()),
                             tail.data(), tail.size(), simmpi::ByteType())
                    .ok());
    ASSERT_TRUE(f.Close().ok());
  });
  auto file = fs.Open("w.dat").value();
  std::vector<std::byte> bytes(file.size());
  file.HarnessRead(0, bytes, 0.0);
  return bytes;
}

struct SweepCase {
  int nprocs;
  const char* cb_nodes;
  const char* cb_buffer;
  const char* cb_write;
  const char* ds_write;
};

class HintSweepP : public ::testing::TestWithParam<SweepCase> {};

TEST_P(HintSweepP, HintsNeverChangeFileContents) {
  const auto& p = GetParam();
  // Reference: defaults at the same process count.
  const auto ref = RunWorkload(p.nprocs, simmpi::NullInfo());

  simmpi::Info info;
  if (*p.cb_nodes) info.Set("cb_nodes", p.cb_nodes);
  if (*p.cb_buffer) info.Set("cb_buffer_size", p.cb_buffer);
  if (*p.cb_write) info.Set("romio_cb_write", p.cb_write);
  if (*p.ds_write) info.Set("romio_ds_write", p.ds_write);
  const auto got = RunWorkload(p.nprocs, info);
  EXPECT_EQ(got, ref);
}

INSTANTIATE_TEST_SUITE_P(
    Tuning, HintSweepP,
    ::testing::Values(
        SweepCase{2, "1", "", "", ""},
        SweepCase{4, "1", "", "", ""},
        SweepCase{4, "3", "", "", ""},
        SweepCase{4, "4", "65536", "", ""},
        SweepCase{4, "", "8192", "", ""},       // tiny windows, many rounds
        SweepCase{4, "", "", "disable", ""},    // sieved independent
        SweepCase{4, "", "", "disable", "disable"},  // fully naive
        SweepCase{8, "2", "16384", "", ""},
        SweepCase{8, "5", "", "", ""},          // aggregators not dividing P
        SweepCase{3, "2", "", "", ""}),
    [](const auto& info) {
      const auto& p = info.param;
      std::string n = "p" + std::to_string(p.nprocs);
      if (*p.cb_nodes) n += std::string("_agg") + p.cb_nodes;
      if (*p.cb_buffer) n += std::string("_cb") + p.cb_buffer;
      if (*p.cb_write) n += "_nocoll";
      if (*p.ds_write) n += "_nosieve";
      return n;
    });

TEST(HintSweep, RandomizedPatternsAcrossConfigs) {
  // Randomized segment layouts, three configs each: all must agree.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    pnc::SplitMix64 rng(seed);
    const int nprocs = 2 + static_cast<int>(rng.Below(3));
    const std::uint64_t blocklen = 8 * (1 + rng.Below(8));
    const std::uint64_t nblocks = 16 + rng.Below(64);

    auto run = [&](const simmpi::Info& info) {
      pfs::FileSystem fs;
      simmpi::Run(nprocs, [&](Comm& c) {
        auto f = File::Open(c, fs, "r.dat", kCreate | kRdWr, info).value();
        auto ft = Datatype::Hvector(
            nblocks, blocklen,
            blocklen * static_cast<std::uint64_t>(c.size()),
            simmpi::ByteType());
        ASSERT_TRUE(f.SetView(blocklen * static_cast<std::uint64_t>(c.rank()),
                              simmpi::ByteType(), ft)
                        .ok());
        auto data = Pattern(nblocks * blocklen,
                            seed * 100 + static_cast<std::uint64_t>(c.rank()));
        ASSERT_TRUE(f.WriteAtAll(0, data.data(), data.size(),
                                 simmpi::ByteType())
                        .ok());
        ASSERT_TRUE(f.Close().ok());
      });
      auto file = fs.Open("r.dat").value();
      std::vector<std::byte> bytes(file.size());
      file.HarnessRead(0, bytes, 0.0);
      return bytes;
    };

    const auto ref = run(simmpi::NullInfo());
    simmpi::Info small_cb;
    small_cb.Set("cb_buffer_size", "4096");
    EXPECT_EQ(run(small_cb), ref) << "seed " << seed;
    simmpi::Info indep;
    indep.Set("romio_cb_write", "disable");
    EXPECT_EQ(run(indep), ref) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mpiio
