# Integration script: ncgen -> ncdump -> ncgen must reproduce the file
# byte-for-byte; nccopy output must compare clean under ncmpidiff; ncks
# subsetting must produce a readable file.
file(MAKE_DIRECTORY ${WORK})

function(run)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc
                  WORKING_DIRECTORY ${WORK})
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGN}")
  endif()
endfunction()

run(${NCGEN} -o a.nc ${CDL})
execute_process(COMMAND ${NCDUMP} a.nc OUTPUT_FILE ${WORK}/a.cdl
                WORKING_DIRECTORY ${WORK} RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "ncdump failed")
endif()
run(${NCGEN} -o b.nc a.cdl)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK}/a.nc ${WORK}/b.nc RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "ncgen(ncdump(f)) is not byte-identical to f")
endif()

run(${NCCOPY} -k 1 a.nc c.nc)
run(${NCMPIDIFF} a.nc c.nc)
run(${NCKS} -v pressure -d lat,1,2 a.nc d.nc)
run(${NCDUMP} -h d.nc)
