// Crash-consistency sweeps: a simulated power loss at EVERY byte boundary of
// a commit sequence must leave the dataset all-old or all-new, never a
// hybrid. Each iteration arms pfs::FaultPolicy::crash_after_write_bytes = t,
// runs one mutation (header commit / record append / fresh create), reboots
// (SetFaultPolicy({})), fscks the frozen image with nctools::VerifyFile
// (--repair semantics), and checks the reopened dataset against reference
// copies of the two legal states with CompareDatasets. The sweep ends at the
// first t the sequence survives uncrashed, so every byte boundary is hit.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "netcdf/dataset.hpp"
#include "pnetcdf/dataset.hpp"
#include "simmpi/runtime.hpp"
#include "test_support.hpp"
#include "tools/compare.hpp"
#include "tools/verify.hpp"

namespace {

using ncformat::NcType;

// Safety net: no commit sequence here writes anywhere near this many bytes.
constexpr std::uint64_t kSweepCeiling = 100'000;

pfs::FaultPolicy ArmCrash(pfs::FileSystem& fs, std::uint64_t t) {
  pfs::FaultPolicy p;
  p.crash_after_write_bytes = t;
  fs.SetFaultPolicy(p);
  return p;
}

/// Crash point × transient faults: every `nth` op fails transiently first,
/// so the commit sequence is being retried around while the power-loss
/// threshold creeps over it. The retry path must not change what is durable
/// when the crash finally bites.
pfs::FaultPolicy ArmCrashWithTransients(pfs::FileSystem& fs, std::uint64_t t,
                                        std::uint64_t nth) {
  pfs::FaultPolicy p;
  p.crash_after_write_bytes = t;
  p.transient_every_nth = nth;
  fs.SetFaultPolicy(p);
  return p;
}

/// fsck + repair the frozen image; a crashed commit sequence over a
/// previously committed dataset must never be unrecoverable.
void VerifyAndRepair(pfs::FileSystem& fs, const std::string& path) {
  auto before = nctools::VerifyFile(fs, path);
  ASSERT_TRUE(before.ok()) << before.status().message();
  ASSERT_NE(before.value().state, ncformat::FileState::kCorrupt)
      << before.value().detail;
  auto after = nctools::VerifyFile(fs, path, {.repair = true});
  ASSERT_TRUE(after.ok()) << after.status().message();
  ASSERT_EQ(after.value().state, ncformat::FileState::kClean)
      << after.value().detail;
  // Repair is idempotent: a second pass finds nothing to do.
  auto again = nctools::VerifyFile(fs, path, {.repair = true});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().state, ncformat::FileState::kClean);
  EXPECT_FALSE(again.value().repaired) << again.value().detail;
}

/// Build the reference dataset for the header-commit sweep: eight doubles in
/// a variable named `var_name` ("aa" = pre-crash, "bb" = post-rename).
void MakeRenameRef(pfs::FileSystem& fs, const std::string& path,
                   const std::string& var_name) {
  auto ds = netcdf::Dataset::Create(fs, path).value();
  const int x = ds.DefDim("x", 8).value();
  const int v = ds.DefVar(var_name, NcType::kDouble, {x}).value();
  ASSERT_TRUE(ds.EndDef().ok());
  std::vector<double> vals(8);
  std::iota(vals.begin(), vals.end(), 1.0);
  ASSERT_TRUE(ds.PutVar<double>(v, vals).ok());
  ASSERT_TRUE(ds.Close().ok());
}

void ExpectMatchesRef(pfs::FileSystem& fs, const std::string& path,
                      pfs::FileSystem& ref_fs, const std::string& ref_path) {
  auto a = netcdf::Dataset::Open(fs, path, false);
  ASSERT_TRUE(a.ok()) << a.status().message();
  auto b = netcdf::Dataset::Open(ref_fs, ref_path, false);
  ASSERT_TRUE(b.ok()) << b.status().message();
  auto diff = nctools::CompareDatasets(a.value(), b.value());
  ASSERT_TRUE(diff.ok()) << diff.status().message();
  EXPECT_TRUE(diff.value().equal)
      << (diff.value().differences.empty() ? std::string("(no detail)")
                                           : diff.value().differences[0]);
}

// ---------------------------------------------------------------------------
// Header commit (enddef/close of a schema change). The mutation renames the
// only variable "aa" -> "bb" — same name length, so the layout is preserved
// and the whole change is one atomic header commit. Every crash point must
// yield exactly the old schema or exactly the new one, with data intact.
TEST(CrashSweep, HeaderCommitEveryByteAllOldOrAllNew) {
  pfs::FileSystem ref_fs;
  MakeRenameRef(ref_fs, "old.nc", "aa");
  MakeRenameRef(ref_fs, "new.nc", "bb");

  int old_outcomes = 0, new_outcomes = 0;
  for (std::uint64_t t = 0; t < kSweepCeiling; ++t) {
    pfs::FileSystem fs;
    MakeRenameRef(fs, "f.nc", "aa");  // committed pre-crash state

    const pfs::FaultPolicy pol = ArmCrash(fs, t);
    SCOPED_TRACE("crash point t=" + std::to_string(t) + " " +
                 pnc_test::DescribePolicy(pol));
    {
      auto ds = netcdf::Dataset::Open(fs, "f.nc", true);
      if (ds.ok()) {
        auto d = std::move(ds).value();
        (void)d.Redef();
        (void)d.RenameVar(0, "bb");
        (void)d.EndDef();
        (void)d.Close();
      }
    }
    const bool crashed = fs.crashed();
    fs.SetFaultPolicy({});  // reboot: thaw the image for recovery

    VerifyAndRepair(fs, "f.nc");
    auto rd = netcdf::Dataset::Open(fs, "f.nc", false);
    ASSERT_TRUE(rd.ok()) << rd.status().message();
    const bool has_old = rd.value().VarId("aa").ok();
    const bool has_new = rd.value().VarId("bb").ok();
    ASSERT_NE(has_old, has_new) << "hybrid header after repair";
    ExpectMatchesRef(fs, "f.nc", ref_fs, has_old ? "old.nc" : "new.nc");

    if (!crashed) {
      // Threshold beyond the sequence: the rename ran to completion, which
      // also means the sweep has covered every byte of the commit path.
      EXPECT_TRUE(has_new);
      ++new_outcomes;
      break;
    }
    (has_old ? old_outcomes : new_outcomes)++;
  }
  // The sweep must have produced both verdicts: early crashes keep the old
  // schema, post-commit crashes carry the new one.
  EXPECT_GT(old_outcomes, 0);
  EXPECT_GT(new_outcomes, 0);
}

// ---------------------------------------------------------------------------
// Record append (torn numrecs, serial). Committed state: two records. The
// mutation appends a third and closes; numrecs may only grow after the
// record's data writes land, so every crash point yields numrecs == 2 with
// records 0-1 intact, or numrecs == 3 with record 2 intact as well.
void MakeRecordRef(pfs::FileSystem& fs, const std::string& path,
                   std::uint64_t nrecs) {
  auto ds = netcdf::Dataset::Create(fs, path).value();
  const int time = ds.DefDim("time", 0).value();  // unlimited
  const int x = ds.DefDim("x", 4).value();
  const int v = ds.DefVar("r", NcType::kInt, {time, x}).value();
  ASSERT_TRUE(ds.EndDef().ok());
  for (std::uint64_t rec = 0; rec < nrecs; ++rec) {
    std::vector<std::int32_t> vals(4);
    std::iota(vals.begin(), vals.end(), static_cast<std::int32_t>(10 * rec));
    const std::uint64_t st[] = {rec, 0};
    const std::uint64_t ct[] = {1, 4};
    ASSERT_TRUE(ds.PutVara<std::int32_t>(v, st, ct, vals).ok());
  }
  ASSERT_TRUE(ds.Close().ok());
}

TEST(CrashSweep, SerialRecordAppendTornNumrecs) {
  pfs::FileSystem ref_fs;
  MakeRecordRef(ref_fs, "two.nc", 2);
  MakeRecordRef(ref_fs, "three.nc", 3);

  int old_outcomes = 0, new_outcomes = 0;
  for (std::uint64_t t = 0; t < kSweepCeiling; ++t) {
    pfs::FileSystem fs;
    MakeRecordRef(fs, "f.nc", 2);  // committed pre-crash state

    const pfs::FaultPolicy pol = ArmCrash(fs, t);
    SCOPED_TRACE("crash point t=" + std::to_string(t) + " " +
                 pnc_test::DescribePolicy(pol));
    {
      auto ds = netcdf::Dataset::Open(fs, "f.nc", true);
      if (ds.ok()) {
        auto d = std::move(ds).value();
        const std::vector<std::int32_t> vals = {20, 21, 22, 23};
        const std::uint64_t st[] = {2, 0};
        const std::uint64_t ct[] = {1, 4};
        (void)d.PutVara<std::int32_t>(d.VarId("r").value(), st, ct, vals);
        (void)d.Close();
      }
    }
    const bool crashed = fs.crashed();
    fs.SetFaultPolicy({});

    VerifyAndRepair(fs, "f.nc");
    auto rd = netcdf::Dataset::Open(fs, "f.nc", false);
    ASSERT_TRUE(rd.ok()) << rd.status().message();
    const std::uint64_t n = rd.value().numrecs();
    ASSERT_TRUE(n == 2 || n == 3) << "hybrid record count " << n;
    ExpectMatchesRef(fs, "f.nc", ref_fs, n == 2 ? "two.nc" : "three.nc");

    if (!crashed) {
      EXPECT_EQ(n, 3u);
      ++new_outcomes;
      break;
    }
    (n == 2 ? old_outcomes : new_outcomes)++;
  }
  EXPECT_GT(old_outcomes, 0);
  EXPECT_GT(new_outcomes, 0);
}

// ---------------------------------------------------------------------------
// Fresh create (first enddef/close, journal bootstrap). There is no old
// state: every crash point must leave either a file the open path cleanly
// rejects (never committed) or a dataset with exactly the committed schema.
// Fixed-variable DATA is outside the commit protocol — under NoFill an
// unwritten or torn tail legally reads back as zeros — so only the schema
// and record count are asserted here.
TEST(CrashSweep, FreshCreateEveryByteSchemaAtomic) {
  for (std::uint64_t t = 0; t < kSweepCeiling; ++t) {
    pfs::FileSystem fs;
    const pfs::FaultPolicy pol = ArmCrash(fs, t);
    SCOPED_TRACE("crash point t=" + std::to_string(t) + " " +
                 pnc_test::DescribePolicy(pol));
    {
      auto ds = netcdf::Dataset::Create(fs, "f.nc");
      if (ds.ok()) {
        auto d = std::move(ds).value();
        const auto x = d.DefDim("x", 8);
        if (x.ok()) {
          const auto v = d.DefVar("a", NcType::kDouble, {x.value()});
          if (v.ok()) {
            (void)d.EndDef();
            std::vector<double> vals(8, 1.0);
            (void)d.PutVar<double>(v.value(), vals);
            (void)d.Close();
          }
        }
      }
    }
    const bool crashed = fs.crashed();
    fs.SetFaultPolicy({});

    if (!fs.Exists("f.nc")) {
      ASSERT_TRUE(crashed);  // crash before the primary file existed
      continue;
    }
    auto vr = nctools::VerifyFile(fs, "f.nc", {.repair = true});
    ASSERT_TRUE(vr.ok()) << vr.status().message();
    if (vr.value().state == ncformat::FileState::kCorrupt) {
      // Never committed: the open path must reject it, not misread it.
      EXPECT_FALSE(netcdf::Dataset::Open(fs, "f.nc", false).ok());
    } else {
      auto rd = netcdf::Dataset::Open(fs, "f.nc", false);
      ASSERT_TRUE(rd.ok()) << rd.status().message();
      EXPECT_EQ(rd.value().ndims(), 1);
      EXPECT_EQ(rd.value().nvars(), 1);
      EXPECT_TRUE(rd.value().VarId("a").ok());
      EXPECT_EQ(rd.value().numrecs(), 0u);
    }
    if (!crashed) break;  // whole create sequence covered
  }
}

// ---------------------------------------------------------------------------
// Crash point × transient faults, serial. Same append as above, but every
// third pfs op fails transiently first: the commit path is exercising its
// retry-with-backoff loops while the power-loss threshold sweeps over it.
// The all-old-or-all-new verdict must be untouched by the interaction.
TEST(CrashSweep, SerialRecordAppendTornNumrecsUnderTransients) {
  pfs::FileSystem ref_fs;
  MakeRecordRef(ref_fs, "two.nc", 2);
  MakeRecordRef(ref_fs, "three.nc", 3);

  int old_outcomes = 0, new_outcomes = 0;
  std::uint64_t total_transients = 0;
  for (std::uint64_t t = 0; t < kSweepCeiling; ++t) {
    pfs::FileSystem fs;
    MakeRecordRef(fs, "f.nc", 2);  // committed pre-crash state

    const pfs::FaultPolicy pol = ArmCrashWithTransients(fs, t, 3);
    SCOPED_TRACE("crash point t=" + std::to_string(t) + " " +
                 pnc_test::DescribePolicy(pol));
    {
      auto ds = netcdf::Dataset::Open(fs, "f.nc", true);
      if (ds.ok()) {
        auto d = std::move(ds).value();
        const std::vector<std::int32_t> vals = {20, 21, 22, 23};
        const std::uint64_t st[] = {2, 0};
        const std::uint64_t ct[] = {1, 4};
        (void)d.PutVara<std::int32_t>(d.VarId("r").value(), st, ct, vals);
        (void)d.Close();
      }
    }
    const bool crashed = fs.crashed();
    // An early crash point (t=0 tears the very first write) can freeze the
    // image before the third op, so transients are asserted over the sweep.
    total_transients += fs.stats().transient_faults;
    fs.SetFaultPolicy({});

    VerifyAndRepair(fs, "f.nc");
    auto rd = netcdf::Dataset::Open(fs, "f.nc", false);
    ASSERT_TRUE(rd.ok()) << rd.status().message();
    const std::uint64_t n = rd.value().numrecs();
    ASSERT_TRUE(n == 2 || n == 3) << "hybrid record count " << n;
    ExpectMatchesRef(fs, "f.nc", ref_fs, n == 2 ? "two.nc" : "three.nc");

    if (!crashed) {
      EXPECT_EQ(n, 3u);
      ++new_outcomes;
      break;
    }
    (n == 2 ? old_outcomes : new_outcomes)++;
  }
  EXPECT_GT(old_outcomes, 0);
  EXPECT_GT(new_outcomes, 0);
  EXPECT_GT(total_transients, 0u);
}

// ---------------------------------------------------------------------------
// Record append through the parallel path, four ranks (torn numrecs,
// collective). The root performs the journal commit after a collective data
// sync, so a committed count always implies durable record data — on every
// rank's writes, not just the root's.
TEST(CrashSweep, ParallelRecordAppendFourRanksTornNumrecs) {
  auto write_record = [](pnetcdf::Dataset& ds, int v, std::uint64_t rec,
                         int rank) {
    // Rank r owns elements [2r, 2r+2) of the 8-wide record row.
    const std::int32_t base = static_cast<std::int32_t>(100 * rec + 10 * rank);
    const std::vector<std::int32_t> mine = {base, base + 1};
    const std::uint64_t st[] = {rec, static_cast<std::uint64_t>(2 * rank)};
    const std::uint64_t ct[] = {1, 2};
    return ds.PutVaraAll<std::int32_t>(v, st, ct, mine);
  };

  int old_outcomes = 0, new_outcomes = 0;
  for (std::uint64_t t = 0; t < kSweepCeiling; ++t) {
    pfs::FileSystem fs;
    simmpi::Run(4, [&](simmpi::Comm& c) {  // committed state: one record
      auto ds =
          pnetcdf::Dataset::Create(c, fs, "p.nc", simmpi::NullInfo()).value();
      const int time = ds.DefDim("time", pnetcdf::kUnlimited).value();
      const int x = ds.DefDim("x", 8).value();
      const int v = ds.DefVar("r", NcType::kInt, {time, x}).value();
      ASSERT_TRUE(ds.EndDef().ok());
      ASSERT_TRUE(write_record(ds, v, 0, c.rank()).ok());
      ASSERT_TRUE(ds.Close().ok());
    });

    const pfs::FaultPolicy pol = ArmCrash(fs, t);
    SCOPED_TRACE("crash point t=" + std::to_string(t) + " " +
                 pnc_test::DescribePolicy(pol));
    simmpi::Run(4, [&](simmpi::Comm& c) {
      auto r = pnetcdf::Dataset::Open(c, fs, "p.nc", true, simmpi::NullInfo());
      if (!r.ok()) return;  // every rank sees the same broadcast verdict
      auto ds = std::move(r).value();
      const int v = ds.VarId("r").value();
      (void)write_record(ds, v, 1, c.rank());
      (void)ds.Close();
    });
    const bool crashed = fs.crashed();
    fs.SetFaultPolicy({});

    VerifyAndRepair(fs, "p.nc");
    auto rd = netcdf::Dataset::Open(fs, "p.nc", false);
    ASSERT_TRUE(rd.ok()) << rd.status().message();
    auto d = std::move(rd).value();
    const std::uint64_t n = d.numrecs();
    ASSERT_TRUE(n == 1 || n == 2) << "hybrid record count " << n;
    const int v = d.VarId("r").value();
    for (std::uint64_t rec = 0; rec < n; ++rec) {
      std::vector<std::int32_t> got(8);
      const std::uint64_t st[] = {rec, 0};
      const std::uint64_t ct[] = {1, 8};
      ASSERT_TRUE(d.GetVara<std::int32_t>(v, st, ct, got).ok());
      for (int rank = 0; rank < 4; ++rank) {
        const std::int32_t base =
            static_cast<std::int32_t>(100 * rec + 10 * rank);
        EXPECT_EQ(got[2 * rank], base) << "rec " << rec << " rank " << rank;
        EXPECT_EQ(got[2 * rank + 1], base + 1);
      }
    }

    if (!crashed) {
      EXPECT_EQ(n, 2u);
      ++new_outcomes;
      break;
    }
    (n == 1 ? old_outcomes : new_outcomes)++;
  }
  EXPECT_GT(old_outcomes, 0);
  EXPECT_GT(new_outcomes, 0);
}

// ---------------------------------------------------------------------------
// Crash point × transient faults, four ranks. The collective data path and
// the root's journal commit both retry transients while the crash threshold
// sweeps the append; every rank's slice must still come back all-old or
// all-new.
TEST(CrashSweep, ParallelRecordAppendFourRanksUnderTransients) {
  auto write_record = [](pnetcdf::Dataset& ds, int v, std::uint64_t rec,
                         int rank) {
    const std::int32_t base = static_cast<std::int32_t>(100 * rec + 10 * rank);
    const std::vector<std::int32_t> mine = {base, base + 1};
    const std::uint64_t st[] = {rec, static_cast<std::uint64_t>(2 * rank)};
    const std::uint64_t ct[] = {1, 2};
    return ds.PutVaraAll<std::int32_t>(v, st, ct, mine);
  };

  int old_outcomes = 0, new_outcomes = 0;
  for (std::uint64_t t = 0; t < kSweepCeiling; ++t) {
    pfs::FileSystem fs;
    simmpi::Run(4, [&](simmpi::Comm& c) {  // committed state: one record
      auto ds =
          pnetcdf::Dataset::Create(c, fs, "p.nc", simmpi::NullInfo()).value();
      const int time = ds.DefDim("time", pnetcdf::kUnlimited).value();
      const int x = ds.DefDim("x", 8).value();
      const int v = ds.DefVar("r", NcType::kInt, {time, x}).value();
      ASSERT_TRUE(ds.EndDef().ok());
      ASSERT_TRUE(write_record(ds, v, 0, c.rank()).ok());
      ASSERT_TRUE(ds.Close().ok());
    });

    const pfs::FaultPolicy pol = ArmCrashWithTransients(fs, t, 4);
    SCOPED_TRACE("crash point t=" + std::to_string(t) + " " +
                 pnc_test::DescribePolicy(pol));
    simmpi::Run(4, [&](simmpi::Comm& c) {
      auto r = pnetcdf::Dataset::Open(c, fs, "p.nc", true, simmpi::NullInfo());
      if (!r.ok()) return;
      auto ds = std::move(r).value();
      const int v = ds.VarId("r").value();
      (void)write_record(ds, v, 1, c.rank());
      (void)ds.Close();
    });
    const bool crashed = fs.crashed();
    fs.SetFaultPolicy({});

    VerifyAndRepair(fs, "p.nc");
    auto rd = netcdf::Dataset::Open(fs, "p.nc", false);
    ASSERT_TRUE(rd.ok()) << rd.status().message();
    auto d = std::move(rd).value();
    const std::uint64_t n = d.numrecs();
    ASSERT_TRUE(n == 1 || n == 2) << "hybrid record count " << n;
    const int v = d.VarId("r").value();
    for (std::uint64_t rec = 0; rec < n; ++rec) {
      std::vector<std::int32_t> got(8);
      const std::uint64_t st[] = {rec, 0};
      const std::uint64_t ct[] = {1, 8};
      ASSERT_TRUE(d.GetVara<std::int32_t>(v, st, ct, got).ok());
      for (int rank = 0; rank < 4; ++rank) {
        const std::int32_t base =
            static_cast<std::int32_t>(100 * rec + 10 * rank);
        EXPECT_EQ(got[2 * rank], base) << "rec " << rec << " rank " << rank;
        EXPECT_EQ(got[2 * rank + 1], base + 1);
      }
    }

    if (!crashed) {
      EXPECT_EQ(n, 2u);
      ++new_outcomes;
      break;
    }
    (n == 1 ? old_outcomes : new_outcomes)++;
  }
  EXPECT_GT(old_outcomes, 0);
  EXPECT_GT(new_outcomes, 0);
}

// ---------------------------------------------------------------------------
// .ncsum torn-write sweep: power loss at every byte boundary of a data
// overwrite + close, which rewrites the data bytes, re-sums the dirty
// chunk, and commits the checksum sidecar closed. Invariant: the offline
// scrub NEVER reports corruption afterwards. Every crash point must leave
// either a trusted sidecar whose sums match the bytes (crash before the
// session-open commit, when data and sums are both still old, or after the
// closing commit, when both are new) or a distrusted sidecar — torn, or
// left session-open — that honestly degrades every chunk to "unsummed".
TEST(CrashSweep, TornSumSidecarSweepNeverReportsCorrupt) {
  int trusted_outcomes = 0, untrusted_outcomes = 0;
  for (std::uint64_t t = 0; t < kSweepCeiling; ++t) {
    pfs::FileSystem fs;
    pnc_test::MakeValidFile(fs, "f.nc");  // sums committed by the clean close

    const pfs::FaultPolicy pol = ArmCrash(fs, t);
    SCOPED_TRACE("crash point t=" + std::to_string(t) + " " +
                 pnc_test::DescribePolicy(pol));
    {
      auto ds = netcdf::Dataset::Open(fs, "f.nc", true);
      if (ds.ok()) {
        auto d = std::move(ds).value();
        const auto v = d.VarId("a");
        if (v.ok()) {
          std::vector<double> vals(8, 2.0);
          (void)d.PutVar<double>(v.value(), vals);
        }
        (void)d.Close();
      }
    }
    const bool crashed = fs.crashed();
    fs.SetFaultPolicy({});  // reboot

    // The header journal's own guarantee still holds around the new
    // sidecar traffic; repair the primary, then scrub the data region.
    auto fixed = nctools::VerifyFile(fs, "f.nc", {.repair = true});
    ASSERT_TRUE(fixed.ok()) << fixed.status().message();
    ASSERT_NE(fixed.value().state, ncformat::FileState::kCorrupt)
        << fixed.value().detail;

    auto v = nctools::VerifyFile(fs, "f.nc", {.repair = false, .data = true});
    ASSERT_TRUE(v.ok()) << v.status().message();
    ASSERT_TRUE(v.value().scrub.has_value());
    const ncformat::ScrubReport& s = *v.value().scrub;
    ASSERT_EQ(s.corrupt, 0u) << "false corruption verdict after a crash";
    if (s.trusted) {
      // A trusted table from this tiny file covers its whole data region.
      EXPECT_EQ(s.unsummed, 0u);
      EXPECT_GE(s.clean, 1u);
      ++trusted_outcomes;
    } else {
      ++untrusted_outcomes;
    }
    if (!crashed) break;  // whole overwrite+flush sequence covered
  }
  // Both verdicts must appear across the sweep: early/late crashes keep a
  // trusted closed table, mid-session crashes degrade to unsummed.
  EXPECT_GT(trusted_outcomes, 0);
  EXPECT_GT(untrusted_outcomes, 0);
}

// ---------------------------------------------------------------------------
// Scripted crash point: crash_op pins the dying op by index and
// crash_write_bytes tears its payload at a chosen boundary; afterwards the
// image is frozen (every Try* op fails) until SetFaultPolicy models reboot.
TEST(CrashScripted, TornWriteFreezesImageUntilReboot) {
  pfs::FileSystem fs;
  auto f = fs.Create("t.bin", false).value();
  std::vector<std::byte> payload(64, std::byte{0xAB});
  ASSERT_TRUE(f.TryWrite(0, payload, 0.0).status.ok());

  pfs::FaultPolicy pol;
  pol.crash_op = 0;           // SetPolicy resets op indices: the next op
  pol.crash_write_bytes = 17; // tear mid-payload
  fs.SetFaultPolicy(pol);
  SCOPED_TRACE(pnc_test::DescribePolicy(pol));

  std::vector<std::byte> next(64, std::byte{0xCD});
  const pfs::IoResult w = f.TryWrite(0, next, 0.0);
  EXPECT_FALSE(w.status.ok());
  EXPECT_TRUE(fs.crashed());
  EXPECT_EQ(fs.stats().crashes, 1u);

  // Frozen: reads and writes both refuse until reboot; the harness path
  // still works so the torn image can be inspected.
  std::byte b{};
  EXPECT_FALSE(f.TryRead(0, pnc::ByteSpan(&b, 1), 0.0).status.ok());
  EXPECT_EQ(pnc_test::ByteAt(fs, "t.bin", 16), std::byte{0xCD});  // torn prefix
  EXPECT_EQ(pnc_test::ByteAt(fs, "t.bin", 17), std::byte{0xAB});  // old bytes

  fs.SetFaultPolicy({});  // reboot
  EXPECT_FALSE(fs.crashed());
  EXPECT_TRUE(f.TryRead(0, pnc::ByteSpan(&b, 1), 0.0).status.ok());
}

}  // namespace
