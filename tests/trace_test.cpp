// Causal tracing, the flight recorder, and critical-path analysis.
//
// Four areas, mirroring the layering of src/iostat/events.hpp:
//   1. The 4-rank two-phase collective write of iostat_test, re-checked at
//      the event level: exact per-rank event counts for every kind the path
//      emits, and the critical-path decomposition attributing >= 95% of the
//      op's virtual wall time to named (rank, phase) segments.
//   2. pnc-events-v1 round trip: EventsToJson -> ParseEventsJson preserves
//      every field; garbage and unknown kinds are rejected.
//   3. The hang-watchdog abort dumps each rank's flight-recorder tail as
//      parseable pnc-events-v1 (death test), and a forced pfs hard fault
//      writes the PNC_FLIGHT_DUMP file with request IDs resolvable to the
//      originating API call.
//   4. Fault injection: transient-fault and retry events carry the
//      originating request ID and the "api:variable" detail minted at the
//      PnetCDF boundary.
#include "iostat/critpath.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "iostat/events.hpp"
#include "iostat/iostat.hpp"
#include "iostat/timeline.hpp"
#include "iostat/trace.hpp"
#include "mpiio/file.hpp"
#include "pnetcdf/dataset.hpp"
#include "simmpi/runtime.hpp"

namespace {

using iostat::Ev;
using iostat::Event;
using iostat::FlightRecorder;
using iostat::Registry;
using ncformat::NcType;
using simmpi::Comm;

std::size_t Count(const std::vector<Event>& evs, Ev kind) {
  std::size_t n = 0;
  for (const auto& e : evs)
    if (e.kind == kind) ++n;
  return n;
}

const Event* Find(const std::vector<Event>& evs, Ev kind) {
  for (const auto& e : evs)
    if (e.kind == kind) return &e;
  return nullptr;
}

/// The api_begin event that minted request `req` on one rank's tail.
const Event* FindApiBegin(const std::vector<Event>& evs, std::uint64_t req) {
  for (const auto& e : evs)
    if (e.kind == Ev::kApiBegin && e.req == req) return &e;
  return nullptr;
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
#if !PNC_IOSTAT_ENABLED
    GTEST_SKIP() << "instrumentation compiled out (PNC_IOSTAT=OFF)";
#endif
    Registry::Get().Reset();
    Registry::Get().SetCountersEnabled(true);
  }
  void TearDown() override { Registry::Get().Reset(); }
};

// ------------------------------------------------ 4-rank two-phase write

// The workload of iostat_test.FourRankTwoPhaseWriteExactCounters (4 ranks,
// one 256 KiB block each, 2 servers / 2 aggregators, 256 KiB stripes, one
// window round), pinned at the event level. Domains: [0,512K) -> aggregator
// rank 0, [512K,1M) -> aggregator rank 2; ranks 1 and 3 each ship one
// exchange message; each aggregator writes one 512 KiB span striped over
// both servers.
TEST_F(TraceTest, FourRankTwoPhaseWriteExactEvents) {
  constexpr std::uint64_t kBlock = 256 << 10;
  pfs::Config cfg;
  cfg.num_servers = 2;
  cfg.stripe_size = kBlock;
  pfs::FileSystem fs(cfg);

  std::vector<std::vector<Event>> snap;
  simmpi::Run(4, [&](Comm& c) {
    auto f = mpiio::File::Open(c, fs, "tp.dat", mpiio::kCreate | mpiio::kRdWr,
                               simmpi::NullInfo())
                 .value();
    // Events start after open: no namespace traffic in the expectations.
    c.Barrier();
    if (c.rank() == 0) Registry::Get().Reset();
    c.Barrier();
    PNC_IOSTAT_BIND_RANK(c.rank());
    std::vector<std::byte> mine(kBlock, std::byte{0x5A});
    ASSERT_TRUE(f.WriteAtAll(static_cast<std::uint64_t>(c.rank()) * kBlock,
                             mine.data(), kBlock, simmpi::ByteType())
                    .ok());
    // Snapshot before Close so the expectations cover exactly one op.
    c.Barrier();
    if (c.rank() == 0) snap = FlightRecorder::Get().Collect();
    c.Barrier();
    ASSERT_TRUE(f.Close().ok());
  });
  ASSERT_EQ(snap.size(), 4u);

  for (int r = 0; r < 4; ++r) {
    SCOPED_TRACE("rank " + std::to_string(r));
    const auto& ev = snap[static_cast<std::size_t>(r)];
    const bool agg = r == 0 || r == 2;

    // One collective op, one window round, on every rank.
    EXPECT_EQ(Count(ev, Ev::kCollBegin), 1u);
    EXPECT_EQ(Count(ev, Ev::kCollEnd), 1u);
    EXPECT_EQ(Count(ev, Ev::kXchgBegin), 1u);
    EXPECT_EQ(Count(ev, Ev::kXchgEnd), 1u);
    EXPECT_EQ(Count(ev, Ev::kIoBegin), 1u);
    EXPECT_EQ(Count(ev, Ev::kIoEnd), 1u);
    // Only the non-aggregators ship a message, each to its domain's owner.
    EXPECT_EQ(Count(ev, Ev::kXchgSend), agg ? 0u : 1u);
    if (const Event* s = Find(ev, Ev::kXchgSend)) {
      EXPECT_EQ(s->a0, 0u);                              // window 0
      EXPECT_EQ(s->a1, r == 1 ? 0u : 2u);                // dest aggregator
    }
    // Each aggregator adopts two pieces (itself + one remote) and issues
    // one write striped over both servers.
    EXPECT_EQ(Count(ev, Ev::kAggPiece), agg ? 2u : 0u);
    EXPECT_EQ(Count(ev, Ev::kPfsServer), agg ? 2u : 0u);
    std::uint64_t pfs_bytes = 0;
    for (const auto& e : ev) {
      if (e.kind != Ev::kPfsServer) continue;
      EXPECT_STREQ(e.detail, "w");
      EXPECT_LT(e.a0 & 0xff, 2u);       // server id
      EXPECT_GT(e.d_ns, 0.0);           // service time
      pfs_bytes += e.a0 >> 8;
    }
    EXPECT_EQ(pfs_bytes, agg ? 2 * kBlock : 0u);
    // Clean run, raw mpiio (no API boundary above): no faults, no retries,
    // no request scopes.
    EXPECT_EQ(Count(ev, Ev::kPfsFault), 0u);
    EXPECT_EQ(Count(ev, Ev::kRetry), 0u);
    EXPECT_EQ(Count(ev, Ev::kApiBegin), 0u);
    // Sequence numbers are per-rank and strictly increasing, and the op
    // brackets everything else.
    for (std::size_t i = 1; i < ev.size(); ++i)
      EXPECT_GT(ev[i].seq, ev[i - 1].seq);
    ASSERT_FALSE(ev.empty());
    EXPECT_EQ(ev.front().kind, Ev::kCollBegin);
    EXPECT_EQ(ev.back().kind, Ev::kCollEnd);
    EXPECT_EQ(ev.back().a0, 1u);  // ok
  }

  // ---- critical path: the decomposition tiles the op's wall time ----
  const iostat::CritPath cp = iostat::AnalyzeCritPath(snap);
  ASSERT_EQ(cp.ops.size(), 1u);
  const auto& op = cp.ops[0];
  EXPECT_TRUE(op.is_write);
  EXPECT_TRUE(op.ok);
  ASSERT_EQ(op.ranks.size(), 4u);
  EXPECT_GT(op.wall_ns(), 0.0);
  // The acceptance bar: >= 95% of (nranks x wall) lands in named segments.
  // By construction (synced departures) it is in fact ~100%.
  EXPECT_GE(op.attributed_frac(), 0.95);
  EXPECT_LE(op.attributed_frac(), 1.0 + 1e-9);
  for (const auto& seg : op.ranks) {
    SCOPED_TRACE("rank " + std::to_string(seg.rank));
    const bool agg = seg.rank == 0 || seg.rank == 2;
    EXPECT_GT(seg.exchange_ns, 0.0);
    if (agg)
      EXPECT_GT(seg.io_ns, 0.0);  // aggregators spend the io phase writing
    else
      EXPECT_EQ(seg.io_ns, 0.0);  // non-aggregators idle through it
    EXPECT_GE(seg.wait_ns, 0.0);
    // The three segments tile this rank's [op begin, depart] interval
    // exactly. Departures trail op end only by the clock skew of the final
    // sync allreduce (tree roles differ per rank), so each rank still has
    // >= 95% of the op's wall time in named segments.
    const double sum = seg.wait_ns + seg.exchange_ns + seg.io_ns;
    EXPECT_NEAR(sum, seg.depart_ns - op.begin_ns, 1e-6);
    EXPECT_GE(sum, 0.95 * op.wall_ns());
    EXPECT_LE(sum, op.wall_ns() + 1e-6);
  }
  // Both servers serviced one span from each aggregator.
  ASSERT_EQ(op.servers.size(), 2u);
  for (const auto& sv : op.servers) {
    EXPECT_EQ(sv.ops, 2u);
    EXPECT_EQ(sv.bytes, 2 * kBlock);
    EXPECT_GT(sv.service_ns, 0.0);
  }

  // The pretty renderer names every segment it attributes.
  const std::string text = iostat::PrettyPrintCritPath(cp);
  EXPECT_NE(text.find("critical path: 1 collective op(s)"), std::string::npos);
  EXPECT_NE(text.find("% attributed"), std::string::npos);
  EXPECT_NE(text.find("wait"), std::string::npos);
  EXPECT_NE(text.find("exchange"), std::string::npos);
  EXPECT_NE(text.find("file-io"), std::string::npos);
  EXPECT_NE(text.find("server 0:"), std::string::npos);
}

// ------------------------------------------ timeline counter tracks

// The Chrome-trace exporter's timeline overlay, pinned byte-exactly on a
// synthetic summary: one counter sample per bucket per series, pid 1,
// ts = bucket * cell width in microseconds. "tl mbps sN" rides the server's
// own tid (aligning with its "pfs server N" row); tenant/track counters
// share tid 0.
TEST_F(TraceTest, ChromeTraceRendersTimelineCounterTracksExactly) {
  iostat::TimelineSummary s;
  s.present = true;
  s.cell_ns = 2e6;  // 2 ms cells -> bucket k samples at ts = k * 2000 us
  s.horizon_ns = 6e6;
  // 1 MB in bucket 0 of server 0: 1e6 bytes / 2e6 ns * 1e3 = 500 MB/s.
  s.servers.push_back({0, 0, 1e6, 1.5e6, 3, 2});
  s.servers.push_back({2, 1, 5e5, 1e6, 1, 1});
  iostat::TlTenantCell t;
  t.bucket = 1;
  t.tenant = "steady";
  t.p99_wait_ns = 4500;
  s.tenants.push_back(t);
  s.tracks.push_back(
      {static_cast<int>(iostat::TlTrack::kExchangeMsgs), 2, 6.0});

  const std::string trace = iostat::ToChromeTrace(&s);
  EXPECT_NE(trace.find("{\"name\":\"tl mbps s0\",\"cat\":\"timeline\","
                       "\"ph\":\"C\",\"ts\":0.000,\"pid\":1,\"tid\":0,"
                       "\"args\":{\"mbps\":500.000}}"),
            std::string::npos);
  EXPECT_NE(trace.find("{\"name\":\"tl mbps s1\",\"cat\":\"timeline\","
                       "\"ph\":\"C\",\"ts\":4000.000,\"pid\":1,\"tid\":1,"
                       "\"args\":{\"mbps\":250.000}}"),
            std::string::npos);
  EXPECT_NE(trace.find("{\"name\":\"tl p99 wait us steady\","
                       "\"cat\":\"timeline\",\"ph\":\"C\",\"ts\":2000.000,"
                       "\"pid\":1,\"tid\":0,\"args\":{\"us\":4.500}}"),
            std::string::npos);
  EXPECT_NE(trace.find("{\"name\":\"tl exchange_msgs\",\"cat\":\"timeline\","
                       "\"ph\":\"C\",\"ts\":4000.000,\"pid\":1,\"tid\":0,"
                       "\"args\":{\"value\":6.000}}"),
            std::string::npos);

  // Absent timeline (null, or present=false): no "tl " counters at all,
  // so gated-off runs export the same trace they always did.
  EXPECT_EQ(iostat::ToChromeTrace().find("\"tl "), std::string::npos);
  s.present = false;
  EXPECT_EQ(iostat::ToChromeTrace(&s).find("\"tl "), std::string::npos);
}

// End to end: the 4-rank two-phase write of the exact-events test, with the
// timeline armed — the exported trace must carry one "tl mbps" track per
// pfs server next to the per-grant serve spans.
TEST_F(TraceTest, FourRankTwoPhaseTraceCarriesTimelineTracks) {
  iostat::TimelineRegistry::Get().SetEnabled(true);
  constexpr std::uint64_t kBlock = 256 << 10;
  pfs::Config cfg;
  cfg.num_servers = 2;
  cfg.stripe_size = kBlock;
  pfs::FileSystem fs(cfg);
  simmpi::Run(4, [&](Comm& c) {
    auto f = mpiio::File::Open(c, fs, "tl.dat", mpiio::kCreate | mpiio::kRdWr,
                               simmpi::NullInfo())
                 .value();
    PNC_IOSTAT_BIND_RANK(c.rank());
    std::vector<std::byte> mine(kBlock, std::byte{0x5A});
    ASSERT_TRUE(f.WriteAtAll(static_cast<std::uint64_t>(c.rank()) * kBlock,
                             mine.data(), kBlock, simmpi::ByteType())
                    .ok());
    ASSERT_TRUE(f.Close().ok());
  });
  const iostat::TimelineSummary tl = iostat::TimelineRegistry::Get().Snapshot();
  iostat::TimelineRegistry::Get().SetEnabled(false);
  ASSERT_TRUE(tl.present);
  const std::string trace = iostat::ToChromeTrace(&tl);
  EXPECT_NE(trace.find("\"tl mbps s0\""), std::string::npos);
  EXPECT_NE(trace.find("\"tl mbps s1\""), std::string::npos);
  // The bucketed exchange track observed both non-aggregators' sends.
  EXPECT_NE(trace.find("\"tl exchange_msgs\""), std::string::npos);
}

// ---------------------------------------------- pnc-events-v1 round trip

TEST_F(TraceTest, EventsJsonRoundTripPreservesFields) {
  PNC_IOSTAT_BIND_RANK(0);
  PNC_IOSTAT_EVENT(kPfsServer, 123.5, 800.25, (4096u << 8) | 3u, 77, "w");
  PNC_IOSTAT_EVENT(kPfsFault, 1000, 0, 1, 0, "transient");
  PNC_IOSTAT_EVENT(kXchgSend, 2000, 0, 5, 2, "needs \"escaping\"\n");

  const std::string json = iostat::EventsToJson("round-trip");
  auto parsed = iostat::ParseEventsJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const iostat::EventDump& d = parsed.value();
  EXPECT_EQ(d.reason, "round-trip");
  EXPECT_EQ(d.capacity, FlightRecorder::Get().capacity());
  ASSERT_EQ(d.ranks.size(), 1u);
  const auto& tail = d.ranks[0];
  EXPECT_EQ(tail.rank, 0);
  EXPECT_EQ(tail.recorded, 3u);
  EXPECT_EQ(tail.dropped, 0u);
  ASSERT_EQ(tail.events.size(), 3u);

  const Event& e0 = tail.events[0];
  EXPECT_EQ(e0.kind, Ev::kPfsServer);
  EXPECT_EQ(e0.seq, 1u);
  EXPECT_DOUBLE_EQ(e0.t_ns, 123.5);
  EXPECT_DOUBLE_EQ(e0.d_ns, 800.25);
  EXPECT_EQ(e0.a0, (4096u << 8) | 3u);
  EXPECT_EQ(e0.a1, 77u);
  EXPECT_STREQ(e0.detail, "w");
  EXPECT_EQ(tail.events[1].kind, Ev::kPfsFault);
  EXPECT_STREQ(tail.events[1].detail, "transient");
  EXPECT_STREQ(tail.events[2].detail, "needs \"escaping\"\n");

  // A dump embedded in surrounding log noise still parses.
  auto embedded = iostat::ParseEventsJson("watchdog fired\n" + json + "\n");
  ASSERT_TRUE(embedded.ok());
  EXPECT_EQ(embedded.value().ranks.size(), 1u);
}

TEST_F(TraceTest, EventsJsonParserRejectsGarbage) {
  EXPECT_FALSE(iostat::ParseEventsJson("not json").ok());
  EXPECT_FALSE(iostat::ParseEventsJson("{}").ok());
  // An unknown kind is a schema violation, not a silent skip.
  EXPECT_FALSE(
      iostat::ParseEventsJson(
          "{\"schema\":\"pnc-events-v1\",\"reason\":\"x\",\"capacity\":4,"
          "\"nranks\":1,\"ranks\":[{\"rank\":0,\"recorded\":1,\"dropped\":0,"
          "\"events\":[{\"seq\":1,\"kind\":\"no_such_kind\",\"t_ns\":0,"
          "\"d_ns\":0,\"req\":0,\"a0\":0,\"a1\":0,\"detail\":\"\"}]}]}")
          .ok());
}

TEST_F(TraceTest, RingKeepsTailAndCountsDrops) {
  PNC_IOSTAT_BIND_RANK(0);
  const std::size_t cap = FlightRecorder::Get().capacity();
  const std::size_t total = cap + 16;
  for (std::size_t i = 0; i < total; ++i)
    PNC_IOSTAT_EVENT(kIndep, static_cast<double>(i), 0, i, 0, nullptr);
  const std::vector<Event> tail = FlightRecorder::Get().CollectRank(0);
  ASSERT_EQ(tail.size(), cap);
  // Oldest retained is the (total - cap + 1)-th recorded; newest is the last.
  EXPECT_EQ(tail.front().seq, total - cap + 1);
  EXPECT_EQ(tail.back().seq, total);
  EXPECT_EQ(FlightRecorder::Get().RecordedCount(0), total);
}

// ------------------------------------------------- dumps on failure paths

TEST_F(TraceTest, HangWatchdogDumpsEveryRanksTail) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string dump = "trace_watchdog_dump.json";
  std::remove(dump.c_str());
  // Re-executed in the death-test child, so the dying process inherits it.
  setenv("PNC_FLIGHT_DUMP", dump.c_str(), 1);
  simmpi::CostModel cm;
  cm.hang_timeout_ms = 200.0;  // real milliseconds, keep the death test quick
  EXPECT_DEATH(
      {
        simmpi::Run(
            2,
            [](Comm& c) {
              // Every rank leaves a fingerprint in its ring before rank 0
              // deadlocks waiting for a message rank 1 never sends.
              PNC_IOSTAT_EVENT(kIndep, c.clock().now(), 0, 64, 1, "pre-hang");
              if (c.rank() == 0) (void)c.Recv(/*src=*/1, /*tag=*/7);
            },
            cm);
      },
      "pnc-events-v1");
  unsetenv("PNC_FLIGHT_DUMP");

  std::ifstream in(dump, std::ios::binary);
  ASSERT_TRUE(in.good()) << "watchdog did not write " << dump;
  std::ostringstream ss;
  ss << in.rdbuf();
  auto parsed = iostat::ParseEventsJson(ss.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const iostat::EventDump& d = parsed.value();
  EXPECT_EQ(d.reason, "hang-watchdog");
  ASSERT_EQ(d.ranks.size(), 2u);
  for (const auto& tail : d.ranks) {
    SCOPED_TRACE("rank " + std::to_string(tail.rank));
    ASSERT_FALSE(tail.events.empty());
    EXPECT_GE(tail.recorded, static_cast<std::uint64_t>(tail.events.size()));
    bool saw_fingerprint = false;
    for (const auto& e : tail.events) {
      EXPECT_GT(e.seq, 0u);  // every retained record is valid, none torn
      if (e.kind == Ev::kIndep && std::string(e.detail) == "pre-hang")
        saw_fingerprint = true;
    }
    EXPECT_TRUE(saw_fingerprint);
  }
  std::remove(dump.c_str());
}

TEST_F(TraceTest, PfsHardFaultDumpResolvesRequestIds) {
  const std::string dump = "trace_hard_fault_dump.json";
  std::remove(dump.c_str());
  setenv("PNC_FLIGHT_DUMP", dump.c_str(), 1);

  constexpr int kRanks = 4;
  constexpr std::uint64_t kElems = 64 * 1024;
  pfs::FileSystem fs;
  simmpi::Run(kRanks, [&](Comm& c) {
    simmpi::Info info;
    info.Set("cb_buffer_size", "4096");  // many window writes per collective
    auto ds = pnetcdf::Dataset::Create(c, fs, "m.nc", info).value();
    const int x = ds.DefDim("x", kElems).value();
    const int v = ds.DefVar("d", NcType::kByte, {x}).value();
    ASSERT_TRUE(ds.EndDef().ok());

    pfs::FaultPolicy pol;
    pol.permanent_from = 2;  // a couple of window writes land, then none
    if (c.rank() == 0) fs.SetFaultPolicy(pol);
    c.Barrier();

    const std::uint64_t share = kElems / kRanks;
    const std::uint64_t st[] = {share * static_cast<std::uint64_t>(c.rank())};
    const std::uint64_t ct[] = {share};
    std::vector<signed char> mine(share, 2);
    EXPECT_FALSE(ds.PutVaraAll<signed char>(v, st, ct, mine).ok());
    if (c.rank() == 0) fs.SetFaultPolicy(pfs::FaultPolicy{});
    c.Barrier();
    ASSERT_TRUE(ds.Close().ok());
  });
  unsetenv("PNC_FLIGHT_DUMP");

  std::ifstream in(dump, std::ios::binary);
  ASSERT_TRUE(in.good()) << "hard fault did not write " << dump;
  std::ostringstream ss;
  ss << in.rdbuf();
  auto parsed = iostat::ParseEventsJson(ss.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const iostat::EventDump& d = parsed.value();
  EXPECT_EQ(d.reason, "pfs-hard-fault");

  // The dump holds the permanent fault, and its request ID resolves to the
  // api_begin event of the collective write that was on the stack.
  bool resolved = false;
  for (const auto& tail : d.ranks) {
    for (const auto& e : tail.events) {
      if (e.kind != Ev::kPfsFault ||
          std::string(e.detail) != "permanent")
        continue;
      EXPECT_NE(e.req, 0u);
      const Event* api = FindApiBegin(tail.events, e.req);
      ASSERT_NE(api, nullptr);
      EXPECT_STREQ(api->detail, "put_vara_all:d");
      resolved = true;
    }
  }
  EXPECT_TRUE(resolved);
  std::remove(dump.c_str());
}

// --------------------------------------------- fault/retry request linkage

TEST_F(TraceTest, TransientFaultAndRetryEventsCarryRequestAndVariable) {
  constexpr int kRanks = 4;
  constexpr std::uint64_t kElems = 64 * 1024;
  pfs::FileSystem fs;

  std::vector<std::vector<Event>> snap;
  simmpi::Run(kRanks, [&](Comm& c) {
    auto ds = pnetcdf::Dataset::Create(c, fs, "m.nc", simmpi::NullInfo())
                  .value();
    const int x = ds.DefDim("x", kElems).value();
    const int v = ds.DefVar("d", NcType::kByte, {x}).value();
    ASSERT_TRUE(ds.EndDef().ok());

    // Arm after the metadata phase: the next faultable op — an aggregator
    // window write inside the collective — fails once, transiently.
    pfs::FaultPolicy pol;
    pol.transient_ops = {0};
    if (c.rank() == 0) {
      fs.SetFaultPolicy(pol);
      fs.ResetStats();
      Registry::Get().Reset();
    }
    c.Barrier();
    PNC_IOSTAT_BIND_RANK(c.rank());

    const std::uint64_t share = kElems / kRanks;
    const std::uint64_t st[] = {share * static_cast<std::uint64_t>(c.rank())};
    const std::uint64_t ct[] = {share};
    std::vector<signed char> mine(share, 2);
    ASSERT_TRUE(ds.PutVaraAll<signed char>(v, st, ct, mine).ok());

    // Snapshot before Close so every captured event belongs to the write.
    c.Barrier();
    if (c.rank() == 0) snap = FlightRecorder::Get().Collect();
    c.Barrier();
    ASSERT_TRUE(ds.Close().ok());
  });
  EXPECT_EQ(fs.stats().transient_faults, 1u);

  std::size_t faults = 0, retries = 0;
  for (const auto& ev : snap) {
    for (const auto& e : ev) {
      if (e.kind != Ev::kPfsFault && e.kind != Ev::kRetry) continue;
      (e.kind == Ev::kPfsFault ? faults : retries) += 1;
      if (e.kind == Ev::kPfsFault) {
        EXPECT_STREQ(e.detail, "transient");
      }
      // The event carries the originating request, and that request's
      // api_begin on the same rank names the API and the variable.
      EXPECT_NE(e.req, 0u);
      const Event* api = FindApiBegin(ev, e.req);
      ASSERT_NE(api, nullptr);
      EXPECT_STREQ(api->detail, "put_vara_all:d");
    }
  }
  EXPECT_EQ(faults, 1u);
  EXPECT_EQ(retries, 1u);
}

// ----------------------------------------------------- runtime gating

TEST_F(TraceTest, DisabledRecorderRecordsNothing) {
  PNC_IOSTAT_BIND_RANK(0);
  FlightRecorder::Get().SetEnabled(false);
  PNC_IOSTAT_EVENT(kIndep, 1.0, 0, 1, 1, nullptr);
  FlightRecorder::Get().SetEnabled(true);
  EXPECT_EQ(FlightRecorder::Get().RecordedCount(0), 0u);
  EXPECT_TRUE(FlightRecorder::Get().CollectRank(0).empty());
}

TEST_F(TraceTest, ReqScopeNestsAndRestores) {
  PNC_IOSTAT_BIND_RANK(0);
  EXPECT_EQ(PNC_IOSTAT_CURRENT_REQ(), 0u);
  {
    PNC_IOSTAT_REQ_SCOPE("put_vara", "outer", 0.0, 8, 1);
    const std::uint64_t outer = PNC_IOSTAT_CURRENT_REQ();
    EXPECT_NE(outer, 0u);
    {
      PNC_IOSTAT_REQ_SCOPE("write_header", "", 1.0, 0, 1);
      EXPECT_EQ(PNC_IOSTAT_CURRENT_REQ(), outer + 1);
    }
    EXPECT_EQ(PNC_IOSTAT_CURRENT_REQ(), outer);
  }
  EXPECT_EQ(PNC_IOSTAT_CURRENT_REQ(), 0u);
  // Each scope recorded its api_begin with the "api:variable" detail.
  const std::vector<Event> tail = FlightRecorder::Get().CollectRank(0);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].kind, Ev::kApiBegin);
  EXPECT_STREQ(tail[0].detail, "put_vara:outer");
  EXPECT_STREQ(tail[1].detail, "write_header");
}

}  // namespace
