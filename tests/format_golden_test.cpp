// Spec conformance: byte-for-byte golden files against the netCDF classic
// format specification. These bytes are hand-derived from the CDF-1 grammar
// (they are what the reference Unidata library produces), so any drift in
// the encoder breaks interoperability with the real world and fails here.
#include <gtest/gtest.h>

#include "netcdf/dataset.hpp"

namespace {

using ncformat::NcType;

std::vector<std::byte> FileBytes(pfs::FileSystem& fs, const std::string& path) {
  auto f = fs.Open(path).value();
  std::vector<std::byte> all(f.size());
  f.HarnessRead(0, all, 0.0);
  return all;
}

std::vector<std::byte> B(std::initializer_list<int> xs) {
  std::vector<std::byte> v;
  for (int x : xs) v.push_back(static_cast<std::byte>(x));
  return v;
}

// netcdf g { dimensions: x = 2 ; variables: int a(x) ; data: a = 258, -2 ; }
// CDF-1 grammar walkthrough:
//   magic 'C' 'D' 'F' \x01
//   numrecs      = 0
//   dim_list     = NC_DIMENSION(10), nelems 1, name "x" (len 1 + pad 3), size 2
//   gatt_list    = ABSENT (0, 0)
//   var_list     = NC_VARIABLE(11), nelems 1,
//                  name "a", nelems 1, dimid 0,
//                  vatt_list ABSENT (0, 0),
//                  nc_type NC_INT(4), vsize 8, begin = header size
//   data         = 258, -2 as big-endian int32
TEST(GoldenBytes, MinimalCdf1File) {
  pfs::FileSystem fs;
  netcdf::CreateOptions opts;
  opts.use_cdf2 = false;
  auto ds = netcdf::Dataset::Create(fs, "g.nc", opts).value();
  const int x = ds.DefDim("x", 2).value();
  const int a = ds.DefVar("a", NcType::kInt, {x}).value();
  ASSERT_TRUE(ds.EndDef().ok());
  const std::vector<std::int32_t> vals{258, -2};
  ASSERT_TRUE(ds.PutVar<std::int32_t>(a, vals).ok());
  ASSERT_TRUE(ds.Close().ok());

  // Header size: 4 magic + 4 numrecs + (8 tag/count + 8 name + 4 len) dims
  // + 8 gatts + (8 tag/count + 8 name + 4 ndims + 4 dimid + 8 vatts +
  // 4 type + 4 vsize + 4 begin) vars = 80; begin = 80.
  const auto expected = B({
      'C', 'D', 'F', 1,          // magic
      0, 0, 0, 0,                // numrecs
      0, 0, 0, 10,               // NC_DIMENSION
      0, 0, 0, 1,                // 1 dim
      0, 0, 0, 1, 'x', 0, 0, 0,  // name "x" padded
      0, 0, 0, 2,                // dim size 2
      0, 0, 0, 0, 0, 0, 0, 0,    // gatt_list ABSENT
      0, 0, 0, 11,               // NC_VARIABLE
      0, 0, 0, 1,                // 1 var
      0, 0, 0, 1, 'a', 0, 0, 0,  // name "a" padded
      0, 0, 0, 1,                // ndims = 1
      0, 0, 0, 0,                // dimid 0
      0, 0, 0, 0, 0, 0, 0, 0,    // vatt_list ABSENT
      0, 0, 0, 4,                // NC_INT
      0, 0, 0, 8,                // vsize
      0, 0, 0, 80,               // begin
      // data: 258 = 0x00000102, -2 = 0xFFFFFFFE
      0, 0, 1, 2,
      0xFF, 0xFF, 0xFF, 0xFE,
  });
  EXPECT_EQ(FileBytes(fs, "g.nc"), expected);
}

// A record variable file: the numrecs word updates and records follow the
// header with the single-record-variable packing rule.
TEST(GoldenBytes, RecordVariableCdf1File) {
  pfs::FileSystem fs;
  netcdf::CreateOptions opts;
  opts.use_cdf2 = false;
  auto ds = netcdf::Dataset::Create(fs, "r.nc", opts).value();
  const int t = ds.DefDim("t", netcdf::kUnlimited).value();
  const int v = ds.DefVar("s", NcType::kShort, {t}).value();
  ASSERT_TRUE(ds.EndDef().ok());
  const std::vector<std::int16_t> vals{-1, 2, 3};
  const std::uint64_t st[] = {0};
  const std::uint64_t ct[] = {3};
  ASSERT_TRUE(ds.PutVara<std::int16_t>(v, st, ct, vals).ok());
  ASSERT_TRUE(ds.Close().ok());

  // Header layout as above: 80 bytes, so the records begin at 80.
  // Sole short record variable: vsize field padded to 4, but records pack
  // at 2 bytes each (the format's special rule).
  const auto expected = B({
      'C', 'D', 'F', 1,
      0, 0, 0, 3,                // numrecs = 3
      0, 0, 0, 10, 0, 0, 0, 1,
      0, 0, 0, 1, 't', 0, 0, 0,
      0, 0, 0, 0,                // UNLIMITED marker (length 0)
      0, 0, 0, 0, 0, 0, 0, 0,    // gatts ABSENT
      0, 0, 0, 11, 0, 0, 0, 1,
      0, 0, 0, 1, 's', 0, 0, 0,
      0, 0, 0, 1,                // ndims
      0, 0, 0, 0,                // dimid 0 (the record dim)
      0, 0, 0, 0, 0, 0, 0, 0,    // vatts ABSENT
      0, 0, 0, 3,                // NC_SHORT
      0, 0, 0, 4,                // vsize (2 rounded up to 4)
      0, 0, 0, 80,               // begin
      // records: -1, 2, 3 as big-endian int16, tightly packed
      0xFF, 0xFF, 0, 2, 0, 3,
  });
  EXPECT_EQ(FileBytes(fs, "r.nc"), expected);
}

// CDF-2 differs only in the version byte and the 64-bit begin field.
TEST(GoldenBytes, Cdf2BeginIs64Bit) {
  pfs::FileSystem fs;
  auto ds = netcdf::Dataset::Create(fs, "v2.nc").value();  // CDF-2 default
  const int x = ds.DefDim("x", 1).value();
  const int a = ds.DefVar("a", NcType::kByte, {x}).value();
  ASSERT_TRUE(ds.EndDef().ok());
  const std::vector<signed char> one{42};
  ASSERT_TRUE(ds.PutVar<signed char>(a, one).ok());
  ASSERT_TRUE(ds.Close().ok());
  auto bytes = FileBytes(fs, "v2.nc");
  EXPECT_EQ(bytes[3], std::byte{2});  // version 2
  // Header = 80 + 4 (wider begin) = 84; begin encoded as 8 bytes at 76.
  const std::size_t begin_field = 76;  // offset of the begin field
  EXPECT_EQ(bytes[begin_field + 7], std::byte{84});
  EXPECT_EQ(bytes[84], std::byte{42});  // the data byte
}

}  // namespace
