// Tests for MPI file views: logical-to-physical range translation.
#include "mpiio/view.hpp"

#include <gtest/gtest.h>

namespace mpiio {
namespace {

using pnc::Extent;
using simmpi::Datatype;

std::vector<Extent> Map(const FileView& v, std::uint64_t off,
                        std::uint64_t len) {
  std::vector<Extent> out;
  v.MapRange(off, len, out);
  return out;
}

TEST(FileView, IdentityPassesThrough) {
  FileView v;
  EXPECT_TRUE(v.identity());
  auto m = Map(v, 100, 50);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], (Extent{100, 50}));
}

TEST(FileView, DisplacementShifts) {
  FileView v(1000, simmpi::ByteType(),
             Datatype::Contiguous(64, simmpi::ByteType()));
  auto m = Map(v, 0, 64);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], (Extent{1000, 64}));
  // Contiguous filetype tiles seamlessly.
  auto m2 = Map(v, 32, 64);
  ASSERT_EQ(m2.size(), 1u);
  EXPECT_EQ(m2[0], (Extent{1032, 64}));
}

TEST(FileView, StridedFiletypeTiles) {
  // filetype: 8 data bytes then 8-byte hole, extent 16.
  auto ft = Datatype::Hvector(1, 8, 16, simmpi::ByteType());
  // Hvector(1,...) extent is 8, not 16 — build with 2 blocks to be explicit.
  auto ft2 = Datatype::Hvector(2, 4, 8, simmpi::ByteType());
  FileView v(0, simmpi::ByteType(), ft2);  // data at [0,4) and [8,12), extent 12
  EXPECT_EQ(v.tile_size(), 8u);
  auto m = Map(v, 0, 8);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0], (Extent{0, 4}));
  EXPECT_EQ(m[1], (Extent{8, 4}));
  // Second tile starts at physical 12.
  auto m2 = Map(v, 8, 4);
  ASSERT_EQ(m2.size(), 1u);
  EXPECT_EQ(m2[0], (Extent{12, 4}));
  // A range crossing tiles: last 4 of tile 0 + first 4 of tile 1 coalesce
  // when physically adjacent (data [8,12) then [12,16)).
  auto m3 = Map(v, 4, 8);
  ASSERT_EQ(m3.size(), 1u);
  EXPECT_EQ(m3[0], (Extent{8, 8}));
  (void)ft;
}

TEST(FileView, MidRunStart) {
  auto ft = Datatype::Hvector(2, 8, 24, simmpi::ByteType());
  FileView v(100, simmpi::ByteType(), ft);
  // Logical 3..10 = run0[3..8) + run1[0..3).
  auto m = Map(v, 3, 8);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0], (Extent{103, 5}));
  EXPECT_EQ(m[1], (Extent{124, 3}));
}

TEST(FileView, SubarrayView) {
  // A 4x4 int array; this rank sees column 1 (classic partition pattern).
  const std::uint64_t sizes[] = {4, 4};
  const std::uint64_t sub[] = {4, 1};
  const std::uint64_t starts[] = {0, 1};
  auto ft = Datatype::Subarray(sizes, sub, starts, simmpi::IntType()).value();
  FileView v(0, simmpi::IntType(), ft);
  EXPECT_EQ(v.etype_size(), 4u);
  auto m = Map(v, 0, 16);
  ASSERT_EQ(m.size(), 4u);
  for (std::uint64_t r = 0; r < 4; ++r)
    EXPECT_EQ(m[r], (Extent{(r * 4 + 1) * 4, 4}));
}

TEST(FileView, ZeroLengthMapsNothing) {
  FileView v;
  EXPECT_TRUE(Map(v, 5, 0).empty());
}

TEST(FileView, EtypeOffsetsInDataCalls) {
  // offset is in etype units: used by callers as offset*etype_size.
  FileView v(0, simmpi::DoubleType(),
             Datatype::Contiguous(10, simmpi::DoubleType()));
  EXPECT_EQ(v.etype_size(), 8u);
  auto m = Map(v, 3 * v.etype_size(), 16);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], (Extent{24, 16}));
}

}  // namespace
}  // namespace mpiio
