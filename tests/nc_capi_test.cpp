// Tests for the serial nc_* C-style interface (the classic netcdf.h face):
// the §3.2 lifecycle, typed matrix, varm/vars paths, fill mode, attributes.
#include "netcdf/ncapi.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace netcdf::capi {
namespace {

TEST(NcApi, ClassicLifecycle) {
  pfs::FileSystem fs;
  int ncid = -1;
  ASSERT_EQ(nc_create(fs, "c.nc", NC_CLOBBER, &ncid), NC_NOERR);
  int latd, lond, vid;
  ASSERT_EQ(nc_def_dim(ncid, "lat", 3, &latd), NC_NOERR);
  ASSERT_EQ(nc_def_dim(ncid, "lon", 4, &lond), NC_NOERR);
  const int dims[] = {latd, lond};
  ASSERT_EQ(nc_def_var(ncid, "temp", NC_FLOAT, 2, dims, &vid), NC_NOERR);
  ASSERT_EQ(nc_put_att_text(ncid, vid, "units", 1, "K"), NC_NOERR);
  ASSERT_EQ(nc_enddef(ncid), NC_NOERR);

  std::vector<float> data(12);
  std::iota(data.begin(), data.end(), 0.0f);
  ASSERT_EQ(nc_put_var_float(ncid, vid, data.data()), NC_NOERR);
  ASSERT_EQ(nc_close(ncid), NC_NOERR);

  ASSERT_EQ(nc_open(fs, "c.nc", NC_NOWRITE, &ncid), NC_NOERR);
  int ndims, nvars, ngatts, unlim;
  ASSERT_EQ(nc_inq(ncid, &ndims, &nvars, &ngatts, &unlim), NC_NOERR);
  EXPECT_EQ(ndims, 2);
  EXPECT_EQ(nvars, 1);
  int rv;
  ASSERT_EQ(nc_inq_varid(ncid, "temp", &rv), NC_NOERR);
  const std::size_t start[] = {1, 1};
  const std::size_t count[] = {2, 2};
  double sub[4];
  ASSERT_EQ(nc_get_vara_double(ncid, rv, start, count, sub), NC_NOERR);
  EXPECT_EQ(sub[0], 5.0);
  EXPECT_EQ(sub[3], 10.0);
  char units[8] = {0};
  ASSERT_EQ(nc_get_att_text(ncid, rv, "units", units), NC_NOERR);
  EXPECT_STREQ(units, "K");
  ASSERT_EQ(nc_close(ncid), NC_NOERR);
}

TEST(NcApi, StridedAndMappedAccess) {
  pfs::FileSystem fs;
  int ncid;
  ASSERT_EQ(nc_create(fs, "m.nc", NC_CLOBBER, &ncid), NC_NOERR);
  int rd, cd, vid;
  ASSERT_EQ(nc_def_dim(ncid, "r", 2, &rd), NC_NOERR);
  ASSERT_EQ(nc_def_dim(ncid, "c", 3, &cd), NC_NOERR);
  const int dims[] = {rd, cd};
  ASSERT_EQ(nc_def_var(ncid, "m", NC_INT, 2, dims, &vid), NC_NOERR);
  ASSERT_EQ(nc_enddef(ncid), NC_NOERR);

  // Mapped put: memory holds the transpose.
  const int mem[] = {1, 4, 2, 5, 3, 6};
  const std::size_t st[] = {0, 0};
  const std::size_t ct[] = {2, 3};
  const std::ptrdiff_t imap[] = {1, 2};
  ASSERT_EQ(nc_put_varm_int(ncid, vid, st, ct, nullptr, imap, mem), NC_NOERR);
  int row_major[6];
  ASSERT_EQ(nc_get_var_int(ncid, vid, row_major), NC_NOERR);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(row_major[i], i + 1);

  // Strided get: every other column of row 1.
  const std::size_t st2[] = {1, 0};
  const std::size_t ct2[] = {1, 2};
  const std::ptrdiff_t sd[] = {1, 2};
  int picked[2];
  ASSERT_EQ(nc_get_vars_int(ncid, vid, st2, ct2, sd, picked), NC_NOERR);
  EXPECT_EQ(picked[0], 4);
  EXPECT_EQ(picked[1], 6);
  ASSERT_EQ(nc_close(ncid), NC_NOERR);
}

TEST(NcApi, FillModeAndVar1) {
  pfs::FileSystem fs;
  int ncid;
  ASSERT_EQ(nc_create(fs, "f.nc", NC_CLOBBER, &ncid), NC_NOERR);
  int old_mode = -1;
  ASSERT_EQ(nc_set_fill(ncid, NC_FILL, &old_mode), NC_NOERR);
  EXPECT_EQ(old_mode, NC_NOFILL);
  int xd, vid;
  ASSERT_EQ(nc_def_dim(ncid, "x", 4, &xd), NC_NOERR);
  ASSERT_EQ(nc_def_var(ncid, "d", NC_DOUBLE, 1, &xd, &vid), NC_NOERR);
  ASSERT_EQ(nc_enddef(ncid), NC_NOERR);
  const std::size_t idx[] = {2};
  const double v = 7.5;
  ASSERT_EQ(nc_put_var1_double(ncid, vid, idx, &v), NC_NOERR);
  double all[4];
  ASSERT_EQ(nc_get_var_double(ncid, vid, all), NC_NOERR);
  EXPECT_EQ(all[0], netcdf::kFillDouble);
  EXPECT_EQ(all[2], 7.5);
  ASSERT_EQ(nc_close(ncid), NC_NOERR);
}

TEST(NcApi, AttributesNumericAndRename) {
  pfs::FileSystem fs;
  int ncid;
  ASSERT_EQ(nc_create(fs, "a.nc", NC_CLOBBER, &ncid), NC_NOERR);
  const double vals[] = {1.5, 2.5};
  ASSERT_EQ(nc_put_att_double(ncid, NC_GLOBAL, "range", NC_FLOAT, 2, vals),
            NC_NOERR);
  int xtype;
  std::size_t len;
  ASSERT_EQ(nc_inq_att(ncid, NC_GLOBAL, "range", &xtype, &len), NC_NOERR);
  EXPECT_EQ(xtype, NC_FLOAT);
  EXPECT_EQ(len, 2u);
  double back[2];
  ASSERT_EQ(nc_get_att_double(ncid, NC_GLOBAL, "range", back), NC_NOERR);
  EXPECT_EQ(back[1], 2.5);
  ASSERT_EQ(nc_rename_att(ncid, NC_GLOBAL, "range", "valid_range"), NC_NOERR);
  EXPECT_NE(nc_inq_att(ncid, NC_GLOBAL, "range", nullptr, nullptr), NC_NOERR);
  ASSERT_EQ(nc_del_att(ncid, NC_GLOBAL, "valid_range"), NC_NOERR);
  ASSERT_EQ(nc_enddef(ncid), NC_NOERR);
  ASSERT_EQ(nc_close(ncid), NC_NOERR);
}

TEST(NcApi, ErrorCodesAndStrerror) {
  pfs::FileSystem fs;
  int ncid;
  EXPECT_NE(nc_open(fs, "missing.nc", NC_NOWRITE, &ncid), NC_NOERR);
  EXPECT_NE(nc_close(9999), NC_NOERR);
  EXPECT_STREQ(nc_strerror(NC_NOERR), "No error");
  // Record-growth and bounds errors surface through the C codes.
  ASSERT_EQ(nc_create(fs, "e.nc", NC_CLOBBER, &ncid), NC_NOERR);
  int xd, vid;
  ASSERT_EQ(nc_def_dim(ncid, "x", 2, &xd), NC_NOERR);
  ASSERT_EQ(nc_def_var(ncid, "v", NC_INT, 1, &xd, &vid), NC_NOERR);
  ASSERT_EQ(nc_enddef(ncid), NC_NOERR);
  const std::size_t st[] = {1};
  const std::size_t ct[] = {2};
  int d[2] = {0, 0};
  EXPECT_EQ(nc_put_vara_int(ncid, vid, st, ct, d),
            static_cast<int>(pnc::Err::kEdge));
  ASSERT_EQ(nc_close(ncid), NC_NOERR);
}

}  // namespace
}  // namespace netcdf::capi
