// Access-pattern profiler (iostat/pattern.hpp) and rule-based tuning
// advisor (iostat/advise.hpp).
//
// Five areas:
//   1. PatternHist log2 bucketing arithmetic.
//   2. Access classification — within-call (one extent list) and cross-call
//      (per-rank gap tracking): contig / strided / random.
//   3. The pnc-pattern-v1 JSON contract: exact round trip through the
//      embedded report member, and the gate-off guarantee that a disabled
//      profiler leaves the report JSON without any "pattern" member.
//   4. Heatmap cells: coarsening under pressure keeps the cell count
//      bounded while conserving busy time; the ASCII renderer.
//   5. The advisor: a synthetic mistuned report fires the documented rules
//      in score order with evidence and hints; a healthy report is quiet;
//      and a real independent strided workload drives the whole pipeline
//      end to end.
#include "iostat/pattern.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "iostat/advise.hpp"
#include "iostat/iostat.hpp"
#include "iostat/report.hpp"
#include "pnetcdf/dataset.hpp"
#include "simmpi/runtime.hpp"

namespace {

using iostat::Ctr;
using iostat::PatternHist;
using iostat::PatternRegistry;
using iostat::PatternSummary;
using iostat::Recommendation;

class PatternTest : public ::testing::Test {
 protected:
  void SetUp() override {
#if !PNC_IOSTAT_ENABLED
    GTEST_SKIP() << "instrumentation compiled out (PNC_IOSTAT=OFF)";
#endif
    iostat::Registry::Get().Reset();  // also resets the PatternRegistry
    PatternRegistry::Get().SetEnabled(true);
  }
  void TearDown() override {
    PatternRegistry::Get().SetEnabled(true);
    iostat::Registry::Get().Reset();
  }
};

// ------------------------------------------------------------ 1. histogram

TEST_F(PatternTest, HistBucketsByBitWidth) {
  PatternHist h;
  h.Add(0);                    // bucket 0: zeros
  h.Add(1);                    // bucket 1: [1,1]
  h.Add(2);                    // bucket 2: [2,3]
  h.Add(3);                    // bucket 2
  h.Add(1024);                 // bucket 11: [1024,2047]
  h.Add((1ull << 20));         // bucket 21
  EXPECT_EQ(h.bucket[0], 1u);
  EXPECT_EQ(h.bucket[1], 1u);
  EXPECT_EQ(h.bucket[2], 2u);
  EXPECT_EQ(h.bucket[11], 1u);
  EXPECT_EQ(h.bucket[21], 1u);
  EXPECT_EQ(h.count, 6u);
  EXPECT_EQ(h.sum, 0u + 1 + 2 + 3 + 1024 + (1ull << 20));
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 1ull << 20);
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(h.sum) / 6.0);
  EXPECT_DOUBLE_EQ(PatternHist{}.mean(), 0.0);
}

// ------------------------------------------------------- 2. classification

TEST_F(PatternTest, WithinCallClassification) {
  auto& pr = PatternRegistry::Get();
  // Regular: constant length, constant start-to-start stride -> strided.
  pr.RecordAccess("v", /*is_write=*/true, /*collective=*/true,
                  {0, 32, 64, 96}, {8, 8, 8, 8});
  // Irregular lengths -> random.
  pr.RecordAccess("v", true, true, {0, 32, 64}, {8, 16, 8});
  // Irregular strides -> random.
  pr.RecordAccess("v", true, true, {0, 32, 100}, {8, 8, 8});
  const PatternSummary s = pr.Snapshot();
  ASSERT_EQ(s.vars.size(), 1u);
  EXPECT_EQ(s.vars[0].var, "v");
  EXPECT_EQ(s.vars[0].calls, 3u);
  EXPECT_EQ(s.vars[0].strided, 1u);
  EXPECT_EQ(s.vars[0].random, 2u);
  EXPECT_EQ(s.vars[0].contig, 0u);
  EXPECT_EQ(s.vars[0].coll, 3u);
  EXPECT_EQ(s.vars[0].bytes_written, 32u + 32 + 24);
  EXPECT_EQ(s.vars[0].extent_bytes.count, 10u);
}

TEST_F(PatternTest, CrossCallGapClassification) {
  auto& pr = PatternRegistry::Get();
  // Sequential single-extent calls: first call and gap-0 continuations are
  // contig; a repeated nonzero gap is strided; a changing gap is random.
  pr.RecordAccess("seq", false, false, {0}, {64});     // first -> contig
  pr.RecordAccess("seq", false, false, {64}, {64});    // gap 0 -> contig
  pr.RecordAccess("seq", false, false, {256}, {64});   // first gap -> strided
  pr.RecordAccess("seq", false, false, {448}, {64});   // same gap -> strided
  pr.RecordAccess("seq", false, false, {4096}, {64});  // new gap -> random
  const PatternSummary s = pr.Snapshot();
  ASSERT_EQ(s.vars.size(), 1u);
  EXPECT_EQ(s.vars[0].contig, 2u);
  EXPECT_EQ(s.vars[0].strided, 2u);
  EXPECT_EQ(s.vars[0].random, 1u);
  EXPECT_EQ(s.vars[0].indep, 5u);
  EXPECT_EQ(s.vars[0].reads, 5u);
}

// ----------------------------------------------------------- 3. JSON round

TEST_F(PatternTest, ReportJsonRoundTripsPatternExactly) {
  auto& pr = PatternRegistry::Get();
  pr.RecordAccess("m", true, false, {0, 32, 64, 96}, {8, 8, 8, 8});
  pr.RecordTwophasePre({{0, 4096}, {8192, 4096}});
  pr.RecordAggWindow(65536);
  pr.RecordSieveWindow(true, 1024, 8192, 0, true);
  pr.RecordSieveWindow(false, 512, 512, 0, false);
  pr.RecordPfsGrant(0, 0, 4096, 0.0, 800000.0, 2, 100.0);
  pr.RecordPfsGrant(1, 262144, 4096, 800000.0, 1600000.0, 1, 0.0);

  const iostat::Report rep = iostat::BuildReport();
  ASSERT_TRUE(rep.pattern.present);
  const std::string json = iostat::ToJson(rep);
  EXPECT_NE(json.find("\"pattern\""), std::string::npos);
  EXPECT_NE(json.find("pnc-pattern-v1"), std::string::npos);

  auto back = iostat::ParseReportJson(json);
  ASSERT_TRUE(back.ok());
  const PatternSummary& a = rep.pattern;
  const PatternSummary& b = back.value().pattern;
  EXPECT_TRUE(b.present);
  ASSERT_EQ(b.vars.size(), a.vars.size());
  EXPECT_EQ(b.vars[0].var, a.vars[0].var);
  EXPECT_EQ(b.vars[0].strided, a.vars[0].strided);
  EXPECT_TRUE(b.vars[0].extent_bytes == a.vars[0].extent_bytes);
  EXPECT_TRUE(b.vars[0].stride_bytes == a.vars[0].stride_bytes);
  ASSERT_EQ(b.servers.size(), a.servers.size());
  EXPECT_EQ(b.servers[1].bytes, a.servers[1].bytes);
  EXPECT_DOUBLE_EQ(b.servers[1].busy_ns, a.servers[1].busy_ns);
  EXPECT_TRUE(b.servers[0].offsets == a.servers[0].offsets);
  EXPECT_DOUBLE_EQ(b.cell_ns, a.cell_ns);
  ASSERT_EQ(b.cells.size(), a.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(b.cells[i].server, a.cells[i].server);
    EXPECT_EQ(b.cells[i].t_bucket, a.cells[i].t_bucket);
    EXPECT_DOUBLE_EQ(b.cells[i].busy_ns, a.cells[i].busy_ns);
    EXPECT_EQ(b.cells[i].depth_max, a.cells[i].depth_max);
  }
  EXPECT_TRUE(b.twophase_pre == a.twophase_pre);
  EXPECT_TRUE(b.twophase_post == a.twophase_post);
  EXPECT_EQ(b.sieve_wr_file, a.sieve_wr_file);
  EXPECT_EQ(b.sieve_rd_rereads, a.sieve_rd_rereads);
  EXPECT_EQ(b.agg_bytes, a.agg_bytes);
}

TEST_F(PatternTest, GateOffRecordsNothingAndOmitsJsonMember) {
  PatternRegistry::Get().SetEnabled(false);
  // The macro surface is a no-op when the gate is off...
  const std::vector<std::uint64_t> offs = {0, 64}, lens = {8, 8};
  PNC_IOSTAT_PATTERN_ACCESS("gated", true, true, offs, lens);
  PNC_IOSTAT_PATTERN_AGG(1234);
  PNC_IOSTAT_PATTERN_SIEVE(true, 10, 20, 0, true);
  PNC_IOSTAT_PATTERN_PFS(0, 0, 64, 0.0, 1.0, 1, 0.0);
  const iostat::Report rep = iostat::BuildReport();
  EXPECT_FALSE(rep.pattern.present);
  // ...and an absent pattern keeps the report JSON free of the member, the
  // byte-identical-output contract for PNC_IOSTAT_PATTERN=0.
  EXPECT_EQ(iostat::ToJson(rep).find("\"pattern\""), std::string::npos);
}

// -------------------------------------------------------------- 4. heatmap

TEST_F(PatternTest, HeatmapCoarsensUnderPressureConservingBusyTime) {
  auto& pr = PatternRegistry::Get();
  constexpr double kBase = 1 << 20;  // PatternRegistry::kBaseCellNs
  constexpr int kGrants = 5000;      // > kMaxCells distinct base cells
  for (int i = 0; i < kGrants; ++i)
    pr.RecordPfsGrant(0, 0, 64, i * kBase, i * kBase + kBase / 2, 1, 0.0);
  const PatternSummary s = pr.Snapshot();
  EXPECT_LE(s.cells.size(), 2048u);  // PatternRegistry::kMaxCells
  EXPECT_GT(s.cell_ns, kBase);       // width doubled at least once
  double busy = 0.0;
  std::uint64_t grants = 0;
  for (const auto& c : s.cells) {
    busy += c.busy_ns;
    grants += c.grants;
  }
  EXPECT_NEAR(busy, kGrants * kBase / 2, 1.0);  // conserved under re-binning
  EXPECT_EQ(grants, static_cast<std::uint64_t>(kGrants));

  const std::string grid = iostat::RenderHeatmap(s);
  EXPECT_NE(grid.find("heatmap"), std::string::npos);
  EXPECT_NE(grid.find("s00"), std::string::npos);
  EXPECT_NE(grid.find("hottest: server 0"), std::string::npos);
}

TEST_F(PatternTest, HeatmapEmptySaysSo) {
  const std::string grid = iostat::RenderHeatmap(PatternSummary{});
  EXPECT_NE(grid.find("no pattern data recorded"), std::string::npos);
}

// -------------------------------------------------------------- 5. advisor

iostat::Report MistunedReport() {
  iostat::Report rep;
  rep.nranks = 4;
  auto set = [&rep](Ctr c, std::uint64_t sum, std::uint64_t mx) {
    auto& a = rep.counters[static_cast<std::size_t>(c)];
    a.sum = sum;
    a.max = mx;
  };
  set(Ctr::kPfsServers, 12, 12);
  set(Ctr::kPfsReadOps, 300, 80);
  set(Ctr::kPfsWriteOps, 300, 80);
  set(Ctr::kPfsBytesRead, 300 * 4096, 0);
  set(Ctr::kPfsBytesWritten, 300 * 4096, 0);
  set(Ctr::kPfsQueueWaitNs, 7000000, 0);
  set(Ctr::kPfsBusyNs, 3000000, 0);
  rep.pfs_queue_wait_frac = 0.7;

  rep.pattern.present = true;
  iostat::VarPattern v;
  v.var = "m";
  v.calls = v.writes = v.indep = v.strided = 8;
  for (int i = 0; i < 8; ++i) v.extent_bytes.Add(8);
  rep.pattern.vars.push_back(v);
  rep.pattern.sieve_wr_windows = 10;
  rep.pattern.sieve_wr_wanted = 1000;
  rep.pattern.sieve_wr_file = 8000;
  iostat::ServerPattern hot, cold;
  hot.bytes = 90;
  cold.bytes = 10;
  rep.pattern.servers = {hot, cold};
  return rep;
}

TEST_F(PatternTest, AdvisorFiresRankedRulesWithEvidenceAndHints) {
  const std::vector<Recommendation> recs = iostat::Advise(MistunedReport());
  ASSERT_EQ(recs.size(), 5u);
  EXPECT_EQ(recs[0].rule, "use-collective");
  EXPECT_EQ(recs[1].rule, "raise-wr-sieve-buffer");
  EXPECT_EQ(recs[2].rule, "restripe-hot-server");
  EXPECT_EQ(recs[3].rule, "queue-contention");
  EXPECT_EQ(recs[4].rule, "small-pfs-requests");
  for (std::size_t i = 1; i < recs.size(); ++i)
    EXPECT_GE(recs[i - 1].score, recs[i].score);
  for (const Recommendation& r : recs) {
    EXPECT_FALSE(r.action.empty());
    EXPECT_FALSE(r.evidence.empty());
  }
  EXPECT_EQ(recs[0].hint_key, "romio_cb_write");
  EXPECT_EQ(recs[1].hint_key, "ind_wr_buffer_size");
  EXPECT_TRUE(recs[2].hint_key.empty());  // restriping has no info hint

  const std::string pretty = iostat::PrettyPrintAdvice(recs);
  EXPECT_NE(pretty.find("advice (5 recommendations):"), std::string::npos);
  EXPECT_NE(pretty.find("#1 [use-collective"), std::string::npos);
  EXPECT_NE(pretty.find("evidence:"), std::string::npos);
  EXPECT_NE(pretty.find("hint: ind_wr_buffer_size=4194304"),
            std::string::npos);
}

TEST_F(PatternTest, AdvisorQuietOnHealthyReport) {
  const std::vector<Recommendation> recs = iostat::Advise(iostat::Report{});
  EXPECT_TRUE(recs.empty());
  EXPECT_NE(iostat::PrettyPrintAdvice(recs).find("well tuned"),
            std::string::npos);
}

TEST_F(PatternTest, EndToEndIndepStridedWorkloadGetsUseCollectiveAdvice) {
  pfs::FileSystem fs;
  simmpi::Run(2, [&](simmpi::Comm& c) {
    auto ds =
        pnetcdf::Dataset::Create(c, fs, "adv.nc", simmpi::NullInfo()).value();
    const int rd = ds.DefDim("row", 1024).value();
    const int cd = ds.DefDim("col", 2).value();
    const int v =
        ds.DefVar("m", ncformat::NcType::kDouble, {rd, cd}).value();
    ASSERT_TRUE(ds.EndDef().ok());
    std::vector<double> mine(1024, 1.0);
    const std::uint64_t start[] = {0, static_cast<std::uint64_t>(c.rank())};
    const std::uint64_t count[] = {1024, 1};
    ASSERT_TRUE(ds.BeginIndepData().ok());
    ASSERT_TRUE(ds.PutVara<double>(v, start, count, mine).ok());
    ASSERT_TRUE(ds.EndIndepData().ok());
    ASSERT_TRUE(ds.Close().ok());
  });
  const iostat::Report rep = iostat::BuildReport();
  ASSERT_TRUE(rep.pattern.present);
  const std::vector<Recommendation> recs = iostat::Advise(rep);
  bool use_coll = false;
  for (const Recommendation& r : recs)
    if (r.rule == "use-collective") use_coll = true;
  EXPECT_TRUE(use_coll) << iostat::PrettyPrintAdvice(recs);
}

}  // namespace
