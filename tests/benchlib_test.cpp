// Tests for the benchmark results/baseline machinery: the bench::Args /
// bench::JsonObj / bench::Recorder write side (bench/bench_common.hpp) and
// the benchlib parse + compare read side behind `ncbench --check` and
// `ncstat --diff`.
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_common.hpp"
#include "tools/benchlib/baseline.hpp"
#include "tools/benchlib/records.hpp"
#include "tools/benchlib/trend.hpp"
#include "tools/cli.hpp"

namespace {

// ---------------------------------------------------------------------------
// bench::Args flag validation

TEST(BenchArgs, UnknownFlagsRejectsTypos) {
  bench::Args args({"--size=64mb", "--proc=8", "stray", "--quick"});
  const auto unknown = args.UnknownFlags({"size", "procs", "quick"});
  ASSERT_EQ(unknown.size(), 2u);
  EXPECT_EQ(unknown[0], "--proc=8");
  EXPECT_EQ(unknown[1], "stray");
}

TEST(BenchArgs, UnknownFlagsPrefixWildcard) {
  bench::Args args({"--benchmark_filter=BM_Foo", "--benchmark_repetitions=3",
                    "--benchmike=1"});
  const auto unknown = args.UnknownFlags({"benchmark_*"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "--benchmike=1");
}

TEST(BenchArgs, GetAndHas) {
  bench::Args args({"--op=write", "--quick"});
  EXPECT_EQ(args.Get("op", "read"), "write");
  EXPECT_EQ(args.Get("missing", "fallback"), "fallback");
  EXPECT_TRUE(args.Has("quick"));
  EXPECT_FALSE(args.Has("op"));  // value flags are not boolean flags
}

// ---------------------------------------------------------------------------
// bench::JsonObj escaping -> benchlib parser round-trip

TEST(JsonObj, EscapesControlCharactersAndQuotes) {
  const std::string nasty = std::string("a\"b\\c\nd\te\x01" "f");
  const std::string text = bench::JsonObj().Str("k", nasty).str();
  EXPECT_EQ(text,
            "{\"k\":\"a\\\"b\\\\c\\nd\\te\\u0001f\"}");
}

TEST(JsonObj, RoundTripsThroughRecordParser) {
  const std::string nasty = std::string("quote\" back\\ nl\n bell\x07 end");
  const std::string line =
      "{\"schema\":\"pnc-bench-v1\",\"bench\":\"esc\",\"config\":" +
      bench::JsonObj().Str("label", nasty).str() +
      ",\"metrics\":" + bench::JsonObj().Num("mbps", 1.5).str() + "}\n";
  auto parsed = benchlib::ParseResults(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  ASSERT_EQ(parsed.value().records.size(), 1u);
  const benchlib::Record& rec = parsed.value().records[0];
  EXPECT_EQ(rec.bench, "esc");
  ASSERT_EQ(rec.metrics.size(), 1u);
  EXPECT_EQ(rec.metrics[0].first, "mbps");
  EXPECT_DOUBLE_EQ(rec.metrics[0].second, 1.5);
  // The raw config text still carries the escapes (identity matching works
  // on the raw text, so it only has to be stable, not decoded).
  EXPECT_NE(rec.config_text.find("\\u0007"), std::string::npos);
}

// ---------------------------------------------------------------------------
// bench::Recorder I/O failure propagation

TEST(Recorder, EndConfigPropagatesOpenFailure) {
  // A path inside a nonexistent directory: fopen(…, "a") must fail.
  bench::Recorder rec("/nonexistent-dir-for-benchlib-test/out.json", "t");
  ASSERT_TRUE(rec.enabled());
  rec.BeginConfig();
  const bool ok =
      rec.EndConfig(bench::JsonObj().Str("cfg", "x"),
                    bench::JsonObj().Num("mbps", 1.0));
  EXPECT_FALSE(ok);
  EXPECT_TRUE(rec.io_failed());  // sticky: RunBench turns this into exit 2
}

TEST(Recorder, DisabledRecorderIsANoOp) {
  bench::Recorder rec(bench::Args(std::vector<std::string>{}), "t");
  EXPECT_FALSE(rec.enabled());
  EXPECT_TRUE(rec.EndConfig(bench::JsonObj(), bench::JsonObj()));
  EXPECT_FALSE(rec.io_failed());
}

// ---------------------------------------------------------------------------
// Comparator

std::string Line(const std::string& bench, const std::string& cfg_kv,
                 const std::string& metrics_body) {
  return "{\"schema\":\"pnc-bench-v1\",\"bench\":\"" + bench +
         "\",\"config\":{" + cfg_kv + "},\"metrics\":{" + metrics_body +
         "}}\n";
}

benchlib::ResultsFile Parse(const std::string& text) {
  auto r = benchlib::ParseResults(text);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return r.ok() ? r.value() : benchlib::ResultsFile{};
}

TEST(Compare, MatchesByBenchAndConfigNotPosition) {
  // Same records, opposite file order: everything must still match.
  const auto base = Parse(Line("b", "\"n\":1", "\"mbps\":10") +
                          Line("b", "\"n\":2", "\"mbps\":20"));
  const auto cur = Parse(Line("b", "\"n\":2", "\"mbps\":20") +
                         Line("b", "\"n\":1", "\"mbps\":10"));
  const auto res = benchlib::Compare(base, cur, 0.0);
  EXPECT_TRUE(res.Passed());
  EXPECT_EQ(res.num_ok, 2);
  EXPECT_EQ(res.ExitCode(), nctools::kExitOk);
}

TEST(Compare, ExactEqualityPassesAtZeroTolerance) {
  const auto base = Parse(Line("b", "\"n\":1", "\"mbps\":10.123456789"));
  const auto res = benchlib::Compare(base, base, 0.0);
  EXPECT_TRUE(res.Passed());
}

TEST(Compare, ToleranceEdges) {
  const auto base = Parse(Line("b", "\"n\":1", "\"mbps\":100"));
  const auto cur = Parse(Line("b", "\"n\":1", "\"mbps\":95"));  // -5%
  // Exactly at tolerance: |delta| > tol is the regression test, so 5% passes.
  EXPECT_TRUE(benchlib::Compare(base, cur, 5.0).Passed());
  // Just inside a tighter gate it fails.
  EXPECT_FALSE(benchlib::Compare(base, cur, 4.99).Passed());
  // Zero tolerance demands equality.
  EXPECT_FALSE(benchlib::Compare(base, cur, 0.0).Passed());
}

TEST(Compare, DirectionRules) {
  // mbps: higher is better, so an increase is an improvement (never fatal)…
  {
    const auto base = Parse(Line("b", "\"n\":1", "\"mbps\":100"));
    const auto cur = Parse(Line("b", "\"n\":1", "\"mbps\":150"));
    const auto res = benchlib::Compare(base, cur, 1.0);
    EXPECT_TRUE(res.Passed());
    EXPECT_EQ(res.num_improved, 1);
  }
  // …and a cost-like metric (ms) regresses when it grows.
  {
    const auto base = Parse(Line("b", "\"n\":1", "\"ms\":100"));
    const auto cur = Parse(Line("b", "\"n\":1", "\"ms\":150"));
    const auto res = benchlib::Compare(base, cur, 1.0);
    EXPECT_FALSE(res.Passed());
    EXPECT_EQ(res.num_regressed, 1);
  }
  EXPECT_EQ(benchlib::MetricDirection("mbps"),
            benchlib::Direction::kHigherIsBetter);
  EXPECT_EQ(benchlib::MetricDirection("read_speedup"),
            benchlib::Direction::kHigherIsBetter);
  EXPECT_EQ(benchlib::MetricDirection("iostat.pfs_bytes"),
            benchlib::Direction::kLowerIsBetter);
  EXPECT_EQ(benchlib::MetricDirection("ms"),
            benchlib::Direction::kLowerIsBetter);
}

TEST(Compare, MissingRecordFails) {
  const auto base = Parse(Line("b", "\"n\":1", "\"mbps\":10") +
                          Line("b", "\"n\":2", "\"mbps\":20"));
  const auto cur = Parse(Line("b", "\"n\":1", "\"mbps\":10"));
  const auto res = benchlib::Compare(base, cur, 0.0);
  EXPECT_FALSE(res.Passed());
  EXPECT_EQ(res.num_missing, 1);
  EXPECT_EQ(res.ExitCode(), nctools::kExitCondition);
}

TEST(Compare, UnmatchedNewRecordFails) {
  const auto base = Parse(Line("b", "\"n\":1", "\"mbps\":10"));
  const auto cur = Parse(Line("b", "\"n\":1", "\"mbps\":10") +
                         Line("b", "\"n\":2", "\"mbps\":20"));
  const auto res = benchlib::Compare(base, cur, 0.0);
  EXPECT_FALSE(res.Passed());
  EXPECT_EQ(res.num_new, 1);
  EXPECT_EQ(res.ExitCode(), nctools::kExitCondition);
}

TEST(Compare, ConfigChangeIsMissingPlusNew) {
  // A changed config is a different identity: old one missing, new one new.
  const auto base = Parse(Line("b", "\"n\":1", "\"mbps\":10"));
  const auto cur = Parse(Line("b", "\"n\":3", "\"mbps\":10"));
  const auto res = benchlib::Compare(base, cur, 0.0);
  EXPECT_EQ(res.num_missing, 1);
  EXPECT_EQ(res.num_new, 1);
  EXPECT_EQ(res.ExitCode(), nctools::kExitCondition);
}

TEST(Compare, MetricAbsentFromCurrentComparesAgainstZero) {
  const auto base = Parse(Line("b", "\"n\":1", "\"mbps\":10,\"ms\":5"));
  const auto cur = Parse(Line("b", "\"n\":1", "\"ms\":5"));
  const auto res = benchlib::Compare(base, cur, 0.0);
  // mbps 10 -> 0 is a drop in a higher-is-better metric: regression.
  EXPECT_FALSE(res.Passed());
}

TEST(Compare, RenderNamesTheRegressedMetric) {
  const auto base = Parse(Line("b", "\"n\":1", "\"mbps\":100"));
  const auto cur = Parse(Line("b", "\"n\":1", "\"mbps\":50"));
  const auto res = benchlib::Compare(base, cur, 0.0);
  const std::string table = benchlib::RenderDeltaTable(res);
  EXPECT_NE(table.find("FAIL"), std::string::npos);
  EXPECT_NE(table.find("mbps"), std::string::npos);
  EXPECT_NE(table.find("regression"), std::string::npos);
}

TEST(Compare, PassRenderHasNoRegressionSections) {
  const auto base = Parse(Line("b", "\"n\":1", "\"mbps\":100"));
  const auto res = benchlib::Compare(base, base, 0.0);
  const std::string table = benchlib::RenderDeltaTable(res);
  EXPECT_NE(table.find("PASS"), std::string::npos);
  EXPECT_EQ(table.find("REGRESSED"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Parser edge cases

TEST(ParseResults, IgnoresChattyLinesButRejectsCorruptRecords) {
  const std::string ok_text =
      "PnetCDF reproduction - some banner\n\n" +
      Line("b", "\"n\":1", "\"mbps\":10") + "nprocs   serial   Z\n";
  EXPECT_TRUE(benchlib::ParseResults(ok_text).ok());
  EXPECT_EQ(Parse(ok_text).records.size(), 1u);

  // A line that claims the schema but is truncated is corrupt, not chatty.
  const std::string bad_text =
      "{\"schema\":\"pnc-bench-v1\",\"bench\":\"b\",\"config\":{\n";
  EXPECT_FALSE(benchlib::ParseResults(bad_text).ok());
}

TEST(ParseResults, ReadsSuiteHeader) {
  const std::string text =
      "{\"schema\":\"pnc-bench-suite-v1\",\"suite\":\"smoke\","
      "\"git_sha\":\"abc1234\",\"build\":\"RelWithDebInfo\","
      "\"platform\":\"simulated\",\"config\":{\"entries\":[]}}\n" +
      Line("b", "\"n\":1", "\"mbps\":10");
  const auto rf = Parse(text);
  EXPECT_TRUE(rf.header.present);
  EXPECT_EQ(rf.header.suite, "smoke");
  EXPECT_EQ(rf.header.git_sha, "abc1234");
  ASSERT_EQ(rf.records.size(), 1u);
}

TEST(LoadResults, MissingFileIsAnError) {
  EXPECT_FALSE(benchlib::LoadResults("/nonexistent/benchlib.json").ok());
}

// ---------------------------------------------------------------------------
// Round-trip over the committed smoke baseline (real ncbench output)

#ifdef PNC_SMOKE_BASELINE
TEST(SmokeBaseline, ParsesAndSelfCompares) {
  auto loaded = benchlib::LoadResults(PNC_SMOKE_BASELINE);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  const benchlib::ResultsFile& rf = loaded.value();
  EXPECT_TRUE(rf.header.present);
  EXPECT_EQ(rf.header.suite, "smoke");
  ASSERT_GT(rf.records.size(), 10u);
  for (const benchlib::Record& rec : rf.records) {
    EXPECT_FALSE(rec.bench.empty());
    EXPECT_FALSE(rec.metrics.empty()) << rec.Key();
    // Every smoke record embeds a cross-rank iostat report, so the
    // comparator sees the health metrics, not just bandwidth.
    EXPECT_TRUE(rec.has_iostat) << rec.Key();
    EXPECT_GT(benchlib::ComparableMetrics(rec).size(), rec.metrics.size())
        << rec.Key();
  }
  // The baseline compared against itself is exact at zero tolerance.
  const auto res = benchlib::Compare(rf, rf, 0.0);
  EXPECT_TRUE(res.Passed());
  EXPECT_EQ(res.ExitCode(), nctools::kExitOk);
}
#endif

// ---------------------------------------------------------------------------
// Cross-run trend tracking (trend.hpp)

std::string SuiteHeader(const std::string& suite) {
  return "{\"schema\":\"pnc-bench-suite-v1\",\"suite\":\"" + suite +
         "\",\"git_sha\":\"0000000\",\"build\":\"RelWithDebInfo\","
         "\"platform\":\"simulated\",\"config\":{\"entries\":[]}}\n";
}

TEST(Trend, ParseHistorySplitsRunsAtSuiteHeaders) {
  const std::string text = "ncbench banner chatter\n" + SuiteHeader("smoke") +
                           Line("a", "\"n\":1", "\"mbps\":10") +
                           Line("b", "\"n\":1", "\"mbps\":20") +
                           SuiteHeader("smoke") +
                           Line("a", "\"n\":1", "\"mbps\":11");
  auto runs = benchlib::ParseHistory(text);
  ASSERT_TRUE(runs.ok()) << runs.status().message();
  ASSERT_EQ(runs.value().size(), 2u);
  EXPECT_EQ(runs.value()[0].records.size(), 2u);
  EXPECT_EQ(runs.value()[1].records.size(), 1u);
  EXPECT_TRUE(runs.value()[1].header.present);

  // A plain one-run results file (no header) is a valid one-run history.
  auto solo = benchlib::ParseHistory(Line("a", "\"n\":1", "\"mbps\":10"));
  ASSERT_TRUE(solo.ok());
  EXPECT_EQ(solo.value().size(), 1u);

  // A stamped record's meta carries the suite-schema string (see
  // bench_common.hpp); it must ride with its run, not start a new one.
  const std::string stamped =
      SuiteHeader("smoke") +
      "{\"schema\":\"pnc-bench-v1\",\"bench\":\"a\","
      "\"meta\":{\"suite_schema\":\"pnc-bench-suite-v1\",\"iostat\":true},"
      "\"config\":{\"n\":1},\"metrics\":{\"mbps\":10}}\n";
  auto one = benchlib::ParseHistory(stamped);
  ASSERT_TRUE(one.ok()) << one.status().message();
  ASSERT_EQ(one.value().size(), 1u);
  EXPECT_EQ(one.value()[0].records.size(), 1u);
}

TEST(Trend, BuildTrendFlagsInjectedRegressionDirectionAware) {
  // Three runs; the third injects a bandwidth drop (higher-is-better metric
  // falls 28%) and an amplification rise (lower-is-better metric grows
  // 30%). time_ns *improves*, which must never flag.
  std::vector<benchlib::ResultsFile> runs;
  runs.push_back(Parse(Line("wr", "\"n\":4",
                            "\"mbps\":100,\"amp\":1.0,\"time_ns\":100")));
  runs.push_back(Parse(Line("wr", "\"n\":4",
                            "\"mbps\":100,\"amp\":1.0,\"time_ns\":90")));
  runs.push_back(Parse(Line("wr", "\"n\":4",
                            "\"mbps\":72,\"amp\":1.3,\"time_ns\":50")));
  const benchlib::TrendReport rep = benchlib::BuildTrend(runs, 5.0);
  EXPECT_EQ(rep.num_runs, 3);
  EXPECT_FALSE(rep.Passed());
  EXPECT_EQ(rep.num_flagged, 2);
  ASSERT_EQ(rep.series.size(), 3u);
  for (const benchlib::TrendSeries& s : rep.series) {
    ASSERT_EQ(s.values.size(), 3u);
    if (s.metric == "mbps") {
      EXPECT_TRUE(s.flagged);
      EXPECT_DOUBLE_EQ(s.drift_pct, -28.0);
    } else if (s.metric == "amp") {
      EXPECT_TRUE(s.flagged);
      EXPECT_NEAR(s.drift_pct, 30.0, 1e-9);
    } else {
      EXPECT_EQ(s.metric, "time_ns");
      EXPECT_FALSE(s.flagged);  // -50% in the helpful direction
      EXPECT_DOUBLE_EQ(s.drift_pct, -50.0);
    }
  }

  const std::string text = benchlib::RenderTrend(rep);
  EXPECT_NE(text.find("trend: 3 runs, 3 series, 2 drifted"),
            std::string::npos);
  EXPECT_NE(text.find("REGRESSED"), std::string::npos);
  // Flagged series lead the report: the first row is a flagged one.
  EXPECT_LT(text.find("REGRESSED"), text.find("time_ns"));
}

TEST(Trend, DriftWithinToleranceOrSingleSampleDoesNotFlag) {
  std::vector<benchlib::ResultsFile> runs;
  runs.push_back(Parse(Line("wr", "\"n\":4", "\"mbps\":100") +
                       Line("rd", "\"n\":4", "\"mbps\":50")));
  runs.push_back(Parse(Line("wr", "\"n\":4", "\"mbps\":97")));
  const benchlib::TrendReport rep = benchlib::BuildTrend(runs, 5.0);
  EXPECT_TRUE(rep.Passed());  // -3% is inside the 5% tolerance
  EXPECT_EQ(rep.num_flagged, 0);

  // "rd" appears only in run 0: a single sample never drifts.
  const std::string text = benchlib::RenderTrend(rep);
  EXPECT_NE(text.find("(single sample)"), std::string::npos);
  EXPECT_EQ(text.find("REGRESSED"), std::string::npos);
}

}  // namespace
