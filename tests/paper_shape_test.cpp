// Paper-shape regression tests: small, fast versions of the Figure 6 claims
// asserted as orderings (not absolute numbers), so a cost-model or algorithm
// regression that would bend the reproduced curves fails CI, not just the
// benchmark reader's eye.
#include <gtest/gtest.h>

#include <numeric>

#include "bench/platforms.hpp"
#include "netcdf/dataset.hpp"
#include "pnetcdf/dataset.hpp"
#include "simmpi/runtime.hpp"

namespace {

using simmpi::Comm;

constexpr std::uint64_t kZ = 128, kY = 128, kX = 64;  // 8 MiB of doubles

/// Virtual seconds for a serial whole-array write/read.
double SerialTime(bool is_write) {
  pfs::Config pcfg = bench::SdscBlueHorizon();
  pcfg.discard_data = true;
  pfs::FileSystem fs(pcfg);
  auto ds = netcdf::Dataset::Create(fs, "t.nc").value();
  const int zd = ds.DefDim("z", kZ).value();
  const int yd = ds.DefDim("y", kY).value();
  const int xd = ds.DefDim("x", kX).value();
  const int v = ds.DefVar("tt", ncformat::NcType::kDouble, {zd, yd, xd}).value();
  EXPECT_TRUE(ds.EndDef().ok());
  std::vector<double> buf(kZ * kY * kX, 1.0);
  const double t0 = ds.clock().now();
  if (is_write) {
    EXPECT_TRUE(ds.PutVar<double>(v, buf).ok());
    EXPECT_TRUE(ds.Sync().ok());
  } else {
    EXPECT_TRUE(ds.GetVar<double>(v, buf).ok());
  }
  return ds.clock().now() - t0;
}

/// Virtual seconds for the same access via PnetCDF with a given partition
/// axis (0 = Z slabs, 2 = X columns) and process count.
double ParallelTime(int nprocs, int axis, bool is_write) {
  pfs::Config pcfg = bench::SdscBlueHorizon();
  pcfg.discard_data = true;
  pfs::FileSystem fs(pcfg);
  double dt = 0.0;
  simmpi::Run(
      nprocs,
      [&](Comm& c) {
        auto ds = pnetcdf::Dataset::Create(c, fs, "t.nc", simmpi::NullInfo())
                      .value();
        const int zd = ds.DefDim("z", kZ).value();
        const int yd = ds.DefDim("y", kY).value();
        const int xd = ds.DefDim("x", kX).value();
        const int v =
            ds.DefVar("tt", ncformat::NcType::kDouble, {zd, yd, xd}).value();
        ASSERT_TRUE(ds.EndDef().ok());
        std::uint64_t start[3] = {0, 0, 0};
        std::uint64_t count[3] = {kZ, kY, kX};
        count[static_cast<std::size_t>(axis)] /= static_cast<std::uint64_t>(nprocs);
        start[static_cast<std::size_t>(axis)] =
            count[static_cast<std::size_t>(axis)] *
            static_cast<std::uint64_t>(c.rank());
        std::vector<double> buf(count[0] * count[1] * count[2], 2.0);
        c.SyncClocksToMax();
        const double t0 = c.clock().now();
        if (is_write) {
          ASSERT_TRUE(ds.PutVaraAll<double>(v, start, count, buf).ok());
          ASSERT_TRUE(ds.Sync().ok());
        } else {
          ASSERT_TRUE(ds.GetVaraAll<double>(v, start, count, buf).ok());
        }
        c.SyncClocksToMax();
        if (c.rank() == 0) dt = c.clock().now() - t0;
        ASSERT_TRUE(ds.Close().ok());
      },
      bench::Sp2Cost());
  return dt;
}

TEST(PaperShape, ParallelWriteBeatsSerialAtScale) {
  // Figure 6: "PnetCDF outperforms the original serial netCDF as the number
  // of processes increases."
  EXPECT_LT(ParallelTime(8, 0, true), SerialTime(true));
  EXPECT_LT(ParallelTime(8, 0, false), SerialTime(false));
}

TEST(PaperShape, BandwidthSaturatesNotExplodes) {
  // Fixed server pool: going 4 -> 16 procs helps less than 1 -> 4 (or not
  // at all), and never by more than the process ratio.
  const double t1 = ParallelTime(1, 0, true);
  const double t4 = ParallelTime(4, 0, true);
  const double t16 = ParallelTime(16, 0, true);
  EXPECT_LT(t4, t1);
  const double gain_early = t1 / t4;
  const double gain_late = t4 / t16;
  EXPECT_LT(gain_late, gain_early);
  EXPECT_GT(t16, t1 / 16.0);  // nowhere near linear scaling
}

TEST(PaperShape, ZPartitionNoWorseThanXPartition) {
  // "partitioning in the Z dimension generally performs better than in the
  // X dimension because of the different access contiguity."
  const double tz = ParallelTime(4, 0, false);
  const double tx = ParallelTime(4, 2, false);
  EXPECT_LE(tz, tx * 1.10);  // Z at least ties X (tolerance for variance)
}

TEST(PaperShape, CollectiveCushionsPartitionDifferences) {
  // "Because of collective I/O optimization, the performance difference made
  // by various access patterns is small" — under two-phase I/O the Z/X gap
  // must stay within a small factor, while with collective buffering off the
  // X partition collapses.
  const double tz = ParallelTime(4, 0, true);
  const double tx = ParallelTime(4, 2, true);
  EXPECT_LT(tx / tz, 2.0);
}

}  // namespace
