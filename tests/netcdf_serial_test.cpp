// End-to-end tests for the serial netCDF library: the write/read lifecycle
// of §3.2, all five data access methods, mode rules, attributes, record
// variables, redefinition with data relocation, and fill mode.
#include "netcdf/dataset.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace netcdf {
namespace {

using ncformat::NcType;

std::vector<double> Seq(std::size_t n, double base = 0.0) {
  std::vector<double> v(n);
  std::iota(v.begin(), v.end(), base);
  return v;
}

class SerialDataset : public ::testing::Test {
 protected:
  pfs::FileSystem fs_;
};

TEST_F(SerialDataset, CreateDefineWriteReadClose) {
  // The canonical sequence from paper §3.2.
  auto ds = Dataset::Create(fs_, "basic.nc").value();
  const int zd = ds.DefDim("z", 2).value();
  const int yd = ds.DefDim("y", 3).value();
  const int vid = ds.DefVar("field", NcType::kDouble, {zd, yd}).value();
  ASSERT_TRUE(ds.PutAttText(kGlobal, "title", "unit test").ok());
  ASSERT_TRUE(ds.PutAttText(vid, "units", "K").ok());
  ASSERT_TRUE(ds.EndDef().ok());
  auto data = Seq(6, 1.0);
  ASSERT_TRUE(ds.PutVar<double>(vid, data).ok());
  ASSERT_TRUE(ds.Close().ok());

  auto rd = Dataset::Open(fs_, "basic.nc", /*writable=*/false).value();
  EXPECT_EQ(rd.ndims(), 2);
  EXPECT_EQ(rd.nvars(), 1);
  EXPECT_EQ(rd.ngatts(), 1);
  EXPECT_EQ(rd.GetAtt(kGlobal, "title").value().AsText(), "unit test");
  const int v = rd.VarId("field").value();
  EXPECT_EQ(rd.GetAtt(v, "units").value().AsText(), "K");
  std::vector<double> out(6);
  ASSERT_TRUE(rd.GetVar<double>(v, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(SerialDataset, SubarrayAndStridedAccess) {
  auto ds = Dataset::Create(fs_, "sub.nc").value();
  const int z = ds.DefDim("z", 4).value();
  const int y = ds.DefDim("y", 4).value();
  const int v = ds.DefVar("a", NcType::kInt, {z, y}).value();
  ASSERT_TRUE(ds.EndDef().ok());
  std::vector<std::int32_t> all(16);
  std::iota(all.begin(), all.end(), 0);
  ASSERT_TRUE(ds.PutVar<std::int32_t>(v, all).ok());

  // Subarray: rows 1..2, cols 2..3.
  std::vector<std::int32_t> sub(4);
  const std::uint64_t st[] = {1, 2};
  const std::uint64_t ct[] = {2, 2};
  ASSERT_TRUE(ds.GetVara<std::int32_t>(v, st, ct, sub).ok());
  EXPECT_EQ(sub, (std::vector<std::int32_t>{6, 7, 10, 11}));

  // Strided: every other element of row 0.
  std::vector<std::int32_t> strided(2);
  const std::uint64_t s2[] = {0, 0};
  const std::uint64_t c2[] = {1, 2};
  const std::uint64_t str[] = {1, 2};
  ASSERT_TRUE(ds.GetVars<std::int32_t>(v, s2, c2, str, strided).ok());
  EXPECT_EQ(strided, (std::vector<std::int32_t>{0, 2}));

  // Strided write-back and verify.
  const std::vector<std::int32_t> neg{-1, -2};
  ASSERT_TRUE(ds.PutVars<std::int32_t>(v, s2, c2, str, neg).ok());
  std::vector<std::int32_t> row(4);
  const std::uint64_t c3[] = {1, 4};
  ASSERT_TRUE(ds.GetVara<std::int32_t>(v, s2, c3, row).ok());
  EXPECT_EQ(row, (std::vector<std::int32_t>{-1, 1, -2, 3}));
}

TEST_F(SerialDataset, SingleElementAccess) {
  auto ds = Dataset::Create(fs_, "v1.nc").value();
  const int x = ds.DefDim("x", 5).value();
  const int v = ds.DefVar("a", NcType::kFloat, {x}).value();
  ASSERT_TRUE(ds.EndDef().ok());
  const std::uint64_t idx[] = {3};
  ASSERT_TRUE(ds.PutVar1<float>(v, idx, 42.5f).ok());
  float out = 0;
  ASSERT_TRUE(ds.GetVar1<float>(v, idx, out).ok());
  EXPECT_EQ(out, 42.5f);
}

TEST_F(SerialDataset, MappedAccessTransposes) {
  auto ds = Dataset::Create(fs_, "varm.nc").value();
  const int r = ds.DefDim("r", 2).value();
  const int c = ds.DefDim("c", 3).value();
  const int v = ds.DefVar("m", NcType::kInt, {r, c}).value();
  ASSERT_TRUE(ds.EndDef().ok());
  // Memory holds the transpose (3x2, column-major relative to the file):
  // imap maps file dim r -> memory stride 1, file dim c -> memory stride 2.
  const std::vector<std::int32_t> mem{1, 4, 2, 5, 3, 6};  // (3 rows of [.,.])
  const std::uint64_t st[] = {0, 0};
  const std::uint64_t ct[] = {2, 3};
  const std::uint64_t imap[] = {1, 2};
  ASSERT_TRUE(
      ds.PutVarm<std::int32_t>(v, st, ct, {}, imap, mem).ok());
  std::vector<std::int32_t> file_order(6);
  ASSERT_TRUE(ds.GetVara<std::int32_t>(v, st, ct, file_order).ok());
  EXPECT_EQ(file_order, (std::vector<std::int32_t>{1, 2, 3, 4, 5, 6}));

  std::vector<std::int32_t> back(6);
  ASSERT_TRUE(ds.GetVarm<std::int32_t>(v, st, ct, {}, imap, back).ok());
  EXPECT_EQ(back, mem);
}

TEST_F(SerialDataset, RecordVariablesGrowAndInterleave) {
  auto ds = Dataset::Create(fs_, "rec.nc").value();
  const int t = ds.DefDim("time", kUnlimited).value();
  const int x = ds.DefDim("x", 3).value();
  const int a = ds.DefVar("a", NcType::kDouble, {t, x}).value();
  const int b = ds.DefVar("b", NcType::kInt, {t}).value();
  ASSERT_TRUE(ds.EndDef().ok());
  EXPECT_EQ(ds.numrecs(), 0u);

  for (std::uint64_t rec = 0; rec < 4; ++rec) {
    const std::uint64_t st[] = {rec, 0};
    const std::uint64_t ct[] = {1, 3};
    auto vals = Seq(3, 10.0 * static_cast<double>(rec));
    ASSERT_TRUE(ds.PutVara<double>(a, st, ct, vals).ok());
    const std::uint64_t st1[] = {rec};
    const std::uint64_t ct1[] = {1};
    const std::int32_t iv = static_cast<std::int32_t>(rec);
    ASSERT_TRUE(ds.PutVara<std::int32_t>(b, st1, ct1, {&iv, 1}).ok());
  }
  EXPECT_EQ(ds.numrecs(), 4u);
  ASSERT_TRUE(ds.Close().ok());

  auto rd = Dataset::Open(fs_, "rec.nc", false).value();
  EXPECT_EQ(rd.numrecs(), 4u);
  const std::uint64_t st[] = {2, 0};
  const std::uint64_t ct[] = {2, 3};
  std::vector<double> out(6);
  ASSERT_TRUE(rd.GetVara<double>(rd.VarId("a").value(), st, ct, out).ok());
  EXPECT_EQ(out, (std::vector<double>{20, 21, 22, 30, 31, 32}));
  std::vector<std::int32_t> bs(4);
  ASSERT_TRUE(rd.GetVar<std::int32_t>(rd.VarId("b").value(), bs).ok());
  EXPECT_EQ(bs, (std::vector<std::int32_t>{0, 1, 2, 3}));
}

TEST_F(SerialDataset, TypeConversionOnTheWayThrough) {
  auto ds = Dataset::Create(fs_, "conv.nc").value();
  const int x = ds.DefDim("x", 3).value();
  const int v = ds.DefVar("small", NcType::kShort, {x}).value();
  ASSERT_TRUE(ds.EndDef().ok());
  // Write doubles into a short variable.
  const std::vector<double> dv{1.0, -2.0, 3.5};
  const std::uint64_t st[] = {0};
  const std::uint64_t ct[] = {3};
  ASSERT_TRUE(ds.PutVara<double>(v, st, ct, dv).ok());
  std::vector<std::int32_t> iv(3);
  ASSERT_TRUE(ds.GetVara<std::int32_t>(v, st, ct, iv).ok());
  EXPECT_EQ(iv, (std::vector<std::int32_t>{1, -2, 3}));
}

TEST_F(SerialDataset, RangeErrorReportedButWritten) {
  auto ds = Dataset::Create(fs_, "range.nc").value();
  const int x = ds.DefDim("x", 2).value();
  const int v = ds.DefVar("s", NcType::kByte, {x}).value();
  ASSERT_TRUE(ds.EndDef().ok());
  const std::vector<std::int32_t> big{1000, 5};
  const std::uint64_t st[] = {0};
  const std::uint64_t ct[] = {2};
  EXPECT_EQ(ds.PutVara<std::int32_t>(v, st, ct, big).code(), pnc::Err::kRange);
  std::vector<std::int32_t> out(2);
  ASSERT_TRUE(ds.GetVara<std::int32_t>(v, st, ct, out).ok());
  EXPECT_EQ(out[1], 5);  // in-range value landed
}

TEST_F(SerialDataset, ModeRulesEnforced) {
  auto ds = Dataset::Create(fs_, "mode.nc").value();
  const int x = ds.DefDim("x", 2).value();
  const int v = ds.DefVar("a", NcType::kInt, {x}).value();
  // Data access in define mode fails.
  std::vector<std::int32_t> data{1, 2};
  const std::uint64_t st[] = {0};
  const std::uint64_t ct[] = {2};
  EXPECT_EQ(ds.PutVara<std::int32_t>(v, st, ct, data).code(),
            pnc::Err::kInDefine);
  ASSERT_TRUE(ds.EndDef().ok());
  // Define calls in data mode fail.
  EXPECT_EQ(ds.DefDim("y", 3).status().code(), pnc::Err::kNotInDefine);
  EXPECT_EQ(ds.EndDef().code(), pnc::Err::kNotInDefine);
  // Writes through a read-only handle fail.
  ASSERT_TRUE(ds.Close().ok());
  auto rd = Dataset::Open(fs_, "mode.nc", false).value();
  EXPECT_EQ(rd.PutVara<std::int32_t>(0, st, ct, data).code(),
            pnc::Err::kPermission);
  EXPECT_EQ(rd.Redef().code(), pnc::Err::kPermission);
}

TEST_F(SerialDataset, BoundsErrors) {
  auto ds = Dataset::Create(fs_, "bounds.nc").value();
  const int x = ds.DefDim("x", 4).value();
  const int v = ds.DefVar("a", NcType::kInt, {x}).value();
  ASSERT_TRUE(ds.EndDef().ok());
  std::vector<std::int32_t> d(8, 0);
  const std::uint64_t st[] = {2};
  const std::uint64_t ct[] = {3};
  EXPECT_EQ(ds.PutVara<std::int32_t>(v, st, ct, d).code(), pnc::Err::kEdge);
  const std::uint64_t st2[] = {5};
  EXPECT_EQ(ds.PutVara<std::int32_t>(v, st2, ct, d).code(),
            pnc::Err::kInvalidCoords);
  EXPECT_EQ(ds.PutVara<std::int32_t>(7, st, ct, d).code(), pnc::Err::kNotVar);
}

TEST_F(SerialDataset, AttributeLifecycle) {
  auto ds = Dataset::Create(fs_, "attr.nc").value();
  const double pts[] = {1.0, 2.0, 3.0};
  ASSERT_TRUE(ds.PutAttValues<double>(kGlobal, "levels", NcType::kDouble, pts)
                  .ok());
  ASSERT_TRUE(ds.PutAttText(kGlobal, "old_name", "v").ok());
  ASSERT_TRUE(ds.RenameAtt(kGlobal, "old_name", "new_name").ok());
  EXPECT_EQ(ds.GetAtt(kGlobal, "old_name").status().code(), pnc::Err::kNotAtt);
  ASSERT_TRUE(ds.GetAtt(kGlobal, "new_name").ok());
  ASSERT_TRUE(ds.DelAtt(kGlobal, "new_name").ok());
  EXPECT_EQ(ds.ngatts(), 1);
  ASSERT_TRUE(ds.EndDef().ok());
  ASSERT_TRUE(ds.Close().ok());

  // Data-mode update: same type, same size is allowed; growth is not.
  auto wr = Dataset::Open(fs_, "attr.nc", true).value();
  const double pts2[] = {9.0, 8.0, 7.0};
  EXPECT_TRUE(
      wr.PutAttValues<double>(kGlobal, "levels", NcType::kDouble, pts2).ok());
  const double pts3[] = {1, 2, 3, 4};
  EXPECT_EQ(
      wr.PutAttValues<double>(kGlobal, "levels", NcType::kDouble, pts3).code(),
      pnc::Err::kNotInDefine);
  EXPECT_EQ(wr.PutAttText(kGlobal, "brand_new", "x").code(),
            pnc::Err::kNotInDefine);
}

TEST_F(SerialDataset, RedefAddVariableMovesData) {
  auto ds = Dataset::Create(fs_, "redef.nc").value();
  const int x = ds.DefDim("x", 8).value();
  const int a = ds.DefVar("a", NcType::kDouble, {x}).value();
  ASSERT_TRUE(ds.EndDef().ok());
  auto av = Seq(8, 100.0);
  ASSERT_TRUE(ds.PutVar<double>(a, av).ok());

  // Re-enter define mode, add a variable and an attribute: the header grows
  // and "a"'s data must move (paper §4.3 calls this costly — but correct).
  ASSERT_TRUE(ds.Redef().ok());
  const int b = ds.DefVar("b", NcType::kDouble, {x}).value();
  ASSERT_TRUE(ds.PutAttText(kGlobal, "note",
                            std::string(512, 'n'))  // force header growth
                  .ok());
  ASSERT_TRUE(ds.EndDef().ok());
  auto bv = Seq(8, 200.0);
  ASSERT_TRUE(ds.PutVar<double>(b, bv).ok());

  std::vector<double> out(8);
  ASSERT_TRUE(ds.GetVar<double>(a, out).ok());
  EXPECT_EQ(out, av);
  ASSERT_TRUE(ds.Close().ok());

  auto rd = Dataset::Open(fs_, "redef.nc", false).value();
  ASSERT_TRUE(rd.GetVar<double>(rd.VarId("a").value(), out).ok());
  EXPECT_EQ(out, av);
  ASSERT_TRUE(rd.GetVar<double>(rd.VarId("b").value(), out).ok());
  EXPECT_EQ(out, bv);
}

TEST_F(SerialDataset, RedefWithRecordsRedistributes) {
  auto ds = Dataset::Create(fs_, "redefrec.nc").value();
  const int t = ds.DefDim("t", kUnlimited).value();
  const int x = ds.DefDim("x", 2).value();
  const int a = ds.DefVar("a", NcType::kInt, {t, x}).value();
  ASSERT_TRUE(ds.EndDef().ok());
  for (std::uint64_t r = 0; r < 3; ++r) {
    const std::uint64_t st[] = {r, 0};
    const std::uint64_t ct[] = {1, 2};
    const std::vector<std::int32_t> v{static_cast<std::int32_t>(10 * r),
                                      static_cast<std::int32_t>(10 * r + 1)};
    ASSERT_TRUE(ds.PutVara<std::int32_t>(a, st, ct, v).ok());
  }
  // Adding a second record variable changes recsize: records must be
  // redistributed into the new interleaving.
  ASSERT_TRUE(ds.Redef().ok());
  const int b = ds.DefVar("b", NcType::kDouble, {t, x}).value();
  ASSERT_TRUE(ds.EndDef().ok());
  (void)b;
  std::vector<std::int32_t> out(6);
  ASSERT_TRUE(ds.GetVar<std::int32_t>(a, out).ok());
  EXPECT_EQ(out, (std::vector<std::int32_t>{0, 1, 10, 11, 20, 21}));
}

TEST_F(SerialDataset, AbortFreshCreateDeletesFile) {
  auto ds = Dataset::Create(fs_, "aborted.nc").value();
  (void)ds.DefDim("x", 2);
  ASSERT_TRUE(ds.Abort().ok());
  EXPECT_FALSE(fs_.Exists("aborted.nc"));
}

TEST_F(SerialDataset, AbortRedefRestoresHeader) {
  auto ds = Dataset::Create(fs_, "abort2.nc").value();
  (void)ds.DefDim("x", 2);
  ASSERT_TRUE(ds.EndDef().ok());
  ASSERT_TRUE(ds.Redef().ok());
  (void)ds.DefDim("y", 3);
  ASSERT_TRUE(ds.Abort().ok());
  EXPECT_EQ(ds.ndims(), 1);
}

TEST_F(SerialDataset, NoClobberRespected) {
  ASSERT_TRUE(Dataset::Create(fs_, "exists.nc").value().Close().ok());
  CreateOptions opts;
  opts.clobber = false;
  EXPECT_EQ(Dataset::Create(fs_, "exists.nc", opts).status().code(),
            pnc::Err::kExists);
}

TEST_F(SerialDataset, FillModeWritesFillValues) {
  auto ds = Dataset::Create(fs_, "fill.nc").value();
  ASSERT_TRUE(ds.SetFill(FillMode::kFill).ok());
  const int x = ds.DefDim("x", 4).value();
  const int v = ds.DefVar("d", NcType::kDouble, {x}).value();
  const int t = ds.DefDim("t", kUnlimited).value();
  const int r = ds.DefVar("r", NcType::kInt, {t, x}).value();
  ASSERT_TRUE(ds.EndDef().ok());
  std::vector<double> out(4);
  ASSERT_TRUE(ds.GetVar<double>(v, out).ok());
  for (auto d : out) EXPECT_EQ(d, kFillDouble);
  // Writing record 2 fills the skipped records 0 and 1.
  const std::uint64_t st[] = {2, 0};
  const std::uint64_t ct[] = {1, 4};
  const std::vector<std::int32_t> rv{1, 2, 3, 4};
  ASSERT_TRUE(ds.PutVara<std::int32_t>(r, st, ct, rv).ok());
  std::vector<std::int32_t> rec0(4);
  const std::uint64_t st0[] = {0, 0};
  ASSERT_TRUE(ds.GetVara<std::int32_t>(r, st0, ct, rec0).ok());
  for (auto i : rec0) EXPECT_EQ(i, kFillInt);
}

TEST_F(SerialDataset, NoFillReadsZeroes) {
  auto ds = Dataset::Create(fs_, "nofill.nc").value();
  const int x = ds.DefDim("x", 4).value();
  const int v = ds.DefVar("d", NcType::kInt, {x}).value();
  ASSERT_TRUE(ds.EndDef().ok());
  std::vector<std::int32_t> out(4, -1);
  ASSERT_TRUE(ds.GetVar<std::int32_t>(v, out).ok());
  for (auto i : out) EXPECT_EQ(i, 0);
}

TEST_F(SerialDataset, CharVariableText) {
  auto ds = Dataset::Create(fs_, "text.nc").value();
  const int n = ds.DefDim("len", 12).value();
  const int v = ds.DefVar("name", NcType::kChar, {n}).value();
  ASSERT_TRUE(ds.EndDef().ok());
  const std::string s = "hello world!";
  const std::uint64_t st[] = {0};
  const std::uint64_t ct[] = {12};
  ASSERT_TRUE(ds.PutVara<char>(v, st, ct, {s.data(), s.size()}).ok());
  std::vector<char> out(12);
  ASSERT_TRUE(ds.GetVara<char>(v, st, ct, out).ok());
  EXPECT_EQ(std::string(out.data(), 12), s);
}

TEST_F(SerialDataset, ScalarVariable) {
  auto ds = Dataset::Create(fs_, "scalar.nc").value();
  const int v = ds.DefVar("answer", NcType::kInt, {}).value();
  ASSERT_TRUE(ds.EndDef().ok());
  ASSERT_TRUE(ds.PutVar1<std::int32_t>(v, {}, 42).ok());
  std::int32_t out = 0;
  ASSERT_TRUE(ds.GetVar1<std::int32_t>(v, {}, out).ok());
  EXPECT_EQ(out, 42);
}

TEST_F(SerialDataset, SyncPersistsNumrecs) {
  auto ds = Dataset::Create(fs_, "sync.nc").value();
  const int t = ds.DefDim("t", kUnlimited).value();
  const int v = ds.DefVar("v", NcType::kInt, {t}).value();
  ASSERT_TRUE(ds.EndDef().ok());
  const std::uint64_t st[] = {0};
  const std::uint64_t ct[] = {1};
  const std::int32_t one = 1;
  ASSERT_TRUE(ds.PutVara<std::int32_t>(v, st, ct, {&one, 1}).ok());
  ASSERT_TRUE(ds.Sync().ok());
  // A second reader sees the record immediately after sync.
  auto rd = Dataset::Open(fs_, "sync.nc", false).value();
  EXPECT_EQ(rd.numrecs(), 1u);
}

TEST_F(SerialDataset, LargeVariableChecksCdf1Limit) {
  CreateOptions opts;
  opts.use_cdf2 = false;
  auto ds = Dataset::Create(fs_, "big1.nc", opts).value();
  const int x = ds.DefDim("x", 600ull << 20).value();
  (void)ds.DefVar("a", NcType::kInt, {x});
  (void)ds.DefVar("b", NcType::kInt, {x});
  EXPECT_EQ(ds.EndDef().code(), pnc::Err::kVarSize);
}

TEST_F(SerialDataset, VirtualClockAdvancesWithIo) {
  auto ds = Dataset::Create(fs_, "clock.nc").value();
  const int x = ds.DefDim("x", 1 << 18).value();
  const int v = ds.DefVar("a", NcType::kDouble, {x}).value();
  ASSERT_TRUE(ds.EndDef().ok());
  const double t0 = ds.clock().now();
  ASSERT_TRUE(ds.PutVar<double>(v, Seq(1 << 18)).ok());
  ASSERT_TRUE(ds.Sync().ok());
  EXPECT_GT(ds.clock().now(), t0);
}

}  // namespace
}  // namespace netcdf
