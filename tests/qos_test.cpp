// Multi-tenant QoS scheduling (pfs/sched.hpp + FileSystem integration).
//
// Four areas, mirroring DESIGN.md §9:
//   1. Discipline equivalence, scripted at the ServerSched level: WFQ with
//      equal weights and EDF with a single tenant produce grant times
//      bit-identical to FCFS (EXPECT_EQ on doubles — no tolerance), and the
//      same seeded multi-tenant contention script always yields the same
//      grants (deterministic ordering).
//   2. Pacing and backfill arithmetic, hand-computed: Virtual Clock release
//      times, the pacing gap a delayed grant opens, and first-fit placement
//      of other tenants' work into that gap.
//   3. FileSystem integration: tenant interning, environment identity,
//      admission-control backpressure surfacing as queue wait (never an
//      error), per-tenant counters, and isolation — a light tenant's queue
//      wait under a co-located write storm drops by >= 5x when WFQ or EDF
//      is armed, while plain FCFS starves it and misses its deadline.
//   4. Observability: flight-recorder pfs events carry "w:<tenant>" details
//      for named tenants (and the exact legacy "w" for the default tenant),
//      and critical-path analysis reports per-(server, tenant) rows.
#include "pfs/sched.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "iostat/critpath.hpp"
#include "iostat/events.hpp"
#include "iostat/iostat.hpp"
#include "mpiio/file.hpp"
#include "pfs/pfs.hpp"
#include "pnetcdf/dataset.hpp"
#include "simmpi/runtime.hpp"

namespace {

using pfs::QosDiscipline;
using pfs::QosPolicy;
using pfs::ServerSched;
using pfs::TenantClass;
using pfs::TenantUsage;
using simmpi::Comm;

// ------------------------------------------------ scripted ServerSched

struct ScriptEvent {
  int tenant = 0;
  double arrival_ns = 0;
  double payload_ns = 0;
};

constexpr double kReqNs = 100.0;

/// Run `script` through a fresh ServerSched under `ctx`; `classes[tenant]`
/// supplies each event's QoS class. Pacing is applied the way the FileSystem
/// does it: one TenantPacer per tenant releases each request before Admit
/// places it (each scripted event is a single-server request, so the total
/// service charged to the pacer is just request + payload).
std::vector<ServerSched::Grant> RunScript(
    const std::vector<ScriptEvent>& script,
    const std::vector<TenantClass>& classes,
    const ServerSched::PolicyContext& ctx) {
  ServerSched sched;
  std::vector<pfs::TenantPacer> pacers(classes.size());
  std::vector<ServerSched::Grant> grants;
  grants.reserve(script.size());
  for (const ScriptEvent& e : script) {
    const TenantClass& cls = classes[static_cast<std::size_t>(e.tenant)];
    double eligible = e.arrival_ns;
    if (ctx.discipline != QosDiscipline::kFcfs)
      eligible = pacers[static_cast<std::size_t>(e.tenant)].Release(
          e.arrival_ns, kReqNs + e.payload_ns, pfs::QosShare(cls, ctx));
    ServerSched::Grant g =
        sched.Admit(ctx, e.arrival_ns, eligible, kReqNs, e.payload_ns);
    g.paced = eligible > e.arrival_ns;
    grants.push_back(g);
  }
  return grants;
}

/// Seeded contention script: `ntenants` tenants issuing bursts with varied
/// sizes at varied (sometimes identical) arrival times. Pure LCG — the same
/// seed always produces the same script.
std::vector<ScriptEvent> SeededScript(std::uint64_t seed, int ntenants,
                                      std::size_t n) {
  std::uint64_t x = seed;
  const auto next = [&x]() {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    return x >> 33;
  };
  std::vector<ScriptEvent> script;
  script.reserve(n);
  double t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ScriptEvent e;
    e.tenant = static_cast<int>(next() % static_cast<std::uint64_t>(ntenants));
    if (next() % 3 == 0) t += static_cast<double>(next() % 5000);
    e.arrival_ns = t;
    e.payload_ns = static_cast<double>(200 + next() % 2000);
    script.push_back(e);
  }
  return script;
}

void ExpectGrantsBitIdentical(const std::vector<ServerSched::Grant>& a,
                              const std::vector<ServerSched::Grant>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("grant " + std::to_string(i));
    EXPECT_EQ(a[i].begin_ns, b[i].begin_ns);  // exact, no tolerance
    EXPECT_EQ(a[i].done_ns, b[i].done_ns);
  }
}

TEST(SchedEquivalence, WfqEqualWeightsBitIdenticalToFcfs) {
  const std::vector<TenantClass> classes = {
      {"", 1.0, 0.0, 0}, {"a", 1.0, 0.0, 0}, {"b", 1.0, 0.0, 0}};
  const auto script = SeededScript(/*seed=*/42, /*ntenants=*/3, 300);

  ServerSched::PolicyContext fcfs;
  ServerSched::PolicyContext wfq;
  wfq.discipline = QosDiscipline::kWfq;
  wfq.max_weight = 1.0;

  const auto ga = RunScript(script, classes, fcfs);
  const auto gb = RunScript(script, classes, wfq);
  ExpectGrantsBitIdentical(ga, gb);
  for (const auto& g : gb) {
    EXPECT_FALSE(g.paced);
    EXPECT_FALSE(g.backfilled);
  }
}

TEST(SchedEquivalence, SingleTenantEdfBitIdenticalToFcfs) {
  // A lone deadline holder is never paced; with no deadlines registered at
  // all, EDF has nothing to protect and paces nobody either.
  const auto script = SeededScript(/*seed=*/7, /*ntenants=*/1, 200);
  ServerSched::PolicyContext fcfs;

  {
    const std::vector<TenantClass> classes = {{"dl", 1.0, 1e9, 0}};
    ServerSched::PolicyContext edf;
    edf.discipline = QosDiscipline::kEdf;
    edf.any_deadline = true;
    ExpectGrantsBitIdentical(RunScript(script, classes, fcfs),
                             RunScript(script, classes, edf));
  }
  {
    const std::vector<TenantClass> classes = {{"bg", 1.0, 0.0, 0}};
    ServerSched::PolicyContext edf;
    edf.discipline = QosDiscipline::kEdf;
    edf.any_deadline = false;
    ExpectGrantsBitIdentical(RunScript(script, classes, fcfs),
                             RunScript(script, classes, edf));
  }
}

TEST(SchedEquivalence, SeededContentionIsDeterministic) {
  // Unequal weights under WFQ: the script must exercise pacing and backfill,
  // and two independent runs must agree grant for grant.
  const std::vector<TenantClass> classes = {
      {"", 1.0, 0.0, 0}, {"slow", 0.25, 0.0, 0}, {"fast", 1.0, 0.0, 0}};
  const auto script = SeededScript(/*seed=*/1234, /*ntenants=*/3, 400);
  ServerSched::PolicyContext wfq;
  wfq.discipline = QosDiscipline::kWfq;
  wfq.max_weight = 1.0;

  const auto ga = RunScript(script, classes, wfq);
  const auto gb = RunScript(script, classes, wfq);
  ASSERT_EQ(ga.size(), gb.size());
  std::size_t paced = 0, backfilled = 0;
  for (std::size_t i = 0; i < ga.size(); ++i) {
    SCOPED_TRACE("grant " + std::to_string(i));
    EXPECT_EQ(ga[i].begin_ns, gb[i].begin_ns);
    EXPECT_EQ(ga[i].done_ns, gb[i].done_ns);
    EXPECT_EQ(ga[i].paced, gb[i].paced);
    EXPECT_EQ(ga[i].backfilled, gb[i].backfilled);
    paced += ga[i].paced ? 1u : 0u;
    backfilled += ga[i].backfilled ? 1u : 0u;
  }
  EXPECT_GT(paced, 0u) << "script never exercised pacing";
  EXPECT_GT(backfilled, 0u) << "script never exercised backfill";
}

// ------------------------------------------------ hand-computed pacing

// Tenant "slow" (weight 1/4) issues two service-400 events at t=0; tenant 0
// (weight 1) then backfills the pacing gap. Virtual Clock: slow's first
// event is released immediately (clock starts at 0) and advances the clock
// by 400 / 0.25 = 1600; the second is held to t=1600, opening gap
// [400, 1600) behind it, which tenant 0 fills first-fit in 400 ns slices.
TEST(SchedPacing, WfqVirtualClockAndGapBackfill) {
  const std::vector<TenantClass> classes = {{"", 1.0, 0.0, 0},
                                            {"slow", 0.25, 0.0, 0}};
  ServerSched::PolicyContext ctx;
  ctx.discipline = QosDiscipline::kWfq;
  ctx.max_weight = 1.0;
  ServerSched sched;
  std::vector<pfs::TenantPacer> pacers(classes.size());
  const auto admit = [&](int tenant) {
    const auto t = static_cast<std::size_t>(tenant);
    const double eligible = pacers[t].Release(
        /*eligible=*/0.0, kReqNs + 300.0, pfs::QosShare(classes[t], ctx));
    ServerSched::Grant g = sched.Admit(ctx, /*arrival=*/0.0, eligible, kReqNs,
                                       /*payload=*/300.0);
    g.paced = eligible > 0.0;
    return g;
  };

  const auto g1 = admit(1);  // released at clock 0
  EXPECT_EQ(g1.begin_ns, 0.0);
  EXPECT_EQ(g1.done_ns, 400.0);
  EXPECT_FALSE(g1.paced);

  const auto g2 = admit(1);  // held to vclock = 1600
  EXPECT_TRUE(g2.paced);
  EXPECT_EQ(g2.begin_ns, 1600.0);
  EXPECT_EQ(g2.done_ns, 2000.0);

  const auto g3 = admit(0);  // backfills [400, 1600)
  EXPECT_TRUE(g3.backfilled);
  EXPECT_EQ(g3.begin_ns, 400.0);
  EXPECT_EQ(g3.done_ns, 800.0);

  const auto g4 = admit(0);
  EXPECT_TRUE(g4.backfilled);
  EXPECT_EQ(g4.begin_ns, 800.0);
  EXPECT_EQ(g4.done_ns, 1200.0);

  const auto g5 = admit(0);  // exactly fills the remainder of the gap
  EXPECT_TRUE(g5.backfilled);
  EXPECT_EQ(g5.begin_ns, 1200.0);
  EXPECT_EQ(g5.done_ns, 1600.0);

  const auto g6 = admit(0);  // gap exhausted: appends behind the tail
  EXPECT_FALSE(g6.backfilled);
  EXPECT_EQ(g6.begin_ns, 2000.0);
  EXPECT_EQ(g6.done_ns, 2400.0);

  EXPECT_EQ(sched.next_free(), 2400.0);
  EXPECT_EQ(sched.busy_ns(), 6 * 400.0);  // fully packed timeline
  EXPECT_EQ(sched.horizon_ns(), 2400.0);
}

TEST(SchedPacing, EdfPacesBackgroundAndAdmitsDeadlineHolders) {
  const std::vector<TenantClass> classes = {
      {"", 1.0, 0.0, 0}, {"bg", 1.0, 0.0, 0}, {"dl", 1.0, 1e6, 0}};
  ServerSched::PolicyContext ctx;
  ctx.discipline = QosDiscipline::kEdf;
  ctx.any_deadline = true;
  ctx.edf_background_share = 0.25;
  ServerSched sched;
  std::vector<pfs::TenantPacer> pacers(classes.size());
  const auto admit = [&](int tenant) {
    const auto t = static_cast<std::size_t>(tenant);
    const double eligible = pacers[t].Release(
        0.0, kReqNs + 300.0, pfs::QosShare(classes[t], ctx));
    ServerSched::Grant g = sched.Admit(ctx, 0.0, eligible, kReqNs, 300.0);
    g.paced = eligible > 0.0;
    return g;
  };

  const auto g1 = admit(1);  // background, clock 0: released
  EXPECT_EQ(g1.begin_ns, 0.0);
  EXPECT_EQ(g1.done_ns, 400.0);
  EXPECT_FALSE(g1.paced);

  const auto g2 = admit(1);  // background, held to 400 / 0.25 = 1600
  EXPECT_TRUE(g2.paced);
  EXPECT_EQ(g2.begin_ns, 1600.0);
  EXPECT_EQ(g2.done_ns, 2000.0);

  const auto g3 = admit(2);  // deadline holder: unpaced, backfills the gap
  EXPECT_FALSE(g3.paced);
  EXPECT_TRUE(g3.backfilled);
  EXPECT_EQ(g3.begin_ns, 400.0);
  EXPECT_EQ(g3.done_ns, 800.0);
}

TEST(SchedPacing, WaitPercentileNearestRank) {
  EXPECT_EQ(pfs::WaitPercentile({}, 99.0), 0.0);
  const std::vector<double> s = {40.0, 10.0, 30.0, 20.0};
  EXPECT_EQ(pfs::WaitPercentile(s, 50.0), 20.0);
  EXPECT_EQ(pfs::WaitPercentile(s, 99.0), 40.0);
  EXPECT_EQ(pfs::WaitPercentile(s, 0.0), 10.0);
  EXPECT_EQ(pfs::WaitPercentile({7.0}, 99.0), 7.0);
}

TEST(SchedPacing, WaitPercentileEdgeCases) {
  // Empty at either extreme: 0, never a crash.
  EXPECT_EQ(pfs::WaitPercentile({}, 0.0), 0.0);
  EXPECT_EQ(pfs::WaitPercentile({}, 100.0), 0.0);
  // A single sample answers every percentile.
  EXPECT_EQ(pfs::WaitPercentile({4.0}, 0.0), 4.0);
  EXPECT_EQ(pfs::WaitPercentile({4.0}, 50.0), 4.0);
  EXPECT_EQ(pfs::WaitPercentile({4.0}, 100.0), 4.0);
  // p0 / p100 pick the sorted extremes (nearest-rank clamps in range).
  const std::vector<double> s = {5.0, 1.0, 9.0, 3.0, 7.0};
  EXPECT_EQ(pfs::WaitPercentile(s, 0.0), 1.0);
  EXPECT_EQ(pfs::WaitPercentile(s, 100.0), 9.0);
  // A vector exactly at the reservoir cap stays addressable at both ends,
  // and nearest-rank p50 on an even count is the lower-middle sample.
  std::vector<double> big(pfs::TenantCounters::kMaxWaitSamples);
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<double>(i);
  EXPECT_EQ(pfs::WaitPercentile(big, 0.0), 0.0);
  EXPECT_EQ(pfs::WaitPercentile(big, 100.0),
            static_cast<double>(big.size() - 1));
  EXPECT_EQ(pfs::WaitPercentile(big, 50.0),
            static_cast<double>(big.size() / 2 - 1));
}

TEST(FileSystemTenants, WaitSampleReservoirCapsAtKMaxWaitSamples) {
  // The per-tenant wait reservoir stops growing at kMaxWaitSamples while
  // the event counters keep counting: unbounded churn cannot balloon the
  // snapshot.
  pfs::FileSystem fs;
  auto f = fs.Create("reservoir.dat", /*exclusive=*/false).value();
  std::vector<std::byte> buf(4096, std::byte{1});
  f.HarnessWrite(0, pnc::ConstByteSpan(buf.data(), buf.size()), 0.0);
  const std::size_t cap = pfs::TenantCounters::kMaxWaitSamples;
  for (std::size_t i = 0; i < cap + 128; ++i)
    f.HarnessRead(0, pnc::ByteSpan(buf.data(), buf.size()), 0.0);
  const auto snap = fs.TenantUsageSnapshot();
  ASSERT_FALSE(snap.empty());
  const auto& ctr = snap[0].ctr;  // default tenant
  EXPECT_EQ(ctr.wait_samples.size(), cap);
  EXPECT_GE(ctr.server_events, cap + 128);
  // The capped reservoir still yields finite percentiles.
  EXPECT_GE(pfs::WaitPercentile(ctr.wait_samples, 99.0), 0.0);
}

// ------------------------------------------------ FileSystem integration

TEST(FileSystemTenants, RegisterInternsByNameAndUpdatesInPlace) {
  pfs::FileSystem fs;
  EXPECT_EQ(fs.RegisterTenant({"", 8.0, 0, 0}), 0);  // default is fixed
  const int a = fs.RegisterTenant({"alpha", 2.0, 0, 0});
  const int b = fs.RegisterTenant({"beta", 1.0, 0, 0});
  EXPECT_GT(a, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(fs.FindTenant("alpha"), a);
  EXPECT_EQ(fs.FindTenant("nobody"), 0);

  // Re-registering updates the class, keeps the index.
  EXPECT_EQ(fs.RegisterTenant({"alpha", 4.0, 5e8, 1024}), a);
  const auto snap = fs.TenantUsageSnapshot();
  ASSERT_GT(snap.size(), static_cast<std::size_t>(a));
  EXPECT_DOUBLE_EQ(snap[static_cast<std::size_t>(a)].cls.weight, 4.0);
  EXPECT_DOUBLE_EQ(snap[static_cast<std::size_t>(a)].cls.deadline_ns, 5e8);

  // Out-of-range weights clamp; over-long names truncate to the flight-
  // recorder detail budget (20 chars).
  const int c = fs.RegisterTenant(
      {"a-very-long-tenant-name-indeed", 1e9, 0, 0});
  const auto snap2 = fs.TenantUsageSnapshot();
  EXPECT_EQ(snap2[static_cast<std::size_t>(c)].cls.name.size(), 20u);
  EXPECT_DOUBLE_EQ(snap2[static_cast<std::size_t>(c)].cls.weight,
                   TenantClass::kMaxWeight);
}

TEST(FileSystemTenants, TenantClassFromEnvParsesAndClamps) {
  ::setenv("PNC_TENANT", "envuser", 1);
  ::setenv("PNC_QOS_WEIGHT", "128", 1);        // clamps to kMaxWeight
  ::setenv("PNC_QOS_DEADLINE_NS", "-5", 1);    // clamps to 0
  ::setenv("PNC_QOS_CAP_BYTES", "4096", 1);
  const TenantClass cls = pfs::TenantClassFromEnv();
  ::unsetenv("PNC_TENANT");
  ::unsetenv("PNC_QOS_WEIGHT");
  ::unsetenv("PNC_QOS_DEADLINE_NS");
  ::unsetenv("PNC_QOS_CAP_BYTES");
  EXPECT_EQ(cls.name, "envuser");
  EXPECT_DOUBLE_EQ(cls.weight, TenantClass::kMaxWeight);
  EXPECT_EQ(cls.deadline_ns, 0.0);
  EXPECT_EQ(cls.max_outstanding_bytes, 4096u);

  const TenantClass none = pfs::TenantClassFromEnv();
  EXPECT_TRUE(none.name.empty());
  EXPECT_DOUBLE_EQ(none.weight, 1.0);
}

TEST(FileSystemTenants, ParseQosDiscipline) {
  EXPECT_EQ(pfs::ParseQosDiscipline("fcfs"), QosDiscipline::kFcfs);
  EXPECT_EQ(pfs::ParseQosDiscipline("wfq"), QosDiscipline::kWfq);
  EXPECT_EQ(pfs::ParseQosDiscipline("edf"), QosDiscipline::kEdf);
  EXPECT_FALSE(pfs::ParseQosDiscipline("lifo").has_value());
  EXPECT_STREQ(pfs::QosDisciplineName(QosDiscipline::kWfq), "wfq");
}

/// The same I/O sequence on a second FileSystem with named tenants
/// registered and a policy armed; returns the completion times.
std::vector<double> TimelineFor(bool with_tenants, const QosPolicy& policy) {
  pfs::FileSystem fs;
  auto f = fs.Create("t.dat", /*exclusive=*/false).value();
  if (with_tenants) {
    const int a = fs.RegisterTenant({"a", 1.0, 0.0, 0});
    fs.RegisterTenant({"b", 1.0, 0.0, 0});
    fs.SetQosPolicy(policy);
    f.SetTenant(a);
  }
  std::vector<std::byte> buf(300 << 10, std::byte{0x5A});
  std::vector<double> done;
  done.push_back(f.HarnessWrite(0, pnc::ConstByteSpan(buf.data(), 64 << 10),
                                0.0));
  done.push_back(f.HarnessWrite(256 << 10,
                                pnc::ConstByteSpan(buf.data(), 300 << 10),
                                done.back()));
  done.push_back(f.HarnessRead(0, pnc::ByteSpan(buf.data(), 128 << 10),
                               done.back() + 1e5));
  done.push_back(f.HarnessSync(done.back()));
  return done;
}

TEST(FileSystemTenants, EqualWeightPoliciesKeepLegacyTimelineBitIdentical) {
  // The no-policy-armed contract, end to end: registering tenants and arming
  // WFQ with equal weights (or EDF with no deadlines) must not move a single
  // completion time relative to the untouched legacy FileSystem.
  const std::vector<double> legacy = TimelineFor(false, QosPolicy{});

  QosPolicy wfq;
  wfq.discipline = QosDiscipline::kWfq;
  const std::vector<double> under_wfq = TimelineFor(true, wfq);

  QosPolicy edf;
  edf.discipline = QosDiscipline::kEdf;
  const std::vector<double> under_edf = TimelineFor(true, edf);

  ASSERT_EQ(legacy.size(), under_wfq.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i], under_wfq[i]) << "op " << i;
    EXPECT_EQ(legacy[i], under_edf[i]) << "op " << i;
  }
}

TEST(FileSystemTenants, AdmissionCapSurfacesAsQueueWaitNotError) {
  pfs::FileSystem fs;
  const int capped =
      fs.RegisterTenant({"capped", 1.0, 0.0, /*cap=*/256 << 10});
  const int open_ = fs.RegisterTenant({"open", 1.0, 0.0, 0});

  auto fc = fs.Create("capped.dat", false).value();
  fc.SetTenant(capped);
  auto fo = fs.Create("open.dat", false).value();
  fo.SetTenant(open_);

  // Four concurrent 256 KiB writes (all issued at t=0): the capped tenant
  // may keep only one in flight, so writes 2..4 are held at the client until
  // a predecessor drains. The uncapped tenant sees no admission wait. The
  // offsets put the two tenants on disjoint servers (one stripe per write,
  // stripes 0-3 vs 4-7) so their queue waits are independently attributable.
  std::vector<std::byte> buf(256 << 10, std::byte{1});
  for (int i = 0; i < 4; ++i) {
    fc.HarnessWrite(static_cast<std::uint64_t>(i) * (256 << 10),
                    pnc::ConstByteSpan(buf.data(), buf.size()), 0.0);
    fo.HarnessWrite(static_cast<std::uint64_t>(i + 4) * (256 << 10),
                    pnc::ConstByteSpan(buf.data(), buf.size()), 0.0);
  }
  const auto snap = fs.TenantUsageSnapshot();
  const auto& c = snap[static_cast<std::size_t>(capped)].ctr;
  const auto& o = snap[static_cast<std::size_t>(open_)].ctr;
  EXPECT_GT(c.admission_wait_ns, 0.0);
  EXPECT_EQ(o.admission_wait_ns, 0.0);
  EXPECT_EQ(c.served_bytes, o.served_bytes);  // backpressure, not loss
  EXPECT_EQ(c.server_events, o.server_events);
  // Held requests wait longer than freely admitted ones.
  EXPECT_GT(c.queue_wait_ns, o.queue_wait_ns);
}

// ------------------------------------------------ isolation under a storm

struct StormResult {
  double light_wait_ns = 0;       ///< the light tenant's max queue wait
  std::uint64_t light_misses = 0;
  std::uint64_t heavy_paced = 0;
};

/// A heavy tenant floods one server with 20 RMW writes at t=0, then a light
/// tenant issues one 4 KiB read, also at t=0. Returns what the light tenant
/// experienced under `policy`.
StormResult RunStorm(const QosPolicy& policy, double light_deadline_ns) {
  pfs::FileSystem fs;
  const int heavy = fs.RegisterTenant({"heavy", 1.0 / 16.0, 0.0, 0});
  const int light =
      fs.RegisterTenant({"light", 1.0, light_deadline_ns, 0});
  fs.SetQosPolicy(policy);

  auto fh = fs.Create("storm.dat", false).value();
  fh.SetTenant(heavy);
  auto fl = fs.Create("steady.dat", false).value();
  fl.SetTenant(light);

  std::vector<std::byte> buf(64 << 10, std::byte{2});
  for (int i = 0; i < 20; ++i)
    fh.HarnessWrite(0, pnc::ConstByteSpan(buf.data(), buf.size()), 0.0);
  fl.HarnessRead(0, pnc::ByteSpan(buf.data(), 4096), 0.0);

  const auto snap = fs.TenantUsageSnapshot();
  StormResult r;
  const auto& lc = snap[static_cast<std::size_t>(light)].ctr;
  r.light_wait_ns = pfs::WaitPercentile(lc.wait_samples, 99.0);
  r.light_misses = lc.deadline_misses;
  r.heavy_paced = snap[static_cast<std::size_t>(heavy)].ctr.paced_events;
  return r;
}

TEST(FileSystemTenants, WfqAndEdfIsolateLightTenantFromStorm) {
  constexpr double kDeadline = 20e6;  // 20 ms: generous solo, hopeless FCFS
  const StormResult fcfs = RunStorm(QosPolicy{}, kDeadline);

  QosPolicy wfq;
  wfq.discipline = QosDiscipline::kWfq;
  const StormResult under_wfq = RunStorm(wfq, kDeadline);

  QosPolicy edf;
  edf.discipline = QosDiscipline::kEdf;
  const StormResult under_edf = RunStorm(edf, kDeadline);

  // FCFS starves the light tenant behind the storm and blows its deadline.
  EXPECT_GT(fcfs.light_wait_ns, 1e8);
  EXPECT_GE(fcfs.light_misses, 1u);
  EXPECT_EQ(fcfs.heavy_paced, 0u);

  // WFQ (heavy at weight 1/16) and EDF (light holds the only deadline) pace
  // the storm; the light tenant's wait collapses by >= 5x and the deadline
  // holds.
  EXPECT_GT(under_wfq.heavy_paced, 0u);
  EXPECT_LT(under_wfq.light_wait_ns * 5, fcfs.light_wait_ns);
  EXPECT_EQ(under_wfq.light_misses, 0u);

  EXPECT_GT(under_edf.heavy_paced, 0u);
  EXPECT_LT(under_edf.light_wait_ns * 5, fcfs.light_wait_ns);
  EXPECT_EQ(under_edf.light_misses, 0u);
}

// ------------------------------------------------ end-to-end identity

TEST(TenantIdentity, PnetcdfDatasetBillsAllIoToTheHintedTenant) {
  pfs::FileSystem fs;
  simmpi::Info info;
  info.Set("cb_nodes", "1");
  info.Set("pnc_tenant", "storm");
  info.Set("pnc_qos_weight", "0.5");
  simmpi::Run(2, [&](Comm& c) {
    auto r = pnetcdf::Dataset::Create(c, fs, "e2e.nc", info);
    ASSERT_TRUE(r.ok());
    auto ds = std::move(r).value();
    const auto t = ds.DefDim("time", pnetcdf::kUnlimited);
    const auto x = ds.DefDim("x", 8);
    const auto v =
        ds.DefVar("r", ncformat::NcType::kInt, {t.value(), x.value()});
    ASSERT_TRUE(ds.EndDef().ok());
    const std::vector<std::int32_t> mine = {c.rank(), c.rank() + 1, 0, 0};
    const std::uint64_t start[] = {0, static_cast<std::uint64_t>(4 * c.rank())};
    const std::uint64_t count[] = {1, 4};
    ASSERT_TRUE(ds.PutVaraAll<std::int32_t>(v.value(), start, count, mine).ok());
    ASSERT_TRUE(ds.Close().ok());
  });

  const int storm = fs.FindTenant("storm");
  ASSERT_GT(storm, 0);
  const auto snap = fs.TenantUsageSnapshot();
  const auto& sc = snap[static_cast<std::size_t>(storm)];
  EXPECT_DOUBLE_EQ(sc.cls.weight, 0.5);  // hint carried into the class
  EXPECT_GT(sc.ctr.server_events, 0u);
  EXPECT_GT(sc.ctr.served_bytes, 0u);
  // Every byte — header commit, data, journal, sums sidecar — lands on the
  // tenant; nothing leaks to the default tenant.
  EXPECT_EQ(snap[0].ctr.served_bytes, 0u);
}

// ------------------------------------------------ observability

class QosTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
#if !PNC_IOSTAT_ENABLED
    GTEST_SKIP() << "instrumentation compiled out (PNC_IOSTAT=OFF)";
#endif
    iostat::Registry::Get().Reset();
    iostat::Registry::Get().SetCountersEnabled(true);
  }
  void TearDown() override { iostat::Registry::Get().Reset(); }
};

TEST_F(QosTraceTest, EventsAndCritpathCarryTenantTags) {
  constexpr std::uint64_t kBlock = 256 << 10;
  pfs::Config cfg;
  cfg.num_servers = 2;
  cfg.stripe_size = kBlock;
  pfs::FileSystem fs(cfg);

  simmpi::Info info;
  info.Set("pnc_tenant", "storm");
  std::vector<std::vector<iostat::Event>> snap;
  simmpi::Run(4, [&](Comm& c) {
    auto f = mpiio::File::Open(c, fs, "tp.dat", mpiio::kCreate | mpiio::kRdWr,
                               info)
                 .value();
    c.Barrier();
    if (c.rank() == 0) iostat::Registry::Get().Reset();
    c.Barrier();
    PNC_IOSTAT_BIND_RANK(c.rank());
    std::vector<std::byte> mine(kBlock, std::byte{0x5A});
    ASSERT_TRUE(f.WriteAtAll(static_cast<std::uint64_t>(c.rank()) * kBlock,
                             mine.data(), kBlock, simmpi::ByteType())
                    .ok());
    c.Barrier();
    if (c.rank() == 0) snap = iostat::FlightRecorder::Get().Collect();
    c.Barrier();
    ASSERT_TRUE(f.Close().ok());
  });
  ASSERT_EQ(snap.size(), 4u);

  // pfs service events carry the tenant in the detail field.
  std::size_t tagged = 0;
  for (const auto& ev : snap)
    for (const auto& e : ev)
      if (e.kind == iostat::Ev::kPfsServer) {
        EXPECT_STREQ(e.detail, "w:storm");
        ++tagged;
      }
  EXPECT_GT(tagged, 0u);

  // Critical-path analysis keys server rows by (server, tenant) and the
  // pretty printer (ncstat --critpath) names the tenant.
  const iostat::CritPath cp = iostat::AnalyzeCritPath(snap);
  ASSERT_EQ(cp.ops.size(), 1u);
  ASSERT_FALSE(cp.ops[0].servers.empty());
  for (const auto& seg : cp.ops[0].servers) EXPECT_EQ(seg.tenant, "storm");
  const std::string pretty = iostat::PrettyPrintCritPath(cp);
  EXPECT_NE(pretty.find("tenant storm"), std::string::npos);
}

TEST_F(QosTraceTest, DefaultTenantKeepsLegacyEventDetails) {
  pfs::FileSystem fs;
  simmpi::Run(1, [&](Comm& c) {
    auto f = mpiio::File::Open(c, fs, "d.dat", mpiio::kCreate | mpiio::kRdWr,
                               simmpi::NullInfo())
                 .value();
    PNC_IOSTAT_BIND_RANK(c.rank());
    std::vector<std::byte> b(4096, std::byte{1});
    ASSERT_TRUE(f.WriteAt(0, b.data(), b.size(), simmpi::ByteType()).ok());
    ASSERT_TRUE(f.Close().ok());
  });
  const auto snap = iostat::FlightRecorder::Get().Collect();
  std::size_t seen = 0;
  for (const auto& ev : snap)
    for (const auto& e : ev)
      if (e.kind == iostat::Ev::kPfsServer && e.detail[0] == 'w') {
        EXPECT_STREQ(e.detail, "w");  // exact legacy string, no suffix
        ++seen;
      }
  EXPECT_GT(seen, 0u);
}

}  // namespace
