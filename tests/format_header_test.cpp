// Tests for the netCDF classic header: grammar golden bytes, round trips,
// layout rules (Figure 1), validation, and randomized property checks.
#include "format/header.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ncformat {
namespace {

Header SampleHeader() {
  Header h;
  h.version = 2;
  h.dims = {{"time", kUnlimitedLen}, {"level", 4}, {"lat", 8}, {"lon", 10}};
  h.gatts.push_back(Attr::Text("title", "sample dataset"));
  const double range[] = {-100.0, 100.0};
  h.gatts.push_back(
      Attr::Numeric<double>("valid_range", NcType::kDouble, range));

  Var fixed;
  fixed.name = "elevation";
  fixed.type = NcType::kFloat;
  fixed.dimids = {2, 3};
  fixed.attrs.push_back(Attr::Text("units", "m"));
  h.vars.push_back(fixed);

  Var rec1;
  rec1.name = "tt";
  rec1.type = NcType::kDouble;
  rec1.dimids = {0, 1, 2, 3};
  h.vars.push_back(rec1);

  Var rec2;
  rec2.name = "count";
  rec2.type = NcType::kShort;
  rec2.dimids = {0, 2};
  h.vars.push_back(rec2);
  return h;
}

TEST(HeaderCodec, MagicBytes) {
  Header h;
  h.version = 1;
  ASSERT_TRUE(h.ComputeLayout().ok());
  std::vector<std::byte> bytes;
  h.Encode(bytes);
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(bytes[0], std::byte{'C'});
  EXPECT_EQ(bytes[1], std::byte{'D'});
  EXPECT_EQ(bytes[2], std::byte{'F'});
  EXPECT_EQ(bytes[3], std::byte{1});
}

TEST(HeaderCodec, EmptyHeaderRoundTrip) {
  Header h;
  ASSERT_TRUE(h.ComputeLayout().ok());
  std::vector<std::byte> bytes;
  h.Encode(bytes);
  auto back = Header::Decode(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), h);
}

TEST(HeaderCodec, FullRoundTrip) {
  Header h = SampleHeader();
  h.numrecs = 13;
  ASSERT_TRUE(h.ComputeLayout().ok());
  std::vector<std::byte> bytes;
  h.Encode(bytes);
  EXPECT_EQ(bytes.size(), h.EncodedSize());
  auto back = Header::Decode(bytes);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(back.value(), h);
  EXPECT_EQ(back.value().numrecs, 13u);
  EXPECT_EQ(back.value().recsize(), h.recsize());
  EXPECT_EQ(back.value().data_begin(), h.data_begin());
}

TEST(HeaderCodec, Cdf1RoundTrip) {
  Header h = SampleHeader();
  h.version = 1;
  ASSERT_TRUE(h.ComputeLayout().ok());
  std::vector<std::byte> bytes;
  h.Encode(bytes);
  auto back = Header::Decode(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().version, 1);
  EXPECT_EQ(back.value(), h);
}

TEST(HeaderCodec, RejectsGarbage) {
  std::vector<std::byte> junk(64, std::byte{0x5A});
  EXPECT_FALSE(Header::Decode(junk).ok());
}

TEST(HeaderCodec, ReportsTruncation) {
  Header h = SampleHeader();
  ASSERT_TRUE(h.ComputeLayout().ok());
  std::vector<std::byte> bytes;
  h.Encode(bytes);
  auto r = Header::Decode(pnc::ConstByteSpan(bytes.data(), bytes.size() / 2));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), pnc::Err::kTrunc);
}

TEST(Layout, FixedVarsContiguousInOrder) {
  Header h;
  h.dims = {{"x", 10}, {"y", 3}};
  h.vars.resize(3);
  h.vars[0] = {"a", {0}, {}, NcType::kInt, 0, 0};       // 40 bytes
  h.vars[1] = {"b", {1}, {}, NcType::kShort, 0, 0};     // 6 -> padded 8
  h.vars[2] = {"c", {0, 1}, {}, NcType::kDouble, 0, 0}; // 240
  ASSERT_TRUE(h.ComputeLayout().ok());
  EXPECT_EQ(h.vars[0].begin, h.data_begin());
  EXPECT_EQ(h.vars[0].vsize, 40u);
  EXPECT_EQ(h.vars[1].begin, h.vars[0].begin + 40);
  EXPECT_EQ(h.vars[1].vsize, 8u);  // 6 rounded up to 4-byte boundary
  EXPECT_EQ(h.vars[2].begin, h.vars[1].begin + 8);
}

TEST(Layout, RecordVarsInterleaved) {
  Header h;
  h.dims = {{"t", kUnlimitedLen}, {"x", 5}};
  h.vars.resize(3);
  h.vars[0] = {"fixed", {1}, {}, NcType::kInt, 0, 0};
  h.vars[1] = {"r1", {0, 1}, {}, NcType::kFloat, 0, 0};  // 20 per record
  h.vars[2] = {"r2", {0}, {}, NcType::kDouble, 0, 0};    // 8 per record
  ASSERT_TRUE(h.ComputeLayout().ok());
  EXPECT_EQ(h.vars[1].begin, h.vars[0].begin + h.vars[0].vsize);
  EXPECT_EQ(h.vars[2].begin, h.vars[1].begin + 20);
  EXPECT_EQ(h.recsize(), 28u);
}

TEST(Layout, SingleRecordVarHasNoInterRecordPadding) {
  Header h;
  h.dims = {{"t", kUnlimitedLen}, {"x", 3}};
  h.vars.resize(1);
  h.vars[0] = {"r", {0, 1}, {}, NcType::kShort, 0, 0};  // 6 bytes per record
  ASSERT_TRUE(h.ComputeLayout().ok());
  EXPECT_EQ(h.vars[0].vsize, 8u);   // vsize field is padded
  EXPECT_EQ(h.recsize(), 6u);       // but records pack tightly
}

TEST(Layout, ScalarVariable) {
  Header h;
  h.vars.resize(1);
  h.vars[0] = {"s", {}, {}, NcType::kDouble, 0, 0};
  ASSERT_TRUE(h.ComputeLayout().ok());
  EXPECT_EQ(h.vars[0].vsize, 8u);
  EXPECT_EQ(h.FileSize(), h.data_begin() + 8);
}

TEST(Layout, MinDataBeginReservesHeaderSpace) {
  Header h = SampleHeader();
  ASSERT_TRUE(h.ComputeLayout(4096).ok());
  EXPECT_EQ(h.data_begin(), 4096u);
  EXPECT_GE(h.vars[0].begin, 4096u);
}

TEST(Layout, Cdf1OffsetOverflowDetected) {
  Header h;
  h.version = 1;
  h.dims = {{"x", 600ull << 20}};  // 600M ints = 2.4 GB
  h.vars.resize(2);
  h.vars[0] = {"a", {0}, {}, NcType::kInt, 0, 0};
  h.vars[1] = {"b", {0}, {}, NcType::kInt, 0, 0};
  EXPECT_EQ(h.ComputeLayout().code(), pnc::Err::kVarSize);
  h.version = 2;
  EXPECT_TRUE(h.ComputeLayout().ok());
}

TEST(Layout, FileSizeWithRecords) {
  Header h;
  h.dims = {{"t", kUnlimitedLen}, {"x", 5}};
  h.vars.resize(2);
  h.vars[0] = {"r1", {0, 1}, {}, NcType::kFloat, 0, 0};
  h.vars[1] = {"r2", {0, 1}, {}, NcType::kFloat, 0, 0};
  h.numrecs = 7;
  ASSERT_TRUE(h.ComputeLayout().ok());
  EXPECT_EQ(h.FileSize(), h.data_begin() + 7 * h.recsize());
}

TEST(Validate, RejectsBadNames) {
  Header h;
  h.dims = {{"", 3}};
  EXPECT_EQ(h.Validate().code(), pnc::Err::kBadName);
  h.dims = {{"/slash", 3}};
  EXPECT_EQ(h.Validate().code(), pnc::Err::kBadName);
  h.dims = {{" space", 3}};
  EXPECT_EQ(h.Validate().code(), pnc::Err::kBadName);
  h.dims = {{"_ok_name", 3}};
  EXPECT_TRUE(h.Validate().ok());
}

TEST(Validate, RejectsDuplicates) {
  Header h;
  h.dims = {{"x", 1}, {"x", 2}};
  EXPECT_EQ(h.Validate().code(), pnc::Err::kNameInUse);
}

TEST(Validate, RejectsTwoUnlimitedDims) {
  Header h;
  h.dims = {{"t", kUnlimitedLen}, {"u", kUnlimitedLen}};
  EXPECT_EQ(h.Validate().code(), pnc::Err::kUnlimit);
}

TEST(Validate, UnlimitedMustBeMostSignificant) {
  Header h;
  h.dims = {{"t", kUnlimitedLen}, {"x", 4}};
  h.vars.resize(1);
  h.vars[0] = {"v", {1, 0}, {}, NcType::kInt, 0, 0};
  EXPECT_EQ(h.Validate().code(), pnc::Err::kUnlimPos);
}

TEST(Validate, RejectsBadDimIds) {
  Header h;
  h.dims = {{"x", 4}};
  h.vars.resize(1);
  h.vars[0] = {"v", {1}, {}, NcType::kInt, 0, 0};
  EXPECT_EQ(h.Validate().code(), pnc::Err::kBadDim);
}

TEST(Attrs, TextHelperRoundTrip) {
  auto a = Attr::Text("history", "created by test");
  EXPECT_EQ(a.type, NcType::kChar);
  EXPECT_EQ(a.nelems(), 15u);
  EXPECT_EQ(a.AsText(), "created by test");
}

TEST(VarQueries, ShapeAndInstanceElems) {
  Header h = SampleHeader();
  h.numrecs = 6;
  ASSERT_TRUE(h.ComputeLayout().ok());
  const int tt = h.FindVar("tt");
  ASSERT_GE(tt, 0);
  EXPECT_TRUE(h.IsRecordVar(tt));
  EXPECT_EQ(h.VarShape(tt), (std::vector<std::uint64_t>{6, 4, 8, 10}));
  EXPECT_EQ(h.VarInstanceElems(tt), 4u * 8 * 10);
  const int elev = h.FindVar("elevation");
  EXPECT_FALSE(h.IsRecordVar(elev));
  EXPECT_EQ(h.VarShape(elev), (std::vector<std::uint64_t>{8, 10}));
}

// Property test: random headers encode/decode to equality.
class HeaderFuzzP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeaderFuzzP, RandomHeaderRoundTrip) {
  pnc::SplitMix64 rng(GetParam());
  Header h;
  h.version = rng.Below(2) ? 2 : 1;
  const auto ndims = 1 + rng.Below(6);
  const bool unlimited = rng.Below(2) == 1;
  for (std::uint64_t d = 0; d < ndims; ++d) {
    h.dims.push_back({"dim" + std::to_string(d),
                      (unlimited && d == 0) ? kUnlimitedLen : 1 + rng.Below(16)});
  }
  const auto ngatts = rng.Below(4);
  for (std::uint64_t a = 0; a < ngatts; ++a) {
    if (rng.Below(2)) {
      h.gatts.push_back(Attr::Text("gatt" + std::to_string(a), "v"));
    } else {
      std::vector<std::int32_t> vals(1 + rng.Below(5));
      for (auto& v : vals) v = static_cast<std::int32_t>(rng.Next());
      h.gatts.push_back(Attr::Numeric<std::int32_t>(
          "gatt" + std::to_string(a), NcType::kInt, vals));
    }
  }
  const auto nvars = rng.Below(6);
  for (std::uint64_t v = 0; v < nvars; ++v) {
    Var var;
    var.name = "var" + std::to_string(v);
    var.type = static_cast<NcType>(1 + rng.Below(6));
    const auto vd = rng.Below(ndims + 1);
    std::vector<std::int32_t> pool;
    for (std::uint64_t d = (unlimited && rng.Below(2) == 0) ? 1 : 0;
         d < ndims && pool.size() < vd; ++d)
      pool.push_back(static_cast<std::int32_t>(d));
    var.dimids = pool;
    h.vars.push_back(var);
  }
  h.numrecs = rng.Below(10);
  ASSERT_TRUE(h.ComputeLayout().ok());
  std::vector<std::byte> bytes;
  h.Encode(bytes);
  EXPECT_EQ(bytes.size(), h.EncodedSize());
  auto back = Header::Decode(bytes);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(back.value(), h);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeaderFuzzP,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace ncformat
