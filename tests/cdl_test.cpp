// Tests for the CDL tools: dump formatting, parser coverage, error handling,
// and the ncgen(ncdump(f)) == f round-trip property.
#include "tools/cdl.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.hpp"

namespace nctools {
namespace {

using ncformat::NcType;

netcdf::Dataset MakeSample(pfs::FileSystem& fs) {
  auto ds = netcdf::Dataset::Create(fs, "sample.nc").value();
  const int t = ds.DefDim("time", netcdf::kUnlimited).value();
  const int lat = ds.DefDim("lat", 2).value();
  const int lon = ds.DefDim("lon", 3).value();
  const int temp = ds.DefVar("temp", NcType::kFloat, {t, lat, lon}).value();
  const int elev = ds.DefVar("elev", NcType::kShort, {lat, lon}).value();
  const int tag = ds.DefVar("tag", NcType::kChar, {lon}).value();
  EXPECT_TRUE(ds.PutAttText(netcdf::kGlobal, "title", "cdl test").ok());
  EXPECT_TRUE(ds.PutAttText(temp, "units", "K").ok());
  const double vr[] = {-50.0, 50.0};
  EXPECT_TRUE(
      ds.PutAttValues<double>(temp, "valid_range", NcType::kDouble, vr).ok());
  const std::int32_t missing[] = {-999};
  EXPECT_TRUE(
      ds.PutAttValues<std::int32_t>(elev, "missing", NcType::kInt, missing)
          .ok());
  EXPECT_TRUE(ds.EndDef().ok());

  std::vector<float> tv(2 * 2 * 3);
  std::iota(tv.begin(), tv.end(), 1.5f);
  EXPECT_TRUE(ds.PutVar<float>(temp, tv).ok());
  std::vector<std::int16_t> ev{10, 20, 30, 40, 50, 60};
  EXPECT_TRUE(ds.PutVar<std::int16_t>(elev, ev).ok());
  const std::string s = "abc";
  EXPECT_TRUE(ds.PutVar<char>(tag, {s.data(), 3}).ok());
  return ds;
}

TEST(Dump, HeaderFormatting) {
  pfs::FileSystem fs;
  auto ds = MakeSample(fs);
  auto cdl = DumpCdl(ds, "sample", /*with_data=*/false).value();
  EXPECT_NE(cdl.find("netcdf sample {"), std::string::npos);
  EXPECT_NE(cdl.find("time = UNLIMITED ; // (2 currently)"),
            std::string::npos);
  EXPECT_NE(cdl.find("lat = 2 ;"), std::string::npos);
  EXPECT_NE(cdl.find("float temp(time, lat, lon) ;"), std::string::npos);
  EXPECT_NE(cdl.find("temp:units = \"K\" ;"), std::string::npos);
  EXPECT_NE(cdl.find(":title = \"cdl test\" ;"), std::string::npos);
  EXPECT_EQ(cdl.find("data:"), std::string::npos);
}

TEST(Dump, DataSectionTyped) {
  pfs::FileSystem fs;
  auto ds = MakeSample(fs);
  auto cdl = DumpCdl(ds, "sample", /*with_data=*/true).value();
  EXPECT_NE(cdl.find("data:"), std::string::npos);
  EXPECT_NE(cdl.find("1.5f"), std::string::npos);   // float suffix
  EXPECT_NE(cdl.find("10s"), std::string::npos);    // short suffix
  EXPECT_NE(cdl.find("tag = \"abc\""), std::string::npos);
}

TEST(Generate, SchemaAndData) {
  const char* cdl = R"(
netcdf fromcdl {
dimensions:
	time = UNLIMITED ; // (2 currently)
	x = 3 ;
variables:
	double series(time, x) ;
		series:units = "m" ;
		series:scale = 2.5, 3.5 ;
	int counts(x) ;
	char label(x) ;
	// a comment to skip
	:history = "made by ncgen" ;
data:

 series = 1., 2., 3., 4., 5., 6. ;

 counts = 7, 8, 9 ;

 label = "hi!" ;
}
)";
  pfs::FileSystem fs;
  ASSERT_TRUE(GenerateFromCdl(fs, "g.nc", cdl).ok());

  auto ds = netcdf::Dataset::Open(fs, "g.nc", false).value();
  EXPECT_EQ(ds.ndims(), 2);
  EXPECT_EQ(ds.numrecs(), 2u);
  EXPECT_EQ(ds.GetAtt(netcdf::kGlobal, "history").value().AsText(),
            "made by ncgen");
  const int series = ds.VarId("series").value();
  EXPECT_EQ(ds.GetAtt(series, "units").value().AsText(), "m");
  auto scale = ds.GetAtt(series, "scale").value();
  EXPECT_EQ(scale.type, NcType::kDouble);
  EXPECT_EQ(scale.nelems(), 2u);
  std::vector<double> sv(6);
  ASSERT_TRUE(ds.GetVar<double>(series, sv).ok());
  EXPECT_EQ(sv, (std::vector<double>{1, 2, 3, 4, 5, 6}));
  std::vector<std::int32_t> cv(3);
  ASSERT_TRUE(ds.GetVar<std::int32_t>(ds.VarId("counts").value(), cv).ok());
  EXPECT_EQ(cv, (std::vector<std::int32_t>{7, 8, 9}));
  std::vector<char> lv(3);
  ASSERT_TRUE(ds.GetVar<char>(ds.VarId("label").value(), lv).ok());
  EXPECT_EQ(std::string(lv.data(), 3), "hi!");
}

TEST(Generate, TypeSuffixesInferAttrTypes) {
  const char* cdl = R"(
netcdf types {
dimensions:
	x = 1 ;
variables:
	byte b(x) ;
		b:bytes = 1b, 2b ;
		b:shorts = 1s ;
		b:floats = 1.5f ;
		b:ints = 42 ;
		b:doubles = 2.5 ;
}
)";
  pfs::FileSystem fs;
  ASSERT_TRUE(GenerateFromCdl(fs, "t.nc", cdl).ok());
  auto ds = netcdf::Dataset::Open(fs, "t.nc", false).value();
  const int b = ds.VarId("b").value();
  EXPECT_EQ(ds.GetAtt(b, "bytes").value().type, NcType::kByte);
  EXPECT_EQ(ds.GetAtt(b, "shorts").value().type, NcType::kShort);
  EXPECT_EQ(ds.GetAtt(b, "floats").value().type, NcType::kFloat);
  EXPECT_EQ(ds.GetAtt(b, "ints").value().type, NcType::kInt);
  EXPECT_EQ(ds.GetAtt(b, "doubles").value().type, NcType::kDouble);
}

TEST(Generate, ParseErrorsReported) {
  pfs::FileSystem fs;
  EXPECT_FALSE(GenerateFromCdl(fs, "bad1.nc", "nonsense { }").ok());
  EXPECT_FALSE(GenerateFromCdl(fs, "bad2.nc", "netcdf x {").ok());
  EXPECT_FALSE(
      GenerateFromCdl(fs, "bad3.nc",
                      "netcdf x { variables: double v(missing) ; }")
          .ok());
}

TEST(RoundTrip, GenerateDumpGenerate) {
  pfs::FileSystem fs;
  auto ds = MakeSample(fs);
  auto cdl1 = DumpCdl(ds, "sample", true).value();
  ASSERT_TRUE(GenerateFromCdl(fs, "copy.nc", cdl1).ok());
  auto copy = netcdf::Dataset::Open(fs, "copy.nc", false).value();
  auto cdl2 = DumpCdl(copy, "sample", true).value();
  EXPECT_EQ(cdl1, cdl2);
  // And the headers agree structurally (begins may differ only if layout
  // rules differed — they must not).
  EXPECT_EQ(copy.header(), ds.header());
}

class RoundTripFuzzP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripFuzzP, RandomDatasetsSurviveTheLoop) {
  pnc::SplitMix64 rng(GetParam());
  pfs::FileSystem fs;
  auto ds = netcdf::Dataset::Create(fs, "fuzz.nc").value();
  const int ndims = 1 + static_cast<int>(rng.Below(3));
  std::vector<std::int32_t> dimids;
  for (int d = 0; d < ndims; ++d)
    dimids.push_back(
        ds.DefDim("d" + std::to_string(d), 1 + rng.Below(4)).value());
  const int nvars = 1 + static_cast<int>(rng.Below(4));
  for (int v = 0; v < nvars; ++v) {
    const auto type = static_cast<NcType>(1 + rng.Below(6));
    std::vector<std::int32_t> vd(dimids.begin(),
                                 dimids.begin() + 1 + rng.Below(ndims));
    (void)ds.DefVar("v" + std::to_string(v), type, vd);
  }
  ASSERT_TRUE(ds.EndDef().ok());
  for (int v = 0; v < nvars; ++v) {
    const auto& var = ds.header().vars[static_cast<std::size_t>(v)];
    const std::uint64_t n = pnc::ShapeProduct(ds.header().VarShape(v));
    if (var.type == NcType::kChar) {
      std::vector<char> text(n);
      for (auto& c : text) c = static_cast<char>('a' + rng.Below(26));
      ASSERT_TRUE(ds.PutVar<char>(v, text).ok());
    } else {
      std::vector<double> vals(n);
      for (auto& x : vals) x = static_cast<double>(rng.Below(100));
      ASSERT_TRUE(ds.PutVar<double>(v, vals).ok());
    }
  }
  auto cdl1 = DumpCdl(ds, "fuzz", true).value();
  ASSERT_TRUE(GenerateFromCdl(fs, "fuzz2.nc", cdl1).ok()) << cdl1;
  auto copy = netcdf::Dataset::Open(fs, "fuzz2.nc", false).value();
  EXPECT_EQ(DumpCdl(copy, "fuzz", true).value(), cdl1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripFuzzP,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace nctools
