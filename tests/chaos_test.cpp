// Rank-fault chaos suite: deterministic rank crashes, stragglers, and
// message drops injected into the thread-backed MPI, and the collective
// failure-agreement machinery that must keep every survivor consistent.
//
// The contract under test (DESIGN.md §6):
//   * a scripted crash kills exactly the scripted rank, observably — peers
//     never hang on it (fault-tolerant calls see the death; non-FT waits
//     abort deterministically instead of stalling the watchdog interval);
//   * every fault-tolerant agreement round delivers a bitwise-identical
//     outcome on every survivor, including the survivor list itself;
//   * collective I/O with a dead participant completes on the survivors
//     with aggregator duties deterministically reassigned, lands the
//     survivors' data, and returns kRankFailed on every survivor;
//   * an interrupted dataset stays ncverify-legal, and survivors can close
//     it and reopen on a shrunken communicator.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "iostat/events.hpp"
#include "iostat/iostat.hpp"
#include "mpiio/file.hpp"
#include "pnetcdf/dataset.hpp"
#include "simmpi/runtime.hpp"
#include "test_support.hpp"
#include "tools/verify.hpp"

namespace {

using iostat::Ev;
using iostat::Event;
using iostat::FlightRecorder;
using iostat::Registry;
using ncformat::NcType;
using simmpi::AgreeOutcome;
using simmpi::Comm;
using simmpi::RankFaultPolicy;
using simmpi::RunResult;

RankFaultPolicy CrashAtOp(int rank, std::uint64_t op) {
  RankFaultPolicy p;
  p.crashes.push_back({rank, op, -1.0});
  return p;
}

RankFaultPolicy CrashAtTime(int rank, double t_ns) {
  RankFaultPolicy p;
  p.crashes.push_back({rank, RankFaultPolicy::kNever, t_ns});
  return p;
}

// ------------------------------------------------------------ injection

TEST(Chaos, CrashByOpIndexKillsExactlyThatRank) {
  std::vector<AgreeOutcome> outcome(3);
  const RunResult run = simmpi::Run(
      3,
      [&](Comm& c) { outcome[static_cast<std::size_t>(c.rank())] =
                         c.AgreeFT(10 * c.rank() + 5); },
      simmpi::CostModel{}, CrashAtOp(1, 0));

  ASSERT_EQ(run.crashed_ranks, (std::vector<int>{1}));
  EXPECT_EQ(run.fault_counters.crashes, 1u);
  EXPECT_GE(run.fault_counters.agreements, 1u);
  EXPECT_GE(run.fault_counters.agreements_failed, 1u);
  for (int r : {0, 2}) {
    SCOPED_TRACE("rank " + std::to_string(r));
    const AgreeOutcome& o = outcome[static_cast<std::size_t>(r)];
    EXPECT_TRUE(o.any_dead);
    EXPECT_EQ(o.alive, (std::vector<int>{0, 2}));
    EXPECT_EQ(o.min_value, 5);  // min over the live contributions
  }
}

TEST(Chaos, CrashByVirtualTimeFiresAtFirstOpPastDeadline) {
  std::vector<std::byte> got;
  bool recv_ok = true;
  const RunResult run = simmpi::Run(
      2,
      [&](Comm& c) {
        if (c.rank() == 1) {
          c.clock().Advance(50'000.0);  // cross the deadline...
          const std::byte b{0x11};
          c.Send(0, 1, pnc::ConstByteSpan(&b, 1));  // ...die at this op
          ADD_FAILURE() << "rank 1 survived its scripted crash";
        } else {
          recv_ok = c.RecvFT(1, 1, got);
        }
      },
      simmpi::CostModel{}, CrashAtTime(1, 10'000.0));

  ASSERT_EQ(run.crashed_ranks, (std::vector<int>{1}));
  EXPECT_FALSE(recv_ok);  // death observed, not hung
  EXPECT_TRUE(got.empty());
}

TEST(Chaos, StragglerMultipliesMessageCost) {
  auto exchange = [](Comm& c) {
    std::vector<std::byte> blk(1 << 12, std::byte{0x5A});
    if (c.rank() == 1) {
      for (int i = 0; i < 4; ++i) c.Send(0, i, blk);
    } else {
      for (int i = 0; i < 4; ++i) (void)c.Recv(1, i);
    }
  };
  const RunResult base = simmpi::Run(2, exchange);

  RankFaultPolicy p;
  p.stragglers.push_back({1, 16.0});
  const RunResult slow = simmpi::Run(2, exchange, simmpi::CostModel{}, p);

  EXPECT_EQ(slow.fault_counters.straggled_sends, 4u);
  EXPECT_TRUE(slow.crashed_ranks.empty());
  // Purely virtual: the straggler's messages arrive later, so the
  // receiver's completion time grows with the delay factor.
  EXPECT_GT(slow.max_time_ns, base.max_time_ns);
}

TEST(Chaos, ScriptedDropVanishesInTransit) {
  std::vector<std::byte> got;
  RankFaultPolicy p;
  p.drops.push_back({0, 0});  // rank 0's first send vanishes
  const RunResult run = simmpi::Run(
      2,
      [&](Comm& c) {
        if (c.rank() == 0) {
          const std::byte a{0x01}, b{0x02};
          c.Send(1, 1, pnc::ConstByteSpan(&a, 1));  // dropped
          c.Send(1, 2, pnc::ConstByteSpan(&b, 1));  // delivered
        } else {
          got = c.Recv(0, 2);
        }
      },
      simmpi::CostModel{}, p);

  EXPECT_EQ(run.fault_counters.dropped_messages, 1u);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], std::byte{0x02});
}

TEST(Chaos, SeededDropsAreExactRunToRun) {
  auto spray = [](Comm& c) {
    if (c.rank() != 0) return;  // receiver never waits: drops cannot hang it
    const std::byte b{0x7E};
    for (int i = 0; i < 64; ++i) c.Send(1, i, pnc::ConstByteSpan(&b, 1));
  };
  RankFaultPolicy p;
  p.drop_prob = 0.25;
  const RunResult a = simmpi::Run(2, spray, simmpi::CostModel{}, p);
  const RunResult b = simmpi::Run(2, spray, simmpi::CostModel{}, p);

  EXPECT_GT(a.fault_counters.dropped_messages, 0u);
  EXPECT_LT(a.fault_counters.dropped_messages, 64u);
  // Drops derive from (seed, rank, send index), never from interleaving.
  EXPECT_EQ(a.fault_counters.dropped_messages,
            b.fault_counters.dropped_messages);

  RankFaultPolicy q = p;
  q.seed ^= 0xBEEF;
  const RunResult c = simmpi::Run(2, spray, simmpi::CostModel{}, q);
  EXPECT_NE(a.fault_counters.dropped_messages,
            c.fault_counters.dropped_messages);
}

// ------------------------------------------------------------ agreement

TEST(Chaos, SurvivorsShrinkToLiveSubcommunicator) {
  std::vector<int> live_rank(4, -1), live_size(4, -1), bcast_val(4, -1);
  const RunResult run = simmpi::Run(
      4,
      [&](Comm& c) {
        const AgreeOutcome o = c.AgreeFT(c.rank());
        if (c.RankDead(2) && !o.any_dead)
          ADD_FAILURE() << "death not reflected in the outcome";
        if (!o.any_dead) return;
        Comm live = c.LiveSubsetFT(o);
        live_rank[static_cast<std::size_t>(c.rank())] = live.rank();
        live_size[static_cast<std::size_t>(c.rank())] = live.size();
        // The shrunken communicator is fully functional: a root broadcast
        // and a fresh agreement (now with no dead members) both work.
        int v = live.rank() == 0 ? 42 : 0;
        live.BcastValue(v, 0);
        bcast_val[static_cast<std::size_t>(c.rank())] = v;
        const AgreeOutcome o2 = live.AgreeFT(live.rank() + 7);
        EXPECT_FALSE(o2.any_dead);
        EXPECT_EQ(o2.min_value, 7);
        EXPECT_EQ(o2.alive, (std::vector<int>{0, 1, 2}));
      },
      simmpi::CostModel{}, CrashAtOp(2, 0));

  ASSERT_EQ(run.crashed_ranks, (std::vector<int>{2}));
  EXPECT_EQ(live_rank[0], 0);
  EXPECT_EQ(live_rank[1], 1);
  EXPECT_EQ(live_rank[3], 2);  // renumbered past the dead rank
  for (int r : {0, 1, 3}) {
    EXPECT_EQ(live_size[static_cast<std::size_t>(r)], 3);
    EXPECT_EQ(bcast_val[static_cast<std::size_t>(r)], 42);
  }
}

// ------------------------------------------------- collective I/O (mpiio)

// Rank 0 is the only aggregator (cb_nodes=1) and dies at the entry of the
// collective: its duties must fall to a survivor deterministically, the
// survivors' data must land, and every survivor must return kRankFailed.
TEST(Chaos, DeadAggregatorDutiesReassignedSurvivorDataLands) {
  constexpr std::uint64_t kBlock = 1 << 10;
  pfs::FileSystem fs;
  std::vector<int> wr_status(4, 1);
  const RunResult run = simmpi::Run(
      4,
      [&](Comm& c) {
        simmpi::Info info;
        info.Set("cb_nodes", "1");
        auto f = mpiio::File::Open(c, fs, "agg.dat",
                                   mpiio::kCreate | mpiio::kRdWr, info);
        ASSERT_TRUE(f.ok()) << f.status().message();
        // Everyone crosses the crash deadline now, so rank 0's next op —
        // the entry agreement of the collective — is its point of death.
        c.clock().AdvanceTo(2e12);
        std::vector<std::byte> mine(
            kBlock, std::byte{static_cast<unsigned char>(0x40 + c.rank())});
        const pnc::Status st = f.value().WriteAtAll(
            static_cast<std::uint64_t>(c.rank()) * kBlock, mine.data(),
            kBlock, simmpi::ByteType());
        wr_status[static_cast<std::size_t>(c.rank())] = st.raw();
        (void)f.value().Close();
      },
      simmpi::CostModel{}, CrashAtTime(0, 1e12));

  ASSERT_EQ(run.crashed_ranks, (std::vector<int>{0}));
  for (int r = 1; r < 4; ++r) {
    SCOPED_TRACE("rank " + std::to_string(r));
    EXPECT_EQ(wr_status[static_cast<std::size_t>(r)],
              static_cast<int>(pnc::Err::kRankFailed));
  }
  // The surviving ranks' blocks made it to storage via the fallback
  // aggregator even though the scripted aggregator never showed up.
  for (int r = 1; r < 4; ++r) {
    SCOPED_TRACE("rank " + std::to_string(r));
    const std::uint64_t off = static_cast<std::uint64_t>(r) * kBlock;
    EXPECT_EQ(pnc_test::ByteAt(fs, "agg.dat", off),
              std::byte{static_cast<unsigned char>(0x40 + r)});
    EXPECT_EQ(pnc_test::ByteAt(fs, "agg.dat", off + kBlock - 1),
              std::byte{static_cast<unsigned char>(0x40 + r)});
  }
}

// ------------------------------------------------------ pnetcdf datasets

/// One full dataset lifecycle; each rank appends the raw status of every
/// stage to its own log so the sweep can check survivor consistency.
void DatasetLifecycle(Comm& c, pfs::FileSystem& fs,
                      std::vector<std::vector<int>>& logs) {
  auto& log = logs[static_cast<std::size_t>(c.rank())];
  auto r = pnetcdf::Dataset::Create(c, fs, "chaos.nc", simmpi::NullInfo());
  log.push_back(r.status().raw());
  if (!r.ok()) return;
  auto ds = std::move(r).value();
  const auto time = ds.DefDim("time", pnetcdf::kUnlimited);
  const auto x = ds.DefDim("x", 8);
  if (!time.ok() || !x.ok()) return;
  const auto v = ds.DefVar("r", NcType::kInt, {time.value(), x.value()});
  if (!v.ok()) return;
  log.push_back(ds.EndDef().raw());
  const std::int32_t base = static_cast<std::int32_t>(10 * c.rank());
  const std::vector<std::int32_t> mine = {base, base + 1};
  const std::uint64_t st[] = {0, static_cast<std::uint64_t>(2 * c.rank())};
  const std::uint64_t ct[] = {1, 2};
  log.push_back(ds.PutVaraAll<std::int32_t>(v.value(), st, ct, mine).raw());
  log.push_back(ds.Close().raw());
}

// Crash-point sweep over the whole lifecycle: for every op index at which
// rank 1 can die, the run must terminate (no hang), the survivors must
// log identical statuses stage for stage, and whatever image is left on
// disk must be legal to ncverify. The sweep ends when the op index
// outlives the program (no crash fired).
TEST(Chaos, LifecycleCrashOpSweepSurvivorsConsistentFileLegal) {
  bool swept_past_program = false;
  for (std::uint64_t op = 0; op < 4096; ++op) {
    SCOPED_TRACE("crash at op " + std::to_string(op));
    pfs::FileSystem fs;
    std::vector<std::vector<int>> logs(4);
    const RunResult run = simmpi::Run(
        4, [&](Comm& c) { DatasetLifecycle(c, fs, logs); },
        simmpi::CostModel{}, CrashAtOp(1, op));

    if (run.crashed_ranks.empty()) {
      // The whole lifecycle ran in fewer than `op` ops: sweep complete.
      for (int r = 1; r < 4; ++r) EXPECT_EQ(logs[0], logs[static_cast<std::size_t>(r)]);
      for (int v : logs[0]) EXPECT_EQ(v, 0);
      swept_past_program = true;
      break;
    }
    ASSERT_EQ(run.crashed_ranks, (std::vector<int>{1}));
    // Survivors agree on every stage's outcome.
    EXPECT_EQ(logs[0], logs[2]);
    EXPECT_EQ(logs[0], logs[3]);
    // Whatever the interruption left behind is legal: either no file yet,
    // or an image ncverify accepts (possibly never-committed, never torn
    // into an unrecoverable hybrid of two commits).
    if (fs.Exists("chaos.nc")) {
      auto vr = nctools::VerifyFile(fs, "chaos.nc", {.repair = true});
      ASSERT_TRUE(vr.ok()) << vr.status().message();
      if (vr.value().state == ncformat::FileState::kCorrupt) {
        // Never committed (the crash predates the first journal commit):
        // the open path must reject it cleanly, not misread it.
        EXPECT_FALSE(netcdf::Dataset::Open(fs, "chaos.nc", false).ok());
      }
    }
  }
  EXPECT_TRUE(swept_past_program) << "sweep never outlived the program";
}

// Survivors of a mid-write death close the degraded dataset, shrink the
// communicator through the public agreement API, and reopen the file on
// the live subset — reading back everything the fault-free run committed.
TEST(Chaos, SurvivorsCloseShrinkReopenAndReadBack) {
  pfs::FileSystem fs;
  simmpi::Run(4, [&](Comm& c) {  // committed state, fault-free
    auto ds =
        pnetcdf::Dataset::Create(c, fs, "s.nc", simmpi::NullInfo()).value();
    const int time = ds.DefDim("time", pnetcdf::kUnlimited).value();
    const int x = ds.DefDim("x", 8).value();
    const int v = ds.DefVar("r", NcType::kInt, {time, x}).value();
    ASSERT_TRUE(ds.EndDef().ok());
    const std::int32_t base = static_cast<std::int32_t>(10 * c.rank());
    const std::vector<std::int32_t> mine = {base, base + 1};
    const std::uint64_t st[] = {0, static_cast<std::uint64_t>(2 * c.rank())};
    const std::uint64_t ct[] = {1, 2};
    ASSERT_TRUE(ds.PutVaraAll<std::int32_t>(v, st, ct, mine).ok());
    ASSERT_TRUE(ds.Close().ok());
  });

  std::vector<int> reopen_ok(4, -1), read_ok(4, -1);
  const RunResult run = simmpi::Run(
      4,
      [&](Comm& c) {
        auto r = pnetcdf::Dataset::Open(c, fs, "s.nc", true,
                                        simmpi::NullInfo());
        ASSERT_TRUE(r.ok()) << r.status().message();
        auto ds = std::move(r).value();
        // Rank 3 dies at its next collective entry; the survivors see a
        // kRankFailed write and a degraded dataset.
        c.clock().AdvanceTo(2e12);
        const std::int32_t base = static_cast<std::int32_t>(100 + c.rank());
        const std::vector<std::int32_t> mine = {base, base + 1};
        const std::uint64_t st[] = {1,
                                    static_cast<std::uint64_t>(2 * c.rank())};
        const std::uint64_t ct[] = {1, 2};
        const pnc::Status ws =
            ds.PutVaraAll<std::int32_t>(ds.VarId("r").value(), st, ct, mine);
        EXPECT_EQ(ws.code(), pnc::Err::kRankFailed);
        EXPECT_EQ(ds.Close().code(), pnc::Err::kRankFailed);

        // Shrink and reopen on the live subset.
        const AgreeOutcome o = c.AgreeFT(0);
        ASSERT_TRUE(o.any_dead);
        Comm live = c.LiveSubsetFT(o);
        auto r2 = pnetcdf::Dataset::Open(live, fs, "s.nc", false,
                                         simmpi::NullInfo());
        reopen_ok[static_cast<std::size_t>(c.rank())] = r2.ok() ? 1 : 0;
        if (!r2.ok()) return;
        auto ds2 = std::move(r2).value();
        // Everything the fault-free run committed is intact.
        EXPECT_EQ(ds2.numrecs(), 1u);
        std::vector<std::int32_t> got(8);
        const std::uint64_t rst[] = {0, 0};
        const std::uint64_t rct[] = {1, 8};
        const pnc::Status gs = ds2.GetVaraAll<std::int32_t>(
            ds2.VarId("r").value(), rst, rct, got);
        read_ok[static_cast<std::size_t>(c.rank())] = gs.ok() ? 1 : 0;
        for (int rr = 0; rr < 4; ++rr) {
          EXPECT_EQ(got[2 * rr], 10 * rr);
          EXPECT_EQ(got[2 * rr + 1], 10 * rr + 1);
        }
        EXPECT_TRUE(ds2.Close().ok());
      },
      simmpi::CostModel{}, CrashAtTime(3, 1e12));

  ASSERT_EQ(run.crashed_ranks, (std::vector<int>{3}));
  for (int r = 0; r < 3; ++r) {
    SCOPED_TRACE("rank " + std::to_string(r));
    EXPECT_EQ(reopen_ok[static_cast<std::size_t>(r)], 1);
    EXPECT_EQ(read_ok[static_cast<std::size_t>(r)], 1);
  }
  // The interrupted image is still legal after the failed second append.
  auto vr = nctools::VerifyFile(fs, "s.nc");
  ASSERT_TRUE(vr.ok());
  EXPECT_NE(vr.value().state, ncformat::FileState::kCorrupt);
}

// --------------------------------------------------------- observability

class ChaosTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
#if !PNC_IOSTAT_ENABLED
    GTEST_SKIP() << "instrumentation compiled out (PNC_IOSTAT=OFF)";
#endif
    Registry::Get().Reset();
    Registry::Get().SetCountersEnabled(true);
  }
  void TearDown() override { Registry::Get().Reset(); }
};

const Event* Find(const std::vector<Event>& evs, Ev kind) {
  for (const auto& e : evs)
    if (e.kind == kind) return &e;
  return nullptr;
}

// A rank_crash event's request ID resolves to the api_begin of the call
// the rank died inside — the blackbox post-mortem ncstat prints. The crash
// op index is swept forward (deterministically: op counts never vary run
// to run) until the death lands inside the collective put's request scope;
// crashes during unscoped stretches (validation agreements between API
// calls) legitimately carry req=0 and are skipped.
TEST_F(ChaosTraceTest, CrashInsidePutResolvesToOriginatingApiCall) {
  bool resolved = false;
  for (std::uint64_t op = 0; op < 4096 && !resolved; ++op) {
    SCOPED_TRACE("crash at op " + std::to_string(op));
    Registry::Get().Reset();
    Registry::Get().SetCountersEnabled(true);
    pfs::FileSystem fs;
    const RunResult run = simmpi::Run(
        4,
        [&](Comm& c) {
          auto r =
              pnetcdf::Dataset::Create(c, fs, "t.nc", simmpi::NullInfo());
          if (!r.ok()) return;
          auto ds = std::move(r).value();
          const auto x = ds.DefDim("x", 8);
          const auto v = ds.DefVar("a", NcType::kInt, {x.value()});
          if (!ds.EndDef().ok()) return;
          const std::int32_t base = static_cast<std::int32_t>(c.rank());
          const std::vector<std::int32_t> mine = {base, base + 1};
          const std::uint64_t st[] = {
              static_cast<std::uint64_t>(2 * c.rank())};
          const std::uint64_t ct[] = {2};
          (void)ds.PutVaraAll<std::int32_t>(v.value(), st, ct, mine);
          (void)ds.Close();
        },
        simmpi::CostModel{}, CrashAtOp(2, op));
    if (run.crashed_ranks.empty()) break;  // swept past the whole program
    ASSERT_EQ(run.crashed_ranks, (std::vector<int>{2}));

    const auto snap = FlightRecorder::Get().Collect();
    ASSERT_GE(snap.size(), 4u);
    const Event* crash = Find(snap[2], Ev::kRankCrash);
    ASSERT_NE(crash, nullptr) << "dying rank did not record its crash";
    if (crash->req == 0) continue;  // died between request scopes
    const Event* origin = nullptr;
    for (const Event& e : snap[2])
      if (e.kind == Ev::kApiBegin && e.req == crash->req) origin = &e;
    ASSERT_NE(origin, nullptr) << "in-flight request has no api_begin";
    if (std::string(origin->detail) != "put_vara_all:a") continue;
    // Found it: the dead rank's last in-flight request names the exact
    // API call and variable, and the survivors' failure agreements made
    // the record too.
    EXPECT_NE(Find(snap[0], Ev::kAgreement), nullptr);
    EXPECT_NE(Find(snap[3], Ev::kAgreement), nullptr);
    resolved = true;
  }
  EXPECT_TRUE(resolved)
      << "no crash op landed inside the collective put's request scope";
}

TEST_F(ChaosTraceTest, StragglerEventRecorded) {
  RankFaultPolicy p;
  p.stragglers.push_back({0, 8.0});
  const RunResult run = simmpi::Run(
      2,
      [&](Comm& c) {
        if (c.rank() == 0) {
          const std::byte b{0x22};
          c.Send(1, 4, pnc::ConstByteSpan(&b, 1));
        } else {
          (void)c.Recv(0, 4);
        }
      },
      simmpi::CostModel{}, p);
  EXPECT_EQ(run.fault_counters.straggled_sends, 1u);
  const Event* ev =
      Find(FlightRecorder::Get().CollectRank(0), Ev::kRankStraggle);
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(ev->a0, 1u);  // payload bytes
  EXPECT_EQ(ev->a1, 1u);  // destination world rank
}

TEST_F(ChaosTraceTest, MessageDropRecorded) {
  RankFaultPolicy p;
  p.drops.push_back({0, 0});
  const RunResult run = simmpi::Run(
      2,
      [&](Comm& c) {
        if (c.rank() == 0) {
          const std::byte b{0x33};
          c.Send(1, 5, pnc::ConstByteSpan(&b, 1));  // dropped
          c.Send(1, 6, pnc::ConstByteSpan(&b, 1));
        } else {
          (void)c.Recv(0, 6);
        }
      },
      simmpi::CostModel{}, p);
  EXPECT_EQ(run.fault_counters.dropped_messages, 1u);
  const Event* drop = Find(FlightRecorder::Get().CollectRank(0), Ev::kMsgDrop);
  ASSERT_NE(drop, nullptr);
  EXPECT_EQ(drop->a0, 1u);  // payload bytes
  EXPECT_EQ(drop->a1, 1u);  // destination world rank
}

// --------------------------------------------------------- failure modes

// A drop with no crash behind it is a genuine lost message: the blocked
// receiver must be killed by the hang watchdog, not stall forever.
TEST(ChaosDeath, PureDropTripsHangWatchdog) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  simmpi::CostModel cm;
  cm.hang_timeout_ms = 200.0;
  RankFaultPolicy p;
  p.drops.push_back({0, 0});
  EXPECT_DEATH(
      {
        simmpi::Run(
            2,
            [](Comm& c) {
              if (c.rank() == 0) {
                const std::byte b{0x44};
                c.Send(1, 9, pnc::ConstByteSpan(&b, 1));  // dropped
              } else {
                (void)c.Recv(0, 9);  // non-FT wait on a vanished message
              }
            },
            cm, p);
      },
      "hang watchdog");
}

// A non-fault-tolerant Recv aimed at a rank that is already dead is a
// protocol bug under an armed policy: it aborts with a diagnostic right
// away instead of burning the whole watchdog interval.
TEST(ChaosDeath, NonFtRecvFromDeadRankAbortsImmediately) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        simmpi::Run(
            2,
            [](Comm& c) {
              if (c.rank() == 1) {
                const std::byte b{0x55};
                c.Send(0, 3, pnc::ConstByteSpan(&b, 1));  // dies here
              } else {
                (void)c.Recv(1, 3);
              }
            },
            simmpi::CostModel{}, CrashAtOp(1, 0));
      },
      "recv-from-failed-rank");
}

}  // namespace
