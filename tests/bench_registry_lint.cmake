# Lint: every bench driver registers through the bench registry.
#
# A bench_*.cpp that forgets BENCH_REGISTER still builds (its standalone
# executable would just run whichever bench happened to register first), and
# one that defines its own main() silently bypasses the registry's flag
# validation and Recorder plumbing — so both are build-breaking here, not
# style notes. standalone_main.cpp is the one sanctioned main() and is not a
# bench_*.cpp, so the glob skips it.
#
# Usage: cmake -DBENCH_DIR=<repo>/bench -P bench_registry_lint.cmake
if(NOT DEFINED BENCH_DIR)
  message(FATAL_ERROR "pass -DBENCH_DIR=<path to bench/>")
endif()

file(GLOB drivers "${BENCH_DIR}/bench_*.cpp")
if(NOT drivers)
  message(FATAL_ERROR "no bench drivers found under ${BENCH_DIR}")
endif()

foreach(driver ${drivers})
  file(READ "${driver}" text)
  if(NOT text MATCHES "BENCH_REGISTER\\(")
    message(SEND_ERROR
      "${driver}: does not call BENCH_REGISTER — orphan bench invisible to "
      "ncbench and the suites")
  endif()
  if(text MATCHES "int[ \t\n]+main[ \t\n]*\\(")
    message(SEND_ERROR
      "${driver}: defines its own main(); bench drivers expose Run() through "
      "the registry and link standalone_main.cpp instead")
  endif()
endforeach()
