// Tests for the nonblocking request-aggregation API: correctness of combined
// puts/gets across variables and records, request statuses, record growth,
// and the request-count collapse that motivates the interface (§4.2.2).
#include "pnetcdf/nonblocking.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "netcdf/dataset.hpp"
#include "simmpi/runtime.hpp"

namespace pnetcdf {
namespace {

using ncformat::NcType;
using simmpi::Comm;

TEST(Nonblocking, AggregatedPutsAcrossVariables) {
  pfs::FileSystem fs;
  simmpi::Run(4, [&](Comm& c) {
    auto ds = Dataset::Create(c, fs, "nb.nc", simmpi::NullInfo()).value();
    const int x = ds.DefDim("x", 16).value();
    std::vector<int> vars;
    for (int v = 0; v < 6; ++v)
      vars.push_back(
          ds.DefVar("v" + std::to_string(v), NcType::kInt, {x}).value());
    ASSERT_TRUE(ds.EndDef().ok());

    NonblockingQueue q(ds);
    const std::uint64_t st[] = {4 * static_cast<std::uint64_t>(c.rank())};
    const std::uint64_t ct[] = {4};
    std::vector<std::vector<std::int32_t>> bufs;
    for (int v = 0; v < 6; ++v) {
      std::vector<std::int32_t> b(4);
      for (int i = 0; i < 4; ++i)
        b[static_cast<std::size_t>(i)] = 100 * v + 10 * c.rank() + i;
      bufs.push_back(std::move(b));
      auto r = q.IputVara<std::int32_t>(vars[static_cast<std::size_t>(v)], st,
                                        ct, bufs.back());
      ASSERT_TRUE(r.ok());
    }
    EXPECT_EQ(q.pending(), 6u);
    std::vector<pnc::Status> sts;
    ASSERT_TRUE(q.WaitAll(&sts).ok());
    EXPECT_EQ(sts.size(), 6u);
    for (const auto& s : sts) EXPECT_TRUE(s.ok());
    EXPECT_EQ(q.pending(), 0u);
    ASSERT_TRUE(ds.Close().ok());
  });

  auto rd = netcdf::Dataset::Open(fs, "nb.nc", false).value();
  for (int v = 0; v < 6; ++v) {
    std::vector<std::int32_t> all(16);
    ASSERT_TRUE(rd.GetVar<std::int32_t>(v, all).ok());
    for (int i = 0; i < 16; ++i)
      EXPECT_EQ(all[static_cast<std::size_t>(i)], 100 * v + 10 * (i / 4) + i % 4);
  }
}

TEST(Nonblocking, AggregatedGetsDeliverConverted) {
  pfs::FileSystem fs;
  simmpi::Run(2, [&](Comm& c) {
    auto ds = Dataset::Create(c, fs, "nbg.nc", simmpi::NullInfo()).value();
    const int x = ds.DefDim("x", 8).value();
    const int a = ds.DefVar("a", NcType::kShort, {x}).value();
    const int b = ds.DefVar("b", NcType::kDouble, {x}).value();
    ASSERT_TRUE(ds.EndDef().ok());
    std::vector<std::int16_t> av(8);
    std::iota(av.begin(), av.end(), std::int16_t{1});
    std::vector<double> bv(8);
    std::iota(bv.begin(), bv.end(), 100.0);
    ASSERT_TRUE(ds.PutVarAll<std::int16_t>(a, av).ok());
    ASSERT_TRUE(ds.PutVarAll<double>(b, bv).ok());

    NonblockingQueue q(ds);
    const std::uint64_t st[] = {4 * static_cast<std::uint64_t>(c.rank())};
    const std::uint64_t ct[] = {4};
    std::vector<double> a_as_double(4);   // short -> double conversion
    std::vector<float> b_as_float(4);     // double -> float conversion
    ASSERT_TRUE(q.IgetVara<double>(a, st, ct, a_as_double).ok());
    ASSERT_TRUE(q.IgetVara<float>(b, st, ct, b_as_float).ok());
    ASSERT_TRUE(q.WaitAll().ok());
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(a_as_double[static_cast<std::size_t>(i)],
                static_cast<double>(4 * c.rank() + i + 1));
      EXPECT_EQ(b_as_float[static_cast<std::size_t>(i)],
                static_cast<float>(100 + 4 * c.rank() + i));
    }
    ASSERT_TRUE(ds.Close().ok());
  });
}

TEST(Nonblocking, MixedPutsAndGetsOneWait) {
  pfs::FileSystem fs;
  simmpi::Run(2, [&](Comm& c) {
    auto ds = Dataset::Create(c, fs, "nbm.nc", simmpi::NullInfo()).value();
    const int x = ds.DefDim("x", 4).value();
    const int a = ds.DefVar("a", NcType::kInt, {x}).value();
    const int b = ds.DefVar("b", NcType::kInt, {x}).value();
    ASSERT_TRUE(ds.EndDef().ok());
    std::vector<std::int32_t> init{7, 7, 7, 7};
    ASSERT_TRUE(ds.PutVarAll<std::int32_t>(a, init).ok());

    NonblockingQueue q(ds);
    const std::uint64_t st[] = {2 * static_cast<std::uint64_t>(c.rank())};
    const std::uint64_t ct[] = {2};
    std::vector<std::int32_t> wr{c.rank(), c.rank() + 10};
    std::vector<std::int32_t> rd(2, -1);
    ASSERT_TRUE(q.IputVara<std::int32_t>(b, st, ct, wr).ok());
    ASSERT_TRUE(q.IgetVara<std::int32_t>(a, st, ct, rd).ok());
    std::vector<pnc::Status> sts;
    ASSERT_TRUE(q.WaitAll(&sts).ok());
    EXPECT_EQ(sts.size(), 2u);
    EXPECT_EQ(rd, (std::vector<std::int32_t>{7, 7}));
    ASSERT_TRUE(ds.Close().ok());
  });
}

TEST(Nonblocking, RecordVariablesAggregateAcrossRecords) {
  // The §4.2.2 scenario: many record variables, records interleaved in the
  // file; per-variable writes are noncontiguous, but one combined wait sees
  // whole records as contiguous spans.
  std::uint64_t reqs_combined = 0, reqs_separate = 0;
  for (const bool combined : {true, false}) {
    pfs::FileSystem run_fs;
    simmpi::Run(2, [&](Comm& c) {
      auto ds = Dataset::Create(c, run_fs, "nbr.nc", simmpi::NullInfo())
                    .value();
      const int t = ds.DefDim("t", kUnlimited).value();
      const int x = ds.DefDim("x", 8).value();
      std::vector<int> vars;
      for (int v = 0; v < 8; ++v)
        vars.push_back(ds.DefVar("r" + std::to_string(v), NcType::kDouble,
                                 {t, x})
                           .value());
      ASSERT_TRUE(ds.EndDef().ok());
      run_fs.ResetStats();

      const std::uint64_t st[] = {0, 4 * static_cast<std::uint64_t>(c.rank())};
      const std::uint64_t ct[] = {2, 4};
      std::vector<std::vector<double>> bufs;
      NonblockingQueue q(ds);
      for (int v = 0; v < 8; ++v) {
        std::vector<double> b(8, static_cast<double>(v) + 0.5);
        bufs.push_back(std::move(b));
        if (combined) {
          ASSERT_TRUE(q.IputVara<double>(vars[static_cast<std::size_t>(v)],
                                         st, ct, bufs.back())
                          .ok());
        } else {
          ASSERT_TRUE(ds.PutVaraAll<double>(vars[static_cast<std::size_t>(v)],
                                            st, ct, bufs.back())
                          .ok());
        }
      }
      if (combined) ASSERT_TRUE(q.WaitAll().ok());
      EXPECT_EQ(ds.numrecs(), 2u);
      ASSERT_TRUE(ds.Close().ok());

      // Validate content through collective reads.
      auto rd2 = Dataset::Open(c, run_fs, "nbr.nc", false, simmpi::NullInfo())
                     .value();
      std::vector<double> back(8);
      ASSERT_TRUE(rd2.GetVaraAll<double>(vars[3], st, ct, back).ok());
      for (double d : back) EXPECT_EQ(d, 3.5);
      ASSERT_TRUE(rd2.Close().ok());
    });
    (combined ? reqs_combined : reqs_separate) =
        run_fs.stats().write_requests;
  }
  // One combined collective must need far fewer file requests than eight
  // separate collectives over interleaved records.
  EXPECT_LT(reqs_combined, reqs_separate);
}

TEST(Nonblocking, PostTimeValidation) {
  pfs::FileSystem fs;
  simmpi::Run(1, [&](Comm& c) {
    auto ds = Dataset::Create(c, fs, "nbv.nc", simmpi::NullInfo()).value();
    const int x = ds.DefDim("x", 4).value();
    const int v = ds.DefVar("a", NcType::kInt, {x}).value();
    ASSERT_TRUE(ds.EndDef().ok());
    NonblockingQueue q(ds);
    const std::uint64_t st[] = {3};
    const std::uint64_t ct[] = {4};
    std::vector<std::int32_t> d(4);
    EXPECT_EQ(q.IputVara<std::int32_t>(v, st, ct, d).status().code(),
              pnc::Err::kEdge);
    EXPECT_EQ(q.IgetVara<std::int32_t>(9, st, ct, d).status().code(),
              pnc::Err::kNotVar);
    EXPECT_EQ(q.pending(), 0u);
    // Empty WaitAll is legal and collective-safe.
    EXPECT_TRUE(q.WaitAll().ok());
    ASSERT_TRUE(ds.Close().ok());
  });
}

TEST(Nonblocking, PutBufferReusableAfterPost) {
  pfs::FileSystem fs;
  simmpi::Run(1, [&](Comm& c) {
    auto ds = Dataset::Create(c, fs, "nbb.nc", simmpi::NullInfo()).value();
    const int x = ds.DefDim("x", 2).value();
    const int v = ds.DefVar("a", NcType::kInt, {x}).value();
    ASSERT_TRUE(ds.EndDef().ok());
    NonblockingQueue q(ds);
    std::vector<std::int32_t> buf{1, 2};
    const std::uint64_t st[] = {0};
    const std::uint64_t ct[] = {2};
    ASSERT_TRUE(q.IputVara<std::int32_t>(v, st, ct, buf).ok());
    buf[0] = 999;  // data was captured at post time
    ASSERT_TRUE(q.WaitAll().ok());
    std::vector<std::int32_t> back(2);
    ASSERT_TRUE(ds.GetVarAll<std::int32_t>(v, back).ok());
    EXPECT_EQ(back, (std::vector<std::int32_t>{1, 2}));
    ASSERT_TRUE(ds.Close().ok());
  });
}

}  // namespace
}  // namespace pnetcdf
