// End-to-end tests for the PnetCDF library: the collective write/read
// lifecycle of Figure 4, both data-access APIs, independent data mode,
// define-mode consistency checking, record variables, and parallel
// redefinition.
#include "pnetcdf/dataset.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "netcdf/dataset.hpp"
#include "simmpi/runtime.hpp"

namespace pnetcdf {
namespace {

using ncformat::NcType;
using simmpi::Comm;

// Figure 4(a): collectively create, define, put_vara_all, close.
TEST(Lifecycle, Figure4WriteThenRead) {
  pfs::FileSystem fs;
  const int nprocs = 4;
  const std::uint64_t rows_per_rank = 2, cols = 5;
  simmpi::Run(nprocs, [&](Comm& c) {
    auto ds = Dataset::Create(c, fs, "fig4.nc", simmpi::NullInfo()).value();
    const int zd = ds.DefDim("z", rows_per_rank * nprocs).value();
    const int xd = ds.DefDim("x", cols).value();
    const int v = ds.DefVar("tt", NcType::kDouble, {zd, xd}).value();
    ASSERT_TRUE(ds.PutAttText(kGlobal, "source", "figure-4").ok());
    ASSERT_TRUE(ds.EndDef().ok());

    // Z-partition: each rank owns a row slab.
    std::vector<double> mine(rows_per_rank * cols);
    std::iota(mine.begin(), mine.end(),
              100.0 * static_cast<double>(c.rank()));
    const std::uint64_t st[] = {rows_per_rank * static_cast<std::uint64_t>(c.rank()), 0};
    const std::uint64_t ct[] = {rows_per_rank, cols};
    ASSERT_TRUE(ds.PutVaraAll<double>(v, st, ct, mine).ok());
    ASSERT_TRUE(ds.Close().ok());

    // Figure 4(b): collectively open, inquire, get_vars_all, close.
    auto rd = Dataset::Open(c, fs, "fig4.nc", false, simmpi::NullInfo()).value();
    EXPECT_EQ(rd.nvars(), 1);
    EXPECT_EQ(rd.GetAtt(kGlobal, "source").value().AsText(), "figure-4");
    const int rv = rd.VarId("tt").value();
    std::vector<double> back(rows_per_rank * cols);
    const std::uint64_t stride[] = {1, 1};
    ASSERT_TRUE(rd.GetVarsAll<double>(rv, st, ct, stride, back).ok());
    EXPECT_EQ(back, mine);
    ASSERT_TRUE(rd.Close().ok());
  });
}

// The interoperability oracle: a file written collectively by PnetCDF must
// be byte-level valid classic netCDF — readable by the *serial* library —
// and vice versa ("our parallel netCDF design retains the original netCDF
// file format", §4).
TEST(Interop, PnetcdfWritesSerialReads) {
  pfs::FileSystem fs;
  simmpi::Run(4, [&](Comm& c) {
    auto ds = Dataset::Create(c, fs, "interop1.nc", simmpi::NullInfo()).value();
    const int t = ds.DefDim("time", kUnlimited).value();
    const int x = ds.DefDim("x", 8).value();
    const int v = ds.DefVar("series", NcType::kFloat, {t, x}).value();
    const int f = ds.DefVar("fixed", NcType::kInt, {x}).value();
    ASSERT_TRUE(ds.PutAttText(v, "units", "K").ok());
    ASSERT_TRUE(ds.EndDef().ok());

    // Each rank writes two columns of each of 3 records, plus a slice of the
    // fixed variable.
    const std::uint64_t c0 = 2 * static_cast<std::uint64_t>(c.rank());
    for (std::uint64_t rec = 0; rec < 3; ++rec) {
      const std::uint64_t st[] = {rec, c0};
      const std::uint64_t ct[] = {1, 2};
      const std::vector<float> vals{
          static_cast<float>(10 * rec + c0),
          static_cast<float>(10 * rec + c0 + 1)};
      ASSERT_TRUE(ds.PutVaraAll<float>(v, st, ct, vals).ok());
    }
    const std::uint64_t stf[] = {c0};
    const std::uint64_t ctf[] = {2};
    const std::vector<std::int32_t> iv{static_cast<std::int32_t>(c0),
                                       static_cast<std::int32_t>(c0 + 1)};
    ASSERT_TRUE(ds.PutVaraAll<std::int32_t>(f, stf, ctf, iv).ok());
    ASSERT_TRUE(ds.Close().ok());
  });

  // Serial read-back.
  auto rd = netcdf::Dataset::Open(fs, "interop1.nc", false).value();
  EXPECT_EQ(rd.numrecs(), 3u);
  EXPECT_EQ(rd.GetAtt(rd.VarId("series").value(), "units").value().AsText(),
            "K");
  std::vector<float> all(3 * 8);
  ASSERT_TRUE(rd.GetVar<float>(rd.VarId("series").value(), all).ok());
  for (std::uint64_t rec = 0; rec < 3; ++rec)
    for (std::uint64_t i = 0; i < 8; ++i)
      EXPECT_EQ(all[rec * 8 + i], static_cast<float>(10 * rec + i));
  std::vector<std::int32_t> fixed(8);
  ASSERT_TRUE(rd.GetVar<std::int32_t>(rd.VarId("fixed").value(), fixed).ok());
  for (std::int32_t i = 0; i < 8; ++i) EXPECT_EQ(fixed[static_cast<std::size_t>(i)], i);
}

TEST(Interop, SerialWritesPnetcdfReads) {
  pfs::FileSystem fs;
  {
    auto ds = netcdf::Dataset::Create(fs, "interop2.nc").value();
    const int z = ds.DefDim("z", 6).value();
    const int v = ds.DefVar("data", NcType::kDouble, {z}).value();
    ASSERT_TRUE(ds.EndDef().ok());
    std::vector<double> vals{0, 1, 2, 3, 4, 5};
    ASSERT_TRUE(ds.PutVar<double>(v, vals).ok());
    ASSERT_TRUE(ds.Close().ok());
  }
  simmpi::Run(3, [&](Comm& c) {
    auto ds =
        Dataset::Open(c, fs, "interop2.nc", false, simmpi::NullInfo()).value();
    const int v = ds.VarId("data").value();
    // Each rank reads its own pair.
    const std::uint64_t st[] = {2 * static_cast<std::uint64_t>(c.rank())};
    const std::uint64_t ct[] = {2};
    std::vector<double> mine(2);
    ASSERT_TRUE(ds.GetVaraAll<double>(v, st, ct, mine).ok());
    EXPECT_EQ(mine[0], static_cast<double>(2 * c.rank()));
    EXPECT_EQ(mine[1], static_cast<double>(2 * c.rank() + 1));
    ASSERT_TRUE(ds.Close().ok());
  });
}

class PartitionP : public ::testing::TestWithParam<std::tuple<int, int>> {};

// Property: for every partition axis and process count, a collective write
// of a 3-D array partitioned across ranks followed by a full serial read
// reconstructs exactly the global array. This is the paper's §5.1 workload
// in miniature (partitions Z, Y, X, ZY, ZX, YX, ZYX).
TEST_P(PartitionP, CollectiveWriteReconstructsGlobalArray) {
  const int nprocs = std::get<0>(GetParam());
  const int axis_mask = std::get<1>(GetParam());  // bit 0=Z, 1=Y, 2=X
  const std::uint64_t kZ = 8, kY = 8, kX = 8;
  pfs::FileSystem fs;

  // Factor nprocs across the selected axes (row-major over set bits).
  int nax = __builtin_popcount(static_cast<unsigned>(axis_mask));
  std::vector<int> factors(static_cast<std::size_t>(nax), 1);
  {
    int rem = nprocs;
    for (auto& f : factors) f = 1;
    std::size_t i = 0;
    while (rem > 1) {
      factors[i % factors.size()] *= 2;
      rem /= 2;
      ++i;
    }
  }

  simmpi::Run(nprocs, [&](Comm& c) {
    auto ds = Dataset::Create(c, fs, "part.nc", simmpi::NullInfo()).value();
    const int zd = ds.DefDim("z", kZ).value();
    const int yd = ds.DefDim("y", kY).value();
    const int xd = ds.DefDim("x", kX).value();
    const int v = ds.DefVar("tt", NcType::kInt, {zd, yd, xd}).value();
    ASSERT_TRUE(ds.EndDef().ok());

    // Decompose.
    std::uint64_t start[3] = {0, 0, 0};
    std::uint64_t count[3] = {kZ, kY, kX};
    int rank_rem = c.rank();
    std::size_t fi = 0;
    for (int d = 0; d < 3; ++d) {
      if (!(axis_mask & (1 << d))) continue;
      const int nf = factors[fi++];
      const std::uint64_t dim = count[d];
      const int coord = rank_rem % nf;
      rank_rem /= nf;
      count[d] = dim / static_cast<std::uint64_t>(nf);
      start[d] = count[d] * static_cast<std::uint64_t>(coord);
    }

    std::vector<std::int32_t> mine(count[0] * count[1] * count[2]);
    // Value = global linear index, so reconstruction is checkable.
    std::size_t w = 0;
    for (std::uint64_t z = 0; z < count[0]; ++z)
      for (std::uint64_t y = 0; y < count[1]; ++y)
        for (std::uint64_t x = 0; x < count[2]; ++x)
          mine[w++] = static_cast<std::int32_t>(
              ((start[0] + z) * kY + start[1] + y) * kX + start[2] + x);
    ASSERT_TRUE(ds.PutVaraAll<std::int32_t>(v, start, count, mine).ok());

    // Collective read-back through the same decomposition.
    std::vector<std::int32_t> back(mine.size());
    ASSERT_TRUE(ds.GetVaraAll<std::int32_t>(v, start, count, back).ok());
    EXPECT_EQ(back, mine);
    ASSERT_TRUE(ds.Close().ok());
  });

  auto rd = netcdf::Dataset::Open(fs, "part.nc", false).value();
  std::vector<std::int32_t> all(kZ * kY * kX);
  ASSERT_TRUE(rd.GetVar<std::int32_t>(0, all).ok());
  for (std::size_t i = 0; i < all.size(); ++i)
    EXPECT_EQ(all[i], static_cast<std::int32_t>(i)) << i;
}

std::string PartitionName(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* const kNames[] = {"",   "Z",  "Y",  "ZY",
                                       "X",  "ZX", "YX", "ZYX"};
  return std::string(kNames[std::get<1>(info.param)]) + "_p" +
         std::to_string(std::get<0>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AxesAndProcs, PartitionP,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(1, 2, 4, 3, 5, 6, 7)),
    PartitionName);

TEST(IndependentMode, RequiresBeginEnd) {
  pfs::FileSystem fs;
  simmpi::Run(2, [&](Comm& c) {
    auto ds = Dataset::Create(c, fs, "indep.nc", simmpi::NullInfo()).value();
    const int x = ds.DefDim("x", 4).value();
    const int v = ds.DefVar("a", NcType::kInt, {x}).value();
    ASSERT_TRUE(ds.EndDef().ok());
    const std::uint64_t st[] = {0};
    const std::uint64_t ct[] = {2};
    std::vector<std::int32_t> d{1, 2};
    // Independent call outside independent mode: error.
    EXPECT_EQ(ds.PutVara<std::int32_t>(v, st, ct, d).code(),
              pnc::Err::kNotIndep);
    ASSERT_TRUE(ds.BeginIndepData().ok());
    // Collective call inside independent mode: error.
    EXPECT_EQ(ds.PutVaraAll<std::int32_t>(v, st, ct, d).code(),
              pnc::Err::kInIndep);
    // Each rank writes its half independently.
    const std::uint64_t stm[] = {2 * static_cast<std::uint64_t>(c.rank())};
    const std::vector<std::int32_t> mine{10 * c.rank(), 10 * c.rank() + 1};
    EXPECT_TRUE(ds.PutVara<std::int32_t>(v, stm, ct, mine).ok());
    ASSERT_TRUE(ds.EndIndepData().ok());
    ASSERT_TRUE(ds.Close().ok());
  });
  auto rd = netcdf::Dataset::Open(fs, "indep.nc", false).value();
  std::vector<std::int32_t> all(4);
  ASSERT_TRUE(rd.GetVar<std::int32_t>(0, all).ok());
  EXPECT_EQ(all, (std::vector<std::int32_t>{0, 1, 10, 11}));
}

TEST(IndependentMode, RecordGrowthConvergesAtEnd) {
  pfs::FileSystem fs;
  simmpi::Run(3, [&](Comm& c) {
    auto ds = Dataset::Create(c, fs, "igrow.nc", simmpi::NullInfo()).value();
    const int t = ds.DefDim("t", kUnlimited).value();
    const int v = ds.DefVar("a", NcType::kInt, {t}).value();
    ASSERT_TRUE(ds.EndDef().ok());
    ASSERT_TRUE(ds.BeginIndepData().ok());
    // Rank r writes record r: ranks see different local numrecs.
    const std::uint64_t st[] = {static_cast<std::uint64_t>(c.rank())};
    const std::uint64_t ct[] = {1};
    const std::int32_t val = c.rank();
    ASSERT_TRUE(ds.PutVara<std::int32_t>(v, st, ct, {&val, 1}).ok());
    ASSERT_TRUE(ds.EndIndepData().ok());
    // After the collective exit, every rank agrees on the max.
    EXPECT_EQ(ds.numrecs(), 3u);
    ASSERT_TRUE(ds.Close().ok());
  });
  auto rd = netcdf::Dataset::Open(fs, "igrow.nc", false).value();
  EXPECT_EQ(rd.numrecs(), 3u);
}

TEST(Consistency, MismatchedDefinitionsDetectedAtEndDef) {
  pfs::FileSystem fs;
  simmpi::Run(2, [&](Comm& c) {
    auto ds = Dataset::Create(c, fs, "mis.nc", simmpi::NullInfo()).value();
    // Ranks define different dimension lengths: must fail on all ranks.
    (void)ds.DefDim("x", c.rank() == 0 ? 4 : 8);
    EXPECT_EQ(ds.EndDef().code(), pnc::Err::kMultiDefine);
  });
}

TEST(Consistency, CollectiveValidationFailurePropagates) {
  pfs::FileSystem fs;
  simmpi::Run(2, [&](Comm& c) {
    auto ds = Dataset::Create(c, fs, "val.nc", simmpi::NullInfo()).value();
    const int x = ds.DefDim("x", 4).value();
    const int v = ds.DefVar("a", NcType::kInt, {x}).value();
    ASSERT_TRUE(ds.EndDef().ok());
    // Rank 1 passes an out-of-bounds start; rank 0 is valid. Without the
    // collective agreement this would deadlock rank 0 in two-phase I/O.
    const std::uint64_t st[] = {c.rank() == 0 ? 0ull : 100ull};
    const std::uint64_t ct[] = {2};
    std::vector<std::int32_t> d{1, 2};
    auto s = ds.PutVaraAll<std::int32_t>(v, st, ct, d);
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(),
              c.rank() == 0 ? pnc::Err::kMultiDefine : pnc::Err::kInvalidCoords);
    ASSERT_TRUE(ds.Close().ok());
  });
}

TEST(FlexibleApi, NoncontiguousMemoryDatatype) {
  pfs::FileSystem fs;
  simmpi::Run(2, [&](Comm& c) {
    auto ds = Dataset::Create(c, fs, "flex.nc", simmpi::NullInfo()).value();
    const int z = ds.DefDim("z", 4).value();
    const int x = ds.DefDim("x", 4).value();
    const int v = ds.DefVar("a", NcType::kDouble, {z, x}).value();
    ASSERT_TRUE(ds.EndDef().ok());

    // Memory holds an 8x4 local array with a 2-row halo at top; the owned
    // region is rows 2..3 (rank picks its slab). Describe it with a
    // subarray datatype — the flexible API's reason to exist (§4.1).
    std::vector<double> local(6 * 4, -1.0);
    for (std::uint64_t r = 0; r < 2; ++r)
      for (std::uint64_t x2 = 0; x2 < 4; ++x2)
        local[(2 + r) * 4 + x2] =
            static_cast<double>(100 * c.rank() + r * 4 + x2);
    const std::uint64_t msizes[] = {6, 4};
    const std::uint64_t msub[] = {2, 4};
    const std::uint64_t mstart[] = {2, 0};
    auto buftype =
        simmpi::Datatype::Subarray(msizes, msub, mstart, simmpi::DoubleType())
            .value();

    const std::uint64_t st[] = {2 * static_cast<std::uint64_t>(c.rank()), 0};
    const std::uint64_t ct[] = {2, 4};
    ASSERT_TRUE(
        ds.PutVaraAllFlex(v, st, ct, local.data(), 1, buftype).ok());

    // Read back through the flexible API into the same halo layout.
    std::vector<double> readback(6 * 4, -7.0);
    ASSERT_TRUE(
        ds.GetVaraAllFlex(v, st, ct, readback.data(), 1, buftype).ok());
    for (std::uint64_t r = 0; r < 2; ++r)
      for (std::uint64_t x2 = 0; x2 < 4; ++x2)
        EXPECT_EQ(readback[(2 + r) * 4 + x2],
                  static_cast<double>(100 * c.rank() + r * 4 + x2));
    // Halo untouched.
    EXPECT_EQ(readback[0], -7.0);
    ASSERT_TRUE(ds.Close().ok());
  });
}

TEST(FlexibleApi, SizeMismatchRejected) {
  pfs::FileSystem fs;
  simmpi::Run(2, [&](Comm& c) {
    auto ds = Dataset::Create(c, fs, "flexbad.nc", simmpi::NullInfo()).value();
    const int x = ds.DefDim("x", 4).value();
    const int v = ds.DefVar("a", NcType::kInt, {x}).value();
    ASSERT_TRUE(ds.EndDef().ok());
    const std::uint64_t st[] = {0};
    const std::uint64_t ct[] = {4};
    std::vector<std::int32_t> d(2);
    EXPECT_EQ(ds.PutVaraAllFlex(v, st, ct, d.data(), 2, simmpi::IntType())
                  .code(),
              pnc::Err::kTypeMismatch);
    ASSERT_TRUE(ds.Close().ok());
  });
}

TEST(FlexibleApi, TypeConversionViaFlexiblePath) {
  pfs::FileSystem fs;
  simmpi::Run(1, [&](Comm& c) {
    auto ds = Dataset::Create(c, fs, "flexconv.nc", simmpi::NullInfo()).value();
    const int x = ds.DefDim("x", 3).value();
    const int v = ds.DefVar("s", NcType::kShort, {x}).value();
    ASSERT_TRUE(ds.EndDef().ok());
    const std::uint64_t st[] = {0};
    const std::uint64_t ct[] = {3};
    const std::vector<double> dv{1.0, 2.0, 3.0};
    ASSERT_TRUE(ds.PutVaraAllFlex(v, st, ct, dv.data(), 3,
                                  simmpi::DoubleType())
                    .ok());
    std::vector<float> fv(3);
    ASSERT_TRUE(
        ds.GetVaraAllFlex(v, st, ct, fv.data(), 3, simmpi::FloatType()).ok());
    EXPECT_EQ(fv, (std::vector<float>{1.0f, 2.0f, 3.0f}));
    ASSERT_TRUE(ds.Close().ok());
  });
}

TEST(HighLevelApi, Var1VarmVarPaths) {
  pfs::FileSystem fs;
  simmpi::Run(2, [&](Comm& c) {
    auto ds = Dataset::Create(c, fs, "hl.nc", simmpi::NullInfo()).value();
    const int r = ds.DefDim("r", 2).value();
    const int col = ds.DefDim("c", 2).value();
    const int v = ds.DefVar("m", NcType::kInt, {r, col}).value();
    ASSERT_TRUE(ds.EndDef().ok());

    // Var1 (independent mode).
    ASSERT_TRUE(ds.BeginIndepData().ok());
    if (c.rank() == 0) {
      const std::uint64_t idx[] = {0, 0};
      ASSERT_TRUE(ds.PutVar1<std::int32_t>(v, idx, 7).ok());
    }
    ASSERT_TRUE(ds.EndIndepData().ok());
    c.Barrier();

    // Varm with transpose on rank 0 (collective, both ranks call).
    const std::uint64_t st[] = {0, 0};
    const std::uint64_t ct[] = {2, 2};
    const std::uint64_t imap[] = {1, 2};
    std::vector<std::int32_t> mem{1, 3, 2, 4};  // transposed storage
    ASSERT_TRUE(ds.PutVarmAll<std::int32_t>(v, st, ct, {}, imap, mem).ok());

    std::vector<std::int32_t> whole(4);
    ASSERT_TRUE(ds.GetVarAll<std::int32_t>(v, whole).ok());
    EXPECT_EQ(whole, (std::vector<std::int32_t>{1, 2, 3, 4}));

    std::int32_t one = 0;
    ASSERT_TRUE(ds.BeginIndepData().ok());
    const std::uint64_t idx[] = {1, 0};
    ASSERT_TRUE(ds.GetVar1<std::int32_t>(v, idx, one).ok());
    EXPECT_EQ(one, 3);
    ASSERT_TRUE(ds.EndIndepData().ok());
    ASSERT_TRUE(ds.Close().ok());
  });
}

TEST(ParallelRedef, HeaderGrowthMovesDataInParallel) {
  pfs::FileSystem fs;
  simmpi::Run(4, [&](Comm& c) {
    auto ds = Dataset::Create(c, fs, "redef.nc", simmpi::NullInfo()).value();
    const int x = ds.DefDim("x", 64).value();
    const int a = ds.DefVar("a", NcType::kDouble, {x}).value();
    ASSERT_TRUE(ds.EndDef().ok());
    std::vector<double> av(16);
    std::iota(av.begin(), av.end(), 16.0 * c.rank());
    const std::uint64_t st[] = {16 * static_cast<std::uint64_t>(c.rank())};
    const std::uint64_t ct[] = {16};
    ASSERT_TRUE(ds.PutVaraAll<double>(a, st, ct, av).ok());

    ASSERT_TRUE(ds.Redef().ok());
    const int b = ds.DefVar("b", NcType::kDouble, {x}).value();
    ASSERT_TRUE(
        ds.PutAttText(kGlobal, "pad", std::string(1024, 'p')).ok());
    ASSERT_TRUE(ds.EndDef().ok());
    std::vector<double> bv(16, static_cast<double>(c.rank()));
    ASSERT_TRUE(ds.PutVaraAll<double>(b, st, ct, bv).ok());

    std::vector<double> back(16);
    ASSERT_TRUE(ds.GetVaraAll<double>(a, st, ct, back).ok());
    EXPECT_EQ(back, av);
    ASSERT_TRUE(ds.Close().ok());
  });
  // Serial validation of the whole file.
  auto rd = netcdf::Dataset::Open(fs, "redef.nc", false).value();
  std::vector<double> all(64);
  ASSERT_TRUE(rd.GetVar<double>(rd.VarId("a").value(), all).ok());
  for (std::size_t i = 0; i < 64; ++i)
    EXPECT_EQ(all[i], static_cast<double>(i));
}

TEST(Hints, HeaderAlignReservesSpace) {
  pfs::FileSystem fs;
  simmpi::Run(2, [&](Comm& c) {
    simmpi::Info info;
    info.Set("nc_header_align_size", "8192");
    auto ds = Dataset::Create(c, fs, "align.nc", info).value();
    const int x = ds.DefDim("x", 4).value();
    (void)ds.DefVar("a", NcType::kInt, {x});
    ASSERT_TRUE(ds.EndDef().ok());
    EXPECT_EQ(ds.header().data_begin(), 8192u);
    ASSERT_TRUE(ds.Close().ok());
  });
}

TEST(Hints, AlignedHeaderAvoidsDataMoveOnRedef) {
  pfs::FileSystem fs;
  simmpi::Run(2, [&](Comm& c) {
    simmpi::Info info;
    info.Set("nc_header_align_size", "8192");
    auto ds = Dataset::Create(c, fs, "align2.nc", info).value();
    const int x = ds.DefDim("x", 8).value();
    const int a = ds.DefVar("a", NcType::kInt, {x}).value();
    ASSERT_TRUE(ds.EndDef().ok());
    const std::uint64_t begin_before =
        ds.header().vars[static_cast<std::size_t>(a)].begin;
    ASSERT_TRUE(ds.Redef().ok());
    ASSERT_TRUE(ds.PutAttText(kGlobal, "note", "small growth").ok());
    ASSERT_TRUE(ds.EndDef().ok());
    EXPECT_EQ(ds.header().vars[static_cast<std::size_t>(a)].begin,
              begin_before);
    ASSERT_TRUE(ds.Close().ok());
  });
}

TEST(ModeErrors, DefineModeRules) {
  pfs::FileSystem fs;
  simmpi::Run(2, [&](Comm& c) {
    auto ds = Dataset::Create(c, fs, "mode.nc", simmpi::NullInfo()).value();
    const int x = ds.DefDim("x", 2).value();
    const int v = ds.DefVar("a", NcType::kInt, {x}).value();
    const std::uint64_t st[] = {0};
    const std::uint64_t ct[] = {2};
    std::vector<std::int32_t> d{1, 2};
    EXPECT_EQ(ds.PutVaraAll<std::int32_t>(v, st, ct, d).code(),
              pnc::Err::kInDefine);
    EXPECT_EQ(ds.BeginIndepData().code(), pnc::Err::kInDefine);
    ASSERT_TRUE(ds.EndDef().ok());
    EXPECT_EQ(ds.DefDim("y", 2).status().code(), pnc::Err::kNotInDefine);
    ASSERT_TRUE(ds.Redef().ok());
    EXPECT_TRUE(ds.DefDim("y", 2).ok());
    ASSERT_TRUE(ds.EndDef().ok());
    ASSERT_TRUE(ds.Close().ok());
  });
}

TEST(OpenErrors, MissingFileFailsOnAllRanks) {
  pfs::FileSystem fs;
  simmpi::Run(3, [&](Comm& c) {
    auto r = Dataset::Open(c, fs, "nope.nc", false, simmpi::NullInfo());
    EXPECT_FALSE(r.ok());
  });
}

TEST(OpenErrors, NotANetcdfFile) {
  pfs::FileSystem fs;
  {
    auto f = fs.Create("junk.bin", false).value();
    std::vector<std::byte> junk(512, std::byte{0x77});
    f.HarnessWrite(0, junk, 0.0);
  }
  simmpi::Run(2, [&](Comm& c) {
    auto r = Dataset::Open(c, fs, "junk.bin", false, simmpi::NullInfo());
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), pnc::Err::kNotNc);
  });
}

TEST(Abort, FreshCreateRemovesFile) {
  pfs::FileSystem fs;
  simmpi::Run(2, [&](Comm& c) {
    auto ds = Dataset::Create(c, fs, "ab.nc", simmpi::NullInfo()).value();
    (void)ds.DefDim("x", 2);
    ASSERT_TRUE(ds.Abort().ok());
  });
  EXPECT_FALSE(fs.Exists("ab.nc"));
}

TEST(RecordVars, StridedRecordAccessAcrossRanks) {
  pfs::FileSystem fs;
  simmpi::Run(2, [&](Comm& c) {
    auto ds = Dataset::Create(c, fs, "recs.nc", simmpi::NullInfo()).value();
    const int t = ds.DefDim("t", kUnlimited).value();
    const int x = ds.DefDim("x", 2).value();
    const int v = ds.DefVar("a", NcType::kInt, {t, x}).value();
    const int w = ds.DefVar("b", NcType::kDouble, {t}).value();
    ASSERT_TRUE(ds.EndDef().ok());
    // Rank r writes records r, r+2, r+4 (stride 2) of var a.
    const std::uint64_t st[] = {static_cast<std::uint64_t>(c.rank()), 0};
    const std::uint64_t ct[] = {3, 2};
    const std::uint64_t sd[] = {2, 1};
    std::vector<std::int32_t> mine(6);
    for (int i = 0; i < 6; ++i) mine[static_cast<std::size_t>(i)] = 100 * c.rank() + i;
    ASSERT_TRUE(ds.PutVarsAll<std::int32_t>(v, st, ct, sd, mine).ok());
    EXPECT_EQ(ds.numrecs(), 6u);
    // And the scalar record var collectively.
    const std::uint64_t stw[] = {static_cast<std::uint64_t>(c.rank())};
    const std::uint64_t ctw[] = {3};
    const std::uint64_t sdw[] = {2};
    std::vector<double> wv{0.5 + c.rank(), 2.5 + c.rank(), 4.5 + c.rank()};
    ASSERT_TRUE(ds.PutVarsAll<double>(w, stw, ctw, sdw, wv).ok());
    ASSERT_TRUE(ds.Close().ok());
  });
  auto rd = netcdf::Dataset::Open(fs, "recs.nc", false).value();
  std::vector<std::int32_t> all(12);
  ASSERT_TRUE(rd.GetVar<std::int32_t>(rd.VarId("a").value(), all).ok());
  EXPECT_EQ(all, (std::vector<std::int32_t>{0, 1, 100, 101, 2, 3, 102, 103,
                                            4, 5, 104, 105}));
  std::vector<double> ws(6);
  ASSERT_TRUE(rd.GetVar<double>(rd.VarId("b").value(), ws).ok());
  EXPECT_EQ(ws, (std::vector<double>{0.5, 1.5, 2.5, 3.5, 4.5, 5.5}));
}

TEST(DataModeAttr, InPlaceReplaceAllowed) {
  pfs::FileSystem fs;
  simmpi::Run(2, [&](Comm& c) {
    auto ds = Dataset::Create(c, fs, "dmattr.nc", simmpi::NullInfo()).value();
    ASSERT_TRUE(ds.PutAttText(kGlobal, "status", "draft").ok());
    ASSERT_TRUE(ds.EndDef().ok());
    ASSERT_TRUE(ds.PutAttText(kGlobal, "status", "final").ok());
    EXPECT_EQ(ds.PutAttText(kGlobal, "status", "much longer value").code(),
              pnc::Err::kNotInDefine);
    ASSERT_TRUE(ds.Close().ok());
  });
  auto rd = netcdf::Dataset::Open(fs, "dmattr.nc", false).value();
  EXPECT_EQ(rd.GetAtt(netcdf::kGlobal, "status").value().AsText(), "final");
}

}  // namespace
}  // namespace pnetcdf
