// Tests for the thread-backed MPI subset: point-to-point matching,
// collectives, communicator management, and virtual-clock behaviour.
#include "simmpi/comm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>

#include "simmpi/runtime.hpp"

namespace simmpi {
namespace {

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

std::string Str(const std::vector<std::byte>& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

TEST(Runtime, RunsEveryRankExactlyOnce) {
  std::atomic<int> count{0};
  std::array<std::atomic<bool>, 8> seen{};
  simmpi::Run(8, [&](Comm& c) {
    count.fetch_add(1);
    seen[static_cast<std::size_t>(c.rank())] = true;
    EXPECT_EQ(c.size(), 8);
  });
  EXPECT_EQ(count.load(), 8);
  for (const auto& s : seen) EXPECT_TRUE(s.load());
}

TEST(Runtime, PropagatesExceptions) {
  EXPECT_THROW(simmpi::Run(2, [](Comm& c) {
                 if (c.rank() == 1) throw std::runtime_error("rank 1 died");
                 // rank 0 must not block on a collective here, or join hangs
               }),
               std::runtime_error);
}

TEST(PointToPoint, BasicSendRecv) {
  simmpi::Run(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.Send(1, 7, Bytes("ping"));
    } else {
      auto msg = c.Recv(0, 7);
      EXPECT_EQ(Str(msg), "ping");
    }
  });
}

TEST(PointToPoint, TagAndSourceMatching) {
  simmpi::Run(3, [](Comm& c) {
    if (c.rank() == 0) {
      c.Send(2, 5, Bytes("from0tag5"));
    } else if (c.rank() == 1) {
      c.Send(2, 9, Bytes("from1tag9"));
    } else {
      // Receive in the opposite order of arrival likelihood: matching must
      // pick by envelope, not queue position.
      auto a = c.Recv(1, 9);
      auto b = c.Recv(0, 5);
      EXPECT_EQ(Str(a), "from1tag9");
      EXPECT_EQ(Str(b), "from0tag5");
    }
  });
}

TEST(PointToPoint, Wildcards) {
  simmpi::Run(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.Send(1, 3, Bytes("x"));
    } else {
      int src = -2, tag = -2;
      auto m = c.Recv(kAnySource, kAnyTag, &src, &tag);
      EXPECT_EQ(src, 0);
      EXPECT_EQ(tag, 3);
      EXPECT_EQ(Str(m), "x");
    }
  });
}

TEST(PointToPoint, FifoPerPair) {
  simmpi::Run(2, [](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i) c.Send(1, 1, Bytes(std::to_string(i)));
    } else {
      for (int i = 0; i < 10; ++i)
        EXPECT_EQ(Str(c.Recv(0, 1)), std::to_string(i));
    }
  });
}

class CollectiveP : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveP, BcastFixed) {
  simmpi::Run(GetParam(), [](Comm& c) {
    std::uint64_t v = c.rank() == 2 % c.size() ? 0xC0FFEE : 0;
    c.BcastValue(v, 2 % c.size());
    EXPECT_EQ(v, 0xC0FFEEu);
  });
}

TEST_P(CollectiveP, BcastResizing) {
  simmpi::Run(GetParam(), [](Comm& c) {
    std::vector<std::byte> buf;
    if (c.rank() == 0) buf = Bytes("a moderately long broadcast payload");
    c.Bcast(buf, 0);
    EXPECT_EQ(Str(buf), "a moderately long broadcast payload");
  });
}

TEST_P(CollectiveP, AllreduceMaxMinSum) {
  simmpi::Run(GetParam(), [](Comm& c) {
    const int p = c.size();
    EXPECT_EQ(c.AllreduceMax(c.rank()), p - 1);
    EXPECT_EQ(c.AllreduceMin(c.rank()), 0);
    EXPECT_EQ(c.AllreduceSum(c.rank() + 1), p * (p + 1) / 2);
    EXPECT_EQ(c.AllreduceMax(3.5 + c.rank()), 3.5 + p - 1);
  });
}

TEST_P(CollectiveP, GatherAndScatter) {
  simmpi::Run(GetParam(), [](Comm& c) {
    auto gathered = c.Gather(Bytes("r" + std::to_string(c.rank())), 0);
    if (c.rank() == 0) {
      ASSERT_EQ(static_cast<int>(gathered.size()), c.size());
      for (int r = 0; r < c.size(); ++r)
        EXPECT_EQ(Str(gathered[static_cast<std::size_t>(r)]),
                  "r" + std::to_string(r));
    }
    std::vector<std::vector<std::byte>> pieces;
    if (c.rank() == 0) {
      for (int r = 0; r < c.size(); ++r)
        pieces.push_back(Bytes("piece" + std::to_string(r)));
    }
    auto mine = c.Scatter(std::move(pieces), 0);
    EXPECT_EQ(Str(mine), "piece" + std::to_string(c.rank()));
  });
}

TEST_P(CollectiveP, Allgather) {
  simmpi::Run(GetParam(), [](Comm& c) {
    auto all = c.Allgather(Bytes(std::string(1 + c.rank() % 3, 'x') +
                                 std::to_string(c.rank())));
    ASSERT_EQ(static_cast<int>(all.size()), c.size());
    for (int r = 0; r < c.size(); ++r)
      EXPECT_EQ(Str(all[static_cast<std::size_t>(r)]),
                std::string(1 + r % 3, 'x') + std::to_string(r));
  });
}

TEST_P(CollectiveP, AlltoallPersonalized) {
  simmpi::Run(GetParam(), [](Comm& c) {
    std::vector<std::vector<std::byte>> send;
    for (int r = 0; r < c.size(); ++r)
      send.push_back(Bytes(std::to_string(c.rank()) + "->" + std::to_string(r)));
    auto recv = c.Alltoall(std::move(send));
    for (int r = 0; r < c.size(); ++r)
      EXPECT_EQ(Str(recv[static_cast<std::size_t>(r)]),
                std::to_string(r) + "->" + std::to_string(c.rank()));
  });
}

TEST_P(CollectiveP, ReduceByteFold) {
  simmpi::Run(GetParam(), [](Comm& c) {
    std::uint32_t v = 1u << c.rank();
    ReduceFn orfn = [](pnc::ByteSpan a, pnc::ConstByteSpan b) {
      std::uint32_t x, y;
      std::memcpy(&x, a.data(), 4);
      std::memcpy(&y, b.data(), 4);
      x |= y;
      std::memcpy(a.data(), &x, 4);
    };
    c.Reduce(pnc::ByteSpan(reinterpret_cast<std::byte*>(&v), 4), orfn, 0);
    if (c.rank() == 0)
      EXPECT_EQ(v, (c.size() >= 32 ? ~0u : (1u << c.size()) - 1));
  });
}

TEST_P(CollectiveP, AllAgree) {
  simmpi::Run(GetParam(), [](Comm& c) {
    int same = 42;
    EXPECT_TRUE(c.AllAgree(
        pnc::ConstByteSpan(reinterpret_cast<std::byte*>(&same), 4)));
    int diff = c.rank() == 0 ? 1 : 2;
    if (c.size() > 1)
      EXPECT_FALSE(c.AllAgree(
          pnc::ConstByteSpan(reinterpret_cast<std::byte*>(&diff), 4)));
  });
}

TEST_P(CollectiveP, BarrierSynchronizesClocks) {
  simmpi::Run(GetParam(), [](Comm& c) {
    // Skew the clocks, then barrier: every clock must be >= the pre-barrier
    // maximum (the barrier cannot complete before the slowest rank arrives).
    const double skew = 1e6 * (c.rank() + 1);
    c.clock().Advance(skew);
    const double pre_max = 1e6 * c.size();
    c.Barrier();
    EXPECT_GE(c.clock().now(), pre_max);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveP, ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST(CommManagement, DupIsolatesTraffic) {
  simmpi::Run(2, [](Comm& c) {
    Comm d = c.Dup();
    if (c.rank() == 0) {
      c.Send(1, 5, Bytes("on-c"));
      d.Send(1, 5, Bytes("on-d"));
    } else {
      // Receive from the dup first: context matching must not hand over the
      // message sent on the parent communicator.
      EXPECT_EQ(Str(d.Recv(0, 5)), "on-d");
      EXPECT_EQ(Str(c.Recv(0, 5)), "on-c");
    }
  });
}

TEST(CommManagement, SplitByParity) {
  simmpi::Run(6, [](Comm& c) {
    Comm sub = c.Split(c.rank() % 2, c.rank());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), c.rank() / 2);
    // Collective inside the split communicator.
    EXPECT_EQ(sub.AllreduceSum(1), 3);
    // Ranks ordered by key.
    auto all = sub.Allgather(Bytes(std::to_string(c.rank())));
    for (int r = 0; r < 3; ++r)
      EXPECT_EQ(Str(all[static_cast<std::size_t>(r)]),
                std::to_string(2 * r + c.rank() % 2));
  });
}

TEST(CommManagement, SplitSingletonColors) {
  simmpi::Run(4, [](Comm& c) {
    Comm solo = c.Split(c.rank(), 0);
    EXPECT_EQ(solo.size(), 1);
    EXPECT_EQ(solo.rank(), 0);
    EXPECT_EQ(solo.AllreduceSum(c.rank()), c.rank());
  });
}

TEST(VirtualTime, MessageDeliveryAdvancesReceiverClock) {
  CostModel cm;
  cm.msg_latency_ns = 1000.0;
  cm.msg_ns_per_byte = 1.0;
  cm.sw_overhead_ns = 0.0;
  simmpi::Run(2,
      [](Comm& c) {
        if (c.rank() == 0) {
          c.Send(1, 1, std::vector<std::byte>(500));
        } else {
          (void)c.Recv(0, 1);
          // Arrival >= latency + 500 bytes * 1 ns.
          EXPECT_GE(c.clock().now(), 1500.0);
        }
      },
      cm);
}

TEST(VirtualTime, RunReportsMakespan) {
  auto result = simmpi::Run(4, [](Comm& c) {
    c.clock().Advance(1e9 * (c.rank() + 1));
  });
  EXPECT_DOUBLE_EQ(result.max_time_ns, 4e9);
  ASSERT_EQ(result.rank_times_ns.size(), 4u);
  EXPECT_DOUBLE_EQ(result.rank_times_ns[0], 1e9);
}

TEST(VirtualTime, SyncClocksToMax) {
  simmpi::Run(3, [](Comm& c) {
    c.clock().Advance(100.0 * c.rank());
    c.SyncClocksToMax();
    EXPECT_GE(c.clock().now(), 200.0);
  });
}

}  // namespace
}  // namespace simmpi
