// Shared helpers for robustness / fault-injection tests.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "format/commit.hpp"
#include "netcdf/dataset.hpp"
#include "pfs/pfs.hpp"

namespace pnc_test {

/// One-line reproduction recipe for a fault/crash schedule, for use in
/// failure messages (SCOPED_TRACE / assertion <<): a failing seeded or swept
/// case can be re-run directly from the log line.
inline std::string DescribePolicy(const pfs::FaultPolicy& p) {
  std::string s = "FaultPolicy{seed=0x";
  char hex[32];
  std::snprintf(hex, sizeof hex, "%llX",
                static_cast<unsigned long long>(p.seed));
  s += hex;
  if (p.crash_op != pfs::FaultPolicy::kNever)
    s += " crash_op=" + std::to_string(p.crash_op) +
         " crash_write_bytes=" + std::to_string(p.crash_write_bytes);
  if (p.crash_after_write_bytes != pfs::FaultPolicy::kNever)
    s += " crash_after_write_bytes=" +
         std::to_string(p.crash_after_write_bytes);
  if (!p.transient_ops.empty()) {
    s += " transient_ops={";
    for (std::size_t i = 0; i < p.transient_ops.size(); ++i)
      s += (i ? "," : "") + std::to_string(p.transient_ops[i]);
    s += "}";
  }
  if (!p.permanent_ops.empty()) {
    s += " permanent_ops={";
    for (std::size_t i = 0; i < p.permanent_ops.size(); ++i)
      s += (i ? "," : "") + std::to_string(p.permanent_ops[i]);
    s += "}";
  }
  if (p.permanent_from != pfs::FaultPolicy::kNever)
    s += " permanent_from=" + std::to_string(p.permanent_from);
  for (const auto& o : p.outages)
    s += " outage={server=" + std::to_string(o.server) + " [" +
         std::to_string(o.begin_ns) + "," + std::to_string(o.end_ns) + ")}";
  if (p.transient_every_nth != 0)
    s += " transient_every_nth=" + std::to_string(p.transient_every_nth);
  if (p.transient_read_prob > 0)
    s += " transient_read_prob=" + std::to_string(p.transient_read_prob);
  if (p.transient_write_prob > 0)
    s += " transient_write_prob=" + std::to_string(p.transient_write_prob);
  if (p.short_read_prob > 0)
    s += " short_read_prob=" + std::to_string(p.short_read_prob);
  if (p.short_write_prob > 0)
    s += " short_write_prob=" + std::to_string(p.short_write_prob);
  if (p.bitflip_read_prob > 0)
    s += " bitflip_read_prob=" + std::to_string(p.bitflip_read_prob);
  if (p.bitflip_write_prob > 0)
    s += " bitflip_write_prob=" + std::to_string(p.bitflip_write_prob);
  if (p.corrupt_at_rest > 0)
    s += " corrupt_at_rest=" + std::to_string(p.corrupt_at_rest);
  s += "}";
  return s;
}

/// Remove `path`'s commit-journal sidecar, turning it into a "legacy"
/// dataset: corruption is then unrecoverable and opens must reject it.
inline void DropJournal(pfs::FileSystem& fs, const std::string& path) {
  (void)fs.Remove(ncformat::JournalPath(path));
}

/// Write a small valid dataset (dim x=8, double var "a" of eight 1.0s) and
/// return its total size in bytes.
inline std::uint64_t MakeValidFile(pfs::FileSystem& fs,
                                   const std::string& path) {
  auto ds = netcdf::Dataset::Create(fs, path).value();
  const int x = ds.DefDim("x", 8).value();
  const int v = ds.DefVar("a", ncformat::NcType::kDouble, {x}).value();
  EXPECT_TRUE(ds.EndDef().ok());
  std::vector<double> vals(8, 1.0);
  EXPECT_TRUE(ds.PutVar<double>(v, vals).ok());
  EXPECT_TRUE(ds.Close().ok());
  return fs.Open(path).value().size();
}

/// Overwrite one byte of `path` through the fault-aware pfs write path,
/// asserting that the write actually completed (a corruption helper that
/// silently failed to corrupt would turn the test into a no-op).
inline void CorruptByte(pfs::FileSystem& fs, const std::string& path,
                        std::uint64_t offset, std::byte value) {
  auto f = fs.Open(path).value();
  const pfs::IoResult r =
      f.TryWrite(offset, pnc::ConstByteSpan(&value, 1), 0.0);
  ASSERT_TRUE(r.status.ok()) << r.status.message();
  ASSERT_EQ(r.transferred, 1u);
}

/// Read the current byte at `offset` (harness path, never fault-injected).
inline std::byte ByteAt(pfs::FileSystem& fs, const std::string& path,
                        std::uint64_t offset) {
  auto f = fs.Open(path).value();
  std::byte b{};
  f.HarnessRead(offset, pnc::ByteSpan(&b, 1), 0.0);
  return b;
}

}  // namespace pnc_test
