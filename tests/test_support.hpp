// Shared helpers for robustness / fault-injection tests.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "netcdf/dataset.hpp"
#include "pfs/pfs.hpp"

namespace pnc_test {

/// Write a small valid dataset (dim x=8, double var "a" of eight 1.0s) and
/// return its total size in bytes.
inline std::uint64_t MakeValidFile(pfs::FileSystem& fs,
                                   const std::string& path) {
  auto ds = netcdf::Dataset::Create(fs, path).value();
  const int x = ds.DefDim("x", 8).value();
  const int v = ds.DefVar("a", ncformat::NcType::kDouble, {x}).value();
  EXPECT_TRUE(ds.EndDef().ok());
  std::vector<double> vals(8, 1.0);
  EXPECT_TRUE(ds.PutVar<double>(v, vals).ok());
  EXPECT_TRUE(ds.Close().ok());
  return fs.Open(path).value().size();
}

/// Overwrite one byte of `path` through the fault-aware pfs write path,
/// asserting that the write actually completed (a corruption helper that
/// silently failed to corrupt would turn the test into a no-op).
inline void CorruptByte(pfs::FileSystem& fs, const std::string& path,
                        std::uint64_t offset, std::byte value) {
  auto f = fs.Open(path).value();
  const pfs::IoResult r =
      f.TryWrite(offset, pnc::ConstByteSpan(&value, 1), 0.0);
  ASSERT_TRUE(r.status.ok()) << r.status.message();
  ASSERT_EQ(r.transferred, 1u);
}

/// Read the current byte at `offset` (harness path, never fault-injected).
inline std::byte ByteAt(pfs::FileSystem& fs, const std::string& path,
                        std::uint64_t offset) {
  auto f = fs.Open(path).value();
  std::byte b{};
  f.Read(offset, pnc::ByteSpan(&b, 1), 0.0);
  return b;
}

}  // namespace pnc_test
