#include "pfs/sched.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/env.hpp"

namespace pfs {

const char* QosDisciplineName(QosDiscipline d) {
  switch (d) {
    case QosDiscipline::kFcfs: return "fcfs";
    case QosDiscipline::kWfq: return "wfq";
    case QosDiscipline::kEdf: return "edf";
  }
  return "?";
}

std::optional<QosDiscipline> ParseQosDiscipline(const std::string& s) {
  if (s == "fcfs") return QosDiscipline::kFcfs;
  if (s == "wfq") return QosDiscipline::kWfq;
  if (s == "edf") return QosDiscipline::kEdf;
  return std::nullopt;
}

double WaitPercentile(std::vector<double> samples, double pct) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = pct / 100.0 * static_cast<double>(samples.size());
  auto idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) idx -= 1;  // nearest-rank is 1-based
  if (idx >= samples.size()) idx = samples.size() - 1;
  return samples[idx];
}

TenantClass TenantClassFromEnv() {
  TenantClass cls;
  const char* name = std::getenv("PNC_TENANT");
  if (name != nullptr) cls.name = name;
  cls.weight = std::clamp(pnc::util::EnvDouble("PNC_QOS_WEIGHT", cls.weight),
                          TenantClass::kMinWeight, TenantClass::kMaxWeight);
  cls.deadline_ns =
      std::max(0.0, pnc::util::EnvDouble("PNC_QOS_DEADLINE_NS", 0.0));
  cls.max_outstanding_bytes = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, pnc::util::EnvInt("PNC_QOS_CAP_BYTES", 0)));
  return cls;
}

void ServerSched::Reset() {
  next_free_ = 0.0;
  busy_ns_ = 0.0;
  horizon_ns_ = 0.0;
  gaps_.clear();
  outstanding_.clear();
}

double ServerSched::FlushBeginAt(double eligible_ns, double service_ns) const {
  for (const Gap& gap : gaps_) {
    const double begin = std::max(gap.begin, eligible_ns);
    if (begin + service_ns <= gap.end) return begin;
  }
  return std::max(eligible_ns, next_free_);
}

void ServerSched::NoteOutstanding(double done_ns) {
  if (outstanding_.size() < kMaxOutstanding) outstanding_.push_back(done_ns);
}

std::uint64_t ServerSched::DepthAt(double arrival_ns) {
  // Drop completions the arrival has already passed; what remains (plus the
  // grant being issued) is the queue depth this request observed.
  auto it = std::remove_if(outstanding_.begin(), outstanding_.end(),
                           [arrival_ns](double d) { return d <= arrival_ns; });
  outstanding_.erase(it, outstanding_.end());
  return static_cast<std::uint64_t>(outstanding_.size()) + 1;
}

double QosShare(const TenantClass& cls, const ServerSched::PolicyContext& ctx) {
  if (ctx.discipline == QosDiscipline::kWfq)
    return cls.weight / std::max(ctx.max_weight, TenantClass::kMinWeight);
  if (ctx.discipline == QosDiscipline::kEdf) {
    // Deadline holders are released immediately; everyone else yields a
    // background share while any registered tenant holds a deadline.
    if (cls.deadline_ns <= 0.0 && ctx.any_deadline)
      return ctx.edf_background_share;
  }
  return 1.0;
}

double TenantPacer::Release(double eligible_ns, double service_ns,
                            double share) {
  if (share >= 1.0) return eligible_ns;  // unpaced: the clock never engages
  const double release = std::max(eligible_ns, vclock_);
  vclock_ = release + service_ns / std::max(share, TenantClass::kMinWeight /
                                                       TenantClass::kMaxWeight);
  return release;
}

ServerSched::Grant ServerSched::Admit(const PolicyContext& ctx,
                                      double arrival_ns, double eligible_ns,
                                      double request_ns, double payload_ns) {
  Grant g;
  g.depth = DepthAt(arrival_ns);

  // --- placement -----------------------------------------------------------
  if (ctx.discipline != QosDiscipline::kFcfs) {
    // First fit into a pacing gap. Gaps only ever exist when some event was
    // artificially delayed past the queue tail (see below), so with no
    // pacing this scan never finds anything and placement is pure FCFS.
    for (auto it = gaps_.begin(); it != gaps_.end(); ++it) {
      const double begin = std::max(it->begin, eligible_ns);
      const double done = begin + request_ns + payload_ns;
      if (done > it->end) continue;
      g.begin_ns = begin;
      g.done_ns = done;
      g.backfilled = true;
      // Split the gap around the placed event; slivers under 1 ns are noise.
      const Gap before{it->begin, begin};
      const Gap after{done, it->end};
      it = gaps_.erase(it);
      if (after.end - after.begin >= 1.0) it = gaps_.insert(it, after);
      if (before.end - before.begin >= 1.0) gaps_.insert(it, before);
      busy_ns_ += g.done_ns - g.begin_ns;
      horizon_ns_ = std::max(horizon_ns_, g.done_ns);
      NoteOutstanding(g.done_ns);
      return g;
    }
  }

  // Append at the tail — the legacy FCFS arithmetic, preserved bit for bit:
  // begin = max(eligible, next_free); done = begin + request + payload.
  const double begin = std::max(eligible_ns, next_free_);
  const double done = begin + request_ns + payload_ns;
  // An *artificial* delay (pacing or admission pushed eligibility past the
  // arrival) that lands beyond the queue tail leaves a hole other tenants
  // may backfill. Natural idle time (arrival itself past the tail) is not
  // recorded: legacy FCFS never backfills it, and treating it as usable
  // would break bit-identity between equal-weight WFQ and FCFS.
  if (ctx.discipline != QosDiscipline::kFcfs && eligible_ns > arrival_ns &&
      begin - next_free_ >= 1.0) {
    gaps_.push_back(Gap{next_free_, begin});
    if (gaps_.size() > kMaxGaps) gaps_.pop_front();
  }
  next_free_ = done;
  busy_ns_ += done - begin;
  horizon_ns_ = std::max(horizon_ns_, done);
  NoteOutstanding(done);
  g.begin_ns = begin;
  g.done_ns = done;
  return g;
}

}  // namespace pfs
