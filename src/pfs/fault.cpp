#include "pfs/fault.hpp"

#include <algorithm>

#include "pfs/pfs.hpp"

namespace pfs {

FaultInjector::FaultInjector(FaultPolicy policy)
    : policy_(std::move(policy)), rng_(policy_.seed) {}

FaultDecision FaultInjector::Decide(bool is_write, std::uint64_t len,
                                    int server, double now_ns) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t op = next_op_++;
  ++counters_.faultable_ops;
  FaultDecision d;
  // A crashed incarnation refuses everything until SetPolicy (reboot).
  if (crashed_) {
    ++counters_.crashes;
    d.kind = FaultDecision::Kind::kCrash;
    return d;
  }
  if (!policy_.Any()) return d;

  auto listed = [op](const std::vector<std::uint64_t>& ops) {
    return std::find(ops.begin(), ops.end(), op) != ops.end();
  };

  // Crash points outrank every other fault: once the power fails, nothing
  // else about this op matters.
  if (policy_.crash_after_write_bytes != FaultPolicy::kNever) {
    const std::uint64_t at = policy_.crash_after_write_bytes;
    if (written_bytes_ >= at) {
      // Threshold fell between writes: this op (any kind) dies, no bytes.
      crashed_ = true;
      ++counters_.crashes;
      d.kind = FaultDecision::Kind::kCrash;
      return d;
    }
    if (is_write && len > 0 && written_bytes_ + len >= at) {
      crashed_ = true;
      ++counters_.crashes;
      d.kind = FaultDecision::Kind::kCrash;
      d.torn_bytes = at - written_bytes_;  // may equal len: landed, no ack
      written_bytes_ += d.torn_bytes;
      return d;
    }
  }
  if (op == policy_.crash_op) {
    crashed_ = true;
    ++counters_.crashes;
    d.kind = FaultDecision::Kind::kCrash;
    if (is_write)
      d.torn_bytes = std::min<std::uint64_t>(policy_.crash_write_bytes, len);
    written_bytes_ += d.torn_bytes;
    return d;
  }

  // Precedence: permanent > outage > transient > short > bit flip. One op
  // suffers at most one fault.
  if (op >= policy_.permanent_from || listed(policy_.permanent_ops)) {
    ++counters_.permanent_faults;
    d.kind = FaultDecision::Kind::kPermanent;
    return d;
  }
  bool transient = listed(policy_.transient_ops);
  if (!transient && policy_.transient_every_nth != 0)
    transient = op % policy_.transient_every_nth ==
                policy_.transient_every_nth - 1;
  if (!transient) {
    for (const auto& o : policy_.outages)
      if (o.server == server && now_ns >= o.begin_ns && now_ns < o.end_ns) {
        transient = true;
        break;
      }
  }
  if (!transient) {
    const double p =
        is_write ? policy_.transient_write_prob : policy_.transient_read_prob;
    if (p > 0 && rng_.NextDouble() < p) transient = true;
  }
  if (transient) {
    ++counters_.transient_faults;
    d.kind = FaultDecision::Kind::kTransient;
    return d;
  }

  // Short transfers need at least 2 bytes so the prefix makes progress.
  const double sp =
      is_write ? policy_.short_write_prob : policy_.short_read_prob;
  if (sp > 0 && len >= 2 && rng_.NextDouble() < sp) {
    (is_write ? counters_.short_writes : counters_.short_reads) += 1;
    d.kind = FaultDecision::Kind::kShort;
    d.short_bytes = std::max<std::uint64_t>(1, len / 2);
    if (is_write) written_bytes_ += d.short_bytes;
    return d;
  }

  if (!is_write && policy_.bitflip_read_prob > 0 && len > 0 &&
      rng_.NextDouble() < policy_.bitflip_read_prob) {
    d.kind = FaultDecision::Kind::kBitFlip;
    d.flip_byte = rng_.Below(len);
    d.flip_bit = static_cast<unsigned>(rng_.Below(8));
    return d;
  }
  if (is_write && policy_.bitflip_write_prob > 0 && len > 0 &&
      rng_.NextDouble() < policy_.bitflip_write_prob) {
    d.kind = FaultDecision::Kind::kBitFlip;
    d.flip_byte = rng_.Below(len);
    d.flip_bit = static_cast<unsigned>(rng_.Below(8));
    written_bytes_ += len;  // the (corrupted) write lands in full
    return d;
  }
  if (!is_write && policy_.corrupt_at_rest > 0 && len > 0 &&
      rng_.NextDouble() < policy_.corrupt_at_rest) {
    d.kind = FaultDecision::Kind::kAtRest;
    d.flip_byte = rng_.Below(len);
    d.flip_bit = static_cast<unsigned>(rng_.Below(8));
    return d;
  }
  if (is_write) written_bytes_ += len;
  return d;
}

void FaultInjector::CountBitflip() {
  std::lock_guard<std::mutex> lk(mu_);
  ++counters_.bitflips;
}

void FaultInjector::CountWriteBitflip() {
  std::lock_guard<std::mutex> lk(mu_);
  ++counters_.write_bitflips;
}

void FaultInjector::CountAtRestCorruption() {
  std::lock_guard<std::mutex> lk(mu_);
  ++counters_.at_rest_corruptions;
}

void FaultInjector::SetPolicy(const FaultPolicy& policy) {
  std::lock_guard<std::mutex> lk(mu_);
  policy_ = policy;
  rng_ = pnc::SplitMix64(policy.seed);
  // Op indices in a policy (transient_ops, permanent_from, ...) are relative
  // to the moment the policy is armed, not to FileSystem construction —
  // otherwise a schedule would silently shift with every unrelated open.
  next_op_ = 0;
  // Arming a policy is a reboot: the frozen incarnation ends, the written-
  // byte odometer (what crash_after_write_bytes counts against) rewinds.
  written_bytes_ = 0;
  crashed_ = false;
}

bool FaultInjector::crashed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return crashed_;
}

FaultPolicy FaultInjector::policy() const {
  std::lock_guard<std::mutex> lk(mu_);
  return policy_;
}

FaultCounters FaultInjector::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_;
}

void FaultInjector::ResetCounters() {
  std::lock_guard<std::mutex> lk(mu_);
  counters_ = FaultCounters{};
}

// --------------------------------------------------------- FaultyByteStore

FaultyByteStore::Outcome FaultyByteStore::FaultedWrite(std::uint64_t offset,
                                                       pnc::ConstByteSpan data,
                                                       int server,
                                                       double now_ns) {
  const FaultDecision d =
      injector_->Decide(/*is_write=*/true, data.size(), server, now_ns);
  switch (d.kind) {
    case FaultDecision::Kind::kTransient:
      return {pnc::Status(pnc::Err::kIoTransient, "injected transient fault"),
              0};
    case FaultDecision::Kind::kPermanent:
      return {pnc::Status(pnc::Err::kIo, "injected permanent fault"), 0};
    case FaultDecision::Kind::kCrash:
      // Power loss mid-write: a torn prefix lands, the ack never arrives.
      if (d.torn_bytes > 0) inner_->Write(offset, data.first(d.torn_bytes));
      return {pnc::Status(pnc::Err::kIo, "injected crash: image frozen"), 0};
    case FaultDecision::Kind::kShort:
      inner_->Write(offset, data.first(d.short_bytes));
      return {pnc::Status::Ok(), d.short_bytes};
    case FaultDecision::Kind::kBitFlip: {
      // The write "succeeds", but the medium stores one flipped bit. The
      // caller's buffer is untouched — only a later read can notice.
      std::vector<std::byte> corrupted(data.begin(), data.end());
      corrupted[static_cast<std::size_t>(d.flip_byte)] ^=
          static_cast<std::byte>(1u << d.flip_bit);
      inner_->Write(offset, corrupted);
      injector_->CountWriteBitflip();
      return {pnc::Status::Ok(), data.size()};
    }
    default:
      inner_->Write(offset, data);
      return {pnc::Status::Ok(), data.size()};
  }
}

FaultyByteStore::Outcome FaultyByteStore::FaultedRead(std::uint64_t offset,
                                                      pnc::ByteSpan out,
                                                      int server,
                                                      double now_ns) const {
  const FaultDecision d =
      injector_->Decide(/*is_write=*/false, out.size(), server, now_ns);
  switch (d.kind) {
    case FaultDecision::Kind::kTransient:
      return {pnc::Status(pnc::Err::kIoTransient, "injected transient fault"),
              0};
    case FaultDecision::Kind::kPermanent:
      return {pnc::Status(pnc::Err::kIo, "injected permanent fault"), 0};
    case FaultDecision::Kind::kCrash:
      return {pnc::Status(pnc::Err::kIo, "injected crash: image frozen"), 0};
    case FaultDecision::Kind::kShort:
      inner_->Read(offset, out.first(d.short_bytes));
      return {pnc::Status::Ok(), d.short_bytes};
    case FaultDecision::Kind::kBitFlip: {
      inner_->Read(offset, out);
      out[static_cast<std::size_t>(d.flip_byte)] ^=
          static_cast<std::byte>(1u << d.flip_bit);
      injector_->CountBitflip();
      return {pnc::Status::Ok(), out.size()};
    }
    case FaultDecision::Kind::kAtRest: {
      // Medium decay: flip the bit on storage itself, then serve the read
      // from the damaged bytes. Retries re-read the same corruption.
      inner_->Read(offset, out);
      out[static_cast<std::size_t>(d.flip_byte)] ^=
          static_cast<std::byte>(1u << d.flip_bit);
      inner_->Write(offset + d.flip_byte,
                    pnc::ConstByteSpan(out.data() + d.flip_byte, 1));
      injector_->CountAtRestCorruption();
      return {pnc::Status::Ok(), out.size()};
    }
    default:
      inner_->Read(offset, out);
      return {pnc::Status::Ok(), out.size()};
  }
}

}  // namespace pfs
