// Per-server request scheduling with tenant QoS classes.
//
// The paper's model assumes one job owns the file system, so pfs served every
// request FCFS along a single `server_next_free_` timeline. A shared service
// (ROADMAP: "Multi-tenant I/O service") needs the servers themselves to
// arbitrate between competing client groups — the ViPIOS position, where
// autonomous server processes schedule requests, and the reason bursty
// two-phase collective traffic (Thakur/Gropp/Lusk) starves anyone queued
// behind it under FCFS.
//
// This module replaces the implicit FCFS timeline with a pluggable per-server
// discipline:
//
//   * kFcfs — the legacy behavior, bit for bit. The FCFS arithmetic is kept
//     in exactly the legacy association (`begin = max(arrival, next_free)`,
//     `done = begin + request_ns + payload_ns`) so every committed virtual-
//     time baseline (smoke, chaos) is unchanged when no policy is armed.
//   * kWfq — weighted fairness by tenant, realized as Virtual Clock pacing
//     (Zhang '90): weights are *relative*; tenants at the maximum registered
//     weight are never paced, a tenant with weight w is released at rate
//     w / w_max of the server. Pacing pushes a request's eligible time past
//     the end of the queue, which opens a gap in the server timeline; other
//     tenants' requests backfill those gaps (first fit). With equal weights
//     nothing is ever paced, no gap ever opens, and the schedule is
//     bit-identical to FCFS (qos_test asserts this).
//   * kEdf — deadline tenants are released immediately and backfill gaps
//     first (earliest-deadline traffic is by construction the eligible-
//     earliest); tenants with no deadline are paced to a background share
//     while any registered tenant holds a deadline. With a single tenant
//     (everyone holds the same deadline, or nobody does) the schedule is
//     again bit-identical to FCFS.
//
// Admission control is orthogonal to the discipline: a tenant with an
// outstanding-bytes cap has requests held at the *client* side — eligibility
// is delayed until enough of its in-flight bytes complete. Backpressure
// surfaces as queue-wait in the tenant's counters, never as an error.
//
// Scheduling happens at grant time: pfs must return a request's completion
// time synchronously (clients block on virtual time), so a discipline cannot
// retroactively reorder the queue. It shapes *eligibility* (when a request
// may start competing) and *placement* (append to the tail or backfill a
// pacing gap). The determinism argument in DESIGN.md §9 builds on this.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

namespace pfs {

/// Queue discipline applied independently at every server.
enum class QosDiscipline { kFcfs, kWfq, kEdf };

const char* QosDisciplineName(QosDiscipline d);
/// Parse "fcfs" / "wfq" / "edf" (case-sensitive); nullopt otherwise.
std::optional<QosDiscipline> ParseQosDiscipline(const std::string& s);

/// A tenant's identity and QoS class. Registered once per FileSystem (interned
/// by name); re-registering the same name updates the class.
struct TenantClass {
  std::string name;  ///< "" is the default tenant (always weight 1, no QoS)
  /// WFQ weight, clamped into [kMinWeight, kMaxWeight]. Relative: the
  /// max-weight tenant runs unpaced; weight w is paced to w / w_max.
  double weight = 1.0;
  /// EDF deadline per request (ns of virtual time from issue to completion);
  /// 0 = no deadline. Completions past the deadline count as misses.
  double deadline_ns = 0.0;
  /// Admission cap on this tenant's in-flight bytes across the whole file
  /// system; 0 = unlimited.
  std::uint64_t max_outstanding_bytes = 0;

  static constexpr double kMinWeight = 1.0 / 64.0;
  static constexpr double kMaxWeight = 64.0;
};

/// File-system-wide QoS policy. Default (kFcfs) = nothing armed.
struct QosPolicy {
  QosDiscipline discipline = QosDiscipline::kFcfs;
  /// Under EDF, the pacing share granted to tenants without a deadline while
  /// some registered tenant holds one.
  double edf_background_share = 0.25;
};

/// Per-tenant service counters, maintained by the FileSystem under its lock.
struct TenantCounters {
  std::uint64_t server_events = 0;    ///< per-(request, server) grants
  std::uint64_t served_bytes = 0;     ///< payload bytes granted
  double queue_wait_ns = 0.0;         ///< sum over grants of begin - arrival
  double service_ns = 0.0;            ///< sum over grants of done - begin
  double admission_wait_ns = 0.0;     ///< part of queue-wait due to the cap
  std::uint64_t paced_events = 0;     ///< grants delayed by WFQ/EDF pacing
  std::uint64_t backfilled_events = 0;///< grants placed into a pacing gap
  std::uint64_t deadline_misses = 0;  ///< requests completing past deadline
  /// Per-request queue wait (max over the request's server grants), capped at
  /// kMaxWaitSamples; feeds tail-latency percentiles in benches and tests.
  std::vector<double> wait_samples;

  static constexpr std::size_t kMaxWaitSamples = 1 << 14;
};

/// Snapshot of one tenant (FileSystem::TenantUsageSnapshot).
struct TenantUsage {
  TenantClass cls;
  TenantCounters ctr;
};

/// Percentile (pct in [0,100]) of a wait-sample vector; 0 when empty.
/// Nearest-rank on a sorted copy — robust for gate thresholds.
double WaitPercentile(std::vector<double> samples, double pct);

/// Tenant identity resolved from the environment: PNC_TENANT (name; unset or
/// empty = default tenant), PNC_QOS_WEIGHT, PNC_QOS_DEADLINE_NS,
/// PNC_QOS_CAP_BYTES. Values are checked and clamped like every other PNC_*
/// variable (util/env.hpp: malformed values warn once and fall back).
TenantClass TenantClassFromEnv();

/// One server's schedule. All methods are called by the FileSystem under its
/// own mutex — this class is deliberately lock-free/single-threaded.
class ServerSched {
 public:
  /// Inputs a discipline needs beyond the request itself.
  struct PolicyContext {
    QosDiscipline discipline = QosDiscipline::kFcfs;
    double edf_background_share = 0.25;
    double max_weight = 1.0;      ///< max weight over registered tenants
    bool any_deadline = false;    ///< some registered tenant has a deadline
  };

  /// Outcome of scheduling one per-server service event.
  struct Grant {
    double begin_ns = 0.0;
    double done_ns = 0.0;
    std::uint64_t depth = 0;  ///< grants in flight at arrival (incl. this one)
    bool paced = false;       ///< eligibility was pushed by pacing
    bool backfilled = false;  ///< placed into a pacing gap, not appended
  };

  /// Place a service event of `request_ns + payload_ns`. `arrival_ns` is when
  /// the request reached the file system; `eligible_ns` (>= arrival) carries
  /// any artificial delay — admission control and TenantPacer pacing, both
  /// applied per *request* by the FileSystem before the per-server fan-out,
  /// so every server of a striped request sees the same eligibility. An
  /// artificially delayed append records the hole it leaves as a backfillable
  /// gap. The FCFS path and the unpaced WFQ/EDF append path compute times
  /// with the exact legacy arithmetic (see file comment).
  Grant Admit(const PolicyContext& ctx, double arrival_ns, double eligible_ns,
              double request_ns, double payload_ns);

  /// Head of the appended timeline (legacy `server_next_free_[s]`): the time
  /// a newly appended request would have to wait for. Zero-length flushes
  /// observe this without extending it.
  [[nodiscard]] double next_free() const { return next_free_; }
  /// Where a zero-length flush (a metadata round trip of `service_ns`) would
  /// begin: the first pacing gap that can hold it, else the legacy
  /// `max(eligible, next_free)`. Non-mutating — flushes never extend the
  /// timeline or consume gap capacity — and exactly the legacy expression
  /// when no gaps exist (i.e. whenever no policy is armed), so arming a
  /// discipline cannot move an unpaced workload's flush times.
  [[nodiscard]] double FlushBeginAt(double eligible_ns,
                                    double service_ns) const;
  /// Total service time granted on this server since the last Reset.
  [[nodiscard]] double busy_ns() const { return busy_ns_; }
  /// Latest completion granted (the server's schedule horizon).
  [[nodiscard]] double horizon_ns() const { return horizon_ns_; }

  /// Back to an idle timeline (FileSystem::ResetTime).
  void Reset();

 private:
  struct Gap {
    double begin;
    double end;
  };

  /// Pacing gaps are pruned beyond this many entries (oldest first); a
  /// pruned gap can never be backfilled again, which only delays work —
  /// it can never move a grant earlier, so determinism is unaffected.
  static constexpr std::size_t kMaxGaps = 128;
  /// Outstanding completion times kept for the queue-depth gauge.
  static constexpr std::size_t kMaxOutstanding = 4096;

  void NoteOutstanding(double done_ns);
  [[nodiscard]] std::uint64_t DepthAt(double arrival_ns);

  double next_free_ = 0.0;
  double busy_ns_ = 0.0;
  double horizon_ns_ = 0.0;
  std::deque<Gap> gaps_;             ///< pacing holes, sorted, disjoint
  std::vector<double> outstanding_;  ///< completion times not yet passed
};

/// The pacing share a tenant is entitled to under `ctx` — 1.0 means unpaced.
/// WFQ: weight / max registered weight. EDF: deadline holders are unpaced;
/// deadline-less tenants get the background share while any deadline exists.
double QosShare(const TenantClass& cls, const ServerSched::PolicyContext& ctx);

/// Virtual Clock pacing state, one per tenant, owned by the FileSystem.
/// Pacing is a per-request decision made *before* the per-server fan-out: a
/// request of total service S (summed over its servers) may become eligible
/// no earlier than the clock, and pushes the clock S/share further. Pacing
/// per request — not per server — is what keeps a striped request's chunks
/// uniformly delayed, so every touched server records a backfillable gap
/// instead of only the first (qos_test pins this).
class TenantPacer {
 public:
  /// Returns the paced eligibility (== eligible_ns when share >= 1, i.e.
  /// unpaced; the clock is not engaged in that case).
  double Release(double eligible_ns, double service_ns, double share);
  void Reset() { vclock_ = 0.0; }

 private:
  double vclock_ = 0.0;
};

}  // namespace pfs
