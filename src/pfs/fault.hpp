// Fault injection for the simulated parallel file system.
//
// The paper's testbeds run GPFS over dedicated I/O server nodes, where
// transient server errors, short reads/writes, and occasional corruption are
// part of the contract an MPI-IO implementation must absorb (ROMIO retries
// interrupted POSIX calls; collective I/O must surface a failure identically
// on every rank). This module lets tests and benchmarks script such failures
// deterministically:
//
//   * transient errors  — fail once, succeed when retried (pnc::Err::
//     kIoTransient); injected by op index, by seeded probability, or by
//     per-server outage windows in virtual time;
//   * permanent errors  — fail every attempt (pnc::Err::kIo);
//   * short reads/writes — transfer only a prefix of the request, reported
//     truthfully so callers resume from the transferred count (POSIX
//     semantics); never silently torn;
//   * bit-flip corruption — reads return data with one flipped bit (silent:
//     status is OK, which is exactly what makes it dangerous).
//
// All randomness derives from the policy seed via util/rng.hpp, so a fault
// schedule is reproducible run-to-run. Every injected event is counted and
// surfaced through pfs::Stats.
//
// A faulted *write* stores nothing at all: the visible file content after a
// failed write is either the old bytes or the new bytes, never a garbage
// mixture. (A short write stores a prefix, but reports the count, so the
// caller knows exactly how far it got.)
//
// Crash points are the exception that proves the rule: a crash (simulated
// power loss) tears the in-flight write at an arbitrary byte boundary —
// exactly the hazard the netCDF commit protocol must survive — and freezes
// the whole file system: every later fault-injectable op on this incarnation
// fails until the next SetPolicy() call, which models a reboot. The harness
// path keeps working after a crash so tests can inspect the frozen image.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "util/rng.hpp"

namespace pfs {

/// Declarative fault schedule. Default-constructed = no faults.
struct FaultPolicy {
  static constexpr std::uint64_t kNever = ~0ULL;

  std::uint64_t seed = 0x5EEDF417ULL;

  // --- transient errors (retry may succeed) ---
  /// Every op whose global index appears here fails transiently. Note that a
  /// retry is a *new* op with the next index, so `{5}` fails exactly once.
  std::vector<std::uint64_t> transient_ops;
  /// Op index i fails transiently iff i % n == n - 1 (0 = off). A retry is
  /// the next op index, so with n >= 2 the retry always succeeds.
  std::uint64_t transient_every_nth = 0;
  /// Seeded per-op probability of a transient failure.
  double transient_read_prob = 0.0;
  double transient_write_prob = 0.0;

  /// A server outage window in virtual time: every op whose primary server
  /// is `server` and whose issue time falls in [begin_ns, end_ns) fails
  /// transiently. Retry-with-backoff walks the clock past the window.
  struct Outage {
    int server = 0;
    double begin_ns = 0.0;
    double end_ns = 0.0;
  };
  std::vector<Outage> outages;

  // --- permanent errors (no retry helps) ---
  std::vector<std::uint64_t> permanent_ops;
  /// All ops with index >= this fail permanently (kNever = off).
  std::uint64_t permanent_from = kNever;

  // --- short transfers (ok status, partial byte count) ---
  double short_read_prob = 0.0;
  double short_write_prob = 0.0;

  // --- silent corruption ---
  /// Seeded per-read probability that one bit of the returned data flips.
  /// Transient: the stored bytes stay intact, so a re-read heals.
  double bitflip_read_prob = 0.0;
  /// Seeded per-write probability that one bit of the *stored* payload
  /// flips: the write reports success, but the medium keeps the flipped
  /// byte. Every later read of that byte sees the corruption.
  double bitflip_write_prob = 0.0;
  /// Seeded per-read probability of at-rest decay: one bit inside the
  /// accessed range flips on the medium itself (persisted), and the read
  /// returns the corrupted bytes. Unlike bitflip_read_prob, a retry
  /// re-reads the same damage — only a checksum can tell.
  double corrupt_at_rest = 0.0;

  // --- crash points (simulated power loss) ---
  /// Scripted crash: the op with this index crashes the file system. If it
  /// is a write, `crash_write_bytes` of its payload land first (a torn
  /// prefix); then the image freezes and every later op fails (kNever = off).
  std::uint64_t crash_op = kNever;
  /// Bytes of the crashing write stored before the power fails (clamped to
  /// the request size). 0 = the write vanishes entirely.
  std::uint64_t crash_write_bytes = 0;
  /// Byte-granular sweep trigger: crash the instant cumulative Try-written
  /// bytes (counted since the policy was armed) reach this threshold. The
  /// in-flight write is torn at exactly the threshold; when the threshold
  /// lands between writes, the next op of any kind dies with nothing stored.
  /// Sweeping this value over [0, total] hits every byte boundary of a
  /// commit sequence (kNever = off).
  std::uint64_t crash_after_write_bytes = kNever;

  [[nodiscard]] bool Any() const {
    return !transient_ops.empty() || transient_every_nth != 0 ||
           transient_read_prob > 0 || transient_write_prob > 0 ||
           !outages.empty() || !permanent_ops.empty() ||
           permanent_from != kNever || short_read_prob > 0 ||
           short_write_prob > 0 || bitflip_read_prob > 0 ||
           bitflip_write_prob > 0 || corrupt_at_rest > 0 ||
           crash_op != kNever || crash_after_write_bytes != kNever;
  }
};

/// Counters for every injected event (merged into pfs::Stats).
struct FaultCounters {
  std::uint64_t transient_faults = 0;
  std::uint64_t permanent_faults = 0;
  std::uint64_t short_reads = 0;
  std::uint64_t short_writes = 0;
  std::uint64_t bitflips = 0;        ///< transient read-side flips
  std::uint64_t write_bitflips = 0;  ///< flips persisted by a write
  std::uint64_t at_rest_corruptions = 0;  ///< flips decayed on the medium
  std::uint64_t crashes = 0;  ///< ops refused because the image is frozen
  std::uint64_t faultable_ops = 0;  ///< ops that consulted the injector
};

/// What the injector decided for one op.
struct FaultDecision {
  enum class Kind {
    kOk, kTransient, kPermanent, kShort, kBitFlip, kAtRest, kCrash
  };
  Kind kind = Kind::kOk;
  std::uint64_t short_bytes = 0;  ///< kShort: bytes to actually transfer
  std::uint64_t flip_byte = 0;    ///< kBitFlip/kAtRest: byte index within
                                  ///< the request
  unsigned flip_bit = 0;          ///< kBitFlip/kAtRest: bit in that byte
  std::uint64_t torn_bytes = 0;   ///< kCrash on a write: prefix that lands
};

/// Seeded, thread-safe decision engine shared by all files of a FileSystem.
/// One global op counter orders all fault-injectable operations, so a
/// schedule written as op indices is exact even under concurrent ranks
/// (simmpi rank threads serialize through the FileSystem anyway).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPolicy policy = {});

  /// Decide the fate of one I/O op. `server` is the op's primary server
  /// (first stripe touched), `now_ns` its issue time on the virtual clock.
  FaultDecision Decide(bool is_write, std::uint64_t len, int server,
                       double now_ns);

  /// Record a bit flip actually applied (kept separate from Decide so the
  /// decision and the data mutation stay in one critical section each).
  void CountBitflip();
  /// Record a persisted write-side flip actually applied.
  void CountWriteBitflip();
  /// Record an at-rest decay actually applied.
  void CountAtRestCorruption();

  /// Replaces the schedule and reboots: the crashed state and the cumulative
  /// written-byte counter are cleared along with the op counter.
  void SetPolicy(const FaultPolicy& policy);
  [[nodiscard]] FaultPolicy policy() const;
  [[nodiscard]] FaultCounters counters() const;
  void ResetCounters();

  /// True once a crash point fired; stays true until SetPolicy (reboot).
  [[nodiscard]] bool crashed() const;

 private:
  mutable std::mutex mu_;
  FaultPolicy policy_;
  pnc::SplitMix64 rng_;
  std::uint64_t next_op_ = 0;
  std::uint64_t written_bytes_ = 0;  ///< cumulative Try-written since arming
  bool crashed_ = false;
  FaultCounters counters_;
};

}  // namespace pfs
