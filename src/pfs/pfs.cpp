#include "pfs/pfs.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "iostat/events.hpp"
#include "iostat/iostat.hpp"
#include "iostat/pattern.hpp"
#include "iostat/timeline.hpp"

namespace pfs {

// ---------------------------------------------------------------- MemStore

void MemStore::Write(std::uint64_t offset, pnc::ConstByteSpan data) {
  std::uint64_t pos = offset;
  std::size_t consumed = 0;
  while (consumed < data.size()) {
    const std::uint64_t chunk_id = pos / kChunk;
    const std::uint64_t in_chunk = pos % kChunk;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(kChunk - in_chunk, data.size() - consumed));
    auto& chunk = chunks_[chunk_id];
    if (chunk.empty()) chunk.resize(kChunk);
    std::memcpy(chunk.data() + in_chunk, data.data() + consumed, n);
    pos += n;
    consumed += n;
  }
  size_ = std::max(size_, offset + data.size());
}

void MemStore::Read(std::uint64_t offset, pnc::ByteSpan out) const {
  std::uint64_t pos = offset;
  std::size_t produced = 0;
  while (produced < out.size()) {
    const std::uint64_t chunk_id = pos / kChunk;
    const std::uint64_t in_chunk = pos % kChunk;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(kChunk - in_chunk, out.size() - produced));
    auto it = chunks_.find(chunk_id);
    if (it == chunks_.end()) {
      std::memset(out.data() + produced, 0, n);
    } else {
      std::memcpy(out.data() + produced, it->second.data() + in_chunk, n);
    }
    pos += n;
    produced += n;
  }
}

void MemStore::Truncate(std::uint64_t new_size) {
  // Drop chunks entirely beyond the new size and zero the tail of the chunk
  // that straddles it, so re-extension reads back zeros.
  const std::uint64_t first_dead = (new_size + kChunk - 1) / kChunk;
  chunks_.erase(chunks_.lower_bound(first_dead), chunks_.end());
  if (new_size % kChunk != 0) {
    auto it = chunks_.find(new_size / kChunk);
    if (it != chunks_.end()) {
      std::memset(it->second.data() + new_size % kChunk, 0,
                  static_cast<std::size_t>(kChunk - new_size % kChunk));
    }
  }
  size_ = new_size;
}

// --------------------------------------------------------------- FileStore

pnc::Result<std::unique_ptr<FileStore>> FileStore::Open(const std::string& path,
                                                        bool truncate) {
  int flags = O_RDWR | O_CREAT | (truncate ? O_TRUNC : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return pnc::Status(pnc::Err::kIo, "open " + path);
  return std::unique_ptr<FileStore>(new FileStore(fd));
}

FileStore::~FileStore() {
  if (fd_ >= 0) ::close(fd_);
}

void FileStore::Write(std::uint64_t offset, pnc::ConstByteSpan data) {
  std::size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::pwrite(fd_, data.data() + done, data.size() - done,
                         static_cast<off_t>(offset + done));
    if (n <= 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("pwrite failed");
    }
    done += static_cast<std::size_t>(n);
  }
}

void FileStore::Read(std::uint64_t offset, pnc::ByteSpan out) const {
  std::size_t done = 0;
  while (done < out.size()) {
    ssize_t n = ::pread(fd_, out.data() + done, out.size() - done,
                        static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("pread failed");
    }
    if (n == 0) {  // past EOF: holes read as zeros
      std::memset(out.data() + done, 0, out.size() - done);
      return;
    }
    done += static_cast<std::size_t>(n);
  }
}

std::uint64_t FileStore::size() const {
  struct stat st{};
  if (::fstat(fd_, &st) != 0) return 0;
  return static_cast<std::uint64_t>(st.st_size);
}

void FileStore::Truncate(std::uint64_t new_size) {
  (void)::ftruncate(fd_, static_cast<off_t>(new_size));
}

// -------------------------------------------------------------------- File

struct File::Node {
  std::string path;
  std::mutex mu;  ///< serializes data access on this file
  std::mutex rmw_mu;  ///< advisory lock spanning read-modify-write sequences
  std::unique_ptr<ByteStore> store;  ///< always a FaultyByteStore decorator
  FaultyByteStore* faulty = nullptr;  ///< same object, decorated view
  std::uint64_t discarded_size = 0;  ///< logical size under discard_data
};

double File::HarnessRead(std::uint64_t offset, pnc::ByteSpan out,
                         double start_ns) {
  {
    std::lock_guard<std::mutex> lk(node_->mu);
    node_->store->Read(offset, out);
  }
  return fs_->ServeRequest(offset, out.size(), /*is_write=*/false,
                           start_ns, tenant_);
}

double File::HarnessWrite(std::uint64_t offset, pnc::ConstByteSpan data,
                          double start_ns) {
  {
    std::lock_guard<std::mutex> lk(node_->mu);
    if (fs_->cfg_.discard_data) {
      node_->discarded_size =
          std::max(node_->discarded_size, offset + data.size());
    } else {
      node_->store->Write(offset, data);
    }
  }
  return fs_->ServeRequest(offset, data.size(), /*is_write=*/true,
                           start_ns, tenant_);
}

IoResult File::TryRead(std::uint64_t offset, pnc::ByteSpan out,
                       double start_ns) {
  FaultyByteStore::Outcome oc;
  {
    std::lock_guard<std::mutex> lk(node_->mu);
    oc = node_->faulty->FaultedRead(offset, out, fs_->PrimaryServer(offset),
                                    start_ns);
  }
  if (!oc.status.ok()) {
    PNC_IOSTAT_ADD(kPfsFaultsInjected, 1);
    PNC_IOSTAT_TIMELINE_MARK(kFaults, start_ns, 1);
    const bool transient = oc.status.code() == pnc::Err::kIoTransient;
    PNC_IOSTAT_EVENT(kPfsFault, start_ns, 0, /*is_write=*/0, 0,
                     transient ? "transient"
                               : (fs_->crashed() ? "crash" : "permanent"));
    if (!transient) PNC_IOSTAT_EVENT_DUMP_HARD("pfs-hard-fault");
  }
  // A failed attempt still costs a (zero-payload) round trip: the request
  // reached the servers before the error came back.
  const double done = fs_->ServeRequest(offset, oc.status.ok() ? oc.transferred
                                                               : 0,
                                        /*is_write=*/false, start_ns, tenant_);
  return {oc.status, oc.transferred, done};
}

IoResult File::TryWrite(std::uint64_t offset, pnc::ConstByteSpan data,
                        double start_ns) {
  FaultyByteStore::Outcome oc;
  {
    std::lock_guard<std::mutex> lk(node_->mu);
    if (fs_->cfg_.discard_data) {
      // No bytes stored in discard mode, but the fault schedule still
      // applies so benchmarks can measure retry overhead at scale.
      const FaultDecision d = fs_->injector_->Decide(
          /*is_write=*/true, data.size(), fs_->PrimaryServer(offset),
          start_ns);
      if (d.kind == FaultDecision::Kind::kTransient) {
        oc = {pnc::Status(pnc::Err::kIoTransient, "injected transient fault"),
              0};
      } else if (d.kind == FaultDecision::Kind::kPermanent) {
        oc = {pnc::Status(pnc::Err::kIo, "injected permanent fault"), 0};
      } else if (d.kind == FaultDecision::Kind::kCrash) {
        node_->discarded_size =
            std::max(node_->discarded_size, offset + d.torn_bytes);
        oc = {pnc::Status(pnc::Err::kIo, "injected crash: image frozen"), 0};
      } else {
        const std::uint64_t n = d.kind == FaultDecision::Kind::kShort
                                    ? d.short_bytes
                                    : data.size();
        node_->discarded_size = std::max(node_->discarded_size, offset + n);
        oc = {pnc::Status::Ok(), n};
      }
    } else {
      oc = node_->faulty->FaultedWrite(offset, data, fs_->PrimaryServer(offset),
                                       start_ns);
    }
  }
  if (!oc.status.ok()) {
    PNC_IOSTAT_ADD(kPfsFaultsInjected, 1);
    PNC_IOSTAT_TIMELINE_MARK(kFaults, start_ns, 1);
    const bool transient = oc.status.code() == pnc::Err::kIoTransient;
    PNC_IOSTAT_EVENT(kPfsFault, start_ns, 0, /*is_write=*/1, 0,
                     transient ? "transient"
                               : (fs_->crashed() ? "crash" : "permanent"));
    if (!transient) PNC_IOSTAT_EVENT_DUMP_HARD("pfs-hard-fault");
  }
  const double done = fs_->ServeRequest(offset, oc.status.ok() ? oc.transferred
                                                               : 0,
                                        /*is_write=*/true, start_ns, tenant_);
  return {oc.status, oc.transferred, done};
}

IoResult File::TrySync(double start_ns) {
  const FaultDecision d =
      fs_->injector_->Decide(/*is_write=*/true, 0, /*server=*/0, start_ns);
  const double done =
      fs_->ServeRequest(0, 0, /*is_write=*/true, start_ns, tenant_);
  if (d.kind != FaultDecision::Kind::kOk) {
    PNC_IOSTAT_ADD(kPfsFaultsInjected, 1);
    PNC_IOSTAT_TIMELINE_MARK(kFaults, start_ns, 1);
    const char* kind = "permanent";
    if (d.kind == FaultDecision::Kind::kTransient) kind = "transient";
    else if (d.kind == FaultDecision::Kind::kCrash) kind = "crash";
    else if (d.kind == FaultDecision::Kind::kShort) kind = "short";
    else if (d.kind == FaultDecision::Kind::kBitFlip) kind = "bitflip";
    else if (d.kind == FaultDecision::Kind::kAtRest) kind = "at_rest";
    PNC_IOSTAT_EVENT(kPfsFault, start_ns, 0, /*is_write=*/1, 0, kind);
    if (d.kind == FaultDecision::Kind::kPermanent ||
        d.kind == FaultDecision::Kind::kCrash)
      PNC_IOSTAT_EVENT_DUMP_HARD("pfs-hard-fault");
  }
  if (d.kind == FaultDecision::Kind::kTransient)
    return {pnc::Status(pnc::Err::kIoTransient, "injected transient fault"), 0,
            done};
  if (d.kind == FaultDecision::Kind::kPermanent ||
      d.kind == FaultDecision::Kind::kCrash)
    return {pnc::Status(pnc::Err::kIo, d.kind == FaultDecision::Kind::kCrash
                                           ? "injected crash: image frozen"
                                           : "injected permanent fault"),
            0, done};
  return {pnc::Status::Ok(), 0, done};
}

void File::RecordRetry(bool is_write) { fs_->RecordRetry(is_write); }

std::uint64_t File::size() const {
  std::lock_guard<std::mutex> lk(node_->mu);
  return std::max(node_->store->size(), node_->discarded_size);
}

void File::Truncate(std::uint64_t new_size) {
  std::lock_guard<std::mutex> lk(node_->mu);
  node_->store->Truncate(new_size);
}

double File::HarnessSync(double start_ns) {
  // A sync is a zero-payload round trip to the servers.
  return fs_->ServeRequest(0, 0, /*is_write=*/true, start_ns, tenant_);
}

std::unique_lock<std::mutex> File::LockForRmw() {
  return std::unique_lock<std::mutex>(node_->rmw_mu);
}

const std::string& File::path() const { return node_->path; }

// -------------------------------------------------------------- FileSystem

FileSystem::FileSystem(Config cfg)
    : cfg_(cfg),
      injector_(std::make_shared<FaultInjector>(cfg.faults)),
      qos_(cfg.qos) {
  sched_.assign(static_cast<std::size_t>(cfg_.num_servers), ServerSched{});
  tenants_.push_back(TenantClass{});  // index 0: the default tenant
  tenant_ctrs_.emplace_back();
  tenant_flows_.emplace_back();
  tenant_pacers_.emplace_back();
  if (const char* d = std::getenv("PNC_QOS_DISCIPLINE");
      d != nullptr && *d != '\0') {
    if (auto parsed = ParseQosDiscipline(d)) {
      qos_.discipline = *parsed;
    } else {
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true))
        std::fprintf(stderr,
                     "pnc: PNC_QOS_DISCIPLINE=\"%s\" is not fcfs|wfq|edf; "
                     "keeping %s\n",
                     d, QosDisciplineName(qos_.discipline));
    }
  }
}

FileSystem::~FileSystem() = default;

std::unique_ptr<ByteStore> FileSystem::Decorate(
    std::unique_ptr<ByteStore> inner) {
  return std::make_unique<FaultyByteStore>(std::move(inner), injector_);
}

std::shared_ptr<File::Node> FileSystem::MakeNode(
    const std::string& path, std::unique_ptr<ByteStore> decorated) {
  auto node = std::make_shared<File::Node>();
  node->path = path;
  node->faulty = static_cast<FaultyByteStore*>(decorated.get());
  node->store = std::move(decorated);
  return node;
}

pnc::Result<File> FileSystem::Create(const std::string& path, bool exclusive) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = files_.find(path);
  if (it != files_.end()) {
    if (exclusive) return pnc::Status(pnc::Err::kExists, path);
    it->second->store->Truncate(0);
    return File(this, it->second);
  }
  auto node = MakeNode(path, Decorate(std::make_unique<MemStore>()));
  files_[path] = node;
  return File(this, node);
}

pnc::Result<File> FileSystem::CreateOnDisk(const std::string& path,
                                           const std::string& disk_path) {
  auto store = FileStore::Open(disk_path, /*truncate=*/true);
  if (!store.ok()) return store.status();
  std::lock_guard<std::mutex> lk(mu_);
  auto node = MakeNode(path, Decorate(std::move(store).value()));
  files_[path] = node;
  return File(this, node);
}

pnc::Result<File> FileSystem::AttachDisk(const std::string& path,
                                         const std::string& disk_path) {
  auto store = FileStore::Open(disk_path, /*truncate=*/false);
  if (!store.ok()) return store.status();
  std::lock_guard<std::mutex> lk(mu_);
  auto node = MakeNode(path, Decorate(std::move(store).value()));
  files_[path] = node;
  return File(this, node);
}

pnc::Result<File> FileSystem::Open(const std::string& path) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return pnc::Status(pnc::Err::kNotNc, path);
  return File(this, it->second);
}

bool FileSystem::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lk(mu_);
  return files_.count(path) > 0;
}

pnc::Status FileSystem::Remove(const std::string& path) {
  std::lock_guard<std::mutex> lk(mu_);
  if (files_.erase(path) == 0) return pnc::Status(pnc::Err::kNotNc, path);
  return pnc::Status::Ok();
}

Stats FileSystem::stats() const {
  Stats s;
  {
    std::lock_guard<std::mutex> lk(mu_);
    s = stats_;
  }
  const FaultCounters fc = injector_->counters();
  s.transient_faults = fc.transient_faults;
  s.permanent_faults = fc.permanent_faults;
  s.short_reads = fc.short_reads;
  s.short_writes = fc.short_writes;
  s.bitflips = fc.bitflips;
  s.write_bitflips = fc.write_bitflips;
  s.at_rest_corruptions = fc.at_rest_corruptions;
  s.crashes = fc.crashes;
  return s;
}

void FileSystem::ResetStats() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stats_ = Stats{};
    for (TenantCounters& tc : tenant_ctrs_) tc = TenantCounters{};
  }
  injector_->ResetCounters();
}

void FileSystem::ResetTenantCounters() {
  std::lock_guard<std::mutex> lk(mu_);
  for (TenantCounters& tc : tenant_ctrs_) tc = TenantCounters{};
}

int FileSystem::RegisterTenant(const TenantClass& cls) {
  if (cls.name.empty()) return 0;  // the default tenant's class is fixed
  TenantClass c = cls;
  c.weight =
      std::clamp(c.weight, TenantClass::kMinWeight, TenantClass::kMaxWeight);
  if (c.deadline_ns < 0.0) c.deadline_ns = 0.0;
  // Flight-recorder details carry "r:<name>"; keep names within the field.
  if (c.name.size() > 20) c.name.resize(20);
  std::lock_guard<std::mutex> lk(mu_);
  for (std::size_t i = 1; i < tenants_.size(); ++i) {
    if (tenants_[i].name == c.name) {
      tenants_[i] = c;
      return static_cast<int>(i);
    }
  }
  tenants_.push_back(std::move(c));
  tenant_ctrs_.emplace_back();
  tenant_flows_.emplace_back();
  tenant_pacers_.emplace_back();
  return static_cast<int>(tenants_.size()) - 1;
}

int FileSystem::FindTenant(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (std::size_t i = 1; i < tenants_.size(); ++i)
    if (tenants_[i].name == name) return static_cast<int>(i);
  return 0;
}

void FileSystem::SetQosPolicy(const QosPolicy& policy) {
  std::lock_guard<std::mutex> lk(mu_);
  qos_ = policy;
}

QosPolicy FileSystem::qos_policy() const {
  std::lock_guard<std::mutex> lk(mu_);
  return qos_;
}

std::vector<TenantUsage> FileSystem::TenantUsageSnapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<TenantUsage> out;
  out.reserve(tenants_.size());
  for (std::size_t i = 0; i < tenants_.size(); ++i)
    out.push_back(TenantUsage{tenants_[i], tenant_ctrs_[i]});
  return out;
}

double FileSystem::AdmissionEligible(int tenant, std::uint64_t len,
                                     double arrival_ns) {
  const TenantClass& cls = tenants_[static_cast<std::size_t>(tenant)];
  if (cls.max_outstanding_bytes == 0) return arrival_ns;
  TenantFlow& flow = tenant_flows_[static_cast<std::size_t>(tenant)];
  double eligible = arrival_ns;
  // Retire in-flight requests that completed before this arrival.
  while (!flow.inflight.empty() &&
         flow.inflight.begin()->first <= eligible) {
    flow.bytes -= flow.inflight.begin()->second;
    flow.inflight.erase(flow.inflight.begin());
  }
  // Hold the request until enough of the tenant's bytes drain under the cap;
  // the wait surfaces as queue time, never as an error.
  while (flow.bytes + len > cls.max_outstanding_bytes &&
         !flow.inflight.empty()) {
    eligible = std::max(eligible, flow.inflight.begin()->first);
    flow.bytes -= flow.inflight.begin()->second;
    flow.inflight.erase(flow.inflight.begin());
  }
  return eligible;
}

ServerSched::PolicyContext FileSystem::PolicyCtx() const {
  ServerSched::PolicyContext ctx;
  ctx.discipline = qos_.discipline;
  ctx.edf_background_share = qos_.edf_background_share;
  for (const TenantClass& t : tenants_) {
    ctx.max_weight = std::max(ctx.max_weight, t.weight);
    if (t.deadline_ns > 0.0) ctx.any_deadline = true;
  }
  return ctx;
}

void FileSystem::SetFaultPolicy(const FaultPolicy& policy) {
  injector_->SetPolicy(policy);
}

FaultPolicy FileSystem::fault_policy() const { return injector_->policy(); }

bool FileSystem::crashed() const { return injector_->crashed(); }

int FileSystem::PrimaryServer(std::uint64_t offset) const {
  return static_cast<int>((offset / cfg_.stripe_size) %
                          static_cast<std::uint64_t>(cfg_.num_servers));
}

void FileSystem::RecordRetry(bool is_write) {
  PNC_IOSTAT_ADD(kPfsRetries, 1);
  std::lock_guard<std::mutex> lk(mu_);
  (is_write ? stats_.write_retries : stats_.read_retries) += 1;
}

void FileSystem::ResetTime() {
  std::lock_guard<std::mutex> lk(mu_);
  for (ServerSched& s : sched_) s.Reset();
  for (TenantFlow& f : tenant_flows_) {
    f.inflight.clear();
    f.bytes = 0;
  }
  for (TenantPacer& p : tenant_pacers_) p.Reset();
}

double FileSystem::ServeRequest(std::uint64_t offset, std::uint64_t len,
                                bool is_write, double start_ns, int tenant) {
  const double per_byte =
      is_write ? cfg_.server_write_ns_per_byte : cfg_.server_read_ns_per_byte;

  // Decompose [offset, offset+len) into per-server byte totals according to
  // the round-robin stripe map; each involved server serves one event.
  // Writes that cover only part of a stripe are charged the whole stripe
  // when write_partial_stripe_rmw is on (block read-modify-write).
  std::vector<std::uint64_t> bytes_per_server(
      static_cast<std::size_t>(cfg_.num_servers), 0);
  std::uint64_t pos = offset;
  std::uint64_t remaining = len;
  while (remaining > 0) {
    const std::uint64_t stripe = pos / cfg_.stripe_size;
    const auto server =
        static_cast<std::size_t>(stripe % static_cast<std::uint64_t>(
                                              cfg_.num_servers));
    const std::uint64_t in_stripe = pos % cfg_.stripe_size;
    const std::uint64_t n =
        std::min<std::uint64_t>(cfg_.stripe_size - in_stripe, remaining);
    const bool partial = n < cfg_.stripe_size;
    bytes_per_server[server] +=
        (is_write && partial && cfg_.write_partial_stripe_rmw)
            ? cfg_.stripe_size
            : n;
    pos += n;
    remaining -= n;
  }

  // The client injects the request and streams data over its own link.
  const double client_ns_per_byte =
      is_write ? cfg_.client_write_ns_per_byte : cfg_.client_read_ns_per_byte;
  const double client_done = start_ns + cfg_.client_request_ns +
                             client_ns_per_byte * static_cast<double>(len);
  const double arrival = start_ns + cfg_.client_request_ns;

  if (is_write) {
    PNC_IOSTAT_ADD(kPfsWriteOps, 1);
    PNC_IOSTAT_ADD(kPfsBytesWritten, len);
  } else {
    PNC_IOSTAT_ADD(kPfsReadOps, 1);
    PNC_IOSTAT_ADD(kPfsBytesRead, len);
  }

  double completion = client_done;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (tenant < 0 || tenant >= static_cast<int>(tenants_.size())) tenant = 0;
    const TenantClass& cls = tenants_[static_cast<std::size_t>(tenant)];
    TenantCounters& tc = tenant_ctrs_[static_cast<std::size_t>(tenant)];
    // Flight-recorder details carry the tenant: "r"/"w"/"s" for the default
    // tenant (the exact legacy strings), "r:<name>" etc. otherwise.
    char detail[24];
    if (tenant == 0) {
      detail[0] = len == 0 ? 's' : (is_write ? 'w' : 'r');
      detail[1] = '\0';
    } else {
      std::snprintf(detail, sizeof detail, "%c:%s",
                    len == 0 ? 's' : (is_write ? 'w' : 'r'),
                    cls.name.c_str());
    }
    if (is_write) {
      stats_.bytes_written += len;
      stats_.write_requests += 1;
    } else {
      stats_.bytes_read += len;
      stats_.read_requests += 1;
    }
    PNC_IOSTAT_MAX(kPfsServers, cfg_.num_servers);
    if (len == 0) {
      // Zero-length flush: a metadata round-trip to server 0 that does not
      // occupy the data pipeline. It observes the queue but must not extend
      // it — collective flushes arrive concurrently from every rank, and a
      // request that mutated the server timeline would make the makespan
      // depend on real-time arrival order (nondeterministic virtual time).
      // Under an armed discipline it may observe a pacing gap instead of the
      // timeline head (a starved tenant's open/sync must not wait behind a
      // paced bulk writer), and the wait it observes is billed to the tenant
      // — this is where a backlogged server surfaces in open/close latency.
      const double begin =
          sched_[0].FlushBeginAt(arrival, cfg_.server_request_ns);
      const double done = begin + cfg_.server_request_ns;
      const double wait = begin - arrival;
      tc.queue_wait_ns += wait;
      if (tc.wait_samples.size() < TenantCounters::kMaxWaitSamples)
        tc.wait_samples.push_back(wait);
      PNC_IOSTAT_ADD(kPfsQueueWaitNs, wait);
      PNC_IOSTAT_EVENT(kPfsServer, begin, done - begin, 0,
                       static_cast<std::uint64_t>(begin - arrival), detail);
      completion = std::max(completion, done);
    } else {
      // Admission control holds the whole request at the client until the
      // tenant's in-flight bytes fit under its cap.
      const double admitted = AdmissionEligible(tenant, len, arrival);
      if (admitted > arrival) tc.admission_wait_ns += admitted - arrival;
      const ServerSched::PolicyContext ctx = PolicyCtx();
      // Pacing is a per-request decision, charged with the request's total
      // service across its servers: every chunk of a striped request then
      // carries the same artificial delay, so each touched server records a
      // backfillable gap (per-server clocks would pace only the first).
      double eligible = admitted;
      bool paced = false;
      if (ctx.discipline != QosDiscipline::kFcfs) {
        double total_service_ns = 0.0;
        for (const std::uint64_t b : bytes_per_server)
          if (b != 0)
            total_service_ns +=
                cfg_.server_request_ns + per_byte * static_cast<double>(b);
        eligible = tenant_pacers_[static_cast<std::size_t>(tenant)].Release(
            admitted, total_service_ns, QosShare(cls, ctx));
        paced = eligible > admitted;
      }
      double max_wait = 0.0;
      for (std::size_t s = 0; s < bytes_per_server.size(); ++s) {
        if (bytes_per_server[s] == 0) continue;
        const double payload_ns =
            per_byte * static_cast<double>(bytes_per_server[s]);
        const ServerSched::Grant g = sched_[s].Admit(
            ctx, arrival, eligible, cfg_.server_request_ns, payload_ns);
        completion = std::max(completion, g.done_ns);
        const double wait = g.begin_ns - arrival;
        max_wait = std::max(max_wait, wait);
        tc.server_events += 1;
        tc.served_bytes += bytes_per_server[s];
        tc.queue_wait_ns += wait;
        tc.service_ns += g.done_ns - g.begin_ns;
        if (paced) tc.paced_events += 1;
        if (g.backfilled) tc.backfilled_events += 1;
        PNC_IOSTAT_ADD(kPfsQueueWaitNs, wait);
        PNC_IOSTAT_ADD(kPfsBusyNs, g.done_ns - g.begin_ns);
        PNC_IOSTAT_MAX(kPfsHorizonNs, sched_[s].horizon_ns());
        PNC_IOSTAT_MAX(kPfsQueueDepthMax, g.depth);
        // Queue wait (begin - arrival) vs service (done - begin), per
        // server, attributed to the in-flight request via the thread's
        // bound request ID.
        PNC_IOSTAT_EVENT(kPfsServer, g.begin_ns, g.done_ns - g.begin_ns,
                         (bytes_per_server[s] << 8) | (s & 0xff),
                         static_cast<std::uint64_t>(g.begin_ns - arrival),
                         detail);
        // Pattern heatmap cell + per-server totals. `offset` is the
        // request's start offset (each server of a striped request records
        // the same one — "which region was hot", not exact chunk addresses).
        PNC_IOSTAT_PATTERN_PFS(static_cast<int>(s), offset,
                               bytes_per_server[s], g.begin_ns, g.done_ns,
                               g.depth, wait);
        // Timeline rate series. The deadline verdict is per server grant
        // (did this chunk finish past the tenant's deadline), not per
        // request: miss_rate then stays a ratio of like quantities
        // (missed grants / grants) inside one bucket.
        PNC_IOSTAT_TIMELINE_PFS(
            static_cast<int>(s), cls.name.c_str(), bytes_per_server[s],
            g.begin_ns, g.done_ns, g.depth, wait,
            cls.deadline_ns > 0.0 && g.done_ns > start_ns + cls.deadline_ns);
      }
      if (tc.wait_samples.size() < TenantCounters::kMaxWaitSamples)
        tc.wait_samples.push_back(max_wait);
      if (cls.deadline_ns > 0.0 && completion > start_ns + cls.deadline_ns) {
        tc.deadline_misses += 1;
        PNC_IOSTAT_ADD(kPfsDeadlineMisses, 1);
      }
      if (cls.max_outstanding_bytes > 0) {
        TenantFlow& flow = tenant_flows_[static_cast<std::size_t>(tenant)];
        flow.inflight.emplace(completion, len);
        flow.bytes += len;
      }
    }
  }
  return completion;
}

}  // namespace pfs
