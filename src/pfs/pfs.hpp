// Simulated striped parallel file system (GPFS-like).
//
// The paper's testbeds attach compute nodes to a fixed pool of I/O server
// nodes running GPFS (12 servers at SDSC for Figure 6, 2 at ASCI Frost for
// Figure 7). This module reproduces that architecture: files are striped
// round-robin across `num_servers` servers; every request is decomposed into
// per-server service events with a fixed per-request latency plus a per-byte
// service cost, and each server serves events FCFS along a virtual timeline.
//
// Two properties of this model carry the paper's results:
//   * fixed server pool => aggregate bandwidth saturates as clients grow
//     (Figure 6: "the number of I/O nodes (and disks) is fixed so that the
//     dominating disk access time at I/O nodes is almost fixed");
//   * fixed per-request latency => many small noncontiguous requests are
//     far slower than few large contiguous ones, which is exactly what
//     data sieving and two-phase collective I/O exist to fix.
//
// Bytes are really stored (in sparse memory chunks or a backing POSIX file),
// so correctness tests read back real data; only *time* is simulated.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pfs/fault.hpp"
#include "pfs/sched.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"

namespace pfs {

/// Cluster configuration. Defaults approximate the SDSC Blue Horizon GPFS
/// deployment used for Figure 6 (see bench/platforms.hpp for presets).
struct Config {
  int num_servers = 12;
  std::uint64_t stripe_size = 256 * 1024;

  // Client side: one compute node's effective data path to the I/O system.
  // Writes are slower than reads for a single client (write protocol,
  // token/consistency management in GPFS-class file systems).
  double client_read_ns_per_byte = 4.0;    ///< ~250 MB/s per client, reads
  double client_write_ns_per_byte = 10.0;  ///< ~100 MB/s per client, writes
  double client_request_ns = 30'000.0;     ///< per-request client software cost

  // Server side: per-server service rates (reads benefit from GPFS
  // read-ahead and caching; writes pay for disk commit).
  double server_read_ns_per_byte = 16.0;   ///< ~62 MB/s per server
  double server_write_ns_per_byte = 40.0;  ///< ~25 MB/s per server
  double server_request_ns = 800'000.0;    ///< per (request, server) overhead

  /// Partial-stripe writes cost a full stripe at the server (block-based
  /// file systems read-modify-write whole blocks). This is why collective
  /// I/O implementations align their file domains to stripe boundaries.
  bool write_partial_stripe_rmw = true;

  /// Benchmark mode: account for writes (size, stats, virtual time) but do
  /// not store the bytes. Reads then return zeros. Correctness runs (tests,
  /// examples) keep this off; large-scale sweeps turn it on so a simulated
  /// multi-gigabyte file costs no host memory.
  bool discard_data = false;

  /// Initial fault-injection schedule (see fault.hpp). Default: no faults.
  /// Can be replaced at runtime with FileSystem::SetFaultPolicy.
  FaultPolicy faults;

  /// Initial server queue discipline (see sched.hpp). Default: FCFS — no
  /// policy armed, bit-identical legacy virtual times. Overridable at
  /// construction by PNC_QOS_DISCIPLINE=fcfs|wfq|edf and at runtime with
  /// FileSystem::SetQosPolicy.
  QosPolicy qos;
};

/// Aggregate traffic counters, useful for tests and the hints example.
/// Fault/retry counters cover the fault-injectable path (File::TryRead/
/// TryWrite/TrySync); retries are recorded by the client layers (MPI-IO,
/// BufferedFile) via FileSystem::RecordRetry.
struct Stats {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t read_requests = 0;
  std::uint64_t write_requests = 0;
  std::uint64_t transient_faults = 0;
  std::uint64_t permanent_faults = 0;
  std::uint64_t short_reads = 0;
  std::uint64_t short_writes = 0;
  std::uint64_t bitflips = 0;
  std::uint64_t write_bitflips = 0;
  std::uint64_t at_rest_corruptions = 0;
  std::uint64_t crashes = 0;
  std::uint64_t read_retries = 0;
  std::uint64_t write_retries = 0;
};

/// Where a file's bytes actually live.
class ByteStore {
 public:
  virtual ~ByteStore() = default;
  virtual void Write(std::uint64_t offset, pnc::ConstByteSpan data) = 0;
  /// Reads beyond EOF / in holes yield zero bytes.
  virtual void Read(std::uint64_t offset, pnc::ByteSpan out) const = 0;
  [[nodiscard]] virtual std::uint64_t size() const = 0;
  virtual void Truncate(std::uint64_t new_size) = 0;
};

/// Sparse in-memory store (default). Allocates 4 MiB chunks on first write,
/// so a mostly-hole 1 GB benchmark file does not cost 1 GB of RAM.
class MemStore final : public ByteStore {
 public:
  void Write(std::uint64_t offset, pnc::ConstByteSpan data) override;
  void Read(std::uint64_t offset, pnc::ByteSpan out) const override;
  [[nodiscard]] std::uint64_t size() const override { return size_; }
  void Truncate(std::uint64_t new_size) override;

 private:
  static constexpr std::uint64_t kChunk = 4ULL << 20;
  std::map<std::uint64_t, std::vector<std::byte>> chunks_;
  std::uint64_t size_ = 0;
};

/// POSIX-file-backed store, used by examples that want a real artifact on
/// disk. Timing still goes through the simulated cluster model.
class FileStore final : public ByteStore {
 public:
  static pnc::Result<std::unique_ptr<FileStore>> Open(const std::string& path,
                                                      bool truncate);
  ~FileStore() override;
  FileStore(const FileStore&) = delete;
  FileStore& operator=(const FileStore&) = delete;

  void Write(std::uint64_t offset, pnc::ConstByteSpan data) override;
  void Read(std::uint64_t offset, pnc::ByteSpan out) const override;
  [[nodiscard]] std::uint64_t size() const override;
  void Truncate(std::uint64_t new_size) override;

 private:
  explicit FileStore(int fd) : fd_(fd) {}
  int fd_;
};

/// ByteStore decorator that injects data-level faults (see fault.hpp for
/// the policy). The plain ByteStore interface (Write/Read/size/Truncate)
/// forwards untouched — that is the harness path used by tests to seed and
/// inspect file contents. The Faulted* entry points consult the shared
/// FaultInjector and are what pfs::File::TryRead/TryWrite route through.
class FaultyByteStore final : public ByteStore {
 public:
  FaultyByteStore(std::unique_ptr<ByteStore> inner,
                  std::shared_ptr<FaultInjector> injector)
      : inner_(std::move(inner)), injector_(std::move(injector)) {}

  // Pass-through harness access (never fault-injected).
  void Write(std::uint64_t offset, pnc::ConstByteSpan data) override {
    inner_->Write(offset, data);
  }
  void Read(std::uint64_t offset, pnc::ByteSpan out) const override {
    inner_->Read(offset, out);
  }
  [[nodiscard]] std::uint64_t size() const override { return inner_->size(); }
  void Truncate(std::uint64_t new_size) override { inner_->Truncate(new_size); }

  struct Outcome {
    pnc::Status status;
    std::uint64_t transferred = 0;
  };

  /// Fault-injected write: on a transient/permanent decision nothing is
  /// stored; on a short decision only a prefix is stored and reported.
  Outcome FaultedWrite(std::uint64_t offset, pnc::ConstByteSpan data,
                       int server, double now_ns);
  /// Fault-injected read: may fail, return a prefix, or silently flip a bit
  /// in the returned bytes.
  Outcome FaultedRead(std::uint64_t offset, pnc::ByteSpan out, int server,
                      double now_ns) const;

 private:
  std::unique_ptr<ByteStore> inner_;
  std::shared_ptr<FaultInjector> injector_;
};

class FileSystem;

/// Outcome of a fault-aware I/O call on pfs::File.
struct IoResult {
  pnc::Status status;             ///< kIoTransient: retry may succeed
  std::uint64_t transferred = 0;  ///< bytes actually moved (short transfers)
  double done_ns = 0.0;           ///< virtual completion time of the attempt
  [[nodiscard]] bool ok() const { return status.ok(); }
};

/// An open file handle. Thread-safe: concurrent rank threads may access the
/// same handle (data is mutex-protected; timing goes through the server
/// timelines).
class File {
 public:
  /// Perform a contiguous read/write issued at virtual time `start_ns`;
  /// returns the virtual completion time. Bytes are moved for real. These
  /// are the *harness* entry points: they never fail and bypass fault
  /// injection, so tests and benches can seed/inspect files regardless of
  /// the active fault schedule — including the frozen image after a crash
  /// point fires. Production I/O stacks (mpiio, netcdf, pnetcdf) must use
  /// the Try* variants; a CMake lint target greps for Harness* calls in
  /// those trees.
  double HarnessRead(std::uint64_t offset, pnc::ByteSpan out, double start_ns);
  double HarnessWrite(std::uint64_t offset, pnc::ConstByteSpan data,
                      double start_ns);

  /// Fault-aware variants: consult the FileSystem's FaultInjector, may fail
  /// (transiently or permanently) or transfer only a prefix. A failed write
  /// stores nothing — except at a crash point, where the in-flight write is
  /// torn at the scripted byte boundary and the image freezes. Time is
  /// charged for the attempt either way (a failed request still costs a
  /// round trip).
  IoResult TryRead(std::uint64_t offset, pnc::ByteSpan out, double start_ns);
  IoResult TryWrite(std::uint64_t offset, pnc::ConstByteSpan data,
                    double start_ns);
  IoResult TrySync(double start_ns);

  [[nodiscard]] std::uint64_t size() const;
  void Truncate(std::uint64_t new_size);
  /// Flush: charges one request round-trip per server. Harness variant of
  /// TrySync (never fails).
  double HarnessSync(double start_ns);

  /// Let a client layer account one retry of a faulted op in pfs::Stats.
  void RecordRetry(bool is_write);

  /// Whole-file advisory lock for read-modify-write sequences (the fcntl
  /// byte-range lock ROMIO takes around data-sieving writes). Concurrent
  /// independent RMW windows from different clients would otherwise lose
  /// updates.
  [[nodiscard]] std::unique_lock<std::mutex> LockForRmw();

  [[nodiscard]] const std::string& path() const;

  /// Bind this handle's I/O to a tenant registered with the FileSystem
  /// (FileSystem::RegisterTenant). Per-handle, not per-file: distinct tenants
  /// may hold handles on the same path. Index 0 is the default tenant.
  void SetTenant(int tenant) { tenant_ = tenant; }
  [[nodiscard]] int tenant() const { return tenant_; }

 private:
  friend class FileSystem;
  struct Node;
  File(FileSystem* fs, std::shared_ptr<Node> node) : fs_(fs), node_(std::move(node)) {}
  FileSystem* fs_;
  std::shared_ptr<Node> node_;
  int tenant_ = 0;
};

/// The cluster: a namespace of files plus the shared server timelines.
class FileSystem {
 public:
  explicit FileSystem(Config cfg = Config{});
  ~FileSystem();
  FileSystem(const FileSystem&) = delete;
  FileSystem& operator=(const FileSystem&) = delete;

  /// Create a file (in-memory store). With `exclusive`, fails if it exists;
  /// otherwise truncates any existing file.
  pnc::Result<File> Create(const std::string& path, bool exclusive);
  /// Create a file whose bytes live in a real POSIX file at `disk_path`.
  pnc::Result<File> CreateOnDisk(const std::string& path,
                                 const std::string& disk_path);
  /// Attach an existing POSIX file (not truncated) under `path`, so real
  /// netCDF files on the host can be read/modified through the library.
  pnc::Result<File> AttachDisk(const std::string& path,
                               const std::string& disk_path);
  pnc::Result<File> Open(const std::string& path);
  [[nodiscard]] bool Exists(const std::string& path) const;
  pnc::Status Remove(const std::string& path);

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] Stats stats() const;
  void ResetStats();
  /// Reset server timelines to idle (used between benchmark repetitions).
  void ResetTime();

  /// Replace the active fault schedule (tests typically create a file
  /// fault-free, then arm faults for the phase under study). Also the
  /// "reboot" after a crash point: the frozen incarnation ends here.
  void SetFaultPolicy(const FaultPolicy& policy);
  [[nodiscard]] FaultPolicy fault_policy() const;
  /// True after a crash point fired and before the next SetFaultPolicy.
  [[nodiscard]] bool crashed() const;

  // --- tenants & QoS (see sched.hpp) ---

  /// Intern a tenant by name and install/update its QoS class; returns the
  /// tenant index to pass to File::SetTenant. The empty name is the default
  /// tenant (index 0) whose class is fixed. Idempotent per name.
  int RegisterTenant(const TenantClass& cls);
  /// Index of a registered tenant; 0 (default) when unknown.
  [[nodiscard]] int FindTenant(const std::string& name) const;
  /// Arm/replace the server queue discipline. kFcfs = nothing armed.
  void SetQosPolicy(const QosPolicy& policy);
  [[nodiscard]] QosPolicy qos_policy() const;
  /// Per-tenant classes and service counters (index 0 = default tenant).
  [[nodiscard]] std::vector<TenantUsage> TenantUsageSnapshot() const;
  /// Zero tenant counters only (ResetStats does this too).
  void ResetTenantCounters();

 private:
  friend class File;

  /// Decide per-server grants for one contiguous request via the armed
  /// discipline and return the request's completion time.
  double ServeRequest(std::uint64_t offset, std::uint64_t len, bool is_write,
                      double start_ns, int tenant);
  /// The server owning the first stripe of [offset, ...): where a request's
  /// fate is decided under per-server outage windows.
  [[nodiscard]] int PrimaryServer(std::uint64_t offset) const;
  void RecordRetry(bool is_write);
  /// Wrap a freshly created store in the fault decorator.
  std::unique_ptr<ByteStore> Decorate(std::unique_ptr<ByteStore> inner);
  static std::shared_ptr<File::Node> MakeNode(
      const std::string& path, std::unique_ptr<ByteStore> decorated);

  /// Tenant flow state for admission control: completion times of in-flight
  /// requests (ordered) and their byte total.
  struct TenantFlow {
    std::multimap<double, std::uint64_t> inflight;  ///< done_ns -> bytes
    std::uint64_t bytes = 0;
  };

  /// Admission control: the eligible time (>= arrival) at which `tenant` may
  /// issue `len` more bytes under its outstanding-bytes cap. Under mu_.
  double AdmissionEligible(int tenant, std::uint64_t len, double arrival_ns);
  [[nodiscard]] ServerSched::PolicyContext PolicyCtx() const;  ///< under mu_

  Config cfg_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<File::Node>> files_;
  std::vector<ServerSched> sched_;  ///< one schedule per server
  Stats stats_;
  std::shared_ptr<FaultInjector> injector_;

  QosPolicy qos_;
  std::vector<TenantClass> tenants_;        ///< index 0 = default tenant
  std::vector<TenantCounters> tenant_ctrs_; ///< parallel to tenants_
  std::vector<TenantFlow> tenant_flows_;    ///< parallel to tenants_
  std::vector<TenantPacer> tenant_pacers_;  ///< parallel to tenants_
};

}  // namespace pfs
