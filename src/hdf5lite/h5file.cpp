#include "hdf5lite/h5file.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <optional>

#include "util/xdr.hpp"

namespace hdf5lite {

namespace {

constexpr std::uint32_t kSuperMagic = 0x48354C54;  // "H5LT"
constexpr std::uint32_t kStabMagic = 0x53544142;   // "STAB"
constexpr std::uint32_t kOhdrMagic = 0x4F484452;   // "OHDR"
constexpr std::uint64_t kSuperblockSize = 64;
constexpr std::uint64_t kDataAlign = 512;

std::uint64_t AlignUp(std::uint64_t x, std::uint64_t a) {
  return (x + a - 1) / a * a;
}

struct Superblock {
  std::uint64_t eof = kSuperblockSize;
  std::uint64_t symtab_addr = 0;  ///< 0: no datasets yet
  std::uint32_t nobjects = 0;

  std::vector<std::byte> Encode() const {
    std::vector<std::byte> out;
    pnc::xdr::Encoder enc(out);
    enc.PutU32(kSuperMagic);
    enc.PutU32(1);  // version
    enc.PutU64(eof);
    enc.PutU64(symtab_addr);
    enc.PutU32(nobjects);
    out.resize(kSuperblockSize);
    return out;
  }
  static pnc::Result<Superblock> Decode(pnc::ConstByteSpan in) {
    pnc::xdr::Decoder dec(in);
    std::uint32_t magic = 0, version = 0;
    Superblock sb;
    PNC_RETURN_IF_ERROR(dec.GetU32(magic));
    if (magic != kSuperMagic)
      return pnc::Status(pnc::Err::kNotNc, "not an hdf5lite file");
    PNC_RETURN_IF_ERROR(dec.GetU32(version));
    PNC_RETURN_IF_ERROR(dec.GetU64(sb.eof));
    PNC_RETURN_IF_ERROR(dec.GetU64(sb.symtab_addr));
    PNC_RETURN_IF_ERROR(dec.GetU32(sb.nobjects));
    return sb;
  }
};

struct ObjectHeader {
  std::string name;
  NcType type = NcType::kByte;
  std::vector<std::uint64_t> dims;
  std::uint64_t data_addr = 0;
  std::uint32_t mod_count = 0;

  std::vector<std::byte> Encode() const {
    std::vector<std::byte> out;
    pnc::xdr::Encoder enc(out);
    enc.PutU32(kOhdrMagic);
    enc.PutI32(static_cast<std::int32_t>(type));
    enc.PutU32(static_cast<std::uint32_t>(dims.size()));
    enc.PutU32(mod_count);
    enc.PutU64(data_addr);
    for (auto d : dims) enc.PutU64(d);
    enc.PutName(name);
    return out;
  }
  static pnc::Result<ObjectHeader> Decode(pnc::ConstByteSpan in) {
    pnc::xdr::Decoder dec(in);
    std::uint32_t magic = 0, rank = 0;
    ObjectHeader oh;
    PNC_RETURN_IF_ERROR(dec.GetU32(magic));
    if (magic != kOhdrMagic)
      return pnc::Status(pnc::Err::kTrunc, "bad object header");
    std::int32_t t = 0;
    PNC_RETURN_IF_ERROR(dec.GetI32(t));
    if (!ncformat::IsValidType(t)) return pnc::Status(pnc::Err::kBadType);
    oh.type = static_cast<NcType>(t);
    PNC_RETURN_IF_ERROR(dec.GetU32(rank));
    PNC_RETURN_IF_ERROR(dec.GetU32(oh.mod_count));
    PNC_RETURN_IF_ERROR(dec.GetU64(oh.data_addr));
    oh.dims.resize(rank);
    for (auto& d : oh.dims) PNC_RETURN_IF_ERROR(dec.GetU64(d));
    PNC_RETURN_IF_ERROR(dec.GetName(oh.name));
    return oh;
  }
};

struct SymbolTable {
  struct Entry {
    std::string name;
    std::uint64_t ohdr_addr = 0;
  };
  std::vector<Entry> entries;

  std::vector<std::byte> Encode() const {
    std::vector<std::byte> out;
    pnc::xdr::Encoder enc(out);
    enc.PutU32(kStabMagic);
    enc.PutU32(static_cast<std::uint32_t>(entries.size()));
    for (const auto& e : entries) {
      enc.PutName(e.name);
      enc.PutU64(e.ohdr_addr);
    }
    return out;
  }
  static pnc::Result<SymbolTable> Decode(pnc::ConstByteSpan in) {
    pnc::xdr::Decoder dec(in);
    std::uint32_t magic = 0, count = 0;
    PNC_RETURN_IF_ERROR(dec.GetU32(magic));
    if (magic != kStabMagic)
      return pnc::Status(pnc::Err::kTrunc, "bad symbol table");
    PNC_RETURN_IF_ERROR(dec.GetU32(count));
    SymbolTable st;
    st.entries.resize(count);
    for (auto& e : st.entries) {
      PNC_RETURN_IF_ERROR(dec.GetName(e.name));
      PNC_RETURN_IF_ERROR(dec.GetU64(e.ohdr_addr));
    }
    return st;
  }
};

}  // namespace

struct File::Impl {
  Impl(simmpi::Comm c, pfs::FileSystem* filesystem, mpiio::File f, bool w,
       double descent)
      : comm(std::move(c)), fs(filesystem), file(std::move(f)), writable(w),
        descent_ns(descent) {}

  simmpi::Comm comm;
  pfs::FileSystem* fs;
  mpiio::File file;
  bool writable = true;
  Superblock sb;
  /// Per-descent cost of the recursive hyperslab machinery (ablatable via
  /// the "h5l_descent_ns" hint).
  double descent_ns = 300.0;

  // Metadata cache (real HDF5 keeps one too): decoded blocks are served
  // from memory, but the file read is still issued so its virtual-time cost
  // is charged — the paper's point is the *file access* to locate and fetch
  // headers, which the cache does not remove on first touch or under
  // invalidation, and which we model as a read per lookup.
  std::optional<SymbolTable> symtab_cache;
  std::map<std::uint64_t, ObjectHeader> ohdr_cache;

  /// Root-mediated read of a metadata block of unknown length: read a
  /// generous fixed span and let the decoder stop where it stops.
  template <typename T>
  pnc::Result<T> ReadBlockAtRoot(std::uint64_t addr) {
    std::vector<std::byte> buf(64 * 1024);
    PNC_RETURN_IF_ERROR(
        file.ReadAt(addr, buf.data(), buf.size(), simmpi::ByteType()));
    return T::Decode(buf);
  }

  pnc::Result<SymbolTable> ReadSymtabAtRoot() {
    if (sb.symtab_addr == 0) return SymbolTable{};
    if (symtab_cache) {
      // Timed lookup, served from cache.
      std::vector<std::byte> scratch(4096);
      PNC_RETURN_IF_ERROR(file.ReadAt(sb.symtab_addr, scratch.data(),
                                      scratch.size(), simmpi::ByteType()));
      return *symtab_cache;
    }
    auto st = ReadBlockAtRoot<SymbolTable>(sb.symtab_addr);
    if (st.ok()) symtab_cache = st.value();
    return st;
  }

  pnc::Result<ObjectHeader> ReadOhdrAtRoot(std::uint64_t addr) {
    auto it = ohdr_cache.find(addr);
    if (it != ohdr_cache.end()) {
      std::vector<std::byte> scratch(4096);
      PNC_RETURN_IF_ERROR(file.ReadAt(addr, scratch.data(), scratch.size(),
                                      simmpi::ByteType()));
      return it->second;
    }
    auto oh = ReadBlockAtRoot<ObjectHeader>(addr);
    if (oh.ok()) ohdr_cache[addr] = oh.value();
    return oh;
  }

  pnc::Status WriteBlockAtRoot(std::uint64_t addr,
                               const std::vector<std::byte>& bytes) {
    return file.WriteAt(addr, bytes.data(), bytes.size(), simmpi::ByteType());
  }

  pnc::Status FlushSuperblockAtRoot() {
    return WriteBlockAtRoot(0, sb.Encode());
  }
};

struct Dataset::Impl {
  std::shared_ptr<File::Impl> file;
  std::uint64_t ohdr_addr = 0;
  ObjectHeader oh;
};

// ---------------------------------------------------------------- file ops

pnc::Result<File> File::Create(simmpi::Comm comm, pfs::FileSystem& fs,
                               const std::string& path,
                               const simmpi::Info& info) {
  auto f = mpiio::File::Open(comm, fs, path, mpiio::kCreate | mpiio::kRdWr,
                             info);
  if (!f.ok()) return f.status();
  File file;
  file.impl_ = std::make_shared<Impl>(
      std::move(comm), &fs, std::move(f).value(), /*writable=*/true,
      static_cast<double>(info.GetInt("h5l_descent_ns", 300)));
  auto& im = *file.impl_;
  if (im.comm.rank() == 0) {
    PNC_RETURN_IF_ERROR(im.FlushSuperblockAtRoot());
  }
  im.comm.Barrier();
  return file;
}

pnc::Result<File> File::Open(simmpi::Comm comm, pfs::FileSystem& fs,
                             const std::string& path, bool writable,
                             const simmpi::Info& info) {
  unsigned mode = writable ? mpiio::kRdWr : mpiio::kRdOnly;
  auto f = mpiio::File::Open(comm, fs, path, mode, info);
  if (!f.ok()) return f.status();
  File file;
  file.impl_ = std::make_shared<Impl>(
      std::move(comm), &fs, std::move(f).value(), writable,
      static_cast<double>(info.GetInt("h5l_descent_ns", 300)));
  auto& im = *file.impl_;

  int err = 0;
  if (im.comm.rank() == 0) {
    auto sb = im.ReadBlockAtRoot<Superblock>(0);
    if (sb.ok()) {
      im.sb = sb.value();
    } else {
      err = sb.status().raw();
    }
  }
  im.comm.BcastValue(err, 0);
  if (err != 0) return pnc::Status(static_cast<pnc::Err>(err), path);
  im.comm.BcastValue(im.sb, 0);
  return file;
}

pnc::Status File::Close() {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  auto& im = *impl_;
  if (im.writable && im.comm.rank() == 0) {
    PNC_RETURN_IF_ERROR(im.FlushSuperblockAtRoot());
  }
  PNC_RETURN_IF_ERROR(im.file.Sync());
  return im.file.Close();
}

simmpi::Comm& File::comm() { return impl_->comm; }

pnc::Result<Dataset> File::CreateDataset(const std::string& name, NcType type,
                                         std::span<const std::uint64_t> dims) {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  if (dims.empty())
    return pnc::Status(pnc::Err::kInvalidArg, "rank-0 datasets unsupported");
  auto& im = *impl_;

  // Collective create, root-mediated (parallel HDF5 requires H5Dcreate to
  // be called by all processes).
  ObjectHeader oh;
  oh.name = name;
  oh.type = type;
  oh.dims.assign(dims.begin(), dims.end());
  std::uint64_t ohdr_addr = 0;
  int err = 0;
  if (im.comm.rank() == 0) {
    // Duplicate-name scan through the existing namespace.
    if (im.sb.symtab_addr != 0) {
      auto st = im.ReadSymtabAtRoot();
      if (!st.ok()) {
        err = st.status().raw();
      } else {
        for (const auto& e : st.value().entries)
          if (e.name == name) err = pnc::Status(pnc::Err::kNameInUse).raw();
      }
    }
    if (err == 0) {
      // Allocate the object header block, then the (aligned) data space.
      ohdr_addr = im.sb.eof;
      std::uint64_t bytes = ncformat::TypeSize(type);
      for (auto d : dims) bytes *= d;
      auto ohdr_bytes = oh.Encode();  // pre-layout encode for sizing
      oh.data_addr = AlignUp(ohdr_addr + ohdr_bytes.size(), kDataAlign);
      im.sb.eof = oh.data_addr + bytes;

      // Rewrite: object header, then the grown symbol table at the new eof
      // (the old symbol table block becomes dead space — tree-file
      // fragmentation), then the superblock.
      pnc::Status s = im.WriteBlockAtRoot(ohdr_addr, oh.Encode());
      if (s.ok()) {
        SymbolTable st;
        if (im.sb.symtab_addr != 0) {
          auto old = im.ReadSymtabAtRoot();
          if (old.ok()) st = old.value();
        }
        st.entries.push_back({name, ohdr_addr});
        im.sb.symtab_addr = im.sb.eof;
        auto st_bytes = st.Encode();
        im.sb.eof += st_bytes.size();
        im.sb.nobjects = static_cast<std::uint32_t>(st.entries.size());
        s = im.WriteBlockAtRoot(im.sb.symtab_addr, st_bytes);
        if (s.ok()) s = im.FlushSuperblockAtRoot();
        im.symtab_cache = st;
        im.ohdr_cache[ohdr_addr] = oh;
      }
      if (!s.ok()) err = s.raw();
    }
  }
  im.comm.BcastValue(err, 0);
  if (err != 0) return pnc::Status(static_cast<pnc::Err>(err), name);

  // Broadcast the header (and the updated superblock) to all processes.
  std::vector<std::byte> oh_bytes;
  if (im.comm.rank() == 0) oh_bytes = oh.Encode();
  im.comm.Bcast(oh_bytes, 0);
  im.comm.BcastValue(ohdr_addr, 0);
  im.comm.BcastValue(im.sb, 0);
  if (im.comm.rank() != 0) {
    auto dec = ObjectHeader::Decode(oh_bytes);
    if (!dec.ok()) return dec.status();
    oh = std::move(dec).value();
  }
  im.comm.Barrier();

  Dataset ds;
  ds.impl_ = std::make_shared<Dataset::Impl>();
  ds.impl_->file = impl_;
  ds.impl_->ohdr_addr = ohdr_addr;
  ds.impl_->oh = std::move(oh);
  return ds;
}

pnc::Result<Dataset> File::OpenDataset(const std::string& name) {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  auto& im = *impl_;

  // Collective open: the root iterates through the namespace, reading each
  // object header from the file until the name matches (§4.3), then
  // broadcasts the result.
  int err = 0;
  std::uint64_t ohdr_addr = 0;
  std::vector<std::byte> oh_bytes;
  if (im.comm.rank() == 0) {
    err = pnc::Status(pnc::Err::kNotVar).raw();
    if (im.sb.symtab_addr != 0) {
      auto st = im.ReadSymtabAtRoot();
      if (!st.ok()) {
        err = st.status().raw();
      } else {
        for (const auto& e : st.value().entries) {
          auto oh = im.ReadOhdrAtRoot(e.ohdr_addr);
          if (!oh.ok()) {
            err = oh.status().raw();
            break;
          }
          if (oh.value().name == name) {
            ohdr_addr = e.ohdr_addr;
            oh_bytes = oh.value().Encode();
            err = 0;
            break;
          }
        }
      }
    }
  }
  im.comm.BcastValue(err, 0);
  if (err != 0) return pnc::Status(static_cast<pnc::Err>(err), name);
  im.comm.Bcast(oh_bytes, 0);
  im.comm.BcastValue(ohdr_addr, 0);
  im.comm.Barrier();

  auto dec = ObjectHeader::Decode(oh_bytes);
  if (!dec.ok()) return dec.status();
  Dataset ds;
  ds.impl_ = std::make_shared<Dataset::Impl>();
  ds.impl_->file = impl_;
  ds.impl_->ohdr_addr = ohdr_addr;
  ds.impl_->oh = std::move(dec).value();
  return ds;
}

pnc::Result<std::vector<std::string>> File::ListDatasets() {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  auto& im = *impl_;
  int err = 0;
  std::vector<std::string> names;
  std::vector<std::byte> frame;
  if (im.comm.rank() == 0) {
    if (im.sb.symtab_addr != 0) {
      auto st = im.ReadSymtabAtRoot();
      if (!st.ok()) {
        err = st.status().raw();
      } else {
        pnc::xdr::Encoder enc(frame);
        enc.PutU32(static_cast<std::uint32_t>(st.value().entries.size()));
        for (const auto& e : st.value().entries) enc.PutName(e.name);
      }
    } else {
      pnc::xdr::Encoder enc(frame);
      enc.PutU32(0);
    }
  }
  im.comm.BcastValue(err, 0);
  if (err != 0) return pnc::Status(static_cast<pnc::Err>(err));
  im.comm.Bcast(frame, 0);
  pnc::xdr::Decoder dec(frame);
  std::uint32_t n = 0;
  PNC_RETURN_IF_ERROR(dec.GetU32(n));
  names.resize(n);
  for (auto& s : names) PNC_RETURN_IF_ERROR(dec.GetName(s));
  return names;
}

// ------------------------------------------------------------ dataset ops

const std::string& Dataset::name() const { return impl_->oh.name; }
NcType Dataset::type() const { return impl_->oh.type; }
const std::vector<std::uint64_t>& Dataset::dims() const {
  return impl_->oh.dims;
}

pnc::Status Dataset::Close() {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  auto& fim = *impl_->file;
  // H5Dclose is collective: flush the object header and synchronize.
  if (fim.writable && fim.comm.rank() == 0) {
    PNC_RETURN_IF_ERROR(
        fim.WriteBlockAtRoot(impl_->ohdr_addr, impl_->oh.Encode()));
    fim.ohdr_cache[impl_->ohdr_addr] = impl_->oh;
  }
  fim.comm.Barrier();
  return pnc::Status::Ok();
}

namespace {

/// Recursive hyperslab pack/unpack between an N-D memory array and a
/// contiguous buffer, charging the per-descent cost that makes HDF5-style
/// hyperslab handling expensive for small rows.
struct HyperslabCopier {
  std::span<const std::uint64_t> mem_dims;
  std::span<const std::uint64_t> mem_start;
  std::span<const std::uint64_t> count;
  std::size_t tsize = 1;
  bool pack = true;
  std::uint64_t calls = 0;

  std::vector<std::uint64_t> mem_stride;  // in elements

  void Init() {
    mem_stride.assign(mem_dims.size(), 1);
    for (std::size_t d = mem_dims.size() - 1; d > 0; --d)
      mem_stride[d - 1] = mem_stride[d] * mem_dims[d];
  }

  void Recurse(std::byte* mem, std::byte*& contig, std::size_t dim,
               std::uint64_t elem_off) {
    ++calls;
    if (dim + 1 == count.size()) {
      const std::uint64_t row_elems = count[dim];
      const std::uint64_t off =
          (elem_off + (mem_start[dim]) * mem_stride[dim]) * tsize;
      const std::uint64_t bytes = row_elems * tsize;
      if (pack) {
        std::memcpy(contig, mem + off, bytes);
      } else {
        std::memcpy(mem + off, contig, bytes);
      }
      contig += bytes;
      return;
    }
    for (std::uint64_t i = 0; i < count[dim]; ++i) {
      Recurse(mem, contig, dim + 1,
              elem_off + (mem_start[dim] + i) * mem_stride[dim]);
    }
  }
};

/// File extents of the hyperslab [start, start+count) of a row-major array
/// `dims` of `tsize`-byte elements based at `data_addr`.
void FileRegions(std::uint64_t data_addr, std::span<const std::uint64_t> dims,
                 std::span<const std::uint64_t> start,
                 std::span<const std::uint64_t> count, std::size_t tsize,
                 std::vector<pnc::Extent>& out) {
  const std::size_t nd = dims.size();
  std::vector<std::uint64_t> stride(nd, 1);
  for (std::size_t d = nd - 1; d > 0; --d)
    stride[d - 1] = stride[d] * dims[d];
  std::uint64_t rows = 1;
  for (std::size_t d = 0; d + 1 < nd; ++d) rows *= count[d];
  std::vector<std::uint64_t> idx(nd, 0);
  for (std::uint64_t r = 0; r < rows; ++r) {
    std::uint64_t elem = start[nd - 1];
    for (std::size_t d = 0; d + 1 < nd; ++d)
      elem += (start[d] + idx[d]) * stride[d];
    const std::uint64_t off = data_addr + elem * tsize;
    const std::uint64_t len = count[nd - 1] * tsize;
    if (!out.empty() && out.back().end() == off) {
      out.back().len += len;
    } else {
      out.push_back({off, len});
    }
    for (std::size_t d = nd - 1; d-- > 0;) {
      if (++idx[d] < count[d]) break;
      idx[d] = 0;
    }
  }
}

}  // namespace

pnc::Status Dataset::Write(std::span<const std::uint64_t> start,
                           std::span<const std::uint64_t> count,
                           const void* buf,
                           std::span<const std::uint64_t> mem_dims,
                           std::span<const std::uint64_t> mem_start) {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  auto& fim = *impl_->file;
  auto& oh = impl_->oh;
  const std::size_t nd = oh.dims.size();
  if (start.size() != nd || count.size() != nd || mem_dims.size() != nd ||
      mem_start.size() != nd)
    return pnc::Status(pnc::Err::kInvalidArg, "hyperslab rank");
  for (std::size_t d = 0; d < nd; ++d) {
    if (start[d] + count[d] > oh.dims[d])
      return pnc::Status(pnc::Err::kEdge, oh.name);
    if (mem_start[d] + count[d] > mem_dims[d])
      return pnc::Status(pnc::Err::kInvalidArg, "memory hyperslab");
  }
  const std::size_t tsize = ncformat::TypeSize(oh.type);
  const std::uint64_t nelems = pnc::ShapeProduct(count);
  if (nelems == 0) return pnc::Status::Ok();

  // Recursive pack memory -> contiguous staging.
  std::vector<std::byte> staging(nelems * tsize);
  HyperslabCopier cp{mem_dims, mem_start, count, tsize, /*pack=*/true};
  cp.Init();
  std::byte* cursor = staging.data();
  cp.Recurse(const_cast<std::byte*>(static_cast<const std::byte*>(buf)),
             cursor, 0, 0);
  auto& clk = fim.comm.clock();
  clk.Advance(fim.comm.cost().CopyCost(staging.size()) +
              fim.descent_ns * static_cast<double>(cp.calls));

  // Independent raw-data I/O through the file view.
  std::vector<pnc::Extent> regions;
  FileRegions(oh.data_addr, oh.dims, start, count, tsize, regions);
  std::vector<std::uint64_t> lens, offs;
  for (const auto& r : regions) {
    offs.push_back(r.offset);
    lens.push_back(r.len);
  }
  auto ft = simmpi::Datatype::Hindexed(lens, offs, simmpi::ByteType());
  PNC_RETURN_IF_ERROR(fim.file.SetViewLocal(0, simmpi::ByteType(), ft));
  PNC_RETURN_IF_ERROR(fim.file.WriteAt(0, staging.data(), staging.size(),
                                       simmpi::ByteType()));
  fim.file.ClearView();

  // Metadata updated during data writes: the root bumps the modification
  // count in the object header, and everyone synchronizes (§4.3).
  oh.mod_count += 1;
  if (fim.comm.rank() == 0) {
    PNC_RETURN_IF_ERROR(
        fim.WriteBlockAtRoot(impl_->ohdr_addr, oh.Encode()));
    fim.ohdr_cache[impl_->ohdr_addr] = oh;
  }
  fim.comm.Barrier();
  return pnc::Status::Ok();
}

pnc::Status Dataset::Read(std::span<const std::uint64_t> start,
                          std::span<const std::uint64_t> count, void* buf,
                          std::span<const std::uint64_t> mem_dims,
                          std::span<const std::uint64_t> mem_start) {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  auto& fim = *impl_->file;
  auto& oh = impl_->oh;
  const std::size_t nd = oh.dims.size();
  if (start.size() != nd || count.size() != nd || mem_dims.size() != nd ||
      mem_start.size() != nd)
    return pnc::Status(pnc::Err::kInvalidArg, "hyperslab rank");
  for (std::size_t d = 0; d < nd; ++d) {
    if (start[d] + count[d] > oh.dims[d])
      return pnc::Status(pnc::Err::kEdge, oh.name);
    if (mem_start[d] + count[d] > mem_dims[d])
      return pnc::Status(pnc::Err::kInvalidArg, "memory hyperslab");
  }
  const std::size_t tsize = ncformat::TypeSize(oh.type);
  const std::uint64_t nelems = pnc::ShapeProduct(count);
  if (nelems == 0) return pnc::Status::Ok();

  std::vector<std::byte> staging(nelems * tsize);
  std::vector<pnc::Extent> regions;
  FileRegions(oh.data_addr, oh.dims, start, count, tsize, regions);
  std::vector<std::uint64_t> lens, offs;
  for (const auto& r : regions) {
    offs.push_back(r.offset);
    lens.push_back(r.len);
  }
  auto ft = simmpi::Datatype::Hindexed(lens, offs, simmpi::ByteType());
  PNC_RETURN_IF_ERROR(fim.file.SetViewLocal(0, simmpi::ByteType(), ft));
  PNC_RETURN_IF_ERROR(
      fim.file.ReadAt(0, staging.data(), staging.size(), simmpi::ByteType()));
  fim.file.ClearView();

  HyperslabCopier cp{mem_dims, mem_start, count, tsize, /*pack=*/false};
  cp.Init();
  std::byte* cursor = staging.data();
  cp.Recurse(static_cast<std::byte*>(buf), cursor, 0, 0);
  auto& clk = fim.comm.clock();
  clk.Advance(fim.comm.cost().CopyCost(staging.size()) +
              fim.descent_ns * static_cast<double>(cp.calls));
  return pnc::Status::Ok();
}

}  // namespace hdf5lite
