// hdf5lite — a simplified HDF5-style array file library, the comparison
// baseline of the paper's §5.2 (parallel HDF5 1.4.5).
//
// This is a real, working file format and parallel library, built to exhibit
// the structural properties the paper attributes HDF5's overhead to (§4.3):
//
//  * a tree-like file layout: a superblock, a symbol-table block, and one
//    object-header block per dataset, dispersed through the file ("the
//    header metadata is dispersed in separate header blocks for each
//    object");
//  * per-object collective open/close: creating, opening, and closing every
//    dataset is a collective operation with root-mediated header file I/O
//    and a broadcast ("forces all participating processes to communicate
//    when accessing a single object, not to mention the cost of file access
//    to locate and fetch the header information");
//  * namespace iteration on open: finding a dataset reads object headers one
//    by one until the name matches;
//  * metadata updates during data writes: each write bumps a modification
//    count in the object header and the end-of-file mark in the superblock,
//    serialized through rank 0 with a barrier ("HDF5 metadata is updated
//    during data writes in some cases. Thus additional synchronization is
//    necessary at write time");
//  * recursive hyperslab packing between memory space and file space, with
//    its per-descent cost charged to the virtual clock ("recursive handling
//    of the hyperslab ... makes the packing of the hyperslabs into
//    contiguous buffers take a relatively long time");
//  * raw data I/O through *independent* MPI-IO requests (the mode the FLASH
//    I/O benchmark used with parallel HDF5 of that era).
//
// None of the overhead is hard-coded: it emerges from these mechanisms, so
// ablating them (see bench/) shows where the PnetCDF advantage comes from.
#pragma once

#include <memory>
#include <string>

#include "format/types.hpp"
#include "mpiio/file.hpp"
#include "pfs/pfs.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/info.hpp"

namespace hdf5lite {

using ncformat::NcType;

class File;

/// An open dataset handle (like an hid_t from H5Dopen).
class Dataset {
 public:
  Dataset() = default;
  [[nodiscard]] bool valid() const { return impl_ != nullptr; }

  [[nodiscard]] const std::string& name() const;
  [[nodiscard]] NcType type() const;
  [[nodiscard]] const std::vector<std::uint64_t>& dims() const;

  /// Collective-close (H5Dclose is collective in parallel HDF5): flushes the
  /// object header and synchronizes.
  pnc::Status Close();

  /// Write/read the hyperslab [start, start+count) of the file dataspace
  /// from/to a memory buffer that is itself an N-D array `mem_dims` with the
  /// data at `mem_start` (guard cells excluded, FLASH-style). The memory
  /// selection is packed/unpacked recursively. Data I/O is independent.
  pnc::Status Write(std::span<const std::uint64_t> start,
                    std::span<const std::uint64_t> count, const void* buf,
                    std::span<const std::uint64_t> mem_dims,
                    std::span<const std::uint64_t> mem_start);
  pnc::Status Read(std::span<const std::uint64_t> start,
                   std::span<const std::uint64_t> count, void* buf,
                   std::span<const std::uint64_t> mem_dims,
                   std::span<const std::uint64_t> mem_start);

  /// Contiguous-memory convenience (memory shape == count).
  pnc::Status Write(std::span<const std::uint64_t> start,
                    std::span<const std::uint64_t> count, const void* buf) {
    return Write(start, count, buf, count,
                 std::vector<std::uint64_t>(count.size(), 0));
  }
  pnc::Status Read(std::span<const std::uint64_t> start,
                   std::span<const std::uint64_t> count, void* buf) {
    return Read(start, count, buf, count,
                std::vector<std::uint64_t>(count.size(), 0));
  }

  /// Opaque implementation record (public so File can build it).
  struct Impl;

 private:
  friend class File;
  std::shared_ptr<Impl> impl_;
};

/// An open hdf5lite file (like an hid_t from H5Fcreate/H5Fopen).
class File {
 public:
  static pnc::Result<File> Create(simmpi::Comm comm, pfs::FileSystem& fs,
                                  const std::string& path,
                                  const simmpi::Info& info);
  static pnc::Result<File> Open(simmpi::Comm comm, pfs::FileSystem& fs,
                                const std::string& path, bool writable,
                                const simmpi::Info& info);

  File() = default;
  [[nodiscard]] bool valid() const { return impl_ != nullptr; }

  /// Collective: allocate an object header and data space for a new dataset.
  pnc::Result<Dataset> CreateDataset(const std::string& name, NcType type,
                                     std::span<const std::uint64_t> dims);
  /// Collective: locate a dataset by iterating the namespace.
  pnc::Result<Dataset> OpenDataset(const std::string& name);

  /// Names in creation order (reads the symbol table).
  pnc::Result<std::vector<std::string>> ListDatasets();

  pnc::Status Close();

  [[nodiscard]] simmpi::Comm& comm();

  /// Opaque implementation record (public so Dataset can reference it).
  struct Impl;

 private:
  std::shared_ptr<Impl> impl_;
};

}  // namespace hdf5lite
