// Causal request tracing and the always-on flight recorder.
//
// Two pieces, layered on the iostat registry's rank binding:
//
//  * Request context: a per-rank monotonic request ID is minted at the
//    netCDF / PnetCDF API boundary (ReqScope, installed via the
//    PNC_IOSTAT_REQ_SCOPE macro) together with a short "api:variable"
//    detail string. Both live in thread-local storage, so every event any
//    lower layer records while that API call is on the stack — mpiio
//    two-phase exchange and aggregator I/O, pfs per-server service, faults,
//    retries — attributes back to the originating call without any
//    parameter threading. Cross-rank hops (two-phase exchange messages)
//    carry the sender's request ID explicitly in the message header; the
//    aggregator records an AggPiece event linking its own context to the
//    source rank's request.
//
//  * Flight recorder: a bounded, always-on, per-rank ring of fixed-size
//    event records. Writers are lock-free (one relaxed fetch_add to claim a
//    slot, plain stores, one release store of the sequence number); the
//    ring keeps the most recent `capacity` events per rank and counts what
//    it overwrote. The tail is dumped in the stable `pnc-events-v1` JSON
//    schema by the simmpi hang watchdog, by pfs hard-fault paths and
//    crash-point recovery (both gated on PNC_FLIGHT_DUMP so routine
//    fault-injection tests stay quiet), and on demand via ncstat
//    --blackbox.
//
// Cost discipline matches iostat.hpp: -DPNC_IOSTAT=OFF compiles every macro
// below to nothing; at runtime a disabled event is one relaxed atomic load
// and a branch, an enabled one is ~a slot claim plus a few stores (~10 ns).
// Events never advance any virtual clock — timestamps are sampled by the
// caller and passed in, so enabling/disabling tracing cannot change
// simulated results.
//
// Production layers must use only the PNC_IOSTAT_* macros at the bottom of
// this header — a grep lint (tests/CMakeLists.txt) rejects direct
// references to the event API in those trees.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "iostat/iostat.hpp"
#include "util/status.hpp"

namespace iostat {

/// Event kinds. The wire names (EvName) are the stable pnc-events-v1
/// schema vocabulary — append new kinds at the end, never reorder.
enum class Ev : std::uint16_t {
  kApiBegin = 1,  ///< request minted: a0=payload bytes, a1=is_write,
                  ///< detail="api:variable"
  kCollBegin,     ///< collective op entered: a0=payload bytes, a1=is_write
  kCollEnd,       ///< collective op left (post clock sync): a0=ok(1)/failed(0)
  kXchgBegin,     ///< two-phase exchange phase begins: a0=window
  kXchgEnd,       ///< two-phase exchange phase ends: a0=window
  kIoBegin,       ///< aggregator file-domain I/O begins: a0=window
  kIoEnd,         ///< aggregator file-domain I/O ends: a0=window
  kXchgSend,      ///< exchange message posted: a0=window, a1=dest rank
  kAggPiece,      ///< aggregator adopted a piece: a0=(window<<32)|src rank,
                  ///< a1=source rank's request ID
  kPfsServer,     ///< one server serviced a request: t=service start,
                  ///< d=service ns, a0=(bytes<<8)|server, a1=queue-wait ns,
                  ///< detail="r"/"w"/"s"
  kPfsFault,      ///< injected fault surfaced: a0=is_write,
                  ///< detail="transient"/"permanent"/"crash"/"short"
  kRetry,         ///< transient-fault retry consumed: a0=is_write, a1=attempt
  kIndep,         ///< independent-path transfer: a0=bytes, a1=is_write
  kRankCrash,     ///< rank died to an armed RankFaultPolicy: a0=op index;
                  ///< req = the dead rank's last in-flight request ID
  kRankStraggle,  ///< straggler-delayed send: a0=bytes, a1=dest world rank
  kMsgDrop,       ///< send vanished in transit: a0=bytes, a1=dest world rank
  kAgreement,     ///< fault-tolerant agreement round done: d=wait ns,
                  ///< a0=survivor count, a1=any_dead
  kDataCorrupt,   ///< chunk checksum mismatch survived heal retries:
                  ///< a0=chunk index, a1=heal attempts; req = the read
                  ///< that surfaced kDataCorrupt
  kSloViolation,  ///< online health monitor tripped an SLO rule: t=start of
                  ///< the violating window, d=window length, a0=timeline
                  ///< bucket, a1=observed value, detail=rule id
};

/// Stable wire name for an event kind (e.g. "pfs_server").
const char* EvName(Ev e);
/// Inverse of EvName; false if `name` is not a known kind.
bool EvFromName(std::string_view name, Ev* out);

/// One fixed-size flight-recorder record (the copyable, inspection-side
/// form; the ring stores these with an atomic sequence word).
struct Event {
  double t_ns = 0;            ///< virtual timestamp (kind-specific anchor)
  double d_ns = 0;            ///< duration, when the kind carries one
  std::uint64_t req = 0;      ///< originating request ID (0 = none bound)
  std::uint64_t a0 = 0;       ///< kind-specific payload (see Ev comments)
  std::uint64_t a1 = 0;       ///< kind-specific payload
  std::uint64_t seq = 0;      ///< per-rank 1-based recording sequence
  Ev kind = Ev::kApiBegin;
  std::uint16_t rank = 0;
  char detail[24] = {};       ///< NUL-terminated, truncated context string
};

/// The per-rank ring buffers. One process-wide instance (like Registry);
/// rank slots are addressed through the same thread-local binding.
class FlightRecorder {
 public:
  static FlightRecorder& Get();

  /// Fast gate: true when events are recorded. OFF when PNC_IOSTAT=0 or
  /// PNC_FLIGHT=0; ON otherwise ("always-on" flight recording).
  static bool on() { return Get().on_.load(std::memory_order_relaxed); }
  void SetEnabled(bool on) { on_.store(on, std::memory_order_relaxed); }

  /// Events each rank's ring retains (PNC_FLIGHT_EVENTS, default 4096).
  [[nodiscard]] std::size_t capacity() const { return cap_; }

  /// Record one event on the calling thread's rank. `detail` may be
  /// nullptr to inherit the current request's detail string. Lock-free.
  void Record(Ev kind, double t_ns, double d_ns, std::uint64_t a0,
              std::uint64_t a1, const char* detail);

  /// Snapshot one rank's retained tail, oldest first. Best-effort while
  /// writers are live: records seen mid-write are dropped, not torn.
  [[nodiscard]] std::vector<Event> CollectRank(int rank) const;
  /// Snapshot every rank seen by the registry (index = rank).
  [[nodiscard]] std::vector<std::vector<Event>> Collect() const;
  /// Events recorded on `rank` since the last Reset (>= retained tail).
  [[nodiscard]] std::uint64_t RecordedCount(int rank) const;

  /// Drop every retained event (rings stay allocated). Benchmarks and
  /// tests call this between configurations; Registry::Reset forwards.
  void Reset();

 private:
  FlightRecorder();

  struct Rec {
    std::atomic<std::uint64_t> seq{0};  ///< 0 = empty, else Event::seq
    double t_ns;
    double d_ns;
    std::uint64_t req;
    std::uint64_t a0;
    std::uint64_t a1;
    Ev kind;
    std::uint16_t rank;
    char detail[24];
  };
  struct RankRing {
    std::atomic<Rec*> ring{nullptr};       ///< lazily allocated, leaked
    std::atomic<std::uint64_t> head{0};    ///< next sequence to claim
  };

  Rec* RingOf(RankRing& slot);

  RankRing slots_[kMaxRanks];
  std::size_t cap_;
  std::atomic<bool> on_;
};

// ---- request context (thread-local; rank == thread under simmpi) ----

/// The request ID bound to the calling thread, 0 if none.
std::uint64_t CurrentRequestId();
/// The "api:variable" detail of the calling thread's request ("" if none).
const char* CurrentRequestDetail();

/// RAII request scope: mints the next request ID for this rank, binds it
/// (and an "api:variable" detail) to the thread, and records an ApiBegin
/// event. Restores the previous binding on destruction, so nested API
/// calls (e.g. a header commit inside a data call) attribute correctly.
class ReqScope {
 public:
  ReqScope(const char* api, std::string_view var, double t_ns,
           std::uint64_t bytes, std::uint64_t is_write);
  ~ReqScope();
  ReqScope(const ReqScope&) = delete;
  ReqScope& operator=(const ReqScope&) = delete;

 private:
  std::uint64_t saved_id_;
  char saved_detail_[24];
};

// ---- pnc-events-v1 dump / parse ----

/// Serialize every rank's retained tail as one pnc-events-v1 JSON object.
std::string EventsToJson(const char* reason);

/// Write the pnc-events-v1 dump to stderr, and additionally to the file
/// named by PNC_FLIGHT_DUMP if set ("-" means stderr only). Used by the
/// hang watchdog immediately before abort.
void DumpEvents(const char* reason);

/// Write the dump only when PNC_FLIGHT_DUMP names a destination — the
/// quiet variant for paths that fire routinely under fault-injection
/// tests (pfs hard faults, crash-point recovery).
void DumpEventsOnHardFault(const char* reason);

/// A parsed pnc-events-v1 dump.
struct EventDump {
  std::string reason;
  std::size_t capacity = 0;
  struct RankTail {
    int rank = 0;
    std::uint64_t recorded = 0;  ///< events recorded since reset
    std::uint64_t dropped = 0;   ///< recorded - retained (ring overwrote)
    std::vector<Event> events;   ///< oldest first
  };
  std::vector<RankTail> ranks;
};

/// Parse a pnc-events-v1 dump (scans forward to the schema marker, so the
/// object may be embedded in surrounding output).
pnc::Result<EventDump> ParseEventsJson(std::string_view text);

}  // namespace iostat

// ---------------------------------------------------------------- macro API
// The only event surface production layers may use (lint-enforced, like
// PNC_IOSTAT_ADD/SPAN). Timestamps are always sampled by the caller from
// its virtual clock — recording never advances simulated time.
#if PNC_IOSTAT_ENABLED

/// Mint a request ID for this API call and bind it (plus "api:var" detail)
/// to the calling thread for the lifetime of the enclosing scope.
#define PNC_IOSTAT_REQ_SCOPE(api, var, t_ns, bytes, is_write)       \
  ::iostat::ReqScope pnc_iostat_req_scope_(                         \
      (api), (var), (t_ns), static_cast<std::uint64_t>(bytes),      \
      static_cast<std::uint64_t>(is_write))

/// The request ID bound to the calling thread (0 when none / disabled).
#define PNC_IOSTAT_CURRENT_REQ() ::iostat::CurrentRequestId()

/// Record one flight-recorder event. `kind` is the bare enumerator name
/// (e.g. kPfsServer); `detail` is a short string or nullptr to inherit the
/// current request's detail.
#define PNC_IOSTAT_EVENT(kind, t_ns, d_ns, a0, a1, detail)                \
  do {                                                                    \
    if (::iostat::FlightRecorder::on())                                   \
      ::iostat::FlightRecorder::Get().Record(                             \
          ::iostat::Ev::kind, (t_ns), (d_ns),                             \
          static_cast<std::uint64_t>(a0), static_cast<std::uint64_t>(a1), \
          (detail));                                                      \
  } while (0)

/// Dump the flight-recorder tail (stderr + PNC_FLIGHT_DUMP). Watchdog use.
#define PNC_IOSTAT_EVENT_DUMP(reason) ::iostat::DumpEvents(reason)

/// Dump only when PNC_FLIGHT_DUMP is set (hard faults, crash recovery).
#define PNC_IOSTAT_EVENT_DUMP_HARD(reason) \
  ::iostat::DumpEventsOnHardFault(reason)

#else  // compiled out: zero cost, no iostat symbols referenced

#define PNC_IOSTAT_REQ_SCOPE(api, var, t_ns, bytes, is_write)          \
  ((void)sizeof(api), (void)sizeof(var), (void)sizeof(t_ns),           \
   (void)sizeof(bytes), (void)sizeof(is_write))
#define PNC_IOSTAT_CURRENT_REQ() (std::uint64_t{0})
#define PNC_IOSTAT_EVENT(kind, t_ns, d_ns, a0, a1, detail)          \
  ((void)sizeof(t_ns), (void)sizeof(d_ns), (void)sizeof(a0),        \
   (void)sizeof(a1), (void)sizeof(detail))
#define PNC_IOSTAT_EVENT_DUMP(reason) ((void)sizeof(reason))
#define PNC_IOSTAT_EVENT_DUMP_HARD(reason) ((void)sizeof(reason))

#endif  // PNC_IOSTAT_ENABLED
