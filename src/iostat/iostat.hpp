// Cross-layer I/O statistics and tracing (the observability subsystem).
//
// The paper's argument (§4–§5) is entirely about *where* I/O time goes —
// header vs data bytes, independent vs collective paths, two-phase exchange
// vs file access. This module makes those quantities observable: a
// process-wide registry of per-rank counters plus opt-in virtual-time span
// events, populated by instrumentation points in every layer (pfs, mpiio,
// netcdf/pnetcdf, simmpi) and reduced into an iostat::Report
// (min/max/sum/mean across ranks) at the end of a run.
//
// Layering: iostat sits at the very bottom of the dependency graph (it links
// only pnc_util), so every other layer can record into it without cycles.
// Ranks are threads inside one process (simmpi), so "per rank" is a
// thread-local slot index bound by the simmpi runtime when it spawns rank
// threads; serial code records as rank 0.
//
// Cost discipline:
//   * Compile-time: building with -DPNC_IOSTAT_DISABLED (CMake option
//     PNC_IOSTAT=OFF) expands every PNC_IOSTAT_* macro to nothing.
//   * Runtime: counters are ON by default and disabled with PNC_IOSTAT=0 in
//     the environment; spans are OFF by default and enabled with
//     PNC_IOSTAT_SPANS=1. A disabled counter add is one relaxed atomic load
//     and a branch; an enabled one adds one relaxed fetch_add.
//
// Production layers must use only the PNC_IOSTAT_* macros below — a grep
// lint (tests/CMakeLists.txt) rejects direct `iostat::` references and raw
// stdout instrumentation in those trees.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#if defined(PNC_IOSTAT_DISABLED)
#define PNC_IOSTAT_ENABLED 0
#else
#define PNC_IOSTAT_ENABLED 1
#endif

namespace iostat {

/// Counter taxonomy, grouped by layer. Names (CtrName) are the stable JSON
/// schema keys — append new counters at the end of a group, never reorder.
enum class Ctr : unsigned {
  // --- pfs: the simulated striped file system ---
  kPfsReadOps = 0,        ///< read requests served (incl. zero-length)
  kPfsWriteOps,           ///< write requests served (incl. sync round trips)
  kPfsBytesRead,          ///< payload bytes actually transferred by reads
  kPfsBytesWritten,       ///< payload bytes actually transferred by writes
  kPfsFaultsInjected,     ///< failed Try* attempts (transient/permanent/crash)
  kPfsRetries,            ///< retries recorded by client layers
  kPfsQueueWaitNs,        ///< ns requests spent queued at servers (sum)
  kPfsBusyNs,             ///< ns of server service time granted (sum)
  kPfsHorizonNs,          ///< latest server-schedule completion (max gauge)
  kPfsServers,            ///< servers in the pool (max gauge)
  kPfsQueueDepthMax,      ///< deepest server queue observed (max gauge)
  kPfsDeadlineMisses,     ///< requests completing past their QoS deadline

  // --- mpiio: the MPI-IO subset ---
  kMpiioIndepReads,       ///< ReadAt calls entering the independent path
  kMpiioIndepWrites,      ///< WriteAt calls entering the independent path
  kMpiioCollReads,        ///< ReadAtAll calls (per rank)
  kMpiioCollWrites,       ///< WriteAtAll calls (per rank)
  kMpiioBytesRead,        ///< bytes moved from storage by this layer
  kMpiioBytesWritten,     ///< bytes moved to storage by this layer
  kMpiioSieveBytesWanted, ///< useful payload bytes through SievedTransfer
  kMpiioSieveBytesFile,   ///< bytes SievedTransfer moved at the file (>= wanted)
  kMpiioCollPayloadBytes, ///< payload bytes routed through two-phase I/O
  kMpiioAggBytes,         ///< bytes aggregators moved at the file
  kMpiioExchangeMsgs,     ///< two-phase exchange messages (excl. self)
  kMpiioExchangeNs,       ///< two-phase exchange-phase virtual time
  kMpiioIoPhaseNs,        ///< two-phase aggregator I/O-phase virtual time
  kMpiioRetries,          ///< transient-fault retries consumed by RetryIo

  // --- netcdf/pnetcdf: the library layer (serial + parallel share keys) ---
  kNcDataCalls,           ///< data-access API calls reaching the I/O engine
  kNcHeaderBytesRead,     ///< file-header bytes read (incl. numrecs probes)
  kNcHeaderBytesWritten,  ///< file-header bytes written (incl. numrecs)
  kNcDataBytesRead,       ///< variable-data bytes requested by callers
  kNcDataBytesWritten,    ///< variable-data bytes supplied by callers
  kNcModeSwitches,        ///< EndDef/Redef/BeginIndepData/EndIndepData
  kNcReqsCoalesced,       ///< nonblocking requests merged by WaitAll
  kNcSumChunksVerified,   ///< data chunks whose CRC a read recomputed
  kNcSumMismatch,         ///< chunk CRC mismatches observed (pre-heal)
  kNcSumHealedRetries,    ///< chunk re-reads that healed a mismatch

  // --- simmpi: the thread-backed message layer ---
  kMpiMessages,           ///< point-to-point messages delivered
  kMpiMessageBytes,       ///< point-to-point payload bytes
  kMpiCollectives,        ///< collective entry calls (composites count parts)

  kCount
};

inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Ctr::kCount);

/// Stable "layer.name" key for the JSON schema (e.g. "pfs.bytes_written").
const char* CtrName(Ctr c);

/// Most rank slots a process can address; BindRank clamps beyond this.
inline constexpr int kMaxRanks = 1024;

/// A closed span on one rank's virtual timeline.
struct Span {
  const char* cat;   ///< static string: layer ("mpiio", "pfs", "pnetcdf")
  const char* name;  ///< static string: phase ("exchange", "io", "write")
  double start_ns;
  double end_ns;
};

class Registry {
 public:
  /// The process-wide registry.
  static Registry& Get();

  // ---- runtime gates (cached once from PNC_IOSTAT / PNC_IOSTAT_SPANS) ----
  static bool counters_on() {
    return Get().counters_on_.load(std::memory_order_relaxed);
  }
  static bool spans_on() {
    return Get().spans_on_.load(std::memory_order_relaxed);
  }
  void SetCountersEnabled(bool on) {
    counters_on_.store(on, std::memory_order_relaxed);
  }
  void SetSpansEnabled(bool on) {
    spans_on_.store(on, std::memory_order_relaxed);
  }

  // ---- per-thread rank binding ----
  /// Bind the calling thread to a rank slot. The simmpi runtime binds every
  /// rank thread it spawns; unbound threads (serial code, main) are rank 0.
  static void BindRank(int rank);
  [[nodiscard]] static int rank();

  // ---- recording (hot paths; call through the macros) ----
  void Add(Ctr c, std::uint64_t n);
  /// Raise counter `c` to at least `n` (a high-water gauge, e.g. the deepest
  /// server queue seen). CAS loop; still relaxed.
  void Max(Ctr c, std::uint64_t n);
  void AddSpan(const char* cat, const char* name, double start_ns,
               double end_ns);

  // ---- inspection ----
  /// Ranks observed so far (max bound rank + 1; at least 1).
  [[nodiscard]] int nranks() const;
  [[nodiscard]] std::uint64_t Value(int rank, Ctr c) const;
  [[nodiscard]] std::vector<Span> SpansOfRank(int rank) const;

  /// Zero every counter, drop every span, and forget bound ranks (slots stay
  /// allocated). Benchmarks call this between configurations.
  void Reset();

  /// If PNC_IOSTAT_REPORT names a file (or "-" for stdout), write the JSON
  /// report there. Called by Dataset::Close on rank 0 — after the collective
  /// close barrier, so every rank's counters are final ("produced
  /// collectively at Close"). Harmless no-op otherwise.
  void AutoReportAtClose();

 private:
  Registry();

  struct RankSlot {
    std::atomic<std::uint64_t> c[kNumCounters] = {};
    std::mutex span_mu;
    std::vector<Span> spans;
  };

  std::unique_ptr<RankSlot[]> slots_;
  std::atomic<int> max_rank_{0};
  std::atomic<bool> counters_on_{true};
  std::atomic<bool> spans_on_{false};
  std::mutex report_mu_;  ///< serializes AutoReportAtClose writers
};

}  // namespace iostat

// ---------------------------------------------------------------- macro API
// The only instrumentation surface production layers may use. `ctr` is the
// bare enumerator name (e.g. kPfsBytesRead); the macro qualifies it.
#if PNC_IOSTAT_ENABLED

/// Add `n` to counter `ctr` (bare enumerator, e.g. kPfsBytesRead) on the
/// calling thread's rank.
#define PNC_IOSTAT_ADD(ctr, n)                                       \
  do {                                                               \
    if (::iostat::Registry::counters_on())                           \
      ::iostat::Registry::Get().Add(::iostat::Ctr::ctr,              \
                                    static_cast<std::uint64_t>(n));  \
  } while (0)

/// Record a [start_ns, end_ns] span on the calling thread's rank timeline.
/// `cat`/`name` must be string literals (stored by pointer).
#define PNC_IOSTAT_SPAN(cat, name, start_ns, end_ns)                     \
  do {                                                                   \
    if (::iostat::Registry::spans_on())                                  \
      ::iostat::Registry::Get().AddSpan(cat, name, start_ns, end_ns);    \
  } while (0)

/// Raise counter `ctr` to at least `n` (high-water gauge, e.g. queue depth).
#define PNC_IOSTAT_MAX(ctr, n)                                       \
  do {                                                               \
    if (::iostat::Registry::counters_on())                           \
      ::iostat::Registry::Get().Max(::iostat::Ctr::ctr,              \
                                    static_cast<std::uint64_t>(n));  \
  } while (0)

/// Bind the calling thread to rank `r` (simmpi runtime only).
#define PNC_IOSTAT_BIND_RANK(r) ::iostat::Registry::BindRank(r)

/// Emit the JSON report if PNC_IOSTAT_REPORT requests one (Close hook).
#define PNC_IOSTAT_AUTO_REPORT() ::iostat::Registry::Get().AutoReportAtClose()

#else  // compiled out: zero cost, no iostat symbols referenced
// sizeof keeps the operands syntactically alive (no unused-variable
// warnings) without evaluating them.

#define PNC_IOSTAT_ADD(ctr, n) ((void)sizeof(n))
#define PNC_IOSTAT_MAX(ctr, n) ((void)sizeof(n))
#define PNC_IOSTAT_SPAN(cat, name, start_ns, end_ns) \
  ((void)sizeof(start_ns), (void)sizeof(end_ns))
#define PNC_IOSTAT_BIND_RANK(r) ((void)sizeof(r))
#define PNC_IOSTAT_AUTO_REPORT() ((void)0)

#endif  // PNC_IOSTAT_ENABLED
