// iostat::Report — cross-rank reduction of the counter registry, plus the
// stable JSON schema ("pnc-iostat-v1") shared by the benches' BENCH_*.json
// records, the PNC_IOSTAT_REPORT auto-dump, and the ncstat CLI.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "iostat/iostat.hpp"
#include "iostat/pattern.hpp"
#include "iostat/timeline.hpp"
#include "util/status.hpp"

namespace iostat {

struct Report {
  /// Per-counter reduction across ranks [0, nranks).
  struct Agg {
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::uint64_t sum = 0;
    double mean = 0.0;
  };

  int nranks = 0;
  std::array<Agg, kNumCounters> counters{};

  // Derived ratios (always finite; 1.0 / 0.0 when the path never ran).
  /// Data-sieving read/write amplification: bytes moved at the file divided
  /// by useful payload bytes, over everything routed through SievedTransfer.
  double sieve_amplification = 1.0;
  /// Two-phase amplification: bytes aggregators moved at the file divided by
  /// the payload routed through collective buffering (RMW padding shows up
  /// here).
  double twophase_amplification = 1.0;
  /// Fraction of two-phase time spent in the exchange phase
  /// (exchange / (exchange + io)).
  double exchange_frac = 0.0;
  /// Mean busy fraction of one pfs server over the schedule horizon:
  /// busy_ns / (servers * horizon_ns). How loaded the server pool was.
  double pfs_busy_frac = 0.0;
  /// Share of server-side time requests spent queued rather than served:
  /// queue_wait / (queue_wait + busy). The contention signal the QoS
  /// disciplines (pfs/sched.hpp) exist to shape.
  double pfs_queue_wait_frac = 0.0;

  /// Access-pattern profile (pattern.hpp). `pattern.present` is false when
  /// the profiler recorded nothing (gated off, or no I/O ran); the JSON then
  /// omits the "pattern" member entirely, keeping gated-off output
  /// byte-identical to pre-profiler reports.
  PatternSummary pattern;

  /// Time-resolved telemetry (timeline.hpp), same presence contract as
  /// `pattern`: absent from the JSON unless PNC_IOSTAT_TIMELINE recorded
  /// something, so gated-off reports stay byte-identical.
  TimelineSummary timeline;

  [[nodiscard]] const Agg& operator[](Ctr c) const {
    return counters[static_cast<std::size_t>(c)];
  }
};

/// Reduce the process-wide registry into a Report. Every rank's counters
/// must be final (call after the collective Close barrier or after
/// simmpi::Run returns).
Report BuildReport();

/// One-line JSON encoding of the report (schema "pnc-iostat-v1"):
///   {"schema":"pnc-iostat-v1","nranks":N,
///    "counters":{"pfs.read_ops":{"min":..,"max":..,"sum":..,"mean":..},...},
///    "derived":{"sieve_amplification":..,"twophase_amplification":..,
///               "exchange_frac":..},
///    "pattern":{"schema":"pnc-pattern-v1",...},   // only when present
///    "timeline":{"schema":"pnc-timeline-v1",...}} // only when present
std::string ToJson(const Report& rep);

/// Parse a report previously produced by ToJson (or embedded as the
/// "iostat" member of a bench record). Tolerates unknown counter keys.
pnc::Result<Report> ParseReportJson(std::string_view text);

/// Human-readable layer breakdown (the ncstat output).
std::string PrettyPrint(const Report& rep);

}  // namespace iostat
