// Critical-path analysis over flight-recorder events.
//
// The two-phase collective path emits paired phase arrival/departure events
// on every rank (CollBegin/End, XchgBegin/End, IoBegin/End) plus per-server
// service events from pfs. This module aligns those per-rank streams into
// collective *ops* and decomposes each op's virtual wall time, per rank,
// into three named segments:
//
//   straggler-wait = time the rank spent not exchanging and not doing file
//                    I/O (arriving late, or blocked on the final clock
//                    sync waiting for slower ranks);
//   exchange       = time inside the two-phase exchange windows;
//   file-io        = time inside aggregator file-domain I/O.
//
// The three segments tile each rank's [op begin, depart] interval exactly.
// Departures are clock-synced at the end of the collective, but the sync
// allreduce itself costs per-rank time (tree roles differ), so departs can
// trail the op end by that skew — the analyzer attributes ~100% (and, by
// the acceptance test, >= 95%) of (nranks x wall) to named (rank, phase)
// segments. The per-op `attributed_frac` reports that invariant so
// consumers (ncstat --critpath, the trace-label ctest) can assert it.
//
// Ops are aligned across ranks by tail position (k-th most recent), since
// a bounded ring may have dropped different amounts of history per rank.
#pragma once

#include <string>
#include <vector>

#include "iostat/events.hpp"

namespace iostat {

struct CritPath {
  struct RankSeg {
    int rank = 0;
    std::uint64_t req = 0;      ///< request ID driving this rank's op
    std::string detail;         ///< "api:variable" of that request
    double arrive_ns = 0;       ///< CollBegin timestamp
    double depart_ns = 0;       ///< CollEnd timestamp (post clock sync)
    double wait_ns = 0;         ///< straggler wait within [op begin, depart]
    double exchange_ns = 0;
    double io_ns = 0;
  };
  struct ServerSeg {
    int server = 0;
    std::string tenant;         ///< "" = default tenant ("r:<name>" details)
    std::uint64_t ops = 0;
    std::uint64_t bytes = 0;
    double queue_ns = 0;        ///< summed queue wait behind earlier work
    double service_ns = 0;      ///< summed service time
  };
  struct Op {
    std::size_t index = 0;      ///< tail-aligned position (0 = oldest kept)
    bool is_write = false;
    bool ok = true;             ///< every rank's CollEnd reported success
    double begin_ns = 0;        ///< min CollBegin across ranks
    double end_ns = 0;          ///< max CollEnd across ranks
    std::vector<RankSeg> ranks;
    std::vector<ServerSeg> servers;  ///< pfs service inside the op window

    [[nodiscard]] double wall_ns() const { return end_ns - begin_ns; }
    /// Sum of the named per-rank segments (wait + exchange + io).
    [[nodiscard]] double attributed_ns() const;
    /// attributed_ns / (nranks * wall_ns); 1.0 when fully decomposed.
    [[nodiscard]] double attributed_frac() const;
  };
  std::vector<Op> ops;
};

/// Decompose the collective ops found in a per-rank event snapshot
/// (FlightRecorder::Collect() order: index == rank, oldest event first).
CritPath AnalyzeCritPath(const std::vector<std::vector<Event>>& ranks);

/// Same, over a parsed pnc-events-v1 dump (ncstat --critpath=FILE).
CritPath AnalyzeCritPath(const EventDump& dump);

/// Human-readable rendering (ncstat --critpath).
std::string PrettyPrintCritPath(const CritPath& cp);

}  // namespace iostat
