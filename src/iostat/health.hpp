// Online SLO health monitoring over timeline buckets.
//
// A declarative rule set (PNC_SLO, or programmatic for tests) is evaluated
// at every sealed timeline bucket boundary — i.e. the moment the observed
// virtual-time high-water mark crosses out of a bucket — instead of once at
// Close. A rule that holds for `window` consecutive sealed buckets is a
// violation: the TimelineRegistry emits one `slo_violation` flight-recorder
// event for the episode (t = window start, detail = rule id) while the run
// is still in flight, so a tenant starving mid-storm is visible in the
// blackbox even if the final aggregates look healthy.
//
// The monitor itself is pure bookkeeping: the timeline owns the bucketed
// data, assembles one SloBucketView per rule per sealed bucket, and feeds
// them here in virtual-time order. Everything is deterministic given the
// bucket contents — evaluation never advances virtual clocks and never
// depends on thread interleaving (buckets are order-independent sums).
//
// Production layers never touch this API; only src/iostat and the CLIs do
// (lint-enforced, see tests/CMakeLists.txt lint.no_direct_timeline).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace iostat {

/// One declarative SLO rule. PNC_SLO syntax (';'-separated):
///   kind[:tenant[:threshold[:window]]]
/// e.g. "p99_wait:steady:1e7;bw_floor::50:4". An empty tenant selects the
/// aggregate across all tenants.
struct SloRule {
  enum class Kind {
    kP99WaitNs = 0,  ///< per-bucket p99 queue wait (ns) above threshold
    kMissRate,       ///< deadline misses / grants in a bucket above threshold
    kRetryRate,      ///< I/O retries per virtual second above threshold
    kFaultRate,      ///< injected faults per virtual second above threshold
    kBwFloorMBps,    ///< total pfs bandwidth (MB/s) below threshold
  };
  Kind kind = Kind::kP99WaitNs;
  std::string id;      ///< stable short id; lands in the flight-event detail
  std::string tenant;  ///< tenant selector; "" = all tenants combined
  double threshold = 0.0;
  int window = 1;      ///< consecutive sealed buckets required to trip
};

/// Stable wire name for a rule kind (e.g. "p99_wait").
const char* SloKindName(SloRule::Kind k);
/// Inverse of SloKindName; false if `name` is not a known kind.
bool SloKindFromName(std::string_view name, SloRule::Kind* out);

/// Parse a PNC_SLO-style rule list. Malformed entries are dropped.
std::vector<SloRule> ParseSloRules(std::string_view text);
/// Objective defaults when PNC_SLO is unset: any deadline miss and any
/// injected fault violate (window 1).
std::vector<SloRule> DefaultSloRules();
/// Rules from PNC_SLO, or DefaultSloRules() when unset/empty.
std::vector<SloRule> SloRulesFromEnv();

/// Everything one sealed bucket offers a rule. Tenant-selected fields
/// (p99/grants/misses) are already narrowed to the rule's tenant by the
/// caller; rate fields are normalized to the bucket length.
struct SloBucketView {
  double start_ns = 0.0;
  double len_ns = 0.0;
  double mbps = 0.0;          ///< total pfs MB/s across servers
  double retries_per_s = 0.0;
  double faults_per_s = 0.0;
  double p99_wait_ns = 0.0;   ///< worst matching tenant's per-bucket p99
  std::uint64_t grants = 0;   ///< matching tenants' grants
  std::uint64_t misses = 0;   ///< matching tenants' deadline misses
};

/// Does `r` hold (= bucket counts toward a violation) on this bucket?
/// `observed` receives the measured value the rule compared.
bool SloRuleTrips(const SloRule& r, const SloBucketView& v, double* observed);

/// Per-rule verdict accumulated over a run (the "health" member of the
/// pnc-timeline-v1 section).
struct SloRuleStatus {
  SloRule rule;
  std::uint64_t tripped_buckets = 0;  ///< buckets where the predicate held
  std::uint64_t violations = 0;       ///< emitted violation episodes
  double first_violation_ns = -1.0;   ///< start of the first episode (-1 none)
  double worst = 0.0;                 ///< most extreme observed value
};

struct HealthStatus {
  bool evaluated = false;  ///< any sealed bucket fed to the monitor?
  std::uint64_t total_violations = 0;
  std::vector<SloRuleStatus> rules;
};

/// Incremental evaluator. Owned by the TimelineRegistry; fed sealed buckets
/// in increasing virtual-time order (bucket indices may rescale under
/// coarsening, so episode state is kept in ns, not bucket numbers).
class HealthMonitor {
 public:
  /// One violation episode to surface as a flight-recorder event.
  struct Violation {
    std::size_t rule = 0;    ///< index into rules()
    double start_ns = 0.0;   ///< first tripped bucket of the episode
    double end_ns = 0.0;     ///< end of the bucket that completed the window
    double observed = 0.0;   ///< measured value in the completing bucket
    std::uint64_t bucket = 0;
  };

  void SetRules(std::vector<SloRule> rules);
  [[nodiscard]] const std::vector<SloRule>& rules() const { return rules_; }

  /// Feed one sealed bucket; `per_rule` parallels rules(). Returns the
  /// violation episodes that completed on this bucket (at most one per
  /// rule; a sustained breach emits once until it clears and re-trips).
  std::vector<Violation> OnBucketSealed(std::uint64_t bucket,
                                        const std::vector<SloBucketView>& per_rule);

  [[nodiscard]] HealthStatus Status() const;
  void Reset();

 private:
  struct RuleState {
    int consec = 0;               ///< consecutive tripped buckets
    bool worst_init = false;      ///< st.worst holds a real observation
    double episode_start_ns = 0;  ///< start of the current tripped streak
    double last_emit_end_ns = -1.0;
    SloRuleStatus st;
  };
  std::vector<SloRule> rules_;
  std::vector<RuleState> state_;
  bool fed_ = false;
};

/// Human-readable verdict table (ncstat --health).
std::string RenderHealth(const HealthStatus& h);

}  // namespace iostat
