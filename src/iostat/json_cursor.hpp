// Minimal JSON reading shared by the iostat parsers (report.cpp and
// events.cpp). Internal to src/iostat — tools parse through the typed
// ParseReportJson / ParseEventsJson entry points instead.
//
// The cursor handles exactly the JSON the serializers emit plus arbitrary
// unknown members (SkipValue nests), which is what lets a schema object be
// fished out of surrounding output (bench records, stderr dumps).
#pragma once

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>

namespace iostat::jsoncur {

struct Cursor {
  const char* p;
  const char* end;

  void SkipWs() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
  }
  bool Eat(char c) {
    SkipWs();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
  bool ParseString(std::string* out) {
    SkipWs();
    if (p >= end || *p != '"') return false;
    ++p;
    out->clear();
    while (p < end && *p != '"') {
      char c = *p++;
      if (c == '\\' && p < end) {
        const char e = *p++;
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            // The escaper only emits \u00xx for control bytes; decode any
            // codepoint < 0x100 to one byte and reject the rest.
            if (p + 4 > end) return false;
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = *p++;
              v <<= 4;
              if (h >= '0' && h <= '9')
                v |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                v |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                v |= static_cast<unsigned>(h - 'A' + 10);
              else
                return false;
            }
            if (v > 0xff) return false;
            c = static_cast<char>(v);
            break;
          }
          default: c = e; break;  // \" \\ \/
        }
      }
      out->push_back(c);
    }
    if (p >= end) return false;
    ++p;
    return true;
  }
  bool ParseNumber(double* out) {
    SkipWs();
    char* after = nullptr;
    *out = std::strtod(p, &after);
    if (after == p) return false;
    p = after;
    return true;
  }
  bool SkipValue() {
    SkipWs();
    if (p >= end) return false;
    if (*p == '"') {
      std::string s;
      return ParseString(&s);
    }
    if (*p == '{' || *p == '[') {
      const char open = *p;
      const char close = open == '{' ? '}' : ']';
      ++p;
      int depth = 1;
      while (p < end && depth > 0) {
        if (*p == '"') {
          std::string s;
          if (!ParseString(&s)) return false;
          continue;
        }
        if (*p == open) ++depth;
        if (*p == close) --depth;
        ++p;
      }
      return depth == 0;
    }
    // number / true / false / null
    while (p < end && *p != ',' && *p != '}' && *p != ']' &&
           !std::isspace(static_cast<unsigned char>(*p)))
      ++p;
    return true;
  }
};

/// Position `cur.p` at the '{' opening the object that contains the literal
/// `marker` (e.g. a schema tag), scanning forward from the current position.
/// Returns false if the marker is absent.
inline bool SeekObjectWithMarker(Cursor& cur, const char* marker) {
  const std::size_t n = std::strlen(marker);
  const char* hit = nullptr;
  for (const char* q = cur.p; q + n <= cur.end; ++q) {
    if (std::memcmp(q, marker, n) == 0) {
      hit = q;
      break;
    }
  }
  if (hit == nullptr) return false;
  // Walk back to the '{' that opens the object holding the marker's member.
  int depth = 0;
  for (const char* q = hit; q >= cur.p; --q) {
    if (*q == '}') ++depth;
    if (*q == '{') {
      if (depth == 0) {
        cur.p = q;
        return true;
      }
      --depth;
    }
  }
  return false;
}

}  // namespace iostat::jsoncur
