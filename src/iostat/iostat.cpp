#include "iostat/iostat.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "iostat/events.hpp"
#include "iostat/pattern.hpp"
#include "iostat/report.hpp"
#include "iostat/timeline.hpp"

namespace iostat {

namespace {

/// Rank slot bound to the calling thread (0 for unbound/serial threads).
thread_local int tl_rank = 0;

bool EnvFlag(const char* name, bool def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "false") == 0);
}

}  // namespace

const char* CtrName(Ctr c) {
  switch (c) {
    case Ctr::kPfsReadOps: return "pfs.read_ops";
    case Ctr::kPfsWriteOps: return "pfs.write_ops";
    case Ctr::kPfsBytesRead: return "pfs.bytes_read";
    case Ctr::kPfsBytesWritten: return "pfs.bytes_written";
    case Ctr::kPfsFaultsInjected: return "pfs.faults_injected";
    case Ctr::kPfsRetries: return "pfs.retries";
    case Ctr::kPfsQueueWaitNs: return "pfs.queue_wait_ns";
    case Ctr::kPfsBusyNs: return "pfs.busy_ns";
    case Ctr::kPfsHorizonNs: return "pfs.horizon_ns";
    case Ctr::kPfsServers: return "pfs.servers";
    case Ctr::kPfsQueueDepthMax: return "pfs.queue_depth_max";
    case Ctr::kPfsDeadlineMisses: return "pfs.deadline_misses";
    case Ctr::kMpiioIndepReads: return "mpiio.indep_reads";
    case Ctr::kMpiioIndepWrites: return "mpiio.indep_writes";
    case Ctr::kMpiioCollReads: return "mpiio.coll_reads";
    case Ctr::kMpiioCollWrites: return "mpiio.coll_writes";
    case Ctr::kMpiioBytesRead: return "mpiio.bytes_read";
    case Ctr::kMpiioBytesWritten: return "mpiio.bytes_written";
    case Ctr::kMpiioSieveBytesWanted: return "mpiio.sieve_bytes_wanted";
    case Ctr::kMpiioSieveBytesFile: return "mpiio.sieve_bytes_file";
    case Ctr::kMpiioCollPayloadBytes: return "mpiio.coll_payload_bytes";
    case Ctr::kMpiioAggBytes: return "mpiio.agg_bytes";
    case Ctr::kMpiioExchangeMsgs: return "mpiio.exchange_msgs";
    case Ctr::kMpiioExchangeNs: return "mpiio.exchange_ns";
    case Ctr::kMpiioIoPhaseNs: return "mpiio.io_phase_ns";
    case Ctr::kMpiioRetries: return "mpiio.retries";
    case Ctr::kNcDataCalls: return "nc.data_calls";
    case Ctr::kNcHeaderBytesRead: return "nc.header_bytes_read";
    case Ctr::kNcHeaderBytesWritten: return "nc.header_bytes_written";
    case Ctr::kNcDataBytesRead: return "nc.data_bytes_read";
    case Ctr::kNcDataBytesWritten: return "nc.data_bytes_written";
    case Ctr::kNcModeSwitches: return "nc.mode_switches";
    case Ctr::kNcReqsCoalesced: return "nc.reqs_coalesced";
    case Ctr::kNcSumChunksVerified: return "nc.sum_chunks_verified";
    case Ctr::kNcSumMismatch: return "nc.sum_mismatch";
    case Ctr::kNcSumHealedRetries: return "nc.sum_healed_retries";
    case Ctr::kMpiMessages: return "mpi.messages";
    case Ctr::kMpiMessageBytes: return "mpi.message_bytes";
    case Ctr::kMpiCollectives: return "mpi.collectives";
    case Ctr::kCount: break;
  }
  return "unknown";
}

Registry::Registry() : slots_(new RankSlot[kMaxRanks]) {
  counters_on_.store(EnvFlag("PNC_IOSTAT", true), std::memory_order_relaxed);
  spans_on_.store(EnvFlag("PNC_IOSTAT_SPANS", false),
                  std::memory_order_relaxed);
}

Registry& Registry::Get() {
  static Registry* g = new Registry();  // leaked: outlives rank threads
  return *g;
}

void Registry::BindRank(int rank) {
  rank = std::clamp(rank, 0, kMaxRanks - 1);
  tl_rank = rank;
  auto& reg = Get();
  int seen = reg.max_rank_.load(std::memory_order_relaxed);
  while (rank > seen &&
         !reg.max_rank_.compare_exchange_weak(seen, rank,
                                              std::memory_order_relaxed)) {
  }
}

int Registry::rank() { return tl_rank; }

void Registry::Add(Ctr c, std::uint64_t n) {
  slots_[tl_rank].c[static_cast<std::size_t>(c)].fetch_add(
      n, std::memory_order_relaxed);
}

void Registry::Max(Ctr c, std::uint64_t n) {
  auto& slot = slots_[tl_rank].c[static_cast<std::size_t>(c)];
  std::uint64_t seen = slot.load(std::memory_order_relaxed);
  while (n > seen &&
         !slot.compare_exchange_weak(seen, n, std::memory_order_relaxed)) {
  }
}

void Registry::AddSpan(const char* cat, const char* name, double start_ns,
                       double end_ns) {
  auto& slot = slots_[tl_rank];
  std::lock_guard<std::mutex> lk(slot.span_mu);
  slot.spans.push_back({cat, name, start_ns, end_ns});
}

int Registry::nranks() const {
  return max_rank_.load(std::memory_order_relaxed) + 1;
}

std::uint64_t Registry::Value(int rank, Ctr c) const {
  if (rank < 0 || rank >= kMaxRanks) return 0;
  return slots_[rank].c[static_cast<std::size_t>(c)].load(
      std::memory_order_relaxed);
}

std::vector<Span> Registry::SpansOfRank(int rank) const {
  if (rank < 0 || rank >= kMaxRanks) return {};
  auto& slot = slots_[rank];
  std::lock_guard<std::mutex> lk(slot.span_mu);
  return slot.spans;
}

void Registry::Reset() {
  const int n = nranks();
  for (int r = 0; r < n; ++r) {
    auto& slot = slots_[r];
    for (auto& a : slot.c) a.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(slot.span_mu);
    slot.spans.clear();
  }
  max_rank_.store(0, std::memory_order_relaxed);
  FlightRecorder::Get().Reset();
  PatternRegistry::Get().Reset();
  TimelineRegistry::Get().Reset();
}

void Registry::AutoReportAtClose() {
  const char* path = std::getenv("PNC_IOSTAT_REPORT");
  if (path == nullptr || *path == '\0') return;
  if (!counters_on()) return;
  const Report rep = BuildReport();
  const std::string json = ToJson(rep) + "\n";
  std::lock_guard<std::mutex> lk(report_mu_);
  if (std::strcmp(path, "-") == 0) {
    std::fwrite(json.data(), 1, json.size(), stdout);
    std::fflush(stdout);
    return;
  }
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return;  // reporting must never fail the I/O path
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

}  // namespace iostat
