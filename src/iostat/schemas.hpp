// Stable wire-schema names, in one place.
//
// Every serializer writes these markers and every parser seeks them; keeping
// the literals here means a version bump cannot silently diverge between the
// writer and the parser of the same schema (the pair moves together or not
// at all). Parsers scan for the quoted marker before committing to a full
// parse, so the constants double as the embedded-object search keys.
#pragma once

namespace iostat::schemas {

/// Counter/derived-metric report (iostat::ToJson / ParseReportJson).
inline constexpr const char* kIostat = "pnc-iostat-v1";
/// Access-pattern profiler section (PatternToJson / ParsePatternValue).
inline constexpr const char* kPattern = "pnc-pattern-v1";
/// Time-resolved telemetry section (TimelineToJson / ParseTimelineValue).
inline constexpr const char* kTimeline = "pnc-timeline-v1";
/// Flight-recorder dump (EventsToJson / ParseEventsJson).
inline constexpr const char* kEvents = "pnc-events-v1";
/// One benchmark record line (bench::Recorder / benchlib ParseRecordLine).
inline constexpr const char* kBench = "pnc-bench-v1";
/// One suite header line (ncbench / benchlib ParseHeaderLine).
inline constexpr const char* kBenchSuite = "pnc-bench-suite-v1";

}  // namespace iostat::schemas
