// Time-resolved telemetry: virtual-time bucketed rate timelines.
//
// The counters in iostat.hpp and the profiler in pattern.hpp report
// end-of-run totals; a mid-run bandwidth collapse, a queue-depth spike or a
// tenant briefly starving is invisible unless it survives into the final
// sum. This module buckets the same capture points by virtual time into
// per-interval series — per-server pfs bytes/busy/queue depth, per-tenant
// bytes/queue-wait p99/deadline misses, and global tracks for exchange
// messages, retries, faults, mode switches and straggler wait — and feeds
// an online SLO health monitor (health.hpp) at every sealed bucket
// boundary.
//
// Cost discipline mirrors pattern.hpp:
//   * Compile-time: -DPNC_IOSTAT=OFF expands every PNC_IOSTAT_TIMELINE_*
//     macro to nothing.
//   * Runtime: OFF by default — PNC_IOSTAT_TIMELINE=1 opts in, so the
//     iostat report JSON (and every committed bench baseline embedding it)
//     is byte-identical when unset. A disabled record is one relaxed atomic
//     load and a branch.
//
// Determinism: every accumulator is order-independent (per-bucket sums,
// maxes, mergeable log2 wait histograms keyed by fixed bucket indices), and
// recording NEVER advances virtual clocks — timestamps are sampled by the
// caller. Cell count and bucket range stay bounded by coarsening: when
// either cap is hit, neighbouring buckets merge pairwise and the cell width
// doubles (pattern.cpp heatmap style), which is loss of resolution, never
// of totals.
//
// Production layers must use only the PNC_IOSTAT_TIMELINE_* macros below —
// a grep lint (tests/CMakeLists.txt, lint.no_direct_timeline_in_production)
// rejects direct TimelineRegistry/HealthMonitor references in those trees.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "iostat/health.hpp"
#include "iostat/iostat.hpp"
#include "iostat/pattern.hpp"

namespace iostat {

/// Global (non-server, non-tenant) timeline tracks. Wire names
/// (TlTrackName) are part of the pnc-timeline-v1 vocabulary — append only.
enum class TlTrack : int {
  kExchangeMsgs = 0,  ///< two-phase exchange messages posted
  kRetries,           ///< transient-fault I/O retries consumed
  kFaults,            ///< injected pfs faults surfaced
  kModeSwitches,      ///< define/data/independent-mode transitions
  kStragglerWaitNs,   ///< ns spent waiting at collective clock sync
};
inline constexpr int kNumTlTracks = 5;

/// Stable wire name for a track (e.g. "exchange_msgs").
const char* TlTrackName(TlTrack t);

/// One bucket of one per-server series. `bucket * cell_ns` is the cell's
/// start time; bytes/grants/busy attribute to the grant's begin cell.
struct TlServerCell {
  std::uint64_t bucket = 0;
  int server = 0;
  double bytes = 0.0;
  double busy_ns = 0.0;
  std::uint64_t grants = 0;
  std::uint64_t depth_max = 0;
};

/// One bucket of one per-tenant series. p99_wait_ns is the upper bound of
/// the bucketed per-grant queue-wait histogram (order-independent, merges
/// exactly under coarsening).
struct TlTenantCell {
  std::uint64_t bucket = 0;
  std::string tenant;
  double bytes = 0.0;
  double wait_ns = 0.0;  ///< summed queue wait
  std::uint64_t grants = 0;
  std::uint64_t misses = 0;
  double p99_wait_ns = 0.0;
};

/// One bucket of one global track.
struct TlTrackCell {
  int track = 0;  ///< TlTrack as int
  std::uint64_t bucket = 0;
  double value = 0.0;
};

/// Snapshot of the timeline (the `pnc-timeline-v1` JSON section).
/// Deterministically ordered: servers by (bucket, server), tenants by
/// (bucket, name), tracks by (track, bucket).
struct TimelineSummary {
  bool present = false;  ///< anything recorded? absent => no JSON emitted
  double cell_ns = 0.0;
  double horizon_ns = 0.0;  ///< high-water mark of observed virtual time
  std::vector<TlServerCell> servers;
  std::vector<TlTenantCell> tenants;
  std::vector<TlTrackCell> tracks;
  HealthStatus health;
};

/// p99 upper bound of a log2 histogram: the top of the smallest bucket
/// whose cumulative count reaches 99%, clamped to the observed max.
std::uint64_t HistP99UpperBound(const PatternHist& h);

/// Process-wide timeline accumulator, a sibling of PatternRegistry with the
/// same lifetime rules (leaked singleton, Reset between bench configs via
/// Registry::Reset). All Record* methods are thread-safe.
class TimelineRegistry {
 public:
  static TimelineRegistry& Get();

  /// Runtime gate, cached once from PNC_IOSTAT && PNC_IOSTAT_TIMELINE
  /// (timeline defaults OFF; everything else in iostat defaults ON).
  static bool on() { return Get().on_.load(std::memory_order_relaxed); }
  void SetEnabled(bool on) { on_.store(on, std::memory_order_relaxed); }

  /// Replace the SLO rule set (tests, ncstat --health). The constructor
  /// seeds from PNC_SLO / DefaultSloRules().
  void SetSloRules(std::vector<SloRule> rules);
  [[nodiscard]] std::vector<SloRule> SloRules();

  /// pfs: one per-server service grant, with its tenant class name. Busy
  /// time splits across the cells the grant overlaps; bytes/grants/waits
  /// attribute to the begin cell (matching the pattern heatmap).
  void RecordPfsGrant(int server, const char* tenant, std::uint64_t bytes,
                      double begin_ns, double done_ns, std::uint64_t depth,
                      double wait_ns, bool deadline_missed);

  /// Any layer: add `value` to a global track at virtual time `t_ns`.
  void RecordMark(TlTrack track, double t_ns, double value);

  /// Snapshot everything accumulated. Seals (and health-evaluates) every
  /// complete bucket up to the high-water mark first, emitting any pending
  /// slo_violation flight events — so the health verdict in the report is
  /// final and deterministic.
  TimelineSummary Snapshot();

  void Reset();

  /// Caps keep the accumulator bounded; hitting one coarsens (doubles the
  /// cell width), which loses resolution but never totals. Public: they are
  /// part of the contract (tests pin the coarsening behavior against them).
  static constexpr std::size_t kMaxCells = 4096;
  static constexpr std::uint64_t kMaxBuckets = 1 << 16;
  static constexpr double kBaseCellNs = 1 << 20;  ///< ~1 ms

 private:
  TimelineRegistry();

  struct ServerAcc {
    double bytes = 0.0;
    double busy_ns = 0.0;
    std::uint64_t grants = 0;
    std::uint64_t depth_max = 0;
  };
  struct TenantAcc {
    double bytes = 0.0;
    double wait_ns = 0.0;
    std::uint64_t grants = 0;
    std::uint64_t misses = 0;
    PatternHist waits;
  };

  void ObserveLocked(double t_ns);
  void CoarsenLocked();
  /// Feed buckets [first_b, last_b] to `m`; `emit` => surface violations
  /// as slo_violation flight-recorder events.
  void EvaluateRangeLocked(HealthMonitor& m, std::uint64_t first_b,
                           std::uint64_t last_b, bool emit);
  /// Advance the online monitor over newly sealed buckets.
  void OnlineEvalLocked();
  std::size_t CellCountLocked() const;

  std::atomic<bool> on_{false};
  std::mutex mu_;
  double cell_ns_ = kBaseCellNs;
  double high_water_ns_ = 0.0;
  double eval_frontier_ns_ = 0.0;  ///< health evaluated up to here
  bool any_ = false;
  std::map<std::pair<std::uint64_t, int>, ServerAcc> servers_;
  std::map<std::pair<std::uint64_t, std::string>, TenantAcc> tenants_;
  std::map<std::pair<int, std::uint64_t>, double> tracks_;
  HealthMonitor monitor_;
};

/// Serialize as the one-line `pnc-timeline-v1` JSON object (the "timeline"
/// member of the iostat report; see docs/API.md for the schema).
std::string TimelineToJson(const TimelineSummary& s);

/// Parse a `pnc-timeline-v1` object at the cursor (positioned on '{').
/// Unknown members are skipped for forward compatibility.
bool ParseTimelineValue(jsoncur::Cursor& cur, TimelineSummary* out);

/// ASCII rate sparklines (ncstat --timeline): per-server MB/s and queue
/// depth, per-tenant MB/s and p99 queue wait, plus any non-empty global
/// tracks, over `max_cols` virtual-time columns.
std::string RenderTimeline(const TimelineSummary& s, int max_cols = 64);

}  // namespace iostat

// ---------------------------------------------------------------- macro API
// The only timeline-recording surface production layers may use.
#if PNC_IOSTAT_ENABLED

/// pfs: one per-server service grant with tenant attribution.
#define PNC_IOSTAT_TIMELINE_PFS(server, tenant, bytes, begin_ns, done_ns, \
                                depth, wait_ns, missed)                   \
  do {                                                                    \
    if (::iostat::TimelineRegistry::on())                                 \
      ::iostat::TimelineRegistry::Get().RecordPfsGrant(                   \
          server, tenant, static_cast<std::uint64_t>(bytes), begin_ns,    \
          done_ns, static_cast<std::uint64_t>(depth), wait_ns, missed);   \
  } while (0)

/// Any layer: bump a global track (`track` is the bare enumerator name,
/// e.g. kRetries) by `value` at virtual time `t_ns`.
#define PNC_IOSTAT_TIMELINE_MARK(track, t_ns, value)               \
  do {                                                             \
    if (::iostat::TimelineRegistry::on())                          \
      ::iostat::TimelineRegistry::Get().RecordMark(                \
          ::iostat::TlTrack::track, (t_ns),                        \
          static_cast<double>(value));                             \
  } while (0)

#else  // compiled out: zero cost, no timeline symbols referenced

#define PNC_IOSTAT_TIMELINE_PFS(server, tenant, bytes, begin_ns, done_ns, \
                                depth, wait_ns, missed)                   \
  ((void)sizeof(server), (void)sizeof(bytes), (void)sizeof(depth))
#define PNC_IOSTAT_TIMELINE_MARK(track, t_ns, value) \
  ((void)sizeof(t_ns), (void)sizeof(value))

#endif  // PNC_IOSTAT_ENABLED
