#include "iostat/timeline.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

#include "iostat/events.hpp"
#include "iostat/json_cursor.hpp"
#include "iostat/schemas.hpp"

namespace iostat {

namespace {

// Same env convention as the counter gates in iostat.cpp: unset => `def`,
// "0"/"off"/"false" => false, anything else => true.
bool EnvFlag(const char* name, bool def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "false") == 0);
}

void AppendF(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

void AppendJsonString(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          AppendF(out, "\\u%04x", static_cast<unsigned>(c));
        else
          out.push_back(c);
    }
  }
  out.push_back('"');
}

/// Bucket-wise histogram merge — the property that makes per-bucket p99s
/// survive coarsening exactly.
void MergeHist(PatternHist& dst, const PatternHist& src) {
  if (src.count == 0) return;
  if (dst.count == 0) {
    dst = src;
    return;
  }
  for (int i = 0; i < PatternHist::kBuckets; ++i) dst.bucket[i] += src.bucket[i];
  dst.count += src.count;
  dst.sum += src.sum;
  dst.min = std::min(dst.min, src.min);
  dst.max = std::max(dst.max, src.max);
}

}  // namespace

const char* TlTrackName(TlTrack t) {
  switch (t) {
    case TlTrack::kExchangeMsgs: return "exchange_msgs";
    case TlTrack::kRetries: return "retries";
    case TlTrack::kFaults: return "faults";
    case TlTrack::kModeSwitches: return "mode_switches";
    case TlTrack::kStragglerWaitNs: return "straggler_wait_ns";
  }
  return "?";
}

std::uint64_t HistP99UpperBound(const PatternHist& h) {
  if (h.count == 0) return 0;
  const std::uint64_t target = h.count - h.count / 100;  // ceil(0.99 * count)
  std::uint64_t cum = 0;
  for (int i = 0; i < PatternHist::kBuckets; ++i) {
    cum += h.bucket[i];
    if (cum >= target) {
      const std::uint64_t ub =
          i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
      return std::min(ub, h.max);
    }
  }
  return h.max;
}

// -------------------------------------------------------- TimelineRegistry

TimelineRegistry& TimelineRegistry::Get() {
  // Leaked like the counter registry: rank threads may record during static
  // destruction of the main thread.
  static TimelineRegistry* g = new TimelineRegistry();
  return *g;
}

TimelineRegistry::TimelineRegistry() {
  // Unlike counters/pattern, the timeline is opt-in: committed bench
  // baselines embed the iostat report, and default-ON would change them.
  on_.store(
      EnvFlag("PNC_IOSTAT", true) && EnvFlag("PNC_IOSTAT_TIMELINE", false),
      std::memory_order_relaxed);
  monitor_.SetRules(SloRulesFromEnv());
}

void TimelineRegistry::SetSloRules(std::vector<SloRule> rules) {
  std::lock_guard<std::mutex> lk(mu_);
  monitor_.SetRules(std::move(rules));
}

std::vector<SloRule> TimelineRegistry::SloRules() {
  std::lock_guard<std::mutex> lk(mu_);
  return monitor_.rules();
}

std::size_t TimelineRegistry::CellCountLocked() const {
  return servers_.size() + tenants_.size() + tracks_.size();
}

void TimelineRegistry::ObserveLocked(double t_ns) {
  high_water_ns_ = std::max(high_water_ns_, t_ns);
}

void TimelineRegistry::CoarsenLocked() {
  // Double the cell width and re-bin. Accumulators are sums/maxes/mergeable
  // histograms, so the merged maps equal direct binning at the coarser
  // width — coarsening keeps the timeline order-independent. The bucket-
  // range cap additionally bounds the health sweep on sparse long runs.
  while (CellCountLocked() > kMaxCells ||
         high_water_ns_ / cell_ns_ > static_cast<double>(kMaxBuckets)) {
    {
      std::map<std::pair<std::uint64_t, int>, ServerAcc> merged;
      for (const auto& [key, a] : servers_) {
        ServerAcc& m = merged[{key.first / 2, key.second}];
        m.bytes += a.bytes;
        m.busy_ns += a.busy_ns;
        m.grants += a.grants;
        m.depth_max = std::max(m.depth_max, a.depth_max);
      }
      servers_ = std::move(merged);
    }
    {
      std::map<std::pair<std::uint64_t, std::string>, TenantAcc> merged;
      for (const auto& [key, a] : tenants_) {
        TenantAcc& m = merged[{key.first / 2, key.second}];
        m.bytes += a.bytes;
        m.wait_ns += a.wait_ns;
        m.grants += a.grants;
        m.misses += a.misses;
        MergeHist(m.waits, a.waits);
      }
      tenants_ = std::move(merged);
    }
    {
      std::map<std::pair<int, std::uint64_t>, double> merged;
      for (const auto& [key, v] : tracks_)
        merged[{key.first, key.second / 2}] += v;
      tracks_ = std::move(merged);
    }
    cell_ns_ *= 2;
  }
}

void TimelineRegistry::EvaluateRangeLocked(HealthMonitor& m,
                                           std::uint64_t first_b,
                                           std::uint64_t last_b, bool emit) {
  const std::vector<SloRule>& rules = m.rules();
  std::vector<SloBucketView> views(rules.size());
  for (std::uint64_t b = first_b; b <= last_b; ++b) {
    SloBucketView base;
    base.start_ns = static_cast<double>(b) * cell_ns_;
    base.len_ns = cell_ns_;
    double bytes = 0;
    for (auto it = servers_.lower_bound({b, 0});
         it != servers_.end() && it->first.first == b; ++it)
      bytes += it->second.bytes;
    // bytes / cell_ns * 1e9 = B/s; / 1e6 = MB/s.
    base.mbps = bytes * 1e3 / cell_ns_;
    const auto track = [&](TlTrack t) {
      const auto it = tracks_.find({static_cast<int>(t), b});
      return it == tracks_.end() ? 0.0 : it->second;
    };
    const double secs = cell_ns_ / 1e9;
    base.retries_per_s = track(TlTrack::kRetries) / secs;
    base.faults_per_s = track(TlTrack::kFaults) / secs;

    for (std::size_t i = 0; i < rules.size(); ++i) {
      SloBucketView v = base;
      for (auto it = tenants_.lower_bound({b, std::string()});
           it != tenants_.end() && it->first.first == b; ++it) {
        if (!rules[i].tenant.empty() && it->first.second != rules[i].tenant)
          continue;
        v.grants += it->second.grants;
        v.misses += it->second.misses;
        v.p99_wait_ns = std::max(
            v.p99_wait_ns,
            static_cast<double>(HistP99UpperBound(it->second.waits)));
      }
      views[i] = v;
    }
    for (const HealthMonitor::Violation& v : m.OnBucketSealed(b, views)) {
      if (!emit || !FlightRecorder::on()) continue;
      FlightRecorder::Get().Record(
          Ev::kSloViolation, v.start_ns, v.end_ns - v.start_ns, v.bucket,
          static_cast<std::uint64_t>(std::max(0.0, v.observed)),
          rules[v.rule].id.c_str());
    }
  }
}

void TimelineRegistry::OnlineEvalLocked() {
  // Seal every bucket the virtual-time high-water mark has fully crossed
  // and evaluate it online, so slo_violation events fire while the run is
  // still in flight. Late out-of-order samples into an already-sealed
  // bucket only affect the final (Snapshot-time) re-evaluation, which is
  // the authoritative, deterministic verdict.
  const std::uint64_t sealed =
      static_cast<std::uint64_t>(high_water_ns_ / cell_ns_);
  if (sealed == 0) return;
  const std::uint64_t first_b = static_cast<std::uint64_t>(
      std::ceil(eval_frontier_ns_ / cell_ns_ - 1e-9));
  if (first_b >= sealed) return;
  EvaluateRangeLocked(monitor_, first_b, sealed - 1, /*emit=*/true);
  eval_frontier_ns_ = static_cast<double>(sealed) * cell_ns_;
}

void TimelineRegistry::RecordPfsGrant(int server, const char* tenant,
                                      std::uint64_t bytes, double begin_ns,
                                      double done_ns, std::uint64_t depth,
                                      double wait_ns, bool deadline_missed) {
  if (server < 0) return;
  const std::string name =
      (tenant == nullptr || *tenant == '\0') ? "default" : tenant;
  std::lock_guard<std::mutex> lk(mu_);
  any_ = true;
  const std::uint64_t b0 =
      static_cast<std::uint64_t>(std::max(0.0, begin_ns) / cell_ns_);
  {
    ServerAcc& a = servers_[{b0, server}];
    a.bytes += static_cast<double>(bytes);
    ++a.grants;
    a.depth_max = std::max(a.depth_max, depth);
  }
  // Busy time splits exactly across every cell the service interval
  // overlaps (matching the pattern heatmap); everything else attributes to
  // the begin cell.
  double t = std::max(0.0, begin_ns);
  std::uint64_t b = b0;
  for (std::size_t guard = 0; t < done_ns && guard < 2 * kMaxCells; ++guard) {
    const double cell_end = static_cast<double>(b + 1) * cell_ns_;
    const double seg = std::min(done_ns, cell_end) - t;
    if (seg > 0) servers_[{b, server}].busy_ns += seg;
    t = cell_end;
    ++b;
  }
  {
    TenantAcc& a = tenants_[{b0, name}];
    a.bytes += static_cast<double>(bytes);
    a.wait_ns += std::max(0.0, wait_ns);
    ++a.grants;
    if (deadline_missed) ++a.misses;
    a.waits.Add(static_cast<std::uint64_t>(std::max(0.0, wait_ns)));
  }
  ObserveLocked(done_ns);
  CoarsenLocked();
  OnlineEvalLocked();
}

void TimelineRegistry::RecordMark(TlTrack track, double t_ns, double value) {
  std::lock_guard<std::mutex> lk(mu_);
  any_ = true;
  const std::uint64_t b =
      static_cast<std::uint64_t>(std::max(0.0, t_ns) / cell_ns_);
  tracks_[{static_cast<int>(track), b}] += value;
  ObserveLocked(t_ns);
  CoarsenLocked();
  OnlineEvalLocked();
}

TimelineSummary TimelineRegistry::Snapshot() {
  std::lock_guard<std::mutex> lk(mu_);
  // Catch up the online monitor first (emits any pending slo_violation
  // events for buckets sealed since the last record)...
  OnlineEvalLocked();

  TimelineSummary s;
  s.present = any_;
  s.cell_ns = cell_ns_;
  s.horizon_ns = high_water_ns_;
  for (const auto& [key, a] : servers_) {
    TlServerCell c;
    c.bucket = key.first;
    c.server = key.second;
    c.bytes = a.bytes;
    c.busy_ns = a.busy_ns;
    c.grants = a.grants;
    c.depth_max = a.depth_max;
    s.servers.push_back(c);
  }
  for (const auto& [key, a] : tenants_) {
    TlTenantCell c;
    c.bucket = key.first;
    c.tenant = key.second;
    c.bytes = a.bytes;
    c.wait_ns = a.wait_ns;
    c.grants = a.grants;
    c.misses = a.misses;
    c.p99_wait_ns = static_cast<double>(HistP99UpperBound(a.waits));
    s.tenants.push_back(std::move(c));
  }
  for (const auto& [key, v] : tracks_) {
    TlTrackCell c;
    c.track = key.first;
    c.bucket = key.second;
    c.value = v;
    s.tracks.push_back(c);
  }

  // ...then produce the authoritative verdict: a fresh evaluation over the
  // final bucket contents, deterministic regardless of when samples landed
  // relative to the online sweeps (no events re-emitted here).
  HealthMonitor fin;
  fin.SetRules(monitor_.rules());
  const std::uint64_t sealed =
      static_cast<std::uint64_t>(high_water_ns_ / cell_ns_);
  if (sealed > 0) EvaluateRangeLocked(fin, 0, sealed - 1, /*emit=*/false);
  s.health = fin.Status();
  return s;
}

void TimelineRegistry::Reset() {
  std::lock_guard<std::mutex> lk(mu_);
  servers_.clear();
  tenants_.clear();
  tracks_.clear();
  cell_ns_ = kBaseCellNs;
  high_water_ns_ = 0.0;
  eval_frontier_ns_ = 0.0;
  any_ = false;
  monitor_.Reset();
}

// ------------------------------------------------------------ serialization

std::string TimelineToJson(const TimelineSummary& s) {
  std::string out;
  out.reserve(4096);
  AppendF(out, "{\"schema\":\"%s\",\"cell_ns\":%.17g,\"horizon_ns\":%.17g",
          schemas::kTimeline, s.cell_ns, s.horizon_ns);
  out += ",\"servers\":[";
  for (std::size_t i = 0; i < s.servers.size(); ++i) {
    const TlServerCell& c = s.servers[i];
    if (i) out.push_back(',');
    AppendF(out, "[%" PRIu64 ",%d,%.17g,%.17g,%" PRIu64 ",%" PRIu64 "]",
            c.bucket, c.server, c.bytes, c.busy_ns, c.grants, c.depth_max);
  }
  out += "],\"tenants\":[";
  for (std::size_t i = 0; i < s.tenants.size(); ++i) {
    const TlTenantCell& c = s.tenants[i];
    if (i) out.push_back(',');
    out.push_back('[');
    AppendJsonString(out, c.tenant);
    AppendF(out, ",%" PRIu64 ",%.17g,%.17g,%" PRIu64 ",%" PRIu64 ",%.17g]",
            c.bucket, c.bytes, c.wait_ns, c.grants, c.misses, c.p99_wait_ns);
  }
  out += "],\"tracks\":[";
  for (std::size_t i = 0; i < s.tracks.size(); ++i) {
    const TlTrackCell& c = s.tracks[i];
    if (i) out.push_back(',');
    AppendF(out, "[%d,%" PRIu64 ",%.17g]", c.track, c.bucket, c.value);
  }
  out += "],\"health\":{";
  AppendF(out, "\"evaluated\":%d,\"violations\":%" PRIu64 ",\"rules\":[",
          s.health.evaluated ? 1 : 0, s.health.total_violations);
  for (std::size_t i = 0; i < s.health.rules.size(); ++i) {
    const SloRuleStatus& r = s.health.rules[i];
    if (i) out.push_back(',');
    out += "{\"id\":";
    AppendJsonString(out, r.rule.id);
    out += ",\"kind\":";
    AppendJsonString(out, SloKindName(r.rule.kind));
    out += ",\"tenant\":";
    AppendJsonString(out, r.rule.tenant);
    AppendF(out,
            ",\"threshold\":%.17g,\"window\":%d,\"tripped\":%" PRIu64
            ",\"violations\":%" PRIu64 ",\"first_ns\":%.17g,\"worst\":%.17g}",
            r.rule.threshold, r.rule.window, r.tripped_buckets, r.violations,
            r.first_violation_ns, r.worst);
  }
  out += "]}}";
  return out;
}

// ----------------------------------------------------------------- parsing

namespace {

using jsoncur::Cursor;

bool ParseU64(Cursor& cur, std::uint64_t* out) {
  double v = 0;
  if (!cur.ParseNumber(&v)) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool ParseRuleStatus(Cursor& cur, SloRuleStatus* r) {
  if (!cur.Eat('{')) return false;
  if (cur.Eat('}')) return true;
  do {
    std::string key;
    if (!cur.ParseString(&key) || !cur.Eat(':')) return false;
    bool ok = true;
    if (key == "id") ok = cur.ParseString(&r->rule.id);
    else if (key == "kind") {
      std::string k;
      ok = cur.ParseString(&k) && SloKindFromName(k, &r->rule.kind);
    } else if (key == "tenant") ok = cur.ParseString(&r->rule.tenant);
    else if (key == "threshold") ok = cur.ParseNumber(&r->rule.threshold);
    else if (key == "window") {
      double w = 1;
      ok = cur.ParseNumber(&w);
      r->rule.window = static_cast<int>(w);
    } else if (key == "tripped") ok = ParseU64(cur, &r->tripped_buckets);
    else if (key == "violations") ok = ParseU64(cur, &r->violations);
    else if (key == "first_ns") ok = cur.ParseNumber(&r->first_violation_ns);
    else if (key == "worst") ok = cur.ParseNumber(&r->worst);
    else ok = cur.SkipValue();
    if (!ok) return false;
  } while (cur.Eat(','));
  return cur.Eat('}');
}

bool ParseHealth(Cursor& cur, HealthStatus* h) {
  if (!cur.Eat('{')) return false;
  if (cur.Eat('}')) return true;
  do {
    std::string key;
    if (!cur.ParseString(&key) || !cur.Eat(':')) return false;
    bool ok = true;
    if (key == "evaluated") {
      double v = 0;
      ok = cur.ParseNumber(&v);
      h->evaluated = v != 0;
    } else if (key == "violations") {
      ok = ParseU64(cur, &h->total_violations);
    } else if (key == "rules") {
      if (!cur.Eat('[')) return false;
      if (!cur.Eat(']')) {
        do {
          SloRuleStatus r;
          if (!ParseRuleStatus(cur, &r)) return false;
          h->rules.push_back(std::move(r));
        } while (cur.Eat(','));
        if (!cur.Eat(']')) return false;
      }
    } else {
      ok = cur.SkipValue();
    }
    if (!ok) return false;
  } while (cur.Eat(','));
  return cur.Eat('}');
}

}  // namespace

bool ParseTimelineValue(jsoncur::Cursor& cur, TimelineSummary* out) {
  *out = TimelineSummary{};
  if (!cur.Eat('{')) return false;
  if (cur.Eat('}')) return true;
  do {
    std::string key;
    if (!cur.ParseString(&key) || !cur.Eat(':')) return false;
    bool ok = true;
    if (key == "schema") {
      std::string s;
      ok = cur.ParseString(&s) && s == schemas::kTimeline;
    } else if (key == "cell_ns") {
      ok = cur.ParseNumber(&out->cell_ns);
    } else if (key == "horizon_ns") {
      ok = cur.ParseNumber(&out->horizon_ns);
    } else if (key == "servers") {
      if (!cur.Eat('[')) return false;
      if (!cur.Eat(']')) {
        do {
          TlServerCell c;
          double sv = 0;
          if (!cur.Eat('[') || !ParseU64(cur, &c.bucket) || !cur.Eat(',') ||
              !cur.ParseNumber(&sv) || !cur.Eat(',') ||
              !cur.ParseNumber(&c.bytes) || !cur.Eat(',') ||
              !cur.ParseNumber(&c.busy_ns) || !cur.Eat(',') ||
              !ParseU64(cur, &c.grants) || !cur.Eat(',') ||
              !ParseU64(cur, &c.depth_max) || !cur.Eat(']'))
            return false;
          c.server = static_cast<int>(sv);
          out->servers.push_back(c);
        } while (cur.Eat(','));
        if (!cur.Eat(']')) return false;
      }
    } else if (key == "tenants") {
      if (!cur.Eat('[')) return false;
      if (!cur.Eat(']')) {
        do {
          TlTenantCell c;
          if (!cur.Eat('[') || !cur.ParseString(&c.tenant) || !cur.Eat(',') ||
              !ParseU64(cur, &c.bucket) || !cur.Eat(',') ||
              !cur.ParseNumber(&c.bytes) || !cur.Eat(',') ||
              !cur.ParseNumber(&c.wait_ns) || !cur.Eat(',') ||
              !ParseU64(cur, &c.grants) || !cur.Eat(',') ||
              !ParseU64(cur, &c.misses) || !cur.Eat(',') ||
              !cur.ParseNumber(&c.p99_wait_ns) || !cur.Eat(']'))
            return false;
          out->tenants.push_back(std::move(c));
        } while (cur.Eat(','));
        if (!cur.Eat(']')) return false;
      }
    } else if (key == "tracks") {
      if (!cur.Eat('[')) return false;
      if (!cur.Eat(']')) {
        do {
          TlTrackCell c;
          double tr = 0;
          if (!cur.Eat('[') || !cur.ParseNumber(&tr) || !cur.Eat(',') ||
              !ParseU64(cur, &c.bucket) || !cur.Eat(',') ||
              !cur.ParseNumber(&c.value) || !cur.Eat(']'))
            return false;
          c.track = static_cast<int>(tr);
          out->tracks.push_back(c);
        } while (cur.Eat(','));
        if (!cur.Eat(']')) return false;
      }
    } else if (key == "health") {
      ok = ParseHealth(cur, &out->health);
    } else {
      ok = cur.SkipValue();
    }
    if (!ok) return false;
  } while (cur.Eat(','));
  if (!cur.Eat('}')) return false;
  out->present = !out->servers.empty() || !out->tenants.empty() ||
                 !out->tracks.empty() || out->horizon_ns > 0;
  return true;
}

// --------------------------------------------------------- ASCII sparklines

namespace {

struct Row {
  std::string label;
  std::vector<double> cols;
  const char* unit = "";
  double scale = 1.0;  ///< applied to the peak annotation
};

void RenderRow(std::string& out, const Row& r) {
  static const char kGlyphs[] = " .:-=+*#%@";
  double mx = 0;
  for (const double v : r.cols) mx = std::max(mx, v);
  AppendF(out, "  %-22s |", r.label.c_str());
  for (const double v : r.cols) {
    const int g =
        (mx <= 0 || v <= 0)
            ? 0
            : std::min(9, 1 + static_cast<int>(v / mx * 8.999));
    out.push_back(kGlyphs[g]);
  }
  AppendF(out, "| peak=%.4g%s\n", mx * r.scale, r.unit);
}

}  // namespace

std::string RenderTimeline(const TimelineSummary& s, int max_cols) {
  std::string out;
  if (!s.present || s.cell_ns <= 0 || s.horizon_ns <= 0) {
    out = "timeline: no timeline data recorded (PNC_IOSTAT_TIMELINE off, or "
          "the run did no I/O)\n";
    return out;
  }
  max_cols = std::max(8, max_cols);
  const std::uint64_t nbuckets = static_cast<std::uint64_t>(
      s.horizon_ns / s.cell_ns) + 1;
  const std::uint64_t group =
      (nbuckets + static_cast<std::uint64_t>(max_cols) - 1) /
      static_cast<std::uint64_t>(max_cols);
  const std::uint64_t ncols = (nbuckets + group - 1) / group;
  const double col_ns = s.cell_ns * static_cast<double>(group);

  AppendF(out,
          "virtual-time timeline (%.3f ms horizon, %" PRIu64
          " cols, col = %.3f ms)\n",
          s.horizon_ns / 1e6, ncols, col_ns / 1e6);

  const auto col_of = [&](std::uint64_t bucket) { return bucket / group; };
  const auto mk_row = [&](std::string label, const char* unit, double scale) {
    Row r;
    r.label = std::move(label);
    r.cols.assign(static_cast<std::size_t>(ncols), 0.0);
    r.unit = unit;
    r.scale = scale;
    return r;
  };

  // Per-server bandwidth and queue depth.
  std::set<int> server_ids;
  for (const TlServerCell& c : s.servers) server_ids.insert(c.server);
  for (const int sv : server_ids) {
    char label[64];
    std::snprintf(label, sizeof label, "s%02d MB/s", sv);
    Row bw = mk_row(label, " MB/s", 1e3 / col_ns);
    std::snprintf(label, sizeof label, "s%02d queue depth", sv);
    Row depth = mk_row(label, "", 1.0);
    for (const TlServerCell& c : s.servers) {
      if (c.server != sv) continue;
      const std::uint64_t col = col_of(c.bucket);
      if (col >= ncols) continue;
      bw.cols[static_cast<std::size_t>(col)] += c.bytes;
      depth.cols[static_cast<std::size_t>(col)] = std::max(
          depth.cols[static_cast<std::size_t>(col)],
          static_cast<double>(c.depth_max));
    }
    RenderRow(out, bw);
    RenderRow(out, depth);
  }

  // Per-tenant bandwidth and p99 queue wait.
  std::set<std::string> tenant_names;
  for (const TlTenantCell& c : s.tenants) tenant_names.insert(c.tenant);
  for (const std::string& tn : tenant_names) {
    Row bw = mk_row(tn + " MB/s", " MB/s", 1e3 / col_ns);
    Row p99 = mk_row(tn + " p99 wait", " us", 1e-3);
    for (const TlTenantCell& c : s.tenants) {
      if (c.tenant != tn) continue;
      const std::uint64_t col = col_of(c.bucket);
      if (col >= ncols) continue;
      bw.cols[static_cast<std::size_t>(col)] += c.bytes;
      p99.cols[static_cast<std::size_t>(col)] =
          std::max(p99.cols[static_cast<std::size_t>(col)], c.p99_wait_ns);
    }
    RenderRow(out, bw);
    RenderRow(out, p99);
  }

  // Global tracks (only the non-empty ones).
  for (int t = 0; t < kNumTlTracks; ++t) {
    Row row = mk_row(TlTrackName(static_cast<TlTrack>(t)),
                     t == static_cast<int>(TlTrack::kStragglerWaitNs) ? " ns"
                                                                      : "",
                     1.0);
    bool any = false;
    for (const TlTrackCell& c : s.tracks) {
      if (c.track != t) continue;
      const std::uint64_t col = col_of(c.bucket);
      if (col >= ncols) continue;
      row.cols[static_cast<std::size_t>(col)] += c.value;
      any = true;
    }
    if (any) RenderRow(out, row);
  }
  return out;
}

}  // namespace iostat
