#include "iostat/events.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "iostat/json_cursor.hpp"
#include "iostat/schemas.hpp"
#include "util/json.hpp"

namespace iostat {

namespace {

/// Request context bound to the calling thread (thread == rank in simmpi).
struct ReqCtx {
  std::uint64_t id = 0;
  char detail[24] = {};
};
thread_local ReqCtx tl_req;

/// Per-rank monotonic request counters. Kept outside the thread so IDs stay
/// monotonic per *rank* even across successive simmpi runs (each run spawns
/// fresh rank threads).
std::atomic<std::uint64_t> g_next_req[kMaxRanks];

bool EnvFlag(const char* name, bool def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "false") == 0);
}

void CopyDetail(char (&dst)[24], const char* src) {
  if (src == nullptr) {
    dst[0] = '\0';
    return;
  }
  std::size_t i = 0;
  for (; i + 1 < sizeof(dst) && src[i] != '\0'; ++i) dst[i] = src[i];
  dst[i] = '\0';
}

void AppendF(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

}  // namespace

const char* EvName(Ev e) {
  switch (e) {
    case Ev::kApiBegin: return "api_begin";
    case Ev::kCollBegin: return "coll_begin";
    case Ev::kCollEnd: return "coll_end";
    case Ev::kXchgBegin: return "xchg_begin";
    case Ev::kXchgEnd: return "xchg_end";
    case Ev::kIoBegin: return "io_begin";
    case Ev::kIoEnd: return "io_end";
    case Ev::kXchgSend: return "xchg_send";
    case Ev::kAggPiece: return "agg_piece";
    case Ev::kPfsServer: return "pfs_server";
    case Ev::kPfsFault: return "pfs_fault";
    case Ev::kRetry: return "retry";
    case Ev::kIndep: return "indep";
    case Ev::kRankCrash: return "rank_crash";
    case Ev::kRankStraggle: return "rank_straggle";
    case Ev::kMsgDrop: return "msg_drop";
    case Ev::kAgreement: return "agreement";
    case Ev::kDataCorrupt: return "data_corrupt";
    case Ev::kSloViolation: return "slo_violation";
  }
  return "unknown";
}

bool EvFromName(std::string_view name, Ev* out) {
  for (std::uint16_t k = 1;
       k <= static_cast<std::uint16_t>(Ev::kSloViolation); ++k) {
    const Ev e = static_cast<Ev>(k);
    if (name == EvName(e)) {
      *out = e;
      return true;
    }
  }
  return false;
}

FlightRecorder::FlightRecorder() {
  std::size_t cap = 4096;
  if (const char* v = std::getenv("PNC_FLIGHT_EVENTS");
      v != nullptr && *v != '\0') {
    const unsigned long long n = std::strtoull(v, nullptr, 10);
    cap = std::clamp<std::size_t>(static_cast<std::size_t>(n), 64,
                                  std::size_t{1} << 20);
  }
  cap_ = cap;
  on_.store(EnvFlag("PNC_IOSTAT", true) && EnvFlag("PNC_FLIGHT", true),
            std::memory_order_relaxed);
}

FlightRecorder& FlightRecorder::Get() {
  static FlightRecorder* g = new FlightRecorder();  // leaked, like Registry
  return *g;
}

FlightRecorder::Rec* FlightRecorder::RingOf(RankRing& slot) {
  Rec* ring = slot.ring.load(std::memory_order_acquire);
  if (ring != nullptr) return ring;
  // Rings are lazily allocated so idle rank slots cost nothing (kMaxRanks
  // eager rings would be hundreds of MB). Losing the CAS race is fine.
  Rec* fresh = new Rec[cap_];
  Rec* expected = nullptr;
  if (slot.ring.compare_exchange_strong(expected, fresh,
                                        std::memory_order_acq_rel))
    return fresh;
  delete[] fresh;
  return expected;
}

void FlightRecorder::Record(Ev kind, double t_ns, double d_ns,
                            std::uint64_t a0, std::uint64_t a1,
                            const char* detail) {
  const int rank = Registry::rank();
  RankRing& slot = slots_[rank];
  Rec* ring = RingOf(slot);
  const std::uint64_t seq =
      slot.head.fetch_add(1, std::memory_order_relaxed) + 1;
  Rec& rec = ring[(seq - 1) % cap_];
  // Invalidate, fill, then publish the sequence with release ordering so a
  // concurrent dump either sees a whole record or skips it.
  rec.seq.store(0, std::memory_order_relaxed);
  rec.t_ns = t_ns;
  rec.d_ns = d_ns;
  rec.req = tl_req.id;
  rec.a0 = a0;
  rec.a1 = a1;
  rec.kind = kind;
  rec.rank = static_cast<std::uint16_t>(rank);
  CopyDetail(rec.detail, detail == nullptr ? tl_req.detail : detail);
  rec.seq.store(seq, std::memory_order_release);
}

std::vector<Event> FlightRecorder::CollectRank(int rank) const {
  std::vector<Event> out;
  if (rank < 0 || rank >= kMaxRanks) return out;
  const RankRing& slot = slots_[rank];
  const Rec* ring = slot.ring.load(std::memory_order_acquire);
  if (ring == nullptr) return out;
  const std::uint64_t head = slot.head.load(std::memory_order_acquire);
  const std::uint64_t n = std::min<std::uint64_t>(head, cap_);
  out.reserve(n);
  for (std::uint64_t s = head - n + 1; s <= head; ++s) {
    const Rec& rec = ring[(s - 1) % cap_];
    if (rec.seq.load(std::memory_order_acquire) != s) continue;
    Event e;
    e.t_ns = rec.t_ns;
    e.d_ns = rec.d_ns;
    e.req = rec.req;
    e.a0 = rec.a0;
    e.a1 = rec.a1;
    e.seq = s;
    e.kind = rec.kind;
    e.rank = rec.rank;
    std::memcpy(e.detail, rec.detail, sizeof(e.detail));
    e.detail[sizeof(e.detail) - 1] = '\0';
    // A writer may have overwritten the slot mid-copy; keep only records
    // whose sequence is still intact (best-effort flight recording).
    if (rec.seq.load(std::memory_order_acquire) != s) continue;
    out.push_back(e);
  }
  return out;
}

std::vector<std::vector<Event>> FlightRecorder::Collect() const {
  const int n = Registry::Get().nranks();
  std::vector<std::vector<Event>> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) out.push_back(CollectRank(r));
  return out;
}

std::uint64_t FlightRecorder::RecordedCount(int rank) const {
  if (rank < 0 || rank >= kMaxRanks) return 0;
  return slots_[rank].head.load(std::memory_order_relaxed);
}

void FlightRecorder::Reset() {
  for (auto& slot : slots_) {
    slot.head.store(0, std::memory_order_relaxed);
    Rec* ring = slot.ring.load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    for (std::size_t i = 0; i < cap_; ++i)
      ring[i].seq.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t CurrentRequestId() { return tl_req.id; }

const char* CurrentRequestDetail() { return tl_req.detail; }

ReqScope::ReqScope(const char* api, std::string_view var, double t_ns,
                   std::uint64_t bytes, std::uint64_t is_write) {
  saved_id_ = tl_req.id;
  std::memcpy(saved_detail_, tl_req.detail, sizeof(saved_detail_));
  if (!FlightRecorder::on()) return;
  const int rank = Registry::rank();
  tl_req.id = g_next_req[rank].fetch_add(1, std::memory_order_relaxed) + 1;
  // detail = "api:var", truncated to the fixed record width.
  char buf[24];
  std::size_t i = 0;
  for (; i + 1 < sizeof(buf) && api[i] != '\0'; ++i) buf[i] = api[i];
  if (!var.empty() && i + 2 < sizeof(buf)) {
    buf[i++] = ':';
    for (std::size_t j = 0; i + 1 < sizeof(buf) && j < var.size(); ++j)
      buf[i++] = var[j];
  }
  buf[i] = '\0';
  std::memcpy(tl_req.detail, buf, sizeof(buf));
  FlightRecorder::Get().Record(Ev::kApiBegin, t_ns, 0.0, bytes, is_write,
                               tl_req.detail);
}

ReqScope::~ReqScope() {
  tl_req.id = saved_id_;
  std::memcpy(tl_req.detail, saved_detail_, sizeof(saved_detail_));
}

// ------------------------------------------------------------- dump / parse

std::string EventsToJson(const char* reason) {
  const FlightRecorder& fr = FlightRecorder::Get();
  const int nranks = Registry::Get().nranks();
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":\"";
  out += schemas::kEvents;
  out += "\",\"reason\":\"";
  pnc::json::AppendEscaped(out, reason == nullptr ? "" : reason);
  AppendF(out, "\",\"capacity\":%zu,\"nranks\":%d,\"ranks\":[",
          fr.capacity(), nranks);
  for (int r = 0; r < nranks; ++r) {
    const std::vector<Event> tail = fr.CollectRank(r);
    const std::uint64_t recorded = fr.RecordedCount(r);
    const std::uint64_t dropped =
        recorded > tail.size() ? recorded - tail.size() : 0;
    AppendF(out,
            "%s{\"rank\":%d,\"recorded\":%" PRIu64 ",\"dropped\":%" PRIu64
            ",\"events\":[",
            r == 0 ? "" : ",", r, recorded, dropped);
    for (std::size_t i = 0; i < tail.size(); ++i) {
      const Event& e = tail[i];
      AppendF(out,
              "%s{\"seq\":%" PRIu64 ",\"kind\":\"%s\",\"t_ns\":%.3f,"
              "\"d_ns\":%.3f,\"req\":%" PRIu64 ",\"a0\":%" PRIu64
              ",\"a1\":%" PRIu64 ",\"detail\":\"",
              i == 0 ? "" : ",", e.seq, EvName(e.kind), e.t_ns, e.d_ns, e.req,
              e.a0, e.a1);
      pnc::json::AppendEscaped(out, e.detail);
      out += "\"}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

namespace {

void WriteDump(const std::string& json, bool always_stderr) {
  const char* path = std::getenv("PNC_FLIGHT_DUMP");
  bool wrote_stderr = false;
  if (always_stderr) {
    std::fwrite(json.data(), 1, json.size(), stderr);
    std::fputc('\n', stderr);
    std::fflush(stderr);
    wrote_stderr = true;
  }
  if (path == nullptr || *path == '\0') return;
  if (std::strcmp(path, "-") == 0) {
    if (!wrote_stderr) {
      std::fwrite(json.data(), 1, json.size(), stderr);
      std::fputc('\n', stderr);
      std::fflush(stderr);
    }
    return;
  }
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return;  // diagnostics must never fail the I/O path
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace

void DumpEvents(const char* reason) {
  WriteDump(EventsToJson(reason), /*always_stderr=*/true);
}

void DumpEventsOnHardFault(const char* reason) {
  const char* path = std::getenv("PNC_FLIGHT_DUMP");
  if (path == nullptr || *path == '\0') return;
  WriteDump(EventsToJson(reason), /*always_stderr=*/false);
}

pnc::Result<EventDump> ParseEventsJson(std::string_view text) {
  using jsoncur::Cursor;
  Cursor cur{text.data(), text.data() + text.size()};
  const auto fail = [](const char* what) {
    return pnc::Status(pnc::Err::kNotNc, std::string("pnc-events: ") + what);
  };
  if (!jsoncur::SeekObjectWithMarker(cur, schemas::kEvents))
    return fail("schema marker not found");

  EventDump dump;
  if (!cur.Eat('{')) return fail("expected object");
  if (cur.Eat('}')) return dump;
  do {
    std::string key;
    if (!cur.ParseString(&key) || !cur.Eat(':')) return fail("bad member");
    if (key == "reason") {
      if (!cur.ParseString(&dump.reason)) return fail("bad reason");
    } else if (key == "capacity") {
      double v = 0;
      if (!cur.ParseNumber(&v)) return fail("bad capacity");
      dump.capacity = static_cast<std::size_t>(v);
    } else if (key == "ranks") {
      if (!cur.Eat('[')) return fail("bad ranks");
      if (!cur.Eat(']')) {
        do {
          EventDump::RankTail tail;
          if (!cur.Eat('{')) return fail("bad rank object");
          if (!cur.Eat('}')) {
            do {
              std::string k2;
              if (!cur.ParseString(&k2) || !cur.Eat(':'))
                return fail("bad rank member");
              if (k2 == "rank") {
                double v = 0;
                if (!cur.ParseNumber(&v)) return fail("bad rank");
                tail.rank = static_cast<int>(v);
              } else if (k2 == "recorded") {
                double v = 0;
                if (!cur.ParseNumber(&v)) return fail("bad recorded");
                tail.recorded = static_cast<std::uint64_t>(v);
              } else if (k2 == "dropped") {
                double v = 0;
                if (!cur.ParseNumber(&v)) return fail("bad dropped");
                tail.dropped = static_cast<std::uint64_t>(v);
              } else if (k2 == "events") {
                if (!cur.Eat('[')) return fail("bad events");
                if (!cur.Eat(']')) {
                  do {
                    Event e;
                    if (!cur.Eat('{')) return fail("bad event object");
                    if (!cur.Eat('}')) {
                      do {
                        std::string k3;
                        if (!cur.ParseString(&k3) || !cur.Eat(':'))
                          return fail("bad event member");
                        if (k3 == "kind") {
                          std::string name;
                          if (!cur.ParseString(&name))
                            return fail("bad kind");
                          if (!EvFromName(name, &e.kind))
                            return fail("unknown event kind");
                        } else if (k3 == "detail") {
                          std::string d;
                          if (!cur.ParseString(&d)) return fail("bad detail");
                          CopyDetail(e.detail, d.c_str());
                        } else {
                          double v = 0;
                          if (!cur.ParseNumber(&v)) return fail("bad value");
                          if (k3 == "seq")
                            e.seq = static_cast<std::uint64_t>(v);
                          else if (k3 == "t_ns")
                            e.t_ns = v;
                          else if (k3 == "d_ns")
                            e.d_ns = v;
                          else if (k3 == "req")
                            e.req = static_cast<std::uint64_t>(v);
                          else if (k3 == "a0")
                            e.a0 = static_cast<std::uint64_t>(v);
                          else if (k3 == "a1")
                            e.a1 = static_cast<std::uint64_t>(v);
                        }
                      } while (cur.Eat(','));
                      if (!cur.Eat('}')) return fail("unterminated event");
                    }
                    e.rank = static_cast<std::uint16_t>(tail.rank);
                    tail.events.push_back(e);
                  } while (cur.Eat(','));
                  if (!cur.Eat(']')) return fail("unterminated events");
                }
              } else {
                if (!cur.SkipValue()) return fail("bad rank value");
              }
            } while (cur.Eat(','));
            if (!cur.Eat('}')) return fail("unterminated rank");
          }
          dump.ranks.push_back(std::move(tail));
        } while (cur.Eat(','));
        if (!cur.Eat(']')) return fail("unterminated ranks");
      }
    } else {
      if (!cur.SkipValue()) return fail("bad value");
    }
  } while (cur.Eat(','));
  if (!cur.Eat('}')) return fail("unterminated object");
  return dump;
}

}  // namespace iostat
