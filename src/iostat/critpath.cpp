#include "iostat/critpath.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

namespace iostat {

namespace {

void AppendF(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

/// One rank's view of one collective op, rebuilt from its event stream.
struct RankOp {
  CritPath::RankSeg seg;
  bool is_write = false;
  bool ok = true;
};

/// Walk one rank's events (recording order) and rebuild its collective
/// ops: phase begin/end pairs nest inside CollBegin/CollEnd brackets.
std::vector<RankOp> RankOps(const std::vector<Event>& events, int rank) {
  std::vector<RankOp> ops;
  bool in_op = false;
  RankOp cur;
  double xchg_begin = 0, io_begin = 0;
  for (const Event& e : events) {
    switch (e.kind) {
      case Ev::kCollBegin:
        cur = RankOp{};
        cur.seg.rank = rank;
        cur.seg.req = e.req;
        cur.seg.detail = e.detail;
        cur.seg.arrive_ns = e.t_ns;
        cur.is_write = e.a1 != 0;
        in_op = true;
        break;
      case Ev::kCollEnd:
        if (!in_op) break;
        cur.seg.depart_ns = e.t_ns;
        cur.ok = e.a0 != 0;
        ops.push_back(cur);
        in_op = false;
        break;
      case Ev::kXchgBegin:
        xchg_begin = e.t_ns;
        break;
      case Ev::kXchgEnd:
        if (in_op) cur.seg.exchange_ns += e.t_ns - xchg_begin;
        break;
      case Ev::kIoBegin:
        io_begin = e.t_ns;
        break;
      case Ev::kIoEnd:
        if (in_op) cur.seg.io_ns += e.t_ns - io_begin;
        break;
      default:
        break;
    }
  }
  return ops;
}

}  // namespace

double CritPath::Op::attributed_ns() const {
  double sum = 0;
  for (const RankSeg& r : ranks) sum += r.wait_ns + r.exchange_ns + r.io_ns;
  return sum;
}

double CritPath::Op::attributed_frac() const {
  const double denom = static_cast<double>(ranks.size()) * wall_ns();
  return denom > 0 ? attributed_ns() / denom : 1.0;
}

CritPath AnalyzeCritPath(const std::vector<std::vector<Event>>& ranks) {
  CritPath cp;
  std::vector<std::vector<RankOp>> per_rank;
  per_rank.reserve(ranks.size());
  for (std::size_t r = 0; r < ranks.size(); ++r)
    per_rank.push_back(RankOps(ranks[r], static_cast<int>(r)));
  if (per_rank.empty()) return cp;

  // Tail-align: a bounded ring may retain different depths of history per
  // rank, but every rank participates in every collective, so the k-th op
  // from the end is the same op on every rank.
  std::size_t nops = per_rank[0].size();
  for (const auto& ops : per_rank) nops = std::min(nops, ops.size());
  if (nops == 0) return cp;

  for (std::size_t k = 0; k < nops; ++k) {
    CritPath::Op op;
    op.index = k;
    op.begin_ns = 0;
    op.end_ns = 0;
    bool first = true;
    for (const auto& ops : per_rank) {
      const RankOp& ro = ops[ops.size() - nops + k];
      op.ranks.push_back(ro.seg);
      op.is_write = op.is_write || ro.is_write;
      op.ok = op.ok && ro.ok;
      op.begin_ns = first ? ro.seg.arrive_ns
                          : std::min(op.begin_ns, ro.seg.arrive_ns);
      op.end_ns = first ? ro.seg.depart_ns
                        : std::max(op.end_ns, ro.seg.depart_ns);
      first = false;
    }
    // Straggler wait tiles the remainder of each rank's [op begin, depart]
    // interval not spent in a named phase.
    for (CritPath::RankSeg& seg : op.ranks) {
      seg.wait_ns = (seg.depart_ns - op.begin_ns) - seg.exchange_ns -
                    seg.io_ns;
      if (seg.wait_ns < 0) seg.wait_ns = 0;
    }
    // Per-server decomposition: pfs service events whose start falls in the
    // op window (independent traffic in the window counts too — it holds
    // the same servers busy).
    // Keyed by (server, tenant): QoS-tagged traffic ("r:<name>" details)
    // gets its own row so per-tenant queue wait is visible per server.
    std::map<std::pair<int, std::string>, CritPath::ServerSeg> servers;
    for (const auto& evs : ranks) {
      for (const Event& e : evs) {
        if (e.kind != Ev::kPfsServer) continue;
        if (e.t_ns < op.begin_ns || e.t_ns > op.end_ns) continue;
        const int server = static_cast<int>(e.a0 & 0xff);
        const char* colon = std::strchr(e.detail, ':');
        std::string tenant = colon != nullptr ? colon + 1 : "";
        CritPath::ServerSeg& s = servers[{server, tenant}];
        s.server = server;
        s.tenant = std::move(tenant);
        s.ops += 1;
        s.bytes += e.a0 >> 8;
        s.queue_ns += static_cast<double>(e.a1);
        s.service_ns += e.d_ns;
      }
    }
    for (const auto& [key, seg] : servers) op.servers.push_back(seg);
    cp.ops.push_back(std::move(op));
  }
  return cp;
}

CritPath AnalyzeCritPath(const EventDump& dump) {
  int max_rank = 0;
  for (const auto& tail : dump.ranks)
    max_rank = std::max(max_rank, tail.rank);
  std::vector<std::vector<Event>> ranks(
      static_cast<std::size_t>(max_rank) + 1);
  for (const auto& tail : dump.ranks)
    ranks[static_cast<std::size_t>(tail.rank)] = tail.events;
  return AnalyzeCritPath(ranks);
}

std::string PrettyPrintCritPath(const CritPath& cp) {
  std::string out;
  AppendF(out, "critical path: %zu collective op(s)\n", cp.ops.size());
  for (const CritPath::Op& op : cp.ops) {
    const double wall = op.wall_ns();
    AppendF(out,
            "op %zu %s%s: wall %.0f ns, %.1f%% attributed to named "
            "(rank, phase) segments\n",
            op.index, op.is_write ? "write" : "read", op.ok ? "" : " FAILED",
            wall, 100.0 * op.attributed_frac());
    for (const CritPath::RankSeg& r : op.ranks) {
      const double pct = wall > 0 ? 100.0 / wall : 0;
      AppendF(out,
              "  rank %d req %" PRIu64 " [%s]: wait %.0f ns (%.1f%%), "
              "exchange %.0f ns (%.1f%%), file-io %.0f ns (%.1f%%)\n",
              r.rank, r.req, r.detail.c_str(), r.wait_ns, r.wait_ns * pct,
              r.exchange_ns, r.exchange_ns * pct, r.io_ns, r.io_ns * pct);
    }
    for (const CritPath::ServerSeg& s : op.servers) {
      AppendF(out,
              "  server %d%s%s: %" PRIu64 " req(s), %" PRIu64
              " B, queue %.0f ns, service %.0f ns\n",
              s.server, s.tenant.empty() ? "" : " tenant ",
              s.tenant.c_str(), s.ops, s.bytes, s.queue_ns, s.service_ns);
    }
  }
  return out;
}

}  // namespace iostat
