#include "iostat/health.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace iostat {
namespace {

/// Append printf-formatted text to `out` (mirrors pattern.cpp's helper).
void AppendF(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

/// Split `text` on `sep`, keeping empty fields (the rule syntax uses
/// positional fields, so "bw_floor::50" has an empty tenant).
std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace

const char* SloKindName(SloRule::Kind k) {
  switch (k) {
    case SloRule::Kind::kP99WaitNs: return "p99_wait";
    case SloRule::Kind::kMissRate: return "miss_rate";
    case SloRule::Kind::kRetryRate: return "retry_rate";
    case SloRule::Kind::kFaultRate: return "fault_rate";
    case SloRule::Kind::kBwFloorMBps: return "bw_floor";
  }
  return "?";
}

bool SloKindFromName(std::string_view name, SloRule::Kind* out) {
  for (int k = 0; k <= static_cast<int>(SloRule::Kind::kBwFloorMBps); ++k) {
    const auto kind = static_cast<SloRule::Kind>(k);
    if (name == SloKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

std::vector<SloRule> ParseSloRules(std::string_view text) {
  std::vector<SloRule> rules;
  for (const std::string& entry : Split(text, ';')) {
    if (entry.empty()) continue;
    const std::vector<std::string> f = Split(entry, ':');
    SloRule r;
    if (!SloKindFromName(f[0], &r.kind)) continue;
    if (f.size() > 1) r.tenant = f[1];
    if (f.size() > 2 && !f[2].empty()) r.threshold = std::strtod(f[2].c_str(), nullptr);
    if (f.size() > 3 && !f[3].empty()) {
      const long w = std::strtol(f[3].c_str(), nullptr, 10);
      if (w >= 1) r.window = static_cast<int>(w);
    }
    r.id = f[0];
    if (!r.tenant.empty()) r.id += "." + r.tenant;
    rules.push_back(std::move(r));
  }
  return rules;
}

std::vector<SloRule> DefaultSloRules() {
  // Objective floors that hold for any healthy run: no deadline misses, no
  // injected faults. Threshold 0 with ">" semantics means a single miss or
  // fault in a bucket trips.
  SloRule miss;
  miss.kind = SloRule::Kind::kMissRate;
  miss.id = "miss_rate";
  SloRule fault;
  fault.kind = SloRule::Kind::kFaultRate;
  fault.id = "fault_rate";
  return {miss, fault};
}

std::vector<SloRule> SloRulesFromEnv() {
  const char* v = std::getenv("PNC_SLO");
  if (v == nullptr || *v == '\0') return DefaultSloRules();
  return ParseSloRules(v);
}

bool SloRuleTrips(const SloRule& r, const SloBucketView& v, double* observed) {
  double obs = 0.0;
  bool trip = false;
  switch (r.kind) {
    case SloRule::Kind::kP99WaitNs:
      obs = v.p99_wait_ns;
      trip = v.grants > 0 && obs > r.threshold;
      break;
    case SloRule::Kind::kMissRate:
      obs = v.grants ? static_cast<double>(v.misses) /
                           static_cast<double>(v.grants)
                     : 0.0;
      trip = v.grants > 0 && obs > r.threshold;
      break;
    case SloRule::Kind::kRetryRate:
      obs = v.retries_per_s;
      trip = obs > r.threshold;
      break;
    case SloRule::Kind::kFaultRate:
      obs = v.faults_per_s;
      trip = obs > r.threshold;
      break;
    case SloRule::Kind::kBwFloorMBps:
      obs = v.mbps;
      trip = obs < r.threshold;  // silence counts: a collapse IS the signal
      break;
  }
  if (observed != nullptr) *observed = obs;
  return trip;
}

void HealthMonitor::SetRules(std::vector<SloRule> rules) {
  rules_ = std::move(rules);
  state_.assign(rules_.size(), RuleState{});
  for (std::size_t i = 0; i < rules_.size(); ++i) state_[i].st.rule = rules_[i];
  fed_ = false;
}

std::vector<HealthMonitor::Violation> HealthMonitor::OnBucketSealed(
    std::uint64_t bucket, const std::vector<SloBucketView>& per_rule) {
  std::vector<Violation> out;
  fed_ = true;
  for (std::size_t i = 0; i < rules_.size() && i < per_rule.size(); ++i) {
    const SloRule& r = rules_[i];
    const SloBucketView& v = per_rule[i];
    RuleState& s = state_[i];
    double obs = 0.0;
    const bool trip = SloRuleTrips(r, v, &obs);
    // Track the most extreme value either direction of the threshold.
    const bool floor = r.kind == SloRule::Kind::kBwFloorMBps;
    if (!s.worst_init) {
      s.st.worst = obs;
      s.worst_init = true;
    } else {
      s.st.worst = floor ? std::min(s.st.worst, obs) : std::max(s.st.worst, obs);
    }
    if (!trip) {
      s.consec = 0;
      continue;
    }
    s.st.tripped_buckets += 1;
    if (s.consec == 0) s.episode_start_ns = v.start_ns;
    s.consec += 1;
    const double end_ns = v.start_ns + v.len_ns;
    if (s.consec >= r.window && s.episode_start_ns > s.last_emit_end_ns) {
      s.last_emit_end_ns = end_ns;
      s.st.violations += 1;
      if (s.st.first_violation_ns < 0) s.st.first_violation_ns = s.episode_start_ns;
      out.push_back(Violation{i, s.episode_start_ns, end_ns, obs, bucket});
    }
  }
  return out;
}

HealthStatus HealthMonitor::Status() const {
  HealthStatus h;
  h.evaluated = fed_;
  for (const RuleState& s : state_) {
    h.total_violations += s.st.violations;
    h.rules.push_back(s.st);
  }
  return h;
}

void HealthMonitor::Reset() {
  state_.assign(rules_.size(), RuleState{});
  for (std::size_t i = 0; i < rules_.size(); ++i) state_[i].st.rule = rules_[i];
  fed_ = false;
}

std::string RenderHealth(const HealthStatus& h) {
  std::string out;
  if (!h.evaluated) {
    out += "[health] no sealed timeline buckets (timeline off or empty run)\n";
    return out;
  }
  AppendF(out, "[health] %llu violation%s across %zu rule%s\n",
          static_cast<unsigned long long>(h.total_violations),
          h.total_violations == 1 ? "" : "s", h.rules.size(),
          h.rules.size() == 1 ? "" : "s");
  for (const SloRuleStatus& s : h.rules) {
    const char* cmp =
        s.rule.kind == SloRule::Kind::kBwFloorMBps ? "floor" : "limit";
    AppendF(out, "  %-24s %s %s=%.6g window=%d  tripped=%llu violations=%llu",
            s.rule.id.c_str(), s.violations ? "VIOLATED" : "ok      ", cmp,
            s.rule.threshold, s.rule.window,
            static_cast<unsigned long long>(s.tripped_buckets),
            static_cast<unsigned long long>(s.violations));
    if (s.violations)
      AppendF(out, "  first@%.0fns worst=%.6g", s.first_violation_ns, s.worst);
    out += '\n';
  }
  return out;
}

}  // namespace iostat
