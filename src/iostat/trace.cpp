#include "iostat/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "iostat/events.hpp"
#include "util/json.hpp"

namespace iostat {

namespace {

void AppendF(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

/// Flow-arrow binding ID linking a two-phase exchange send on the source
/// rank to the aggregator piece it lands in: (src rank, window, dst rank)
/// is unique within one collective and identical on both ends.
std::uint64_t FlowId(std::uint64_t src_rank, std::uint64_t window,
                     std::uint64_t dst_rank) {
  return (src_rank << 40) ^ (window << 20) ^ dst_rank;
}

}  // namespace

std::string ToChromeTrace(const TimelineSummary* timeline) {
  const Registry& reg = Registry::Get();
  const int nranks = reg.nranks();

  std::string out;
  out.reserve(4096);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (int r = 0; r < nranks; ++r) {
    AppendF(out,
            "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,"
            "\"args\":{\"name\":\"rank %d\"}}",
            first ? "" : ",", r, r);
    first = false;
  }
  for (int r = 0; r < nranks; ++r) {
    const std::vector<Span> spans = reg.SpansOfRank(r);
    for (const Span& s : spans) {
      // Trace-event timestamps are microseconds; spans carry virtual ns.
      const double ts_us = s.start_ns / 1000.0;
      const double dur_us = (s.end_ns - s.start_ns) / 1000.0;
      AppendF(out, "%s{\"name\":\"", first ? "" : ",");
      pnc::json::AppendEscaped(out, s.name);
      out += "\",\"cat\":\"";
      pnc::json::AppendEscaped(out, s.cat);
      AppendF(out,
              "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,"
              "\"tid\":%d}",
              ts_us, dur_us, r);
      first = false;
    }
  }

  // Flight-recorder overlays: causal flow arrows for the two-phase
  // exchange (request-ID linked send -> aggregator piece), per-request
  // instants at the API boundary, and pfs per-server service tracks
  // (pid 1, one row per server).
  const std::vector<std::vector<Event>> events =
      FlightRecorder::Get().Collect();
  int max_server = -1;
  // Service begin/end edges harvested from kPfsServer events, turned into
  // Chrome counter ("ph":"C") tracks after the main pass: per-server queue
  // depth and per-tenant in-flight bytes.
  struct CounterEdge {
    double ts_us;
    int server;
    int depth_delta;
    std::int64_t byte_delta;
    std::string tenant;
  };
  std::vector<CounterEdge> edges;
  for (std::size_t r = 0; r < events.size(); ++r) {
    const std::uint64_t self = static_cast<std::uint64_t>(r);
    for (const Event& e : events[r]) {
      const double ts_us = e.t_ns / 1000.0;
      switch (e.kind) {
        case Ev::kApiBegin:
          AppendF(out, "%s{\"name\":\"", first ? "" : ",");
          pnc::json::AppendEscaped(out, e.detail);
          AppendF(out,
                  "\",\"cat\":\"req\",\"ph\":\"i\",\"s\":\"t\","
                  "\"ts\":%.3f,\"pid\":0,\"tid\":%zu,"
                  "\"args\":{\"req\":%" PRIu64 ",\"bytes\":%" PRIu64 "}}",
                  ts_us, r, e.req, e.a0);
          first = false;
          break;
        case Ev::kXchgSend:
          // Flow start on the sender (a0=window, a1=dest aggregator rank).
          AppendF(out,
                  "%s{\"name\":\"req\",\"cat\":\"flow\",\"ph\":\"s\","
                  "\"id\":%" PRIu64 ",\"ts\":%.3f,\"pid\":0,\"tid\":%zu,"
                  "\"args\":{\"req\":%" PRIu64 "}}",
                  first ? "" : ",", FlowId(self, e.a0, e.a1), ts_us, r,
                  e.req);
          first = false;
          break;
        case Ev::kAggPiece:
          // Flow finish on the aggregator (a0=(window<<32)|src rank,
          // a1=source request ID).
          AppendF(out,
                  "%s{\"name\":\"req\",\"cat\":\"flow\",\"ph\":\"f\","
                  "\"bp\":\"e\",\"id\":%" PRIu64 ",\"ts\":%.3f,\"pid\":0,"
                  "\"tid\":%zu,\"args\":{\"src_req\":%" PRIu64 "}}",
                  first ? "" : ",",
                  FlowId(e.a0 & 0xffffffffULL, e.a0 >> 32, self), ts_us, r,
                  e.a1);
          first = false;
          break;
        case Ev::kPfsServer: {
          const int server = static_cast<int>(e.a0 & 0xff);
          if (server > max_server) max_server = server;
          // Zero-length flushes ('s') observe the queue without occupying
          // it; everything else feeds the counter tracks below.
          if (e.detail[0] != 's') {
            const char* tenant =
                e.detail[1] == ':' ? e.detail + 2 : "default";
            const std::int64_t bytes =
                static_cast<std::int64_t>(e.a0 >> 8);
            edges.push_back({e.t_ns / 1000.0, server, +1, bytes, tenant});
            edges.push_back(
                {(e.t_ns + e.d_ns) / 1000.0, server, -1, -bytes, tenant});
          }
          AppendF(out,
                  "%s{\"name\":\"serve\",\"cat\":\"pfs\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,"
                  "\"args\":{\"req\":%" PRIu64 ",\"rank\":%d,"
                  "\"bytes\":%" PRIu64 ",\"queue_ns\":%" PRIu64 "}}",
                  first ? "" : ",", ts_us, e.d_ns / 1000.0, server, e.req,
                  static_cast<int>(e.rank), e.a0 >> 8, e.a1);
          first = false;
          break;
        }
        default:
          break;
      }
    }
  }
  // Counter tracks: queue depth per server and in-flight bytes per tenant,
  // as Chrome "ph":"C" events (a sample per service begin/end). Ends sort
  // before begins at equal timestamps so back-to-back grants do not spike.
  std::stable_sort(edges.begin(), edges.end(),
                   [](const CounterEdge& a, const CounterEdge& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.depth_delta < b.depth_delta;
                   });
  std::map<int, std::int64_t> depth_by_server;
  std::map<std::string, std::int64_t> inflight_by_tenant;
  for (const CounterEdge& e : edges) {
    const std::int64_t depth = depth_by_server[e.server] += e.depth_delta;
    AppendF(out,
            "%s{\"name\":\"queue depth s%d\",\"cat\":\"pfs\",\"ph\":\"C\","
            "\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"depth\":%" PRId64
            "}}",
            first ? "" : ",", e.server, e.ts_us, e.server, depth);
    first = false;
    const std::int64_t inflight = inflight_by_tenant[e.tenant] += e.byte_delta;
    AppendF(out, "%s{\"name\":\"inflight bytes ", first ? "" : ",");
    pnc::json::AppendEscaped(out, e.tenant.c_str());
    AppendF(out,
            "\",\"cat\":\"pfs\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,"
            "\"tid\":0,\"args\":{\"bytes\":%" PRId64 "}}",
            e.ts_us, inflight);
  }
  for (int s = 0; s <= max_server; ++s) {
    AppendF(out,
            "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
            "\"args\":{\"name\":\"pfs server %d\"}}",
            first ? "" : ",", s, s);
    first = false;
  }

  // Timeline buckets as counter tracks: unlike the edge-derived counters
  // above (exact sample per grant), these are the bucketed rate series —
  // one sample per cell, so a long run stays a bounded number of points.
  if (timeline != nullptr && timeline->present && timeline->cell_ns > 0) {
    const double cell_us = timeline->cell_ns / 1000.0;
    for (const TlServerCell& c : timeline->servers) {
      const double mbps =
          static_cast<double>(c.bytes) * 1e3 / timeline->cell_ns;
      AppendF(out,
              "%s{\"name\":\"tl mbps s%d\",\"cat\":\"timeline\","
              "\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,"
              "\"args\":{\"mbps\":%.3f}}",
              first ? "" : ",", c.server,
              static_cast<double>(c.bucket) * cell_us, c.server, mbps);
      first = false;
    }
    for (const TlTenantCell& c : timeline->tenants) {
      AppendF(out, "%s{\"name\":\"tl p99 wait us ", first ? "" : ",");
      pnc::json::AppendEscaped(out, c.tenant.c_str());
      AppendF(out,
              "\",\"cat\":\"timeline\",\"ph\":\"C\",\"ts\":%.3f,"
              "\"pid\":1,\"tid\":0,\"args\":{\"us\":%.3f}}",
              static_cast<double>(c.bucket) * cell_us,
              static_cast<double>(c.p99_wait_ns) / 1000.0);
      first = false;
    }
    for (const TlTrackCell& c : timeline->tracks) {
      AppendF(out, "%s{\"name\":\"tl ", first ? "" : ",");
      pnc::json::AppendEscaped(out, TlTrackName(static_cast<TlTrack>(c.track)));
      AppendF(out,
              "\",\"cat\":\"timeline\",\"ph\":\"C\",\"ts\":%.3f,"
              "\"pid\":1,\"tid\":0,\"args\":{\"value\":%.3f}}",
              static_cast<double>(c.bucket) * cell_us, c.value);
      first = false;
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

pnc::Status WriteChromeTrace(const std::string& path,
                             const TimelineSummary* timeline) {
  const std::string json = ToChromeTrace(timeline);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    return pnc::Status(pnc::Err::kIo, "cannot open trace file: " + path);
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  const int rc = std::fclose(f);
  if (n != json.size() || rc != 0)
    return pnc::Status(pnc::Err::kIo, "short write to trace file: " + path);
  return pnc::Status::Ok();
}

}  // namespace iostat
