#include "iostat/trace.hpp"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace iostat {

namespace {

void AppendF(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

}  // namespace

std::string ToChromeTrace() {
  const Registry& reg = Registry::Get();
  const int nranks = reg.nranks();

  std::string out;
  out.reserve(4096);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (int r = 0; r < nranks; ++r) {
    AppendF(out,
            "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,"
            "\"args\":{\"name\":\"rank %d\"}}",
            first ? "" : ",", r, r);
    first = false;
  }
  for (int r = 0; r < nranks; ++r) {
    const std::vector<Span> spans = reg.SpansOfRank(r);
    for (const Span& s : spans) {
      // Trace-event timestamps are microseconds; spans carry virtual ns.
      const double ts_us = s.start_ns / 1000.0;
      const double dur_us = (s.end_ns - s.start_ns) / 1000.0;
      AppendF(out,
              "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
              "\"dur\":%.3f,\"pid\":0,\"tid\":%d}",
              first ? "" : ",", s.name, s.cat, ts_us, dur_us, r);
      first = false;
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

pnc::Status WriteChromeTrace(const std::string& path) {
  const std::string json = ToChromeTrace();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    return pnc::Status(pnc::Err::kIo, "cannot open trace file: " + path);
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  const int rc = std::fclose(f);
  if (n != json.size() || rc != 0)
    return pnc::Status(pnc::Err::kIo, "short write to trace file: " + path);
  return pnc::Status::Ok();
}

}  // namespace iostat
