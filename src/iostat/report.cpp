#include "iostat/report.hpp"

#include <cstdarg>
#include <cinttypes>
#include <cstdio>

#include "iostat/json_cursor.hpp"
#include "iostat/schemas.hpp"

namespace iostat {

namespace {

void AppendF(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

}  // namespace

Report BuildReport() {
  const Registry& reg = Registry::Get();
  Report rep;
  rep.nranks = reg.nranks();
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    auto& agg = rep.counters[i];
    agg.min = ~0ULL;
    for (int r = 0; r < rep.nranks; ++r) {
      const std::uint64_t v = reg.Value(r, static_cast<Ctr>(i));
      agg.min = std::min(agg.min, v);
      agg.max = std::max(agg.max, v);
      agg.sum += v;
    }
    if (rep.nranks > 0)
      agg.mean = static_cast<double>(agg.sum) / rep.nranks;
    else
      agg.min = 0;
  }

  const auto sum = [&](Ctr c) {
    return static_cast<double>(rep[c].sum);
  };
  const double wanted = sum(Ctr::kMpiioSieveBytesWanted);
  const double filed = sum(Ctr::kMpiioSieveBytesFile);
  rep.sieve_amplification = wanted > 0 ? filed / wanted : 1.0;
  const double payload = sum(Ctr::kMpiioCollPayloadBytes);
  const double agg_bytes = sum(Ctr::kMpiioAggBytes);
  rep.twophase_amplification = payload > 0 ? agg_bytes / payload : 1.0;
  const double ex = sum(Ctr::kMpiioExchangeNs);
  const double io = sum(Ctr::kMpiioIoPhaseNs);
  rep.exchange_frac = (ex + io) > 0 ? ex / (ex + io) : 0.0;
  const double busy = sum(Ctr::kPfsBusyNs);
  const double qwait = sum(Ctr::kPfsQueueWaitNs);
  const double servers = static_cast<double>(rep[Ctr::kPfsServers].max);
  const double horizon = static_cast<double>(rep[Ctr::kPfsHorizonNs].max);
  rep.pfs_busy_frac =
      servers > 0 && horizon > 0 ? busy / (servers * horizon) : 0.0;
  rep.pfs_queue_wait_frac = (qwait + busy) > 0 ? qwait / (qwait + busy) : 0.0;
  rep.pattern = PatternRegistry::Get().Snapshot();
  rep.timeline = TimelineRegistry::Get().Snapshot();
  return rep;
}

std::string ToJson(const Report& rep) {
  std::string out;
  out.reserve(2048);
  AppendF(out, "{\"schema\":\"%s\",\"nranks\":%d,\"counters\":{",
          schemas::kIostat, rep.nranks);
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const auto& a = rep.counters[i];
    AppendF(out,
            "%s\"%s\":{\"min\":%" PRIu64 ",\"max\":%" PRIu64 ",\"sum\":%" PRIu64
            ",\"mean\":%.17g}",
            i == 0 ? "" : ",", CtrName(static_cast<Ctr>(i)), a.min, a.max,
            a.sum, a.mean);
  }
  AppendF(out,
          "},\"derived\":{\"sieve_amplification\":%.17g,"
          "\"twophase_amplification\":%.17g,\"exchange_frac\":%.17g,"
          "\"pfs_busy_frac\":%.17g,\"pfs_queue_wait_frac\":%.17g}",
          rep.sieve_amplification, rep.twophase_amplification,
          rep.exchange_frac, rep.pfs_busy_frac, rep.pfs_queue_wait_frac);
  // The pattern member is emitted only when the profiler recorded something:
  // with PNC_IOSTAT_PATTERN=0 (or -DPNC_IOSTAT=OFF) the report stays
  // byte-identical to the pre-profiler schema.
  if (rep.pattern.present) {
    out += ",\"pattern\":";
    out += PatternToJson(rep.pattern);
  }
  // Same contract for the timeline: absent unless PNC_IOSTAT_TIMELINE
  // recorded something, so gated-off reports stay byte-identical.
  if (rep.timeline.present) {
    out += ",\"timeline\":";
    out += TimelineToJson(rep.timeline);
  }
  out.push_back('}');
  return out;
}

// --------------------------------------------------------------- parsing
// Built on the shared jsoncur reader (json_cursor.hpp). Unknown keys are
// skipped (SkipValue handles arbitrary nesting), so records that embed the
// report alongside other members still parse.

namespace {

using jsoncur::Cursor;

bool LookupCtr(const std::string& name, Ctr* out) {
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (name == CtrName(static_cast<Ctr>(i))) {
      *out = static_cast<Ctr>(i);
      return true;
    }
  }
  return false;
}

bool ParseAgg(Cursor& cur, Report::Agg* agg) {
  if (!cur.Eat('{')) return false;
  if (cur.Eat('}')) return true;
  do {
    std::string key;
    double v = 0;
    if (!cur.ParseString(&key) || !cur.Eat(':') || !cur.ParseNumber(&v))
      return false;
    if (key == "min") agg->min = static_cast<std::uint64_t>(v);
    else if (key == "max") agg->max = static_cast<std::uint64_t>(v);
    else if (key == "sum") agg->sum = static_cast<std::uint64_t>(v);
    else if (key == "mean") agg->mean = v;
  } while (cur.Eat(','));
  return cur.Eat('}');
}

}  // namespace

pnc::Result<Report> ParseReportJson(std::string_view text) {
  Cursor cur{text.data(), text.data() + text.size()};
  const auto fail = [](const char* what) {
    return pnc::Status(pnc::Err::kNotNc, std::string("iostat report: ") + what);
  };
  // The report may be nested inside a bench record: scan forward to the
  // schema marker and parse the object that contains it.
  if (!jsoncur::SeekObjectWithMarker(cur, schemas::kIostat))
    return fail("schema marker not found");

  Report rep;
  if (!cur.Eat('{')) return fail("expected object");
  if (!cur.Eat('}')) {
    do {
      std::string key;
      if (!cur.ParseString(&key) || !cur.Eat(':')) return fail("bad member");
      if (key == "nranks") {
        double v = 0;
        if (!cur.ParseNumber(&v)) return fail("bad nranks");
        rep.nranks = static_cast<int>(v);
      } else if (key == "counters") {
        if (!cur.Eat('{')) return fail("bad counters");
        if (!cur.Eat('}')) {
          do {
            std::string name;
            if (!cur.ParseString(&name) || !cur.Eat(':'))
              return fail("bad counter");
            Report::Agg agg;
            if (!ParseAgg(cur, &agg)) return fail("bad counter aggregate");
            Ctr c;
            if (LookupCtr(name, &c))
              rep.counters[static_cast<std::size_t>(c)] = agg;
          } while (cur.Eat(','));
          if (!cur.Eat('}')) return fail("unterminated counters");
        }
      } else if (key == "derived") {
        if (!cur.Eat('{')) return fail("bad derived");
        if (!cur.Eat('}')) {
          do {
            std::string name;
            double v = 0;
            if (!cur.ParseString(&name) || !cur.Eat(':') ||
                !cur.ParseNumber(&v))
              return fail("bad derived member");
            if (name == "sieve_amplification") rep.sieve_amplification = v;
            else if (name == "twophase_amplification")
              rep.twophase_amplification = v;
            else if (name == "exchange_frac") rep.exchange_frac = v;
            else if (name == "pfs_busy_frac") rep.pfs_busy_frac = v;
            else if (name == "pfs_queue_wait_frac")
              rep.pfs_queue_wait_frac = v;
          } while (cur.Eat(','));
          if (!cur.Eat('}')) return fail("unterminated derived");
        }
      } else if (key == "pattern") {
        if (!ParsePatternValue(cur, &rep.pattern)) return fail("bad pattern");
      } else if (key == "timeline") {
        if (!ParseTimelineValue(cur, &rep.timeline))
          return fail("bad timeline");
      } else {
        if (!cur.SkipValue()) return fail("bad value");
      }
    } while (cur.Eat(','));
    if (!cur.Eat('}')) return fail("unterminated object");
  }
  return rep;
}

// --------------------------------------------------------- pretty printer

std::string PrettyPrint(const Report& rep) {
  std::string out;
  out.reserve(2048);
  AppendF(out, "iostat report (%d rank%s)\n", rep.nranks,
          rep.nranks == 1 ? "" : "s");

  const char* last_layer = "";
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const char* name = CtrName(static_cast<Ctr>(i));
    const char* dot = std::strchr(name, '.');
    const std::size_t layer_len =
        dot ? static_cast<std::size_t>(dot - name) : std::strlen(name);
    if (std::strncmp(last_layer, name, layer_len) != 0 ||
        last_layer[layer_len] != '.') {
      AppendF(out, "  [%.*s]\n", static_cast<int>(layer_len), name);
      last_layer = name;
    }
    const auto& a = rep.counters[i];
    AppendF(out,
            "    %-24s sum %14" PRIu64 "  mean %14.1f  min %12" PRIu64
            "  max %12" PRIu64 "\n",
            dot ? dot + 1 : name, a.sum, a.mean, a.min, a.max);
  }
  AppendF(out, "  [derived]\n");
  AppendF(out, "    %-24s %.4f\n", "sieve_amplification",
          rep.sieve_amplification);
  AppendF(out, "    %-24s %.4f\n", "twophase_amplification",
          rep.twophase_amplification);
  AppendF(out, "    %-24s %.4f\n", "exchange_frac", rep.exchange_frac);
  AppendF(out, "    %-24s %.4f\n", "pfs_busy_frac", rep.pfs_busy_frac);
  AppendF(out, "    %-24s %.4f\n", "pfs_queue_wait_frac",
          rep.pfs_queue_wait_frac);

  if (rep.pattern.present) {
    AppendF(out, "  [pattern]\n");
    for (const auto& v : rep.pattern.vars) {
      AppendF(out,
              "    var %-12s calls %6" PRIu64 " (w %" PRIu64 "/r %" PRIu64
              ", indep %" PRIu64 "/coll %" PRIu64 ")  shape c/s/r %" PRIu64
              "/%" PRIu64 "/%" PRIu64 "  mean extent %.0f B\n",
              v.var.c_str(), v.calls, v.writes, v.reads, v.indep, v.coll,
              v.contig, v.strided, v.random, v.extent_bytes.mean());
    }
    AppendF(out,
            "    sieve                    rd amp %.2f  wr amp %.2f  rereads "
            "%" PRIu64 "\n",
            rep.pattern.SieveReadAmp(), rep.pattern.SieveWriteAmp(),
            rep.pattern.sieve_rd_rereads);
    const auto [share, hottest] = rep.pattern.HottestServer();
    if (hottest >= 0)
      AppendF(out, "    hottest server           s%d (%.0f%% of bytes)\n",
              hottest, 100.0 * share);
    if (!rep.pattern.agg_bytes.empty())
      AppendF(out, "    agg imbalance            %.2fx across %d ranks\n",
              rep.pattern.AggImbalance(rep.nranks), rep.nranks);
  }

  if (rep.timeline.present) {
    AppendF(out, "  [timeline]\n");
    AppendF(out,
            "    %-24s %.3f ms horizon, %.3f ms cells (%zu server / %zu "
            "tenant / %zu track cells)\n",
            "buckets", rep.timeline.horizon_ns / 1e6,
            rep.timeline.cell_ns / 1e6, rep.timeline.servers.size(),
            rep.timeline.tenants.size(), rep.timeline.tracks.size());
    const HealthStatus& h = rep.timeline.health;
    if (h.evaluated)
      AppendF(out, "    %-24s %" PRIu64 " violation%s across %zu rule%s\n",
              "health", h.total_violations,
              h.total_violations == 1 ? "" : "s", h.rules.size(),
              h.rules.size() == 1 ? "" : "s");
  }
  return out;
}

}  // namespace iostat
