// Access-pattern profiler: what the I/O looked like, not just how long it
// took.
//
// The counters in iostat.hpp answer "how many bytes / how much time"; this
// module answers "what shape" — the features Thakur/Gropp/Lusk show decide
// whether data sieving and two-phase collective I/O win: extent size, stride,
// contiguity, read/write mix, independent-vs-collective split, and where the
// bytes landed (per-server offset × virtual-time heatmap cells, aggregator
// byte imbalance). The rule-based advisor (advise.hpp) consumes the summary
// and turns it into concrete tuning recommendations.
//
// Cost discipline mirrors the counter registry:
//   * Compile-time: -DPNC_IOSTAT_DISABLED expands every
//     PNC_IOSTAT_PATTERN_* macro to nothing.
//   * Runtime: recording is ON by default and gated off with PNC_IOSTAT=0 or
//     PNC_IOSTAT_PATTERN=0. A disabled record is one relaxed atomic load and
//     a branch. Enabled records take one short mutex-protected accumulate —
//     capture points sit on request boundaries (API calls, sieve windows,
//     pfs grants), never inside per-byte loops.
//
// Determinism: every accumulator is order-independent (sums, maxes, log2
// histogram buckets, fixed-key cells), and recording NEVER advances virtual
// clocks — timestamps are sampled by the caller. Concurrent rank threads
// therefore produce the same snapshot regardless of thread interleaving,
// which is what lets bench baselines freeze pattern-derived verdicts at zero
// tolerance.
//
// Production layers must use only the PNC_IOSTAT_PATTERN_* macros below — a
// grep lint (tests/CMakeLists.txt, lint.no_direct_pattern_in_production)
// rejects direct PatternRegistry references in those trees.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "iostat/iostat.hpp"
#include "util/bytes.hpp"

namespace iostat::jsoncur {
struct Cursor;
}

namespace iostat {

/// Log2 histogram of unsigned values. Bucket 0 holds zeros; bucket i >= 1
/// holds values whose bit width is i, i.e. [2^(i-1), 2^i - 1]; the last
/// bucket absorbs everything wider. Merging two histograms is bucket-wise
/// addition, so accumulation order never matters.
struct PatternHist {
  static constexpr int kBuckets = 33;

  std::uint64_t bucket[kBuckets] = {};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< meaningful only when count > 0
  std::uint64_t max = 0;

  void Add(std::uint64_t v);
  [[nodiscard]] double mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
  friend bool operator==(const PatternHist&, const PatternHist&) = default;
};

/// Per-variable access summary. One call is classified by its flattened
/// extent list: one extent = contig; several extents with constant length
/// and constant start-to-start stride = strided; anything irregular =
/// random. Single-extent calls are additionally classified against the same
/// rank's previous call on the variable (gap-to-last-end), so a sequence of
/// small scattered reads registers as random even though each call is
/// contiguous in isolation.
struct VarPattern {
  std::string var;  ///< variable name; "*other" absorbs past kMaxVars
  std::uint64_t calls = 0;
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t indep = 0;
  std::uint64_t coll = 0;
  std::uint64_t contig = 0;   ///< calls classified contiguous
  std::uint64_t strided = 0;  ///< calls classified regular-strided
  std::uint64_t random = 0;   ///< calls classified irregular
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  PatternHist extent_bytes;  ///< flattened extent sizes
  PatternHist stride_bytes;  ///< start-to-start strides / inter-call gaps
};

/// Per-pfs-server service totals (offset histogram = "bucketed offsets").
struct ServerPattern {
  std::uint64_t grants = 0;  ///< per-(request, server) service events
  std::uint64_t bytes = 0;
  double busy_ns = 0.0;
  double queue_wait_ns = 0.0;
  PatternHist offsets;  ///< log2 histogram of request offsets
};

/// One server × virtual-time heatmap cell. `t_bucket * cell_ns` is the cell's
/// start time; busy_ns is the service time granted inside the cell.
struct HeatCell {
  int server = 0;
  std::uint64_t t_bucket = 0;
  double busy_ns = 0.0;
  std::uint64_t bytes = 0;    ///< attributed to the grant's begin cell
  std::uint64_t grants = 0;   ///< ditto
  std::uint64_t depth_max = 0;
};

/// Snapshot of everything the profiler accumulated (the `pnc-pattern-v1`
/// JSON section). Deterministically ordered: vars by name, servers by id,
/// cells by (server, t_bucket), agg ranks ascending.
struct PatternSummary {
  bool present = false;  ///< anything recorded? absent => no JSON emitted

  std::vector<VarPattern> vars;
  std::vector<ServerPattern> servers;

  double cell_ns = 0.0;  ///< heatmap cell width (doubles under pressure)
  std::vector<HeatCell> cells;

  // Two-phase shape: pre = per-rank fragment sizes entering the exchange,
  // post = contiguous window spans the aggregators move at the file.
  PatternHist twophase_pre;
  PatternHist twophase_post;

  // Data sieving: wanted (useful payload) vs file (bytes moved at the file,
  // including RMW pre-reads), split by direction; rd_rereads counts read
  // windows that re-fetched an already-seen 64 KiB block.
  std::uint64_t sieve_rd_windows = 0;
  std::uint64_t sieve_wr_windows = 0;
  std::uint64_t sieve_rd_wanted = 0;
  std::uint64_t sieve_rd_file = 0;
  std::uint64_t sieve_wr_wanted = 0;
  std::uint64_t sieve_wr_file = 0;
  std::uint64_t sieve_rd_rereads = 0;

  /// Two-phase bytes each aggregator rank moved at the file; ranks that
  /// aggregated nothing are omitted.
  std::vector<std::pair<int, std::uint64_t>> agg_bytes;

  // ---- derived features (used by the advisor and the renderers) ----
  /// max aggregator bytes relative to an even split across `nranks`
  /// participants (1.0 = perfectly balanced); 0 when no aggregation ran.
  [[nodiscard]] double AggImbalance(int nranks) const;
  /// (share of total pfs bytes on the busiest server, its id).
  [[nodiscard]] std::pair<double, int> HottestServer() const;
  [[nodiscard]] double SieveReadAmp() const;
  [[nodiscard]] double SieveWriteAmp() const;
};

/// Process-wide pattern accumulator, a sibling of iostat::Registry with the
/// same lifetime rules (leaked singleton, Reset between bench configs via
/// Registry::Reset). All Record* methods are thread-safe and attribute to
/// the calling thread's bound rank where ranks matter.
class PatternRegistry {
 public:
  static PatternRegistry& Get();

  /// Runtime gate, cached once from PNC_IOSTAT && PNC_IOSTAT_PATTERN.
  static bool on() { return Get().on_.load(std::memory_order_relaxed); }
  void SetEnabled(bool on) { on_.store(on, std::memory_order_relaxed); }

  /// API-boundary capture (pnetcdf): one data-access call's flattened,
  /// offset-sorted extents. `offs`/`lens` are parallel arrays.
  void RecordAccess(std::string_view var, bool is_write, bool collective,
                    const std::vector<std::uint64_t>& offs,
                    const std::vector<std::uint64_t>& lens);

  /// mpiio two-phase: per-rank fragment sizes entering the exchange.
  void RecordTwophasePre(const std::vector<pnc::Extent>& segs);
  /// mpiio two-phase: one contiguous window span an aggregator moved at the
  /// file (attributed to the calling rank for the imbalance feature).
  void RecordAggWindow(std::uint64_t bytes);
  /// mpiio data sieving: one sieve window — useful payload vs bytes moved at
  /// the file (RMW pre-reads included by the caller). `sieved` marks real
  /// multi-segment sieve windows; only those feed read-reread detection.
  void RecordSieveWindow(bool is_write, std::uint64_t wanted,
                         std::uint64_t file_bytes, std::uint64_t span_start,
                         bool sieved);
  /// pfs: one per-server service grant. `offset` is the request's start
  /// offset (requests striped over several servers record the same offset on
  /// each); times are virtual ns sampled by the scheduler.
  void RecordPfsGrant(int server, std::uint64_t offset, std::uint64_t bytes,
                      double begin_ns, double done_ns, std::uint64_t depth,
                      double wait_ns);

  [[nodiscard]] PatternSummary Snapshot() const;
  void Reset();

 private:
  PatternRegistry();

  /// Caps keep the accumulator bounded on adversarial workloads. All are
  /// sized far above what any committed bench produces, so gated runs never
  /// hit them (hitting a cap only loses detail, never correctness).
  static constexpr std::size_t kMaxVars = 64;
  static constexpr std::size_t kMaxCells = 2048;
  static constexpr std::size_t kMaxSeenBlocks = 65536;
  static constexpr double kBaseCellNs = 1 << 20;  ///< ~1 ms
  static constexpr std::uint64_t kRereadBlock = 64 * 1024;

  struct SeqState {
    bool has_last = false;
    std::uint64_t last_end = 0;
    bool has_gap = false;
    std::int64_t last_gap = 0;
  };
  struct VarAcc {
    VarPattern pat;
    std::map<int, SeqState> seq;  ///< per-rank cross-call state
  };
  struct CellAcc {
    double busy_ns = 0.0;
    std::uint64_t bytes = 0;
    std::uint64_t grants = 0;
    std::uint64_t depth_max = 0;
  };

  VarAcc& VarSlot(std::string_view var);
  void CoarsenCellsLocked();

  mutable std::mutex mu_;
  std::atomic<bool> on_{true};
  std::map<std::string, VarAcc, std::less<>> vars_;
  std::vector<ServerPattern> servers_;
  double cell_ns_ = kBaseCellNs;
  std::map<std::pair<int, std::uint64_t>, CellAcc> cells_;
  PatternHist twophase_pre_;
  PatternHist twophase_post_;
  std::vector<std::uint64_t> agg_bytes_;  ///< indexed by rank
  std::uint64_t sieve_rd_windows_ = 0, sieve_wr_windows_ = 0;
  std::uint64_t sieve_rd_wanted_ = 0, sieve_rd_file_ = 0;
  std::uint64_t sieve_wr_wanted_ = 0, sieve_wr_file_ = 0;
  std::uint64_t sieve_rd_rereads_ = 0;
  std::set<std::uint64_t> seen_read_blocks_;
};

/// Serialize as the one-line `pnc-pattern-v1` JSON object (the "pattern"
/// member of the iostat report; see docs/API.md for the schema).
std::string PatternToJson(const PatternSummary& s);

/// Parse a `pnc-pattern-v1` object at the cursor (positioned on '{').
/// Unknown members are skipped for forward compatibility.
bool ParsePatternValue(jsoncur::Cursor& cur, PatternSummary* out);

/// ASCII server × virtual-time utilization grid (ncstat --heatmap). One row
/// per server, `max_cols` time columns; glyph density = busy fraction of the
/// column; right margin shows each server's byte share.
std::string RenderHeatmap(const PatternSummary& s, int max_cols = 64);

}  // namespace iostat

// ---------------------------------------------------------------- macro API
// The only pattern-recording surface production layers may use.
#if PNC_IOSTAT_ENABLED

/// pnetcdf API boundary: record one data-access call's flattened extents.
#define PNC_IOSTAT_PATTERN_ACCESS(var, is_write, collective, offs, lens)     \
  do {                                                                       \
    if (::iostat::PatternRegistry::on())                                     \
      ::iostat::PatternRegistry::Get().RecordAccess(var, is_write,           \
                                                    collective, offs, lens); \
  } while (0)

/// mpiio: per-rank fragments entering the two-phase exchange.
#define PNC_IOSTAT_PATTERN_TWOPHASE_PRE(segs)                 \
  do {                                                        \
    if (::iostat::PatternRegistry::on())                      \
      ::iostat::PatternRegistry::Get().RecordTwophasePre(segs); \
  } while (0)

/// mpiio: one aggregator file window of `bytes` on the calling rank.
#define PNC_IOSTAT_PATTERN_AGG(bytes)                     \
  do {                                                    \
    if (::iostat::PatternRegistry::on())                  \
      ::iostat::PatternRegistry::Get().RecordAggWindow(   \
          static_cast<std::uint64_t>(bytes));             \
  } while (0)

/// mpiio: one sieve window (wanted payload vs bytes at the file).
#define PNC_IOSTAT_PATTERN_SIEVE(is_write, wanted, file_bytes, span_start, \
                                 sieved)                                   \
  do {                                                                     \
    if (::iostat::PatternRegistry::on())                                   \
      ::iostat::PatternRegistry::Get().RecordSieveWindow(                  \
          is_write, static_cast<std::uint64_t>(wanted),                    \
          static_cast<std::uint64_t>(file_bytes),                          \
          static_cast<std::uint64_t>(span_start), sieved);                 \
  } while (0)

/// pfs: one per-server service grant (heatmap cell + server totals).
#define PNC_IOSTAT_PATTERN_PFS(server, offset, bytes, begin_ns, done_ns, \
                               depth, wait_ns)                           \
  do {                                                                   \
    if (::iostat::PatternRegistry::on())                                 \
      ::iostat::PatternRegistry::Get().RecordPfsGrant(                   \
          server, static_cast<std::uint64_t>(offset),                    \
          static_cast<std::uint64_t>(bytes), begin_ns, done_ns,          \
          static_cast<std::uint64_t>(depth), wait_ns);                   \
  } while (0)

#else  // compiled out: zero cost, no pattern symbols referenced

#define PNC_IOSTAT_PATTERN_ACCESS(var, is_write, collective, offs, lens) \
  ((void)sizeof(var), (void)sizeof(offs), (void)sizeof(lens))
#define PNC_IOSTAT_PATTERN_TWOPHASE_PRE(segs) ((void)sizeof(segs))
#define PNC_IOSTAT_PATTERN_AGG(bytes) ((void)sizeof(bytes))
#define PNC_IOSTAT_PATTERN_SIEVE(is_write, wanted, file_bytes, span_start, \
                                 sieved)                                   \
  ((void)sizeof(wanted), (void)sizeof(file_bytes), (void)sizeof(span_start))
#define PNC_IOSTAT_PATTERN_PFS(server, offset, bytes, begin_ns, done_ns, \
                               depth, wait_ns)                           \
  ((void)sizeof(server), (void)sizeof(bytes), (void)sizeof(depth))

#endif  // PNC_IOSTAT_ENABLED
