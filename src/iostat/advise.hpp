// Rule-based I/O tuning advisor (ncstat --advise).
//
// Consumes an iostat::Report — counters, derived ratios, and the
// access-pattern profile (pattern.hpp) — and emits concrete, ranked
// recommendations with the evidence that triggered them. The rules are the
// paper's tuning story made executable: noncontiguous independent access
// should go collective (Thakur/Gropp/Lusk), sieve buffers should cover the
// access span, aggregation should be balanced across ranks and servers.
//
// Determinism contract: Advise() is a pure function of the report. Every
// threshold is a fixed constant, scores are computed with closed-form
// arithmetic, and ties rank in rule-declaration order — so benches can
// freeze "rule X fired" and recommendation counts into zero-tolerance
// baselines. The full rule table lives in DESIGN.md §8.
#pragma once

#include <string>
#include <vector>

#include "iostat/report.hpp"

namespace iostat {

/// One tuning recommendation. `hint_key`/`hint_value` are machine-applicable
/// when non-empty (an MPI-IO hint a caller can set verbatim); `action` is
/// the human phrasing; `evidence` quotes the numbers that fired the rule.
struct Recommendation {
  std::string rule;    ///< stable id, e.g. "use-collective"
  std::string action;
  std::string hint_key;
  std::string hint_value;
  std::string evidence;
  double score = 0.0;  ///< severity; output is sorted descending
};

/// Evaluate every rule against the report; ranked most-severe first
/// (stable: equal scores keep rule-declaration order). Empty when the
/// pattern looks well tuned or the profiler recorded nothing.
std::vector<Recommendation> Advise(const Report& rep);

/// Human rendering: "#1 [rule, score] action / evidence / hint" per entry.
std::string PrettyPrintAdvice(const std::vector<Recommendation>& recs);

}  // namespace iostat
