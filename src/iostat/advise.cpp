#include "iostat/advise.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace iostat {

namespace {

void AppendF(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

std::string Format(const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return n > 0 ? std::string(buf, static_cast<std::size_t>(n)) : std::string();
}

// Rule thresholds. Fixed constants so Advise() is a pure, reproducible
// function of the report (bench verdicts freeze rule outcomes at zero
// tolerance).
constexpr double kSmallExtent = 64.0 * 1024;    ///< "small" mean extent (B)
constexpr double kSieveAmpBad = 2.0;            ///< amplification worth acting on
constexpr double kAggImbalanceBad = 1.5;        ///< max/even aggregator ratio
constexpr double kServerShareBad = 0.30;        ///< hottest-server byte share
constexpr double kQueueWaitBad = 0.5;           ///< queued / (queued + busy)
constexpr double kExchangeBad = 0.6;            ///< exchange / two-phase time
constexpr double kSmallPfsRequest = 16.0 * 1024; ///< mean pfs request (B)

double Clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

}  // namespace

std::vector<Recommendation> Advise(const Report& rep) {
  std::vector<Recommendation> recs;
  const PatternSummary& pat = rep.pattern;

  // Rule 1 — use-collective: noncontiguous independent access with small
  // extents is exactly the workload two-phase collective I/O exists for.
  // Evaluate per variable, report the worst offender.
  {
    const VarPattern* worst = nullptr;
    double worst_score = 0.0;
    for (const VarPattern& v : pat.vars) {
      if (v.indep == 0 || v.extent_bytes.count == 0) continue;
      const std::uint64_t noncontig = v.strided + v.random;
      if (noncontig <= v.contig) continue;
      const double mean = v.extent_bytes.mean();
      if (mean >= kSmallExtent) continue;
      const double score = Clamp(
          40.0 + 8.0 * std::log2(kSmallExtent / std::max(mean, 1.0)), 40.0,
          95.0);
      if (worst == nullptr || score > worst_score) {
        worst = &v;
        worst_score = score;
      }
    }
    if (worst != nullptr) {
      const bool writing = worst->writes >= worst->reads;
      Recommendation r;
      r.rule = "use-collective";
      r.score = worst_score;
      r.action = Format(
          "switch var '%s' to collective %s (put/get_vara_all) so two-phase "
          "aggregation batches the noncontiguous extents",
          worst->var.c_str(), writing ? "writes" : "reads");
      r.hint_key = writing ? "romio_cb_write" : "romio_cb_read";
      r.hint_value = "enable";
      r.evidence = Format(
          "%" PRIu64 " indep %s calls on '%s' (%" PRIu64 " strided, %" PRIu64
          " random vs %" PRIu64 " contig), mean extent %.0f B, sieve %s "
          "amplification %.1fx",
          worst->indep, writing ? "write" : "read", worst->var.c_str(),
          worst->strided, worst->random, worst->contig,
          worst->extent_bytes.mean(), writing ? "write" : "read",
          writing ? pat.SieveWriteAmp() : pat.SieveReadAmp());
      recs.push_back(std::move(r));
    }
  }

  // Rule 2 — raise-wr-sieve-buffer: write sieving is moving far more bytes
  // (RMW pre-reads + padding) than the callers asked for.
  if (pat.sieve_wr_windows > 0) {
    const double amp = pat.SieveWriteAmp();
    if (amp > kSieveAmpBad) {
      Recommendation r;
      r.rule = "raise-wr-sieve-buffer";
      r.score = Clamp(15.0 + 10.0 * amp, 0.0, 90.0);
      r.action =
          "raise ind_wr_buffer_size so each sieve window covers more useful "
          "payload per read-modify-write";
      r.hint_key = "ind_wr_buffer_size";
      r.hint_value = "4194304";
      r.evidence = Format(
          "write sieving moved %.1fx the useful bytes (%" PRIu64
          " windows: wanted %" PRIu64 " B, file %" PRIu64 " B)",
          amp, pat.sieve_wr_windows, pat.sieve_wr_wanted, pat.sieve_wr_file);
      recs.push_back(std::move(r));
    }
  }

  // Rule 3 — raise-rd-sieve-buffer: read sieving re-fetches data (small
  // buffer forces re-reading blocks it already touched).
  if (pat.sieve_rd_windows > 0) {
    const double amp = pat.SieveReadAmp();
    const double reread_frac =
        static_cast<double>(pat.sieve_rd_rereads) /
        static_cast<double>(pat.sieve_rd_windows);
    if (amp > kSieveAmpBad || pat.sieve_rd_rereads > pat.sieve_rd_windows / 4) {
      Recommendation r;
      r.rule = "raise-rd-sieve-buffer";
      r.score = Clamp(15.0 + 8.0 * amp + 40.0 * reread_frac, 0.0, 88.0);
      r.action =
          "raise ind_rd_buffer_size so sieved reads keep whole access spans "
          "resident instead of re-fetching them";
      r.hint_key = "ind_rd_buffer_size";
      r.hint_value = "8388608";
      r.evidence = Format(
          "read sieving moved %.1fx the useful bytes; %" PRIu64 " of %" PRIu64
          " windows re-fetched an already-seen 64 KiB block",
          amp, pat.sieve_rd_rereads, pat.sieve_rd_windows);
      recs.push_back(std::move(r));
    }
  }

  // Rule 4 — raise-cb-nodes: two-phase file traffic concentrated on too few
  // aggregator ranks relative to an even split.
  {
    const double imb = pat.AggImbalance(rep.nranks);
    if (imb > kAggImbalanceBad && rep.nranks > 1) {
      int top_rank = -1;
      std::uint64_t top = 0, total = 0;
      for (const auto& [rank, b] : pat.agg_bytes) {
        total += b;
        if (b > top) {
          top = b;
          top_rank = rank;
        }
      }
      const int servers = static_cast<int>(rep[Ctr::kPfsServers].max);
      const int want = std::min(rep.nranks, std::max(servers, 1));
      Recommendation r;
      r.rule = "raise-cb-nodes";
      r.score = Clamp(25.0 + 10.0 * imb, 0.0, 85.0);
      r.action = Format(
          "raise cb_nodes (e.g. to %d) so more ranks aggregate two-phase "
          "file windows in parallel",
          want);
      r.hint_key = "cb_nodes";
      r.hint_value = Format("%d", want);
      r.evidence = Format(
          "aggregator byte imbalance %.1fx: rank %d moved %.0f%% of %" PRIu64
          " two-phase file bytes across %d ranks",
          imb, top_rank,
          total > 0 ? 100.0 * static_cast<double>(top) /
                          static_cast<double>(total)
                    : 0.0,
          total, rep.nranks);
      recs.push_back(std::move(r));
    }
  }

  // Rule 5 — restripe-hot-server: one pfs server carries a disproportionate
  // byte share of a multi-server pool.
  {
    const auto [share, hottest] = pat.HottestServer();
    const int pool = static_cast<int>(rep[Ctr::kPfsServers].max);
    if (hottest >= 0 && pool > 1 &&
        share > std::max(kServerShareBad, 2.0 / pool)) {
      Recommendation r;
      r.rule = "restripe-hot-server";
      r.score = Clamp(100.0 * share, 0.0, 80.0);
      r.action = Format(
          "restripe the file (or spread offsets) so bytes fan out across the "
          "%d-server pool instead of server %d",
          pool, hottest);
      r.evidence = Format(
          "server %d carries %.0f%% of pfs bytes (even share would be %.0f%% "
          "across %d servers)",
          hottest, 100.0 * share, 100.0 / pool, pool);
      recs.push_back(std::move(r));
    }
  }

  // Rule 6 — queue-contention: requests spend more time queued at servers
  // than being served.
  if (rep.pfs_queue_wait_frac > kQueueWaitBad) {
    Recommendation r;
    r.rule = "queue-contention";
    r.score = Clamp(80.0 * rep.pfs_queue_wait_frac, 0.0, 75.0);
    r.action =
        "reduce in-flight concurrency: stagger writers, or cap a tenant's "
        "outstanding bytes (PNC_QOS_CAP_BYTES) so servers stop queueing";
    r.evidence = Format(
        "%.0f%% of pfs server time is queue wait (%.1f ms queued vs %.1f ms "
        "busy)",
        100.0 * rep.pfs_queue_wait_frac,
        static_cast<double>(rep[Ctr::kPfsQueueWaitNs].sum) / 1e6,
        static_cast<double>(rep[Ctr::kPfsBusyNs].sum) / 1e6);
    recs.push_back(std::move(r));
  }

  // Rule 7 — exchange-bound: two-phase spends most of its time shuffling
  // data between ranks rather than at the file; bigger collective buffers
  // amortize the exchange.
  if (rep.exchange_frac > kExchangeBad &&
      rep[Ctr::kMpiioCollPayloadBytes].sum > 0) {
    Recommendation r;
    r.rule = "exchange-bound";
    r.score = Clamp(70.0 * rep.exchange_frac, 0.0, 70.0);
    r.action =
        "raise cb_buffer_size so each two-phase window moves more bytes per "
        "exchange round";
    r.hint_key = "cb_buffer_size";
    r.hint_value = "8388608";
    r.evidence =
        Format("two-phase spends %.0f%% of its time in the exchange phase",
               100.0 * rep.exchange_frac);
    recs.push_back(std::move(r));
  }

  // Rule 8 — small-pfs-requests: the file system sees many tiny requests;
  // per-request latency dominates payload time.
  {
    const std::uint64_t ops =
        rep[Ctr::kPfsReadOps].sum + rep[Ctr::kPfsWriteOps].sum;
    const std::uint64_t bytes =
        rep[Ctr::kPfsBytesRead].sum + rep[Ctr::kPfsBytesWritten].sum;
    if (ops > 16 && rep.nranks > 0 &&
        ops > static_cast<std::uint64_t>(4 * rep.nranks)) {
      const double mean_req =
          static_cast<double>(bytes) / static_cast<double>(ops);
      if (mean_req < kSmallPfsRequest && bytes > 0) {
        Recommendation r;
        r.rule = "small-pfs-requests";
        r.score = Clamp(
            10.0 + 5.0 * std::log2(kSmallPfsRequest / std::max(mean_req, 1.0)),
            10.0, 65.0);
        r.action =
            "batch small requests: route them through collective buffering "
            "or coalesce with nonblocking iput/iget + wait_all";
        r.evidence = Format(
            "%" PRIu64 " pfs requests averaged %.0f B each — per-request "
            "overhead dominates the payload",
            ops, mean_req);
        recs.push_back(std::move(r));
      }
    }
  }

  // Most severe first; stable sort keeps rule-declaration order on ties.
  std::stable_sort(recs.begin(), recs.end(),
                   [](const Recommendation& a, const Recommendation& b) {
                     return a.score > b.score;
                   });
  return recs;
}

std::string PrettyPrintAdvice(const std::vector<Recommendation>& recs) {
  std::string out;
  if (recs.empty()) {
    out = "advice: no recommendations — the access pattern looks well "
          "tuned\n";
    return out;
  }
  AppendF(out, "advice (%zu recommendation%s):\n", recs.size(),
          recs.size() == 1 ? "" : "s");
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const Recommendation& r = recs[i];
    AppendF(out, "  #%zu [%s, score %.1f] %s\n", i + 1, r.rule.c_str(),
            r.score, r.action.c_str());
    AppendF(out, "      evidence: %s\n", r.evidence.c_str());
    if (!r.hint_key.empty())
      AppendF(out, "      hint: %s=%s\n", r.hint_key.c_str(),
              r.hint_value.c_str());
  }
  return out;
}

}  // namespace iostat
