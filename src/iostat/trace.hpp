// Chrome trace-event (chrome://tracing / Perfetto) export of the span
// timeline recorded in the iostat registry. Spans are keyed by virtual time
// (simmpi::VirtualClock nanoseconds), so the exported timeline shows the
// simulated schedule, not wall time.
#pragma once

#include <string>

#include "iostat/iostat.hpp"
#include "iostat/timeline.hpp"
#include "util/status.hpp"

namespace iostat {

/// Encode every recorded span as trace-event JSON:
///   {"traceEvents":[{"name":..,"cat":..,"ph":"X","ts":..,"dur":..,
///                    "pid":0,"tid":<rank>}, ...],
///    "displayTimeUnit":"ms"}
/// One "M" thread_name metadata event per rank gives each rank a named
/// track ("rank 0", "rank 1", ...). Timestamps are microseconds (trace-event
/// convention), converted from virtual nanoseconds.
///
/// When a timeline snapshot is supplied (and present), its buckets become
/// additional Chrome counter ("ph":"C") tracks under the pfs process
/// (pid 1): per-server bandwidth ("tl mbps s<N>"), per-tenant p99 queue
/// wait ("tl p99 wait us <tenant>"), and the global rate tracks
/// ("tl <track name>"). One sample per bucket, at the bucket's start time.
std::string ToChromeTrace(const TimelineSummary* timeline = nullptr);

/// ToChromeTrace() written to `path`. Fails only on file-system errors.
pnc::Status WriteChromeTrace(const std::string& path,
                             const TimelineSummary* timeline = nullptr);

}  // namespace iostat
