#include "iostat/pattern.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "iostat/json_cursor.hpp"
#include "iostat/schemas.hpp"

namespace iostat {

namespace {

// Same env convention as the counter gates in iostat.cpp: unset => `def`,
// "0"/"off"/"false" => false, anything else => true.
bool EnvFlag(const char* name, bool def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "false") == 0);
}

void AppendF(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

void AppendJsonString(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          AppendF(out, "\\u%04x", static_cast<unsigned>(c));
        else
          out.push_back(c);
    }
  }
  out.push_back('"');
}

}  // namespace

// ------------------------------------------------------------- PatternHist

void PatternHist::Add(std::uint64_t v) {
  const int b = v == 0 ? 0
                       : std::min(kBuckets - 1,
                                  static_cast<int>(std::bit_width(v)));
  ++bucket[b];
  sum += v;
  if (count == 0) {
    min = max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  ++count;
}

// --------------------------------------------------------- PatternRegistry

PatternRegistry& PatternRegistry::Get() {
  // Leaked like the counter registry: rank threads may record during static
  // destruction of the main thread.
  static PatternRegistry* g = new PatternRegistry();
  return *g;
}

PatternRegistry::PatternRegistry() {
  on_.store(EnvFlag("PNC_IOSTAT", true) && EnvFlag("PNC_IOSTAT_PATTERN", true),
            std::memory_order_relaxed);
}

PatternRegistry::VarAcc& PatternRegistry::VarSlot(std::string_view var) {
  auto it = vars_.find(var);
  if (it != vars_.end()) return it->second;
  // Bound the per-variable table; late arrivals share an overflow slot.
  const std::string key =
      vars_.size() < kMaxVars ? std::string(var) : std::string("*other");
  auto& acc = vars_[key];
  if (acc.pat.var.empty()) acc.pat.var = key;
  return acc;
}

void PatternRegistry::RecordAccess(std::string_view var, bool is_write,
                                   bool collective,
                                   const std::vector<std::uint64_t>& offs,
                                   const std::vector<std::uint64_t>& lens) {
  if (offs.empty() || offs.size() != lens.size()) return;
  const int rank = Registry::rank();
  std::lock_guard<std::mutex> lk(mu_);
  VarAcc& acc = VarSlot(var.empty() ? std::string_view("*unnamed") : var);
  VarPattern& p = acc.pat;
  ++p.calls;
  std::uint64_t bytes = 0;
  for (const std::uint64_t len : lens) {
    p.extent_bytes.Add(len);
    bytes += len;
  }
  if (is_write) {
    ++p.writes;
    p.bytes_written += bytes;
  } else {
    ++p.reads;
    p.bytes_read += bytes;
  }
  if (collective)
    ++p.coll;
  else
    ++p.indep;

  SeqState& st = acc.seq[rank];
  if (offs.size() > 1) {
    // Within-call classification: constant length + constant start-to-start
    // stride = strided, anything irregular = random.
    bool regular = true;
    for (std::size_t i = 1; i < lens.size(); ++i)
      if (lens[i] != lens[0]) regular = false;
    const std::uint64_t stride0 = offs[1] - offs[0];
    for (std::size_t i = 1; i < offs.size(); ++i) {
      const std::uint64_t s = offs[i] - offs[i - 1];
      p.stride_bytes.Add(s);
      if (s != stride0) regular = false;
    }
    if (regular)
      ++p.strided;
    else
      ++p.random;
    st.has_gap = false;  // a multi-extent call breaks any cross-call rhythm
  } else {
    // Single-extent call: classify against the same rank's previous call so
    // scattered small accesses register as random across calls.
    if (!st.has_last) {
      ++p.contig;
    } else {
      const std::int64_t gap = static_cast<std::int64_t>(offs[0]) -
                               static_cast<std::int64_t>(st.last_end);
      if (gap == 0) {
        ++p.contig;
      } else {
        p.stride_bytes.Add(static_cast<std::uint64_t>(gap < 0 ? -gap : gap));
        if (!st.has_gap)
          ++p.strided;
        else if (gap == st.last_gap)
          ++p.strided;
        else
          ++p.random;
        st.last_gap = gap;
        st.has_gap = true;
      }
    }
  }
  st.has_last = true;
  st.last_end = offs.back() + lens.back();
}

void PatternRegistry::RecordTwophasePre(const std::vector<pnc::Extent>& segs) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& s : segs) twophase_pre_.Add(s.len);
}

void PatternRegistry::RecordAggWindow(std::uint64_t bytes) {
  const int rank = Registry::rank();
  std::lock_guard<std::mutex> lk(mu_);
  twophase_post_.Add(bytes);
  if (static_cast<std::size_t>(rank) >= agg_bytes_.size())
    agg_bytes_.resize(static_cast<std::size_t>(rank) + 1, 0);
  agg_bytes_[static_cast<std::size_t>(rank)] += bytes;
}

void PatternRegistry::RecordSieveWindow(bool is_write, std::uint64_t wanted,
                                        std::uint64_t file_bytes,
                                        std::uint64_t span_start,
                                        bool sieved) {
  std::lock_guard<std::mutex> lk(mu_);
  if (is_write) {
    ++sieve_wr_windows_;
    sieve_wr_wanted_ += wanted;
    sieve_wr_file_ += file_bytes;
  } else {
    ++sieve_rd_windows_;
    sieve_rd_wanted_ += wanted;
    sieve_rd_file_ += file_bytes;
    if (sieved) {
      const std::uint64_t block = span_start / kRereadBlock;
      if (seen_read_blocks_.count(block) > 0)
        ++sieve_rd_rereads_;
      else if (seen_read_blocks_.size() < kMaxSeenBlocks)
        seen_read_blocks_.insert(block);
    }
  }
}

void PatternRegistry::CoarsenCellsLocked() {
  // Double the cell width and re-bin. Accumulators are sums/maxes, so the
  // merged map equals what direct binning at the coarser width would have
  // produced — coarsening keeps the heatmap order-independent.
  while (cells_.size() > kMaxCells) {
    std::map<std::pair<int, std::uint64_t>, CellAcc> merged;
    for (const auto& [key, c] : cells_) {
      CellAcc& m = merged[{key.first, key.second / 2}];
      m.busy_ns += c.busy_ns;
      m.bytes += c.bytes;
      m.grants += c.grants;
      m.depth_max = std::max(m.depth_max, c.depth_max);
    }
    cells_ = std::move(merged);
    cell_ns_ *= 2;
  }
}

void PatternRegistry::RecordPfsGrant(int server, std::uint64_t offset,
                                     std::uint64_t bytes, double begin_ns,
                                     double done_ns, std::uint64_t depth,
                                     double wait_ns) {
  if (server < 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (static_cast<std::size_t>(server) >= servers_.size())
    servers_.resize(static_cast<std::size_t>(server) + 1);
  ServerPattern& sp = servers_[static_cast<std::size_t>(server)];
  ++sp.grants;
  sp.bytes += bytes;
  sp.busy_ns += std::max(0.0, done_ns - begin_ns);
  sp.queue_wait_ns += std::max(0.0, wait_ns);
  sp.offsets.Add(offset);

  // Heatmap: bytes/grants/depth land in the grant's begin cell; busy time is
  // split exactly across every cell the service interval overlaps.
  const std::uint64_t b0 =
      static_cast<std::uint64_t>(std::max(0.0, begin_ns) / cell_ns_);
  {
    CellAcc& c = cells_[{server, b0}];
    c.bytes += bytes;
    ++c.grants;
    c.depth_max = std::max(c.depth_max, depth);
  }
  double t = std::max(0.0, begin_ns);
  std::uint64_t b = b0;
  // A grant spanning more cells than the map may hold would trigger
  // coarsening anyway; the slice cap only bounds this loop.
  for (std::size_t guard = 0; t < done_ns && guard < 2 * kMaxCells; ++guard) {
    const double cell_end = static_cast<double>(b + 1) * cell_ns_;
    const double seg = std::min(done_ns, cell_end) - t;
    if (seg > 0) cells_[{server, b}].busy_ns += seg;
    t = cell_end;
    ++b;
  }
  CoarsenCellsLocked();
}

PatternSummary PatternRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  PatternSummary s;
  for (const auto& [name, acc] : vars_) s.vars.push_back(acc.pat);
  s.servers = servers_;
  s.cell_ns = cell_ns_;
  for (const auto& [key, c] : cells_) {
    HeatCell hc;
    hc.server = key.first;
    hc.t_bucket = key.second;
    hc.busy_ns = c.busy_ns;
    hc.bytes = c.bytes;
    hc.grants = c.grants;
    hc.depth_max = c.depth_max;
    s.cells.push_back(hc);
  }
  s.twophase_pre = twophase_pre_;
  s.twophase_post = twophase_post_;
  s.sieve_rd_windows = sieve_rd_windows_;
  s.sieve_wr_windows = sieve_wr_windows_;
  s.sieve_rd_wanted = sieve_rd_wanted_;
  s.sieve_rd_file = sieve_rd_file_;
  s.sieve_wr_wanted = sieve_wr_wanted_;
  s.sieve_wr_file = sieve_wr_file_;
  s.sieve_rd_rereads = sieve_rd_rereads_;
  for (std::size_t r = 0; r < agg_bytes_.size(); ++r)
    if (agg_bytes_[r] > 0)
      s.agg_bytes.emplace_back(static_cast<int>(r), agg_bytes_[r]);
  s.present = !s.vars.empty() || !s.servers.empty() || !s.agg_bytes.empty() ||
              s.twophase_pre.count > 0 || sieve_rd_windows_ > 0 ||
              sieve_wr_windows_ > 0;
  return s;
}

void PatternRegistry::Reset() {
  std::lock_guard<std::mutex> lk(mu_);
  vars_.clear();
  servers_.clear();
  cell_ns_ = kBaseCellNs;
  cells_.clear();
  twophase_pre_ = PatternHist{};
  twophase_post_ = PatternHist{};
  agg_bytes_.clear();
  sieve_rd_windows_ = sieve_wr_windows_ = 0;
  sieve_rd_wanted_ = sieve_rd_file_ = 0;
  sieve_wr_wanted_ = sieve_wr_file_ = 0;
  sieve_rd_rereads_ = 0;
  seen_read_blocks_.clear();
}

// --------------------------------------------------------- derived features

double PatternSummary::AggImbalance(int nranks) const {
  if (agg_bytes.empty() || nranks <= 0) return 0.0;
  std::uint64_t total = 0, mx = 0;
  for (const auto& [rank, b] : agg_bytes) {
    total += b;
    mx = std::max(mx, b);
  }
  if (total == 0) return 0.0;
  return static_cast<double>(mx) * nranks / static_cast<double>(total);
}

std::pair<double, int> PatternSummary::HottestServer() const {
  std::uint64_t total = 0, mx = 0;
  int idx = -1;
  for (std::size_t i = 0; i < servers.size(); ++i) {
    total += servers[i].bytes;
    if (servers[i].bytes > mx) {
      mx = servers[i].bytes;
      idx = static_cast<int>(i);
    }
  }
  if (total == 0) return {0.0, -1};
  return {static_cast<double>(mx) / static_cast<double>(total), idx};
}

double PatternSummary::SieveReadAmp() const {
  return sieve_rd_wanted > 0 ? static_cast<double>(sieve_rd_file) /
                                   static_cast<double>(sieve_rd_wanted)
                             : 1.0;
}

double PatternSummary::SieveWriteAmp() const {
  return sieve_wr_wanted > 0 ? static_cast<double>(sieve_wr_file) /
                                   static_cast<double>(sieve_wr_wanted)
                             : 1.0;
}

// ------------------------------------------------------------ serialization

namespace {

void AppendHist(std::string& out, const PatternHist& h) {
  AppendF(out,
          "{\"count\":%" PRIu64 ",\"sum\":%" PRIu64 ",\"min\":%" PRIu64
          ",\"max\":%" PRIu64 ",\"b\":[",
          h.count, h.sum, h.count ? h.min : 0, h.max);
  bool first = true;
  for (int i = 0; i < PatternHist::kBuckets; ++i) {
    if (h.bucket[i] == 0) continue;
    AppendF(out, "%s[%d,%" PRIu64 "]", first ? "" : ",", i, h.bucket[i]);
    first = false;
  }
  out += "]}";
}

}  // namespace

std::string PatternToJson(const PatternSummary& s) {
  std::string out;
  out.reserve(4096);
  AppendF(out, "{\"schema\":\"%s\",\"cell_ns\":%.17g,\"vars\":[",
          schemas::kPattern, s.cell_ns);
  for (std::size_t i = 0; i < s.vars.size(); ++i) {
    const VarPattern& v = s.vars[i];
    if (i) out.push_back(',');
    out += "{\"var\":";
    AppendJsonString(out, v.var);
    AppendF(out,
            ",\"calls\":%" PRIu64 ",\"writes\":%" PRIu64 ",\"reads\":%" PRIu64
            ",\"indep\":%" PRIu64 ",\"coll\":%" PRIu64 ",\"contig\":%" PRIu64
            ",\"strided\":%" PRIu64 ",\"random\":%" PRIu64
            ",\"bytes_written\":%" PRIu64 ",\"bytes_read\":%" PRIu64
            ",\"extent\":",
            v.calls, v.writes, v.reads, v.indep, v.coll, v.contig, v.strided,
            v.random, v.bytes_written, v.bytes_read);
    AppendHist(out, v.extent_bytes);
    out += ",\"stride\":";
    AppendHist(out, v.stride_bytes);
    out.push_back('}');
  }
  out += "],\"servers\":[";
  for (std::size_t i = 0; i < s.servers.size(); ++i) {
    const ServerPattern& sv = s.servers[i];
    if (i) out.push_back(',');
    AppendF(out,
            "{\"grants\":%" PRIu64 ",\"bytes\":%" PRIu64
            ",\"busy_ns\":%.17g,\"queue_wait_ns\":%.17g,\"offsets\":",
            sv.grants, sv.bytes, sv.busy_ns, sv.queue_wait_ns);
    AppendHist(out, sv.offsets);
    out.push_back('}');
  }
  out += "],\"cells\":[";
  for (std::size_t i = 0; i < s.cells.size(); ++i) {
    const HeatCell& c = s.cells[i];
    if (i) out.push_back(',');
    AppendF(out,
            "{\"s\":%d,\"t\":%" PRIu64 ",\"busy_ns\":%.17g,\"bytes\":%" PRIu64
            ",\"grants\":%" PRIu64 ",\"depth\":%" PRIu64 "}",
            c.server, c.t_bucket, c.busy_ns, c.bytes, c.grants, c.depth_max);
  }
  out += "],\"twophase\":{\"pre\":";
  AppendHist(out, s.twophase_pre);
  out += ",\"post\":";
  AppendHist(out, s.twophase_post);
  AppendF(out,
          "},\"sieve\":{\"rd_windows\":%" PRIu64 ",\"wr_windows\":%" PRIu64
          ",\"rd_wanted\":%" PRIu64 ",\"rd_file\":%" PRIu64
          ",\"wr_wanted\":%" PRIu64 ",\"wr_file\":%" PRIu64
          ",\"rd_rereads\":%" PRIu64 "},\"agg\":[",
          s.sieve_rd_windows, s.sieve_wr_windows, s.sieve_rd_wanted,
          s.sieve_rd_file, s.sieve_wr_wanted, s.sieve_wr_file,
          s.sieve_rd_rereads);
  for (std::size_t i = 0; i < s.agg_bytes.size(); ++i) {
    if (i) out.push_back(',');
    AppendF(out, "[%d,%" PRIu64 "]", s.agg_bytes[i].first,
            s.agg_bytes[i].second);
  }
  out += "]}";
  return out;
}

// ----------------------------------------------------------------- parsing

namespace {

using jsoncur::Cursor;

bool ParseU64(Cursor& cur, std::uint64_t* out) {
  double v = 0;
  if (!cur.ParseNumber(&v)) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool ParseHist(Cursor& cur, PatternHist* h) {
  if (!cur.Eat('{')) return false;
  if (cur.Eat('}')) return true;
  do {
    std::string key;
    if (!cur.ParseString(&key) || !cur.Eat(':')) return false;
    if (key == "count") {
      if (!ParseU64(cur, &h->count)) return false;
    } else if (key == "sum") {
      if (!ParseU64(cur, &h->sum)) return false;
    } else if (key == "min") {
      if (!ParseU64(cur, &h->min)) return false;
    } else if (key == "max") {
      if (!ParseU64(cur, &h->max)) return false;
    } else if (key == "b") {
      if (!cur.Eat('[')) return false;
      if (!cur.Eat(']')) {
        do {
          double idx = 0;
          std::uint64_t n = 0;
          if (!cur.Eat('[') || !cur.ParseNumber(&idx) || !cur.Eat(',') ||
              !ParseU64(cur, &n) || !cur.Eat(']'))
            return false;
          const int i = static_cast<int>(idx);
          if (i >= 0 && i < PatternHist::kBuckets) h->bucket[i] = n;
        } while (cur.Eat(','));
        if (!cur.Eat(']')) return false;
      }
    } else {
      if (!cur.SkipValue()) return false;
    }
  } while (cur.Eat(','));
  return cur.Eat('}');
}

bool ParseVar(Cursor& cur, VarPattern* v) {
  if (!cur.Eat('{')) return false;
  if (cur.Eat('}')) return true;
  do {
    std::string key;
    if (!cur.ParseString(&key) || !cur.Eat(':')) return false;
    bool ok = true;
    if (key == "var") ok = cur.ParseString(&v->var);
    else if (key == "calls") ok = ParseU64(cur, &v->calls);
    else if (key == "writes") ok = ParseU64(cur, &v->writes);
    else if (key == "reads") ok = ParseU64(cur, &v->reads);
    else if (key == "indep") ok = ParseU64(cur, &v->indep);
    else if (key == "coll") ok = ParseU64(cur, &v->coll);
    else if (key == "contig") ok = ParseU64(cur, &v->contig);
    else if (key == "strided") ok = ParseU64(cur, &v->strided);
    else if (key == "random") ok = ParseU64(cur, &v->random);
    else if (key == "bytes_written") ok = ParseU64(cur, &v->bytes_written);
    else if (key == "bytes_read") ok = ParseU64(cur, &v->bytes_read);
    else if (key == "extent") ok = ParseHist(cur, &v->extent_bytes);
    else if (key == "stride") ok = ParseHist(cur, &v->stride_bytes);
    else ok = cur.SkipValue();
    if (!ok) return false;
  } while (cur.Eat(','));
  return cur.Eat('}');
}

bool ParseServer(Cursor& cur, ServerPattern* sv) {
  if (!cur.Eat('{')) return false;
  if (cur.Eat('}')) return true;
  do {
    std::string key;
    if (!cur.ParseString(&key) || !cur.Eat(':')) return false;
    bool ok = true;
    if (key == "grants") ok = ParseU64(cur, &sv->grants);
    else if (key == "bytes") ok = ParseU64(cur, &sv->bytes);
    else if (key == "busy_ns") ok = cur.ParseNumber(&sv->busy_ns);
    else if (key == "queue_wait_ns") ok = cur.ParseNumber(&sv->queue_wait_ns);
    else if (key == "offsets") ok = ParseHist(cur, &sv->offsets);
    else ok = cur.SkipValue();
    if (!ok) return false;
  } while (cur.Eat(','));
  return cur.Eat('}');
}

bool ParseCell(Cursor& cur, HeatCell* c) {
  if (!cur.Eat('{')) return false;
  if (cur.Eat('}')) return true;
  do {
    std::string key;
    if (!cur.ParseString(&key) || !cur.Eat(':')) return false;
    bool ok = true;
    double v = 0;
    if (key == "s") {
      ok = cur.ParseNumber(&v);
      c->server = static_cast<int>(v);
    } else if (key == "t") ok = ParseU64(cur, &c->t_bucket);
    else if (key == "busy_ns") ok = cur.ParseNumber(&c->busy_ns);
    else if (key == "bytes") ok = ParseU64(cur, &c->bytes);
    else if (key == "grants") ok = ParseU64(cur, &c->grants);
    else if (key == "depth") ok = ParseU64(cur, &c->depth_max);
    else ok = cur.SkipValue();
    if (!ok) return false;
  } while (cur.Eat(','));
  return cur.Eat('}');
}

}  // namespace

bool ParsePatternValue(jsoncur::Cursor& cur, PatternSummary* out) {
  *out = PatternSummary{};
  if (!cur.Eat('{')) return false;
  if (cur.Eat('}')) return true;
  do {
    std::string key;
    if (!cur.ParseString(&key) || !cur.Eat(':')) return false;
    bool ok = true;
    if (key == "schema") {
      std::string s;
      ok = cur.ParseString(&s) && s == schemas::kPattern;
    } else if (key == "cell_ns") {
      ok = cur.ParseNumber(&out->cell_ns);
    } else if (key == "vars") {
      if (!cur.Eat('[')) return false;
      if (!cur.Eat(']')) {
        do {
          VarPattern v;
          if (!ParseVar(cur, &v)) return false;
          out->vars.push_back(std::move(v));
        } while (cur.Eat(','));
        if (!cur.Eat(']')) return false;
      }
    } else if (key == "servers") {
      if (!cur.Eat('[')) return false;
      if (!cur.Eat(']')) {
        do {
          ServerPattern sv;
          if (!ParseServer(cur, &sv)) return false;
          out->servers.push_back(std::move(sv));
        } while (cur.Eat(','));
        if (!cur.Eat(']')) return false;
      }
    } else if (key == "cells") {
      if (!cur.Eat('[')) return false;
      if (!cur.Eat(']')) {
        do {
          HeatCell c;
          if (!ParseCell(cur, &c)) return false;
          out->cells.push_back(c);
        } while (cur.Eat(','));
        if (!cur.Eat(']')) return false;
      }
    } else if (key == "twophase") {
      if (!cur.Eat('{')) return false;
      if (!cur.Eat('}')) {
        do {
          std::string k2;
          if (!cur.ParseString(&k2) || !cur.Eat(':')) return false;
          if (k2 == "pre") ok = ParseHist(cur, &out->twophase_pre);
          else if (k2 == "post") ok = ParseHist(cur, &out->twophase_post);
          else ok = cur.SkipValue();
          if (!ok) return false;
        } while (cur.Eat(','));
        if (!cur.Eat('}')) return false;
      }
    } else if (key == "sieve") {
      if (!cur.Eat('{')) return false;
      if (!cur.Eat('}')) {
        do {
          std::string k2;
          if (!cur.ParseString(&k2) || !cur.Eat(':')) return false;
          std::uint64_t v = 0;
          if (!ParseU64(cur, &v)) return false;
          if (k2 == "rd_windows") out->sieve_rd_windows = v;
          else if (k2 == "wr_windows") out->sieve_wr_windows = v;
          else if (k2 == "rd_wanted") out->sieve_rd_wanted = v;
          else if (k2 == "rd_file") out->sieve_rd_file = v;
          else if (k2 == "wr_wanted") out->sieve_wr_wanted = v;
          else if (k2 == "wr_file") out->sieve_wr_file = v;
          else if (k2 == "rd_rereads") out->sieve_rd_rereads = v;
        } while (cur.Eat(','));
        if (!cur.Eat('}')) return false;
      }
    } else if (key == "agg") {
      if (!cur.Eat('[')) return false;
      if (!cur.Eat(']')) {
        do {
          double rank = 0;
          std::uint64_t b = 0;
          if (!cur.Eat('[') || !cur.ParseNumber(&rank) || !cur.Eat(',') ||
              !ParseU64(cur, &b) || !cur.Eat(']'))
            return false;
          out->agg_bytes.emplace_back(static_cast<int>(rank), b);
        } while (cur.Eat(','));
        if (!cur.Eat(']')) return false;
      }
    } else {
      ok = cur.SkipValue();
    }
    if (!ok) return false;
  } while (cur.Eat(','));
  if (!cur.Eat('}')) return false;
  out->present =
      !out->vars.empty() || !out->servers.empty() || !out->agg_bytes.empty() ||
      out->twophase_pre.count > 0 || out->sieve_rd_windows > 0 ||
      out->sieve_wr_windows > 0;
  return true;
}

// ------------------------------------------------------------ ASCII heatmap

std::string RenderHeatmap(const PatternSummary& s, int max_cols) {
  std::string out;
  if (!s.present || s.cells.empty() || s.servers.empty()) {
    out = "heatmap: no pattern data recorded (PNC_IOSTAT_PATTERN off, or the "
          "run did no pfs I/O)\n";
    return out;
  }
  max_cols = std::max(8, max_cols);
  std::uint64_t max_bucket = 0;
  for (const HeatCell& c : s.cells) max_bucket = std::max(max_bucket, c.t_bucket);
  const std::uint64_t group =
      (max_bucket + static_cast<std::uint64_t>(max_cols)) /
      static_cast<std::uint64_t>(max_cols);
  const std::uint64_t ncols = max_bucket / std::max<std::uint64_t>(group, 1) + 1;
  const double col_ns = s.cell_ns * static_cast<double>(std::max<std::uint64_t>(group, 1));

  const int nservers = static_cast<int>(s.servers.size());
  std::vector<std::vector<double>> busy(
      static_cast<std::size_t>(nservers),
      std::vector<double>(static_cast<std::size_t>(ncols), 0.0));
  for (const HeatCell& c : s.cells) {
    if (c.server < 0 || c.server >= nservers) continue;
    const std::uint64_t col = c.t_bucket / std::max<std::uint64_t>(group, 1);
    if (col < ncols)
      busy[static_cast<std::size_t>(c.server)][static_cast<std::size_t>(col)] +=
          c.busy_ns;
  }

  std::uint64_t total_bytes = 0;
  for (const ServerPattern& sv : s.servers) total_bytes += sv.bytes;

  AppendF(out,
          "pfs server x virtual-time heatmap (%d servers, %" PRIu64
          " cols, col = %.3f ms, glyph = busy fraction)\n",
          nservers, ncols, col_ns / 1e6);
  static const char kGlyphs[] = " .:-=+*#%@";
  for (int sv = 0; sv < nservers; ++sv) {
    AppendF(out, "  s%02d |", sv);
    for (std::uint64_t col = 0; col < ncols; ++col) {
      const double util =
          std::min(1.0, busy[static_cast<std::size_t>(sv)]
                            [static_cast<std::size_t>(col)] / col_ns);
      const int g = std::min(9, static_cast<int>(util * 10.0));
      out.push_back(kGlyphs[g]);
    }
    const double share =
        total_bytes > 0
            ? 100.0 *
                  static_cast<double>(
                      s.servers[static_cast<std::size_t>(sv)].bytes) /
                  static_cast<double>(total_bytes)
            : 0.0;
    AppendF(out, "| %5.1f%% of bytes\n", share);
  }
  const auto [share, hottest] = s.HottestServer();
  if (hottest >= 0)
    AppendF(out, "  hottest: server %d carries %.0f%% of pfs bytes\n", hottest,
            100.0 * share);
  return out;
}

}  // namespace iostat
