#include "simmpi/datatype.hpp"

#include <algorithm>
#include <cstring>

namespace simmpi {

std::string_view PrimName(Prim p) {
  switch (p) {
    case Prim::kByte: return "byte";
    case Prim::kChar: return "char";
    case Prim::kSChar: return "schar";
    case Prim::kShort: return "short";
    case Prim::kInt: return "int";
    case Prim::kLongLong: return "longlong";
    case Prim::kFloat: return "float";
    case Prim::kDouble: return "double";
  }
  return "?";
}

struct Datatype::Node {
  Prim prim = Prim::kByte;
  std::uint64_t size = 0;    ///< data bytes
  std::uint64_t extent = 0;  ///< span bytes
  std::vector<pnc::Extent> runs;
};

namespace {

/// Append `nelems` consecutive instances of `base` starting at byte offset
/// `byte_off` to `runs`. When the base is one contiguous run the whole block
/// collapses to a single extent.
void AppendBaseBlock(std::vector<pnc::Extent>& runs, std::uint64_t byte_off,
                     std::uint64_t nelems, std::uint64_t base_size,
                     std::uint64_t base_extent,
                     const std::vector<pnc::Extent>& base_runs) {
  if (nelems == 0) return;
  const bool contig = base_runs.size() == 1 && base_runs[0].offset == 0 &&
                      base_runs[0].len == base_extent;
  if (contig) {
    runs.push_back({byte_off, nelems * base_size});
    return;
  }
  for (std::uint64_t i = 0; i < nelems; ++i) {
    for (const auto& r : base_runs) {
      runs.push_back({byte_off + i * base_extent + r.offset, r.len});
    }
  }
}

std::shared_ptr<const Datatype::Node> MakeNode(Prim prim, std::uint64_t size,
                                               std::uint64_t extent,
                                               std::vector<pnc::Extent> runs) {
  // Merge runs that are adjacent in definition order. Definition order is
  // preserved (not sorted): MPI pack/unpack order follows the type map as
  // defined, which matters for mapped (varm/imap) memory layouts.
  pnc::CoalesceExtents(runs);
  auto n = std::make_shared<Datatype::Node>();
  n->prim = prim;
  n->size = size;
  n->extent = extent;
  n->runs = std::move(runs);
  return n;
}

}  // namespace

Datatype::Datatype() : Datatype(Primitive(Prim::kByte)) {}

Datatype Datatype::Primitive(Prim p) {
  const std::uint64_t sz = PrimSize(p);
  return Datatype(MakeNode(p, sz, sz, {{0, sz}}));
}

Datatype Datatype::Contiguous(std::uint64_t count, const Datatype& base) {
  const auto& b = *base.node_;
  std::vector<pnc::Extent> runs;
  AppendBaseBlock(runs, 0, count, b.size, b.extent, b.runs);
  return Datatype(MakeNode(b.prim, count * b.size, count * b.extent,
                           std::move(runs)));
}

Datatype Datatype::Vector(std::uint64_t count, std::uint64_t blocklen,
                          std::uint64_t stride, const Datatype& base) {
  return Hvector(count, blocklen, stride * base.node_->extent, base);
}

Datatype Datatype::Hvector(std::uint64_t count, std::uint64_t blocklen,
                           std::uint64_t stride_bytes, const Datatype& base) {
  const auto& b = *base.node_;
  std::vector<pnc::Extent> runs;
  runs.reserve(count);
  std::uint64_t extent = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t off = i * stride_bytes;
    AppendBaseBlock(runs, off, blocklen, b.size, b.extent, b.runs);
    extent = std::max(extent, off + blocklen * b.extent);
  }
  return Datatype(
      MakeNode(b.prim, count * blocklen * b.size, extent, std::move(runs)));
}

Datatype Datatype::Indexed(std::span<const std::uint64_t> blocklens,
                           std::span<const std::uint64_t> displs,
                           const Datatype& base) {
  std::vector<std::uint64_t> displ_bytes(displs.size());
  for (std::size_t i = 0; i < displs.size(); ++i)
    displ_bytes[i] = displs[i] * base.node_->extent;
  return Hindexed(blocklens, displ_bytes, base);
}

Datatype Datatype::Hindexed(std::span<const std::uint64_t> blocklens_elems,
                            std::span<const std::uint64_t> displs_bytes,
                            const Datatype& base) {
  const auto& b = *base.node_;
  std::vector<pnc::Extent> runs;
  runs.reserve(blocklens_elems.size());
  std::uint64_t size = 0;
  std::uint64_t extent = 0;
  for (std::size_t i = 0; i < blocklens_elems.size(); ++i) {
    AppendBaseBlock(runs, displs_bytes[i], blocklens_elems[i], b.size, b.extent,
                    b.runs);
    size += blocklens_elems[i] * b.size;
    extent = std::max(extent, displs_bytes[i] + blocklens_elems[i] * b.extent);
  }
  return Datatype(MakeNode(b.prim, size, extent, std::move(runs)));
}

pnc::Result<Datatype> Datatype::Subarray(
    std::span<const std::uint64_t> sizes,
    std::span<const std::uint64_t> subsizes,
    std::span<const std::uint64_t> starts, const Datatype& base) {
  const std::size_t ndims = sizes.size();
  if (subsizes.size() != ndims || starts.size() != ndims || ndims == 0)
    return pnc::Status(pnc::Err::kInvalidArg, "subarray rank mismatch");
  for (std::size_t d = 0; d < ndims; ++d) {
    if (starts[d] + subsizes[d] > sizes[d])
      return pnc::Status(pnc::Err::kInvalidArg, "subarray exceeds bounds");
  }
  const auto& b = *base.node_;

  // Row-major strides of the full array, in elements of `base`.
  std::vector<std::uint64_t> stride(ndims, 1);
  for (std::size_t d = ndims - 1; d > 0; --d)
    stride[d - 1] = stride[d] * sizes[d];

  std::vector<pnc::Extent> runs;
  std::uint64_t nrows = 1;
  for (std::size_t d = 0; d + 1 < ndims; ++d) nrows *= subsizes[d];
  runs.reserve(nrows);

  // Odometer over the outer (all but last) dimensions; the innermost
  // dimension contributes one contiguous row of subsizes[ndims-1] elements.
  std::vector<std::uint64_t> idx(ndims, 0);
  const std::uint64_t row_elems = subsizes[ndims - 1];
  if (row_elems > 0) {
    for (std::uint64_t r = 0; r < nrows; ++r) {
      std::uint64_t elem_off = starts[ndims - 1];
      for (std::size_t d = 0; d + 1 < ndims; ++d)
        elem_off += (starts[d] + idx[d]) * stride[d];
      AppendBaseBlock(runs, elem_off * b.extent, row_elems, b.size, b.extent,
                      b.runs);
      // Advance odometer.
      for (std::size_t d = ndims - 1; d-- > 0;) {
        if (++idx[d] < subsizes[d]) break;
        idx[d] = 0;
      }
    }
  }

  std::uint64_t total = pnc::ShapeProduct(sizes);
  std::uint64_t sub_total = pnc::ShapeProduct(subsizes);
  return Datatype(MakeNode(b.prim, sub_total * b.size, total * b.extent,
                           std::move(runs)));
}

std::uint64_t Datatype::size() const { return node_->size; }
std::uint64_t Datatype::extent() const { return node_->extent; }
Prim Datatype::prim() const { return node_->prim; }

std::uint64_t Datatype::count_elems() const {
  return node_->size / PrimSize(node_->prim);
}

bool Datatype::is_contiguous() const {
  return node_->runs.size() == 1 && node_->runs[0].offset == 0 &&
         node_->runs[0].len == node_->size;
}

const std::vector<pnc::Extent>& Datatype::Flatten() const {
  return node_->runs;
}

void Datatype::Pack(const std::byte* base, std::uint64_t count,
                    std::byte* out) const {
  std::uint64_t w = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t inst = i * node_->extent;
    for (const auto& r : node_->runs) {
      std::memcpy(out + w, base + inst + r.offset, r.len);
      w += r.len;
    }
  }
}

void Datatype::Unpack(const std::byte* in, std::uint64_t count,
                      std::byte* base) const {
  std::uint64_t rpos = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t inst = i * node_->extent;
    for (const auto& r : node_->runs) {
      std::memcpy(base + inst + r.offset, in + rpos, r.len);
      rpos += r.len;
    }
  }
}

Datatype ByteType() { return Datatype::Primitive(Prim::kByte); }
Datatype CharType() { return Datatype::Primitive(Prim::kChar); }
Datatype ScharType() { return Datatype::Primitive(Prim::kSChar); }
Datatype ShortType() { return Datatype::Primitive(Prim::kShort); }
Datatype IntType() { return Datatype::Primitive(Prim::kInt); }
Datatype LongLongType() { return Datatype::Primitive(Prim::kLongLong); }
Datatype FloatType() { return Datatype::Primitive(Prim::kFloat); }
Datatype DoubleType() { return Datatype::Primitive(Prim::kDouble); }

}  // namespace simmpi
