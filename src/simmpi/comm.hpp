// Thread-backed MPI communicator subset.
//
// Ranks are std::threads inside one process (see runtime.hpp). The message-
// passing semantics follow MPI: buffered point-to-point sends with
// (source, tag, context) matching, and collectives implemented over
// point-to-point with the classic binomial-tree / dissemination algorithms so
// that virtual-time costs accumulate the way a real MPI library's would.
//
// Every rank carries a VirtualClock; message delivery advances the receiver
// to the message arrival time, which is how blocking collectives synchronize
// virtual clocks exactly where real ranks would block.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "simmpi/clock.hpp"
#include "simmpi/rankfault.hpp"
#include "util/bytes.hpp"

namespace simmpi {

constexpr int kAnySource = -1;
constexpr int kAnyTag = -1;

class Comm;

namespace detail {

struct Message {
  int world_src = 0;
  int ctx = 0;
  int tag = 0;
  double arrive_time = 0.0;  ///< virtual time at which the payload is available
  std::vector<std::byte> data;
};

struct Mailbox {
  std::mutex m;
  std::condition_variable cv;
  std::deque<Message> q;
};

/// What a rank is blocked on, for the hang watchdog's dump.
struct WaitRecord {
  bool waiting = false;
  int src = 0, tag = 0, ctx = 0;  ///< envelope being waited for
  std::uint64_t recvs = 0;        ///< receives completed so far
};

/// One fault-tolerant agreement monitor, keyed by communicator context.
/// Point-to-point agreement trees diverge when a participant dies mid-round
/// (some peers already consumed its contribution, others fold in a failure),
/// so agreement runs through shared memory instead: a round completes when
/// every live member has arrived, and its outcome — fold, survivor set,
/// fresh context — is computed once, in one critical section, and handed to
/// every waiter identically. Virtual cost is charged as if a dissemination
/// allreduce had run. Guarded by RankFaultState::mu.
struct AgreeSlot {
  std::condition_variable cv;
  std::vector<int> members;           ///< world ranks (fixed per ctx)
  std::vector<std::uint8_t> arrived;  ///< per comm rank, this round
  std::vector<double> times;          ///< arrival clocks, this round
  std::int64_t fold = 0;              ///< running min of arrived values
  int round = 0;
  bool done = false;  ///< round finalized, waiters may collect
  int collected = 0;  ///< waiters that consumed the outcome
  // Finalized outcome (valid while done):
  std::int64_t result = 0;
  bool any_dead = false;
  std::vector<int> alive;  ///< comm-relative ranks
  double result_time = 0.0;
  int live_ctx = 0;
};

/// Rank-fault injection state (see rankfault.hpp). Armed once, before the
/// rank threads start; `dead` flags are the only fields peers read hot.
struct RankFaultState {
  bool armed = false;
  RankFaultPolicy policy;
  std::unique_ptr<std::atomic<bool>[]> dead;  ///< indexed by world rank
  std::vector<std::uint64_t> ops;    ///< per-rank op counter (owner thread)
  std::vector<std::uint64_t> sends;  ///< per-rank send counter (owner thread)
  std::mutex mu;  ///< guards counters and agree slots
  RankFaultCounters counters;
  std::map<int, AgreeSlot> slots;  ///< agreement monitors, keyed by ctx
};

/// State shared by all ranks of a Runtime instance.
struct SharedState {
  explicit SharedState(int world_size, CostModel cm);

  CostModel cost;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;  ///< indexed by world rank
  std::vector<VirtualClock> clocks;                 ///< indexed by world rank
  std::mutex ctx_mutex;
  int next_ctx = 1;  ///< context 0 is the world communicator

  // Hang watchdog: resolved timeout (CostModel value, PNC_HANG_TIMEOUT_MS
  // env override) and the per-rank wait trace it dumps before aborting.
  double hang_timeout_ms = 0.0;
  std::mutex trace_mutex;
  std::vector<WaitRecord> waits;  ///< indexed by world rank

  /// Print every rank's wait state and the mailbox depths, then abort.
  /// Called by the rank whose Recv timed out.
  [[noreturn]] void DumpHangAndAbort(int world_rank);

  // --- rank-fault injection (inactive until armed) ---
  RankFaultState rfault;

  /// Install a rank-fault schedule. Must be called before the rank threads
  /// start (the runtime does this); arming mid-run is not supported.
  void ArmRankFaults(const RankFaultPolicy& policy);

  /// True when `world_rank` has crashed.
  [[nodiscard]] bool RankDeadWorld(int world_rank) const {
    return rfault.armed &&
           rfault.dead[world_rank].load(std::memory_order_acquire);
  }

  /// Flag `world_rank` dead, wake every blocked receiver, and re-evaluate
  /// every pending agreement round (a round whose only missing participants
  /// just died is now complete). Called by the dying rank itself.
  void MarkRankDead(int world_rank);

  /// Finalize `slot`'s current round if every live member has arrived.
  /// Caller holds rfault.mu.
  void MaybeFinalizeAgreeLocked(AgreeSlot& slot);
};

Comm MakeComm(std::shared_ptr<SharedState> state, std::vector<int> members,
              int rank);

}  // namespace detail

/// Reduction combiner: fold `incoming` into `accum` (equal-length buffers).
using ReduceFn =
    std::function<void(pnc::ByteSpan accum, pnc::ConstByteSpan incoming)>;

/// An MPI_Comm-alike. Copyable; copies alias the same communication context
/// (as MPI handles do). Collective calls must be made by every member.
class Comm {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return static_cast<int>(members_.size()); }

  [[nodiscard]] VirtualClock& clock() { return state_->clocks[world_rank_]; }
  [[nodiscard]] const CostModel& cost() const { return state_->cost; }

  // --- point to point ---
  void Send(int dst, int tag, pnc::ConstByteSpan data);
  /// Blocking receive; returns payload. `actual_src`/`actual_tag` report the
  /// matched envelope when wildcards were used.
  std::vector<std::byte> Recv(int src, int tag, int* actual_src = nullptr,
                              int* actual_tag = nullptr);

  // --- collectives ---
  void Barrier();
  /// Byte-buffer broadcast; non-root buffers are resized to fit.
  void Bcast(std::vector<std::byte>& buf, int root);
  /// In-place fixed-size broadcast.
  void Bcast(pnc::ByteSpan buf, int root);

  /// Gather variable-size blobs; result valid (size()==P) only at root.
  std::vector<std::vector<std::byte>> Gather(pnc::ConstByteSpan mine, int root);
  /// Allgather of variable-size blobs (valid everywhere).
  std::vector<std::vector<std::byte>> Allgather(pnc::ConstByteSpan mine);
  /// Scatter variable-size blobs from root; returns this rank's piece.
  std::vector<std::byte> Scatter(std::vector<std::vector<std::byte>> pieces,
                                 int root);
  /// Personalized all-to-all of variable-size blobs. send[i] goes to rank i;
  /// result[j] is what rank j sent to this rank.
  std::vector<std::vector<std::byte>> Alltoall(
      std::vector<std::vector<std::byte>> send);

  /// Binomial-tree reduction of a byte buffer; result valid at root.
  void Reduce(pnc::ByteSpan inout, const ReduceFn& fn, int root);
  void Allreduce(pnc::ByteSpan inout, const ReduceFn& fn);

  // --- typed conveniences ---
  template <typename T>
  void BcastValue(T& v, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    Bcast(pnc::ByteSpan(reinterpret_cast<std::byte*>(&v), sizeof(T)), root);
  }

  template <typename T>
  T AllreduceMax(T v) {
    return AllreduceWith(v, [](T a, T b) { return a > b ? a : b; });
  }
  template <typename T>
  T AllreduceMin(T v) {
    return AllreduceWith(v, [](T a, T b) { return a < b ? a : b; });
  }
  template <typename T>
  T AllreduceSum(T v) {
    return AllreduceWith(v, [](T a, T b) { return a + b; });
  }
  bool AllreduceAnd(bool v) {
    return AllreduceWith<std::uint8_t>(v ? 1 : 0, [](std::uint8_t a,
                                                     std::uint8_t b) {
             return static_cast<std::uint8_t>(a & b);
           }) != 0;
  }

  /// True on every rank iff all ranks passed bitwise-identical bytes.
  /// Used by PnetCDF's collective define-mode consistency checks.
  bool AllAgree(pnc::ConstByteSpan bytes);

  // --- rank-fault tolerance (see rankfault.hpp) ---
  // These are meaningful only while a RankFaultPolicy is armed; with no
  // policy armed FaultsArmed() is false and the *FT calls must not be used.

  /// True when a rank-fault schedule is armed for this world.
  [[nodiscard]] bool FaultsArmed() const { return state_->rfault.armed; }
  /// True when communicator rank `rank` has crashed.
  [[nodiscard]] bool RankDead(int rank) const {
    return state_->RankDeadWorld(members_[rank]);
  }
  /// True when this rank has crashed (Comm ops are inert no-ops).
  [[nodiscard]] bool SelfDead() const {
    return state_->RankDeadWorld(world_rank_);
  }

  /// Fault-tolerant receive: blocks until a matching message arrives or
  /// `src` is known dead with nothing matching queued. Messages sent before
  /// the sender died are still delivered. Returns false on a dead source.
  bool RecvFT(int src, int tag, std::vector<std::byte>& out);

  /// Fault-tolerant agreement (models MPI_Comm_agree): every live member
  /// contributes `value`; the round completes when all live members have
  /// arrived (a member dying mid-round completes it too), and every
  /// survivor receives the identical outcome — min-fold of the live
  /// contributions, whether any member is dead, the survivor set, and (when
  /// some member died) a fresh context for LiveSubsetFT. Synchronizes
  /// survivor clocks to the latest arrival. Dead-self returns immediately
  /// with any_dead=true and an empty survivor set.
  AgreeOutcome AgreeFT(std::int64_t value);

  /// The communicator of `o.alive` (an AgreeOutcome with any_dead=true from
  /// this comm). Purely local: every survivor derives the identical member
  /// list and context from the agreed outcome, so no messages are needed.
  /// Caller must be in `o.alive`.
  [[nodiscard]] Comm LiveSubsetFT(const AgreeOutcome& o) const;

  // --- communicator management ---
  Comm Dup();
  Comm Split(int color, int key);

  /// Synchronize all member clocks to the maximum (used at collective I/O
  /// boundaries where the slowest rank gates completion).
  void SyncClocksToMax();

 private:
  friend Comm detail::MakeComm(std::shared_ptr<detail::SharedState>,
                               std::vector<int>, int);
  Comm(std::shared_ptr<detail::SharedState> state, int ctx,
       std::vector<int> members, int rank)
      : state_(std::move(state)),
        ctx_(ctx),
        members_(std::move(members)),
        rank_(rank),
        world_rank_(members_[rank_]) {}

  template <typename T, typename F>
  T AllreduceWith(T v, F op) {
    static_assert(std::is_trivially_copyable_v<T>);
    Allreduce(pnc::ByteSpan(reinterpret_cast<std::byte*>(&v), sizeof(T)),
              [&op](pnc::ByteSpan a, pnc::ConstByteSpan b) {
                T x, y;
                std::memcpy(&x, a.data(), sizeof(T));
                std::memcpy(&y, b.data(), sizeof(T));
                x = op(x, y);
                std::memcpy(a.data(), &x, sizeof(T));
              });
    return v;
  }

  void SendInternal(int dst, int tag, pnc::ConstByteSpan data);
  std::vector<std::byte> RecvInternal(int src, int tag);

  /// Shared blocking-receive machinery. In FT mode a dead source (with no
  /// matching message queued) returns false; otherwise it aborts with a
  /// diagnostic — a non-FT wait on a dead rank is a caller bug under an
  /// armed policy, and aborting beats a 30 s watchdog stall.
  bool RecvImpl(int src, int tag, int* actual_src, int* actual_tag, bool ft,
                std::vector<std::byte>& out);
  /// Injection point: counts this op and crashes (throws RankCrash, after
  /// marking this rank dead) when the armed schedule says so.
  void MaybeCrashSelf();
  [[noreturn]] void CrashSelf();

  std::shared_ptr<detail::SharedState> state_;
  int ctx_;
  std::vector<int> members_;  ///< members_[r] = world rank of communicator rank r
  int rank_;
  int world_rank_;
};

}  // namespace simmpi
