// Thread-backed MPI communicator subset.
//
// Ranks are std::threads inside one process (see runtime.hpp). The message-
// passing semantics follow MPI: buffered point-to-point sends with
// (source, tag, context) matching, and collectives implemented over
// point-to-point with the classic binomial-tree / dissemination algorithms so
// that virtual-time costs accumulate the way a real MPI library's would.
//
// Every rank carries a VirtualClock; message delivery advances the receiver
// to the message arrival time, which is how blocking collectives synchronize
// virtual clocks exactly where real ranks would block.
#pragma once

#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "simmpi/clock.hpp"
#include "util/bytes.hpp"

namespace simmpi {

constexpr int kAnySource = -1;
constexpr int kAnyTag = -1;

class Comm;

namespace detail {

struct Message {
  int world_src = 0;
  int ctx = 0;
  int tag = 0;
  double arrive_time = 0.0;  ///< virtual time at which the payload is available
  std::vector<std::byte> data;
};

struct Mailbox {
  std::mutex m;
  std::condition_variable cv;
  std::deque<Message> q;
};

/// What a rank is blocked on, for the hang watchdog's dump.
struct WaitRecord {
  bool waiting = false;
  int src = 0, tag = 0, ctx = 0;  ///< envelope being waited for
  std::uint64_t recvs = 0;        ///< receives completed so far
};

/// State shared by all ranks of a Runtime instance.
struct SharedState {
  explicit SharedState(int world_size, CostModel cm);

  CostModel cost;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;  ///< indexed by world rank
  std::vector<VirtualClock> clocks;                 ///< indexed by world rank
  std::mutex ctx_mutex;
  int next_ctx = 1;  ///< context 0 is the world communicator

  // Hang watchdog: resolved timeout (CostModel value, PNC_HANG_TIMEOUT_MS
  // env override) and the per-rank wait trace it dumps before aborting.
  double hang_timeout_ms = 0.0;
  std::mutex trace_mutex;
  std::vector<WaitRecord> waits;  ///< indexed by world rank

  /// Print every rank's wait state and the mailbox depths, then abort.
  /// Called by the rank whose Recv timed out.
  [[noreturn]] void DumpHangAndAbort(int world_rank);
};

Comm MakeComm(std::shared_ptr<SharedState> state, std::vector<int> members,
              int rank);

}  // namespace detail

/// Reduction combiner: fold `incoming` into `accum` (equal-length buffers).
using ReduceFn =
    std::function<void(pnc::ByteSpan accum, pnc::ConstByteSpan incoming)>;

/// An MPI_Comm-alike. Copyable; copies alias the same communication context
/// (as MPI handles do). Collective calls must be made by every member.
class Comm {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return static_cast<int>(members_.size()); }

  [[nodiscard]] VirtualClock& clock() { return state_->clocks[world_rank_]; }
  [[nodiscard]] const CostModel& cost() const { return state_->cost; }

  // --- point to point ---
  void Send(int dst, int tag, pnc::ConstByteSpan data);
  /// Blocking receive; returns payload. `actual_src`/`actual_tag` report the
  /// matched envelope when wildcards were used.
  std::vector<std::byte> Recv(int src, int tag, int* actual_src = nullptr,
                              int* actual_tag = nullptr);

  // --- collectives ---
  void Barrier();
  /// Byte-buffer broadcast; non-root buffers are resized to fit.
  void Bcast(std::vector<std::byte>& buf, int root);
  /// In-place fixed-size broadcast.
  void Bcast(pnc::ByteSpan buf, int root);

  /// Gather variable-size blobs; result valid (size()==P) only at root.
  std::vector<std::vector<std::byte>> Gather(pnc::ConstByteSpan mine, int root);
  /// Allgather of variable-size blobs (valid everywhere).
  std::vector<std::vector<std::byte>> Allgather(pnc::ConstByteSpan mine);
  /// Scatter variable-size blobs from root; returns this rank's piece.
  std::vector<std::byte> Scatter(std::vector<std::vector<std::byte>> pieces,
                                 int root);
  /// Personalized all-to-all of variable-size blobs. send[i] goes to rank i;
  /// result[j] is what rank j sent to this rank.
  std::vector<std::vector<std::byte>> Alltoall(
      std::vector<std::vector<std::byte>> send);

  /// Binomial-tree reduction of a byte buffer; result valid at root.
  void Reduce(pnc::ByteSpan inout, const ReduceFn& fn, int root);
  void Allreduce(pnc::ByteSpan inout, const ReduceFn& fn);

  // --- typed conveniences ---
  template <typename T>
  void BcastValue(T& v, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    Bcast(pnc::ByteSpan(reinterpret_cast<std::byte*>(&v), sizeof(T)), root);
  }

  template <typename T>
  T AllreduceMax(T v) {
    return AllreduceWith(v, [](T a, T b) { return a > b ? a : b; });
  }
  template <typename T>
  T AllreduceMin(T v) {
    return AllreduceWith(v, [](T a, T b) { return a < b ? a : b; });
  }
  template <typename T>
  T AllreduceSum(T v) {
    return AllreduceWith(v, [](T a, T b) { return a + b; });
  }
  bool AllreduceAnd(bool v) {
    return AllreduceWith<std::uint8_t>(v ? 1 : 0, [](std::uint8_t a,
                                                     std::uint8_t b) {
             return static_cast<std::uint8_t>(a & b);
           }) != 0;
  }

  /// True on every rank iff all ranks passed bitwise-identical bytes.
  /// Used by PnetCDF's collective define-mode consistency checks.
  bool AllAgree(pnc::ConstByteSpan bytes);

  // --- communicator management ---
  Comm Dup();
  Comm Split(int color, int key);

  /// Synchronize all member clocks to the maximum (used at collective I/O
  /// boundaries where the slowest rank gates completion).
  void SyncClocksToMax();

 private:
  friend Comm detail::MakeComm(std::shared_ptr<detail::SharedState>,
                               std::vector<int>, int);
  Comm(std::shared_ptr<detail::SharedState> state, int ctx,
       std::vector<int> members, int rank)
      : state_(std::move(state)),
        ctx_(ctx),
        members_(std::move(members)),
        rank_(rank),
        world_rank_(members_[rank_]) {}

  template <typename T, typename F>
  T AllreduceWith(T v, F op) {
    static_assert(std::is_trivially_copyable_v<T>);
    Allreduce(pnc::ByteSpan(reinterpret_cast<std::byte*>(&v), sizeof(T)),
              [&op](pnc::ByteSpan a, pnc::ConstByteSpan b) {
                T x, y;
                std::memcpy(&x, a.data(), sizeof(T));
                std::memcpy(&y, b.data(), sizeof(T));
                x = op(x, y);
                std::memcpy(a.data(), &x, sizeof(T));
              });
    return v;
  }

  void SendInternal(int dst, int tag, pnc::ConstByteSpan data);
  std::vector<std::byte> RecvInternal(int src, int tag);

  std::shared_ptr<detail::SharedState> state_;
  int ctx_;
  std::vector<int> members_;  ///< members_[r] = world rank of communicator rank r
  int rank_;
  int world_rank_;
};

}  // namespace simmpi
