// MPI derived datatypes (the subset PnetCDF needs).
//
// A Datatype is an immutable description of a typed memory or file layout:
// primitives plus the contiguous / vector / hvector / indexed / hindexed /
// struct-free subarray constructors. Types flatten to sorted (offset,len)
// byte runs; flattening is what both the flexible PnetCDF API (noncontiguous
// memory) and MPI-IO file views (noncontiguous file regions) consume.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/status.hpp"

namespace simmpi {

/// Primitive element kinds. These matter for reductions and for PnetCDF's
/// type conversion between memory and external (file) representations.
enum class Prim : std::uint8_t {
  kByte,    // opaque byte (MPI_BYTE)
  kChar,    // text
  kSChar,   // signed 8-bit
  kShort,   // int16
  kInt,     // int32
  kLongLong,// int64
  kFloat,
  kDouble,
};

[[nodiscard]] constexpr std::size_t PrimSize(Prim p) {
  switch (p) {
    case Prim::kByte:
    case Prim::kChar:
    case Prim::kSChar: return 1;
    case Prim::kShort: return 2;
    case Prim::kInt:
    case Prim::kFloat: return 4;
    case Prim::kLongLong:
    case Prim::kDouble: return 8;
  }
  return 0;
}

[[nodiscard]] std::string_view PrimName(Prim p);

/// Immutable datatype handle. Cheap to copy (shared immutable state).
class Datatype {
 public:
  Datatype();  ///< default-constructs MPI_BYTE

  // --- constructors mirroring the MPI type factory calls ---
  static Datatype Primitive(Prim p);
  static Datatype Contiguous(std::uint64_t count, const Datatype& base);
  /// stride measured in elements of `base` (MPI_Type_vector).
  static Datatype Vector(std::uint64_t count, std::uint64_t blocklen,
                         std::uint64_t stride, const Datatype& base);
  /// stride measured in bytes (MPI_Type_create_hvector).
  static Datatype Hvector(std::uint64_t count, std::uint64_t blocklen,
                          std::uint64_t stride_bytes, const Datatype& base);
  /// displacements in elements of `base` (MPI_Type_indexed).
  static Datatype Indexed(std::span<const std::uint64_t> blocklens,
                          std::span<const std::uint64_t> displs,
                          const Datatype& base);
  /// displacements in bytes (MPI_Type_create_hindexed).
  static Datatype Hindexed(std::span<const std::uint64_t> blocklens_elems,
                           std::span<const std::uint64_t> displs_bytes,
                           const Datatype& base);
  /// C-order subarray (MPI_Type_create_subarray with MPI_ORDER_C).
  static pnc::Result<Datatype> Subarray(std::span<const std::uint64_t> sizes,
                                        std::span<const std::uint64_t> subsizes,
                                        std::span<const std::uint64_t> starts,
                                        const Datatype& base);

  /// Number of data bytes the type describes (sum of run lengths).
  [[nodiscard]] std::uint64_t size() const;
  /// Span from the first to one past the last byte touched; replication of
  /// the type (count > 1) tiles at this granularity.
  [[nodiscard]] std::uint64_t extent() const;
  /// Number of primitive elements.
  [[nodiscard]] std::uint64_t count_elems() const;
  /// Leaf primitive kind (types in this subset are homogeneous).
  [[nodiscard]] Prim prim() const;
  /// True when the type is one contiguous run starting at offset 0.
  [[nodiscard]] bool is_contiguous() const;

  /// Flattened byte runs relative to the type origin, sorted by offset,
  /// adjacent runs coalesced. Computed once and cached.
  [[nodiscard]] const std::vector<pnc::Extent>& Flatten() const;

  /// Gather the bytes this type selects from `base` into `out` (out.size()
  /// must be >= count * size()). Replicates the type `count` times at
  /// extent() spacing, exactly like MPI packing a (buf, count, type) triple.
  void Pack(const std::byte* base, std::uint64_t count, std::byte* out) const;
  /// Inverse of Pack.
  void Unpack(const std::byte* in, std::uint64_t count, std::byte* base) const;

  friend bool operator==(const Datatype& a, const Datatype& b) {
    return a.node_ == b.node_;
  }

  /// Implementation node; public only so internal factories can build it.
  struct Node;

 private:
  explicit Datatype(std::shared_ptr<const Node> n) : node_(std::move(n)) {}
  std::shared_ptr<const Node> node_;
};

// Convenience named types mirroring the MPI predefined handles.
Datatype ByteType();
Datatype CharType();
Datatype ScharType();
Datatype ShortType();
Datatype IntType();
Datatype LongLongType();
Datatype FloatType();
Datatype DoubleType();

/// Map a C++ arithmetic type to the corresponding primitive Datatype.
template <typename T>
Datatype TypeOf() {
  if constexpr (std::is_same_v<T, char>) return CharType();
  else if constexpr (std::is_same_v<T, signed char>) return ScharType();
  else if constexpr (std::is_same_v<T, short>) return ShortType();
  else if constexpr (std::is_same_v<T, int>) return IntType();
  else if constexpr (std::is_same_v<T, long long>) return LongLongType();
  else if constexpr (std::is_same_v<T, float>) return FloatType();
  else if constexpr (std::is_same_v<T, double>) return DoubleType();
  else return ByteType();
}

}  // namespace simmpi
