// SPMD launcher: runs an MPI-style program body on N thread-backed ranks.
#pragma once

#include <functional>
#include <vector>

#include "simmpi/clock.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/rankfault.hpp"

namespace simmpi {

struct RunResult {
  /// Per-rank virtual completion times (ns).
  std::vector<double> rank_times_ns;
  /// max over ranks — the virtual makespan of the program.
  double max_time_ns = 0.0;
  /// World ranks that died to an armed RankFaultPolicy (ascending).
  std::vector<int> crashed_ranks;
  /// Injection counters (all zero when no policy was armed).
  RankFaultCounters fault_counters;
};

/// Launch `nprocs` ranks, each executing `body(world_comm)` on its own
/// thread, and join them. Exceptions thrown by any rank are re-thrown in the
/// caller after all ranks have been joined. Each call creates a fresh world
/// (fresh mailboxes and clocks); state does not leak between runs.
RunResult Run(int nprocs, const std::function<void(Comm&)>& body,
              const CostModel& cost = CostModel{});

/// As above, with a rank-fault schedule armed for the world. Scripted
/// RankCrash exits are absorbed (reported via RunResult::crashed_ranks, not
/// re-thrown); every other exception still re-throws after the join.
RunResult Run(int nprocs, const std::function<void(Comm&)>& body,
              const CostModel& cost, const RankFaultPolicy& faults);

}  // namespace simmpi
