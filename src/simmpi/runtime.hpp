// SPMD launcher: runs an MPI-style program body on N thread-backed ranks.
#pragma once

#include <functional>
#include <vector>

#include "simmpi/clock.hpp"
#include "simmpi/comm.hpp"

namespace simmpi {

struct RunResult {
  /// Per-rank virtual completion times (ns).
  std::vector<double> rank_times_ns;
  /// max over ranks — the virtual makespan of the program.
  double max_time_ns = 0.0;
};

/// Launch `nprocs` ranks, each executing `body(world_comm)` on its own
/// thread, and join them. Exceptions thrown by any rank are re-thrown in the
/// caller after all ranks have been joined. Each call creates a fresh world
/// (fresh mailboxes and clocks); state does not leak between runs.
RunResult Run(int nprocs, const std::function<void(Comm&)>& body,
              const CostModel& cost = CostModel{});

}  // namespace simmpi
