// Virtual time accounting.
//
// The reproduction environment has a single CPU core, so wall-clock time
// cannot exhibit 16-way parallel I/O overlap. Instead every rank carries a
// VirtualClock advanced by an explicit cost model (LogGP-style messaging
// costs, per-byte memory copy costs, and the PFS service model in src/pfs).
// Collectives synchronize clocks exactly where real MPI ranks would block,
// so "aggregate bandwidth" computed from virtual time behaves like the
// paper's measured rates: it saturates when the fixed pool of I/O servers
// saturates and it punishes many small noncontiguous requests.
#pragma once

#include <algorithm>
#include <cstdint>

namespace simmpi {

/// Tunable costs, in nanoseconds. Defaults are loosely calibrated to a
/// 2003-era SP-2-class machine (see bench/platforms.hpp for the presets used
/// by the paper-figure benchmarks).
struct CostModel {
  // Messaging (LogGP alpha/beta).
  double msg_latency_ns = 20'000.0;  ///< per message (~20 us MPI latency)
  double msg_ns_per_byte = 2.0;      ///< ~500 MB/s per-link bandwidth
  // Local work.
  double mem_copy_ns_per_byte = 0.35; ///< pack/unpack, sieving copies
  double sw_overhead_ns = 2'000.0;    ///< per library call bookkeeping
  // Hang watchdog (REAL time, not virtual): a blocking Recv that sees no
  // matching message for this long dumps every rank's wait state to stderr
  // and aborts, so a mismatched collective fails the suite instead of
  // deadlocking it. 0 disables. The PNC_HANG_TIMEOUT_MS environment
  // variable, when set, overrides this value.
  double hang_timeout_ms = 30'000.0;

  [[nodiscard]] double MessageCost(std::uint64_t bytes) const {
    return msg_latency_ns + msg_ns_per_byte * static_cast<double>(bytes);
  }
  [[nodiscard]] double CopyCost(std::uint64_t bytes) const {
    return mem_copy_ns_per_byte * static_cast<double>(bytes);
  }
};

/// Monotonic per-rank virtual clock (nanoseconds as double for headroom).
class VirtualClock {
 public:
  [[nodiscard]] double now() const { return now_ns_; }

  void Advance(double ns) { now_ns_ += std::max(0.0, ns); }
  void AdvanceTo(double t) { now_ns_ = std::max(now_ns_, t); }
  void Reset() { now_ns_ = 0.0; }

 private:
  double now_ns_ = 0.0;
};

}  // namespace simmpi
