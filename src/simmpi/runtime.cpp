#include "simmpi/runtime.hpp"

#include <exception>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "iostat/iostat.hpp"

namespace simmpi {

RunResult Run(int nprocs, const std::function<void(Comm&)>& body,
              const CostModel& cost) {
  return Run(nprocs, body, cost, RankFaultPolicy{});
}

RunResult Run(int nprocs, const std::function<void(Comm&)>& body,
              const CostModel& cost, const RankFaultPolicy& faults) {
  if (nprocs <= 0) throw std::invalid_argument("nprocs must be positive");

  auto state = std::make_shared<detail::SharedState>(nprocs, cost);
  if (faults.Any()) state->ArmRankFaults(faults);
  std::vector<int> members(nprocs);
  std::iota(members.begin(), members.end(), 0);

  std::vector<std::exception_ptr> errors(nprocs);
  std::vector<std::thread> threads;
  threads.reserve(nprocs);
  for (int r = 0; r < nprocs; ++r) {
    threads.emplace_back([&, r] {
      PNC_IOSTAT_BIND_RANK(r);
      Comm comm = detail::MakeComm(state, members, r);
      try {
        body(comm);
      } catch (const RankCrash&) {
        // Scripted death, already flagged in shared state; not an error.
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);

  RunResult result;
  result.rank_times_ns.reserve(nprocs);
  for (int r = 0; r < nprocs; ++r) {
    const double t = state->clocks[r].now();
    result.rank_times_ns.push_back(t);
    result.max_time_ns = std::max(result.max_time_ns, t);
    if (state->RankDeadWorld(r)) result.crashed_ranks.push_back(r);
  }
  if (state->rfault.armed) result.fault_counters = state->rfault.counters;
  return result;
}

}  // namespace simmpi
