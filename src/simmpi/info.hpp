// MPI_Info-alike: an ordered set of string key/value hints.
//
// PnetCDF forwards most hints straight down to the MPI-IO layer (paper §4.1);
// PnetCDF-level hints are interpreted by the library itself.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace simmpi {

class Info {
 public:
  Info() = default;

  void Set(std::string key, std::string value) {
    kv_[std::move(key)] = std::move(value);
  }

  [[nodiscard]] std::optional<std::string> Get(const std::string& key) const {
    auto it = kv_.find(key);
    if (it == kv_.end()) return std::nullopt;
    return it->second;
  }

  /// Parse an integer-valued hint, falling back to `def` when absent or
  /// malformed (MPI implementations ignore hints they cannot parse).
  [[nodiscard]] std::int64_t GetInt(const std::string& key,
                                    std::int64_t def) const {
    auto v = Get(key);
    if (!v) return def;
    try {
      return std::stoll(*v);
    } catch (...) {
      return def;
    }
  }

  /// Boolean hints use ROMIO's "enable"/"disable"/"automatic" convention.
  [[nodiscard]] bool GetFlag(const std::string& key, bool def) const {
    auto v = Get(key);
    if (!v) return def;
    if (*v == "enable" || *v == "true" || *v == "1") return true;
    if (*v == "disable" || *v == "false" || *v == "0") return false;
    return def;
  }

  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return kv_;
  }
  [[nodiscard]] bool empty() const { return kv_.empty(); }

 private:
  std::map<std::string, std::string> kv_;
};

/// The MPI_INFO_NULL equivalent.
inline const Info& NullInfo() {
  static const Info kNull;
  return kNull;
}

}  // namespace simmpi
