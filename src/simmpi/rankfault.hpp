// Deterministic rank-fault injection for the thread-backed MPI.
//
// pfs/fault.hpp scripts *storage* failures; this module scripts *process*
// failures — the other half of the failure model a parallel netCDF library
// must survive (an MPI job where one rank dies mid-collective must not hang
// the survivors, and must leave the file in a state ncverify accepts):
//
//   * rank crashes — a scripted rank throws RankCrash at a deterministic
//     point (its Nth communication op, or the first op at/after a virtual
//     time). The crash marks the rank dead in shared state and wakes every
//     blocked peer; fault-tolerant calls observe the death instead of
//     hanging. After the throw, every Comm op on the dead rank becomes an
//     inert no-op so destructors can unwind through collective calls.
//   * stragglers — a scripted rank's message costs are multiplied by a
//     delay factor, so it arrives late to every exchange. Purely virtual
//     time: nothing sleeps.
//   * message drops — a scripted (rank, send index) pair, or a seeded
//     per-send probability, makes a send vanish in transit. There is no
//     retransmission layer: an undropped-for hang is exactly what the
//     watchdog exists to catch, and chaos schedules pair a drop with the
//     sender's crash to model "died mid-send".
//
// All schedules are deterministic: scripted indices are exact (per-rank op
// and send counters are touched only by the owning thread), probabilistic
// drops derive from (seed, rank, send index) — never from a global RNG that
// thread interleaving could perturb. Armed vs. not armed is the master
// switch: with no policy armed, the fault paths in comm.cpp are never
// entered and behavior is bit-identical to a fault-free build.
#pragma once

#include <cstdint>
#include <vector>

namespace simmpi {

/// Declarative rank-fault schedule. Default-constructed = no faults.
struct RankFaultPolicy {
  static constexpr std::uint64_t kNever = ~0ULL;

  std::uint64_t seed = 0xC7A05FA17ULL;

  /// A scripted crash. The rank dies at its `at_op`-th communication op
  /// (Send/Recv/agreement entry, counted per rank from 0), or at the first
  /// op at/after `at_time_ns` on its virtual clock — whichever is armed and
  /// reached first.
  struct Crash {
    int rank = -1;
    std::uint64_t at_op = kNever;
    double at_time_ns = -1.0;  ///< < 0 = off
  };
  std::vector<Crash> crashes;

  /// A scripted straggler: every message this rank sends costs
  /// `send_delay_factor` times the modeled message cost.
  struct Straggle {
    int rank = -1;
    double send_delay_factor = 1.0;
  };
  std::vector<Straggle> stragglers;

  /// A scripted drop: this rank's `send_index`-th send (counted per rank
  /// from 0) vanishes in transit.
  struct Drop {
    int rank = -1;
    std::uint64_t send_index = kNever;
  };
  std::vector<Drop> drops;
  /// Seeded per-send drop probability (derived from seed, rank, and send
  /// index, so it is exact run-to-run regardless of thread interleaving).
  double drop_prob = 0.0;

  [[nodiscard]] bool Any() const {
    return !crashes.empty() || !stragglers.empty() || !drops.empty() ||
           drop_prob > 0;
  }
};

/// Counters for every injected rank-fault event (reported via RunResult).
struct RankFaultCounters {
  std::uint64_t crashes = 0;
  std::uint64_t straggled_sends = 0;
  std::uint64_t dropped_messages = 0;
  std::uint64_t agreements = 0;         ///< AgreeFT rounds finalized
  std::uint64_t agreements_failed = 0;  ///< rounds that observed a death
};

/// Thrown exactly once on the dying rank, at the injection point. The
/// runtime absorbs it (the crash is scripted, not an error); user code
/// should let it propagate.
struct RankCrash {
  int world_rank = 0;
};

/// The agreed outcome of one fault-tolerant agreement round (Comm::AgreeFT).
/// By construction every survivor receives a bitwise-identical outcome for
/// the same round — the fold and the survivor set are computed once, in one
/// critical section, when the last live participant arrives.
struct AgreeOutcome {
  std::int64_t min_value = 0;  ///< min over all live participants' values
  bool any_dead = false;       ///< some member of the comm is dead
  std::vector<int> alive;      ///< live comm-relative ranks, ascending
  int live_ctx = 0;  ///< fresh context for Comm::LiveSubsetFT (any_dead only)
};

}  // namespace simmpi
