#include "simmpi/comm.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "iostat/events.hpp"
#include "iostat/iostat.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace simmpi {

namespace detail {

SharedState::SharedState(int world_size, CostModel cm) : cost(cm) {
  mailboxes.reserve(world_size);
  for (int i = 0; i < world_size; ++i)
    mailboxes.push_back(std::make_unique<Mailbox>());
  clocks.resize(world_size);
  waits.resize(world_size);
  // Checked parse: "PNC_HANG_TIMEOUT_MS=3O000" must not silently disable
  // the watchdog the way atof's 0.0 fallback would.
  hang_timeout_ms =
      pnc::util::EnvDouble("PNC_HANG_TIMEOUT_MS", cm.hang_timeout_ms);
}

void SharedState::ArmRankFaults(const RankFaultPolicy& policy) {
  const auto n = mailboxes.size();
  rfault.policy = policy;
  rfault.dead = std::make_unique<std::atomic<bool>[]>(n);
  for (std::size_t i = 0; i < n; ++i) rfault.dead[i].store(false);
  rfault.ops.assign(n, 0);
  rfault.sends.assign(n, 0);
  rfault.armed = true;
}

void SharedState::MarkRankDead(int world_rank) {
  rfault.dead[world_rank].store(true, std::memory_order_release);
  {
    // A pending agreement round whose only missing participants just died
    // is now complete; finalize so its waiters wake with the death folded.
    std::lock_guard<std::mutex> lk(rfault.mu);
    for (auto& [ctx, slot] : rfault.slots) MaybeFinalizeAgreeLocked(slot);
  }
  // Wake every blocked receiver so dead-source predicates re-evaluate. The
  // empty critical section pairs with the predicate check under box.m: a
  // receiver is either before its check (it will see the flag) or parked in
  // wait (it gets this notify) — never between, losing both.
  for (auto& box : mailboxes) {
    { std::lock_guard<std::mutex> lk(box->m); }
    box->cv.notify_all();
  }
}

void SharedState::MaybeFinalizeAgreeLocked(AgreeSlot& slot) {
  if (slot.done || slot.members.empty()) return;
  int arrivals = 0;
  for (std::size_t i = 0; i < slot.members.size(); ++i) {
    if (slot.arrived[i]) {
      ++arrivals;
      continue;
    }
    if (!RankDeadWorld(slot.members[i])) return;  // still expected
  }
  if (arrivals == 0) return;  // idle slot poked by MarkRankDead
  slot.any_dead = false;
  slot.alive.clear();
  double tmax = 0.0;
  for (std::size_t i = 0; i < slot.members.size(); ++i) {
    if (RankDeadWorld(slot.members[i])) {
      slot.any_dead = true;
    } else {
      slot.alive.push_back(static_cast<int>(i));
      tmax = std::max(tmax, slot.times[i]);
    }
  }
  slot.result = slot.fold;
  // Charge what a dissemination allreduce over the survivors would cost.
  int rounds = 0;
  for (std::size_t n = 1; n < slot.alive.size(); n <<= 1) ++rounds;
  slot.result_time =
      tmax + rounds * cost.MessageCost(8) + cost.sw_overhead_ns;
  slot.live_ctx = 0;
  if (slot.any_dead) {
    // Survivors will re-form on a subset communicator; a fresh context
    // keeps any pre-death traffic still queued under the old one from
    // matching into the new group's collectives.
    std::lock_guard<std::mutex> clk(ctx_mutex);
    slot.live_ctx = next_ctx++;
  }
  ++rfault.counters.agreements;
  if (slot.any_dead) ++rfault.counters.agreements_failed;
  slot.collected = 0;
  slot.done = true;
  slot.cv.notify_all();
}

void SharedState::DumpHangAndAbort(int world_rank) {
  std::lock_guard<std::mutex> lk(trace_mutex);
  std::fprintf(stderr,
               "simmpi: hang watchdog: rank %d received no matching message "
               "for %.0f ms (PNC_HANG_TIMEOUT_MS); per-rank state:\n",
               world_rank, hang_timeout_ms);
  for (std::size_t r = 0; r < waits.size(); ++r) {
    const WaitRecord& w = waits[r];
    std::size_t pending = 0;
    {
      std::lock_guard<std::mutex> blk(mailboxes[r]->m);
      pending = mailboxes[r]->q.size();
    }
    if (w.waiting) {
      std::fprintf(stderr,
                   "  rank %zu: BLOCKED in Recv(src=%d, tag=%d, ctx=%d), "
                   "%llu receives done, %zu unmatched messages queued\n",
                   r, w.src, w.tag, w.ctx,
                   static_cast<unsigned long long>(w.recvs), pending);
    } else {
      std::fprintf(stderr,
                   "  rank %zu: not in Recv, %llu receives done, "
                   "%zu unmatched messages queued\n",
                   r, static_cast<unsigned long long>(w.recvs), pending);
    }
  }
  std::fflush(stderr);
  // Black box: dump every rank's flight-recorder tail (pnc-events-v1) so
  // the history leading into the hang survives the abort.
  PNC_IOSTAT_EVENT_DUMP("hang-watchdog");
  std::abort();
}

Comm MakeComm(std::shared_ptr<SharedState> state, std::vector<int> members,
              int rank) {
  return Comm(std::move(state), /*ctx=*/0, std::move(members), rank);
}

}  // namespace detail

namespace {
// Internal collective tags live in negative tag space so they can never
// collide with user point-to-point traffic (user tags must be >= 0).
constexpr int kTagBcast = -10;
constexpr int kTagReduce = -11;
constexpr int kTagGather = -12;
constexpr int kTagScatter = -13;
constexpr int kTagAlltoall = -14;
constexpr int kTagAgree = -15;
constexpr int kTagBarrierBase = -100;  ///< barrier phase k uses -100 - k
}  // namespace

void Comm::Send(int dst, int tag, pnc::ConstByteSpan data) {
  assert(tag >= 0 && "user tags must be non-negative");
  SendInternal(dst, tag, data);
}

void Comm::MaybeCrashSelf() {
  auto& rf = state_->rfault;
  const std::uint64_t op = rf.ops[world_rank_]++;
  const double now = clock().now();
  for (const auto& c : rf.policy.crashes) {
    if (c.rank != world_rank_) continue;
    const bool by_op = c.at_op != RankFaultPolicy::kNever && op >= c.at_op;
    const bool by_time = c.at_time_ns >= 0 && now >= c.at_time_ns;
    if (by_op || by_time) CrashSelf();
  }
}

void Comm::CrashSelf() {
  // Record while the request binding is still live: the crash event carries
  // the in-flight request ID, which is how ncstat --blackbox attributes a
  // dead rank's last act to the originating API call.
  PNC_IOSTAT_EVENT(kRankCrash, clock().now(), 0,
                   state_->rfault.ops[world_rank_], 0, nullptr);
  {
    std::lock_guard<std::mutex> lk(state_->rfault.mu);
    ++state_->rfault.counters.crashes;
  }
  state_->MarkRankDead(world_rank_);
  throw RankCrash{world_rank_};
}

void Comm::SendInternal(int dst, int tag, pnc::ConstByteSpan data) {
  assert(dst >= 0 && dst < size());
  double cost_factor = 1.0;
  if (state_->rfault.armed) {
    if (SelfDead()) return;  // inert: the rank is unwinding its crash
    MaybeCrashSelf();
    auto& rf = state_->rfault;
    for (const auto& s : rf.policy.stragglers)
      if (s.rank == world_rank_) cost_factor = s.send_delay_factor;
  }
  PNC_IOSTAT_ADD(kMpiMessages, 1);
  PNC_IOSTAT_ADD(kMpiMessageBytes, data.size());
  auto& clk = clock();
  clk.Advance(state_->cost.sw_overhead_ns);
  detail::Message msg;
  msg.world_src = rank_;  // communicator-rank of the sender within ctx_
  msg.ctx = ctx_;
  msg.tag = tag;
  msg.arrive_time =
      clk.now() + cost_factor * state_->cost.MessageCost(data.size());
  msg.data.assign(data.begin(), data.end());

  if (state_->rfault.armed) {
    auto& rf = state_->rfault;
    if (cost_factor != 1.0) {
      PNC_IOSTAT_EVENT(kRankStraggle, clk.now(), 0, data.size(),
                       static_cast<std::uint64_t>(members_[dst]), nullptr);
      std::lock_guard<std::mutex> lk(rf.mu);
      ++rf.counters.straggled_sends;
    }
    const std::uint64_t send_index = rf.sends[world_rank_]++;
    bool drop = false;
    for (const auto& d : rf.policy.drops)
      drop = drop || (d.rank == world_rank_ && d.send_index == send_index);
    if (!drop && rf.policy.drop_prob > 0) {
      // Seeded by (seed, rank, send index): exact under any interleaving.
      pnc::SplitMix64 rng(rf.policy.seed ^
                          (static_cast<std::uint64_t>(world_rank_) << 40) ^
                          send_index);
      drop = rng.NextDouble() < rf.policy.drop_prob;
    }
    if (drop) {
      PNC_IOSTAT_EVENT(kMsgDrop, clk.now(), 0, data.size(),
                       static_cast<std::uint64_t>(members_[dst]), nullptr);
      std::lock_guard<std::mutex> lk(rf.mu);
      ++rf.counters.dropped_messages;
      return;  // vanished in transit; the sender already paid its costs
    }
    if (state_->RankDeadWorld(members_[dst])) return;  // no one to deliver to
  }

  auto& box = *state_->mailboxes[members_[dst]];
  {
    std::lock_guard<std::mutex> lk(box.m);
    box.q.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

std::vector<std::byte> Comm::Recv(int src, int tag, int* actual_src,
                                  int* actual_tag) {
  std::vector<std::byte> out;
  RecvImpl(src, tag, actual_src, actual_tag, /*ft=*/false, out);
  return out;
}

bool Comm::RecvFT(int src, int tag, std::vector<std::byte>& out) {
  assert(state_->rfault.armed && "RecvFT requires an armed RankFaultPolicy");
  return RecvImpl(src, tag, nullptr, nullptr, /*ft=*/true, out);
}

bool Comm::RecvImpl(int src, int tag, int* actual_src, int* actual_tag,
                    bool ft, std::vector<std::byte>& out) {
  if (state_->rfault.armed) {
    if (SelfDead()) {
      out.clear();
      return false;  // inert: the rank is unwinding its crash
    }
    MaybeCrashSelf();
  }
  auto& box = *state_->mailboxes[world_rank_];
  {
    std::lock_guard<std::mutex> tlk(state_->trace_mutex);
    auto& w = state_->waits[world_rank_];
    w.waiting = true;
    w.src = src;
    w.tag = tag;
    w.ctx = ctx_;
  }
  std::unique_lock<std::mutex> lk(box.m);
  detail::Message msg;
  auto matches = [&](const detail::Message& m) {
    return m.ctx == ctx_ && (src == kAnySource || m.world_src == src) &&
           (tag == kAnyTag || m.tag == tag);
  };
  // Under an armed fault policy, a dead source also ends the wait: the
  // queue is drained of anything it sent before dying first (the `matches`
  // arm of the predicate), then its death becomes observable.
  auto src_dead = [&] {
    return state_->rfault.armed && src != kAnySource &&
           state_->RankDeadWorld(members_[src]);
  };
  auto ready = [&] {
    return std::any_of(box.q.begin(), box.q.end(), matches) || src_dead();
  };
  if (state_->hang_timeout_ms > 0) {
    // Watchdog: a receive that sees nothing for the timeout is a deadlock
    // (a mismatched or dropped collective); dump and abort rather than hang
    // the whole suite.
    const auto timeout =
        std::chrono::duration<double, std::milli>(state_->hang_timeout_ms);
    while (!box.cv.wait_for(lk, timeout, ready)) {
      lk.unlock();
      state_->DumpHangAndAbort(world_rank_);
    }
  } else {
    box.cv.wait(lk, ready);
  }
  auto it = std::find_if(box.q.begin(), box.q.end(), matches);
  if (it == box.q.end()) {
    // Woken by the source's death, nothing left to deliver.
    lk.unlock();
    {
      std::lock_guard<std::mutex> tlk(state_->trace_mutex);
      auto& w = state_->waits[world_rank_];
      w.waiting = false;
    }
    if (!ft) {
      // A non-FT wait on a crashed rank is a caller bug under an armed
      // policy; fail fast with a diagnostic instead of a watchdog stall.
      std::fprintf(stderr,
                   "simmpi: rank %d failed while rank %d waited in a "
                   "non-fault-tolerant Recv(src=%d, tag=%d, ctx=%d)\n",
                   members_[src], world_rank_, src, tag, ctx_);
      std::fflush(stderr);
      PNC_IOSTAT_EVENT_DUMP("recv-from-failed-rank");
      std::abort();
    }
    out.clear();
    return false;
  }
  msg = std::move(*it);
  box.q.erase(it);
  lk.unlock();
  {
    std::lock_guard<std::mutex> tlk(state_->trace_mutex);
    auto& w = state_->waits[world_rank_];
    w.waiting = false;
    ++w.recvs;
  }

  auto& clk = clock();
  clk.AdvanceTo(msg.arrive_time);
  clk.Advance(state_->cost.sw_overhead_ns);
  if (actual_src) *actual_src = msg.world_src;
  if (actual_tag) *actual_tag = msg.tag;
  out = std::move(msg.data);
  return true;
}

std::vector<std::byte> Comm::RecvInternal(int src, int tag) {
  return Recv(src, tag, nullptr, nullptr);
}

void Comm::Barrier() {
  if (state_->rfault.armed && SelfDead()) return;
  PNC_IOSTAT_ADD(kMpiCollectives, 1);
  const int p = size();
  if (p == 1) return;
  // Dissemination barrier: log2(P) rounds of ring-distance exchanges. Clock
  // synchronization falls out of message arrival times.
  int phase = 0;
  for (int dist = 1; dist < p; dist <<= 1, ++phase) {
    SendInternal((rank_ + dist) % p, kTagBarrierBase - phase, {});
    (void)RecvInternal((rank_ - dist + p) % p, kTagBarrierBase - phase);
  }
}

void Comm::Bcast(pnc::ByteSpan buf, int root) {
  if (state_->rfault.armed && SelfDead()) return;
  PNC_IOSTAT_ADD(kMpiCollectives, 1);
  const int p = size();
  if (p == 1) return;
  const int r = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (r & mask) {
      auto data = RecvInternal((r - mask + root) % p, kTagBcast);
      assert(data.size() == buf.size());
      std::memcpy(buf.data(), data.data(), buf.size());
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (r + mask < p)
      SendInternal((r + mask + root) % p, kTagBcast,
                   pnc::ConstByteSpan(buf.data(), buf.size()));
    mask >>= 1;
  }
}

void Comm::Bcast(std::vector<std::byte>& buf, int root) {
  if (state_->rfault.armed && SelfDead()) return;
  PNC_IOSTAT_ADD(kMpiCollectives, 1);
  const int p = size();
  if (p == 1) return;
  const int r = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (r & mask) {
      buf = RecvInternal((r - mask + root) % p, kTagBcast);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (r + mask < p) SendInternal((r + mask + root) % p, kTagBcast, buf);
    mask >>= 1;
  }
}

std::vector<std::vector<std::byte>> Comm::Gather(pnc::ConstByteSpan mine,
                                                 int root) {
  if (state_->rfault.armed && SelfDead()) return {};
  PNC_IOSTAT_ADD(kMpiCollectives, 1);
  const int p = size();
  std::vector<std::vector<std::byte>> result;
  if (rank_ == root) {
    result.resize(p);
    result[root].assign(mine.begin(), mine.end());
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      result[r] = RecvInternal(r, kTagGather);
    }
  } else {
    SendInternal(root, kTagGather, mine);
  }
  return result;
}

std::vector<std::vector<std::byte>> Comm::Allgather(pnc::ConstByteSpan mine) {
  if (state_->rfault.armed && SelfDead()) return {};
  PNC_IOSTAT_ADD(kMpiCollectives, 1);
  const int p = size();
  auto gathered = Gather(mine, 0);
  // Root frames all pieces into one buffer and broadcasts it.
  std::vector<std::byte> frame;
  if (rank_ == 0) {
    std::uint64_t total = 8;
    for (const auto& g : gathered) total += 8 + g.size();
    frame.reserve(total);
    auto put_u64 = [&frame](std::uint64_t v) {
      auto* b = reinterpret_cast<const std::byte*>(&v);
      frame.insert(frame.end(), b, b + 8);
    };
    put_u64(static_cast<std::uint64_t>(p));
    for (const auto& g : gathered) {
      put_u64(g.size());
      frame.insert(frame.end(), g.begin(), g.end());
    }
  }
  Bcast(frame, 0);

  std::vector<std::vector<std::byte>> result(p);
  std::size_t pos = 0;
  auto get_u64 = [&frame, &pos]() {
    std::uint64_t v;
    std::memcpy(&v, frame.data() + pos, 8);
    pos += 8;
    return v;
  };
  const auto count = get_u64();
  assert(count == static_cast<std::uint64_t>(p));
  (void)count;
  for (int r = 0; r < p; ++r) {
    const auto len = get_u64();
    result[r].assign(frame.begin() + static_cast<std::ptrdiff_t>(pos),
                     frame.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
  }
  return result;
}

std::vector<std::byte> Comm::Scatter(
    std::vector<std::vector<std::byte>> pieces, int root) {
  if (state_->rfault.armed && SelfDead()) return {};
  PNC_IOSTAT_ADD(kMpiCollectives, 1);
  const int p = size();
  if (rank_ == root) {
    assert(static_cast<int>(pieces.size()) == p);
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      SendInternal(r, kTagScatter, pieces[r]);
    }
    return std::move(pieces[root]);
  }
  return RecvInternal(root, kTagScatter);
}

std::vector<std::vector<std::byte>> Comm::Alltoall(
    std::vector<std::vector<std::byte>> send) {
  if (state_->rfault.armed && SelfDead()) return {};
  PNC_IOSTAT_ADD(kMpiCollectives, 1);
  const int p = size();
  assert(static_cast<int>(send.size()) == p);
  std::vector<std::vector<std::byte>> result(p);
  result[rank_] = std::move(send[rank_]);
  // Ring-offset pairwise exchange; buffered sends make this deadlock-free.
  for (int i = 1; i < p; ++i) {
    const int dst = (rank_ + i) % p;
    const int src = (rank_ - i + p) % p;
    SendInternal(dst, kTagAlltoall, send[dst]);
    result[src] = RecvInternal(src, kTagAlltoall);
  }
  return result;
}

void Comm::Reduce(pnc::ByteSpan inout, const ReduceFn& fn, int root) {
  if (state_->rfault.armed && SelfDead()) return;
  PNC_IOSTAT_ADD(kMpiCollectives, 1);
  const int p = size();
  if (p == 1) return;
  const int r = (rank_ - root + p) % p;
  for (int mask = 1; mask < p; mask <<= 1) {
    if (r & mask) {
      SendInternal((r - mask + root) % p, kTagReduce,
                   pnc::ConstByteSpan(inout.data(), inout.size()));
      break;
    }
    const int src_rel = r + mask;
    if (src_rel < p) {
      auto d = RecvInternal((src_rel + root) % p, kTagReduce);
      assert(d.size() == inout.size());
      fn(inout, d);
    }
  }
}

void Comm::Allreduce(pnc::ByteSpan inout, const ReduceFn& fn) {
  if (state_->rfault.armed && SelfDead()) return;
  PNC_IOSTAT_ADD(kMpiCollectives, 1);
  Reduce(inout, fn, 0);
  Bcast(inout, 0);
}

bool Comm::AllAgree(pnc::ConstByteSpan bytes) {
  if (state_->rfault.armed && SelfDead()) return false;
  PNC_IOSTAT_ADD(kMpiCollectives, 1);
  auto gathered = Gather(bytes, 0);
  std::uint8_t same = 1;
  if (rank_ == 0) {
    for (const auto& g : gathered) {
      if (g.size() != bytes.size() ||
          !std::equal(g.begin(), g.end(), bytes.begin())) {
        same = 0;
        break;
      }
    }
  }
  BcastValue(same, 0);
  return same != 0;
}

Comm Comm::Dup() {
  if (state_->rfault.armed && SelfDead())
    return Comm(state_, ctx_, members_, rank_);
  int new_ctx = 0;
  if (rank_ == 0) {
    std::lock_guard<std::mutex> lk(state_->ctx_mutex);
    new_ctx = state_->next_ctx++;
  }
  BcastValue(new_ctx, 0);
  return Comm(state_, new_ctx, members_, rank_);
}

Comm Comm::Split(int color, int key) {
  if (state_->rfault.armed && SelfDead())
    return Comm(state_, ctx_, members_, rank_);
  struct Entry {
    int color, key, old_rank;
  };
  Entry mine{color, key, rank_};
  auto gathered = Allgather(pnc::ConstByteSpan(
      reinterpret_cast<const std::byte*>(&mine), sizeof(Entry)));

  std::vector<Entry> all;
  all.reserve(gathered.size());
  for (const auto& g : gathered) {
    Entry e;
    std::memcpy(&e, g.data(), sizeof(Entry));
    all.push_back(e);
  }
  // Members of my color, ordered by (key, old rank) as MPI_Comm_split does.
  std::vector<Entry> group;
  for (const auto& e : all)
    if (e.color == color) group.push_back(e);
  std::sort(group.begin(), group.end(), [](const Entry& a, const Entry& b) {
    return a.key != b.key ? a.key < b.key : a.old_rank < b.old_rank;
  });

  // Rank 0 of the parent allocates one context per distinct color, in sorted
  // color order, so every group lands on a consistent fresh context.
  std::vector<int> colors;
  for (const auto& e : all) colors.push_back(e.color);
  std::sort(colors.begin(), colors.end());
  colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
  int ctx_base = 0;
  if (rank_ == 0) {
    std::lock_guard<std::mutex> lk(state_->ctx_mutex);
    ctx_base = state_->next_ctx;
    state_->next_ctx += static_cast<int>(colors.size());
  }
  BcastValue(ctx_base, 0);
  const auto color_idx = static_cast<int>(
      std::lower_bound(colors.begin(), colors.end(), color) - colors.begin());

  std::vector<int> new_members;
  int new_rank = 0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    new_members.push_back(members_[group[i].old_rank]);
    if (group[i].old_rank == rank_) new_rank = static_cast<int>(i);
  }
  return Comm(state_, ctx_base + color_idx, std::move(new_members), new_rank);
}

void Comm::SyncClocksToMax() {
  if (state_->rfault.armed && SelfDead()) return;
  const double t = AllreduceMax(clock().now());
  clock().AdvanceTo(t);
}

AgreeOutcome Comm::AgreeFT(std::int64_t value) {
  assert(state_->rfault.armed && "AgreeFT requires an armed RankFaultPolicy");
  AgreeOutcome out;
  if (SelfDead()) {
    out.min_value = value;
    out.any_dead = true;
    return out;  // inert: no survivors visible to a dead rank
  }
  MaybeCrashSelf();
  PNC_IOSTAT_ADD(kMpiCollectives, 1);
  auto& rf = state_->rfault;
  const double t_arrive = clock().now();
  std::unique_lock<std::mutex> lk(rf.mu);
  detail::AgreeSlot& slot = rf.slots[ctx_];
  if (slot.members.empty()) {
    slot.members.reserve(members_.size());
    for (int m : members_) slot.members.push_back(m);
    slot.arrived.assign(members_.size(), 0);
    slot.times.assign(members_.size(), 0.0);
    slot.fold = std::numeric_limits<std::int64_t>::max();
  }
  // A fast rank can lap the round: wait until the previous outcome has been
  // collected by every participant before contributing to the next.
  slot.cv.wait(lk, [&] { return !slot.done; });
  const int round = slot.round;
  slot.arrived[rank_] = 1;
  slot.times[rank_] = t_arrive;
  slot.fold = std::min(slot.fold, value);
  state_->MaybeFinalizeAgreeLocked(slot);
  slot.cv.wait(lk, [&] { return slot.done && slot.round == round; });
  out.min_value = slot.result;
  out.any_dead = slot.any_dead;
  out.alive = slot.alive;
  out.live_ctx = slot.live_ctx;
  const double t_done = slot.result_time;
  if (++slot.collected == static_cast<int>(slot.alive.size())) {
    // Last collector resets the slot for this context's next round.
    slot.arrived.assign(slot.members.size(), 0);
    slot.times.assign(slot.members.size(), 0.0);
    slot.fold = std::numeric_limits<std::int64_t>::max();
    slot.done = false;
    ++slot.round;
    slot.cv.notify_all();
  }
  lk.unlock();
  clock().AdvanceTo(t_done);
  PNC_IOSTAT_EVENT(kAgreement, clock().now(), t_done - t_arrive,
                   static_cast<std::uint64_t>(out.alive.size()),
                   out.any_dead ? 1 : 0, nullptr);
  return out;
}

Comm Comm::LiveSubsetFT(const AgreeOutcome& o) const {
  std::vector<int> new_members;
  new_members.reserve(o.alive.size());
  int new_rank = -1;
  for (std::size_t i = 0; i < o.alive.size(); ++i) {
    new_members.push_back(members_[o.alive[i]]);
    if (o.alive[i] == rank_) new_rank = static_cast<int>(i);
  }
  assert(new_rank >= 0 && "caller must be in the agreed survivor set");
  const int ctx = o.any_dead ? o.live_ctx : ctx_;
  return Comm(state_, ctx, std::move(new_members), new_rank);
}

}  // namespace simmpi
