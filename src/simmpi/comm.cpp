#include "simmpi/comm.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "iostat/events.hpp"
#include "iostat/iostat.hpp"

namespace simmpi {

namespace detail {

SharedState::SharedState(int world_size, CostModel cm) : cost(cm) {
  mailboxes.reserve(world_size);
  for (int i = 0; i < world_size; ++i)
    mailboxes.push_back(std::make_unique<Mailbox>());
  clocks.resize(world_size);
  waits.resize(world_size);
  hang_timeout_ms = cm.hang_timeout_ms;
  if (const char* env = std::getenv("PNC_HANG_TIMEOUT_MS"))
    hang_timeout_ms = std::atof(env);
}

void SharedState::DumpHangAndAbort(int world_rank) {
  std::lock_guard<std::mutex> lk(trace_mutex);
  std::fprintf(stderr,
               "simmpi: hang watchdog: rank %d received no matching message "
               "for %.0f ms (PNC_HANG_TIMEOUT_MS); per-rank state:\n",
               world_rank, hang_timeout_ms);
  for (std::size_t r = 0; r < waits.size(); ++r) {
    const WaitRecord& w = waits[r];
    std::size_t pending = 0;
    {
      std::lock_guard<std::mutex> blk(mailboxes[r]->m);
      pending = mailboxes[r]->q.size();
    }
    if (w.waiting) {
      std::fprintf(stderr,
                   "  rank %zu: BLOCKED in Recv(src=%d, tag=%d, ctx=%d), "
                   "%llu receives done, %zu unmatched messages queued\n",
                   r, w.src, w.tag, w.ctx,
                   static_cast<unsigned long long>(w.recvs), pending);
    } else {
      std::fprintf(stderr,
                   "  rank %zu: not in Recv, %llu receives done, "
                   "%zu unmatched messages queued\n",
                   r, static_cast<unsigned long long>(w.recvs), pending);
    }
  }
  std::fflush(stderr);
  // Black box: dump every rank's flight-recorder tail (pnc-events-v1) so
  // the history leading into the hang survives the abort.
  PNC_IOSTAT_EVENT_DUMP("hang-watchdog");
  std::abort();
}

Comm MakeComm(std::shared_ptr<SharedState> state, std::vector<int> members,
              int rank) {
  return Comm(std::move(state), /*ctx=*/0, std::move(members), rank);
}

}  // namespace detail

namespace {
// Internal collective tags live in negative tag space so they can never
// collide with user point-to-point traffic (user tags must be >= 0).
constexpr int kTagBcast = -10;
constexpr int kTagReduce = -11;
constexpr int kTagGather = -12;
constexpr int kTagScatter = -13;
constexpr int kTagAlltoall = -14;
constexpr int kTagAgree = -15;
constexpr int kTagBarrierBase = -100;  ///< barrier phase k uses -100 - k
}  // namespace

void Comm::Send(int dst, int tag, pnc::ConstByteSpan data) {
  assert(tag >= 0 && "user tags must be non-negative");
  SendInternal(dst, tag, data);
}

void Comm::SendInternal(int dst, int tag, pnc::ConstByteSpan data) {
  assert(dst >= 0 && dst < size());
  PNC_IOSTAT_ADD(kMpiMessages, 1);
  PNC_IOSTAT_ADD(kMpiMessageBytes, data.size());
  auto& clk = clock();
  clk.Advance(state_->cost.sw_overhead_ns);
  detail::Message msg;
  msg.world_src = rank_;  // communicator-rank of the sender within ctx_
  msg.ctx = ctx_;
  msg.tag = tag;
  msg.arrive_time = clk.now() + state_->cost.MessageCost(data.size());
  msg.data.assign(data.begin(), data.end());

  auto& box = *state_->mailboxes[members_[dst]];
  {
    std::lock_guard<std::mutex> lk(box.m);
    box.q.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

std::vector<std::byte> Comm::Recv(int src, int tag, int* actual_src,
                                  int* actual_tag) {
  auto& box = *state_->mailboxes[world_rank_];
  {
    std::lock_guard<std::mutex> tlk(state_->trace_mutex);
    auto& w = state_->waits[world_rank_];
    w.waiting = true;
    w.src = src;
    w.tag = tag;
    w.ctx = ctx_;
  }
  std::unique_lock<std::mutex> lk(box.m);
  detail::Message msg;
  auto matches = [&](const detail::Message& m) {
    return m.ctx == ctx_ && (src == kAnySource || m.world_src == src) &&
           (tag == kAnyTag || m.tag == tag);
  };
  auto ready = [&] {
    return std::any_of(box.q.begin(), box.q.end(), matches);
  };
  if (state_->hang_timeout_ms > 0) {
    // Watchdog: a receive that sees nothing for the timeout is a deadlock
    // (a mismatched or dropped collective); dump and abort rather than hang
    // the whole suite.
    const auto timeout =
        std::chrono::duration<double, std::milli>(state_->hang_timeout_ms);
    while (!box.cv.wait_for(lk, timeout, ready)) {
      lk.unlock();
      state_->DumpHangAndAbort(world_rank_);
    }
  } else {
    box.cv.wait(lk, ready);
  }
  auto it = std::find_if(box.q.begin(), box.q.end(), matches);
  msg = std::move(*it);
  box.q.erase(it);
  lk.unlock();
  {
    std::lock_guard<std::mutex> tlk(state_->trace_mutex);
    auto& w = state_->waits[world_rank_];
    w.waiting = false;
    ++w.recvs;
  }

  auto& clk = clock();
  clk.AdvanceTo(msg.arrive_time);
  clk.Advance(state_->cost.sw_overhead_ns);
  if (actual_src) *actual_src = msg.world_src;
  if (actual_tag) *actual_tag = msg.tag;
  return std::move(msg.data);
}

std::vector<std::byte> Comm::RecvInternal(int src, int tag) {
  return Recv(src, tag, nullptr, nullptr);
}

void Comm::Barrier() {
  PNC_IOSTAT_ADD(kMpiCollectives, 1);
  const int p = size();
  if (p == 1) return;
  // Dissemination barrier: log2(P) rounds of ring-distance exchanges. Clock
  // synchronization falls out of message arrival times.
  int phase = 0;
  for (int dist = 1; dist < p; dist <<= 1, ++phase) {
    SendInternal((rank_ + dist) % p, kTagBarrierBase - phase, {});
    (void)RecvInternal((rank_ - dist + p) % p, kTagBarrierBase - phase);
  }
}

void Comm::Bcast(pnc::ByteSpan buf, int root) {
  PNC_IOSTAT_ADD(kMpiCollectives, 1);
  const int p = size();
  if (p == 1) return;
  const int r = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (r & mask) {
      auto data = RecvInternal((r - mask + root) % p, kTagBcast);
      assert(data.size() == buf.size());
      std::memcpy(buf.data(), data.data(), buf.size());
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (r + mask < p)
      SendInternal((r + mask + root) % p, kTagBcast,
                   pnc::ConstByteSpan(buf.data(), buf.size()));
    mask >>= 1;
  }
}

void Comm::Bcast(std::vector<std::byte>& buf, int root) {
  PNC_IOSTAT_ADD(kMpiCollectives, 1);
  const int p = size();
  if (p == 1) return;
  const int r = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (r & mask) {
      buf = RecvInternal((r - mask + root) % p, kTagBcast);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (r + mask < p) SendInternal((r + mask + root) % p, kTagBcast, buf);
    mask >>= 1;
  }
}

std::vector<std::vector<std::byte>> Comm::Gather(pnc::ConstByteSpan mine,
                                                 int root) {
  PNC_IOSTAT_ADD(kMpiCollectives, 1);
  const int p = size();
  std::vector<std::vector<std::byte>> result;
  if (rank_ == root) {
    result.resize(p);
    result[root].assign(mine.begin(), mine.end());
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      result[r] = RecvInternal(r, kTagGather);
    }
  } else {
    SendInternal(root, kTagGather, mine);
  }
  return result;
}

std::vector<std::vector<std::byte>> Comm::Allgather(pnc::ConstByteSpan mine) {
  PNC_IOSTAT_ADD(kMpiCollectives, 1);
  const int p = size();
  auto gathered = Gather(mine, 0);
  // Root frames all pieces into one buffer and broadcasts it.
  std::vector<std::byte> frame;
  if (rank_ == 0) {
    std::uint64_t total = 8;
    for (const auto& g : gathered) total += 8 + g.size();
    frame.reserve(total);
    auto put_u64 = [&frame](std::uint64_t v) {
      auto* b = reinterpret_cast<const std::byte*>(&v);
      frame.insert(frame.end(), b, b + 8);
    };
    put_u64(static_cast<std::uint64_t>(p));
    for (const auto& g : gathered) {
      put_u64(g.size());
      frame.insert(frame.end(), g.begin(), g.end());
    }
  }
  Bcast(frame, 0);

  std::vector<std::vector<std::byte>> result(p);
  std::size_t pos = 0;
  auto get_u64 = [&frame, &pos]() {
    std::uint64_t v;
    std::memcpy(&v, frame.data() + pos, 8);
    pos += 8;
    return v;
  };
  const auto count = get_u64();
  assert(count == static_cast<std::uint64_t>(p));
  (void)count;
  for (int r = 0; r < p; ++r) {
    const auto len = get_u64();
    result[r].assign(frame.begin() + static_cast<std::ptrdiff_t>(pos),
                     frame.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
  }
  return result;
}

std::vector<std::byte> Comm::Scatter(
    std::vector<std::vector<std::byte>> pieces, int root) {
  PNC_IOSTAT_ADD(kMpiCollectives, 1);
  const int p = size();
  if (rank_ == root) {
    assert(static_cast<int>(pieces.size()) == p);
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      SendInternal(r, kTagScatter, pieces[r]);
    }
    return std::move(pieces[root]);
  }
  return RecvInternal(root, kTagScatter);
}

std::vector<std::vector<std::byte>> Comm::Alltoall(
    std::vector<std::vector<std::byte>> send) {
  PNC_IOSTAT_ADD(kMpiCollectives, 1);
  const int p = size();
  assert(static_cast<int>(send.size()) == p);
  std::vector<std::vector<std::byte>> result(p);
  result[rank_] = std::move(send[rank_]);
  // Ring-offset pairwise exchange; buffered sends make this deadlock-free.
  for (int i = 1; i < p; ++i) {
    const int dst = (rank_ + i) % p;
    const int src = (rank_ - i + p) % p;
    SendInternal(dst, kTagAlltoall, send[dst]);
    result[src] = RecvInternal(src, kTagAlltoall);
  }
  return result;
}

void Comm::Reduce(pnc::ByteSpan inout, const ReduceFn& fn, int root) {
  PNC_IOSTAT_ADD(kMpiCollectives, 1);
  const int p = size();
  if (p == 1) return;
  const int r = (rank_ - root + p) % p;
  for (int mask = 1; mask < p; mask <<= 1) {
    if (r & mask) {
      SendInternal((r - mask + root) % p, kTagReduce,
                   pnc::ConstByteSpan(inout.data(), inout.size()));
      break;
    }
    const int src_rel = r + mask;
    if (src_rel < p) {
      auto d = RecvInternal((src_rel + root) % p, kTagReduce);
      assert(d.size() == inout.size());
      fn(inout, d);
    }
  }
}

void Comm::Allreduce(pnc::ByteSpan inout, const ReduceFn& fn) {
  PNC_IOSTAT_ADD(kMpiCollectives, 1);
  Reduce(inout, fn, 0);
  Bcast(inout, 0);
}

bool Comm::AllAgree(pnc::ConstByteSpan bytes) {
  PNC_IOSTAT_ADD(kMpiCollectives, 1);
  auto gathered = Gather(bytes, 0);
  std::uint8_t same = 1;
  if (rank_ == 0) {
    for (const auto& g : gathered) {
      if (g.size() != bytes.size() ||
          !std::equal(g.begin(), g.end(), bytes.begin())) {
        same = 0;
        break;
      }
    }
  }
  BcastValue(same, 0);
  return same != 0;
}

Comm Comm::Dup() {
  int new_ctx = 0;
  if (rank_ == 0) {
    std::lock_guard<std::mutex> lk(state_->ctx_mutex);
    new_ctx = state_->next_ctx++;
  }
  BcastValue(new_ctx, 0);
  return Comm(state_, new_ctx, members_, rank_);
}

Comm Comm::Split(int color, int key) {
  struct Entry {
    int color, key, old_rank;
  };
  Entry mine{color, key, rank_};
  auto gathered = Allgather(pnc::ConstByteSpan(
      reinterpret_cast<const std::byte*>(&mine), sizeof(Entry)));

  std::vector<Entry> all;
  all.reserve(gathered.size());
  for (const auto& g : gathered) {
    Entry e;
    std::memcpy(&e, g.data(), sizeof(Entry));
    all.push_back(e);
  }
  // Members of my color, ordered by (key, old rank) as MPI_Comm_split does.
  std::vector<Entry> group;
  for (const auto& e : all)
    if (e.color == color) group.push_back(e);
  std::sort(group.begin(), group.end(), [](const Entry& a, const Entry& b) {
    return a.key != b.key ? a.key < b.key : a.old_rank < b.old_rank;
  });

  // Rank 0 of the parent allocates one context per distinct color, in sorted
  // color order, so every group lands on a consistent fresh context.
  std::vector<int> colors;
  for (const auto& e : all) colors.push_back(e.color);
  std::sort(colors.begin(), colors.end());
  colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
  int ctx_base = 0;
  if (rank_ == 0) {
    std::lock_guard<std::mutex> lk(state_->ctx_mutex);
    ctx_base = state_->next_ctx;
    state_->next_ctx += static_cast<int>(colors.size());
  }
  BcastValue(ctx_base, 0);
  const auto color_idx = static_cast<int>(
      std::lower_bound(colors.begin(), colors.end(), color) - colors.begin());

  std::vector<int> new_members;
  int new_rank = 0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    new_members.push_back(members_[group[i].old_rank]);
    if (group[i].old_rank == rank_) new_rank = static_cast<int>(i);
  }
  return Comm(state_, ctx_base + color_idx, std::move(new_members), new_rank);
}

void Comm::SyncClocksToMax() {
  const double t = AllreduceMax(clock().now());
  clock().AdvanceTo(t);
}

}  // namespace simmpi
