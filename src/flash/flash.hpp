// FLASH I/O benchmark (paper §5.2).
//
// Recreates the I/O pattern of the FLASH adaptive-mesh hydrodynamics code:
// every process holds 80 AMR sub-blocks of 8x8x8 or 16x16x16 interior cells
// with a perimeter of 4 guard cells that are excluded from the data written
// to file. The benchmark produces three files:
//   * a checkpoint (24 double-precision unknowns + tree metadata),
//   * a plotfile with centered data (4 single-precision variables),
//   * a plotfile with corner data (interpolated to cell corners,
//     (n+1)^3 per block).
// Each is implemented over both PnetCDF and hdf5lite, with identical data,
// mirroring the paper's port of the original HDF5 benchmark to PnetCDF.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hdf5lite/h5file.hpp"
#include "pnetcdf/dataset.hpp"

namespace flashio {

struct FlashConfig {
  int nxb = 8, nyb = 8, nzb = 8;  ///< interior cells per block per axis
  int nguard = 4;                 ///< guard cells on every side
  int blocks_per_proc = 80;
  int nvar = 24;   ///< checkpoint unknowns
  int nplot = 4;   ///< plotfile variables
  int ndim = 3;

  [[nodiscard]] std::uint64_t guarded(int n) const {
    return static_cast<std::uint64_t>(n + 2 * nguard);
  }
  [[nodiscard]] std::uint64_t block_interior_elems() const {
    return static_cast<std::uint64_t>(nxb) * static_cast<std::uint64_t>(nyb) *
           static_cast<std::uint64_t>(nzb);
  }
  [[nodiscard]] std::uint64_t block_guarded_elems() const {
    return guarded(nzb) * guarded(nyb) * guarded(nxb);
  }
};

/// One process's share of the FLASH in-memory state: guarded block storage
/// for the unknowns plus the AMR tree metadata that goes into a checkpoint.
/// Unknowns are generated per variable on demand so that many-hundred-rank
/// sweeps do not hold every variable of every rank in host memory at once.
class FlashData {
 public:
  FlashData(const FlashConfig& cfg, int rank);

  [[nodiscard]] const FlashConfig& config() const { return cfg_; }

  /// Fill `buf` with the guarded storage of one unknown across all local
  /// blocks: layout (blocks, nzb+2g, nyb+2g, nxb+2g), row-major; guard
  /// cells hold the sentinel -1.0. `buf` is resized as needed.
  void FillUnk(int var, std::vector<double>& buf) const;

  /// Pack variable `var` interiors into a contiguous single-precision
  /// buffer (what FLASH does before writing plotfiles).
  [[nodiscard]] std::vector<float> PackPlotVar(int var) const;
  /// Interpolate variable `var` to cell corners, (n+1)^3 per block.
  [[nodiscard]] std::vector<float> PackCornerVar(int var) const;

  // AMR tree metadata (per local block).
  [[nodiscard]] const std::vector<std::int32_t>& lrefine() const {
    return lrefine_;
  }
  [[nodiscard]] const std::vector<std::int32_t>& nodetype() const {
    return nodetype_;
  }
  [[nodiscard]] const std::vector<std::int32_t>& gid() const { return gid_; }
  [[nodiscard]] const std::vector<double>& coord() const { return coord_; }
  [[nodiscard]] const std::vector<double>& bsize() const { return bsize_; }
  [[nodiscard]] const std::vector<double>& bnd_box() const { return bnd_box_; }

  static constexpr int kGidEntries = 15;  ///< 6 faces + 8 children + parent

 private:
  FlashConfig cfg_;
  int rank_;
  std::vector<std::int32_t> lrefine_, nodetype_, gid_;
  std::vector<double> coord_, bsize_, bnd_box_;
};

/// Which of the three FLASH output files to produce.
enum class FileKind { kCheckpoint, kPlotfile, kPlotfileCorners };

/// Bytes a single process contributes to a file of the given kind (for
/// bandwidth accounting).
std::uint64_t BytesPerProc(const FlashConfig& cfg, FileKind kind);

/// Write one FLASH output file through PnetCDF (collective I/O). All ranks
/// of `comm` call this with their own `data`.
pnc::Status WriteFlashPnetcdf(simmpi::Comm& comm, pfs::FileSystem& fs,
                              const std::string& path, const FlashData& data,
                              FileKind kind, const simmpi::Info& info);

/// The same file through the hdf5lite baseline.
pnc::Status WriteFlashHdf5lite(simmpi::Comm& comm, pfs::FileSystem& fs,
                               const std::string& path, const FlashData& data,
                               FileKind kind, const simmpi::Info& info);

/// Validation helper: serially re-read a PnetCDF FLASH file and check a
/// sample of values against what `rank`'s FlashData would have written.
pnc::Status ValidateFlashPnetcdf(pfs::FileSystem& fs, const std::string& path,
                                 const FlashConfig& cfg, int nprocs,
                                 FileKind kind);

/// Restart: collectively read one unknown of a checkpoint back into this
/// rank's guarded block storage (layout as FillUnk; guard cells are NOT in
/// the file and are left at the -1 sentinel for the halo exchange to fill,
/// exactly how FLASH restarts). `guarded` is resized as needed.
pnc::Status RestartReadUnk(simmpi::Comm& comm, pnetcdf::Dataset& checkpoint,
                           const FlashConfig& cfg, int var,
                           std::vector<double>& guarded);

}  // namespace flashio
