#include "flash/flash.hpp"

#include <cmath>

#include "netcdf/dataset.hpp"
#include "util/rng.hpp"

namespace flashio {

using ncformat::NcType;

namespace {

/// Deterministic cell value: reproducible across ranks and backends so the
/// PnetCDF and hdf5lite files contain identical data.
double CellValue(int rank, int var, int blk, std::uint64_t z, std::uint64_t y,
                 std::uint64_t x) {
  return static_cast<double>(rank) * 1e6 + static_cast<double>(var) * 1e4 +
         static_cast<double>(blk) * 1e2 + static_cast<double>(z) * 4.0 +
         static_cast<double>(y) * 2.0 + static_cast<double>(x) * 1.0 + 0.25;
}

}  // namespace

FlashData::FlashData(const FlashConfig& cfg, int rank)
    : cfg_(cfg), rank_(rank) {
  const auto blocks = static_cast<std::uint64_t>(cfg.blocks_per_proc);

  // AMR tree metadata, synthesized deterministically.
  pnc::SplitMix64 rng(0xF1A5F1A5ULL + static_cast<std::uint64_t>(rank));
  lrefine_.resize(blocks);
  nodetype_.resize(blocks);
  gid_.resize(blocks * kGidEntries);
  coord_.resize(blocks * static_cast<std::uint64_t>(cfg.ndim));
  bsize_.resize(blocks * static_cast<std::uint64_t>(cfg.ndim));
  bnd_box_.resize(blocks * 2 * static_cast<std::uint64_t>(cfg.ndim));
  for (std::uint64_t b = 0; b < blocks; ++b) {
    lrefine_[b] = 1 + static_cast<std::int32_t>(rng.Below(6));
    nodetype_[b] = 1;
    for (int e = 0; e < kGidEntries; ++e)
      gid_[b * kGidEntries + static_cast<std::uint64_t>(e)] =
          static_cast<std::int32_t>(rng.Below(blocks * 16));
    for (int d = 0; d < cfg.ndim; ++d) {
      const double size = 1.0 / std::pow(2.0, lrefine_[b]);
      const double lo = rng.NextDouble();
      coord_[b * 3 + static_cast<std::uint64_t>(d)] = lo + size / 2;
      bsize_[b * 3 + static_cast<std::uint64_t>(d)] = size;
      bnd_box_[(b * 3 + static_cast<std::uint64_t>(d)) * 2] = lo;
      bnd_box_[(b * 3 + static_cast<std::uint64_t>(d)) * 2 + 1] = lo + size;
    }
  }
}

void FlashData::FillUnk(int var, std::vector<double>& buf) const {
  const auto& cfg = cfg_;
  const auto blocks = static_cast<std::uint64_t>(cfg.blocks_per_proc);
  const std::uint64_t gz = cfg.guarded(cfg.nzb), gy = cfg.guarded(cfg.nyb),
                      gx = cfg.guarded(cfg.nxb);
  const auto g = static_cast<std::uint64_t>(cfg.nguard);
  buf.assign(blocks * gz * gy * gx, -1.0);  // guards hold a sentinel
  for (std::uint64_t b = 0; b < blocks; ++b) {
    for (std::uint64_t z = 0; z < static_cast<std::uint64_t>(cfg.nzb); ++z)
      for (std::uint64_t y = 0; y < static_cast<std::uint64_t>(cfg.nyb); ++y)
        for (std::uint64_t x = 0; x < static_cast<std::uint64_t>(cfg.nxb); ++x)
          buf[((b * gz + z + g) * gy + y + g) * gx + x + g] =
              CellValue(rank_, var, static_cast<int>(b), z, y, x);
  }
}

std::vector<float> FlashData::PackPlotVar(int var) const {
  const auto& cfg = cfg_;
  const auto blocks = static_cast<std::uint64_t>(cfg.blocks_per_proc);
  const std::uint64_t gz = cfg.guarded(cfg.nzb), gy = cfg.guarded(cfg.nyb),
                      gx = cfg.guarded(cfg.nxb);
  const auto g = static_cast<std::uint64_t>(cfg.nguard);
  std::vector<double> u;
  FillUnk(var, u);
  std::vector<float> out(blocks * cfg.block_interior_elems());
  std::size_t w = 0;
  for (std::uint64_t b = 0; b < blocks; ++b)
    for (std::uint64_t z = 0; z < static_cast<std::uint64_t>(cfg.nzb); ++z)
      for (std::uint64_t y = 0; y < static_cast<std::uint64_t>(cfg.nyb); ++y)
        for (std::uint64_t x = 0; x < static_cast<std::uint64_t>(cfg.nxb); ++x)
          out[w++] = static_cast<float>(
              u[((b * gz + z + g) * gy + y + g) * gx + x + g]);
  return out;
}

std::vector<float> FlashData::PackCornerVar(int var) const {
  // Corner value = average of the (up to) 8 surrounding cell centers,
  // using guard cells at the block boundary — exactly why FLASH keeps them.
  const auto& cfg = cfg_;
  const auto blocks = static_cast<std::uint64_t>(cfg.blocks_per_proc);
  const std::uint64_t gz = cfg.guarded(cfg.nzb), gy = cfg.guarded(cfg.nyb),
                      gx = cfg.guarded(cfg.nxb);
  const auto g = static_cast<std::uint64_t>(cfg.nguard);
  std::vector<double> u;
  FillUnk(var, u);
  const std::uint64_t cz = static_cast<std::uint64_t>(cfg.nzb) + 1;
  const std::uint64_t cy = static_cast<std::uint64_t>(cfg.nyb) + 1;
  const std::uint64_t cx = static_cast<std::uint64_t>(cfg.nxb) + 1;
  std::vector<float> out(blocks * cz * cy * cx);
  std::size_t w = 0;
  for (std::uint64_t b = 0; b < blocks; ++b) {
    auto cell = [&](std::uint64_t z, std::uint64_t y, std::uint64_t x) {
      return u[((b * gz + z) * gy + y) * gx + x];
    };
    for (std::uint64_t z = 0; z < cz; ++z)
      for (std::uint64_t y = 0; y < cy; ++y)
        for (std::uint64_t x = 0; x < cx; ++x) {
          double acc = 0.0;
          for (int dz = 0; dz < 2; ++dz)
            for (int dy = 0; dy < 2; ++dy)
              for (int dx = 0; dx < 2; ++dx)
                acc += cell(z + g - 1 + static_cast<std::uint64_t>(dz),
                            y + g - 1 + static_cast<std::uint64_t>(dy),
                            x + g - 1 + static_cast<std::uint64_t>(dx));
          out[w++] = static_cast<float>(acc / 8.0);
        }
  }
  return out;
}

std::uint64_t BytesPerProc(const FlashConfig& cfg, FileKind kind) {
  const auto blocks = static_cast<std::uint64_t>(cfg.blocks_per_proc);
  switch (kind) {
    case FileKind::kCheckpoint:
      return static_cast<std::uint64_t>(cfg.nvar) * blocks *
                 cfg.block_interior_elems() * 8 +
             blocks * (4 + 4 + FlashData::kGidEntries * 4 + 3 * 8 + 3 * 8 +
                       6 * 8);
    case FileKind::kPlotfile:
      return static_cast<std::uint64_t>(cfg.nplot) * blocks *
             cfg.block_interior_elems() * 4;
    case FileKind::kPlotfileCorners:
      return static_cast<std::uint64_t>(cfg.nplot) * blocks *
             static_cast<std::uint64_t>(cfg.nzb + 1) *
             static_cast<std::uint64_t>(cfg.nyb + 1) *
             static_cast<std::uint64_t>(cfg.nxb + 1) * 4;
  }
  return 0;
}

namespace {

std::string VarName(FileKind kind, int v) {
  const char* prefix = kind == FileKind::kCheckpoint ? "var" : "plot";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%02d", prefix, v + 1);
  return buf;
}

}  // namespace

// ----------------------------------------------------------- PnetCDF path

pnc::Status WriteFlashPnetcdf(simmpi::Comm& comm, pfs::FileSystem& fs,
                              const std::string& path, const FlashData& data,
                              FileKind kind, const simmpi::Info& info) {
  const auto& cfg = data.config();
  const int nprocs = comm.size();
  const auto blocks = static_cast<std::uint64_t>(cfg.blocks_per_proc);
  const std::uint64_t tot_blocks = blocks * static_cast<std::uint64_t>(nprocs);
  const std::uint64_t b0 = blocks * static_cast<std::uint64_t>(comm.rank());

  auto dsr = pnetcdf::Dataset::Create(comm, fs, path, info);
  if (!dsr.ok()) return dsr.status();
  auto ds = std::move(dsr).value();

  const bool corners = kind == FileKind::kPlotfileCorners;
  const std::uint64_t fz = static_cast<std::uint64_t>(cfg.nzb) + (corners ? 1 : 0);
  const std::uint64_t fy = static_cast<std::uint64_t>(cfg.nyb) + (corners ? 1 : 0);
  const std::uint64_t fx = static_cast<std::uint64_t>(cfg.nxb) + (corners ? 1 : 0);

  PNC_ASSIGN_OR_RETURN(int d_blocks, ds.DefDim("tot_blocks", tot_blocks));
  PNC_ASSIGN_OR_RETURN(int d_z, ds.DefDim("nzb", fz));
  PNC_ASSIGN_OR_RETURN(int d_y, ds.DefDim("nyb", fy));
  PNC_ASSIGN_OR_RETURN(int d_x, ds.DefDim("nxb", fx));

  const int nvars = kind == FileKind::kCheckpoint ? cfg.nvar : cfg.nplot;
  const NcType vtype =
      kind == FileKind::kCheckpoint ? NcType::kDouble : NcType::kFloat;
  std::vector<int> varids(static_cast<std::size_t>(nvars));
  for (int v = 0; v < nvars; ++v) {
    PNC_ASSIGN_OR_RETURN(varids[static_cast<std::size_t>(v)],
                         ds.DefVar(VarName(kind, v), vtype,
                                   {d_blocks, d_z, d_y, d_x}));
  }

  int v_lref = -1, v_ntype = -1, v_gid = -1, v_coord = -1, v_bsize = -1,
      v_bnd = -1;
  if (kind == FileKind::kCheckpoint) {
    PNC_ASSIGN_OR_RETURN(int d_dim, ds.DefDim("ndim", 3));
    PNC_ASSIGN_OR_RETURN(int d_gid, ds.DefDim("gid_entries",
                                              FlashData::kGidEntries));
    PNC_ASSIGN_OR_RETURN(int d_two, ds.DefDim("two", 2));
    PNC_ASSIGN_OR_RETURN(v_lref,
                         ds.DefVar("lrefine", NcType::kInt, {d_blocks}));
    PNC_ASSIGN_OR_RETURN(v_ntype,
                         ds.DefVar("nodetype", NcType::kInt, {d_blocks}));
    PNC_ASSIGN_OR_RETURN(v_gid,
                         ds.DefVar("gid", NcType::kInt, {d_blocks, d_gid}));
    PNC_ASSIGN_OR_RETURN(
        v_coord, ds.DefVar("coordinates", NcType::kDouble, {d_blocks, d_dim}));
    PNC_ASSIGN_OR_RETURN(
        v_bsize, ds.DefVar("blocksize", NcType::kDouble, {d_blocks, d_dim}));
    PNC_ASSIGN_OR_RETURN(
        v_bnd, ds.DefVar("bounding_box", NcType::kDouble,
                         {d_blocks, d_dim, d_two}));
  }
  PNC_RETURN_IF_ERROR(ds.PutAttText(pnetcdf::kGlobal, "file_kind",
                                    kind == FileKind::kCheckpoint
                                        ? "checkpoint"
                                        : (corners ? "plotfile_corners"
                                                   : "plotfile")));
  PNC_RETURN_IF_ERROR(ds.EndDef());

  const std::uint64_t start[] = {b0, 0, 0, 0};
  const std::uint64_t count[] = {blocks, fz, fy, fx};

  if (kind == FileKind::kCheckpoint) {
    // Unknowns go straight from the guarded in-memory blocks through the
    // flexible API: the subarray datatype strips the guard cells without an
    // application-side copy (§4.1's reason for the flexible interface).
    const std::uint64_t msizes[] = {blocks, cfg.guarded(cfg.nzb),
                                    cfg.guarded(cfg.nyb), cfg.guarded(cfg.nxb)};
    const std::uint64_t msub[] = {blocks, static_cast<std::uint64_t>(cfg.nzb),
                                  static_cast<std::uint64_t>(cfg.nyb),
                                  static_cast<std::uint64_t>(cfg.nxb)};
    const std::uint64_t mstart[] = {0, static_cast<std::uint64_t>(cfg.nguard),
                                    static_cast<std::uint64_t>(cfg.nguard),
                                    static_cast<std::uint64_t>(cfg.nguard)};
    auto buftype =
        simmpi::Datatype::Subarray(msizes, msub, mstart, simmpi::DoubleType());
    if (!buftype.ok()) return buftype.status();
    std::vector<double> scratch;
    for (int v = 0; v < nvars; ++v) {
      data.FillUnk(v, scratch);
      PNC_RETURN_IF_ERROR(ds.PutVaraAllFlex(
          varids[static_cast<std::size_t>(v)], start, count, scratch.data(),
          1, buftype.value()));
    }
    // Tree metadata.
    const std::uint64_t s1[] = {b0};
    const std::uint64_t c1[] = {blocks};
    PNC_RETURN_IF_ERROR(ds.PutVaraAll<std::int32_t>(v_lref, s1, c1,
                                                    data.lrefine()));
    PNC_RETURN_IF_ERROR(ds.PutVaraAll<std::int32_t>(v_ntype, s1, c1,
                                                    data.nodetype()));
    const std::uint64_t s2[] = {b0, 0};
    const std::uint64_t c2g[] = {blocks, FlashData::kGidEntries};
    PNC_RETURN_IF_ERROR(ds.PutVaraAll<std::int32_t>(v_gid, s2, c2g,
                                                    data.gid()));
    const std::uint64_t c2d[] = {blocks, 3};
    PNC_RETURN_IF_ERROR(ds.PutVaraAll<double>(v_coord, s2, c2d, data.coord()));
    PNC_RETURN_IF_ERROR(ds.PutVaraAll<double>(v_bsize, s2, c2d, data.bsize()));
    const std::uint64_t s3[] = {b0, 0, 0};
    const std::uint64_t c3[] = {blocks, 3, 2};
    PNC_RETURN_IF_ERROR(ds.PutVaraAll<double>(v_bnd, s3, c3, data.bnd_box()));
  } else {
    // Plotfiles: FLASH packs single-precision contiguous buffers first.
    auto& clk = ds.comm().clock();
    for (int v = 0; v < nvars; ++v) {
      auto packed = corners ? data.PackCornerVar(v) : data.PackPlotVar(v);
      clk.Advance(ds.comm().cost().CopyCost(packed.size() * 4));
      PNC_RETURN_IF_ERROR(ds.PutVaraAll<float>(
          varids[static_cast<std::size_t>(v)], start, count, packed));
    }
  }
  return ds.Close();
}

// ---------------------------------------------------------- hdf5lite path

pnc::Status WriteFlashHdf5lite(simmpi::Comm& comm, pfs::FileSystem& fs,
                               const std::string& path, const FlashData& data,
                               FileKind kind, const simmpi::Info& info) {
  const auto& cfg = data.config();
  const int nprocs = comm.size();
  const auto blocks = static_cast<std::uint64_t>(cfg.blocks_per_proc);
  const std::uint64_t tot_blocks = blocks * static_cast<std::uint64_t>(nprocs);
  const std::uint64_t b0 = blocks * static_cast<std::uint64_t>(comm.rank());

  auto fr = hdf5lite::File::Create(comm, fs, path, info);
  if (!fr.ok()) return fr.status();
  auto f = std::move(fr).value();

  const bool corners = kind == FileKind::kPlotfileCorners;
  const std::uint64_t fz = static_cast<std::uint64_t>(cfg.nzb) + (corners ? 1 : 0);
  const std::uint64_t fy = static_cast<std::uint64_t>(cfg.nyb) + (corners ? 1 : 0);
  const std::uint64_t fx = static_cast<std::uint64_t>(cfg.nxb) + (corners ? 1 : 0);
  const std::uint64_t dims[] = {tot_blocks, fz, fy, fx};
  const std::uint64_t start[] = {b0, 0, 0, 0};
  const std::uint64_t count[] = {blocks, fz, fy, fx};

  const int nvars = kind == FileKind::kCheckpoint ? cfg.nvar : cfg.nplot;
  const NcType vtype =
      kind == FileKind::kCheckpoint ? NcType::kDouble : NcType::kFloat;

  // Every variable is its own dataset: collective create, hyperslab write,
  // collective close — the per-object costs the paper measures.
  std::vector<double> scratch;
  for (int v = 0; v < nvars; ++v) {
    auto dsr = f.CreateDataset(VarName(kind, v), vtype, dims);
    if (!dsr.ok()) return dsr.status();
    auto ds = std::move(dsr).value();
    if (kind == FileKind::kCheckpoint) {
      const std::uint64_t mdims[] = {blocks, cfg.guarded(cfg.nzb),
                                     cfg.guarded(cfg.nyb),
                                     cfg.guarded(cfg.nxb)};
      const std::uint64_t mstart[] = {0,
                                      static_cast<std::uint64_t>(cfg.nguard),
                                      static_cast<std::uint64_t>(cfg.nguard),
                                      static_cast<std::uint64_t>(cfg.nguard)};
      data.FillUnk(v, scratch);
      PNC_RETURN_IF_ERROR(
          ds.Write(start, count, scratch.data(), mdims, mstart));
    } else {
      auto packed = corners ? data.PackCornerVar(v) : data.PackPlotVar(v);
      comm.clock().Advance(comm.cost().CopyCost(packed.size() * 4));
      PNC_RETURN_IF_ERROR(ds.Write(start, count, packed.data()));
    }
    PNC_RETURN_IF_ERROR(ds.Close());
  }

  if (kind == FileKind::kCheckpoint) {
    auto write_meta = [&](const std::string& name, NcType t,
                          std::span<const std::uint64_t> extra,
                          const void* buf) -> pnc::Status {
      std::vector<std::uint64_t> d{tot_blocks};
      d.insert(d.end(), extra.begin(), extra.end());
      auto dsr = f.CreateDataset(name, t, d);
      if (!dsr.ok()) return dsr.status();
      auto ds = std::move(dsr).value();
      std::vector<std::uint64_t> s(d.size(), 0), c = d;
      s[0] = b0;
      c[0] = blocks;
      PNC_RETURN_IF_ERROR(ds.Write(s, c, buf));
      return ds.Close();
    };
    const std::uint64_t e_gid[] = {FlashData::kGidEntries};
    const std::uint64_t e_dim[] = {3};
    const std::uint64_t e_box[] = {3, 2};
    PNC_RETURN_IF_ERROR(
        write_meta("lrefine", NcType::kInt, {}, data.lrefine().data()));
    PNC_RETURN_IF_ERROR(
        write_meta("nodetype", NcType::kInt, {}, data.nodetype().data()));
    PNC_RETURN_IF_ERROR(
        write_meta("gid", NcType::kInt, e_gid, data.gid().data()));
    PNC_RETURN_IF_ERROR(
        write_meta("coordinates", NcType::kDouble, e_dim, data.coord().data()));
    PNC_RETURN_IF_ERROR(
        write_meta("blocksize", NcType::kDouble, e_dim, data.bsize().data()));
    PNC_RETURN_IF_ERROR(
        write_meta("bounding_box", NcType::kDouble, e_box,
                   data.bnd_box().data()));
  }
  return f.Close();
}

// ---------------------------------------------------------------- restart

pnc::Status RestartReadUnk(simmpi::Comm& comm, pnetcdf::Dataset& checkpoint,
                           const FlashConfig& cfg, int var,
                           std::vector<double>& guarded) {
  const auto blocks = static_cast<std::uint64_t>(cfg.blocks_per_proc);
  const std::uint64_t b0 = blocks * static_cast<std::uint64_t>(comm.rank());
  const std::uint64_t msizes[] = {blocks, cfg.guarded(cfg.nzb),
                                  cfg.guarded(cfg.nyb), cfg.guarded(cfg.nxb)};
  guarded.assign(pnc::ShapeProduct(msizes), -1.0);

  PNC_ASSIGN_OR_RETURN(int vid,
                       checkpoint.VarId(VarName(FileKind::kCheckpoint, var)));
  const std::uint64_t msub[] = {blocks, static_cast<std::uint64_t>(cfg.nzb),
                                static_cast<std::uint64_t>(cfg.nyb),
                                static_cast<std::uint64_t>(cfg.nxb)};
  const std::uint64_t mstart[] = {0, static_cast<std::uint64_t>(cfg.nguard),
                                  static_cast<std::uint64_t>(cfg.nguard),
                                  static_cast<std::uint64_t>(cfg.nguard)};
  auto buftype =
      simmpi::Datatype::Subarray(msizes, msub, mstart, simmpi::DoubleType());
  if (!buftype.ok()) return buftype.status();

  const std::uint64_t start[] = {b0, 0, 0, 0};
  const std::uint64_t count[] = {blocks, static_cast<std::uint64_t>(cfg.nzb),
                                 static_cast<std::uint64_t>(cfg.nyb),
                                 static_cast<std::uint64_t>(cfg.nxb)};
  return checkpoint.GetVaraAllFlex(vid, start, count, guarded.data(), 1,
                                   buftype.value());
}

// ------------------------------------------------------------- validation

pnc::Status ValidateFlashPnetcdf(pfs::FileSystem& fs, const std::string& path,
                                 const FlashConfig& cfg, int nprocs,
                                 FileKind kind) {
  auto dsr = netcdf::Dataset::Open(fs, path, /*writable=*/false);
  if (!dsr.ok()) return dsr.status();
  auto ds = std::move(dsr).value();

  const bool corners = kind == FileKind::kPlotfileCorners;
  const auto blocks = static_cast<std::uint64_t>(cfg.blocks_per_proc);
  const int nvars = kind == FileKind::kCheckpoint ? cfg.nvar : cfg.nplot;
  if (ds.nvars() < nvars) return pnc::Status(pnc::Err::kNotVar, "var count");

  // Spot-check: first and last interior cell of the first and last block of
  // every rank, for variable 0 and nvars-1.
  for (int v : {0, nvars - 1}) {
    PNC_ASSIGN_OR_RETURN(int vid, ds.VarId(VarName(kind, v)));
    for (int r : {0, nprocs - 1}) {
      for (std::uint64_t b : {std::uint64_t{0}, blocks - 1}) {
        const std::uint64_t gb = static_cast<std::uint64_t>(r) * blocks + b;
        const std::uint64_t idx[] = {gb, 0, 0, 0};
        double got = 0;
        if (kind == FileKind::kCheckpoint) {
          PNC_RETURN_IF_ERROR(ds.GetVar1<double>(vid, idx, got));
        } else {
          float gf = 0;
          PNC_RETURN_IF_ERROR(ds.GetVar1<float>(vid, idx, gf));
          got = gf;
        }
        double expect;
        if (corners) {
          // Corner (0,0,0) averages the 8 cells around the interior origin.
          FlashData probe(cfg, r);
          expect = static_cast<double>(
              probe.PackCornerVar(v)[b * static_cast<std::uint64_t>(cfg.nzb + 1) *
                                     static_cast<std::uint64_t>(cfg.nyb + 1) *
                                     static_cast<std::uint64_t>(cfg.nxb + 1)]);
        } else {
          expect = CellValue(r, v, static_cast<int>(b), 0, 0, 0);
          if (kind != FileKind::kCheckpoint)
            expect = static_cast<double>(static_cast<float>(expect));
        }
        if (got != expect)
          return pnc::Status(pnc::Err::kInternal,
                             "flash validation mismatch at " + VarName(kind, v));
      }
    }
  }
  return pnc::Status::Ok();
}

}  // namespace flashio
