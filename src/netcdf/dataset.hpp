// Serial netCDF library (the nc_* interface, C++ style).
//
// Implements the five function categories of the classic interface
// (paper §3.2):
//   (1) dataset functions      — Create/Open/Redef/EndDef/Sync/Abort/Close
//   (2) define mode functions  — DefDim/DefVar/Rename*
//   (3) attribute functions    — PutAtt/GetAtt/DelAtt/RenameAtt
//   (4) inquiry functions      — header(), DimId/VarId, counts
//   (5) data access functions  — Put/Get Var1, Var, Vara, Vars, Varm
//
// Single-process semantics; I/O goes through a user-space buffered layer
// over the (simulated) file system, independent of MPI-IO — this is the
// baseline the paper compares PnetCDF against in Figure 6.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "format/convert.hpp"
#include "format/header.hpp"
#include "format/layout.hpp"
#include "netcdf/buffered_file.hpp"
#include "pfs/pfs.hpp"

namespace netcdf {

/// Pass as the dimension length to DefDim for the unlimited dimension.
constexpr std::uint64_t kUnlimited = 0;
/// Pass as varid to the attribute functions for global attributes.
constexpr int kGlobal = -1;

/// Fill behaviour (nc_set_fill). Default here is NoFill: unwritten regions
/// read back as zero bytes. Fill mode writes the classic fill values.
enum class FillMode { kNoFill, kFill };

/// Classic fill values (netcdf.h NC_FILL_*).
constexpr signed char kFillByte = -127;
constexpr char kFillChar = 0;
constexpr std::int16_t kFillShort = -32767;
constexpr std::int32_t kFillInt = -2147483647;
constexpr float kFillFloat = 9.9692099683868690e+36f;
constexpr double kFillDouble = 9.9692099683868690e+36;

struct CreateOptions {
  bool clobber = true;     ///< overwrite an existing dataset
  bool use_cdf2 = true;    ///< 64-bit-offset format (version byte 2)
  std::uint64_t buffer_size = 1ULL << 20;  ///< user-space I/O buffer
};

/// An open dataset handle (the C API's ncid). Copyable; copies alias the
/// same open file.
class Dataset {
 public:
  static pnc::Result<Dataset> Create(pfs::FileSystem& fs,
                                     const std::string& path,
                                     const CreateOptions& opts = {});
  static pnc::Result<Dataset> Open(pfs::FileSystem& fs, const std::string& path,
                                   bool writable,
                                   std::uint64_t buffer_size = 1ULL << 20);

  Dataset() = default;
  [[nodiscard]] bool valid() const { return impl_ != nullptr; }

  // ---- (1) dataset functions ----
  pnc::Status Redef();
  pnc::Status EndDef();
  pnc::Status Sync();
  pnc::Status Close();
  /// Discard changes made in define mode; a freshly created file is deleted.
  pnc::Status Abort();
  pnc::Status SetFill(FillMode m);

  // ---- (2) define mode functions ----
  pnc::Result<int> DefDim(const std::string& name, std::uint64_t len);
  pnc::Result<int> DefVar(const std::string& name, ncformat::NcType type,
                          std::vector<std::int32_t> dimids);
  pnc::Status RenameDim(int dimid, const std::string& name);
  pnc::Status RenameVar(int varid, const std::string& name);

  // ---- (3) attribute functions ----
  pnc::Status PutAtt(int varid, ncformat::Attr att);
  pnc::Status PutAttText(int varid, const std::string& name,
                         std::string_view text);
  template <typename T>
  pnc::Status PutAttValues(int varid, const std::string& name,
                           ncformat::NcType type, std::span<const T> values);
  pnc::Result<ncformat::Attr> GetAtt(int varid, const std::string& name) const;
  pnc::Status DelAtt(int varid, const std::string& name);
  pnc::Status RenameAtt(int varid, const std::string& old_name,
                        const std::string& new_name);

  // ---- (4) inquiry functions ----
  [[nodiscard]] const ncformat::Header& header() const;
  [[nodiscard]] int ndims() const;
  [[nodiscard]] int nvars() const;
  [[nodiscard]] int ngatts() const;
  [[nodiscard]] int unlimdim() const;
  [[nodiscard]] std::uint64_t numrecs() const;
  pnc::Result<int> DimId(const std::string& name) const;
  pnc::Result<int> VarId(const std::string& name) const;

  // ---- (5) data access functions ----
  template <typename T>
  pnc::Status PutVara(int varid, std::span<const std::uint64_t> start,
                      std::span<const std::uint64_t> count,
                      std::span<const T> data) {
    return PutVars<T>(varid, start, count, {}, data);
  }
  template <typename T>
  pnc::Status GetVara(int varid, std::span<const std::uint64_t> start,
                      std::span<const std::uint64_t> count, std::span<T> out) {
    return GetVars<T>(varid, start, count, {}, out);
  }
  template <typename T>
  pnc::Status PutVars(int varid, std::span<const std::uint64_t> start,
                      std::span<const std::uint64_t> count,
                      std::span<const std::uint64_t> stride,
                      std::span<const T> data);
  template <typename T>
  pnc::Status GetVars(int varid, std::span<const std::uint64_t> start,
                      std::span<const std::uint64_t> count,
                      std::span<const std::uint64_t> stride, std::span<T> out);
  /// Mapped access: imap[d] = distance in elements between consecutive
  /// indices of dimension d in the caller's memory.
  template <typename T>
  pnc::Status PutVarm(int varid, std::span<const std::uint64_t> start,
                      std::span<const std::uint64_t> count,
                      std::span<const std::uint64_t> stride,
                      std::span<const std::uint64_t> imap,
                      std::span<const T> data);
  template <typename T>
  pnc::Status GetVarm(int varid, std::span<const std::uint64_t> start,
                      std::span<const std::uint64_t> count,
                      std::span<const std::uint64_t> stride,
                      std::span<const std::uint64_t> imap, std::span<T> out);
  template <typename T>
  pnc::Status PutVar1(int varid, std::span<const std::uint64_t> index, T value);
  template <typename T>
  pnc::Status GetVar1(int varid, std::span<const std::uint64_t> index, T& out);
  /// Whole-variable access (all records for record variables).
  template <typename T>
  pnc::Status PutVar(int varid, std::span<const T> data);
  template <typename T>
  pnc::Status GetVar(int varid, std::span<T> out);

  /// Virtual clock of this (single-process) dataset; the Figure 6 serial
  /// baseline reads it to compute bandwidth.
  [[nodiscard]] simmpi::VirtualClock& clock();

 private:
  struct Impl;

  pnc::Status CheckDataMode(bool need_write) const;
  pnc::Status CheckDefineMode() const;
  /// Shared validation + region generation for data access. On success the
  /// staging buffer holds exactly the external bytes to move.
  pnc::Status PutExternal(int varid, std::span<const std::uint64_t> start,
                          std::span<const std::uint64_t> count,
                          std::span<const std::uint64_t> stride,
                          pnc::ConstByteSpan external);
  pnc::Status GetExternal(int varid, std::span<const std::uint64_t> start,
                          std::span<const std::uint64_t> count,
                          std::span<const std::uint64_t> stride,
                          pnc::ByteSpan external);
  pnc::Status WriteHeader();
  pnc::Status WriteNumrecs();
  pnc::Status MoveDataForRelayout(const ncformat::Header& old_header);
  pnc::Status FillVariable(int varid, std::uint64_t rec_from,
                           std::uint64_t rec_to);
  pnc::Status FillNewSpace(const ncformat::Header* old_header);

  std::shared_ptr<Impl> impl_;
};

// ----------------------------------------------------------------- inline
// Typed data-access fronts: convert between T and the variable's external
// type through a staging buffer, then move external bytes.

template <typename T>
pnc::Status Dataset::PutVars(int varid, std::span<const std::uint64_t> start,
                             std::span<const std::uint64_t> count,
                             std::span<const std::uint64_t> stride,
                             std::span<const T> data) {
  PNC_RETURN_IF_ERROR(CheckDataMode(/*need_write=*/true));
  PNC_RETURN_IF_ERROR(ncformat::ValidateAccess(header(), varid, start, count,
                                               stride,
                                               ncformat::AccessKind::kWrite));
  const std::uint64_t nelems = ncformat::AccessElems(count);
  if (data.size() < nelems) return pnc::Status(pnc::Err::kInvalidArg, "buffer");
  const auto& v = header().vars[static_cast<std::size_t>(varid)];
  std::vector<std::byte> ext(nelems * ncformat::TypeSize(v.type));
  // NC_ERANGE semantics: conversion completes, the error is reported after
  // the data has been written.
  pnc::Status conv = ncformat::ToExternal<T>(data.first(nelems), v.type,
                                             ext.data());
  if (!conv.ok() && conv.code() != pnc::Err::kRange) return conv;
  PNC_RETURN_IF_ERROR(PutExternal(varid, start, count, stride, ext));
  return conv;
}

template <typename T>
pnc::Status Dataset::GetVars(int varid, std::span<const std::uint64_t> start,
                             std::span<const std::uint64_t> count,
                             std::span<const std::uint64_t> stride,
                             std::span<T> out) {
  PNC_RETURN_IF_ERROR(CheckDataMode(/*need_write=*/false));
  PNC_RETURN_IF_ERROR(ncformat::ValidateAccess(header(), varid, start, count,
                                               stride,
                                               ncformat::AccessKind::kRead));
  const std::uint64_t nelems = ncformat::AccessElems(count);
  if (out.size() < nelems) return pnc::Status(pnc::Err::kInvalidArg, "buffer");
  const auto& v = header().vars[static_cast<std::size_t>(varid)];
  std::vector<std::byte> ext(nelems * ncformat::TypeSize(v.type));
  PNC_RETURN_IF_ERROR(GetExternal(varid, start, count, stride, ext));
  return ncformat::FromExternal<T>(ext.data(), v.type, out.first(nelems));
}

template <typename T>
pnc::Status Dataset::PutVarm(int varid, std::span<const std::uint64_t> start,
                             std::span<const std::uint64_t> count,
                             std::span<const std::uint64_t> stride,
                             std::span<const std::uint64_t> imap,
                             std::span<const T> data) {
  if (imap.empty()) return PutVars<T>(varid, start, count, stride, data);
  if (imap.size() != count.size())
    return pnc::Status(pnc::Err::kInvalidArg, "imap rank");
  const std::uint64_t nelems = ncformat::AccessElems(count);
  std::vector<T> tmp(nelems);
  // Gather from mapped memory into canonical row-major order.
  std::vector<std::uint64_t> idx(count.size(), 0);
  for (std::uint64_t e = 0; e < nelems; ++e) {
    std::uint64_t m = 0;
    for (std::size_t d = 0; d < count.size(); ++d) m += idx[d] * imap[d];
    tmp[e] = data[m];
    for (std::size_t d = count.size(); d-- > 0;) {
      if (++idx[d] < count[d]) break;
      idx[d] = 0;
    }
  }
  return PutVars<T>(varid, start, count, stride, std::span<const T>(tmp));
}

template <typename T>
pnc::Status Dataset::GetVarm(int varid, std::span<const std::uint64_t> start,
                             std::span<const std::uint64_t> count,
                             std::span<const std::uint64_t> stride,
                             std::span<const std::uint64_t> imap,
                             std::span<T> out) {
  if (imap.empty()) return GetVars<T>(varid, start, count, stride, out);
  if (imap.size() != count.size())
    return pnc::Status(pnc::Err::kInvalidArg, "imap rank");
  const std::uint64_t nelems = ncformat::AccessElems(count);
  std::vector<T> tmp(nelems);
  PNC_RETURN_IF_ERROR(GetVars<T>(varid, start, count, stride, std::span<T>(tmp)));
  std::vector<std::uint64_t> idx(count.size(), 0);
  for (std::uint64_t e = 0; e < nelems; ++e) {
    std::uint64_t m = 0;
    for (std::size_t d = 0; d < count.size(); ++d) m += idx[d] * imap[d];
    out[m] = tmp[e];
    for (std::size_t d = count.size(); d-- > 0;) {
      if (++idx[d] < count[d]) break;
      idx[d] = 0;
    }
  }
  return pnc::Status::Ok();
}

template <typename T>
pnc::Status Dataset::PutVar1(int varid, std::span<const std::uint64_t> index,
                             T value) {
  std::vector<std::uint64_t> count(index.size(), 1);
  return PutVars<T>(varid, index, count, {}, std::span<const T>(&value, 1));
}

template <typename T>
pnc::Status Dataset::GetVar1(int varid, std::span<const std::uint64_t> index,
                             T& out) {
  std::vector<std::uint64_t> count(index.size(), 1);
  return GetVars<T>(varid, index, count, {}, std::span<T>(&out, 1));
}

template <typename T>
pnc::Status Dataset::PutVar(int varid, std::span<const T> data) {
  if (varid < 0 || varid >= nvars()) return pnc::Status(pnc::Err::kNotVar);
  auto shape = header().VarShape(varid);
  // Whole-variable put on a record variable with zero records: infer the
  // record count from the data size, as the reference library does.
  if (header().IsRecordVar(varid)) {
    const std::uint64_t per_rec = header().VarInstanceElems(varid);
    if (per_rec > 0) shape[0] = data.size() / per_rec;
  }
  std::vector<std::uint64_t> start(shape.size(), 0);
  return PutVars<T>(varid, start, shape, {}, data);
}

template <typename T>
pnc::Status Dataset::GetVar(int varid, std::span<T> out) {
  if (varid < 0 || varid >= nvars()) return pnc::Status(pnc::Err::kNotVar);
  auto shape = header().VarShape(varid);
  std::vector<std::uint64_t> start(shape.size(), 0);
  return GetVars<T>(varid, start, shape, {}, out);
}

template <typename T>
pnc::Status Dataset::PutAttValues(int varid, const std::string& name,
                                  ncformat::NcType type,
                                  std::span<const T> values) {
  if (sizeof(T) != ncformat::TypeSize(type))
    return pnc::Status(pnc::Err::kBadType, "attribute value width");
  ncformat::Attr a = ncformat::Attr::Numeric<T>(name, type, values);
  return PutAtt(varid, std::move(a));
}

}  // namespace netcdf
