#include "netcdf/dataset.hpp"

#include <algorithm>
#include <cstring>

#include "format/commit.hpp"
#include "format/commit_pfs.hpp"
#include "format/header_io.hpp"
#include "format/sums.hpp"
#include "iostat/events.hpp"
#include "iostat/iostat.hpp"
#include "util/crc32.hpp"

namespace netcdf {

using ncformat::Attr;
using ncformat::Header;
using ncformat::NcType;

struct Dataset::Impl {
  Impl(pfs::FileSystem* filesystem, pfs::File f, std::string p, bool w,
       std::uint64_t bufsize)
      : fs(filesystem), path(std::move(p)), writable(w),
        io(std::move(f), &clock, bufsize) {}

  pfs::FileSystem* fs;
  std::string path;
  bool writable;
  int tenant = 0;  ///< pfs tenant index (from PNC_TENANT/PNC_QOS_*)
  simmpi::VirtualClock clock;
  BufferedFile io;

  Header header;
  bool defining = false;
  bool fresh = false;          ///< created this session, EndDef not yet run
  bool numrecs_dirty = false;  ///< numrecs grew in data mode
  FillMode fill = FillMode::kNoFill;
  std::optional<Header> pre_redef;  ///< snapshot for Abort/relayout

  // Crash consistency: the sidecar commit journal and the last committed
  // state (see format/commit.hpp). Absent for legacy files opened without a
  // journal — those keep the pre-journal in-place update behaviour.
  std::optional<ncformat::PfsCommitIo> journal;
  std::optional<ncformat::CommitState> commit;

  // Data integrity (format/sums.hpp): the chunk-sum map attached to `io`
  // plus the `.ncsum` sidecar it is committed through. Armed only when
  // PNC_SUMS is on (the default); disarmed, none of this exists and runs
  // are bit-identical to a build without the subsystem. The serial
  // library is single-writer, so verify-on-read is safe even in writable
  // sessions: this session's own writes are exactly the dirty set.
  std::optional<ncformat::PfsCommitIo> sums_io;
  ncformat::ChunkSumMap sums;
  ncformat::SumsState sums_state;
  bool sums_on = false;
  bool data_corrupt = false;  ///< sticky: a read surfaced kDataCorrupt

  pnc::Status FlushSums(bool closing);
  pnc::Status SetupOpenSums(bool open_writable);
};

namespace {

/// First byte of the data region: the lowest variable begin offset.
/// 0 when no variables exist (the file has no data region yet).
std::uint64_t DataBeginOf(const Header& h) {
  std::uint64_t db = 0;
  bool first = true;
  for (const auto& v : h.vars) {
    if (first || v.begin < db) db = v.begin;
    first = false;
  }
  return first ? 0 : db;
}

}  // namespace

/// Recompute every dirty chunk from the (durable) file bytes and commit the
/// map through the `.ncsum` sidecar. `closing` clears the session-open
/// marker, making the table trustworthy for later opens; a mid-session
/// flush keeps it open so a later crash still degrades to "unsummed".
pnc::Status Dataset::Impl::FlushSums(bool closing) {
  if (!sums_on || !sums_io) return pnc::Status::Ok();
  if (sums.chunk_size() != 0) {
    const std::uint64_t fsize = io.size();
    std::vector<std::byte> buf;
    for (const std::uint64_t c : sums.dirty()) {
      const std::uint64_t cstart = sums.ChunkStart(c);
      if (cstart >= fsize) continue;
      const std::uint64_t clen =
          std::min<std::uint64_t>(sums.chunk_size(), fsize - cstart);
      buf.resize(clen);
      PNC_RETURN_IF_ERROR(io.ReadAt(cstart, pnc::ByteSpan(buf.data(), clen)));
      sums.Set(c, ncformat::ChunkSum{
                      static_cast<std::uint32_t>(clen),
                      pnc::Crc32(pnc::ConstByteSpan(buf.data(), clen))});
    }
    sums.ClearDirty();
  }
  return ncformat::CommitSums(*sums_io, sums, /*open=*/!closing, &sums_state);
}

/// Arm the integrity subsystem for an opened (not freshly created) dataset.
/// Writable opens mark the sidecar session-open *before* any data write can
/// land; read-only opens attach verification only when a trusted, closed
/// table exists whose geometry matches the live header.
pnc::Status Dataset::Impl::SetupOpenSums(bool open_writable) {
  if (!ncformat::SumsEnabled()) return pnc::Status::Ok();
  const std::string spath = ncformat::SumsPath(path);
  const bool existed = fs->Exists(spath);
  if (!existed && !open_writable) return pnc::Status::Ok();
  auto sf = existed ? fs->Open(spath) : fs->Create(spath, /*exclusive=*/false);
  if (!sf.ok()) return sf.status();
  sf.value().SetTenant(tenant);
  sums_io.emplace(std::move(sf).value(), &clock);
  if (!existed) PNC_RETURN_IF_ERROR(ncformat::FormatSums(*sums_io));
  auto loaded = ncformat::LoadSums(*sums_io);
  if (!loaded.ok()) return loaded.status();
  sums_state = loaded.value().state;
  const std::uint64_t db = DataBeginOf(header);
  // A sidecar whose recorded geometry disagrees with the live header (e.g.
  // stale after an out-of-band rewrite of the primary) is discarded rather
  // than risking false corruption verdicts.
  const bool trusted =
      loaded.value().trusted && loaded.value().map.data_begin() == db;
  if (trusted) {
    sums = std::move(loaded.value().map);
  } else {
    sums.Clear();
    sums.SetGeometry(ncformat::SumChunkSize(), db);
  }
  if (open_writable) {
    PNC_RETURN_IF_ERROR(
        ncformat::CommitSums(*sums_io, sums, /*open=*/true, &sums_state));
  } else if (!trusted) {
    sums_io.reset();  // nothing trustworthy to verify against
    return pnc::Status::Ok();
  }
  sums_on = true;
  io.AttachSums(&sums, /*verify=*/true);
  return pnc::Status::Ok();
}

// ------------------------------------------------------------ lifecycle

pnc::Result<Dataset> Dataset::Create(pfs::FileSystem& fs,
                                     const std::string& path,
                                     const CreateOptions& opts) {
  auto f = fs.Create(path, /*exclusive=*/!opts.clobber);
  if (!f.ok()) return f.status();
  // The serial library has no Info path, so tenant identity comes from the
  // environment alone (PNC_TENANT/PNC_QOS_*); sidecars bill to it too.
  const int tenant = fs.RegisterTenant(pfs::TenantClassFromEnv());
  f.value().SetTenant(tenant);
  Dataset ds;
  ds.impl_ = std::make_shared<Impl>(&fs, std::move(f).value(), path,
                                    /*writable=*/true, opts.buffer_size);
  auto& im = *ds.impl_;
  im.tenant = tenant;
  im.header.version = opts.use_cdf2 ? 2 : 1;
  im.defining = true;
  im.fresh = true;
  // Create-and-format the sidecar journal, truncating any stale one left by
  // a previous file at this path so its commits can never be replayed.
  auto jf = fs.Create(ncformat::JournalPath(path), /*exclusive=*/false);
  if (!jf.ok()) return jf.status();
  jf.value().SetTenant(tenant);
  im.journal.emplace(std::move(jf).value(), &im.clock);
  PNC_RETURN_IF_ERROR(ncformat::FormatJournal(*im.journal));
  // Same for the chunk-sum sidecar: format (wiping any stale table) and
  // attach. No geometry yet — EndDef sets it once the data region exists.
  // Nothing is committed before then, so a crash leaves it untrusted.
  if (ncformat::SumsEnabled()) {
    auto sf = fs.Create(ncformat::SumsPath(path), /*exclusive=*/false);
    if (!sf.ok()) return sf.status();
    sf.value().SetTenant(tenant);
    im.sums_io.emplace(std::move(sf).value(), &im.clock);
    PNC_RETURN_IF_ERROR(ncformat::FormatSums(*im.sums_io));
    im.sums_on = true;
    im.io.AttachSums(&im.sums, /*verify=*/true);
  }
  return ds;
}

pnc::Result<Dataset> Dataset::Open(pfs::FileSystem& fs, const std::string& path,
                                   bool writable, std::uint64_t buffer_size) {
  auto f = fs.Open(path);
  if (!f.ok()) return f.status();
  const int tenant = fs.RegisterTenant(pfs::TenantClassFromEnv());
  f.value().SetTenant(tenant);
  Dataset ds;
  ds.impl_ = std::make_shared<Impl>(&fs, f.value(), path, writable,
                                    buffer_size);
  auto& im = *ds.impl_;
  im.tenant = tenant;

  // Crash recovery before anything trusts the on-disk header: if a journal
  // exists and holds a committed state the primary does not match, roll the
  // primary back/forward to it (in place when writable; in memory only for a
  // read-only open).
  std::optional<Header> recovered;
  if (fs.Exists(ncformat::JournalPath(path))) {
    auto jf = fs.Open(ncformat::JournalPath(path));
    if (!jf.ok()) return jf.status();
    jf.value().SetTenant(tenant);
    im.journal.emplace(std::move(jf).value(), &im.clock);
    ncformat::PfsCommitIo primary(f.value(), &im.clock);
    auto rep = ncformat::AnalyzeCommit(*im.journal, primary);
    if (!rep.ok()) return rep.status();
    const ncformat::VerifyReport& r = rep.value();
    if (r.has_commit) im.commit = r.committed;
    if (r.state == ncformat::FileState::kCorrupt && r.has_commit)
      return pnc::Status(pnc::Err::kNotNc, "unrecoverable: " + r.detail);
    if (r.state == ncformat::FileState::kTornRecoverable) {
      if (writable) {
        PNC_RETURN_IF_ERROR(ncformat::RepairFromReport(r, primary));
      } else {
        auto h = Header::Decode(r.committed_header);
        if (!h.ok()) return h.status();
        recovered = std::move(h).value();
      }
    }
  }

  if (recovered) {
    // Torn primary, recovered in memory only: the on-disk bytes do not
    // match what this session sees, so attaching sums (written against the
    // repaired view) could only mislead. Run without them.
    im.header = *std::move(recovered);
    return ds;
  }
  auto hdr = ncformat::ReadHeader(
      im.io.size(), [&im](std::uint64_t off, pnc::ByteSpan out) {
        PNC_IOSTAT_ADD(kNcHeaderBytesRead, out.size());
        return im.io.ReadAt(off, out);
      });
  if (!hdr.ok()) return hdr.status();
  im.header = std::move(hdr).value();
  PNC_RETURN_IF_ERROR(im.SetupOpenSums(writable));
  return ds;
}

pnc::Status Dataset::Redef() {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  auto& im = *impl_;
  if (im.defining) return pnc::Status(pnc::Err::kInDefine);
  if (!im.writable) return pnc::Status(pnc::Err::kPermission);
  im.pre_redef = im.header;
  im.defining = true;
  PNC_IOSTAT_ADD(kNcModeSwitches, 1);
  return pnc::Status::Ok();
}

pnc::Status Dataset::EndDef() {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  auto& im = *impl_;
  if (!im.defining) return pnc::Status(pnc::Err::kNotInDefine);

  Header old = im.pre_redef ? *im.pre_redef : Header{};
  const bool had_data = !im.fresh;
  // Keep the existing data_begin when the grown header still fits in front
  // of it: besides saving the copy, an in-place relayout is the one case the
  // commit protocol cannot make atomic (moves are interpreted by whichever
  // header survives the crash), so not moving is also the crash-safe choice.
  std::uint64_t min_begin = 0;
  if (had_data && im.pre_redef &&
      im.header.EncodedSize() <= im.pre_redef->data_begin())
    min_begin = im.pre_redef->data_begin();
  PNC_RETURN_IF_ERROR(im.header.ComputeLayout(min_begin));
  // Sum geometry follows the (possibly moved) data region. Set it before
  // the moves/fills below so their writes mark chunks dirty in the new
  // geometry; when the region moved, every committed sum is stale, so
  // re-sum all existing bytes at the next flush.
  if (im.sums_on) {
    const std::uint64_t db = DataBeginOf(im.header);
    if (im.sums.chunk_size() == 0 || im.sums.data_begin() != db) {
      const std::uint64_t cs = im.sums.chunk_size() != 0
                                   ? im.sums.chunk_size()
                                   : ncformat::SumChunkSize();
      im.sums.Clear();
      im.sums.SetGeometry(cs, db);
      if (had_data && im.io.size() > db)
        im.sums.MarkDirtyRange(db, im.io.size() - db);
    }
  }
  if (had_data && im.pre_redef) {
    PNC_RETURN_IF_ERROR(MoveDataForRelayout(*im.pre_redef));
  }
  // Data first, metadata last: fills and moved bytes land before the header
  // that makes them reachable commits, so a crash anywhere in between still
  // cold-opens as the old dataset.
  if (im.fill == FillMode::kFill) {
    PNC_RETURN_IF_ERROR(FillNewSpace(had_data ? &old : nullptr));
  }
  PNC_RETURN_IF_ERROR(WriteHeader());
  im.defining = false;
  im.fresh = false;
  im.pre_redef.reset();
  PNC_IOSTAT_ADD(kNcModeSwitches, 1);
  return pnc::Status::Ok();
}

pnc::Status Dataset::Sync() {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  auto& im = *impl_;
  if (im.defining) return pnc::Status(pnc::Err::kInDefine);
  if (im.numrecs_dirty) PNC_RETURN_IF_ERROR(WriteNumrecs());
  PNC_RETURN_IF_ERROR(im.io.Sync());
  // Data durable first, then the sums describing it (still session-open).
  return im.FlushSums(/*closing=*/false);
}

pnc::Status Dataset::Close() {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  auto& im = *impl_;
  if (im.defining) PNC_RETURN_IF_ERROR(EndDef());
  if (im.numrecs_dirty) PNC_RETURN_IF_ERROR(WriteNumrecs());
  PNC_RETURN_IF_ERROR(im.journal ? im.io.Sync() : im.io.Flush());
  // Final flush commits the table closed: only a session that reached this
  // point hands trustworthy sums to the next open. A sticky corrupt read
  // is re-reported here so a caller that ignored the data call cannot
  // mistake the dataset for healthy.
  PNC_RETURN_IF_ERROR(im.FlushSums(/*closing=*/true));
  if (im.data_corrupt)
    return pnc::Status(pnc::Err::kDataCorrupt,
                       "dataset read corrupt data this session");
  return pnc::Status::Ok();
}

pnc::Status Dataset::Abort() {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  auto& im = *impl_;
  if (im.defining && im.fresh) {
    (void)im.fs->Remove(ncformat::JournalPath(im.path));
    if (im.sums_io) (void)im.fs->Remove(ncformat::SumsPath(im.path));
    return im.fs->Remove(im.path);
  }
  if (im.defining && im.pre_redef) {
    im.header = *im.pre_redef;
    im.pre_redef.reset();
    im.defining = false;
  }
  return pnc::Status::Ok();
}

pnc::Status Dataset::SetFill(FillMode m) {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  impl_->fill = m;
  return pnc::Status::Ok();
}

// ----------------------------------------------------------- define mode

pnc::Status Dataset::CheckDefineMode() const {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  if (!impl_->defining) return pnc::Status(pnc::Err::kNotInDefine);
  if (!impl_->writable) return pnc::Status(pnc::Err::kPermission);
  return pnc::Status::Ok();
}

pnc::Status Dataset::CheckDataMode(bool need_write) const {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  if (impl_->defining) return pnc::Status(pnc::Err::kInDefine);
  if (need_write && !impl_->writable)
    return pnc::Status(pnc::Err::kPermission);
  return pnc::Status::Ok();
}

pnc::Result<int> Dataset::DefDim(const std::string& name, std::uint64_t len) {
  PNC_RETURN_IF_ERROR(CheckDefineMode());
  auto& h = impl_->header;
  if (h.FindDim(name) >= 0) return pnc::Status(pnc::Err::kNameInUse, name);
  if (len == kUnlimited && h.unlimited_dimid() >= 0)
    return pnc::Status(pnc::Err::kUnlimit, name);
  if (h.dims.size() >= ncformat::kMaxDims)
    return pnc::Status(pnc::Err::kMaxDims);
  h.dims.push_back({name, len});
  return static_cast<int>(h.dims.size()) - 1;
}

pnc::Result<int> Dataset::DefVar(const std::string& name, NcType type,
                                 std::vector<std::int32_t> dimids) {
  PNC_RETURN_IF_ERROR(CheckDefineMode());
  auto& h = impl_->header;
  if (h.FindVar(name) >= 0) return pnc::Status(pnc::Err::kNameInUse, name);
  if (h.vars.size() >= ncformat::kMaxVars)
    return pnc::Status(pnc::Err::kMaxVars);
  if (!ncformat::IsValidType(static_cast<std::int32_t>(type)))
    return pnc::Status(pnc::Err::kBadType, name);
  ncformat::Var v;
  v.name = name;
  v.type = type;
  v.dimids = std::move(dimids);
  for (std::size_t i = 0; i < v.dimids.size(); ++i) {
    const auto d = v.dimids[i];
    if (d < 0 || static_cast<std::size_t>(d) >= h.dims.size())
      return pnc::Status(pnc::Err::kBadDim, name);
    if (h.dims[static_cast<std::size_t>(d)].is_unlimited() && i != 0)
      return pnc::Status(pnc::Err::kUnlimPos, name);
  }
  h.vars.push_back(std::move(v));
  return static_cast<int>(h.vars.size()) - 1;
}

pnc::Status Dataset::RenameDim(int dimid, const std::string& name) {
  PNC_RETURN_IF_ERROR(CheckDefineMode());
  auto& h = impl_->header;
  if (dimid < 0 || static_cast<std::size_t>(dimid) >= h.dims.size())
    return pnc::Status(pnc::Err::kBadDim);
  if (h.FindDim(name) >= 0) return pnc::Status(pnc::Err::kNameInUse, name);
  h.dims[static_cast<std::size_t>(dimid)].name = name;
  return pnc::Status::Ok();
}

pnc::Status Dataset::RenameVar(int varid, const std::string& name) {
  PNC_RETURN_IF_ERROR(CheckDefineMode());
  auto& h = impl_->header;
  if (varid < 0 || static_cast<std::size_t>(varid) >= h.vars.size())
    return pnc::Status(pnc::Err::kNotVar);
  if (h.FindVar(name) >= 0) return pnc::Status(pnc::Err::kNameInUse, name);
  h.vars[static_cast<std::size_t>(varid)].name = name;
  return pnc::Status::Ok();
}

// ------------------------------------------------------------ attributes

namespace {
pnc::Result<std::vector<Attr>*> AttrListOf(Header& h, int varid) {
  if (varid == kGlobal) return &h.gatts;
  if (varid < 0 || static_cast<std::size_t>(varid) >= h.vars.size())
    return pnc::Status(pnc::Err::kNotVar);
  return &h.vars[static_cast<std::size_t>(varid)].attrs;
}
}  // namespace

pnc::Status Dataset::PutAtt(int varid, Attr att) {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  auto& im = *impl_;
  if (!im.writable) return pnc::Status(pnc::Err::kPermission);
  PNC_ASSIGN_OR_RETURN(std::vector<Attr>* attrs, AttrListOf(im.header, varid));
  const int existing =
      [&] {
        for (std::size_t i = 0; i < attrs->size(); ++i)
          if ((*attrs)[i].name == att.name) return static_cast<int>(i);
        return -1;
      }();
  if (!im.defining) {
    // Data mode: only replacing an existing attribute without growing it is
    // allowed (the header cannot expand without a relayout).
    if (existing < 0) return pnc::Status(pnc::Err::kNotInDefine, att.name);
    const auto& old = (*attrs)[static_cast<std::size_t>(existing)];
    if (att.type != old.type || att.data.size() > old.data.size())
      return pnc::Status(pnc::Err::kNotInDefine, att.name);
    (*attrs)[static_cast<std::size_t>(existing)] = std::move(att);
    return WriteHeader();
  }
  if (existing >= 0) {
    (*attrs)[static_cast<std::size_t>(existing)] = std::move(att);
  } else {
    if (attrs->size() >= ncformat::kMaxAttrs)
      return pnc::Status(pnc::Err::kMaxAtts);
    attrs->push_back(std::move(att));
  }
  return pnc::Status::Ok();
}

pnc::Status Dataset::PutAttText(int varid, const std::string& name,
                                std::string_view text) {
  return PutAtt(varid, Attr::Text(name, text));
}

pnc::Result<Attr> Dataset::GetAtt(int varid, const std::string& name) const {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  PNC_ASSIGN_OR_RETURN(std::vector<Attr>* attrs,
                       AttrListOf(impl_->header, varid));
  for (const auto& a : *attrs)
    if (a.name == name) return a;
  return pnc::Status(pnc::Err::kNotAtt, name);
}

pnc::Status Dataset::DelAtt(int varid, const std::string& name) {
  PNC_RETURN_IF_ERROR(CheckDefineMode());
  PNC_ASSIGN_OR_RETURN(std::vector<Attr>* attrs,
                       AttrListOf(impl_->header, varid));
  auto it = std::find_if(attrs->begin(), attrs->end(),
                         [&](const Attr& a) { return a.name == name; });
  if (it == attrs->end()) return pnc::Status(pnc::Err::kNotAtt, name);
  attrs->erase(it);
  return pnc::Status::Ok();
}

pnc::Status Dataset::RenameAtt(int varid, const std::string& old_name,
                               const std::string& new_name) {
  PNC_RETURN_IF_ERROR(CheckDefineMode());
  PNC_ASSIGN_OR_RETURN(std::vector<Attr>* attrs,
                       AttrListOf(impl_->header, varid));
  for (const auto& a : *attrs)
    if (a.name == new_name) return pnc::Status(pnc::Err::kNameInUse, new_name);
  for (auto& a : *attrs) {
    if (a.name == old_name) {
      a.name = new_name;
      return pnc::Status::Ok();
    }
  }
  return pnc::Status(pnc::Err::kNotAtt, old_name);
}

// --------------------------------------------------------------- inquiry

const Header& Dataset::header() const { return impl_->header; }
int Dataset::ndims() const { return static_cast<int>(impl_->header.dims.size()); }
int Dataset::nvars() const { return static_cast<int>(impl_->header.vars.size()); }
int Dataset::ngatts() const { return static_cast<int>(impl_->header.gatts.size()); }
int Dataset::unlimdim() const { return impl_->header.unlimited_dimid(); }
std::uint64_t Dataset::numrecs() const { return impl_->header.numrecs; }

pnc::Result<int> Dataset::DimId(const std::string& name) const {
  const int id = impl_->header.FindDim(name);
  if (id < 0) return pnc::Status(pnc::Err::kBadDim, name);
  return id;
}

pnc::Result<int> Dataset::VarId(const std::string& name) const {
  const int id = impl_->header.FindVar(name);
  if (id < 0) return pnc::Status(pnc::Err::kNotVar, name);
  return id;
}

simmpi::VirtualClock& Dataset::clock() { return impl_->clock; }

// ------------------------------------------------------------- data I/O

pnc::Status Dataset::PutExternal(int varid,
                                 std::span<const std::uint64_t> start,
                                 std::span<const std::uint64_t> count,
                                 std::span<const std::uint64_t> stride,
                                 pnc::ConstByteSpan external) {
  auto& im = *impl_;
  auto& h = im.header;
  const std::string_view put_var =
      varid >= 0 && varid < static_cast<int>(h.vars.size())
          ? std::string_view(h.vars[static_cast<std::size_t>(varid)].name)
          : std::string_view();
  PNC_IOSTAT_REQ_SCOPE(stride.empty() ? "put_vara" : "put_vars", put_var,
                       im.clock.now(), external.size(), 1);

  // Record growth bookkeeping (and fill of skipped records) first.
  if (h.IsRecordVar(varid) && !count.empty() && count[0] > 0) {
    const std::uint64_t st = stride.empty() ? 1 : stride[0];
    const std::uint64_t last = start[0] + (count[0] - 1) * st + 1;
    if (last > h.numrecs) {
      const std::uint64_t old_recs = h.numrecs;
      h.numrecs = last;
      im.numrecs_dirty = true;
      if (im.fill == FillMode::kFill) {
        for (int v = 0; v < static_cast<int>(h.vars.size()); ++v)
          if (h.IsRecordVar(v))
            PNC_RETURN_IF_ERROR(FillVariable(v, old_recs, last));
      }
    }
  }

  PNC_IOSTAT_ADD(kNcDataCalls, 1);
  PNC_IOSTAT_ADD(kNcDataBytesWritten, external.size());
  std::vector<pnc::Extent> regions;
  ncformat::AccessRegions(h, varid, start, count, stride, regions);
  std::uint64_t pos = 0;
  for (const auto& r : regions) {
    PNC_RETURN_IF_ERROR(im.io.WriteAt(r.offset, external.subspan(pos, r.len)));
    pos += r.len;
  }
  return pnc::Status::Ok();
}

pnc::Status Dataset::GetExternal(int varid,
                                 std::span<const std::uint64_t> start,
                                 std::span<const std::uint64_t> count,
                                 std::span<const std::uint64_t> stride,
                                 pnc::ByteSpan external) {
  auto& im = *impl_;
  const std::string_view get_var =
      varid >= 0 && varid < static_cast<int>(im.header.vars.size())
          ? std::string_view(
                im.header.vars[static_cast<std::size_t>(varid)].name)
          : std::string_view();
  PNC_IOSTAT_REQ_SCOPE(stride.empty() ? "get_vara" : "get_vars", get_var,
                       im.clock.now(), external.size(), 0);
  PNC_IOSTAT_ADD(kNcDataCalls, 1);
  PNC_IOSTAT_ADD(kNcDataBytesRead, external.size());
  std::vector<pnc::Extent> regions;
  ncformat::AccessRegions(im.header, varid, start, count, stride, regions);
  std::uint64_t pos = 0;
  for (const auto& r : regions) {
    pnc::Status st = im.io.ReadAt(r.offset, external.subspan(pos, r.len));
    if (st.code() == pnc::Err::kDataCorrupt) im.data_corrupt = true;
    PNC_RETURN_IF_ERROR(st);
    pos += r.len;
  }
  return pnc::Status::Ok();
}

// --------------------------------------------------------- header output

pnc::Status Dataset::WriteHeader() {
  auto& im = *impl_;
  std::vector<std::byte> bytes;
  im.header.Encode(bytes);
  if (im.journal) {
    // Data before metadata, then the journal commit (shadow, sync, slot,
    // sync), and only then the primary — which must itself be durable
    // before the *next* commit may overwrite the shadow it relies on.
    PNC_RETURN_IF_ERROR(im.io.Sync());
    ncformat::CommitState next;
    PNC_RETURN_IF_ERROR(ncformat::CommitHeaderToJournal(
        *im.journal, bytes, im.header.numrecs, im.commit, &next));
    PNC_RETURN_IF_ERROR(im.io.WriteAt(0, bytes));
    PNC_RETURN_IF_ERROR(im.io.Sync());
    im.commit = next;
  } else {
    PNC_RETURN_IF_ERROR(im.io.WriteAt(0, bytes));
  }
  PNC_IOSTAT_ADD(kNcHeaderBytesWritten, bytes.size());
  im.numrecs_dirty = false;
  return pnc::Status::Ok();
}

pnc::Status Dataset::WriteNumrecs() {
  auto& im = *impl_;
  if (im.journal && im.commit) {
    // The record count grows only after the record data is durable.
    PNC_RETURN_IF_ERROR(im.io.Sync());
    ncformat::CommitState next;
    PNC_RETURN_IF_ERROR(ncformat::CommitNumrecsToJournal(
        *im.journal, *im.commit, im.header.numrecs, &next));
    im.commit = next;
  }
  std::byte buf[4];
  const auto v = pnc::xdr::ToBig(static_cast<std::uint32_t>(im.header.numrecs));
  std::memcpy(buf, &v, 4);
  PNC_RETURN_IF_ERROR(im.io.WriteAt(4, pnc::ConstByteSpan(buf, 4)));
  PNC_IOSTAT_ADD(kNcHeaderBytesWritten, 4);
  if (im.journal) PNC_RETURN_IF_ERROR(im.io.Sync());
  im.numrecs_dirty = false;
  return pnc::Status::Ok();
}

// ------------------------------------------------------------- relayout

pnc::Status Dataset::MoveDataForRelayout(const Header& old_header) {
  auto& im = *impl_;
  const Header& nh = im.header;

  // Copy helper, chunked; safe because every move is to a strictly higher
  // offset and we process moves from the highest new offset downward.
  auto copy_region = [&](std::uint64_t from, std::uint64_t to,
                         std::uint64_t len) -> pnc::Status {
    if (from == to || len == 0) return pnc::Status::Ok();
    constexpr std::uint64_t kChunk = 4ULL << 20;
    std::vector<std::byte> buf(std::min(len, kChunk));
    std::uint64_t done = 0;
    while (done < len) {  // back to front within the region as well
      const std::uint64_t n = std::min(kChunk, len - done);
      const std::uint64_t off = len - done - n;
      PNC_RETURN_IF_ERROR(im.io.ReadAt(from + off, pnc::ByteSpan(buf.data(), n)));
      PNC_RETURN_IF_ERROR(
          im.io.WriteAt(to + off, pnc::ConstByteSpan(buf.data(), n)));
      done += n;
    }
    return pnc::Status::Ok();
  };

  struct Move {
    std::uint64_t from, to, len;
  };
  std::vector<Move> moves;

  // Record region: relocate record-by-record if either the base offset or
  // the internal record layout changed.
  const std::uint64_t nrecs = old_header.numrecs;
  for (std::size_t i = 0; i < old_header.vars.size(); ++i) {
    const auto& ov = old_header.vars[i];
    const int nid = nh.FindVar(ov.name);
    if (nid < 0) continue;  // vars cannot be deleted, but be defensive
    const auto& nv = nh.vars[static_cast<std::size_t>(nid)];
    if (old_header.IsRecordVar(static_cast<int>(i))) {
      for (std::uint64_t r = 0; r < nrecs; ++r) {
        moves.push_back({ov.begin + r * old_header.recsize(),
                         nv.begin + r * nh.recsize(), ov.vsize});
      }
    } else {
      moves.push_back({ov.begin, nv.begin, ov.vsize});
    }
  }
  // Highest destination first: destinations never precede their sources
  // (the header only grows), so this order never clobbers unmoved data.
  std::sort(moves.begin(), moves.end(),
            [](const Move& a, const Move& b) { return a.to > b.to; });
  for (const auto& m : moves) {
    if (m.to < m.from)
      return pnc::Status(pnc::Err::kInternal, "relayout moved data backwards");
    PNC_RETURN_IF_ERROR(copy_region(m.from, m.to, m.len));
  }
  return pnc::Status::Ok();
}

// ------------------------------------------------------------------ fill

pnc::Status Dataset::FillVariable(int varid, std::uint64_t rec_from,
                                  std::uint64_t rec_to) {
  auto& im = *impl_;
  const auto& h = im.header;
  const auto& v = h.vars[static_cast<std::size_t>(varid)];
  const std::uint64_t tsize = ncformat::TypeSize(v.type);

  // One instance (whole fixed var / one record) of external fill bytes.
  const std::uint64_t elems = h.VarInstanceElems(varid);
  std::vector<std::byte> pattern(elems * tsize);
  auto fill_with = [&](auto value) {
    using T = decltype(value);
    std::vector<T> vals(elems, value);
    (void)ncformat::ToExternal<T>(std::span<const T>(vals), v.type,
                                  pattern.data());
  };
  switch (v.type) {
    case NcType::kByte: fill_with(kFillByte); break;
    case NcType::kChar: fill_with(kFillChar); break;
    case NcType::kShort: fill_with(kFillShort); break;
    case NcType::kInt: fill_with(kFillInt); break;
    case NcType::kFloat: fill_with(kFillFloat); break;
    case NcType::kDouble: fill_with(kFillDouble); break;
  }

  if (h.IsRecordVar(varid)) {
    for (std::uint64_t r = rec_from; r < rec_to; ++r)
      PNC_RETURN_IF_ERROR(im.io.WriteAt(v.begin + r * h.recsize(), pattern));
  } else {
    PNC_RETURN_IF_ERROR(im.io.WriteAt(v.begin, pattern));
  }
  return pnc::Status::Ok();
}

pnc::Status Dataset::FillNewSpace(const Header* old_header) {
  auto& im = *impl_;
  const auto& h = im.header;
  for (int v = 0; v < static_cast<int>(h.vars.size()); ++v) {
    const bool existed =
        old_header && old_header->FindVar(h.vars[static_cast<std::size_t>(v)].name) >= 0;
    if (existed) continue;
    if (h.IsRecordVar(v)) {
      PNC_RETURN_IF_ERROR(FillVariable(v, 0, h.numrecs));
    } else {
      PNC_RETURN_IF_ERROR(FillVariable(v, 0, 0));
    }
  }
  return pnc::Status::Ok();
}

}  // namespace netcdf
