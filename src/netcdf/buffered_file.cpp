#include "netcdf/buffered_file.hpp"

#include <algorithm>
#include <cstring>

namespace netcdf {

BufferedFile::BufferedFile(pfs::File file, simmpi::VirtualClock* clock,
                           std::uint64_t buffer_size, double copy_ns_per_byte)
    : file_(std::move(file)),
      clock_(clock),
      retry_(pnc::util::ResolveRetryPolicy(/*rank=*/0)),
      bufsize_(std::max<std::uint64_t>(buffer_size, 4096)),
      copy_ns_per_byte_(copy_ns_per_byte) {
  block_.resize(bufsize_);
}

void BufferedFile::AttachSums(ncformat::ChunkSumMap* sums, bool verify) {
  sums_ = sums;
  sums_verify_ = verify && sums != nullptr;
  // Bytes cached before the map was attached (the header read that
  // preceded loading the sidecar) were never verified; drop a clean block
  // so every later read re-fetches through the verify path. A dirty block
  // holds this session's own writes and stays.
  if (sums_verify_ && block_valid_ && dirty_lo_ == dirty_hi_)
    block_valid_ = false;
}

pnc::Status BufferedFile::RetryIo(bool is_write, std::uint64_t offset,
                                  std::byte* data, std::uint64_t len) {
  pnc::Status st = RawIo(is_write, offset, data, len);
  if (!st.ok() || sums_ == nullptr || len == 0) return st;
  if (is_write) {
    sums_->MarkDirtyRange(offset, len);
    return st;
  }
  if (!sums_verify_) return st;
  return ncformat::VerifyReadRange(
      *sums_, offset, pnc::ByteSpan(data, len), file_.size(),
      [this](std::uint64_t o, pnc::ByteSpan out) {
        return RawIo(/*is_write=*/false, o, out.data(), out.size());
      },
      std::max(1, retry_.max_attempts), clock_->now(), nullptr);
}

pnc::Status BufferedFile::RawIo(bool is_write, std::uint64_t offset,
                                std::byte* data, std::uint64_t len) {
  return pnc::util::RetryWithBackoff(
      retry_, *clock_, len,
      [&](std::uint64_t done) {
        return is_write
                   ? file_.TryWrite(
                         offset + done,
                         pnc::ConstByteSpan(data + done, len - done),
                         clock_->now())
                   : file_.TryRead(offset + done,
                                   pnc::ByteSpan(data + done, len - done),
                                   clock_->now());
      },
      [&](int, double) { file_.RecordRetry(is_write); });
}

pnc::Status BufferedFile::LoadBlock(std::uint64_t block_start) {
  PNC_RETURN_IF_ERROR(Flush());
  PNC_RETURN_IF_ERROR(
      RetryIo(/*is_write=*/false, block_start, block_.data(), bufsize_));
  block_start_ = block_start;
  block_valid_ = true;
  dirty_lo_ = dirty_hi_ = 0;
  return pnc::Status::Ok();
}

pnc::Status BufferedFile::Flush() {
  if (!block_valid_ || dirty_lo_ == dirty_hi_) return pnc::Status::Ok();
  // On failure the dirty range is kept, so no buffered data is lost and a
  // later Flush retries the whole write-back (idempotent: same bytes, same
  // offsets).
  PNC_RETURN_IF_ERROR(RetryIo(/*is_write=*/true, block_start_ + dirty_lo_,
                              block_.data() + dirty_lo_,
                              dirty_hi_ - dirty_lo_));
  dirty_lo_ = dirty_hi_ = 0;
  return pnc::Status::Ok();
}

pnc::Status BufferedFile::ReadAt(std::uint64_t offset, pnc::ByteSpan out) {
  // Large requests bypass the buffer but are still issued at buffer-size
  // granularity, like the reference library's user-space I/O layer.
  if (out.size() >= bufsize_) {
    PNC_RETURN_IF_ERROR(Flush());
    block_valid_ = false;
    std::size_t done_bytes = 0;
    while (done_bytes < out.size()) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(bufsize_, out.size() - done_bytes));
      PNC_RETURN_IF_ERROR(RetryIo(/*is_write=*/false, offset + done_bytes,
                                  out.data() + done_bytes, n));
      done_bytes += n;
    }
    return pnc::Status::Ok();
  }
  std::size_t produced = 0;
  while (produced < out.size()) {
    const std::uint64_t pos = offset + produced;
    const std::uint64_t bstart = pos / bufsize_ * bufsize_;
    if (!block_valid_ || block_start_ != bstart)
      PNC_RETURN_IF_ERROR(LoadBlock(bstart));
    const std::uint64_t in_block = pos - bstart;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(bufsize_ - in_block, out.size() - produced));
    std::memcpy(out.data() + produced, block_.data() + in_block, n);
    clock_->Advance(copy_ns_per_byte_ * static_cast<double>(n));
    produced += n;
  }
  return pnc::Status::Ok();
}

pnc::Status BufferedFile::WriteAt(std::uint64_t offset,
                                  pnc::ConstByteSpan data) {
  if (data.size() >= bufsize_) {
    PNC_RETURN_IF_ERROR(Flush());
    block_valid_ = false;
    std::size_t done_bytes = 0;
    while (done_bytes < data.size()) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(bufsize_, data.size() - done_bytes));
      PNC_RETURN_IF_ERROR(
          RetryIo(/*is_write=*/true, offset + done_bytes,
                  const_cast<std::byte*>(data.data()) + done_bytes, n));
      done_bytes += n;
    }
    return pnc::Status::Ok();
  }
  std::size_t consumed = 0;
  while (consumed < data.size()) {
    const std::uint64_t pos = offset + consumed;
    const std::uint64_t bstart = pos / bufsize_ * bufsize_;
    if (!block_valid_ || block_start_ != bstart)
      PNC_RETURN_IF_ERROR(LoadBlock(bstart));
    const std::uint64_t in_block = pos - bstart;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(bufsize_ - in_block, data.size() - consumed));
    std::memcpy(block_.data() + in_block, data.data() + consumed, n);
    clock_->Advance(copy_ns_per_byte_ * static_cast<double>(n));
    if (dirty_lo_ == dirty_hi_) {
      dirty_lo_ = in_block;
      dirty_hi_ = in_block + n;
    } else {
      dirty_lo_ = std::min(dirty_lo_, in_block);
      dirty_hi_ = std::max(dirty_hi_, in_block + n);
    }
    consumed += n;
  }
  return pnc::Status::Ok();
}

std::uint64_t BufferedFile::size() { return file_.size(); }

pnc::Status BufferedFile::Truncate(std::uint64_t n) {
  PNC_RETURN_IF_ERROR(Flush());
  block_valid_ = false;
  file_.Truncate(n);
  return pnc::Status::Ok();
}

pnc::Status BufferedFile::Sync() {
  PNC_RETURN_IF_ERROR(Flush());
  return pnc::util::RetrySyncWithBackoff(
      retry_, *clock_, [&] { return file_.TrySync(clock_->now()); },
      [&](int, double) { file_.RecordRetry(/*is_write=*/true); });
}

}  // namespace netcdf
