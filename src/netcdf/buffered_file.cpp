#include "netcdf/buffered_file.hpp"

#include <algorithm>
#include <cstring>

namespace netcdf {

BufferedFile::BufferedFile(pfs::File file, simmpi::VirtualClock* clock,
                           std::uint64_t buffer_size, double copy_ns_per_byte)
    : file_(std::move(file)),
      clock_(clock),
      bufsize_(std::max<std::uint64_t>(buffer_size, 4096)),
      copy_ns_per_byte_(copy_ns_per_byte) {
  block_.resize(bufsize_);
}

void BufferedFile::LoadBlock(std::uint64_t block_start) {
  Flush();
  const double done =
      file_.Read(block_start, pnc::ByteSpan(block_.data(), bufsize_),
                 clock_->now());
  clock_->AdvanceTo(done);
  block_start_ = block_start;
  block_valid_ = true;
  dirty_lo_ = dirty_hi_ = 0;
}

void BufferedFile::Flush() {
  if (!block_valid_ || dirty_lo_ == dirty_hi_) return;
  const double done =
      file_.Write(block_start_ + dirty_lo_,
                  pnc::ConstByteSpan(block_.data() + dirty_lo_,
                                     dirty_hi_ - dirty_lo_),
                  clock_->now());
  clock_->AdvanceTo(done);
  dirty_lo_ = dirty_hi_ = 0;
}

void BufferedFile::ReadAt(std::uint64_t offset, pnc::ByteSpan out) {
  // Large requests bypass the buffer but are still issued at buffer-size
  // granularity, like the reference library's user-space I/O layer.
  if (out.size() >= bufsize_) {
    Flush();
    block_valid_ = false;
    std::size_t done_bytes = 0;
    while (done_bytes < out.size()) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(bufsize_, out.size() - done_bytes));
      const double done = file_.Read(offset + done_bytes,
                                     out.subspan(done_bytes, n), clock_->now());
      clock_->AdvanceTo(done);
      done_bytes += n;
    }
    return;
  }
  std::size_t produced = 0;
  while (produced < out.size()) {
    const std::uint64_t pos = offset + produced;
    const std::uint64_t bstart = pos / bufsize_ * bufsize_;
    if (!block_valid_ || block_start_ != bstart) LoadBlock(bstart);
    const std::uint64_t in_block = pos - bstart;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(bufsize_ - in_block, out.size() - produced));
    std::memcpy(out.data() + produced, block_.data() + in_block, n);
    clock_->Advance(copy_ns_per_byte_ * static_cast<double>(n));
    produced += n;
  }
}

void BufferedFile::WriteAt(std::uint64_t offset, pnc::ConstByteSpan data) {
  if (data.size() >= bufsize_) {
    Flush();
    block_valid_ = false;
    std::size_t done_bytes = 0;
    while (done_bytes < data.size()) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(bufsize_, data.size() - done_bytes));
      const double done = file_.Write(offset + done_bytes,
                                      data.subspan(done_bytes, n),
                                      clock_->now());
      clock_->AdvanceTo(done);
      done_bytes += n;
    }
    return;
  }
  std::size_t consumed = 0;
  while (consumed < data.size()) {
    const std::uint64_t pos = offset + consumed;
    const std::uint64_t bstart = pos / bufsize_ * bufsize_;
    if (!block_valid_ || block_start_ != bstart) LoadBlock(bstart);
    const std::uint64_t in_block = pos - bstart;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(bufsize_ - in_block, data.size() - consumed));
    std::memcpy(block_.data() + in_block, data.data() + consumed, n);
    clock_->Advance(copy_ns_per_byte_ * static_cast<double>(n));
    if (dirty_lo_ == dirty_hi_) {
      dirty_lo_ = in_block;
      dirty_hi_ = in_block + n;
    } else {
      dirty_lo_ = std::min(dirty_lo_, in_block);
      dirty_hi_ = std::max(dirty_hi_, in_block + n);
    }
    consumed += n;
  }
}

std::uint64_t BufferedFile::size() { return file_.size(); }

void BufferedFile::Truncate(std::uint64_t n) {
  Flush();
  block_valid_ = false;
  file_.Truncate(n);
}

void BufferedFile::Sync() {
  Flush();
  clock_->AdvanceTo(file_.Sync(clock_->now()));
}

}  // namespace netcdf
