// The classic nc_* C-style interface to the serial library.
//
// Mirrors the Unidata netCDF-3 C API (netcdf.h) so that serial C programs
// port mechanically: integer ncid handles, int error codes (NC_NOERR == 0),
// size_t start/count vectors, and the typed data-access matrix. The paper's
// §3.2 function taxonomy — dataset, define mode, attribute, inquiry, data
// access — maps one to one.
//
// Environment adaptation: nc_create/nc_open take the (simulated or
// disk-backed) file system as their first argument.
#pragma once

#include "netcdf/dataset.hpp"

namespace netcdf::capi {

// nc_type tags and mode flags (match netcdf.h).
constexpr int NC_BYTE = 1;
constexpr int NC_CHAR = 2;
constexpr int NC_SHORT = 3;
constexpr int NC_INT = 4;
constexpr int NC_FLOAT = 5;
constexpr int NC_DOUBLE = 6;
constexpr int NC_CLOBBER = 0;
constexpr int NC_NOCLOBBER = 0x0004;
constexpr int NC_NOWRITE = 0;
constexpr int NC_WRITE = 0x0001;
constexpr int NC_64BIT_OFFSET = 0x0200;
constexpr std::size_t NC_UNLIMITED = 0;
constexpr int NC_GLOBAL = -1;
constexpr int NC_NOERR = 0;
// nc_set_fill modes.
constexpr int NC_FILL = 0;
constexpr int NC_NOFILL = 0x100;

const char* nc_strerror(int err);

// ---- dataset functions ----
int nc_create(pfs::FileSystem& fs, const char* path, int cmode, int* ncidp);
int nc_open(pfs::FileSystem& fs, const char* path, int omode, int* ncidp);
int nc_redef(int ncid);
int nc_enddef(int ncid);
int nc_sync(int ncid);
int nc_abort(int ncid);
int nc_close(int ncid);
int nc_set_fill(int ncid, int fillmode, int* old_modep);

// ---- define mode functions ----
int nc_def_dim(int ncid, const char* name, std::size_t len, int* idp);
int nc_def_var(int ncid, const char* name, int xtype, int ndims,
               const int* dimids, int* varidp);
int nc_rename_dim(int ncid, int dimid, const char* name);
int nc_rename_var(int ncid, int varid, const char* name);

// ---- attribute functions ----
int nc_put_att_text(int ncid, int varid, const char* name, std::size_t len,
                    const char* op);
int nc_get_att_text(int ncid, int varid, const char* name, char* ip);
int nc_put_att_double(int ncid, int varid, const char* name, int xtype,
                      std::size_t len, const double* op);
int nc_get_att_double(int ncid, int varid, const char* name, double* ip);
int nc_inq_att(int ncid, int varid, const char* name, int* xtypep,
               std::size_t* lenp);
int nc_del_att(int ncid, int varid, const char* name);
int nc_rename_att(int ncid, int varid, const char* name, const char* newname);

// ---- inquiry functions ----
int nc_inq(int ncid, int* ndimsp, int* nvarsp, int* ngattsp,
           int* unlimdimidp);
int nc_inq_dimid(int ncid, const char* name, int* idp);
int nc_inq_dim(int ncid, int dimid, char* name, std::size_t* lenp);
int nc_inq_varid(int ncid, const char* name, int* varidp);
int nc_inq_var(int ncid, int varid, char* name, int* xtypep, int* ndimsp,
               int* dimids, int* nattsp);

// ---- data access functions ----
#define NETCDF_CAPI_DECLARE(SUFFIX, CTYPE)                                    \
  int nc_put_var1_##SUFFIX(int ncid, int varid, const std::size_t* index,     \
                           const CTYPE* op);                                  \
  int nc_get_var1_##SUFFIX(int ncid, int varid, const std::size_t* index,     \
                           CTYPE* ip);                                        \
  int nc_put_var_##SUFFIX(int ncid, int varid, const CTYPE* op);              \
  int nc_get_var_##SUFFIX(int ncid, int varid, CTYPE* ip);                    \
  int nc_put_vara_##SUFFIX(int ncid, int varid, const std::size_t* start,     \
                           const std::size_t* count, const CTYPE* op);        \
  int nc_get_vara_##SUFFIX(int ncid, int varid, const std::size_t* start,     \
                           const std::size_t* count, CTYPE* ip);              \
  int nc_put_vars_##SUFFIX(int ncid, int varid, const std::size_t* start,     \
                           const std::size_t* count,                          \
                           const std::ptrdiff_t* stride, const CTYPE* op);    \
  int nc_get_vars_##SUFFIX(int ncid, int varid, const std::size_t* start,     \
                           const std::size_t* count,                          \
                           const std::ptrdiff_t* stride, CTYPE* ip);          \
  int nc_put_varm_##SUFFIX(int ncid, int varid, const std::size_t* start,     \
                           const std::size_t* count,                          \
                           const std::ptrdiff_t* stride,                      \
                           const std::ptrdiff_t* imap, const CTYPE* op);      \
  int nc_get_varm_##SUFFIX(int ncid, int varid, const std::size_t* start,     \
                           const std::size_t* count,                          \
                           const std::ptrdiff_t* stride,                      \
                           const std::ptrdiff_t* imap, CTYPE* ip);

NETCDF_CAPI_DECLARE(text, char)
NETCDF_CAPI_DECLARE(schar, signed char)
NETCDF_CAPI_DECLARE(short, short)
NETCDF_CAPI_DECLARE(int, int)
NETCDF_CAPI_DECLARE(float, float)
NETCDF_CAPI_DECLARE(double, double)
#undef NETCDF_CAPI_DECLARE

}  // namespace netcdf::capi
