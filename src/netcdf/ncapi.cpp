#include "netcdf/ncapi.hpp"

#include <cstring>
#include <map>

namespace netcdf::capi {

namespace {

std::map<int, Dataset>& Handles() {
  static std::map<int, Dataset> handles;
  return handles;
}
int& NextId() {
  static int next = 0;
  return next;
}

Dataset* Find(int ncid) {
  auto it = Handles().find(ncid);
  return it == Handles().end() ? nullptr : &it->second;
}

constexpr int kBadId = static_cast<int>(pnc::Err::kBadId);
constexpr int kNotVarErr = static_cast<int>(pnc::Err::kNotVar);
constexpr int kBadTypeErr = static_cast<int>(pnc::Err::kBadType);

std::vector<std::uint64_t> ToU64(const std::size_t* p, std::size_t n) {
  return std::vector<std::uint64_t>(p, p + n);
}

std::vector<std::uint64_t> StrideU64(const std::ptrdiff_t* p, std::size_t n) {
  std::vector<std::uint64_t> v(n, 1);
  if (p)
    for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint64_t>(p[i]);
  return v;
}

pnc::Result<std::size_t> VarRank(Dataset* ds, int varid) {
  if (varid < 0 || varid >= ds->nvars()) return pnc::Status(pnc::Err::kNotVar);
  return ds->header().vars[static_cast<std::size_t>(varid)].dimids.size();
}

}  // namespace

const char* nc_strerror(int err) {
  return pnc::StrError(static_cast<pnc::Err>(err)).data();
}

// ------------------------------------------------------------------ files

int nc_create(pfs::FileSystem& fs, const char* path, int cmode, int* ncidp) {
  CreateOptions opts;
  opts.clobber = (cmode & NC_NOCLOBBER) == 0;
  opts.use_cdf2 = (cmode & NC_64BIT_OFFSET) != 0;
  auto r = Dataset::Create(fs, path, opts);
  if (!r.ok()) return r.status().raw();
  const int id = NextId()++;
  Handles().emplace(id, std::move(r).value());
  *ncidp = id;
  return NC_NOERR;
}

int nc_open(pfs::FileSystem& fs, const char* path, int omode, int* ncidp) {
  auto r = Dataset::Open(fs, path, (omode & NC_WRITE) != 0);
  if (!r.ok()) return r.status().raw();
  const int id = NextId()++;
  Handles().emplace(id, std::move(r).value());
  *ncidp = id;
  return NC_NOERR;
}

int nc_redef(int ncid) {
  auto* ds = Find(ncid);
  return ds ? ds->Redef().raw() : kBadId;
}
int nc_enddef(int ncid) {
  auto* ds = Find(ncid);
  return ds ? ds->EndDef().raw() : kBadId;
}
int nc_sync(int ncid) {
  auto* ds = Find(ncid);
  return ds ? ds->Sync().raw() : kBadId;
}
int nc_abort(int ncid) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  const int rc = ds->Abort().raw();
  Handles().erase(ncid);
  return rc;
}
int nc_close(int ncid) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  const int rc = ds->Close().raw();
  Handles().erase(ncid);
  return rc;
}

int nc_set_fill(int ncid, int fillmode, int* old_modep) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  if (old_modep) *old_modep = NC_NOFILL;  // default of this library
  return ds->SetFill(fillmode == NC_FILL ? FillMode::kFill : FillMode::kNoFill)
      .raw();
}

// ------------------------------------------------------------ define mode

int nc_def_dim(int ncid, const char* name, std::size_t len, int* idp) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  auto r = ds->DefDim(name, len);
  if (!r.ok()) return r.status().raw();
  if (idp) *idp = r.value();
  return NC_NOERR;
}

int nc_def_var(int ncid, const char* name, int xtype, int ndims,
               const int* dimids, int* varidp) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  if (!ncformat::IsValidType(xtype)) return kBadTypeErr;
  std::vector<std::int32_t> dims(dimids, dimids + ndims);
  auto r = ds->DefVar(name, static_cast<ncformat::NcType>(xtype),
                      std::move(dims));
  if (!r.ok()) return r.status().raw();
  if (varidp) *varidp = r.value();
  return NC_NOERR;
}

int nc_rename_dim(int ncid, int dimid, const char* name) {
  auto* ds = Find(ncid);
  return ds ? ds->RenameDim(dimid, name).raw() : kBadId;
}
int nc_rename_var(int ncid, int varid, const char* name) {
  auto* ds = Find(ncid);
  return ds ? ds->RenameVar(varid, name).raw() : kBadId;
}

// ------------------------------------------------------------- attributes

int nc_put_att_text(int ncid, int varid, const char* name, std::size_t len,
                    const char* op) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  return ds->PutAttText(varid, name, std::string_view(op, len)).raw();
}

int nc_get_att_text(int ncid, int varid, const char* name, char* ip) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  auto r = ds->GetAtt(varid, name);
  if (!r.ok()) return r.status().raw();
  if (r.value().type != ncformat::NcType::kChar) return kBadTypeErr;
  std::memcpy(ip, r.value().data.data(), r.value().data.size());
  return NC_NOERR;
}

int nc_put_att_double(int ncid, int varid, const char* name, int xtype,
                      std::size_t len, const double* op) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  if (!ncformat::IsValidType(xtype) || xtype == NC_CHAR) return kBadTypeErr;
  const auto type = static_cast<ncformat::NcType>(xtype);
  // Convert through the external form so narrowing follows netCDF rules.
  std::vector<std::byte> wire(len * ncformat::TypeSize(type));
  pnc::Status conv =
      ncformat::ToExternal<double>({op, len}, type, wire.data());
  if (!conv.ok() && conv.code() != pnc::Err::kRange) return conv.raw();
  ncformat::Attr a;
  a.name = name;
  a.type = type;
  a.data.resize(wire.size());
  switch (type) {
    case ncformat::NcType::kByte:
      std::memcpy(a.data.data(), wire.data(), wire.size());
      break;
    case ncformat::NcType::kShort:
      pnc::xdr::DecodeArray<std::int16_t>(
          wire.data(), {reinterpret_cast<std::int16_t*>(a.data.data()), len});
      break;
    case ncformat::NcType::kInt:
      pnc::xdr::DecodeArray<std::int32_t>(
          wire.data(), {reinterpret_cast<std::int32_t*>(a.data.data()), len});
      break;
    case ncformat::NcType::kFloat:
      pnc::xdr::DecodeArray<float>(
          wire.data(), {reinterpret_cast<float*>(a.data.data()), len});
      break;
    case ncformat::NcType::kDouble:
      pnc::xdr::DecodeArray<double>(
          wire.data(), {reinterpret_cast<double*>(a.data.data()), len});
      break;
    case ncformat::NcType::kChar:
      return kBadTypeErr;
  }
  pnc::Status st = ds->PutAtt(varid, std::move(a));
  return st.ok() ? conv.raw() : st.raw();
}

int nc_get_att_double(int ncid, int varid, const char* name, double* ip) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  auto r = ds->GetAtt(varid, name);
  if (!r.ok()) return r.status().raw();
  const auto& a = r.value();
  if (a.type == ncformat::NcType::kChar) return kBadTypeErr;
  const std::size_t n = a.nelems();
  std::vector<std::byte> wire(a.data.size());
  switch (a.type) {
    case ncformat::NcType::kByte:
      std::memcpy(wire.data(), a.data.data(), a.data.size());
      break;
    case ncformat::NcType::kShort:
      pnc::xdr::EncodeArray<std::int16_t>(
          {reinterpret_cast<const std::int16_t*>(a.data.data()), n},
          wire.data());
      break;
    case ncformat::NcType::kInt:
      pnc::xdr::EncodeArray<std::int32_t>(
          {reinterpret_cast<const std::int32_t*>(a.data.data()), n},
          wire.data());
      break;
    case ncformat::NcType::kFloat:
      pnc::xdr::EncodeArray<float>(
          {reinterpret_cast<const float*>(a.data.data()), n}, wire.data());
      break;
    case ncformat::NcType::kDouble:
      pnc::xdr::EncodeArray<double>(
          {reinterpret_cast<const double*>(a.data.data()), n}, wire.data());
      break;
    case ncformat::NcType::kChar:
      return kBadTypeErr;
  }
  return ncformat::FromExternal<double>(wire.data(), a.type, {ip, n}).raw();
}

int nc_inq_att(int ncid, int varid, const char* name, int* xtypep,
               std::size_t* lenp) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  auto r = ds->GetAtt(varid, name);
  if (!r.ok()) return r.status().raw();
  if (xtypep) *xtypep = static_cast<int>(r.value().type);
  if (lenp) *lenp = r.value().nelems();
  return NC_NOERR;
}

int nc_del_att(int ncid, int varid, const char* name) {
  auto* ds = Find(ncid);
  return ds ? ds->DelAtt(varid, name).raw() : kBadId;
}
int nc_rename_att(int ncid, int varid, const char* name, const char* newname) {
  auto* ds = Find(ncid);
  return ds ? ds->RenameAtt(varid, name, newname).raw() : kBadId;
}

// ---------------------------------------------------------------- inquiry

int nc_inq(int ncid, int* ndimsp, int* nvarsp, int* ngattsp,
           int* unlimdimidp) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  if (ndimsp) *ndimsp = ds->ndims();
  if (nvarsp) *nvarsp = ds->nvars();
  if (ngattsp) *ngattsp = ds->ngatts();
  if (unlimdimidp) *unlimdimidp = ds->unlimdim();
  return NC_NOERR;
}

int nc_inq_dimid(int ncid, const char* name, int* idp) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  auto r = ds->DimId(name);
  if (!r.ok()) return r.status().raw();
  if (idp) *idp = r.value();
  return NC_NOERR;
}

int nc_inq_dim(int ncid, int dimid, char* name, std::size_t* lenp) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  const auto& h = ds->header();
  if (dimid < 0 || static_cast<std::size_t>(dimid) >= h.dims.size())
    return static_cast<int>(pnc::Err::kBadDim);
  const auto& d = h.dims[static_cast<std::size_t>(dimid)];
  if (name) std::strcpy(name, d.name.c_str());
  if (lenp) *lenp = d.is_unlimited() ? h.numrecs : d.len;
  return NC_NOERR;
}

int nc_inq_varid(int ncid, const char* name, int* varidp) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  auto r = ds->VarId(name);
  if (!r.ok()) return r.status().raw();
  if (varidp) *varidp = r.value();
  return NC_NOERR;
}

int nc_inq_var(int ncid, int varid, char* name, int* xtypep, int* ndimsp,
               int* dimids, int* nattsp) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  const auto& h = ds->header();
  if (varid < 0 || static_cast<std::size_t>(varid) >= h.vars.size())
    return kNotVarErr;
  const auto& v = h.vars[static_cast<std::size_t>(varid)];
  if (name) std::strcpy(name, v.name.c_str());
  if (xtypep) *xtypep = static_cast<int>(v.type);
  if (ndimsp) *ndimsp = static_cast<int>(v.dimids.size());
  if (dimids)
    for (std::size_t i = 0; i < v.dimids.size(); ++i) dimids[i] = v.dimids[i];
  if (nattsp) *nattsp = static_cast<int>(v.attrs.size());
  return NC_NOERR;
}

// ------------------------------------------------------------ data access

namespace {

template <typename T>
int PutCommon(int ncid, int varid, const std::size_t* start,
              const std::size_t* count, const std::ptrdiff_t* stride,
              const std::ptrdiff_t* imap, const T* op) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  auto rank = VarRank(ds, varid);
  if (!rank.ok()) return rank.status().raw();
  const std::size_t nd = rank.value();
  auto st = ToU64(start, nd);
  auto ct = ToU64(count, nd);
  auto sd = StrideU64(stride, nd);
  const std::uint64_t n = ncformat::AccessElems(ct);
  std::span<const T> data(op, imap ? n : n);
  if (imap) {
    auto im = StrideU64(imap, nd);
    // The caller's buffer extent under imap is unknown; the varm gather
    // indexes only the selected elements, so n elements reachable via imap
    // suffice; we pass a generous span bound.
    return ds->PutVarm<T>(varid, st, ct, sd, im,
                          std::span<const T>(op, SIZE_MAX / sizeof(T)))
        .raw();
  }
  return ds->PutVars<T>(varid, st, ct, sd, data).raw();
}

template <typename T>
int GetCommon(int ncid, int varid, const std::size_t* start,
              const std::size_t* count, const std::ptrdiff_t* stride,
              const std::ptrdiff_t* imap, T* ip) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  auto rank = VarRank(ds, varid);
  if (!rank.ok()) return rank.status().raw();
  const std::size_t nd = rank.value();
  auto st = ToU64(start, nd);
  auto ct = ToU64(count, nd);
  auto sd = StrideU64(stride, nd);
  const std::uint64_t n = ncformat::AccessElems(ct);
  if (imap) {
    auto im = StrideU64(imap, nd);
    return ds->GetVarm<T>(varid, st, ct, sd, im,
                          std::span<T>(ip, SIZE_MAX / sizeof(T)))
        .raw();
  }
  return ds->GetVars<T>(varid, st, ct, sd, std::span<T>(ip, n)).raw();
}

}  // namespace

#define NETCDF_CAPI_DEFINE(SUFFIX, CTYPE)                                     \
  int nc_put_var1_##SUFFIX(int ncid, int varid, const std::size_t* index,     \
                           const CTYPE* op) {                                 \
    auto* ds = Find(ncid);                                                    \
    if (!ds) return kBadId;                                                   \
    auto rank = VarRank(ds, varid);                                           \
    if (!rank.ok()) return rank.status().raw();                               \
    auto idx = ToU64(index, rank.value());                                    \
    return ds->PutVar1<CTYPE>(varid, idx, *op).raw();                         \
  }                                                                           \
  int nc_get_var1_##SUFFIX(int ncid, int varid, const std::size_t* index,     \
                           CTYPE* ip) {                                       \
    auto* ds = Find(ncid);                                                    \
    if (!ds) return kBadId;                                                   \
    auto rank = VarRank(ds, varid);                                           \
    if (!rank.ok()) return rank.status().raw();                               \
    auto idx = ToU64(index, rank.value());                                    \
    return ds->GetVar1<CTYPE>(varid, idx, *ip).raw();                         \
  }                                                                           \
  int nc_put_var_##SUFFIX(int ncid, int varid, const CTYPE* op) {             \
    auto* ds = Find(ncid);                                                    \
    if (!ds) return kBadId;                                                   \
    auto rank = VarRank(ds, varid);                                           \
    if (!rank.ok()) return rank.status().raw();                               \
    const std::uint64_t n =                                                   \
        pnc::ShapeProduct(ds->header().VarShape(varid));                      \
    return ds->PutVar<CTYPE>(varid, std::span<const CTYPE>(op, n)).raw();     \
  }                                                                           \
  int nc_get_var_##SUFFIX(int ncid, int varid, CTYPE* ip) {                   \
    auto* ds = Find(ncid);                                                    \
    if (!ds) return kBadId;                                                   \
    auto rank = VarRank(ds, varid);                                           \
    if (!rank.ok()) return rank.status().raw();                               \
    const std::uint64_t n =                                                   \
        pnc::ShapeProduct(ds->header().VarShape(varid));                      \
    return ds->GetVar<CTYPE>(varid, std::span<CTYPE>(ip, n)).raw();           \
  }                                                                           \
  int nc_put_vara_##SUFFIX(int ncid, int varid, const std::size_t* start,     \
                           const std::size_t* count, const CTYPE* op) {       \
    return PutCommon<CTYPE>(ncid, varid, start, count, nullptr, nullptr, op); \
  }                                                                           \
  int nc_get_vara_##SUFFIX(int ncid, int varid, const std::size_t* start,     \
                           const std::size_t* count, CTYPE* ip) {             \
    return GetCommon<CTYPE>(ncid, varid, start, count, nullptr, nullptr, ip); \
  }                                                                           \
  int nc_put_vars_##SUFFIX(int ncid, int varid, const std::size_t* start,     \
                           const std::size_t* count,                          \
                           const std::ptrdiff_t* stride, const CTYPE* op) {   \
    return PutCommon<CTYPE>(ncid, varid, start, count, stride, nullptr, op);  \
  }                                                                           \
  int nc_get_vars_##SUFFIX(int ncid, int varid, const std::size_t* start,     \
                           const std::size_t* count,                          \
                           const std::ptrdiff_t* stride, CTYPE* ip) {         \
    return GetCommon<CTYPE>(ncid, varid, start, count, stride, nullptr, ip);  \
  }                                                                           \
  int nc_put_varm_##SUFFIX(int ncid, int varid, const std::size_t* start,     \
                           const std::size_t* count,                          \
                           const std::ptrdiff_t* stride,                      \
                           const std::ptrdiff_t* imap, const CTYPE* op) {     \
    return PutCommon<CTYPE>(ncid, varid, start, count, stride, imap, op);     \
  }                                                                           \
  int nc_get_varm_##SUFFIX(int ncid, int varid, const std::size_t* start,     \
                           const std::size_t* count,                          \
                           const std::ptrdiff_t* stride,                      \
                           const std::ptrdiff_t* imap, CTYPE* ip) {           \
    return GetCommon<CTYPE>(ncid, varid, start, count, stride, imap, ip);     \
  }

NETCDF_CAPI_DEFINE(text, char)
NETCDF_CAPI_DEFINE(schar, signed char)
NETCDF_CAPI_DEFINE(short, short)
NETCDF_CAPI_DEFINE(int, int)
NETCDF_CAPI_DEFINE(float, float)
NETCDF_CAPI_DEFINE(double, double)
#undef NETCDF_CAPI_DEFINE

}  // namespace netcdf::capi
