// User-space buffered file I/O for the serial netCDF library.
//
// Paper §3.2: "The I/O implementation of the serial netCDF API is built on
// the native I/O system calls and has its own buffering mechanism in user
// space." This is that mechanism: a single aligned write-back block buffer
// (like the reference library's v1hp I/O layer). Requests at or above the
// buffer size bypass it. All timing is charged to an internal virtual clock,
// which is what the Figure 6 "serial netCDF" baseline reports.
//
// Failure model: all data calls go through the fault-injected pfs path
// (pfs::File::TryRead/TryWrite). Transient storage errors are retried a
// bounded number of times with exponential backoff (charged to the virtual
// clock); short transfers resume from the transferred count. A Flush that
// ultimately fails leaves the block dirty, so the data is not lost and a
// later Flush/Sync retries the write-back.
#pragma once

#include <cstdint>
#include <vector>

#include "format/sums.hpp"
#include "pfs/pfs.hpp"
#include "simmpi/clock.hpp"
#include "util/bytes.hpp"
#include "util/retry.hpp"
#include "util/status.hpp"

namespace netcdf {

class BufferedFile {
 public:
  BufferedFile(pfs::File file, simmpi::VirtualClock* clock,
               std::uint64_t buffer_size = 1ULL << 20,
               double copy_ns_per_byte = 0.35);

  [[nodiscard]] pnc::Status ReadAt(std::uint64_t offset, pnc::ByteSpan out);
  [[nodiscard]] pnc::Status WriteAt(std::uint64_t offset,
                                    pnc::ConstByteSpan data);
  /// Write back any dirty buffered block. On failure the block stays dirty
  /// (and the error retryable): call Flush/Sync again to retry.
  [[nodiscard]] pnc::Status Flush();
  [[nodiscard]] std::uint64_t size();
  [[nodiscard]] pnc::Status Truncate(std::uint64_t n);
  [[nodiscard]] pnc::Status Sync();

  /// Attach a chunk-sum map (format/sums.hpp) owned by the caller, which
  /// must outlive this file. Physical writes mark their chunks dirty;
  /// with `verify` set, physical reads (block loads and large bypass
  /// reads) recompute covered chunk CRCs, healing transient flips by
  /// re-reading and returning kDataCorrupt for persistent damage. The
  /// serial library is single-writer, so verify is safe in writable
  /// sessions too (this rank's own writes are exactly the dirty set).
  void AttachSums(ncformat::ChunkSumMap* sums, bool verify);

 private:
  pnc::Status LoadBlock(std::uint64_t block_start);
  /// Bounded retry over the fault-injected pfs path (see mpiio's RetryIo;
  /// the serial library applies the same policy without MPI hints), plus
  /// the integrity hooks of the attached chunk-sum map.
  pnc::Status RetryIo(bool is_write, std::uint64_t offset, std::byte* data,
                      std::uint64_t len);
  /// The transfer alone, no integrity hooks (used by verification
  /// re-reads to avoid recursion).
  pnc::Status RawIo(bool is_write, std::uint64_t offset, std::byte* data,
                    std::uint64_t len);

  pfs::File file_;
  simmpi::VirtualClock* clock_;
  pnc::util::RetryPolicy retry_;  ///< defaults + PNC_RETRY_* env (rank 0)
  ncformat::ChunkSumMap* sums_ = nullptr;
  bool sums_verify_ = false;
  std::uint64_t bufsize_;
  double copy_ns_per_byte_;

  std::vector<std::byte> block_;
  std::uint64_t block_start_ = 0;
  bool block_valid_ = false;
  // Dirty byte range within the block; only this much is written back, so
  // buffering never pads the file beyond what was actually written.
  std::uint64_t dirty_lo_ = 0;
  std::uint64_t dirty_hi_ = 0;  ///< exclusive; lo == hi means clean
};

}  // namespace netcdf
