// User-space buffered file I/O for the serial netCDF library.
//
// Paper §3.2: "The I/O implementation of the serial netCDF API is built on
// the native I/O system calls and has its own buffering mechanism in user
// space." This is that mechanism: a single aligned write-back block buffer
// (like the reference library's v1hp I/O layer). Requests at or above the
// buffer size bypass it. All timing is charged to an internal virtual clock,
// which is what the Figure 6 "serial netCDF" baseline reports.
#pragma once

#include <cstdint>
#include <vector>

#include "pfs/pfs.hpp"
#include "simmpi/clock.hpp"
#include "util/bytes.hpp"

namespace netcdf {

class BufferedFile {
 public:
  BufferedFile(pfs::File file, simmpi::VirtualClock* clock,
               std::uint64_t buffer_size = 1ULL << 20,
               double copy_ns_per_byte = 0.35);

  void ReadAt(std::uint64_t offset, pnc::ByteSpan out);
  void WriteAt(std::uint64_t offset, pnc::ConstByteSpan data);
  /// Write back any dirty buffered block.
  void Flush();
  [[nodiscard]] std::uint64_t size();
  void Truncate(std::uint64_t n);
  void Sync();

 private:
  void LoadBlock(std::uint64_t block_start);

  pfs::File file_;
  simmpi::VirtualClock* clock_;
  std::uint64_t bufsize_;
  double copy_ns_per_byte_;

  std::vector<std::byte> block_;
  std::uint64_t block_start_ = 0;
  bool block_valid_ = false;
  // Dirty byte range within the block; only this much is written back, so
  // buffering never pads the file beyond what was actually written.
  std::uint64_t dirty_lo_ = 0;
  std::uint64_t dirty_hi_ = 0;  ///< exclusive; lo == hi means clean
};

}  // namespace netcdf
