#include "pnetcdf/nfmpi.hpp"

#include <algorithm>
#include <vector>

namespace pnetcdf::fapi {

namespace {

/// Reverse a Fortran-ordered vector into C order.
std::vector<MPI_Offset> Reverse(const MPI_Offset* p, int n) {
  std::vector<MPI_Offset> v(p, p + n);
  std::reverse(v.begin(), v.end());
  return v;
}

/// Fortran 1-based starts become C 0-based.
std::vector<MPI_Offset> ReverseStart(const MPI_Offset* p, int n) {
  auto v = Reverse(p, n);
  for (auto& x : v) x -= 1;
  return v;
}

int VarNdims(int ncid, int varid) {
  int nd = 0;
  if (capi::ncmpi_inq_var(ncid, varid, nullptr, nullptr, &nd, nullptr,
                          nullptr) != capi::NC_NOERR)
    return -1;
  return nd;
}

}  // namespace

int nfmpi_create(simmpi::Comm comm, pfs::FileSystem& fs, const char* path,
                 int cmode, const simmpi::Info& info, int& ncid) {
  return capi::ncmpi_create(std::move(comm), fs, path, cmode, info, &ncid);
}
int nfmpi_open(simmpi::Comm comm, pfs::FileSystem& fs, const char* path,
               int omode, const simmpi::Info& info, int& ncid) {
  return capi::ncmpi_open(std::move(comm), fs, path, omode, info, &ncid);
}
int nfmpi_redef(int ncid) { return capi::ncmpi_redef(ncid); }
int nfmpi_enddef(int ncid) { return capi::ncmpi_enddef(ncid); }
int nfmpi_sync(int ncid) { return capi::ncmpi_sync(ncid); }
int nfmpi_close(int ncid) { return capi::ncmpi_close(ncid); }
int nfmpi_begin_indep_data(int ncid) {
  return capi::ncmpi_begin_indep_data(ncid);
}
int nfmpi_end_indep_data(int ncid) { return capi::ncmpi_end_indep_data(ncid); }

int nfmpi_def_dim(int ncid, const char* name, MPI_Offset len, int& dimid) {
  return capi::ncmpi_def_dim(ncid, name, len, &dimid);
}

int nfmpi_def_var(int ncid, const char* name, int xtype, int ndims,
                  const int* dimids, int& varid) {
  // Fortran: fastest-varying dimension first. The classic format stores the
  // most significant (slowest) dimension first, so reverse.
  std::vector<int> c_order(dimids, dimids + ndims);
  std::reverse(c_order.begin(), c_order.end());
  return capi::ncmpi_def_var(ncid, name, xtype, ndims, c_order.data(), &varid);
}

int nfmpi_put_att_text(int ncid, int varid, const char* name, MPI_Offset len,
                       const char* text) {
  return capi::ncmpi_put_att_text(ncid, varid, name, len, text);
}
int nfmpi_get_att_text(int ncid, int varid, const char* name, char* text) {
  return capi::ncmpi_get_att_text(ncid, varid, name, text);
}

int nfmpi_inq_varid(int ncid, const char* name, int& varid) {
  return capi::ncmpi_inq_varid(ncid, name, &varid);
}
int nfmpi_inq_dimlen(int ncid, int dimid, MPI_Offset& len) {
  return capi::ncmpi_inq_dimlen(ncid, dimid, &len);
}

#define PNETCDF_FAPI_DEFINE(SUFFIX, CSUFFIX, CTYPE)                           \
  int nfmpi_put_vara_##SUFFIX##_all(int ncid, int varid,                      \
                                    const MPI_Offset* start,                  \
                                    const MPI_Offset* count,                  \
                                    const CTYPE* op) {                        \
    const int nd = VarNdims(ncid, varid);                                     \
    if (nd < 0) return static_cast<int>(pnc::Err::kNotVar);                   \
    auto st = ReverseStart(start, nd);                                        \
    auto ct = Reverse(count, nd);                                             \
    return capi::ncmpi_put_vara_##CSUFFIX##_all(ncid, varid, st.data(),       \
                                                ct.data(), op);               \
  }                                                                           \
  int nfmpi_get_vara_##SUFFIX##_all(int ncid, int varid,                      \
                                    const MPI_Offset* start,                  \
                                    const MPI_Offset* count, CTYPE* ip) {     \
    const int nd = VarNdims(ncid, varid);                                     \
    if (nd < 0) return static_cast<int>(pnc::Err::kNotVar);                   \
    auto st = ReverseStart(start, nd);                                        \
    auto ct = Reverse(count, nd);                                             \
    return capi::ncmpi_get_vara_##CSUFFIX##_all(ncid, varid, st.data(),       \
                                                ct.data(), ip);               \
  }                                                                           \
  int nfmpi_put_vara_##SUFFIX(int ncid, int varid, const MPI_Offset* start,   \
                              const MPI_Offset* count, const CTYPE* op) {     \
    const int nd = VarNdims(ncid, varid);                                     \
    if (nd < 0) return static_cast<int>(pnc::Err::kNotVar);                   \
    auto st = ReverseStart(start, nd);                                        \
    auto ct = Reverse(count, nd);                                             \
    return capi::ncmpi_put_vara_##CSUFFIX(ncid, varid, st.data(), ct.data(),  \
                                          op);                                \
  }                                                                           \
  int nfmpi_get_vara_##SUFFIX(int ncid, int varid, const MPI_Offset* start,   \
                              const MPI_Offset* count, CTYPE* ip) {           \
    const int nd = VarNdims(ncid, varid);                                     \
    if (nd < 0) return static_cast<int>(pnc::Err::kNotVar);                   \
    auto st = ReverseStart(start, nd);                                        \
    auto ct = Reverse(count, nd);                                             \
    return capi::ncmpi_get_vara_##CSUFFIX(ncid, varid, st.data(), ct.data(),  \
                                          ip);                                \
  }

PNETCDF_FAPI_DEFINE(text, text, char)
PNETCDF_FAPI_DEFINE(int, int, int)
PNETCDF_FAPI_DEFINE(real, float, float)
PNETCDF_FAPI_DEFINE(double, double, double)
#undef PNETCDF_FAPI_DEFINE

}  // namespace pnetcdf::fapi
