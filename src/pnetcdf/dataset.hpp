// Parallel netCDF (PnetCDF) — the paper's primary contribution.
//
// A parallel interface to netCDF classic files with minimal changes from the
// serial API (§4): dataset functions take a communicator and an MPI_Info of
// hints; define mode, attribute, and inquiry functions keep their serial
// syntax but are collective and consistency-checked; data mode splits into
// collective (`...All`, must be called by every process) and independent
// access (bracketed by BeginIndepData/EndIndepData).
//
// Two data-access APIs are provided (§4.1):
//  * the high-level API: typed calls on contiguous memory, mirroring the
//    serial var1/var/vara/vars/varm access methods;
//  * the flexible API: memory described by an MPI (simmpi) datatype, the
//    MPI-natural way to write noncontiguous user buffers. All high-level
//    calls are implemented over the flexible engine, as in the paper.
//
// Implementation (§4.2): the header is read by rank 0 and broadcast; every
// process caches a local copy, so inquiry functions are pure in-memory
// operations. Data access builds an MPI file view from the variable metadata
// plus (start, count, stride, imap) and goes through MPI-IO, where the
// two-phase collective optimization lives.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "format/convert.hpp"
#include "format/header.hpp"
#include "format/layout.hpp"
#include "mpiio/file.hpp"
#include "pfs/pfs.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/info.hpp"

namespace pnetcdf {

constexpr std::uint64_t kUnlimited = 0;
constexpr int kGlobal = -1;

struct CreateOptions {
  bool clobber = true;
  bool use_cdf2 = true;
};

/// An open parallel dataset (the C API's ncid from ncmpi_create/open).
/// Copyable within a rank; each rank of the communicator holds its own.
class Dataset {
 public:
  // ---- dataset functions (collective; §4.1 adds comm + info) ----
  static pnc::Result<Dataset> Create(simmpi::Comm comm, pfs::FileSystem& fs,
                                     const std::string& path,
                                     const simmpi::Info& info,
                                     const CreateOptions& opts = {});
  static pnc::Result<Dataset> Open(simmpi::Comm comm, pfs::FileSystem& fs,
                                   const std::string& path, bool writable,
                                   const simmpi::Info& info);

  Dataset() = default;
  [[nodiscard]] bool valid() const { return impl_ != nullptr; }

  pnc::Status Redef();
  pnc::Status EndDef();
  pnc::Status Sync();
  pnc::Status Close();
  pnc::Status Abort();

  /// Switch this communicator's data mode to independent / back to
  /// collective. Both are collective calls (as in PnetCDF).
  pnc::Status BeginIndepData();
  pnc::Status EndIndepData();

  // ---- define mode functions (collective, same syntax as serial §4.1) ----
  pnc::Result<int> DefDim(const std::string& name, std::uint64_t len);
  pnc::Result<int> DefVar(const std::string& name, ncformat::NcType type,
                          std::vector<std::int32_t> dimids);
  pnc::Status RenameDim(int dimid, const std::string& name);
  pnc::Status RenameVar(int varid, const std::string& name);

  // ---- attribute functions ----
  pnc::Status PutAtt(int varid, ncformat::Attr att);
  pnc::Status PutAttText(int varid, const std::string& name,
                         std::string_view text);
  template <typename T>
  pnc::Status PutAttValues(int varid, const std::string& name,
                           ncformat::NcType type, std::span<const T> values) {
    if (sizeof(T) != ncformat::TypeSize(type))
      return pnc::Status(pnc::Err::kBadType, "attribute value width");
    return PutAtt(varid, ncformat::Attr::Numeric<T>(name, type, values));
  }
  pnc::Result<ncformat::Attr> GetAtt(int varid, const std::string& name) const;
  pnc::Status DelAtt(int varid, const std::string& name);

  // ---- inquiry functions (local memory only; no communication, §4.3) ----
  [[nodiscard]] const ncformat::Header& header() const;
  [[nodiscard]] int ndims() const;
  [[nodiscard]] int nvars() const;
  [[nodiscard]] int ngatts() const;
  [[nodiscard]] int unlimdim() const;
  [[nodiscard]] std::uint64_t numrecs() const;
  pnc::Result<int> DimId(const std::string& name) const;
  pnc::Result<int> VarId(const std::string& name) const;

  // ---- high-level data access API (typed, contiguous memory) ----
  // Collective variants end in "All" (§4.1 naming: "_all").
#define PNETCDF_DECLARE_TYPED(Name, ...) \
  template <typename T>                  \
  pnc::Status Name(__VA_ARGS__)

  PNETCDF_DECLARE_TYPED(PutVaraAll, int varid,
                        std::span<const std::uint64_t> start,
                        std::span<const std::uint64_t> count,
                        std::span<const T> data) {
    return TypedPut<T>(varid, start, count, {}, {}, data, true);
  }
  PNETCDF_DECLARE_TYPED(PutVara, int varid,
                        std::span<const std::uint64_t> start,
                        std::span<const std::uint64_t> count,
                        std::span<const T> data) {
    return TypedPut<T>(varid, start, count, {}, {}, data, false);
  }
  PNETCDF_DECLARE_TYPED(GetVaraAll, int varid,
                        std::span<const std::uint64_t> start,
                        std::span<const std::uint64_t> count,
                        std::span<T> out) {
    return TypedGet<T>(varid, start, count, {}, {}, out, true);
  }
  PNETCDF_DECLARE_TYPED(GetVara, int varid,
                        std::span<const std::uint64_t> start,
                        std::span<const std::uint64_t> count,
                        std::span<T> out) {
    return TypedGet<T>(varid, start, count, {}, {}, out, false);
  }

  PNETCDF_DECLARE_TYPED(PutVarsAll, int varid,
                        std::span<const std::uint64_t> start,
                        std::span<const std::uint64_t> count,
                        std::span<const std::uint64_t> stride,
                        std::span<const T> data) {
    return TypedPut<T>(varid, start, count, stride, {}, data, true);
  }
  PNETCDF_DECLARE_TYPED(PutVars, int varid,
                        std::span<const std::uint64_t> start,
                        std::span<const std::uint64_t> count,
                        std::span<const std::uint64_t> stride,
                        std::span<const T> data) {
    return TypedPut<T>(varid, start, count, stride, {}, data, false);
  }
  PNETCDF_DECLARE_TYPED(GetVarsAll, int varid,
                        std::span<const std::uint64_t> start,
                        std::span<const std::uint64_t> count,
                        std::span<const std::uint64_t> stride,
                        std::span<T> out) {
    return TypedGet<T>(varid, start, count, stride, {}, out, true);
  }
  PNETCDF_DECLARE_TYPED(GetVars, int varid,
                        std::span<const std::uint64_t> start,
                        std::span<const std::uint64_t> count,
                        std::span<const std::uint64_t> stride,
                        std::span<T> out) {
    return TypedGet<T>(varid, start, count, stride, {}, out, false);
  }

  PNETCDF_DECLARE_TYPED(PutVarmAll, int varid,
                        std::span<const std::uint64_t> start,
                        std::span<const std::uint64_t> count,
                        std::span<const std::uint64_t> stride,
                        std::span<const std::uint64_t> imap,
                        std::span<const T> data) {
    return TypedPut<T>(varid, start, count, stride, imap, data, true);
  }
  PNETCDF_DECLARE_TYPED(PutVarm, int varid,
                        std::span<const std::uint64_t> start,
                        std::span<const std::uint64_t> count,
                        std::span<const std::uint64_t> stride,
                        std::span<const std::uint64_t> imap,
                        std::span<const T> data) {
    return TypedPut<T>(varid, start, count, stride, imap, data, false);
  }
  PNETCDF_DECLARE_TYPED(GetVarmAll, int varid,
                        std::span<const std::uint64_t> start,
                        std::span<const std::uint64_t> count,
                        std::span<const std::uint64_t> stride,
                        std::span<const std::uint64_t> imap, std::span<T> out) {
    return TypedGet<T>(varid, start, count, stride, imap, out, true);
  }
  PNETCDF_DECLARE_TYPED(GetVarm, int varid,
                        std::span<const std::uint64_t> start,
                        std::span<const std::uint64_t> count,
                        std::span<const std::uint64_t> stride,
                        std::span<const std::uint64_t> imap, std::span<T> out) {
    return TypedGet<T>(varid, start, count, stride, imap, out, false);
  }

  PNETCDF_DECLARE_TYPED(PutVar1, int varid,
                        std::span<const std::uint64_t> index, T value) {
    std::vector<std::uint64_t> count(index.size(), 1);
    return TypedPut<T>(varid, index, count, {}, {},
                       std::span<const T>(&value, 1), false);
  }
  PNETCDF_DECLARE_TYPED(GetVar1, int varid,
                        std::span<const std::uint64_t> index, T& out) {
    std::vector<std::uint64_t> count(index.size(), 1);
    return TypedGet<T>(varid, index, count, {}, {}, std::span<T>(&out, 1),
                       false);
  }

  PNETCDF_DECLARE_TYPED(PutVarAll, int varid, std::span<const T> data) {
    return WholeVarPut<T>(varid, data, true);
  }
  PNETCDF_DECLARE_TYPED(GetVarAll, int varid, std::span<T> out) {
    return WholeVarGet<T>(varid, out, true);
  }
  PNETCDF_DECLARE_TYPED(PutVar, int varid, std::span<const T> data) {
    return WholeVarPut<T>(varid, data, false);
  }
  PNETCDF_DECLARE_TYPED(GetVar, int varid, std::span<T> out) {
    return WholeVarGet<T>(varid, out, false);
  }
#undef PNETCDF_DECLARE_TYPED

  // ---- flexible data access API (memory described by an MPI datatype) ----
  pnc::Status PutVaraAllFlex(int varid, std::span<const std::uint64_t> start,
                             std::span<const std::uint64_t> count,
                             const void* buf, std::uint64_t bufcount,
                             const simmpi::Datatype& buftype) {
    return FlexPut(varid, start, count, {}, buf, bufcount, buftype, true);
  }
  pnc::Status PutVaraFlex(int varid, std::span<const std::uint64_t> start,
                          std::span<const std::uint64_t> count,
                          const void* buf, std::uint64_t bufcount,
                          const simmpi::Datatype& buftype) {
    return FlexPut(varid, start, count, {}, buf, bufcount, buftype, false);
  }
  pnc::Status GetVaraAllFlex(int varid, std::span<const std::uint64_t> start,
                             std::span<const std::uint64_t> count, void* buf,
                             std::uint64_t bufcount,
                             const simmpi::Datatype& buftype) {
    return FlexGet(varid, start, count, {}, buf, bufcount, buftype, true);
  }
  pnc::Status GetVaraFlex(int varid, std::span<const std::uint64_t> start,
                          std::span<const std::uint64_t> count, void* buf,
                          std::uint64_t bufcount,
                          const simmpi::Datatype& buftype) {
    return FlexGet(varid, start, count, {}, buf, bufcount, buftype, false);
  }
  pnc::Status PutVarsAllFlex(int varid, std::span<const std::uint64_t> start,
                             std::span<const std::uint64_t> count,
                             std::span<const std::uint64_t> stride,
                             const void* buf, std::uint64_t bufcount,
                             const simmpi::Datatype& buftype) {
    return FlexPut(varid, start, count, stride, buf, bufcount, buftype, true);
  }
  pnc::Status GetVarsAllFlex(int varid, std::span<const std::uint64_t> start,
                             std::span<const std::uint64_t> count,
                             std::span<const std::uint64_t> stride, void* buf,
                             std::uint64_t bufcount,
                             const simmpi::Datatype& buftype) {
    return FlexGet(varid, start, count, stride, buf, bufcount, buftype, true);
  }

  /// One item of an aggregated (nonblocking wait_all) access: external-form
  /// bytes for the (start, count) region of `varid`.
  struct BatchItem {
    int varid = 0;
    std::span<const std::uint64_t> start, count;
    pnc::ByteSpan ext;
  };
  /// Collective: move every item's bytes in a single combined MPI-IO
  /// collective (one file view spanning all variables and records). The
  /// engine behind NonblockingQueue::WaitAll; items must not overlap in the
  /// file. Ranks may pass different item lists (including none).
  pnc::Status BatchAccess(std::span<BatchItem> items, bool is_write);

  /// The communicator this dataset was opened on.
  [[nodiscard]] simmpi::Comm& comm();
  /// MPI-IO hints in effect (after PnetCDF processed its own).
  [[nodiscard]] const mpiio::Hints& hints() const;

  /// Opaque implementation record (public so internal helpers can name it).
  struct Impl;

 private:

  pnc::Status CheckDataMode(bool need_write, bool collective) const;
  pnc::Status FlexPut(int varid, std::span<const std::uint64_t> start,
                      std::span<const std::uint64_t> count,
                      std::span<const std::uint64_t> stride, const void* buf,
                      std::uint64_t bufcount, const simmpi::Datatype& buftype,
                      bool collective);
  pnc::Status FlexGet(int varid, std::span<const std::uint64_t> start,
                      std::span<const std::uint64_t> count,
                      std::span<const std::uint64_t> stride, void* buf,
                      std::uint64_t bufcount, const simmpi::Datatype& buftype,
                      bool collective);

  /// The engine: move external bytes between `ext` and the file regions
  /// selected by (start, count, stride), collectively or independently.
  pnc::Status MoveExternal(int varid, std::span<const std::uint64_t> start,
                           std::span<const std::uint64_t> count,
                           std::span<const std::uint64_t> stride,
                           pnc::ByteSpan ext, bool is_write, bool collective);
  pnc::Status SyncNumrecs(std::uint64_t local_numrecs, bool collective);
  /// In collective context, agree on per-rank validation results so that a
  /// failing rank cannot strand its peers inside collective I/O: if any rank
  /// failed, every rank returns an error (its own, or kMultiDefine).
  pnc::Status CollectiveCheck(pnc::Status st, bool collective);
  pnc::Status WriteHeaderCollective();
  pnc::Status RelayoutParallel(const ncformat::Header& old_header);

  template <typename T>
  pnc::Status TypedPut(int varid, std::span<const std::uint64_t> start,
                       std::span<const std::uint64_t> count,
                       std::span<const std::uint64_t> stride,
                       std::span<const std::uint64_t> imap,
                       std::span<const T> data, bool collective);
  template <typename T>
  pnc::Status TypedGet(int varid, std::span<const std::uint64_t> start,
                       std::span<const std::uint64_t> count,
                       std::span<const std::uint64_t> stride,
                       std::span<const std::uint64_t> imap, std::span<T> out,
                       bool collective);
  template <typename T>
  pnc::Status WholeVarPut(int varid, std::span<const T> data, bool collective);
  template <typename T>
  pnc::Status WholeVarGet(int varid, std::span<T> out, bool collective);

  std::shared_ptr<Impl> impl_;
};

// --------------------------------------------------------------- templates

template <typename T>
pnc::Status Dataset::TypedPut(int varid, std::span<const std::uint64_t> start,
                              std::span<const std::uint64_t> count,
                              std::span<const std::uint64_t> stride,
                              std::span<const std::uint64_t> imap,
                              std::span<const T> data, bool collective) {
  PNC_RETURN_IF_ERROR(CheckDataMode(/*need_write=*/true, collective));
  if (!imap.empty()) {
    // Mapped memory: gather into canonical order first (high-level varm).
    if (imap.size() != count.size())
      return pnc::Status(pnc::Err::kInvalidArg, "imap rank");
    const std::uint64_t nelems = ncformat::AccessElems(count);
    std::vector<T> tmp(nelems);
    std::vector<std::uint64_t> idx(count.size(), 0);
    for (std::uint64_t e = 0; e < nelems; ++e) {
      std::uint64_t m = 0;
      for (std::size_t d = 0; d < count.size(); ++d) m += idx[d] * imap[d];
      tmp[e] = data[m];
      for (std::size_t d = count.size(); d-- > 0;) {
        if (++idx[d] < count[d]) break;
        idx[d] = 0;
      }
    }
    return TypedPut<T>(varid, start, count, stride, {}, std::span<const T>(tmp),
                       collective);
  }
  const std::uint64_t nelems = ncformat::AccessElems(count);
  pnc::Status vst = ncformat::ValidateAccess(header(), varid, start, count,
                                             stride,
                                             ncformat::AccessKind::kWrite);
  if (vst.ok() && data.size() < nelems)
    vst = pnc::Status(pnc::Err::kInvalidArg, "buffer");
  PNC_RETURN_IF_ERROR(CollectiveCheck(vst, collective));
  const auto& v = header().vars[static_cast<std::size_t>(varid)];
  std::vector<std::byte> ext(nelems * ncformat::TypeSize(v.type));
  pnc::Status conv =
      ncformat::ToExternal<T>(data.first(nelems), v.type, ext.data());
  if (!conv.ok() && conv.code() != pnc::Err::kRange) return conv;
  PNC_RETURN_IF_ERROR(
      MoveExternal(varid, start, count, stride, ext, true, collective));
  return conv;
}

template <typename T>
pnc::Status Dataset::TypedGet(int varid, std::span<const std::uint64_t> start,
                              std::span<const std::uint64_t> count,
                              std::span<const std::uint64_t> stride,
                              std::span<const std::uint64_t> imap,
                              std::span<T> out, bool collective) {
  PNC_RETURN_IF_ERROR(CheckDataMode(/*need_write=*/false, collective));
  if (!imap.empty()) {
    if (imap.size() != count.size())
      return pnc::Status(pnc::Err::kInvalidArg, "imap rank");
    const std::uint64_t nelems = ncformat::AccessElems(count);
    std::vector<T> tmp(nelems);
    PNC_RETURN_IF_ERROR(TypedGet<T>(varid, start, count, stride, {},
                                    std::span<T>(tmp), collective));
    std::vector<std::uint64_t> idx(count.size(), 0);
    for (std::uint64_t e = 0; e < nelems; ++e) {
      std::uint64_t m = 0;
      for (std::size_t d = 0; d < count.size(); ++d) m += idx[d] * imap[d];
      out[m] = tmp[e];
      for (std::size_t d = count.size(); d-- > 0;) {
        if (++idx[d] < count[d]) break;
        idx[d] = 0;
      }
    }
    return pnc::Status::Ok();
  }
  const std::uint64_t nelems = ncformat::AccessElems(count);
  pnc::Status vst = ncformat::ValidateAccess(header(), varid, start, count,
                                             stride,
                                             ncformat::AccessKind::kRead);
  if (vst.ok() && out.size() < nelems)
    vst = pnc::Status(pnc::Err::kInvalidArg, "buffer");
  PNC_RETURN_IF_ERROR(CollectiveCheck(vst, collective));
  const auto& v = header().vars[static_cast<std::size_t>(varid)];
  std::vector<std::byte> ext(nelems * ncformat::TypeSize(v.type));
  PNC_RETURN_IF_ERROR(
      MoveExternal(varid, start, count, stride, ext, false, collective));
  return ncformat::FromExternal<T>(ext.data(), v.type, out.first(nelems));
}

template <typename T>
pnc::Status Dataset::WholeVarPut(int varid, std::span<const T> data,
                                 bool collective) {
  PNC_RETURN_IF_ERROR(CollectiveCheck(
      (varid < 0 || varid >= nvars()) ? pnc::Status(pnc::Err::kNotVar)
                                      : pnc::Status::Ok(),
      collective));
  auto shape = header().VarShape(varid);
  if (header().IsRecordVar(varid)) {
    const std::uint64_t per_rec = header().VarInstanceElems(varid);
    if (per_rec > 0) shape[0] = data.size() / per_rec;
  }
  std::vector<std::uint64_t> start(shape.size(), 0);
  return TypedPut<T>(varid, start, shape, {}, {}, data, collective);
}

template <typename T>
pnc::Status Dataset::WholeVarGet(int varid, std::span<T> out, bool collective) {
  PNC_RETURN_IF_ERROR(CollectiveCheck(
      (varid < 0 || varid >= nvars()) ? pnc::Status(pnc::Err::kNotVar)
                                      : pnc::Status::Ok(),
      collective));
  auto shape = header().VarShape(varid);
  std::vector<std::uint64_t> start(shape.size(), 0);
  return TypedGet<T>(varid, start, shape, {}, {}, out, collective);
}

}  // namespace pnetcdf
