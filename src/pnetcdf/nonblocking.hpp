// Nonblocking data access with request aggregation.
//
// Paper §4.2.2: "we can collect multiple I/O requests over a number of
// record variables and optimize the file I/O over a large pool of data
// transfers, thereby producing more contiguous and larger transfers."
// The production PnetCDF grew exactly this interface (ncmpi_iput/iget +
// ncmpi_wait_all); this module implements it:
//
//   * IputVara / IgetVara post a request and return immediately with an id;
//     put data is converted to its external form at post time, so the user
//     buffer may be reused; get destinations must stay valid until WaitAll.
//   * WaitAll (collective) merges every pending request — across variables
//     and records — into ONE file view and ONE collective MPI-IO call,
//     recovering contiguity that per-variable calls lose to the record
//     interleaving of Figure 1.
//
// See bench_ablation_nonblocking for the resulting request-count collapse.
#pragma once

#include "pnetcdf/dataset.hpp"

namespace pnetcdf {

/// Handle for a posted nonblocking operation.
using RequestId = int;

class NonblockingQueue {
 public:
  explicit NonblockingQueue(Dataset ds) : ds_(std::move(ds)) {}

  /// Post a write of (start, count) on `varid`. The data is captured
  /// (converted to external form) immediately.
  template <typename T>
  pnc::Result<RequestId> IputVara(int varid,
                                  std::span<const std::uint64_t> start,
                                  std::span<const std::uint64_t> count,
                                  std::span<const T> data);

  /// Post a read of (start, count) on `varid` into `out`, which must remain
  /// valid until WaitAll. Conversion happens at completion.
  template <typename T>
  pnc::Result<RequestId> IgetVara(int varid,
                                  std::span<const std::uint64_t> start,
                                  std::span<const std::uint64_t> count,
                                  std::span<T> out);

  /// Collective: complete every pending request in (at most) one collective
  /// write plus one collective read. Statuses are returned per request in
  /// posting order; the call's own status reports structural failures.
  pnc::Status WaitAll(std::vector<pnc::Status>* per_request = nullptr);

  [[nodiscard]] std::size_t pending() const {
    return puts_.size() + gets_.size();
  }
  [[nodiscard]] Dataset& dataset() { return ds_; }

 private:
  struct PutReq {
    RequestId id;
    int varid;
    std::vector<std::uint64_t> start, count;
    std::vector<std::byte> ext;  ///< external-form bytes, region order
  };
  struct GetReq {
    RequestId id;
    int varid;
    std::vector<std::uint64_t> start, count;
    std::vector<std::byte> ext;  ///< filled by WaitAll
    /// Converts ext into the user's typed buffer; set at post time.
    std::function<pnc::Status()> deliver;
  };

  Dataset ds_;
  RequestId next_id_ = 1;
  std::vector<PutReq> puts_;
  std::vector<GetReq> gets_;
};

// ---------------------------------------------------------------- inline

template <typename T>
pnc::Result<RequestId> NonblockingQueue::IputVara(
    int varid, std::span<const std::uint64_t> start,
    std::span<const std::uint64_t> count, std::span<const T> data) {
  const auto& h = ds_.header();
  if (varid < 0 || varid >= ds_.nvars()) return pnc::Status(pnc::Err::kNotVar);
  PNC_RETURN_IF_ERROR(ncformat::ValidateAccess(
      h, varid, start, count, {}, ncformat::AccessKind::kWrite));
  const std::uint64_t nelems = ncformat::AccessElems(count);
  if (data.size() < nelems) return pnc::Status(pnc::Err::kInvalidArg, "buffer");

  PutReq r;
  r.id = next_id_++;
  r.varid = varid;
  r.start.assign(start.begin(), start.end());
  r.count.assign(count.begin(), count.end());
  const auto& v = h.vars[static_cast<std::size_t>(varid)];
  r.ext.resize(nelems * ncformat::TypeSize(v.type));
  pnc::Status conv =
      ncformat::ToExternal<T>(data.first(nelems), v.type, r.ext.data());
  if (!conv.ok() && conv.code() != pnc::Err::kRange) return conv;
  puts_.push_back(std::move(r));
  return puts_.back().id;
}

template <typename T>
pnc::Result<RequestId> NonblockingQueue::IgetVara(
    int varid, std::span<const std::uint64_t> start,
    std::span<const std::uint64_t> count, std::span<T> out) {
  const auto& h = ds_.header();
  if (varid < 0 || varid >= ds_.nvars()) return pnc::Status(pnc::Err::kNotVar);
  PNC_RETURN_IF_ERROR(ncformat::ValidateAccess(
      h, varid, start, count, {}, ncformat::AccessKind::kRead));
  const std::uint64_t nelems = ncformat::AccessElems(count);
  if (out.size() < nelems) return pnc::Status(pnc::Err::kInvalidArg, "buffer");

  GetReq r;
  r.id = next_id_++;
  r.varid = varid;
  r.start.assign(start.begin(), start.end());
  r.count.assign(count.begin(), count.end());
  const auto type = h.vars[static_cast<std::size_t>(varid)].type;
  r.ext.resize(nelems * ncformat::TypeSize(type));
  gets_.push_back(std::move(r));
  auto& stored = gets_.back();
  // Capture the delivery step; `stored.ext` address is stable because the
  // vector member is what moves, not its heap buffer... except vector
  // reallocation moves GetReq (and with it the ext vector object, whose
  // buffer pointer survives). Bind to the request by index instead.
  const std::size_t idx = gets_.size() - 1;
  stored.deliver = [this, idx, out, nelems, type]() -> pnc::Status {
    return ncformat::FromExternal<T>(gets_[idx].ext.data(), type,
                                     out.first(nelems));
  };
  return stored.id;
}

}  // namespace pnetcdf
